#include "coord/metrics.hpp"

namespace postal::coord {

void record_election(obs::MetricsRegistry& registry,
                     const ElectionReport& report) {
  const ElectionCounters& c = report.counters;
  registry.counter("coord.elect.heartbeats").add(c.heartbeats_sent);
  registry.counter("coord.elect.probes").add(c.probes_sent);
  registry.counter("coord.elect.alives").add(c.alives_sent);
  registry.counter("coord.elect.victories").add(c.victories_sent);
  registry.counter("coord.elect.suspicions").add(c.suspicions);
  registry.counter("coord.elect.takeovers").add(c.takeovers);
  registry.counter("coord.elect.adoptions").add(c.adoptions);
  registry.counter("coord.elect.step_downs").add(c.step_downs);
  registry.counter("coord.elect.events").add(report.events.size());
  registry.counter("coord.elect.crashed").add(report.crashed.size());
  registry.counter("coord.elect.settled").add(report.settled ? 1 : 0);
  registry.counter("coord.elect.check_ok").add(report.check.ok ? 1 : 0);
  registry.rational("coord.elect.first_suspect").add(report.first_suspect);
  registry.rational("coord.elect.elected_at").add(report.elected_at);
  registry.rational("coord.elect.latency").add(report.election_latency);
  registry.gauge("coord.elect.leader")
      .set(static_cast<std::int64_t>(report.leader));
}

void record_consensus(obs::MetricsRegistry& registry,
                      const ConsensusReport& report) {
  const ConsensusCounters& c = report.counters;
  registry.counter("coord.consensus.view_changes").add(c.view_changes_sent);
  registry.counter("coord.consensus.proposals").add(c.proposals);
  registry.counter("coord.consensus.proposal_relays").add(c.proposal_relays);
  registry.counter("coord.consensus.proposal_repairs").add(c.proposal_repairs);
  registry.counter("coord.consensus.acks").add(c.acks_sent);
  registry.counter("coord.consensus.commits").add(c.commits);
  registry.counter("coord.consensus.commit_relays").add(c.commit_relays);
  registry.counter("coord.consensus.heal_replies").add(c.heal_replies);
  registry.counter("coord.consensus.decides").add(c.decides);
  registry.counter("coord.consensus.views_used").add(report.views_used);
  registry.counter("coord.consensus.crashed").add(report.crashed.size());
  registry.counter("coord.consensus.settled").add(report.settled ? 1 : 0);
  registry.counter("coord.consensus.check_ok").add(report.check.ok ? 1 : 0);
  registry.rational("coord.consensus.latency").add(report.decision_latency);
  registry.rational("coord.consensus.baseline").add(report.baseline);
  registry.rational("coord.consensus.recovery").add(report.recovery_time);
  registry.gauge("coord.consensus.quorum")
      .set(static_cast<std::int64_t>(report.quorum));
}

std::vector<obs::TraceMarker> election_markers(const ElectionReport& report) {
  std::vector<obs::TraceMarker> out;
  out.reserve(report.events.size());
  for (const ElectionEvent& e : report.events) {
    std::string name;
    switch (e.kind) {
      case ElectionEvent::Kind::kSuspect:
        name = "suspect p" + std::to_string(e.leader);
        break;
      case ElectionEvent::Kind::kVictory:
        name = "victory t" + std::to_string(e.term);
        break;
      case ElectionEvent::Kind::kAdopt:
        name = "adopt p" + std::to_string(e.leader) + " t" +
               std::to_string(e.term);
        break;
      case ElectionEvent::Kind::kStepDown:
        name = "step down";
        break;
    }
    out.push_back(obs::TraceMarker{
        std::move(name), e.rank, e.time,
        "\"term\":" + std::to_string(e.term) +
            ",\"leader\":" + std::to_string(e.leader)});
  }
  return out;
}

std::vector<obs::TraceMarker> consensus_markers(const ConsensusReport& report) {
  std::vector<obs::TraceMarker> out;
  out.reserve(report.events.size());
  for (const ConsensusEvent& e : report.events) {
    std::string name;
    switch (e.kind) {
      case ConsensusEvent::Kind::kViewChange:
        name = "view-change v" + std::to_string(e.view);
        break;
      case ConsensusEvent::Kind::kPropose:
        name = "propose " + std::to_string(e.value) + " v" +
               std::to_string(e.view);
        break;
      case ConsensusEvent::Kind::kDecide:
        name = "decide " + std::to_string(e.value);
        break;
    }
    out.push_back(obs::TraceMarker{
        std::move(name), e.rank, e.time,
        "\"view\":" + std::to_string(e.view) +
            ",\"value\":" + std::to_string(e.value)});
  }
  return out;
}

}  // namespace postal::coord
