#include "coord/metrics.hpp"

namespace postal::coord {

void record_election(obs::MetricsRegistry& registry,
                     const ElectionReport& report) {
  const ElectionCounters& c = report.counters;
  registry.counter("coord.elect.heartbeats").add(c.heartbeats_sent);
  registry.counter("coord.elect.probes").add(c.probes_sent);
  registry.counter("coord.elect.alives").add(c.alives_sent);
  registry.counter("coord.elect.victories").add(c.victories_sent);
  registry.counter("coord.elect.suspicions").add(c.suspicions);
  registry.counter("coord.elect.takeovers").add(c.takeovers);
  registry.counter("coord.elect.adoptions").add(c.adoptions);
  registry.counter("coord.elect.step_downs").add(c.step_downs);
  registry.counter("coord.elect.events").add(report.events.size());
  registry.counter("coord.elect.crashed").add(report.crashed.size());
  registry.counter("coord.elect.settled").add(report.settled ? 1 : 0);
  registry.counter("coord.elect.check_ok").add(report.check.ok ? 1 : 0);
  registry.rational("coord.elect.first_suspect").add(report.first_suspect);
  registry.rational("coord.elect.elected_at").add(report.elected_at);
  registry.rational("coord.elect.latency").add(report.election_latency);
  registry.gauge("coord.elect.leader")
      .set(static_cast<std::int64_t>(report.leader));
}

void record_consensus(obs::MetricsRegistry& registry,
                      const ConsensusReport& report) {
  const ConsensusCounters& c = report.counters;
  registry.counter("coord.consensus.view_changes").add(c.view_changes_sent);
  registry.counter("coord.consensus.proposals").add(c.proposals);
  registry.counter("coord.consensus.proposal_relays").add(c.proposal_relays);
  registry.counter("coord.consensus.proposal_repairs").add(c.proposal_repairs);
  registry.counter("coord.consensus.acks").add(c.acks_sent);
  registry.counter("coord.consensus.commits").add(c.commits);
  registry.counter("coord.consensus.commit_relays").add(c.commit_relays);
  registry.counter("coord.consensus.heal_replies").add(c.heal_replies);
  registry.counter("coord.consensus.decides").add(c.decides);
  registry.counter("coord.consensus.views_used").add(report.views_used);
  registry.counter("coord.consensus.crashed").add(report.crashed.size());
  registry.counter("coord.consensus.settled").add(report.settled ? 1 : 0);
  registry.counter("coord.consensus.check_ok").add(report.check.ok ? 1 : 0);
  registry.rational("coord.consensus.latency").add(report.decision_latency);
  registry.rational("coord.consensus.baseline").add(report.baseline);
  registry.rational("coord.consensus.recovery").add(report.recovery_time);
  registry.gauge("coord.consensus.quorum")
      .set(static_cast<std::int64_t>(report.quorum));
}

std::vector<obs::TraceMarker> election_markers(const ElectionReport& report) {
  std::vector<obs::TraceMarker> out;
  out.reserve(report.events.size());
  for (const ElectionEvent& e : report.events) {
    std::string name;
    switch (e.kind) {
      case ElectionEvent::Kind::kSuspect:
        name = "suspect p" + std::to_string(e.leader);
        break;
      case ElectionEvent::Kind::kVictory:
        name = "victory t" + std::to_string(e.term);
        break;
      case ElectionEvent::Kind::kAdopt:
        name = "adopt p" + std::to_string(e.leader) + " t" +
               std::to_string(e.term);
        break;
      case ElectionEvent::Kind::kStepDown:
        name = "step down";
        break;
    }
    out.push_back(obs::TraceMarker{
        std::move(name), e.rank, e.time,
        "\"term\":" + std::to_string(e.term) +
            ",\"leader\":" + std::to_string(e.leader)});
  }
  return out;
}

void record_log(obs::MetricsRegistry& registry, const LogReport& report) {
  const LogCounters& c = report.counters;
  registry.counter("coord.log.view_changes").add(c.view_changes_sent);
  registry.counter("coord.log.vc_accs").add(c.vc_accs_sent);
  registry.counter("coord.log.proposals").add(c.proposals);
  registry.counter("coord.log.proposal_relays").add(c.proposal_relays);
  registry.counter("coord.log.proposal_repairs").add(c.proposal_repairs);
  registry.counter("coord.log.acks").add(c.acks_sent);
  registry.counter("coord.log.commits").add(c.commits);
  registry.counter("coord.log.commit_relays").add(c.commit_relays);
  registry.counter("coord.log.catchup_commits").add(c.catchup_commits);
  registry.counter("coord.log.renews").add(c.renews_sent);
  registry.counter("coord.log.renew_acks").add(c.renew_acks_sent);
  registry.counter("coord.log.lease_acquisitions").add(c.lease_acquisitions);
  registry.counter("coord.log.lease_renewals").add(c.lease_renewals);
  registry.counter("coord.log.lease_expiries").add(c.lease_expiries);
  registry.counter("coord.log.stale_rejects").add(c.stale_rejects);
  registry.counter("coord.log.decides").add(c.decides);
  registry.counter("coord.log.config_applies").add(c.config_applies);
  registry.counter("coord.log.reconfig_commands").add(c.reconfig_commands);
  registry.counter("coord.log.views_used").add(report.views_used);
  registry.counter("coord.log.crashed").add(report.crashed.size());
  registry.counter("coord.log.settled").add(report.settled ? 1 : 0);
  registry.counter("coord.log.check_ok").add(report.check.ok ? 1 : 0);
  registry.rational("coord.log.latency").add(report.commit_latency);
  registry.rational("coord.log.baseline").add(report.baseline);
  registry.rational("coord.log.recovery").add(report.recovery_time);
  registry.gauge("coord.log.slots").set(static_cast<std::int64_t>(report.slots));
  registry.gauge("coord.log.quorum")
      .set(static_cast<std::int64_t>(report.quorum));
  registry.gauge("coord.log.final_members")
      .set(static_cast<std::int64_t>(report.final_members.size()));
}

std::vector<obs::TraceMarker> consensus_markers(const ConsensusReport& report) {
  std::vector<obs::TraceMarker> out;
  out.reserve(report.events.size());
  for (const ConsensusEvent& e : report.events) {
    std::string name;
    switch (e.kind) {
      case ConsensusEvent::Kind::kViewChange:
        name = "view-change v" + std::to_string(e.view);
        break;
      case ConsensusEvent::Kind::kPropose:
        name = "propose " + std::to_string(e.value) + " v" +
               std::to_string(e.view);
        break;
      case ConsensusEvent::Kind::kDecide:
        name = "decide " + std::to_string(e.value);
        break;
    }
    out.push_back(obs::TraceMarker{
        std::move(name), e.rank, e.time,
        "\"view\":" + std::to_string(e.view) +
            ",\"value\":" + std::to_string(e.value)});
  }
  return out;
}

std::vector<obs::TraceMarker> log_markers(const LogReport& report) {
  std::vector<obs::TraceMarker> out;
  out.reserve(report.events.size());
  for (const LogEvent& e : report.events) {
    std::string name;
    switch (e.kind) {
      case LogEvent::Kind::kViewChange:
        name = "view-change v" + std::to_string(e.view);
        break;
      case LogEvent::Kind::kLeaseAcquire:
        name = "lease t" + std::to_string(e.view + 1);
        break;
      case LogEvent::Kind::kLeaseRenew:
        name = "renew t" + std::to_string(e.view + 1);
        break;
      case LogEvent::Kind::kLeaseExpire:
        name = "lease expired t" + std::to_string(e.view + 1);
        break;
      case LogEvent::Kind::kPropose:
        name = "propose s" + std::to_string(e.slot) + " v" +
               std::to_string(e.view);
        break;
      case LogEvent::Kind::kCommit:
        name = "commit s" + std::to_string(e.slot);
        break;
      case LogEvent::Kind::kDecide:
        name = "decide s" + std::to_string(e.slot);
        break;
      case LogEvent::Kind::kStaleReject:
        name = "fenced v" + std::to_string(e.view);
        break;
      case LogEvent::Kind::kConfigApply:
        name = std::string("config ") +
               (config_value_adds(e.value) ? "+" : "-") + "p" +
               std::to_string(config_value_rank(e.value));
        break;
    }
    out.push_back(obs::TraceMarker{
        std::move(name), e.rank, e.time,
        "\"view\":" + std::to_string(e.view) +
            ",\"slot\":" + std::to_string(e.slot) +
            ",\"value\":" + std::to_string(e.value)});
  }
  return out;
}

}  // namespace postal::coord
