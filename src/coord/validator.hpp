// Crash-aware coordination validator (docs/COORDINATION.md).
//
// Judges an election or consensus run against the classic coordination
// clauses, in sim/validator's violation-string style:
//
//   election   -- the machine validation passed; fault-free runs never
//                 suspect and keep the initial leader; settled runs leave
//                 every live rank agreeing on one live leader under one
//                 term; and under crash-only plans that leader is the
//                 legitimate one (the initial leader if it survives, else
//                 the best survivor under the configured policy).
//   consensus  -- the machine validation passed; agreement (no two ranks
//                 decide different values); validity (every decided value
//                 was some rank's client value and was actually proposed);
//                 integrity (each rank decides at most once, and the event
//                 log matches the harvested decisions); a single legitimate
//                 proposer per view (rank view mod n, alive at propose
//                 time, at most one proposal per view); and guarded
//                 liveness -- when the run settled and a quorum survived,
//                 every live rank decided. Fault-free runs must decide
//                 rank 0's client value in view 0.
//   log        -- the machine validation passed; per-slot agreement (no
//                 two ranks decide different values for one slot); validity
//                 (every decided value is a client command or a well-formed
//                 config command, and no client command occupies two
//                 slots); a single proposer per (view, slot); prefix
//                 durability (a harvested commit prefix covers only decided
//                 slots, and the applied configuration matches the decided
//                 prefix); lease mutual exclusion (lease intervals are
//                 pairwise disjoint with strictly increasing fencing
//                 tokens, and every proposal lies inside its leader's
//                 lease) with counter/event consistency for rejected
//                 stale-token writes; reconfiguration safety (every applied
//                 change toggles exactly one rank, so consecutive quorums
//                 intersect, and membership never empties); and guarded
//                 liveness -- when the run settled and both the initial and
//                 final quorums survived, every live final member holds the
//                 full decided log and the same membership. Fault-free,
//                 reconfig-free runs decide every slot in view 0 under a
//                 single never-expiring lease.
//
// The guarded clauses only apply when the report says the run settled
// (bounded disturbances inside the horizon / view budget);
// CoordCheck::liveness_checked records whether they fired.
#pragma once

#include "coord/check.hpp"
#include "coord/consensus.hpp"
#include "coord/election.hpp"
#include "coord/log.hpp"

namespace postal::coord {

/// Check an election run's safety (and guarded liveness) clauses.
[[nodiscard]] CoordCheck check_election(const ElectionReport& report,
                                        const PostalParams& params,
                                        const FaultPlan* plan);

/// Check a consensus run's agreement / validity / integrity /
/// single-proposer clauses and the guarded liveness-under-quorum clause.
[[nodiscard]] CoordCheck check_consensus(const ConsensusReport& report,
                                         const PostalParams& params,
                                         const FaultPlan* plan);

/// Check a replicated-log run's per-slot agreement / validity / prefix
/// durability / lease mutual-exclusion / reconfiguration-safety clauses
/// and the guarded liveness-under-quorum clause.
[[nodiscard]] CoordCheck check_log(const LogReport& report,
                                   const PostalParams& params,
                                   const FaultPlan* plan);

}  // namespace postal::coord
