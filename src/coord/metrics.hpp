// Observability for coordination runs (docs/OBSERVABILITY.md): fold an
// election or consensus report into a MetricsRegistry under the "coord.*"
// prefix, in the registry's exactness classes -- counters for traffic and
// transitions, exact Rational accumulators for the model-time latencies.
#pragma once

#include <vector>

#include "coord/consensus.hpp"
#include "coord/election.hpp"
#include "coord/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

namespace postal::coord {

/// Record `report` under "coord.elect.*": the traffic counters, the
/// suspicion/adoption transitions, and the latency quantities
/// (first_suspect, elected_at, election_latency) as exact Rationals.
void record_election(obs::MetricsRegistry& registry,
                     const ElectionReport& report);

/// Record `report` under "coord.consensus.*": the message counters, the
/// decide/view tallies, and decision_latency / recovery_time as exact
/// Rationals.
void record_consensus(obs::MetricsRegistry& registry,
                      const ConsensusReport& report);

/// Chrome-trace overlay markers for an election run: one instant event per
/// suspicion, victory, adoption, and step-down, on the rank's track at its
/// exact model time (feed to trace_to_chrome_json's marker overload).
[[nodiscard]] std::vector<obs::TraceMarker> election_markers(
    const ElectionReport& report);

/// Record `report` under "coord.log.*": the message counters, the lease
/// lifecycle tallies (acquisitions, renewals, expiries, stale rejects),
/// the reconfiguration applies, and commit_latency / recovery_time as
/// exact Rationals.
void record_log(obs::MetricsRegistry& registry, const LogReport& report);

/// Chrome-trace overlay markers for a consensus run: view changes,
/// proposals, and decisions.
[[nodiscard]] std::vector<obs::TraceMarker> consensus_markers(
    const ConsensusReport& report);

/// Chrome-trace overlay markers for a replicated-log run: view changes,
/// lease grants/renewals/expiries, per-slot proposals, commits, decides,
/// fencing rejections, and configuration applies.
[[nodiscard]] std::vector<obs::TraceMarker> log_markers(
    const LogReport& report);

}  // namespace postal::coord
