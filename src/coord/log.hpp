// Multi-decree replicated log in the postal model (docs/COORDINATION.md).
//
// Per-slot instances of the view-change consensus (coord/consensus.hpp)
// sharing one view/leader: views occupy the globally synchronized windows
// [v V, (v+1) V) with leader(v) the v-th member of the view's
// configuration in round-robin, so every rank's exact clock agrees on who
// may lead when. The leader of a view collects VIEW-CHANGEs (each carrying
// the follower's commit prefix and, per undecided slot, its highest
// accepted (view, value)); on a quorum it acquires a *lease* and proposes
// a batch: re-proposals of every accepted value it heard (the per-slot
// Paxos value rule) plus fresh client commands for the free slots, all
// disseminated over the per-view generalized-Fibonacci BCAST tree (ranks
// renamed (member index - leader index) mod |members|). Acceptors ACK per
// slot; a quorum of ACKs commits the slot and the COMMIT rides the same
// tree. Crashed relays orphan subtrees, so a within-view repair wave
// re-sends uncommitted proposals point-to-point, and any rank whose commit
// prefix leads a VIEW-CHANGE sender's heals it with direct COMMITs -- the
// catch-up/snapshot transfer that lets stragglers (and re-joining ranks)
// recover an arbitrarily long suffix.
//
// Leases and fencing (the mutual-exclusion layer): winning a quorum grants
// the leader a term-stamped lease -- fencing token view + 1, expiry
// min(grant + L, view end) with L derived on the 1/q grid from the
// election heartbeat period max(4 lambda, 2 (n - 1)) plus lambda-scaled
// round-trip slack -- so expiry is deterministic and byte-identical across
// TimePaths and thread counts. The leader renews by heartbeating RENEW
// every heartbeat period; a quorum of RENEW-ACKs extends the expiry.
// Writes (PROPOSE, repair, COMMIT) happen only while now < expiry; at the
// exact expiry tick the timer wins the tie, mirroring the reliable-bcast
// backoff boundary. Acceptors reject writes under a stale token (a lower
// view) and count them, so a deposed leader's in-flight writes are fenced.
//
// Reconfiguration: a membership change is a command decided like any other
// slot. The value encodes (add/remove, rank, activation view); once a
// rank's committed prefix applies it, the broadcast tree, quorum size, and
// leader(v) mapping are recomputed from the new member set for views >=
// the activation view. Single-rank changes keep any old-config quorum
// intersecting any new-config quorum (the clause check_log certifies), so
// ranks can join and leave mid-run under crash plans; stragglers that
// compute a stale leader are healed by catch-up like any other straggler.
//
// All view boundaries, lease grants, and timers are multiples of 1/q
// (lambda = p/q), so runs take the int64 tick fast path and are
// byte-identical on both TimePaths and at every ParMachine thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coord/check.hpp"
#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "sim/machine.hpp"
#include "sim/validator.hpp"

namespace postal::coord {

/// One requested membership change: at model time `at`, toggle `rank`
/// (remove it if it is a member when the change is proposed, add it back
/// otherwise). The change becomes a log command proposed by whichever
/// leader holds the lease once `at` has passed.
struct ReconfigRequest {
  ProcId rank = 0;
  Rational at;

  friend bool operator==(const ReconfigRequest&, const ReconfigRequest&) = default;
};

/// Replicated-log knobs. Zero-valued knobs are derived (resolve_log_options).
struct LogOptions {
  /// Client command c (0 <= c < commands) has value value_base + c.
  /// Requires value_base + commands < 2^31 (bit 31 marks config commands).
  std::uint32_t value_base = 3000;
  /// Client commands to replicate. Total slots = commands + reconfig.size().
  std::uint64_t commands = 6;
  /// View window length V. 0 derives a window generous enough for a full
  /// batch to disseminate, ack, repair, and commit (see derive in log.cpp).
  Rational view_length{0};
  /// Views before undecided ranks give up (bounds the run). 0 derives from
  /// the fault plan, the reconfig horizon, and a full leader rotation.
  /// Must stay < 2^20.
  std::uint32_t max_views = 0;
  /// Lease renewal cadence P. 0 derives the election heartbeat period
  /// max(4 lambda, 2 (n - 1)).
  Rational heartbeat_period{0};
  /// Lease duration L. 0 derives P + 2 lambda + 2 * port_budget + n +
  /// timeout_slack, where port_budget bounds the per-port send backlog of
  /// a full batch: the renewal round trip always completes inside an
  /// undisturbed lease even while the batch is still draining the ports.
  Rational lease_length{0};
  /// Extra slack added to derived windows and the repair timer (>= 0).
  Rational timeout_slack{2};
  /// Membership changes to request mid-run (see ReconfigRequest).
  std::vector<ReconfigRequest> reconfig;
  /// Time representation of the run and its validation (docs/PERFORMANCE.md).
  TimePath time_path = TimePath::kAuto;
  /// Simulation lanes (docs/SIMULATION.md); 0 = 1. Reports are
  /// byte-identical at every setting.
  unsigned threads = 0;
};

/// Traffic and transition counters of one run (summed across shards).
struct LogCounters {
  std::uint64_t view_changes_sent = 0;  ///< VIEW-CHANGEs put on the wire
  std::uint64_t vc_accs_sent = 0;       ///< per-slot accepted-state reports
  std::uint64_t proposals = 0;          ///< slots proposed (first time per view)
  std::uint64_t proposal_relays = 0;    ///< PROPOSE tree sends (incl. leader's)
  std::uint64_t proposal_repairs = 0;   ///< point-to-point re-sends to silent ranks
  std::uint64_t acks_sent = 0;
  std::uint64_t commits = 0;            ///< slot commits at leaders
  std::uint64_t commit_relays = 0;      ///< COMMIT tree sends (incl. leader's)
  std::uint64_t catchup_commits = 0;    ///< direct COMMITs healing stragglers
  std::uint64_t renews_sent = 0;        ///< lease RENEW heartbeats
  std::uint64_t renew_acks_sent = 0;
  std::uint64_t lease_acquisitions = 0;
  std::uint64_t lease_renewals = 0;     ///< quorum-extended expiries
  std::uint64_t lease_expiries = 0;     ///< leases that lapsed mid-view
  std::uint64_t stale_rejects = 0;      ///< writes refused under a stale token
  std::uint64_t decides = 0;            ///< slot decisions across all ranks
  std::uint64_t config_applies = 0;     ///< membership changes applied
  std::uint64_t reconfig_commands = 0;  ///< config commands proposed

  friend bool operator==(const LogCounters&, const LogCounters&) = default;
};

/// One rank-local transition, for the canonical event log, check_log's
/// clauses, and the Chrome-trace overlay.
struct LogEvent {
  enum class Kind : std::uint8_t {
    kViewChange,    ///< entered view `view` undecided
    kLeaseAcquire,  ///< won a quorum; lease [time, until), token view + 1
    kLeaseRenew,    ///< quorum of RENEW-ACKs extended the lease to `until`
    kLeaseExpire,   ///< the lease lapsed before the batch finished
    kPropose,       ///< leader proposed `value` for `slot` in `view`
    kCommit,        ///< leader committed `slot` (quorum of ACKs)
    kDecide,        ///< this rank decided `value` for `slot` (in `view`)
    kStaleReject,   ///< refused a write under stale token `view` + 1
    kConfigApply,   ///< applied the config command `value` (view = activation)
  };
  Rational time;
  ProcId rank = 0;
  Kind kind = Kind::kViewChange;
  std::uint32_t view = 0;
  std::uint32_t slot = 0;   ///< 0 for view/lease events
  std::uint32_t value = 0;  ///< 0 for view/lease events
  Rational until;           ///< lease events: the expiry; else 0

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

/// A rank's final state for one slot when the run quiesced.
struct SlotDecision {
  bool decided = false;
  std::uint32_t value = 0;
  std::uint32_t view = 0;  ///< view the decision was learned in
  Rational at;

  friend bool operator==(const SlotDecision&, const SlotDecision&) = default;
};

/// A rank's harvested log state at quiescence (crashed ranks: at crash).
struct RankLog {
  bool started = false;
  std::uint64_t commit_prefix = 0;  ///< contiguously decided slots from 0
  std::uint32_t config_epoch = 0;   ///< membership changes applied
  std::vector<ProcId> members;      ///< final applied member set, sorted
  std::vector<SlotDecision> slots;  ///< sized total slots

  friend bool operator==(const RankLog&, const RankLog&) = default;
};

/// Harvested per-run protocol state (per-shard instances compose).
struct LogHarvest {
  LogCounters counters;
  std::vector<RankLog> ranks;                ///< sized n
  std::vector<std::vector<LogEvent>> logs;   ///< per rank, chronological
};

/// Config-command value encoding, shared with the validator and tests:
/// bit 31 = config flag, bit 30 = add (else remove), bits 16..29 = the
/// activation view, bits 0..15 = the toggled rank.
[[nodiscard]] constexpr bool is_config_value(std::uint32_t value) {
  return (value >> 31) != 0;
}
[[nodiscard]] constexpr std::uint32_t make_config_value(bool add,
                                                        std::uint32_t act_view,
                                                        ProcId rank) {
  return (1U << 31) | (add ? (1U << 30) : 0U) | ((act_view & 0x3fffU) << 16) |
         (static_cast<std::uint32_t>(rank) & 0xffffU);
}
[[nodiscard]] constexpr bool config_value_adds(std::uint32_t value) {
  return ((value >> 30) & 1U) != 0;
}
[[nodiscard]] constexpr std::uint32_t config_value_act_view(std::uint32_t value) {
  return (value >> 16) & 0x3fffU;
}
[[nodiscard]] constexpr ProcId config_value_rank(std::uint32_t value) {
  return static_cast<ProcId>(value & 0xffffU);
}

/// The event-driven replicated-log protocol. One instance drives one run;
/// with ParMachine, one instance per shard.
class LogProtocol final : public Protocol {
 public:
  /// `options` must be resolved (all derived knobs > 0); the runner
  /// resolves them via resolve_log_options.
  LogProtocol(const PostalParams& params, const LogOptions& options);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;
  void on_timer(MachineContext& ctx, std::uint64_t token) override;

  /// Fold this instance's per-rank results into `out` (sized n).
  void harvest(LogHarvest& out) const;

 private:
  struct Slot {
    bool has_accepted = false;
    std::uint32_t accepted_view = 0;
    std::uint32_t accepted_value = 0;
    bool decided = false;
    std::uint32_t dec_value = 0;
    std::uint32_t dec_view = 0;
    Rational dec_at;
  };

  struct Config {
    std::uint32_t from_view = 0;      ///< active for views >= from_view
    std::vector<ProcId> members;      ///< sorted
  };

  struct ProcState {
    bool started = false;
    std::uint32_t promised = 0;       ///< highest view promised (= token - 1)
    std::uint64_t commit_prefix = 0;
    std::uint64_t applied_configs = 0;  ///< config slots applied from the prefix
    std::uint64_t triggered = 0;        ///< reconfig requests whose time passed
    std::vector<Slot> slots;
    std::vector<Config> configs;      ///< applied history, from_view ascending
    // Leader state for the view this rank is currently collecting.
    bool collecting = false;
    std::uint32_t collect_view = 0;
    std::uint32_t vc_count = 0;
    std::uint64_t expected_accs = 0;
    std::uint64_t got_accs = 0;
    bool acquired = false;            ///< holds the view's lease
    bool lease_live = false;          ///< acquired and not yet expired
    std::uint64_t lease_gen = 0;      ///< stamps lease/renew timers
    Rational lease_expiry;
    Rational renew_sent_at;
    std::uint32_t renew_seq = 0;
    std::uint32_t renew_acks = 0;
    std::vector<std::uint8_t> vc_from;  ///< per-rank VC bitmap (this view)
    // Per-slot highest accepted (view, value) reported by the counted
    // quorum (the Paxos value rule input), seeded from the leader's own
    // acceptor state.
    std::vector<std::uint8_t> best_has;
    std::vector<std::uint32_t> best_view;
    std::vector<std::uint32_t> best_value;
    std::vector<std::uint8_t> proposed;        ///< per-slot: proposed this view
    std::vector<std::uint8_t> committed;       ///< per-slot: committed this view
    std::vector<std::vector<std::uint8_t>> acked;  ///< per-slot ack bitmaps
    std::vector<std::uint32_t> ack_counts;
    Rational port_free;               ///< local mirror of the output port
    std::vector<LogEvent> log;
  };

  [[nodiscard]] const Config& config_for(const ProcState& st,
                                         std::uint32_t view) const;
  [[nodiscard]] ProcId leader_of(const Config& cfg, std::uint32_t view) const {
    return cfg.members[view % cfg.members.size()];
  }
  [[nodiscard]] bool is_member(const Config& cfg, ProcId rank) const;
  /// Position of `rank` in cfg.members, or members.size() if absent.
  [[nodiscard]] std::uint64_t member_index(const Config& cfg,
                                           ProcId rank) const;
  [[nodiscard]] Rational view_end(std::uint32_t view) const {
    return options_.view_length * Rational(static_cast<std::int64_t>(view) + 1);
  }
  [[nodiscard]] std::uint32_t quorum_of(const Config& cfg) const {
    return static_cast<std::uint32_t>(cfg.members.size() / 2 + 1);
  }
  [[nodiscard]] bool done(const ProcState& st) const {
    return st.commit_prefix == total_slots_;
  }
  Rational do_send(MachineContext& ctx, ProcId dst, const Packet& packet);
  void log_event(ProcState& st, const Rational& now, LogEvent::Kind kind,
                 std::uint32_t view, std::uint32_t slot, std::uint32_t value,
                 const Rational& until = Rational(0));
  void enter_view(MachineContext& ctx, std::uint32_t view);
  void begin_collect(MachineContext& ctx, std::uint32_t view);
  void try_acquire(MachineContext& ctx);
  void acquire(MachineContext& ctx);
  void propose_batch(MachineContext& ctx);
  /// Fibonacci-tree sends of a PROPOSE/COMMIT over the renamed member-index
  /// range [renamed, hi), rooted at the view's leader in `cfg`.
  void relay_range(MachineContext& ctx, const Config& cfg, bool commit,
                   std::uint32_t view, std::uint32_t slot, std::uint32_t value,
                   std::uint64_t renamed, std::uint64_t hi);
  void decide(MachineContext& ctx, std::uint32_t slot, std::uint32_t value,
              std::uint32_t view);
  /// Advance the commit prefix and apply any config commands it crossed.
  void advance_prefix(MachineContext& ctx);
  /// Apply one committed config command: recompute members/tree/quorum
  /// for views >= its activation view.
  void apply_config(MachineContext& ctx, std::uint32_t value);
  /// Direct COMMITs for [sender's prefix, ours): the catch-up transfer.
  void heal(MachineContext& ctx, ProcId dst, std::uint64_t their_prefix,
            std::uint32_t view);
  void commit_slot(MachineContext& ctx, std::uint32_t slot);

  std::uint64_t n_;
  Rational lambda_;
  GenFib fib_;
  LogOptions options_;
  std::uint64_t total_slots_;
  Rational repair_after_;  ///< acquire-to-repair-wave delay within a view
  /// Per reconfig request: true = the expected toggle adds the rank
  /// (request-order toggles applied to the initial full membership).
  std::vector<std::uint8_t> expected_add_;
  std::vector<ProcState> state_;
  LogCounters counters_;
};

/// Everything one replicated-log run produces, judged.
struct LogReport {
  MachineResult result;
  LogCounters counters;
  std::vector<LogEvent> events;   ///< canonical (time, rank, seq) order
  std::vector<RankLog> ranks;     ///< per rank, at quiescence
  SimReport validation;           ///< preholds + fifo + crash-aware
  CoordCheck check;               ///< coordination safety clauses
  /// Resolved options (all derived knobs filled in).
  LogOptions options;
  std::uint64_t slots = 0;        ///< commands + reconfig requests
  std::uint32_t quorum = 0;       ///< initial-config quorum
  std::uint32_t views_used = 0;   ///< highest view any rank entered
  bool settled = false;           ///< disturbances bounded, inside max_views
  std::vector<ProcId> crashed;    ///< ranks the plan crashes, sorted
  /// Expected final member set: the reconfig toggles applied in request
  /// order to the initial full membership.
  std::vector<ProcId> final_members;
  Rational commit_latency;  ///< last live final member's last decision time
  Rational baseline;        ///< fault-free commit_latency for these options
  Rational recovery_time;   ///< max(0, commit_latency - baseline)
};

/// Fill every zero-valued derived knob from (params, plan): the view
/// length (sized to a full batch), the lease cadence/duration, and enough
/// views for disturbances, loss budgets, the reconfig horizon, and a full
/// leader rotation to settle. Throws InvalidArgument if the reconfig
/// toggles would ever shrink membership below 2 ranks.
[[nodiscard]] LogOptions resolve_log_options(const PostalParams& params,
                                             const FaultPlan* plan,
                                             const LogOptions& options);

/// Run the replicated log under `plan` (nullptr = fault-free) and judge
/// it: crash-aware machine validation plus per-slot agreement, prefix
/// durability, lease mutual-exclusion/fencing, reconfiguration safety, and
/// the guarded liveness-under-quorum clause (coord/validator.hpp). The
/// fault-free baseline for recovery_time comes from a sequential
/// fault-free reference run of the same resolved options.
[[nodiscard]] LogReport run_log(const PostalParams& params,
                                const FaultPlan* plan = nullptr,
                                const LogOptions& options = {});

}  // namespace postal::coord
