// The coordination validator's verdict type (docs/COORDINATION.md).
// Split from coord/validator.hpp so the election/consensus reports can
// embed a verdict without a circular include.
#pragma once

#include <string>
#include <vector>

namespace postal::coord {

/// Result of checking a coordination run against its safety and (guarded)
/// liveness clauses; mirrors sim::SimReport's violation-string style.
struct CoordCheck {
  bool ok = false;
  /// True iff the guarded liveness clauses were applicable (the run was
  /// settled and, for consensus, a quorum survived) and therefore checked.
  bool liveness_checked = false;
  std::vector<std::string> violations;

  /// "ok", or the joined violation text for test failure messages.
  [[nodiscard]] std::string summary() const;
};

}  // namespace postal::coord
