// Broadcast-based view-change consensus in the postal model
// (docs/COORDINATION.md).
//
// Single-decree consensus in the Paxos family, run as a ViewController of
// epoch-numbered views on globally synchronized windows: view v occupies
// [v V, (v+1) V) with leader(v) = v mod n, so no extra coordination is
// needed to agree on who leads when -- every rank's clock is exact model
// time. In each view the undecided ranks send a VIEW-CHANGE carrying their
// highest accepted (view, value) to the view's leader; on a quorum
// (floor(n/2) + 1, counting itself) the leader proposes the
// highest-accepted value it heard (or its own client value), disseminating
// the proposal over the optimal generalized-Fibonacci broadcast tree
// rooted at itself (ranks renamed (r - leader) mod n -- the reliable_bcast
// split loop re-rooted per view). Acceptors promise at VIEW-CHANGE time
// and ACK straight back; a quorum of ACKs decides, and the decision is
// committed over the same tree. Crashed relays orphan subtrees, so a
// within-view repair wave re-sends the proposal point-to-point to every
// silent rank, and decided leaders of later views heal stragglers by
// replying to their VIEW-CHANGEs with a direct COMMIT. Uncommitted values
// survive leader crashes by the standard quorum-intersection argument:
// any later VIEW-CHANGE quorum intersects any ACK quorum, so a value that
// might have been decided is the one re-proposed.
//
// All view boundaries and timers are multiples of 1/q (lambda = p/q), so
// runs take the int64 tick fast path and are byte-identical on both
// TimePaths and at every ParMachine thread count. Views stop at max_views
// (derived from the fault plan's disturbances and loss budgets), which
// bounds the run and gives the validator its guarded liveness clause.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coord/check.hpp"
#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "sim/machine.hpp"
#include "sim/validator.hpp"

namespace postal::coord {

/// Consensus knobs. Zero-valued knobs are derived
/// (resolve_consensus_options).
struct ConsensusOptions {
  /// Rank r's client value is value_base + r; agreement is non-vacuous
  /// because every rank proposes a different value. Requires
  /// value_base + n <= 2^32.
  std::uint32_t value_base = 1000;
  /// View window length V. 0 derives 2 f_lambda(n) + 4 lambda + 4 n +
  /// 2 slack: tree dissemination down and up, the repair wave, and every
  /// port serialization, so a fault-free view completes within its window.
  Rational view_length{0};
  /// Views before undecided ranks give up (bounds the run). 0 derives
  /// enough views for every disturbance to settle plus the loss budget
  /// plus one full leader rotation. Must stay < 2^24.
  std::uint32_t max_views = 0;
  /// Extra slack added to the view length and the repair timer (>= 0).
  Rational timeout_slack{2};
  /// Time representation of the run and its validation (docs/PERFORMANCE.md).
  TimePath time_path = TimePath::kAuto;
  /// Simulation lanes (docs/SIMULATION.md); 0 = 1. Reports are
  /// byte-identical at every setting.
  unsigned threads = 0;
};

/// Traffic counters of one run (summed across shards).
struct ConsensusCounters {
  std::uint64_t view_changes_sent = 0;  ///< VIEW-CHANGEs put on the wire
  std::uint64_t proposals = 0;          ///< propose decisions (one per view max)
  std::uint64_t proposal_relays = 0;    ///< PROPOSE tree sends (incl. leader's)
  std::uint64_t proposal_repairs = 0;   ///< direct re-sends to silent ranks
  std::uint64_t acks_sent = 0;
  std::uint64_t commits = 0;            ///< decide-and-commit events at leaders
  std::uint64_t commit_relays = 0;      ///< COMMIT tree sends (incl. leader's)
  std::uint64_t heal_replies = 0;       ///< direct COMMITs answering stragglers
  std::uint64_t decides = 0;            ///< ranks that decided

  friend bool operator==(const ConsensusCounters&,
                         const ConsensusCounters&) = default;
};

/// One rank-local transition, for the canonical event log, the validator's
/// proposer/agreement clauses, and the Chrome-trace overlay.
struct ConsensusEvent {
  enum class Kind : std::uint8_t {
    kViewChange,  ///< entered view `view` undecided (sent/collected a VC)
    kPropose,     ///< leader of `view` proposed `value`
    kDecide,      ///< decided `value` (learned in `view`)
  };
  Rational time;
  ProcId rank = 0;
  Kind kind = Kind::kViewChange;
  std::uint32_t view = 0;
  std::uint32_t value = 0;  ///< 0 for kViewChange

  friend bool operator==(const ConsensusEvent&, const ConsensusEvent&) = default;
};

/// A rank's final consensus state when the run quiesced.
struct RankDecision {
  bool started = false;
  bool decided = false;
  std::uint32_t value = 0;
  std::uint32_t view = 0;  ///< view the decision was learned in
  Rational at;             ///< decision time

  friend bool operator==(const RankDecision&, const RankDecision&) = default;
};

/// Harvested per-run protocol state (per-shard instances compose).
struct ConsensusHarvest {
  ConsensusCounters counters;
  std::vector<RankDecision> decisions;            ///< sized n
  std::vector<std::vector<ConsensusEvent>> logs;  ///< per rank, chronological
};

/// The event-driven view-change consensus protocol. One instance drives
/// one run; with ParMachine, one instance per shard.
class ConsensusProtocol final : public Protocol {
 public:
  /// `options` must be resolved (view_length > 0, max_views > 0); the
  /// runner resolves them via resolve_consensus_options.
  ConsensusProtocol(const PostalParams& params, const ConsensusOptions& options);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;
  void on_timer(MachineContext& ctx, std::uint64_t token) override;

  /// Fold this instance's per-rank results into `out` (sized n).
  void harvest(ConsensusHarvest& out) const;

 private:
  struct ProcState {
    bool started = false;
    // Acceptor state.
    std::uint32_t promised = 0;       ///< highest view promised (VC or accept)
    bool has_accepted = false;
    std::uint32_t accepted_view = 0;
    std::uint32_t accepted_value = 0;
    // Learner state.
    bool decided = false;
    std::uint32_t dec_value = 0;
    std::uint32_t dec_view = 0;
    Rational dec_at;
    // Leader state for the view this rank is currently collecting.
    bool collecting = false;
    std::uint32_t collect_view = 0;
    std::uint32_t vc_count = 0;
    bool best_has = false;
    std::uint32_t best_view = 0;
    std::uint32_t best_value = 0;
    bool proposed = false;
    std::uint32_t chosen = 0;
    std::uint32_t ack_count = 0;
    std::vector<std::uint8_t> acked;  ///< per-rank ACK bitmap (repair wave)
    Rational port_free;               ///< local mirror of the output port
    std::vector<ConsensusEvent> log;
  };

  [[nodiscard]] ProcId leader_of(std::uint32_t view) const {
    return static_cast<ProcId>(view % n_);
  }
  [[nodiscard]] std::uint32_t client_value(ProcId rank) const {
    return options_.value_base + static_cast<std::uint32_t>(rank);
  }
  Rational do_send(MachineContext& ctx, ProcId dst, const Packet& packet);
  /// Begin view `view` on an undecided rank: promise, send/collect the
  /// VIEW-CHANGE, and arm the next view's timer.
  void enter_view(MachineContext& ctx, std::uint32_t view);
  void begin_collect(MachineContext& ctx, std::uint32_t view);
  void propose(MachineContext& ctx);
  /// Fibonacci-tree sends of a PROPOSE/COMMIT over renamed range
  /// [renamed, hi) rooted at leader_of(view).
  void relay_range(MachineContext& ctx, bool commit, std::uint32_t view,
                   std::uint32_t value, std::uint64_t renamed, std::uint64_t hi);
  void decide(MachineContext& ctx, std::uint32_t value, std::uint32_t view);

  std::uint64_t n_;
  Rational lambda_;
  GenFib fib_;
  ConsensusOptions options_;
  std::uint32_t quorum_;
  Rational repair_after_;  ///< propose-to-repair-wave delay within a view
  std::vector<ProcState> state_;
  ConsensusCounters counters_;
};

/// Everything one consensus run produces, judged.
struct ConsensusReport {
  MachineResult result;
  ConsensusCounters counters;
  std::vector<ConsensusEvent> events;   ///< canonical (time, rank, seq) order
  std::vector<RankDecision> decisions;  ///< per rank, at quiescence
  SimReport validation;                 ///< preholds + fifo + crash-aware
  CoordCheck check;                     ///< coordination safety clauses
  /// Resolved options (derived view_length/max_views filled in).
  ConsensusOptions options;
  std::uint32_t quorum = 0;
  std::uint32_t views_used = 0;  ///< highest view any rank entered
  bool settled = false;          ///< disturbances bounded, inside max_views
  std::vector<ProcId> crashed;   ///< ranks the plan crashes, sorted
  Rational decision_latency;     ///< last live rank's decision time
  Rational baseline;             ///< fault-free decision_latency for (n, lambda)
  Rational recovery_time;        ///< max(0, decision_latency - baseline)
};

/// Fill every zero-valued derived knob from (params, plan): the view
/// length, and enough views for disturbances, loss budgets, and a full
/// leader rotation to settle.
[[nodiscard]] ConsensusOptions resolve_consensus_options(
    const PostalParams& params, const FaultPlan* plan,
    const ConsensusOptions& options);

/// Run consensus under `plan` (nullptr = fault-free) and judge it:
/// crash-aware machine validation plus agreement / validity / integrity /
/// single-proposer and the guarded liveness-under-quorum clause
/// (coord/validator.hpp). The fault-free baseline for recovery_time comes
/// from a sequential fault-free reference run of the same resolved options
/// (skipped when the plan itself is empty).
[[nodiscard]] ConsensusReport run_consensus(const PostalParams& params,
                                            const FaultPlan* plan = nullptr,
                                            const ConsensusOptions& options = {});

}  // namespace postal::coord
