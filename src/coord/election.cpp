#include "coord/election.hpp"

#include <algorithm>
#include <memory>

#include "coord/validator.hpp"
#include "oracle/oracle.hpp"
#include "sim/par_machine.hpp"
#include "support/error.hpp"

namespace postal::coord {
namespace {

// Wire encoding: ctl_a = kind(8) << 56 | sender(32) << 24 | term(24),
// ctl_b = the claimed leader. Requires n <= 2^32 and term < 2^24 (terms
// grow only by usurpations, each of which strictly improves the leader's
// priority or answers a real crash, so they stay tiny in practice).
enum class Wire : std::uint8_t {
  kHeartbeat = 1,  ///< leader -> all, every period
  kProbe = 2,      ///< candidate -> every better-priority rank
  kAlive = 3,      ///< probe reply from a non-leader (carries its belief)
  kVictory = 4,    ///< new leader -> all; also the live leader's probe reply
};

constexpr std::uint64_t kTermMask = (1ULL << 24) - 1;

Packet make_packet(Wire kind, ProcId sender, std::uint32_t term, ProcId leader) {
  return Packet{/*msg=*/0,
                (static_cast<std::uint64_t>(kind) << 56) |
                    (static_cast<std::uint64_t>(sender) << 24) |
                    (term & kTermMask),
                static_cast<std::uint64_t>(leader)};
}

// Timer tokens: kind(8) << 56 | generation. Machine timers cannot be
// cancelled, so every (re)arm bumps the rank's generation and stale
// firings are ignored by comparing tokens.
enum class Tok : std::uint8_t { kWatchdog = 1, kProbe = 2, kHeartbeat = 3 };

std::uint64_t make_token(Tok kind, std::uint64_t gen) {
  return (static_cast<std::uint64_t>(kind) << 56) | (gen & ((1ULL << 56) - 1));
}

// Sharded runner factory: one ElectionProtocol per shard, per-rank results
// harvested on reclaim. Each rank's handlers run only on its owner shard,
// so the per-shard harvests write disjoint slots and the counter sums
// equal the sequential totals.
class ElectionFactory final : public ShardProtocolFactory {
 public:
  ElectionFactory(const PostalParams& params, const ElectionOptions& options)
      : params_(params), options_(options) {
    harvest_.beliefs.resize(params.n());
    harvest_.logs.resize(params.n());
  }

  [[nodiscard]] std::unique_ptr<Protocol> make(std::uint32_t /*shard*/,
                                               std::uint32_t /*shards*/) override {
    return std::make_unique<ElectionProtocol>(params_, options_);
  }

  void reclaim(std::uint32_t /*shard*/,
               std::unique_ptr<Protocol> protocol) override {
    static_cast<const ElectionProtocol&>(*protocol).harvest(harvest_);
  }

  [[nodiscard]] ElectionHarvest& harvest() noexcept { return harvest_; }

 private:
  const PostalParams& params_;
  const ElectionOptions& options_;
  ElectionHarvest harvest_;
};

// Derived timing shared by resolve_election_options and the runner's
// settle judgment, so "the horizon we derive" and "the horizon we accept
// as settled" are the same quantity by construction.
struct ElectionTiming {
  Rational period;
  Rational watchdog;
  Rational margin;            ///< settle margin past the last disturbance
  Rational last_disturbance;  ///< latest crash / spike influence
  bool bounded_losses = true; ///< every lossy link has a finite budget
};

ElectionTiming derive_election_timing(const PostalParams& params,
                                      const FaultPlan* plan,
                                      const ElectionOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  ElectionTiming t;
  t.period = options.heartbeat_period;
  if (t.period == Rational(0)) {
    t.period = rmax(lambda * Rational(4),
                    Rational(2 * static_cast<std::int64_t>(n > 0 ? n - 1 : 0)));
  }
  t.watchdog = t.period *
                   Rational(static_cast<std::int64_t>(options.miss_threshold)) +
               lambda +
               Rational(static_cast<std::int64_t>(n)) + options.timeout_slack;
  const Rational probe_wait = Rational(static_cast<std::int64_t>(n)) +
                              lambda * Rational(2) + Rational(2) +
                              options.timeout_slack;
  // One full detect-probe-announce round, with port serialization and
  // flight time on both the announcement and the follow-up heartbeat.
  const Rational round = t.watchdog + probe_wait +
                         Rational(2 * static_cast<std::int64_t>(n)) +
                         lambda * Rational(4);
  std::int64_t loss_budget = 0;
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      t.last_disturbance = rmax(t.last_disturbance, c.time);
    }
    for (const LatencySpike& s : plan->spikes) {
      t.last_disturbance = rmax(t.last_disturbance, s.until + s.extra);
    }
    for (const LinkLoss& l : plan->losses) {
      if (l.p > Rational(0)) {
        if (l.max_losses == 0) t.bounded_losses = false;
        loss_budget += static_cast<std::int64_t>(
            std::min<std::uint64_t>(l.max_losses, 64));
      }
    }
  }
  // Every eaten message can cost at most one spurious round (a missed
  // heartbeat, probe, or victory), and the usurpation chain strictly
  // improves the leader's priority, so it is bounded by n.
  const std::int64_t chain =
      static_cast<std::int64_t>(std::min<std::uint64_t>(n, 64));
  t.margin = t.watchdog + round * Rational(loss_budget + chain + 2);
  return t;
}

}  // namespace

ElectionProtocol::ElectionProtocol(const PostalParams& params,
                                   const ElectionOptions& options)
    : n_(params.n()),
      lambda_(params.lambda()),
      options_(options),
      state_(params.n()) {
  POSTAL_REQUIRE(n_ <= (1ULL << 32),
                 "ElectionProtocol: packet encoding requires n <= 2^32");
  POSTAL_REQUIRE(options_.initial_leader < n_,
                 "ElectionProtocol: initial_leader out of range");
  POSTAL_REQUIRE(options_.miss_threshold >= 1,
                 "ElectionProtocol: miss_threshold must be >= 1");
  POSTAL_REQUIRE(options_.timeout_slack >= Rational(0),
                 "ElectionProtocol: timeout_slack must be >= 0");
  period_ = options_.heartbeat_period;
  if (period_ == Rational(0)) {
    period_ = rmax(lambda_ * Rational(4),
                   Rational(2 * static_cast<std::int64_t>(n_ > 0 ? n_ - 1 : 0)));
  }
  POSTAL_REQUIRE(period_ > Rational(0),
                 "ElectionProtocol: heartbeat_period must be > 0");
  // Watchdog: miss_threshold silent periods, plus the flight and the
  // output-port serialization of a full heartbeat round, plus slack.
  watchdog_ = period_ *
                  Rational(static_cast<std::int64_t>(options_.miss_threshold)) +
              lambda_ +
              Rational(static_cast<std::int64_t>(n_)) + options_.timeout_slack;
  // Probe window: the candidate serializes up to n - 1 probes, the reply
  // makes the round trip, and the replier may queue behind its own sends.
  probe_wait_ = Rational(static_cast<std::int64_t>(n_)) + lambda_ * Rational(2) +
                Rational(2) + options_.timeout_slack;
  if (options_.horizon == Rational(0)) {
    // Standalone default (the runner derives a plan-aware horizon): room
    // for one detection + election round past the watchdog.
    options_.horizon =
        watchdog_ + probe_wait_ + period_ * Rational(4) + lambda_ * Rational(4);
  }
  if (options_.policy == ElectionPolicy::kOracleDepth) {
    const oracle::ScheduleOracle oracle(n_, lambda_);
    depth_.resize(n_);
    for (std::uint64_t r = 0; r < n_; ++r) depth_[r] = oracle.info(r).depth;
  }
}

bool ElectionProtocol::better(ProcId a, ProcId b) const {
  if (options_.policy == ElectionPolicy::kHighestRank) return a > b;
  // kOracleDepth: closer to the BCAST root wins; ties to the smaller rank.
  if (depth_[a] != depth_[b]) return depth_[a] < depth_[b];
  return a < b;
}

Rational ElectionProtocol::do_send(MachineContext& ctx, ProcId dst,
                                   const Packet& packet) {
  // Mirror the machine's output-port FIFO so timers can be armed relative
  // to the exact transmission start (the reliable_bcast idiom).
  ProcState& st = state_[ctx.self()];
  const Rational start = rmax(ctx.now(), st.port_free);
  st.port_free = start + Rational(1);
  ctx.send(dst, packet);
  return start;
}

void ElectionProtocol::arm_at(MachineContext& ctx, const Rational& at,
                              std::uint64_t token) {
  if (at >= options_.horizon) return;  // quiescence: no timers past the horizon
  ctx.set_timer(at - ctx.now(), token);
}

void ElectionProtocol::arm_watchdog(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  ++st.watchdog_gen;
  arm_at(ctx, ctx.now() + watchdog_, make_token(Tok::kWatchdog, st.watchdog_gen));
}

void ElectionProtocol::log_event(MachineContext& ctx, ElectionEvent::Kind kind) {
  ProcState& st = state_[ctx.self()];
  st.log.push_back(
      ElectionEvent{ctx.now(), ctx.self(), kind, st.term, st.leader});
}

void ElectionProtocol::heartbeat_round(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  for (ProcId p = 0; p < n_; ++p) {
    if (p == ctx.self()) continue;
    ++counters_.heartbeats_sent;
    do_send(ctx, p, make_packet(Wire::kHeartbeat, ctx.self(), st.term, st.leader));
  }
  arm_at(ctx, ctx.now() + period_, make_token(Tok::kHeartbeat, st.hb_gen));
}

void ElectionProtocol::begin_candidacy(MachineContext& ctx, bool takeover) {
  ProcState& st = state_[ctx.self()];
  st.candidate = true;
  if (takeover) ++counters_.takeovers;
  bool probed = false;
  for (ProcId p = 0; p < n_; ++p) {
    if (p == ctx.self() || !better(p, ctx.self())) continue;
    ++counters_.probes_sent;
    do_send(ctx, p, make_packet(Wire::kProbe, ctx.self(), st.term, st.leader));
    probed = true;
  }
  if (!probed) {
    declare_victory(ctx);
    return;
  }
  ++st.probe_gen;
  arm_at(ctx, ctx.now() + probe_wait_, make_token(Tok::kProbe, st.probe_gen));
}

void ElectionProtocol::declare_victory(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  POSTAL_CHECK(st.term < kTermMask);
  st.term += 1;
  st.leader = ctx.self();
  st.candidate = false;
  ++st.watchdog_gen;  // cancel: leaders do not watch themselves
  ++st.probe_gen;
  ++st.hb_gen;
  log_event(ctx, ElectionEvent::Kind::kVictory);
  for (ProcId p = 0; p < n_; ++p) {
    if (p == ctx.self()) continue;
    ++counters_.victories_sent;
    do_send(ctx, p, make_packet(Wire::kVictory, ctx.self(), st.term, st.leader));
  }
  // The victory round doubles as the first heartbeat round.
  arm_at(ctx, ctx.now() + period_, make_token(Tok::kHeartbeat, st.hb_gen));
}

void ElectionProtocol::consider(MachineContext& ctx, ProcId claimed,
                                std::uint32_t term) {
  ProcState& st = state_[ctx.self()];
  if (term == st.term && claimed == st.leader) {
    // A sign of life from the current leader: the suspicion (if any) was
    // spurious; fall back to following.
    if (st.leader != ctx.self()) {
      st.candidate = false;
      ++st.probe_gen;
      arm_watchdog(ctx);
    }
    return;
  }
  const bool newer =
      term > st.term || (term == st.term && better(claimed, st.leader));
  if (!newer) return;  // stale claim; the sender will adopt us soon enough
  const bool was_leader = st.leader == ctx.self();
  st.leader = claimed;
  st.term = term;
  st.candidate = false;
  ++st.probe_gen;
  ++counters_.adoptions;
  log_event(ctx, ElectionEvent::Kind::kAdopt);
  if (was_leader && claimed != ctx.self()) {
    ++st.hb_gen;  // stop heartbeating
    ++counters_.step_downs;
    log_event(ctx, ElectionEvent::Kind::kStepDown);
  }
  arm_watchdog(ctx);
  if (better(ctx.self(), claimed)) {
    // Bully usurpation: a worse-priority rank won (our probes or its
    // victories were lost). Re-elect on top under a higher term.
    begin_candidacy(ctx, /*takeover=*/true);
  }
}

void ElectionProtocol::on_start(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  st.started = true;
  st.leader = options_.initial_leader;
  st.term = 0;
  if (n_ == 1) return;
  if (ctx.self() == st.leader) {
    ++st.hb_gen;
    heartbeat_round(ctx);
  } else {
    arm_watchdog(ctx);
  }
}

void ElectionProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  const auto kind = static_cast<Wire>(packet.ctl_a >> 56);
  const auto sender = static_cast<ProcId>((packet.ctl_a >> 24) & 0xffffffffULL);
  const auto term = static_cast<std::uint32_t>(packet.ctl_a & kTermMask);
  const auto claimed = static_cast<ProcId>(packet.ctl_b);
  ProcState& st = state_[ctx.self()];
  switch (kind) {
    case Wire::kHeartbeat:
    case Wire::kVictory:
      consider(ctx, claimed, term);
      break;
    case Wire::kProbe:
      if (st.leader == ctx.self()) {
        ++counters_.victories_sent;
        do_send(ctx, sender,
                make_packet(Wire::kVictory, ctx.self(), st.term, st.leader));
      } else {
        ++counters_.alives_sent;
        do_send(ctx, sender,
                make_packet(Wire::kAlive, ctx.self(), st.term, st.leader));
      }
      break;
    case Wire::kAlive:
      // A better-priority rank lives; let it (or the leader it believes
      // in) claim victory, and re-suspect if nothing arrives in time.
      if (term > st.term) {
        consider(ctx, claimed, term);
      } else if (st.candidate) {
        st.candidate = false;
        ++st.probe_gen;
        arm_watchdog(ctx);
      }
      break;
  }
}

void ElectionProtocol::on_timer(MachineContext& ctx, std::uint64_t token) {
  const auto kind = static_cast<Tok>(token >> 56);
  const std::uint64_t gen = token & ((1ULL << 56) - 1);
  ProcState& st = state_[ctx.self()];
  switch (kind) {
    case Tok::kWatchdog:
      if (gen != st.watchdog_gen || st.leader == ctx.self()) return;
      ++counters_.suspicions;
      log_event(ctx, ElectionEvent::Kind::kSuspect);
      begin_candidacy(ctx, /*takeover=*/false);
      break;
    case Tok::kProbe:
      // The probe window passed with neither an ALIVE nor a VICTORY:
      // every better-priority rank is dead. Take over.
      if (gen != st.probe_gen || !st.candidate) return;
      declare_victory(ctx);
      break;
    case Tok::kHeartbeat:
      if (gen != st.hb_gen || st.leader != ctx.self()) return;
      heartbeat_round(ctx);
      break;
  }
}

void ElectionProtocol::harvest(ElectionHarvest& out) const {
  out.counters.heartbeats_sent += counters_.heartbeats_sent;
  out.counters.probes_sent += counters_.probes_sent;
  out.counters.alives_sent += counters_.alives_sent;
  out.counters.victories_sent += counters_.victories_sent;
  out.counters.suspicions += counters_.suspicions;
  out.counters.takeovers += counters_.takeovers;
  out.counters.adoptions += counters_.adoptions;
  out.counters.step_downs += counters_.step_downs;
  for (std::uint64_t r = 0; r < n_; ++r) {
    const ProcState& st = state_[r];
    if (!st.started) continue;  // another shard's rank
    out.beliefs[r] = RankBelief{true, st.leader, st.term};
    out.logs[r] = st.log;
  }
}

ElectionOptions resolve_election_options(const PostalParams& params,
                                         const FaultPlan* plan,
                                         const ElectionOptions& options) {
  ElectionOptions resolved = options;
  const ElectionTiming timing = derive_election_timing(params, plan, resolved);
  resolved.heartbeat_period = timing.period;
  if (resolved.horizon == Rational(0)) {
    resolved.horizon = timing.last_disturbance + timing.margin +
                       timing.period * Rational(2);
  }
  return resolved;
}

ElectionReport run_election(const PostalParams& params, const FaultPlan* plan,
                            const ElectionOptions& options) {
  ElectionReport report;
  report.options = resolve_election_options(params, plan, options);
  const std::uint64_t n = params.n();

  ParMachine machine(params, /*messages=*/1);
  machine.set_time_path(report.options.time_path);
  machine.set_threads(report.options.threads == 0 ? 1 : report.options.threads);
  if (plan != nullptr) machine.attach_faults(*plan);
  ElectionFactory factory(params, report.options);
  report.result = machine.run(factory);
  report.counters = factory.harvest().counters;
  report.beliefs = std::move(factory.harvest().beliefs);

  // Canonical event order: by time, ties by rank, preserving each rank's
  // chronological log order -- identical at every thread count.
  for (std::uint64_t r = 0; r < n; ++r) {
    for (const ElectionEvent& e : factory.harvest().logs[r]) {
      report.events.push_back(e);
    }
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const ElectionEvent& a, const ElectionEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });

  const ElectionTiming timing =
      derive_election_timing(params, plan, report.options);
  report.watchdog = timing.watchdog;

  std::vector<std::uint8_t> crashed(n, 0);
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      if (c.proc < n && crashed[c.proc] == 0) {
        crashed[c.proc] = 1;
        report.crashed.push_back(c.proc);
      }
    }
    std::sort(report.crashed.begin(), report.crashed.end());
  }
  report.settle_time = timing.last_disturbance + timing.margin;
  report.settled =
      timing.bounded_losses && report.settle_time <= report.options.horizon;

  for (ProcId p = 0; p < n; ++p) {
    if (crashed[p] == 0 && report.beliefs[p].started) {
      report.leader = report.beliefs[p].leader;
      break;
    }
  }

  // Latency: when did the final leadership stabilize, and how long after
  // the initial leader's crash (the bench_coord trajectory quantities).
  report.first_suspect = Rational(0);
  report.elected_at = Rational(0);
  for (const ElectionEvent& e : report.events) {
    if (e.kind == ElectionEvent::Kind::kSuspect &&
        report.first_suspect == Rational(0)) {
      report.first_suspect = e.time;
    }
    const bool settles_leader = (e.kind == ElectionEvent::Kind::kAdopt ||
                                 e.kind == ElectionEvent::Kind::kVictory) &&
                                e.leader == report.leader;
    if (settles_leader && e.rank < n && crashed[e.rank] == 0) {
      report.elected_at = rmax(report.elected_at, e.time);
    }
  }
  report.election_latency = report.elected_at;
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      if (c.proc == report.options.initial_leader &&
          report.elected_at > c.time) {
        report.election_latency = report.elected_at - c.time;
        break;
      }
    }
  }

  ValidatorOptions vopts;
  vopts.messages = 1;
  vopts.preholds = true;  // control-plane traffic: no payload causality
  vopts.fifo_receive = true;
  vopts.require_coverage = false;
  vopts.time_path = report.options.time_path;
  if (plan != nullptr) vopts.crashes = plan->crashes;
  report.validation = validate_schedule(report.result.schedule, params, vopts);

  report.check = check_election(report, params, plan);
  return report;
}

}  // namespace postal::coord
