#include "coord/validator.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "oracle/oracle.hpp"

namespace postal::coord {

std::string CoordCheck::summary() const {
  if (ok) return "ok";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):";
  for (const auto& v : violations) oss << "\n  - " << v;
  return oss.str();
}

namespace {

bool is_fault_free(const FaultPlan* plan) {
  return plan == nullptr || plan->empty();
}

/// Earliest crash time per rank (a plan may list several).
std::map<ProcId, Rational> crash_times(const FaultPlan* plan, std::uint64_t n) {
  std::map<ProcId, Rational> out;
  if (plan == nullptr) return out;
  for (const CrashFault& c : plan->crashes) {
    if (c.proc >= n) continue;
    auto [it, inserted] = out.emplace(c.proc, c.time);
    if (!inserted) it->second = rmin(it->second, c.time);
  }
  return out;
}

void add(CoordCheck& check, std::string text) {
  check.violations.push_back(std::move(text));
}

}  // namespace

CoordCheck check_election(const ElectionReport& report,
                          const PostalParams& params, const FaultPlan* plan) {
  CoordCheck check;
  const std::uint64_t n = params.n();
  const auto crashes = crash_times(plan, n);

  if (!report.validation.ok) {
    add(check, "machine validation failed: " + report.validation.summary());
  }

  if (is_fault_free(plan)) {
    // Nothing disturbed the run: nobody may suspect, nobody may move.
    if (report.counters.suspicions != 0) {
      std::ostringstream oss;
      oss << "fault-free run raised " << report.counters.suspicions
          << " suspicion(s)";
      add(check, oss.str());
    }
    for (ProcId p = 0; p < n; ++p) {
      const RankBelief& b = report.beliefs[p];
      if (!b.started) continue;
      if (b.leader != report.options.initial_leader || b.term != 0) {
        std::ostringstream oss;
        oss << "fault-free run moved rank " << p << " to leader " << b.leader
            << " term " << b.term << " (expected leader "
            << report.options.initial_leader << " term 0)";
        add(check, oss.str());
      }
    }
  }

  if (report.settled) {
    check.liveness_checked = true;
    // Agreement: one live leader, one term, across every live started rank.
    std::optional<ProcId> leader;
    std::optional<std::uint32_t> term;
    for (ProcId p = 0; p < n; ++p) {
      if (crashes.contains(p) || !report.beliefs[p].started) continue;
      const RankBelief& b = report.beliefs[p];
      if (!leader.has_value()) {
        leader = b.leader;
        term = b.term;
        continue;
      }
      if (b.leader != *leader || b.term != *term) {
        std::ostringstream oss;
        oss << "settled run split: rank " << p << " follows leader "
            << b.leader << " term " << b.term << " but rank(s) before it "
            << "follow leader " << *leader << " term " << *term;
        add(check, oss.str());
      }
    }
    if (leader.has_value() && crashes.contains(*leader)) {
      std::ostringstream oss;
      oss << "settled run follows crashed leader " << *leader;
      add(check, oss.str());
    }
    // Legitimacy under crash-only plans: no message was ever lost or
    // delayed, so the survivors must converge on the policy's best
    // survivor (the initial leader if it lives).
    const bool crash_only = plan == nullptr ||
                            (plan->losses.empty() && plan->spikes.empty());
    if (leader.has_value() && crash_only) {
      ProcId expected = report.options.initial_leader;
      if (crashes.contains(expected)) {
        std::vector<std::uint64_t> depth;
        if (report.options.policy == ElectionPolicy::kOracleDepth) {
          const oracle::ScheduleOracle oracle(n, params.lambda());
          depth.resize(n);
          for (std::uint64_t r = 0; r < n; ++r) depth[r] = oracle.info(r).depth;
        }
        std::optional<ProcId> best;
        for (ProcId p = 0; p < n; ++p) {
          if (crashes.contains(p) || !report.beliefs[p].started) continue;
          if (!best.has_value()) {
            best = p;
            continue;
          }
          const bool wins =
              report.options.policy == ElectionPolicy::kHighestRank
                  ? p > *best
                  : (depth[p] != depth[*best] ? depth[p] < depth[*best]
                                              : p < *best);
          if (wins) best = p;
        }
        if (best.has_value()) expected = *best;
      }
      if (*leader != expected) {
        std::ostringstream oss;
        oss << "settled crash-only run elected " << *leader
            << " but the legitimate leader is " << expected;
        add(check, oss.str());
      }
    }
  }

  check.ok = check.violations.empty();
  return check;
}

CoordCheck check_consensus(const ConsensusReport& report,
                           const PostalParams& params, const FaultPlan* plan) {
  CoordCheck check;
  const std::uint64_t n = params.n();
  const auto crashes = crash_times(plan, n);
  const std::uint32_t base = report.options.value_base;

  if (!report.validation.ok) {
    add(check, "machine validation failed: " + report.validation.summary());
  }

  // Integrity: at most one decide per rank, consistent with the harvested
  // decisions. (Crashed ranks may legitimately have decided pre-crash.)
  std::vector<std::uint32_t> decide_events(n, 0);
  std::set<std::uint32_t> proposed_values;
  std::map<std::uint32_t, const ConsensusEvent*> proposers;  // view -> event
  std::optional<std::uint32_t> agreed;
  for (const ConsensusEvent& e : report.events) {
    if (e.rank >= n) {
      std::ostringstream oss;
      oss << "event names rank " << e.rank << " out of range";
      add(check, oss.str());
      continue;
    }
    const auto it = crashes.find(e.rank);
    if (it != crashes.end() && e.time >= it->second) {
      std::ostringstream oss;
      oss << "rank " << e.rank << " logged an event at t=" << e.time.str()
          << " at/after its crash at t=" << it->second.str();
      add(check, oss.str());
    }
    switch (e.kind) {
      case ConsensusEvent::Kind::kViewChange:
        break;
      case ConsensusEvent::Kind::kPropose: {
        // A single legitimate proposer per view: the view's round-robin
        // leader, proposing some rank's client value, at most once.
        if (e.rank != e.view % n) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " proposed in view " << e.view
              << " led by rank " << (e.view % n);
          add(check, oss.str());
        }
        auto [pit, inserted] = proposers.emplace(e.view, &e);
        if (!inserted) {
          std::ostringstream oss;
          oss << "view " << e.view << " has two proposals (value "
              << pit->second->value << " then " << e.value << ")";
          add(check, oss.str());
        }
        if (e.value < base || e.value - base >= n) {
          std::ostringstream oss;
          oss << "proposed value " << e.value << " is nobody's client value";
          add(check, oss.str());
        }
        proposed_values.insert(e.value);
        break;
      }
      case ConsensusEvent::Kind::kDecide: {
        ++decide_events[e.rank];
        if (decide_events[e.rank] > 1) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " decided more than once";
          add(check, oss.str());
        }
        if (!agreed.has_value()) {
          agreed = e.value;
        } else if (e.value != *agreed) {
          std::ostringstream oss;
          oss << "agreement broken: decided values " << *agreed << " and "
              << e.value;
          add(check, oss.str());
        }
        // Validity: a decided value must have been proposed (events are in
        // canonical time order, so the proposal was logged already).
        if (!proposed_values.contains(e.value)) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " decided value " << e.value
              << " which was never proposed";
          add(check, oss.str());
        }
        break;
      }
    }
  }
  for (ProcId p = 0; p < n; ++p) {
    const RankDecision& d = report.decisions[p];
    if (!d.started) continue;
    if (d.decided != (decide_events[p] != 0)) {
      std::ostringstream oss;
      oss << "rank " << p << " harvested decided=" << (d.decided ? 1 : 0)
          << " but logged " << decide_events[p] << " decide event(s)";
      add(check, oss.str());
    }
    if (d.decided && agreed.has_value() && d.value != *agreed) {
      std::ostringstream oss;
      oss << "rank " << p << " harvested value " << d.value
          << " but the decided value is " << *agreed;
      add(check, oss.str());
    }
  }

  // Guarded liveness: the disturbances were bounded, the view budget
  // covered them, and a quorum survived -- so every live rank must have
  // decided.
  const std::uint64_t survivors = n - crashes.size();
  if (report.settled && survivors >= report.quorum) {
    check.liveness_checked = true;
    for (ProcId p = 0; p < n; ++p) {
      if (crashes.contains(p)) continue;
      const RankDecision& d = report.decisions[p];
      if (d.started && !d.decided) {
        std::ostringstream oss;
        oss << "liveness: live rank " << p << " never decided (settled run, "
            << survivors << " survivors >= quorum " << report.quorum << ")";
        add(check, oss.str());
      }
    }
  }

  if (is_fault_free(plan)) {
    // Undisturbed, view 0's leader (rank 0) must win immediately with its
    // own client value.
    for (ProcId p = 0; p < n; ++p) {
      const RankDecision& d = report.decisions[p];
      if (!d.started) continue;
      if (!d.decided || d.value != base || d.view != 0) {
        std::ostringstream oss;
        oss << "fault-free run: rank " << p << " should decide value " << base
            << " in view 0 but "
            << (d.decided ? "decided value " + std::to_string(d.value) +
                                " in view " + std::to_string(d.view)
                          : std::string("never decided"));
        add(check, oss.str());
      }
    }
  }

  check.ok = check.violations.empty();
  return check;
}

}  // namespace postal::coord
