#include "coord/validator.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "oracle/oracle.hpp"

namespace postal::coord {

std::string CoordCheck::summary() const {
  if (ok) return "ok";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):";
  for (const auto& v : violations) oss << "\n  - " << v;
  return oss.str();
}

namespace {

bool is_fault_free(const FaultPlan* plan) {
  return plan == nullptr || plan->empty();
}

/// Earliest crash time per rank (a plan may list several).
std::map<ProcId, Rational> crash_times(const FaultPlan* plan, std::uint64_t n) {
  std::map<ProcId, Rational> out;
  if (plan == nullptr) return out;
  for (const CrashFault& c : plan->crashes) {
    if (c.proc >= n) continue;
    auto [it, inserted] = out.emplace(c.proc, c.time);
    if (!inserted) it->second = rmin(it->second, c.time);
  }
  return out;
}

void add(CoordCheck& check, std::string text) {
  check.violations.push_back(std::move(text));
}

}  // namespace

CoordCheck check_election(const ElectionReport& report,
                          const PostalParams& params, const FaultPlan* plan) {
  CoordCheck check;
  const std::uint64_t n = params.n();
  const auto crashes = crash_times(plan, n);

  if (!report.validation.ok) {
    add(check, "machine validation failed: " + report.validation.summary());
  }

  if (is_fault_free(plan)) {
    // Nothing disturbed the run: nobody may suspect, nobody may move.
    if (report.counters.suspicions != 0) {
      std::ostringstream oss;
      oss << "fault-free run raised " << report.counters.suspicions
          << " suspicion(s)";
      add(check, oss.str());
    }
    for (ProcId p = 0; p < n; ++p) {
      const RankBelief& b = report.beliefs[p];
      if (!b.started) continue;
      if (b.leader != report.options.initial_leader || b.term != 0) {
        std::ostringstream oss;
        oss << "fault-free run moved rank " << p << " to leader " << b.leader
            << " term " << b.term << " (expected leader "
            << report.options.initial_leader << " term 0)";
        add(check, oss.str());
      }
    }
  }

  if (report.settled) {
    check.liveness_checked = true;
    // Agreement: one live leader, one term, across every live started rank.
    std::optional<ProcId> leader;
    std::optional<std::uint32_t> term;
    for (ProcId p = 0; p < n; ++p) {
      if (crashes.contains(p) || !report.beliefs[p].started) continue;
      const RankBelief& b = report.beliefs[p];
      if (!leader.has_value()) {
        leader = b.leader;
        term = b.term;
        continue;
      }
      if (b.leader != *leader || b.term != *term) {
        std::ostringstream oss;
        oss << "settled run split: rank " << p << " follows leader "
            << b.leader << " term " << b.term << " but rank(s) before it "
            << "follow leader " << *leader << " term " << *term;
        add(check, oss.str());
      }
    }
    if (leader.has_value() && crashes.contains(*leader)) {
      std::ostringstream oss;
      oss << "settled run follows crashed leader " << *leader;
      add(check, oss.str());
    }
    // Legitimacy under crash-only plans: no message was ever lost or
    // delayed, so the survivors must converge on the policy's best
    // survivor (the initial leader if it lives).
    const bool crash_only = plan == nullptr ||
                            (plan->losses.empty() && plan->spikes.empty());
    if (leader.has_value() && crash_only) {
      ProcId expected = report.options.initial_leader;
      if (crashes.contains(expected)) {
        std::vector<std::uint64_t> depth;
        if (report.options.policy == ElectionPolicy::kOracleDepth) {
          const oracle::ScheduleOracle oracle(n, params.lambda());
          depth.resize(n);
          for (std::uint64_t r = 0; r < n; ++r) depth[r] = oracle.info(r).depth;
        }
        std::optional<ProcId> best;
        for (ProcId p = 0; p < n; ++p) {
          if (crashes.contains(p) || !report.beliefs[p].started) continue;
          if (!best.has_value()) {
            best = p;
            continue;
          }
          const bool wins =
              report.options.policy == ElectionPolicy::kHighestRank
                  ? p > *best
                  : (depth[p] != depth[*best] ? depth[p] < depth[*best]
                                              : p < *best);
          if (wins) best = p;
        }
        if (best.has_value()) expected = *best;
      }
      if (*leader != expected) {
        std::ostringstream oss;
        oss << "settled crash-only run elected " << *leader
            << " but the legitimate leader is " << expected;
        add(check, oss.str());
      }
    }
  }

  check.ok = check.violations.empty();
  return check;
}

CoordCheck check_consensus(const ConsensusReport& report,
                           const PostalParams& params, const FaultPlan* plan) {
  CoordCheck check;
  const std::uint64_t n = params.n();
  const auto crashes = crash_times(plan, n);
  const std::uint32_t base = report.options.value_base;

  if (!report.validation.ok) {
    add(check, "machine validation failed: " + report.validation.summary());
  }

  // Integrity: at most one decide per rank, consistent with the harvested
  // decisions. (Crashed ranks may legitimately have decided pre-crash.)
  std::vector<std::uint32_t> decide_events(n, 0);
  std::set<std::uint32_t> proposed_values;
  std::map<std::uint32_t, const ConsensusEvent*> proposers;  // view -> event
  std::optional<std::uint32_t> agreed;
  for (const ConsensusEvent& e : report.events) {
    if (e.rank >= n) {
      std::ostringstream oss;
      oss << "event names rank " << e.rank << " out of range";
      add(check, oss.str());
      continue;
    }
    const auto it = crashes.find(e.rank);
    if (it != crashes.end() && e.time >= it->second) {
      std::ostringstream oss;
      oss << "rank " << e.rank << " logged an event at t=" << e.time.str()
          << " at/after its crash at t=" << it->second.str();
      add(check, oss.str());
    }
    switch (e.kind) {
      case ConsensusEvent::Kind::kViewChange:
        break;
      case ConsensusEvent::Kind::kPropose: {
        // A single legitimate proposer per view: the view's round-robin
        // leader, proposing some rank's client value, at most once.
        if (e.rank != e.view % n) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " proposed in view " << e.view
              << " led by rank " << (e.view % n);
          add(check, oss.str());
        }
        auto [pit, inserted] = proposers.emplace(e.view, &e);
        if (!inserted) {
          std::ostringstream oss;
          oss << "view " << e.view << " has two proposals (value "
              << pit->second->value << " then " << e.value << ")";
          add(check, oss.str());
        }
        if (e.value < base || e.value - base >= n) {
          std::ostringstream oss;
          oss << "proposed value " << e.value << " is nobody's client value";
          add(check, oss.str());
        }
        proposed_values.insert(e.value);
        break;
      }
      case ConsensusEvent::Kind::kDecide: {
        ++decide_events[e.rank];
        if (decide_events[e.rank] > 1) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " decided more than once";
          add(check, oss.str());
        }
        if (!agreed.has_value()) {
          agreed = e.value;
        } else if (e.value != *agreed) {
          std::ostringstream oss;
          oss << "agreement broken: decided values " << *agreed << " and "
              << e.value;
          add(check, oss.str());
        }
        // Validity: a decided value must have been proposed (events are in
        // canonical time order, so the proposal was logged already).
        if (!proposed_values.contains(e.value)) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " decided value " << e.value
              << " which was never proposed";
          add(check, oss.str());
        }
        break;
      }
    }
  }
  for (ProcId p = 0; p < n; ++p) {
    const RankDecision& d = report.decisions[p];
    if (!d.started) continue;
    if (d.decided != (decide_events[p] != 0)) {
      std::ostringstream oss;
      oss << "rank " << p << " harvested decided=" << (d.decided ? 1 : 0)
          << " but logged " << decide_events[p] << " decide event(s)";
      add(check, oss.str());
    }
    if (d.decided && agreed.has_value() && d.value != *agreed) {
      std::ostringstream oss;
      oss << "rank " << p << " harvested value " << d.value
          << " but the decided value is " << *agreed;
      add(check, oss.str());
    }
  }

  // Guarded liveness: the disturbances were bounded, the view budget
  // covered them, and a quorum survived -- so every live rank must have
  // decided.
  const std::uint64_t survivors = n - crashes.size();
  if (report.settled && survivors >= report.quorum) {
    check.liveness_checked = true;
    for (ProcId p = 0; p < n; ++p) {
      if (crashes.contains(p)) continue;
      const RankDecision& d = report.decisions[p];
      if (d.started && !d.decided) {
        std::ostringstream oss;
        oss << "liveness: live rank " << p << " never decided (settled run, "
            << survivors << " survivors >= quorum " << report.quorum << ")";
        add(check, oss.str());
      }
    }
  }

  if (is_fault_free(plan)) {
    // Undisturbed, view 0's leader (rank 0) must win immediately with its
    // own client value.
    for (ProcId p = 0; p < n; ++p) {
      const RankDecision& d = report.decisions[p];
      if (!d.started) continue;
      if (!d.decided || d.value != base || d.view != 0) {
        std::ostringstream oss;
        oss << "fault-free run: rank " << p << " should decide value " << base
            << " in view 0 but "
            << (d.decided ? "decided value " + std::to_string(d.value) +
                                " in view " + std::to_string(d.view)
                          : std::string("never decided"));
        add(check, oss.str());
      }
    }
  }

  check.ok = check.violations.empty();
  return check;
}

namespace {

/// One leader's lease for one view: the acquisition plus every quorum
/// extension, closed by construction at the view boundary.
struct LeaseInterval {
  ProcId rank = 0;
  std::uint32_t view = 0;  ///< fencing token = view + 1
  Rational start;
  Rational until;
};

/// Apply the config commands of an agreed slot assignment in slot order
/// to the initial full membership. Returns the resulting member set.
std::vector<ProcId> apply_slot_configs(
    std::uint64_t n, const std::map<std::uint32_t, std::uint32_t>& slot_values,
    std::uint64_t limit) {
  std::vector<std::uint8_t> present(n, 1);
  for (const auto& [slot, value] : slot_values) {
    if (slot >= limit || !is_config_value(value)) continue;
    const ProcId rank = config_value_rank(value);
    if (rank >= n) continue;
    if (config_value_adds(value)) {
      present[rank] = 1;
    } else {
      std::uint64_t count = 0;
      for (const auto f : present) count += f;
      if (count > 1) present[rank] = 0;
    }
  }
  std::vector<ProcId> members;
  for (ProcId r = 0; r < n; ++r) {
    if (present[r] != 0) members.push_back(r);
  }
  return members;
}

}  // namespace

CoordCheck check_log(const LogReport& report, const PostalParams& params,
                     const FaultPlan* plan) {
  CoordCheck check;
  const std::uint64_t n = params.n();
  const std::uint64_t slots = report.slots;
  const auto crashes = crash_times(plan, n);
  const std::uint32_t base = report.options.value_base;
  const std::uint64_t commands = report.options.commands;

  if (!report.validation.ok) {
    add(check, "machine validation failed: " + report.validation.summary());
  }

  // Event integrity plus the agreement / validity / single-proposer and
  // lease bookkeeping all come from one pass over the canonical log.
  std::map<std::uint32_t, std::uint32_t> agreed;        // slot -> value
  std::map<std::uint64_t, ProcId> proposers;            // (view<<32|slot)
  std::map<std::uint32_t, std::uint32_t> client_slots;  // client idx -> slot
  std::vector<LeaseInterval> leases;
  std::uint64_t decide_events = 0;
  std::uint64_t acquire_events = 0;
  std::uint64_t stale_events = 0;
  std::uint64_t apply_events = 0;
  for (const LogEvent& e : report.events) {
    if (e.rank >= n) {
      std::ostringstream oss;
      oss << "event names rank " << e.rank << " out of range";
      add(check, oss.str());
      continue;
    }
    const auto it = crashes.find(e.rank);
    if (it != crashes.end() && e.time >= it->second) {
      std::ostringstream oss;
      oss << "rank " << e.rank << " logged an event at t=" << e.time.str()
          << " at/after its crash at t=" << it->second.str();
      add(check, oss.str());
    }
    switch (e.kind) {
      case LogEvent::Kind::kViewChange:
        break;
      case LogEvent::Kind::kLeaseAcquire: {
        ++acquire_events;
        if (!leases.empty() && leases.back().view == e.view) {
          std::ostringstream oss;
          oss << "view " << e.view << " granted two leases (ranks "
              << leases.back().rank << " and " << e.rank << ")";
          add(check, oss.str());
        }
        leases.push_back(LeaseInterval{e.rank, e.view, e.time, e.until});
        break;
      }
      case LogEvent::Kind::kLeaseRenew: {
        if (leases.empty() || leases.back().rank != e.rank ||
            leases.back().view != e.view) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " renewed a lease it never acquired "
              << "(view " << e.view << ")";
          add(check, oss.str());
          break;
        }
        if (e.until < leases.back().until) {
          std::ostringstream oss;
          oss << "rank " << e.rank << " renewal shrank the lease in view "
              << e.view;
          add(check, oss.str());
        }
        leases.back().until = e.until;
        break;
      }
      case LogEvent::Kind::kLeaseExpire:
        break;
      case LogEvent::Kind::kPropose: {
        if (e.slot >= slots) {
          std::ostringstream oss;
          oss << "proposal names slot " << e.slot << " out of range";
          add(check, oss.str());
          break;
        }
        const std::uint64_t key =
            (static_cast<std::uint64_t>(e.view) << 32) | e.slot;
        auto [pit, inserted] = proposers.emplace(key, e.rank);
        if (!inserted && pit->second != e.rank) {
          std::ostringstream oss;
          oss << "view " << e.view << " slot " << e.slot
              << " has two proposers (ranks " << pit->second << " and "
              << e.rank << ")";
          add(check, oss.str());
        }
        // Every proposal is a leader write under a live lease.
        if (n >= 2) {
          const bool covered =
              !leases.empty() && leases.back().rank == e.rank &&
              leases.back().view == e.view && !(e.time < leases.back().start) &&
              e.time < leases.back().until;
          if (!covered) {
            std::ostringstream oss;
            oss << "rank " << e.rank << " proposed slot " << e.slot
                << " in view " << e.view << " at t=" << e.time.str()
                << " outside its lease";
            add(check, oss.str());
          }
        }
        break;
      }
      case LogEvent::Kind::kCommit:
        break;
      case LogEvent::Kind::kDecide: {
        ++decide_events;
        if (e.slot >= slots) {
          std::ostringstream oss;
          oss << "decide names slot " << e.slot << " out of range";
          add(check, oss.str());
          break;
        }
        auto [ait, inserted] = agreed.emplace(e.slot, e.value);
        if (!inserted && ait->second != e.value) {
          std::ostringstream oss;
          oss << "agreement broken in slot " << e.slot << ": decided values "
              << ait->second << " and " << e.value;
          add(check, oss.str());
        }
        if (inserted) {
          // Validity: a client command in range (occupying one slot only)
          // or a well-formed config command.
          if (is_config_value(e.value)) {
            if (config_value_rank(e.value) >= n) {
              std::ostringstream oss;
              oss << "slot " << e.slot << " decided config command for rank "
                  << config_value_rank(e.value) << " out of range";
              add(check, oss.str());
            }
          } else if (e.value < base || e.value - base >= commands) {
            std::ostringstream oss;
            oss << "slot " << e.slot << " decided value " << e.value
                << " which is no client command";
            add(check, oss.str());
          } else {
            auto [cit, fresh] = client_slots.emplace(e.value - base, e.slot);
            if (!fresh) {
              std::ostringstream oss;
              oss << "client command " << (e.value - base)
                  << " decided in slots " << cit->second << " and " << e.slot;
              add(check, oss.str());
            }
          }
        }
        break;
      }
      case LogEvent::Kind::kStaleReject:
        ++stale_events;
        break;
      case LogEvent::Kind::kConfigApply:
        ++apply_events;
        break;
    }
  }

  // Lease mutual exclusion and fencing monotonicity: acquisition order is
  // canonical event order, so intervals must be disjoint in sequence and
  // the fencing tokens (view + 1) strictly increasing.
  for (std::size_t i = 1; i < leases.size(); ++i) {
    if (leases[i].view <= leases[i - 1].view) {
      std::ostringstream oss;
      oss << "fencing tokens not monotone: view " << leases[i - 1].view
          << " lease granted before view " << leases[i].view << " lease";
      add(check, oss.str());
    }
    if (leases[i].start < leases[i - 1].until) {
      std::ostringstream oss;
      oss << "lease overlap: rank " << leases[i - 1].rank << " held until t="
          << leases[i - 1].until.str() << " but rank " << leases[i].rank
          << " acquired at t=" << leases[i].start.str();
      add(check, oss.str());
    }
  }

  // Counter/event consistency (the fencing counter is part of the
  // contract: rejected stale-token writes are counted).
  if (decide_events != report.counters.decides ||
      acquire_events != report.counters.lease_acquisitions ||
      stale_events != report.counters.stale_rejects ||
      apply_events != report.counters.config_applies) {
    std::ostringstream oss;
    oss << "counters disagree with the event log (decides "
        << report.counters.decides << "/" << decide_events << ", leases "
        << report.counters.lease_acquisitions << "/" << acquire_events
        << ", stale rejects " << report.counters.stale_rejects << "/"
        << stale_events << ", config applies "
        << report.counters.config_applies << "/" << apply_events << ")";
    add(check, oss.str());
  }

  // Prefix durability and per-rank configuration consistency: a harvested
  // commit prefix covers only decided slots, the harvest matches the
  // agreed values, and the applied membership is exactly what the rank's
  // own decided prefix prescribes (so consecutive configurations differ by
  // one rank and quorums intersect through every change).
  for (ProcId p = 0; p < n; ++p) {
    const RankLog& rl = report.ranks[p];
    if (!rl.started) continue;
    for (std::uint64_t s = 0; s < rl.commit_prefix; ++s) {
      if (s < rl.slots.size() && !rl.slots[s].decided) {
        std::ostringstream oss;
        oss << "rank " << p << " reports commit prefix " << rl.commit_prefix
            << " but slot " << s << " is undecided";
        add(check, oss.str());
      }
    }
    std::uint64_t configs_in_prefix = 0;
    std::map<std::uint32_t, std::uint32_t> own_values;
    for (std::uint64_t s = 0; s < rl.slots.size(); ++s) {
      const SlotDecision& sd = rl.slots[s];
      if (!sd.decided) continue;
      own_values.emplace(static_cast<std::uint32_t>(s), sd.value);
      const auto ait = agreed.find(static_cast<std::uint32_t>(s));
      if (ait != agreed.end() && ait->second != sd.value) {
        std::ostringstream oss;
        oss << "rank " << p << " harvested value " << sd.value << " in slot "
            << s << " but the decided value is " << ait->second;
        add(check, oss.str());
      }
      if (s < rl.commit_prefix && is_config_value(sd.value)) {
        ++configs_in_prefix;
      }
    }
    if (configs_in_prefix != rl.config_epoch) {
      std::ostringstream oss;
      oss << "rank " << p << " applied " << rl.config_epoch
          << " config change(s) but its prefix holds " << configs_in_prefix;
      add(check, oss.str());
    }
    const std::vector<ProcId> expected =
        apply_slot_configs(n, own_values, rl.commit_prefix);
    if (rl.members != expected) {
      std::ostringstream oss;
      oss << "rank " << p
          << " membership does not match its decided prefix";
      add(check, oss.str());
    }
    if (rl.members.empty()) {
      std::ostringstream oss;
      oss << "rank " << p << " applied itself into an empty membership";
      add(check, oss.str());
    }
  }

  // Guarded liveness: disturbances bounded inside the view budget and
  // both the initial and final quorums survived -- every live final
  // member must hold the full decided log and one membership.
  std::uint64_t final_survivors = 0;
  for (const ProcId r : report.final_members) {
    if (!crashes.contains(r)) ++final_survivors;
  }
  const std::uint64_t survivors = n - crashes.size();
  const std::uint64_t final_quorum = report.final_members.size() / 2 + 1;
  if (report.settled && survivors >= report.quorum &&
      final_survivors >= final_quorum) {
    check.liveness_checked = true;
    const std::vector<ProcId>* members = nullptr;
    for (const ProcId r : report.final_members) {
      if (crashes.contains(r)) continue;
      const RankLog& rl = report.ranks[r];
      if (!rl.started) continue;
      if (rl.commit_prefix != slots) {
        std::ostringstream oss;
        oss << "liveness: live final member " << r << " holds prefix "
            << rl.commit_prefix << " of " << slots << " (settled run, "
            << final_survivors << " final survivors >= quorum " << final_quorum
            << ")";
        add(check, oss.str());
        continue;
      }
      if (members == nullptr) {
        members = &rl.members;
      } else if (rl.members != *members) {
        std::ostringstream oss;
        oss << "liveness: live final members disagree on the membership "
            << "(rank " << r << ")";
        add(check, oss.str());
      }
    }
  }

  // The strictness clause only binds when the resolved timings are at
  // least the derived-adequate ones: a caller-forced short lease or view
  // (the boundary-tie tests) legitimately lapses even undisturbed.
  bool adequate_timing = true;
  if (is_fault_free(plan) && report.options.reconfig.empty()) {
    LogOptions defaults = report.options;
    defaults.view_length = Rational(0);
    defaults.lease_length = Rational(0);
    defaults.max_views = 0;
    const LogOptions derived = resolve_log_options(params, plan, defaults);
    adequate_timing = report.options.view_length >= derived.view_length &&
                      report.options.lease_length >= derived.lease_length;
  }

  if (is_fault_free(plan) && report.options.reconfig.empty() &&
      adequate_timing) {
    // Undisturbed and static: view 0's leader decides every slot under a
    // single lease that never lapses, and nothing is ever fenced.
    for (ProcId p = 0; p < n; ++p) {
      const RankLog& rl = report.ranks[p];
      if (!rl.started) continue;
      for (std::uint64_t s = 0; s < rl.slots.size(); ++s) {
        const SlotDecision& sd = rl.slots[s];
        if (!sd.decided || sd.view != 0 ||
            sd.value != base + static_cast<std::uint32_t>(s)) {
          std::ostringstream oss;
          oss << "fault-free run: rank " << p << " should decide value "
              << (base + s) << " in view 0 for slot " << s;
          add(check, oss.str());
          break;
        }
      }
    }
    const std::uint64_t expected_leases = n >= 2 ? 1 : 0;
    if (report.counters.lease_acquisitions != expected_leases ||
        report.counters.lease_expiries != 0 ||
        report.counters.stale_rejects != 0) {
      std::ostringstream oss;
      oss << "fault-free run: expected " << expected_leases
          << " lease(s), no expiries and no stale rejects, got "
          << report.counters.lease_acquisitions << "/"
          << report.counters.lease_expiries << "/"
          << report.counters.stale_rejects;
      add(check, oss.str());
    }
  }

  check.ok = check.violations.empty();
  return check;
}

}  // namespace postal::coord
