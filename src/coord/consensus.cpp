#include "coord/consensus.hpp"

#include <algorithm>
#include <memory>

#include "coord/validator.hpp"
#include "sim/par_machine.hpp"
#include "support/error.hpp"

namespace postal::coord {
namespace {

// Wire encoding: ctl_a = kind(8) << 56 | sender(32) << 24 | view(24).
// ctl_b by kind:
//   VIEW-CHANGE     bit 63 = has_accepted, bits 32..55 = accepted view,
//                   bits 0..31 = accepted value
//   PROPOSE/COMMIT  bits 32..63 = renamed range end hi', bits 0..31 = value
//   ACK             0
// Requires n <= 2^32, views < 2^24, values < 2^32.
enum class Wire : std::uint8_t { kVC = 1, kPropose = 2, kAck = 3, kCommit = 4 };

constexpr std::uint64_t kViewMask = (1ULL << 24) - 1;

std::uint64_t make_ctl_a(Wire kind, ProcId sender, std::uint32_t view) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         (static_cast<std::uint64_t>(sender) << 24) | (view & kViewMask);
}

Packet make_vc(ProcId sender, std::uint32_t view, bool has_accepted,
               std::uint32_t accepted_view, std::uint32_t accepted_value) {
  std::uint64_t ctl_b = static_cast<std::uint64_t>(accepted_value);
  ctl_b |= (static_cast<std::uint64_t>(accepted_view) & kViewMask) << 32;
  if (has_accepted) ctl_b |= 1ULL << 63;
  return Packet{/*msg=*/0, make_ctl_a(Wire::kVC, sender, view), ctl_b};
}

Packet make_tree(Wire kind, ProcId sender, std::uint32_t view,
                 std::uint32_t value, std::uint64_t hi) {
  return Packet{/*msg=*/0, make_ctl_a(kind, sender, view),
                (hi << 32) | static_cast<std::uint64_t>(value)};
}

Packet make_ack(ProcId sender, std::uint32_t view) {
  return Packet{/*msg=*/0, make_ctl_a(Wire::kAck, sender, view), 0};
}

// Timer tokens: plain view number for the view-boundary timer; bit 40 set
// for the within-view repair wave (views are 24-bit, so no collision).
constexpr std::uint64_t kRepairBit = 1ULL << 40;

// Sharded runner factory (the election.cpp pattern): per-rank results
// harvested on reclaim, written once each because every rank's handlers
// run on exactly one shard.
class ConsensusFactory final : public ShardProtocolFactory {
 public:
  ConsensusFactory(const PostalParams& params, const ConsensusOptions& options)
      : params_(params), options_(options) {
    harvest_.decisions.resize(params.n());
    harvest_.logs.resize(params.n());
  }

  [[nodiscard]] std::unique_ptr<Protocol> make(std::uint32_t /*shard*/,
                                               std::uint32_t /*shards*/) override {
    return std::make_unique<ConsensusProtocol>(params_, options_);
  }

  void reclaim(std::uint32_t /*shard*/,
               std::unique_ptr<Protocol> protocol) override {
    static_cast<const ConsensusProtocol&>(*protocol).harvest(harvest_);
  }

  [[nodiscard]] ConsensusHarvest& harvest() noexcept { return harvest_; }

 private:
  const PostalParams& params_;
  const ConsensusOptions& options_;
  ConsensusHarvest harvest_;
};

}  // namespace

ConsensusProtocol::ConsensusProtocol(const PostalParams& params,
                                     const ConsensusOptions& options)
    : n_(params.n()),
      lambda_(params.lambda()),
      fib_(params.lambda()),
      options_(options),
      state_(params.n()) {
  POSTAL_REQUIRE(n_ <= (1ULL << 32),
                 "ConsensusProtocol: packet encoding requires n <= 2^32");
  POSTAL_REQUIRE(static_cast<std::uint64_t>(options_.value_base) + n_ <=
                     (1ULL << 32),
                 "ConsensusProtocol: value_base + n must fit 32 bits");
  POSTAL_REQUIRE(options_.view_length > Rational(0),
                 "ConsensusProtocol: view_length must be resolved (> 0)");
  POSTAL_REQUIRE(options_.max_views >= 1 && options_.max_views < (1U << 24),
                 "ConsensusProtocol: max_views must be in [1, 2^24)");
  POSTAL_REQUIRE(options_.timeout_slack >= Rational(0),
                 "ConsensusProtocol: timeout_slack must be >= 0");
  quorum_ = static_cast<std::uint32_t>(n_ / 2 + 1);
  // Repair fires once the fault-free tree + ack round trip must have
  // completed: anyone still silent was orphaned by a dead relay (or the
  // link ate a message) and gets the proposal again, point-to-point.
  const Rational fn = n_ >= 2 ? fib_.f(n_) : Rational(0);
  repair_after_ = fn + lambda_ * Rational(2) +
                  Rational(static_cast<std::int64_t>(n_)) + options_.timeout_slack;
}

Rational ConsensusProtocol::do_send(MachineContext& ctx, ProcId dst,
                                    const Packet& packet) {
  ProcState& st = state_[ctx.self()];
  const Rational start = rmax(ctx.now(), st.port_free);
  st.port_free = start + Rational(1);
  ctx.send(dst, packet);
  return start;
}

void ConsensusProtocol::decide(MachineContext& ctx, std::uint32_t value,
                               std::uint32_t view) {
  ProcState& st = state_[ctx.self()];
  st.decided = true;
  st.dec_value = value;
  st.dec_view = view;
  st.dec_at = ctx.now();
  st.collecting = false;
  ++counters_.decides;
  st.log.push_back(ConsensusEvent{ctx.now(), ctx.self(),
                                  ConsensusEvent::Kind::kDecide, view, value});
}

void ConsensusProtocol::relay_range(MachineContext& ctx, bool commit,
                                    std::uint32_t view, std::uint32_t value,
                                    std::uint64_t renamed, std::uint64_t hi) {
  // Algorithm BCAST's generalized-Fibonacci splits of the renamed range
  // [renamed, hi) rooted at leader_of(view) (the reliable_bcast loop,
  // re-rooted per view by the (r - leader) mod n renaming).
  const ProcId leader = leader_of(view);
  const Wire kind = commit ? Wire::kCommit : Wire::kPropose;
  std::uint64_t count = hi - renamed;
  while (count >= 2) {
    const std::uint64_t j = fib_.bcast_split(count);
    const std::uint64_t target = renamed + j;
    const ProcId dst = static_cast<ProcId>((target + leader) % n_);
    if (commit) {
      ++counters_.commit_relays;
    } else {
      ++counters_.proposal_relays;
    }
    do_send(ctx, dst, make_tree(kind, ctx.self(), view, value, hi));
    hi = target;  // the holder keeps [renamed, renamed + j)
    count = j;
  }
}

void ConsensusProtocol::begin_collect(MachineContext& ctx, std::uint32_t view) {
  ProcState& st = state_[ctx.self()];
  st.collecting = true;
  st.collect_view = view;
  st.proposed = false;
  st.vc_count = 1;  // the leader's own contribution
  st.best_has = st.has_accepted;
  st.best_view = st.accepted_view;
  st.best_value = st.accepted_value;
  if (st.vc_count >= quorum_) propose(ctx);  // only n == 1, handled earlier
}

void ConsensusProtocol::propose(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  const std::uint32_t view = st.collect_view;
  st.proposed = true;
  // Paxos value rule: re-propose the highest accepted value any quorum
  // member reported; a fresh view is free to propose the client value.
  st.chosen = st.best_has ? st.best_value : client_value(ctx.self());
  ++counters_.proposals;
  st.log.push_back(ConsensusEvent{ctx.now(), ctx.self(),
                                  ConsensusEvent::Kind::kPropose, view,
                                  st.chosen});
  // Self-accept, then disseminate over the view's broadcast tree.
  st.promised = std::max(st.promised, view);
  st.has_accepted = true;
  st.accepted_view = view;
  st.accepted_value = st.chosen;
  st.acked.assign(n_, 0);
  st.acked[ctx.self()] = 1;
  st.ack_count = 1;
  relay_range(ctx, /*commit=*/false, view, st.chosen, 0, n_);
  ctx.set_timer(repair_after_, kRepairBit | view);
}

void ConsensusProtocol::enter_view(MachineContext& ctx, std::uint32_t view) {
  ProcState& st = state_[ctx.self()];
  if (st.decided || view >= options_.max_views) return;
  st.promised = std::max(st.promised, view);  // the VIEW-CHANGE promise
  st.log.push_back(ConsensusEvent{ctx.now(), ctx.self(),
                                  ConsensusEvent::Kind::kViewChange, view, 0});
  const ProcId leader = leader_of(view);
  if (leader == ctx.self()) {
    begin_collect(ctx, view);
  } else {
    ++counters_.view_changes_sent;
    do_send(ctx, leader,
            make_vc(ctx.self(), view, st.has_accepted, st.accepted_view,
                    st.accepted_value));
  }
  if (view + 1 < options_.max_views) {
    const Rational next =
        options_.view_length * Rational(static_cast<std::int64_t>(view) + 1);
    ctx.set_timer(next - ctx.now(), view + 1);
  }
}

void ConsensusProtocol::on_start(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  st.started = true;
  if (n_ == 1) {
    // Degenerate quorum of one: propose and decide the client value.
    ++counters_.proposals;
    st.log.push_back(ConsensusEvent{ctx.now(), ctx.self(),
                                    ConsensusEvent::Kind::kPropose, 0,
                                    client_value(0)});
    decide(ctx, client_value(0), 0);
    return;
  }
  enter_view(ctx, 0);
}

void ConsensusProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  const auto kind = static_cast<Wire>(packet.ctl_a >> 56);
  const auto sender = static_cast<ProcId>((packet.ctl_a >> 24) & 0xffffffffULL);
  const auto view = static_cast<std::uint32_t>(packet.ctl_a & kViewMask);
  ProcState& st = state_[ctx.self()];
  switch (kind) {
    case Wire::kVC: {
      if (st.decided) {
        // Heal a straggler: a direct COMMIT in the view's renaming, with a
        // singleton range so the recipient relays nothing.
        ++counters_.heal_replies;
        const std::uint64_t renamed =
            (static_cast<std::uint64_t>(sender) + n_ - leader_of(view)) % n_;
        do_send(ctx, sender,
                make_tree(Wire::kCommit, ctx.self(), view, st.dec_value,
                          renamed + 1));
        return;
      }
      if (leader_of(view) != ctx.self()) return;  // misrouted
      if (!st.collecting || st.collect_view != view) return;  // stale view
      ++st.vc_count;
      const bool has = (packet.ctl_b >> 63) != 0;
      if (has) {
        const auto av = static_cast<std::uint32_t>((packet.ctl_b >> 32) & kViewMask);
        const auto aval = static_cast<std::uint32_t>(packet.ctl_b & 0xffffffffULL);
        if (!st.best_has || av > st.best_view) {
          st.best_has = true;
          st.best_view = av;
          st.best_value = aval;
        }
      }
      if (!st.proposed && st.vc_count >= quorum_) propose(ctx);
      break;
    }
    case Wire::kPropose: {
      const auto value = static_cast<std::uint32_t>(packet.ctl_b & 0xffffffffULL);
      const std::uint64_t hi = packet.ctl_b >> 32;
      const std::uint64_t renamed =
          (static_cast<std::uint64_t>(ctx.self()) + n_ - leader_of(view)) % n_;
      relay_range(ctx, /*commit=*/false, view, value, renamed, hi);
      if (!st.decided && view >= st.promised) {
        st.promised = view;
        st.has_accepted = true;
        st.accepted_view = view;
        st.accepted_value = value;
        ++counters_.acks_sent;
        do_send(ctx, leader_of(view), make_ack(ctx.self(), view));
      }
      break;
    }
    case Wire::kAck: {
      if (st.decided || !st.collecting || st.collect_view != view ||
          !st.proposed) {
        return;  // late ack for a view already resolved or abandoned
      }
      if (st.acked[sender] != 0) return;
      st.acked[sender] = 1;
      ++st.ack_count;
      if (st.ack_count >= quorum_) {
        // A quorum accepted: the value is chosen. Decide and commit it
        // down the same tree.
        decide(ctx, st.chosen, view);
        ++counters_.commits;
        relay_range(ctx, /*commit=*/true, view, st.chosen, 0, n_);
      }
      break;
    }
    case Wire::kCommit: {
      const auto value = static_cast<std::uint32_t>(packet.ctl_b & 0xffffffffULL);
      const std::uint64_t hi = packet.ctl_b >> 32;
      if (st.decided) return;  // duplicates carry the same value (agreement)
      decide(ctx, value, view);
      const std::uint64_t renamed =
          (static_cast<std::uint64_t>(ctx.self()) + n_ - leader_of(view)) % n_;
      relay_range(ctx, /*commit=*/true, view, value, renamed, hi);
      break;
    }
  }
}

void ConsensusProtocol::on_timer(MachineContext& ctx, std::uint64_t token) {
  ProcState& st = state_[ctx.self()];
  if ((token & kRepairBit) != 0) {
    const auto view = static_cast<std::uint32_t>(token & kViewMask);
    if (st.decided || !st.collecting || st.collect_view != view || !st.proposed) {
      return;  // the view resolved (or moved on) before repair was needed
    }
    for (ProcId p = 0; p < n_; ++p) {
      if (p == ctx.self() || st.acked[p] != 0) continue;
      ++counters_.proposal_repairs;
      const std::uint64_t renamed =
          (static_cast<std::uint64_t>(p) + n_ - leader_of(view)) % n_;
      do_send(ctx, p,
              make_tree(Wire::kPropose, ctx.self(), view, st.chosen, renamed + 1));
    }
    return;
  }
  enter_view(ctx, static_cast<std::uint32_t>(token));
}

void ConsensusProtocol::harvest(ConsensusHarvest& out) const {
  out.counters.view_changes_sent += counters_.view_changes_sent;
  out.counters.proposals += counters_.proposals;
  out.counters.proposal_relays += counters_.proposal_relays;
  out.counters.proposal_repairs += counters_.proposal_repairs;
  out.counters.acks_sent += counters_.acks_sent;
  out.counters.commits += counters_.commits;
  out.counters.commit_relays += counters_.commit_relays;
  out.counters.heal_replies += counters_.heal_replies;
  out.counters.decides += counters_.decides;
  for (std::uint64_t r = 0; r < n_; ++r) {
    const ProcState& st = state_[r];
    if (!st.started) continue;  // another shard's rank
    out.decisions[r] =
        RankDecision{true, st.decided, st.dec_value, st.dec_view, st.dec_at};
    out.logs[r] = st.log;
  }
}

namespace {

// Timing shared by resolve_consensus_options and the runner's settle
// judgment.
struct ConsensusTiming {
  Rational view_length;
  std::uint32_t min_views = 1;  ///< views needed for the plan to settle
  bool bounded_losses = true;
};

ConsensusTiming derive_consensus_timing(const PostalParams& params,
                                        const FaultPlan* plan,
                                        const ConsensusOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  ConsensusTiming t;
  t.view_length = options.view_length;
  if (t.view_length == Rational(0)) {
    // Tree down (f), acks up (lambda + port), the repair wave and its ack
    // round trip, and the commit tree: a fault-free view completes within
    // its window with room to spare.
    GenFib fib(lambda);
    const Rational fn = n >= 2 ? fib.f(n) : Rational(1);
    t.view_length = fn * Rational(2) + lambda * Rational(4) +
                    Rational(4 * static_cast<std::int64_t>(n)) +
                    options.timeout_slack * Rational(2);
  }
  std::int64_t loss_budget = 0;
  Rational last_disturbance{0};
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      last_disturbance = rmax(last_disturbance, c.time);
    }
    for (const LatencySpike& s : plan->spikes) {
      last_disturbance = rmax(last_disturbance, s.until + s.extra);
    }
    for (const LinkLoss& l : plan->losses) {
      if (l.p > Rational(0)) {
        if (l.max_losses == 0) t.bounded_losses = false;
        loss_budget += static_cast<std::int64_t>(
            std::min<std::uint64_t>(l.max_losses, 64));
      }
    }
  }
  // Views burned while disturbances are still landing, plus one per eaten
  // message, plus a full leader rotation (within n consecutive clean views
  // some live rank leads: either a quorum of undecided ranks makes
  // progress or a decided leader heals its callers), plus slack.
  const std::int64_t disturbed =
      (last_disturbance / t.view_length).ceil() + 1;
  const std::int64_t rotation =
      static_cast<std::int64_t>(std::min<std::uint64_t>(n, 64));
  const std::int64_t views = disturbed + loss_budget + rotation + 4;
  t.min_views = static_cast<std::uint32_t>(
      std::min<std::int64_t>(views, (1LL << 24) - 1));
  return t;
}

// The fault-free reference: the decision latency of the same resolved
// options with no plan attached, used for the recovery_time a chaos run
// reports (bench_coord's trajectory quantity).
Rational fault_free_latency(const PostalParams& params,
                            const ConsensusOptions& options) {
  Machine machine(params, /*messages=*/1);
  machine.set_time_path(options.time_path);
  ConsensusProtocol protocol(params, options);
  static_cast<void>(machine.run(protocol));
  ConsensusHarvest harvest;
  harvest.decisions.resize(params.n());
  harvest.logs.resize(params.n());
  protocol.harvest(harvest);
  Rational latest{0};
  for (const RankDecision& d : harvest.decisions) {
    if (d.decided) latest = rmax(latest, d.at);
  }
  return latest;
}

}  // namespace

ConsensusOptions resolve_consensus_options(const PostalParams& params,
                                           const FaultPlan* plan,
                                           const ConsensusOptions& options) {
  ConsensusOptions resolved = options;
  const ConsensusTiming timing = derive_consensus_timing(params, plan, resolved);
  resolved.view_length = timing.view_length;
  if (resolved.max_views == 0) resolved.max_views = timing.min_views;
  return resolved;
}

ConsensusReport run_consensus(const PostalParams& params, const FaultPlan* plan,
                              const ConsensusOptions& options) {
  ConsensusReport report;
  report.options = resolve_consensus_options(params, plan, options);
  const std::uint64_t n = params.n();
  report.quorum = static_cast<std::uint32_t>(n / 2 + 1);

  ParMachine machine(params, /*messages=*/1);
  machine.set_time_path(report.options.time_path);
  machine.set_threads(report.options.threads == 0 ? 1 : report.options.threads);
  if (plan != nullptr) machine.attach_faults(*plan);
  ConsensusFactory factory(params, report.options);
  report.result = machine.run(factory);
  report.counters = factory.harvest().counters;
  report.decisions = std::move(factory.harvest().decisions);

  for (std::uint64_t r = 0; r < n; ++r) {
    for (const ConsensusEvent& e : factory.harvest().logs[r]) {
      report.events.push_back(e);
    }
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const ConsensusEvent& a, const ConsensusEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });

  std::vector<std::uint8_t> crashed(n, 0);
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      if (c.proc < n && crashed[c.proc] == 0) {
        crashed[c.proc] = 1;
        report.crashed.push_back(c.proc);
      }
    }
    std::sort(report.crashed.begin(), report.crashed.end());
  }

  const ConsensusTiming timing =
      derive_consensus_timing(params, plan, report.options);
  report.settled =
      timing.bounded_losses && report.options.max_views >= timing.min_views;

  report.views_used = 0;
  for (const ConsensusEvent& e : report.events) {
    report.views_used = std::max(report.views_used, e.view);
  }

  report.decision_latency = Rational(0);
  for (ProcId p = 0; p < n; ++p) {
    if (crashed[p] != 0) continue;
    const RankDecision& d = report.decisions[p];
    if (d.started && d.decided) {
      report.decision_latency = rmax(report.decision_latency, d.at);
    }
  }
  report.baseline = (plan == nullptr || plan->empty())
                        ? report.decision_latency
                        : fault_free_latency(params, report.options);
  report.recovery_time = report.decision_latency > report.baseline
                             ? report.decision_latency - report.baseline
                             : Rational(0);

  ValidatorOptions vopts;
  vopts.messages = 1;
  vopts.preholds = true;  // control-plane traffic: no payload causality
  vopts.fifo_receive = true;
  vopts.require_coverage = false;
  vopts.time_path = report.options.time_path;
  if (plan != nullptr) vopts.crashes = plan->crashes;
  report.validation = validate_schedule(report.result.schedule, params, vopts);

  report.check = check_consensus(report, params, plan);
  return report;
}

}  // namespace postal::coord
