// Postal-model leader election (docs/COORDINATION.md).
//
// A term-based bully election layered on the exact MPS(n, lambda)
// simulator. The incumbent leader heartbeats every rank once per period;
// followers arm a lambda-scaled watchdog and, when miss_threshold periods
// pass in silence, suspect the leader and probe every rank whose priority
// beats their own. A probe answered by the live leader heals the suspicion
// with a VICTORY; an unanswered probe window lets the best surviving rank
// declare itself leader under a higher term. Terms make usurpation safe
// under seeded link loss: a stale leader that missed the election adopts
// the higher-term VICTORY the moment any heartbeat reaches it, and a
// better-priority rank that was usurped (its probes were eaten) re-elects
// itself on top, so the system converges to one live leader -- the clause
// the coordination validator certifies (coord/validator.hpp).
//
// Two deterministic priority policies: kHighestRank (classic bully) and
// kOracleDepth, which prefers the rank closest to the root of the optimal
// BCAST tree (smallest ScheduleOracle depth, ties to the smaller rank) --
// the rank whose expected re-broadcast completion is lowest.
//
// Every timer is a multiple of 1/q (lambda = p/q), so runs execute on the
// int64 tick fast path and are byte-identical on both TimePaths and at
// every ParMachine thread count (chaos-differential-tested). Heartbeats
// stop at a finite horizon so runs quiesce; the horizon is derived from
// the fault plan generously enough that every disturbance settles first.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coord/check.hpp"
#include "faults/fault_plan.hpp"
#include "sim/machine.hpp"
#include "sim/validator.hpp"

namespace postal::coord {

/// Deterministic successor priority.
enum class ElectionPolicy : std::uint8_t {
  kHighestRank,  ///< classic bully: the highest surviving rank wins
  kOracleDepth,  ///< smallest optimal-BCAST-tree depth wins, ties to the
                 ///< smaller rank (lowest expected re-broadcast completion)
};

/// Election knobs. Zero-valued times are derived (resolve_election_options).
struct ElectionOptions {
  ProcId initial_leader = 0;
  ElectionPolicy policy = ElectionPolicy::kHighestRank;
  /// Heartbeat period P. 0 derives max(4 lambda, 2 (n - 1)): lambda-scaled,
  /// but never faster than the output port can serialize n - 1 sends.
  Rational heartbeat_period{0};
  /// Consecutive silent periods before a follower suspects the leader.
  std::uint32_t miss_threshold = 2;
  /// Extra slack added to the watchdog and probe windows (>= 0).
  Rational timeout_slack{2};
  /// No timer is armed to fire at or after the horizon, so heartbeats (and
  /// with them the run) terminate. 0 derives a horizon from the fault plan
  /// that leaves every disturbance room to settle (resolve_election_options).
  Rational horizon{0};
  /// Time representation of the run and its validation (docs/PERFORMANCE.md).
  TimePath time_path = TimePath::kAuto;
  /// Simulation lanes (docs/SIMULATION.md); 0 = 1. Reports are
  /// byte-identical at every setting.
  unsigned threads = 0;
};

/// Traffic and transition counters of one run (summed across shards).
struct ElectionCounters {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t probes_sent = 0;   ///< candidacy probes to better ranks
  std::uint64_t alives_sent = 0;   ///< probe replies from non-leaders
  std::uint64_t victories_sent = 0;  ///< victory announcements + leader replies
  std::uint64_t suspicions = 0;    ///< watchdog firings that began a candidacy
  std::uint64_t takeovers = 0;     ///< candidacies begun to usurp a worse leader
  std::uint64_t adoptions = 0;     ///< leader/term changes accepted
  std::uint64_t step_downs = 0;    ///< leaders deposed by a higher term

  friend bool operator==(const ElectionCounters&, const ElectionCounters&) = default;
};

/// One rank-local transition, for the report's canonical event log and the
/// Chrome-trace overlay.
struct ElectionEvent {
  enum class Kind : std::uint8_t {
    kSuspect,   ///< watchdog fired; candidacy begins (leader = the suspect)
    kVictory,   ///< this rank declared itself leader under `term`
    kAdopt,     ///< adopted `leader` under `term`
    kStepDown,  ///< was leader, deposed by a higher term
  };
  Rational time;
  ProcId rank = 0;
  Kind kind = Kind::kSuspect;
  std::uint32_t term = 0;
  ProcId leader = 0;

  friend bool operator==(const ElectionEvent&, const ElectionEvent&) = default;
};

/// A rank's final belief when the run quiesced (crashed ranks: at crash).
struct RankBelief {
  bool started = false;
  ProcId leader = 0;
  std::uint32_t term = 0;

  friend bool operator==(const RankBelief&, const RankBelief&) = default;
};

/// Harvested per-run protocol state; ElectionProtocol::harvest fills the
/// slots of the ranks the instance ran (per-shard instances compose).
struct ElectionHarvest {
  ElectionCounters counters;
  std::vector<RankBelief> beliefs;               ///< sized n
  std::vector<std::vector<ElectionEvent>> logs;  ///< per rank, chronological
};

/// The event-driven election protocol. One instance drives one run; with
/// ParMachine, one instance per shard (handlers only touch per-rank state
/// of ranks the shard owns, so instances compose into the sequential run).
class ElectionProtocol final : public Protocol {
 public:
  /// `options` must be resolved (no zero-valued derived times); the runner
  /// resolves them, and resolve_election_options is exported for tests.
  ElectionProtocol(const PostalParams& params, const ElectionOptions& options);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;
  void on_timer(MachineContext& ctx, std::uint64_t token) override;

  /// Fold this instance's per-rank results into `out` (sized n).
  void harvest(ElectionHarvest& out) const;

 private:
  struct ProcState {
    bool started = false;
    ProcId leader = 0;
    std::uint32_t term = 0;
    bool candidate = false;
    std::uint64_t watchdog_gen = 0;  ///< stamps watchdog timers (no cancel API)
    std::uint64_t probe_gen = 0;     ///< stamps probe-window timers
    std::uint64_t hb_gen = 0;        ///< stamps heartbeat timers
    Rational port_free;              ///< local mirror of the output port
    std::vector<ElectionEvent> log;
  };

  [[nodiscard]] bool better(ProcId a, ProcId b) const;
  Rational do_send(MachineContext& ctx, ProcId dst, const Packet& packet);
  /// Arm a timer to fire at absolute time `at` unless at >= horizon.
  void arm_at(MachineContext& ctx, const Rational& at, std::uint64_t token);
  void arm_watchdog(MachineContext& ctx);
  void heartbeat_round(MachineContext& ctx);
  void begin_candidacy(MachineContext& ctx, bool takeover);
  void declare_victory(MachineContext& ctx);
  /// Apply a (leader, term) claim heard on the wire; `refreshing` claims
  /// from the current leader re-arm the watchdog.
  void consider(MachineContext& ctx, ProcId claimed, std::uint32_t term);
  void log_event(MachineContext& ctx, ElectionEvent::Kind kind);

  std::uint64_t n_;
  Rational lambda_;
  ElectionOptions options_;
  Rational period_;
  Rational watchdog_;    ///< follower patience before suspecting
  Rational probe_wait_;  ///< candidate patience for ALIVE/VICTORY replies
  std::vector<std::uint64_t> depth_;  ///< per-rank BCAST depth (kOracleDepth)
  std::vector<ProcState> state_;
  ElectionCounters counters_;
};

/// Everything one election run produces, judged.
struct ElectionReport {
  MachineResult result;
  ElectionCounters counters;
  std::vector<ElectionEvent> events;  ///< canonical (time, rank, seq) order
  std::vector<RankBelief> beliefs;    ///< per rank, at quiescence (or crash)
  SimReport validation;               ///< preholds + fifo + crash-aware
  CoordCheck check;                   ///< coordination safety clauses
  /// Resolved options (derived period/horizon filled in) of this run.
  ElectionOptions options;
  Rational watchdog;           ///< follower suspicion patience used
  Rational settle_time;        ///< when guarded clauses apply (<= horizon)
  bool settled = false;        ///< disturbances bounded and inside the horizon
  std::vector<ProcId> crashed; ///< ranks the plan crashes, sorted
  ProcId leader = 0;           ///< final leader of the lowest live rank
  Rational first_suspect;      ///< earliest kSuspect time (0 if none)
  Rational elected_at;         ///< last live adoption/victory of final leader
  Rational election_latency;   ///< elected_at - initial leader's crash (or 0)
};

/// Fill every zero-valued derived knob from (params, plan): the heartbeat
/// period, and a horizon generous enough that crashes, loss budgets, and
/// spike windows all settle before heartbeats stop.
[[nodiscard]] ElectionOptions resolve_election_options(
    const PostalParams& params, const FaultPlan* plan,
    const ElectionOptions& options);

/// Run the election under `plan` (nullptr = fault-free) and judge it:
/// crash-aware machine validation (ElectionReport::validation) plus the
/// coordination safety clauses (ElectionReport::check, see
/// coord/validator.hpp). The caller gets the full report either way.
[[nodiscard]] ElectionReport run_election(const PostalParams& params,
                                          const FaultPlan* plan = nullptr,
                                          const ElectionOptions& options = {});

}  // namespace postal::coord
