#include "coord/log.hpp"

#include <algorithm>
#include <memory>

#include "coord/validator.hpp"
#include "sim/par_machine.hpp"
#include "support/error.hpp"

namespace postal::coord {
namespace {

// Wire encoding: ctl_a = kind(8) << 56 | sender(16) << 40 | view(20) << 20
//                        | aux(20).
// aux and ctl_b by kind:
//   VIEW-CHANGE  aux 0; ctl_b = commit prefix(32) << 32 | acc count(32)
//   VC-ACC       aux = accepted view; ctl_b = slot(32) << 32 | value(32)
//   PROPOSE      aux = renamed range end hi'; ctl_b = slot << 32 | value
//   ACK          aux 0; ctl_b = slot
//   COMMIT       aux = hi' (0 = point-to-point, never relayed);
//                ctl_b = slot << 32 | value
//   RENEW        aux 0; ctl_b = renewal sequence number
//   RENEW-ACK    aux 0; ctl_b = the echoed sequence number
// Requires n <= 2^16, views < 2^20, slots <= 2^16, values < 2^32.
enum class Wire : std::uint8_t {
  kVC = 1,
  kVcAcc = 2,
  kPropose = 3,
  kAck = 4,
  kCommit = 5,
  kRenew = 6,
  kRenewAck = 7,
};

constexpr std::uint64_t kField20 = (1ULL << 20) - 1;

std::uint64_t make_ctl_a(Wire kind, ProcId sender, std::uint32_t view,
                         std::uint64_t aux) {
  return (static_cast<std::uint64_t>(kind) << 56) |
         ((static_cast<std::uint64_t>(sender) & 0xffffULL) << 40) |
         ((static_cast<std::uint64_t>(view) & kField20) << 20) |
         (aux & kField20);
}

Packet make_vc(ProcId sender, std::uint32_t view, std::uint64_t prefix,
               std::uint64_t acc_count) {
  return Packet{/*msg=*/0, make_ctl_a(Wire::kVC, sender, view, 0),
                (prefix << 32) | (acc_count & 0xffffffffULL)};
}

Packet make_vc_acc(ProcId sender, std::uint32_t view, std::uint32_t acc_view,
                   std::uint32_t slot, std::uint32_t value) {
  return Packet{/*msg=*/0, make_ctl_a(Wire::kVcAcc, sender, view, acc_view),
                (static_cast<std::uint64_t>(slot) << 32) |
                    static_cast<std::uint64_t>(value)};
}

Packet make_tree(Wire kind, ProcId sender, std::uint32_t view,
                 std::uint32_t slot, std::uint32_t value, std::uint64_t hi) {
  return Packet{/*msg=*/0, make_ctl_a(kind, sender, view, hi),
                (static_cast<std::uint64_t>(slot) << 32) |
                    static_cast<std::uint64_t>(value)};
}

Packet make_ack(ProcId sender, std::uint32_t view, std::uint32_t slot) {
  return Packet{/*msg=*/0, make_ctl_a(Wire::kAck, sender, view, 0), slot};
}

Packet make_renew(Wire kind, ProcId sender, std::uint32_t view,
                  std::uint32_t seq) {
  return Packet{/*msg=*/0, make_ctl_a(kind, sender, view, 0), seq};
}

// Timer tokens: kind(8) << 56 | payload. The payloads are a view number
// (boundary, repair, renew cadence), a lease generation (expiry), or a
// reconfig request index (trigger).
enum class Tok : std::uint8_t {
  kView = 1,
  kRepair = 2,
  kLeaseExpiry = 3,
  kRenew = 4,
  kReconfig = 5,
};

std::uint64_t make_token(Tok kind, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(kind) << 56) | payload;
}

// The serialized-port budget a full batch can spend at one rank: every
// slot's tree sends plus acks plus the commit wave, rounded up.
Rational port_budget(std::uint64_t n, std::uint64_t slots) {
  return Rational(
      static_cast<std::int64_t>((slots + 2) * (n + slots)));
}

// Sharded runner factory (the consensus.cpp pattern): per-rank results
// harvested on reclaim, written once each because every rank's handlers
// run on exactly one shard.
class LogFactory final : public ShardProtocolFactory {
 public:
  LogFactory(const PostalParams& params, const LogOptions& options)
      : params_(params), options_(options) {
    harvest_.ranks.resize(params.n());
    harvest_.logs.resize(params.n());
  }

  [[nodiscard]] std::unique_ptr<Protocol> make(std::uint32_t /*shard*/,
                                               std::uint32_t /*shards*/) override {
    return std::make_unique<LogProtocol>(params_, options_);
  }

  void reclaim(std::uint32_t /*shard*/,
               std::unique_ptr<Protocol> protocol) override {
    static_cast<const LogProtocol&>(*protocol).harvest(harvest_);
  }

  [[nodiscard]] LogHarvest& harvest() noexcept { return harvest_; }

 private:
  const PostalParams& params_;
  const LogOptions& options_;
  LogHarvest harvest_;
};

// The expected toggle directions: requests applied in order to the
// initial full membership. Returns one flag per request (true = add);
// `members` is left holding the expected final member set.
std::vector<std::uint8_t> expected_toggles(std::uint64_t n,
                                           const std::vector<ReconfigRequest>& ops,
                                           std::vector<ProcId>* members) {
  std::vector<std::uint8_t> present(n, 1);
  std::uint64_t count = n;
  std::vector<std::uint8_t> adds;
  adds.reserve(ops.size());
  for (const ReconfigRequest& op : ops) {
    POSTAL_REQUIRE(op.rank < n, "LogOptions: reconfig rank out of range");
    const bool add = present[op.rank] == 0;
    adds.push_back(add ? 1 : 0);
    present[op.rank] = add ? 1 : 0;
    count += add ? 1 : std::uint64_t(-1);
    POSTAL_REQUIRE(count >= 2,
                   "LogOptions: reconfig would shrink membership below 2");
  }
  if (members != nullptr) {
    members->clear();
    for (ProcId r = 0; r < n; ++r) {
      if (present[r] != 0) members->push_back(r);
    }
  }
  return adds;
}

}  // namespace

LogProtocol::LogProtocol(const PostalParams& params, const LogOptions& options)
    : n_(params.n()),
      lambda_(params.lambda()),
      fib_(params.lambda()),
      options_(options),
      total_slots_(options.commands + options.reconfig.size()),
      state_(params.n()) {
  POSTAL_REQUIRE(n_ >= 1 && n_ <= (1ULL << 16),
                 "LogProtocol: packet encoding requires n <= 2^16");
  POSTAL_REQUIRE(total_slots_ >= 1 && total_slots_ <= (1ULL << 16),
                 "LogProtocol: total slots must be in [1, 2^16]");
  POSTAL_REQUIRE(static_cast<std::uint64_t>(options_.value_base) +
                         options_.commands <
                     (1ULL << 31),
                 "LogProtocol: value_base + commands must stay below 2^31 "
                 "(bit 31 marks config commands)");
  POSTAL_REQUIRE(options_.view_length > Rational(0),
                 "LogProtocol: view_length must be resolved (> 0)");
  POSTAL_REQUIRE(options_.heartbeat_period > Rational(0),
                 "LogProtocol: heartbeat_period must be resolved (> 0)");
  POSTAL_REQUIRE(options_.lease_length > Rational(0),
                 "LogProtocol: lease_length must be resolved (> 0)");
  POSTAL_REQUIRE(options_.max_views >= 1 && options_.max_views < (1U << 20),
                 "LogProtocol: max_views must be in [1, 2^20)");
  POSTAL_REQUIRE(options_.timeout_slack >= Rational(0),
                 "LogProtocol: timeout_slack must be >= 0");
  if (!options_.reconfig.empty()) {
    POSTAL_REQUIRE(n_ >= 2, "LogProtocol: reconfiguration requires n >= 2");
    POSTAL_REQUIRE(options_.max_views + 2 < (1U << 14),
                   "LogProtocol: activation views must fit 14 bits");
    for (std::size_t i = 0; i < options_.reconfig.size(); ++i) {
      POSTAL_REQUIRE(options_.reconfig[i].at > Rational(0),
                     "LogProtocol: reconfig times must be > 0");
      POSTAL_REQUIRE(i == 0 ||
                         !(options_.reconfig[i].at < options_.reconfig[i - 1].at),
                     "LogProtocol: reconfig requests must be sorted by time");
    }
  }
  expected_add_ = expected_toggles(n_, options_.reconfig, nullptr);
  // Repair fires once the fault-free batch -- every slot's tree + ack
  // round trip through the serialized ports -- must have completed:
  // anyone still silent was orphaned by a dead relay.
  const Rational fn = n_ >= 2 ? fib_.f(n_) : Rational(0);
  repair_after_ = fn + lambda_ * Rational(2) + port_budget(n_, total_slots_) +
                  options_.timeout_slack;
}

const LogProtocol::Config& LogProtocol::config_for(const ProcState& st,
                                                   std::uint32_t view) const {
  // The applied history is monotone in from_view (clamped on apply); the
  // last entry at or before `view` governs it.
  for (auto it = st.configs.rbegin(); it != st.configs.rend(); ++it) {
    if (it->from_view <= view) return *it;
  }
  return st.configs.front();
}

bool LogProtocol::is_member(const Config& cfg, ProcId rank) const {
  return std::binary_search(cfg.members.begin(), cfg.members.end(), rank);
}

std::uint64_t LogProtocol::member_index(const Config& cfg, ProcId rank) const {
  const auto it =
      std::lower_bound(cfg.members.begin(), cfg.members.end(), rank);
  if (it == cfg.members.end() || *it != rank) return cfg.members.size();
  return static_cast<std::uint64_t>(it - cfg.members.begin());
}

Rational LogProtocol::do_send(MachineContext& ctx, ProcId dst,
                              const Packet& packet) {
  ProcState& st = state_[ctx.self()];
  const Rational start = rmax(ctx.now(), st.port_free);
  st.port_free = start + Rational(1);
  ctx.send(dst, packet);
  return start;
}

void LogProtocol::log_event(ProcState& st, const Rational& now,
                            LogEvent::Kind kind, std::uint32_t view,
                            std::uint32_t slot, std::uint32_t value,
                            const Rational& until) {
  LogEvent e;
  e.time = now;
  e.rank = static_cast<ProcId>(&st - state_.data());
  e.kind = kind;
  e.view = view;
  e.slot = slot;
  e.value = value;
  e.until = until;
  st.log.push_back(e);
}

void LogProtocol::decide(MachineContext& ctx, std::uint32_t slot,
                         std::uint32_t value, std::uint32_t view) {
  ProcState& st = state_[ctx.self()];
  Slot& sl = st.slots[slot];
  sl.decided = true;
  sl.dec_value = value;
  sl.dec_view = view;
  sl.dec_at = ctx.now();
  // Decided state doubles as accepted state so VC-ACCs cover it: a later
  // leader re-proposes (and re-commits) it, which agreement keeps safe.
  sl.has_accepted = true;
  sl.accepted_view = view;
  sl.accepted_value = value;
  ++counters_.decides;
  log_event(st, ctx.now(), LogEvent::Kind::kDecide, view, slot, value);
  advance_prefix(ctx);
}

void LogProtocol::advance_prefix(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  while (st.commit_prefix < total_slots_ &&
         st.slots[st.commit_prefix].decided) {
    const std::uint32_t value = st.slots[st.commit_prefix].dec_value;
    ++st.commit_prefix;
    if (is_config_value(value)) apply_config(ctx, value);
  }
}

void LogProtocol::apply_config(MachineContext& ctx, std::uint32_t value) {
  ProcState& st = state_[ctx.self()];
  const Config& last = st.configs.back();
  Config next;
  // Clamp keeps the history monotone even when a command re-proposed
  // across views carries a stale activation view.
  next.from_view = std::max(config_value_act_view(value), last.from_view);
  next.members = last.members;
  const ProcId rank = config_value_rank(value);
  const auto it =
      std::lower_bound(next.members.begin(), next.members.end(), rank);
  const bool present = it != next.members.end() && *it == rank;
  if (config_value_adds(value)) {
    if (!present) next.members.insert(it, rank);
  } else if (present && next.members.size() > 1) {
    next.members.erase(it);
  }
  ++st.applied_configs;
  ++counters_.config_applies;
  log_event(st, ctx.now(), LogEvent::Kind::kConfigApply, next.from_view,
            static_cast<std::uint32_t>(st.commit_prefix - 1), value);
  st.configs.push_back(std::move(next));
}

void LogProtocol::relay_range(MachineContext& ctx, const Config& cfg,
                              bool commit, std::uint32_t view,
                              std::uint32_t slot, std::uint32_t value,
                              std::uint64_t renamed, std::uint64_t hi) {
  // Algorithm BCAST's generalized-Fibonacci splits of the renamed member
  // range [renamed, hi) rooted at the view's leader (the consensus relay
  // loop over the view's configuration instead of all n ranks). hi is
  // clamped defensively: configurations can disagree transiently around
  // an activation view, and a scrambled relay is safe -- commits carry
  // decided values and proposals are re-checked per receiver.
  const std::uint64_t m = cfg.members.size();
  const std::uint64_t leader_idx = view % m;
  if (hi > m) hi = m;
  while (hi > renamed && hi - renamed >= 2) {
    const std::uint64_t j = fib_.bcast_split(hi - renamed);
    const std::uint64_t target = renamed + j;
    const ProcId dst = cfg.members[(target + leader_idx) % m];
    if (commit) {
      ++counters_.commit_relays;
    } else {
      ++counters_.proposal_relays;
    }
    do_send(ctx, dst,
            make_tree(commit ? Wire::kCommit : Wire::kPropose, ctx.self(),
                      view, slot, value, hi));
    hi = target;  // the holder keeps [renamed, renamed + j)
  }
}

void LogProtocol::heal(MachineContext& ctx, ProcId dst,
                       std::uint64_t their_prefix, std::uint32_t view) {
  // The catch-up/snapshot transfer: direct COMMITs (hi = 0, never
  // relayed) for every decided slot in our prefix the straggler lacks.
  ProcState& st = state_[ctx.self()];
  for (std::uint64_t s = their_prefix; s < st.commit_prefix; ++s) {
    ++counters_.catchup_commits;
    do_send(ctx, dst,
            make_tree(Wire::kCommit, ctx.self(), view,
                      static_cast<std::uint32_t>(s), st.slots[s].dec_value,
                      /*hi=*/0));
  }
}

void LogProtocol::enter_view(MachineContext& ctx, std::uint32_t view) {
  ProcState& st = state_[ctx.self()];
  if (done(st) || view >= options_.max_views) return;
  st.promised = std::max(st.promised, view);  // the VIEW-CHANGE promise
  st.collecting = false;
  st.acquired = false;
  st.lease_live = false;  // capped at the boundary by construction
  log_event(st, ctx.now(), LogEvent::Kind::kViewChange, view, 0, 0);
  const Config& cfg = config_for(st, view);
  const ProcId leader = leader_of(cfg, view);
  if (leader == ctx.self()) {
    begin_collect(ctx, view);
  } else {
    // Non-members report too: the VC is also the catch-up probe that
    // keeps removed (and not-yet-re-added) ranks healed.
    std::uint64_t acc_count = 0;
    for (const Slot& sl : st.slots) {
      if (sl.has_accepted) ++acc_count;
    }
    ++counters_.view_changes_sent;
    do_send(ctx, leader, make_vc(ctx.self(), view, st.commit_prefix, acc_count));
    for (std::uint32_t s = 0; s < total_slots_; ++s) {
      const Slot& sl = st.slots[s];
      if (!sl.has_accepted) continue;
      ++counters_.vc_accs_sent;
      do_send(ctx, leader,
              make_vc_acc(ctx.self(), view, sl.accepted_view, s,
                          sl.accepted_value));
    }
  }
  if (view + 1 < options_.max_views) {
    const Rational next =
        options_.view_length * Rational(static_cast<std::int64_t>(view) + 1);
    ctx.set_timer(next - ctx.now(), make_token(Tok::kView, view + 1));
  }
}

void LogProtocol::begin_collect(MachineContext& ctx, std::uint32_t view) {
  ProcState& st = state_[ctx.self()];
  st.collecting = true;
  st.collect_view = view;
  st.vc_count = 1;  // the leader's own contribution
  st.expected_accs = 0;
  st.got_accs = 0;
  st.renew_seq = 0;
  st.renew_acks = 0;
  st.vc_from.assign(n_, 0);
  st.vc_from[ctx.self()] = 1;
  st.best_has.assign(total_slots_, 0);
  st.best_view.assign(total_slots_, 0);
  st.best_value.assign(total_slots_, 0);
  st.proposed.assign(total_slots_, 0);
  st.committed.assign(total_slots_, 0);
  st.acked.assign(total_slots_, {});
  st.ack_counts.assign(total_slots_, 0);
  for (std::uint32_t s = 0; s < total_slots_; ++s) {
    const Slot& sl = st.slots[s];
    if (!sl.has_accepted) continue;
    st.best_has[s] = 1;
    st.best_view[s] = sl.accepted_view;
    st.best_value[s] = sl.accepted_value;
  }
  try_acquire(ctx);
}

void LogProtocol::try_acquire(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  const Config& cfg = config_for(st, st.collect_view);
  // Acquisition needs the VC quorum and every accepted-state report the
  // counted VCs announced (FIFO links deliver a VC before its VC-ACCs).
  if (st.acquired || st.vc_count < quorum_of(cfg) ||
      st.got_accs < st.expected_accs) {
    return;
  }
  acquire(ctx);
}

void LogProtocol::acquire(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  const std::uint32_t view = st.collect_view;
  st.acquired = true;
  st.lease_live = true;
  ++st.lease_gen;
  const Rational ve = view_end(view);
  Rational expiry = ctx.now() + options_.lease_length;
  if (ve < expiry) expiry = ve;  // cross-view exclusion by construction
  st.lease_expiry = expiry;
  ++counters_.lease_acquisitions;
  log_event(st, ctx.now(), LogEvent::Kind::kLeaseAcquire, view, 0, 0, expiry);
  // The expiry timer is armed before any proposal is sent, so on-grid
  // ties resolve in favour of the timer (the (time, seq) contract).
  ctx.set_timer(expiry - ctx.now(), make_token(Tok::kLeaseExpiry, st.lease_gen));
  if (st.lease_expiry < ve) {
    ctx.set_timer(options_.heartbeat_period, make_token(Tok::kRenew, view));
  }
  propose_batch(ctx);
}

void LogProtocol::propose_batch(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  const std::uint32_t view = st.collect_view;
  const Config& cfg = config_for(st, view);
  const std::uint64_t m = cfg.members.size();
  // Slots with reported accepted values keep them (the per-slot Paxos
  // value rule); free slots take unplaced client commands in index order,
  // then triggered reconfig commands, count-matched against the config
  // values already in play.
  std::vector<std::uint8_t> used_client(options_.commands, 0);
  std::uint64_t config_known = 0;
  for (std::uint32_t s = 0; s < total_slots_; ++s) {
    if (st.best_has[s] == 0) continue;
    const std::uint32_t v = st.best_value[s];
    if (is_config_value(v)) {
      ++config_known;
    } else if (v >= options_.value_base &&
               v < options_.value_base + options_.commands) {
      used_client[v - options_.value_base] = 1;
    }
  }
  std::uint64_t next_client = 0;
  std::uint64_t next_config = config_known;
  bool any = false;
  for (std::uint32_t s = 0; s < total_slots_; ++s) {
    std::uint32_t value = 0;
    if (st.best_has[s] != 0) {
      value = st.best_value[s];
    } else {
      while (next_client < options_.commands && used_client[next_client] != 0) {
        ++next_client;
      }
      if (next_client < options_.commands) {
        value = options_.value_base + static_cast<std::uint32_t>(next_client);
        used_client[next_client] = 1;
      } else if (next_config < options_.reconfig.size() &&
                 next_config < st.triggered) {
        value = make_config_value(expected_add_[next_config] != 0, view + 2,
                                  options_.reconfig[next_config].rank);
        ++next_config;
        ++counters_.reconfig_commands;
      } else {
        continue;  // nothing admissible for this slot yet
      }
    }
    any = true;
    st.proposed[s] = 1;
    ++counters_.proposals;
    log_event(st, ctx.now(), LogEvent::Kind::kPropose, view, s, value);
    // Self-accept, then disseminate over the view's broadcast tree.
    Slot& sl = st.slots[s];
    if (!sl.decided) {
      sl.has_accepted = true;
      sl.accepted_view = view;
      sl.accepted_value = value;
    }
    st.acked[s].assign(n_, 0);
    st.acked[s][ctx.self()] = 1;
    st.ack_counts[s] = 1;
    relay_range(ctx, cfg, /*commit=*/false, view, s, value, 0, m);
  }
  if (any) {
    ctx.set_timer(repair_after_, make_token(Tok::kRepair, view));
  }
}

void LogProtocol::commit_slot(MachineContext& ctx, std::uint32_t slot) {
  ProcState& st = state_[ctx.self()];
  const std::uint32_t view = st.collect_view;
  const std::uint32_t value = st.slots[slot].accepted_value;
  st.committed[slot] = 1;
  ++counters_.commits;
  log_event(st, ctx.now(), LogEvent::Kind::kCommit, view, slot, value);
  if (!st.slots[slot].decided) decide(ctx, slot, value, view);
  // Dissemination is a leader write: fenced once the lease lapses (the
  // value stays chosen -- the next leader's VC-ACCs re-commit it).
  if (st.lease_live && ctx.now() < st.lease_expiry) {
    const Config& cfg = config_for(st, view);
    relay_range(ctx, cfg, /*commit=*/true, view, slot, value, 0,
                cfg.members.size());
  }
}

void LogProtocol::on_start(MachineContext& ctx) {
  ProcState& st = state_[ctx.self()];
  st.started = true;
  st.slots.assign(total_slots_, Slot{});
  Config init;
  init.from_view = 0;
  init.members.resize(n_);
  for (ProcId r = 0; r < n_; ++r) init.members[r] = r;
  st.configs.clear();
  st.configs.push_back(std::move(init));
  if (n_ == 1) {
    // Degenerate quorum of one: propose and decide every slot at once
    // (reconfiguration is rejected at resolve time for n == 1).
    for (std::uint32_t s = 0; s < total_slots_; ++s) {
      const std::uint32_t value = options_.value_base + s;
      ++counters_.proposals;
      log_event(st, ctx.now(), LogEvent::Kind::kPropose, 0, s, value);
      decide(ctx, s, value, 0);
    }
    return;
  }
  for (std::size_t i = 0; i < options_.reconfig.size(); ++i) {
    ctx.set_timer(options_.reconfig[i].at - ctx.now(),
                  make_token(Tok::kReconfig, i));
  }
  enter_view(ctx, 0);
}

void LogProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  const auto kind = static_cast<Wire>(packet.ctl_a >> 56);
  const auto sender = static_cast<ProcId>((packet.ctl_a >> 40) & 0xffffULL);
  const auto view = static_cast<std::uint32_t>((packet.ctl_a >> 20) & kField20);
  const auto aux = static_cast<std::uint64_t>(packet.ctl_a & kField20);
  ProcState& st = state_[ctx.self()];
  switch (kind) {
    case Wire::kVC: {
      const std::uint64_t sender_prefix = packet.ctl_b >> 32;
      const std::uint64_t acc_count = packet.ctl_b & 0xffffffffULL;
      // Uniform healing first: anyone whose prefix leads the caller's
      // transfers the missing decided suffix, done rank or not.
      if (st.commit_prefix > sender_prefix) {
        heal(ctx, sender, sender_prefix, view);
      }
      if (!st.collecting || st.collect_view != view || st.acquired) return;
      const Config& cfg = config_for(st, view);
      if (!is_member(cfg, sender)) return;  // observers don't count
      if (st.vc_from[sender] != 0) return;
      st.vc_from[sender] = 1;
      ++st.vc_count;
      st.expected_accs += acc_count;
      try_acquire(ctx);
      break;
    }
    case Wire::kVcAcc: {
      if (!st.collecting || st.collect_view != view || st.acquired) return;
      if (st.vc_from[sender] == 0) return;  // its VC was not counted
      const auto slot = static_cast<std::uint32_t>(packet.ctl_b >> 32);
      const auto value =
          static_cast<std::uint32_t>(packet.ctl_b & 0xffffffffULL);
      const auto acc_view = static_cast<std::uint32_t>(aux);
      if (slot < total_slots_ &&
          (st.best_has[slot] == 0 || acc_view > st.best_view[slot])) {
        st.best_has[slot] = 1;
        st.best_view[slot] = acc_view;
        st.best_value[slot] = value;
      }
      ++st.got_accs;
      try_acquire(ctx);
      break;
    }
    case Wire::kPropose: {
      const auto slot = static_cast<std::uint32_t>(packet.ctl_b >> 32);
      const auto value =
          static_cast<std::uint32_t>(packet.ctl_b & 0xffffffffULL);
      const Config& cfg = config_for(st, view);
      const std::uint64_t idx = member_index(cfg, ctx.self());
      if (idx < cfg.members.size()) {
        const std::uint64_t m = cfg.members.size();
        const std::uint64_t renamed = (idx + m - (view % m)) % m;
        relay_range(ctx, cfg, /*commit=*/false, view, slot, value, renamed,
                    aux);
      }
      if (slot >= total_slots_) return;
      if (view < st.promised) {
        // A deposed leader's write under a stale fencing token.
        ++counters_.stale_rejects;
        log_event(st, ctx.now(), LogEvent::Kind::kStaleReject, view, slot,
                  value);
        return;
      }
      st.promised = view;
      Slot& sl = st.slots[slot];
      if (sl.decided) {
        // Re-proposals of decided slots carry the chosen value
        // (agreement); acking them un-wedges commit quorums that
        // straddle already-decided acceptors.
        if (value != sl.dec_value) return;
      } else {
        sl.has_accepted = true;
        sl.accepted_view = view;
        sl.accepted_value = value;
      }
      ++counters_.acks_sent;
      do_send(ctx, leader_of(cfg, view), make_ack(ctx.self(), view, slot));
      break;
    }
    case Wire::kAck: {
      if (!st.collecting || st.collect_view != view || !st.acquired) return;
      const auto slot = static_cast<std::uint32_t>(packet.ctl_b);
      if (slot >= total_slots_ || st.proposed[slot] == 0 ||
          st.committed[slot] != 0) {
        return;  // late ack for a slot already resolved or never proposed
      }
      const Config& cfg = config_for(st, view);
      if (!is_member(cfg, sender)) return;
      if (st.acked[slot][sender] != 0) return;
      st.acked[slot][sender] = 1;
      ++st.ack_counts[slot];
      if (st.ack_counts[slot] >= quorum_of(cfg)) commit_slot(ctx, slot);
      break;
    }
    case Wire::kCommit: {
      const auto slot = static_cast<std::uint32_t>(packet.ctl_b >> 32);
      const auto value =
          static_cast<std::uint32_t>(packet.ctl_b & 0xffffffffULL);
      if (slot >= total_slots_) return;
      // Relay before deciding: deciding can advance the prefix and apply
      // a config, and the relay must use the sender's tree shape.
      const Config& cfg = config_for(st, view);
      const std::uint64_t idx = member_index(cfg, ctx.self());
      if (aux != 0 && idx < cfg.members.size()) {
        const std::uint64_t m = cfg.members.size();
        const std::uint64_t renamed = (idx + m - (view % m)) % m;
        relay_range(ctx, cfg, /*commit=*/true, view, slot, value, renamed,
                    aux);
      }
      if (!st.slots[slot].decided) decide(ctx, slot, value, view);
      break;
    }
    case Wire::kRenew: {
      const auto seq = static_cast<std::uint32_t>(packet.ctl_b);
      if (view < st.promised) return;  // stale leader: no extension
      st.promised = view;
      ++counters_.renew_acks_sent;
      do_send(ctx, sender, make_renew(Wire::kRenewAck, ctx.self(), view, seq));
      break;
    }
    case Wire::kRenewAck: {
      if (!st.collecting || st.collect_view != view || !st.acquired ||
          !st.lease_live) {
        return;
      }
      const auto seq = static_cast<std::uint32_t>(packet.ctl_b);
      if (seq != st.renew_seq) return;
      const Config& cfg = config_for(st, view);
      if (!is_member(cfg, sender)) return;
      ++st.renew_acks;
      if (st.renew_acks < quorum_of(cfg)) return;
      const Rational ve = view_end(view);
      Rational cand = st.renew_sent_at + options_.lease_length;
      if (ve < cand) cand = ve;
      if (!(cand > st.lease_expiry)) return;  // extension already covered
      st.lease_expiry = cand;
      ++st.lease_gen;  // deactivates the outstanding expiry timer
      ++counters_.lease_renewals;
      log_event(st, ctx.now(), LogEvent::Kind::kLeaseRenew, view, 0, 0, cand);
      ctx.set_timer(cand - ctx.now(),
                    make_token(Tok::kLeaseExpiry, st.lease_gen));
      break;
    }
  }
}

void LogProtocol::on_timer(MachineContext& ctx, std::uint64_t token) {
  ProcState& st = state_[ctx.self()];
  const auto kind = static_cast<Tok>(token >> 56);
  const std::uint64_t payload = token & ((1ULL << 56) - 1);
  switch (kind) {
    case Tok::kView:
      enter_view(ctx, static_cast<std::uint32_t>(payload));
      break;
    case Tok::kRepair: {
      const auto view = static_cast<std::uint32_t>(payload);
      if (!st.collecting || st.collect_view != view || !st.acquired) return;
      if (!st.lease_live || !(ctx.now() < st.lease_expiry)) return;  // fenced
      const Config& cfg = config_for(st, view);
      for (std::uint32_t s = 0; s < total_slots_; ++s) {
        if (st.proposed[s] == 0 || st.committed[s] != 0) continue;
        for (const ProcId p : cfg.members) {
          if (p == ctx.self() || st.acked[s][p] != 0) continue;
          ++counters_.proposal_repairs;
          do_send(ctx, p,
                  make_tree(Wire::kPropose, ctx.self(), view, s,
                            st.slots[s].accepted_value, /*hi=*/0));
        }
      }
      break;
    }
    case Tok::kLeaseExpiry: {
      if (payload != st.lease_gen || !st.lease_live) return;
      st.lease_live = false;
      if (done(st)) return;  // clean finish, not a lapse
      ++counters_.lease_expiries;
      log_event(st, ctx.now(), LogEvent::Kind::kLeaseExpire, st.collect_view,
                0, 0, st.lease_expiry);
      break;
    }
    case Tok::kRenew: {
      const auto view = static_cast<std::uint32_t>(payload);
      if (!st.collecting || st.collect_view != view || !st.acquired ||
          !st.lease_live || done(st)) {
        return;
      }
      // On-grid tie at the expiry: the write guard refuses the renewal
      // (timer wins, the reliable-bcast backoff boundary contract).
      if (!(ctx.now() < st.lease_expiry)) return;
      const Rational ve = view_end(view);
      if (!(st.lease_expiry < ve)) return;  // already capped at the boundary
      ++st.renew_seq;
      st.renew_acks = 1;  // the leader's own vote
      st.renew_sent_at = ctx.now();
      const Config& cfg = config_for(st, view);
      for (const ProcId p : cfg.members) {
        if (p == ctx.self()) continue;
        ++counters_.renews_sent;
        do_send(ctx, p, make_renew(Wire::kRenew, ctx.self(), view,
                                   st.renew_seq));
      }
      ctx.set_timer(options_.heartbeat_period, make_token(Tok::kRenew, view));
      break;
    }
    case Tok::kReconfig: {
      if (payload + 1 > st.triggered) st.triggered = payload + 1;
      break;
    }
  }
}

void LogProtocol::harvest(LogHarvest& out) const {
  out.counters.view_changes_sent += counters_.view_changes_sent;
  out.counters.vc_accs_sent += counters_.vc_accs_sent;
  out.counters.proposals += counters_.proposals;
  out.counters.proposal_relays += counters_.proposal_relays;
  out.counters.proposal_repairs += counters_.proposal_repairs;
  out.counters.acks_sent += counters_.acks_sent;
  out.counters.commits += counters_.commits;
  out.counters.commit_relays += counters_.commit_relays;
  out.counters.catchup_commits += counters_.catchup_commits;
  out.counters.renews_sent += counters_.renews_sent;
  out.counters.renew_acks_sent += counters_.renew_acks_sent;
  out.counters.lease_acquisitions += counters_.lease_acquisitions;
  out.counters.lease_renewals += counters_.lease_renewals;
  out.counters.lease_expiries += counters_.lease_expiries;
  out.counters.stale_rejects += counters_.stale_rejects;
  out.counters.decides += counters_.decides;
  out.counters.config_applies += counters_.config_applies;
  out.counters.reconfig_commands += counters_.reconfig_commands;
  for (std::uint64_t r = 0; r < n_; ++r) {
    const ProcState& st = state_[r];
    if (!st.started) continue;  // another shard's rank
    RankLog rl;
    rl.started = true;
    rl.commit_prefix = st.commit_prefix;
    rl.config_epoch = static_cast<std::uint32_t>(st.applied_configs);
    rl.members = st.configs.back().members;
    rl.slots.resize(total_slots_);
    for (std::uint32_t s = 0; s < total_slots_; ++s) {
      const Slot& sl = st.slots[s];
      rl.slots[s] =
          SlotDecision{sl.decided, sl.dec_value, sl.dec_view, sl.dec_at};
    }
    out.ranks[r] = std::move(rl);
    out.logs[r] = st.log;
  }
}

namespace {

// Timing shared by resolve_log_options and the runner's settle judgment.
struct LogTiming {
  Rational view_length;
  Rational heartbeat_period;
  Rational lease_length;
  std::uint32_t min_views = 1;  ///< views needed for the plan to settle
  bool bounded_losses = true;
};

LogTiming derive_log_timing(const PostalParams& params, const FaultPlan* plan,
                            const LogOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  const std::uint64_t slots = options.commands + options.reconfig.size();
  LogTiming t;
  t.heartbeat_period = options.heartbeat_period;
  if (t.heartbeat_period == Rational(0)) {
    // The election heartbeat derivation: failure detection across the
    // whole ring within a few postal latencies.
    t.heartbeat_period = lambda * Rational(4);
    const Rational ring =
        Rational(2 * static_cast<std::int64_t>(n >= 1 ? n - 1 : 0));
    t.heartbeat_period = rmax(t.heartbeat_period, ring);
    if (t.heartbeat_period == Rational(0)) t.heartbeat_period = Rational(1);
  }
  t.lease_length = options.lease_length;
  if (t.lease_length == Rational(0)) {
    // One heartbeat plus the renewal round trip through serialized ports
    // at both ends while the batch is still draining (the same per-port
    // backlog bound the view length uses): an undisturbed leader always
    // renews before it lapses.
    t.lease_length = t.heartbeat_period + lambda * Rational(2) +
                     port_budget(n, slots) * Rational(2) +
                     Rational(static_cast<std::int64_t>(n)) +
                     options.timeout_slack;
  }
  t.view_length = options.view_length;
  if (t.view_length == Rational(0)) {
    // Tree down and commits back down (2 f), acks up, the repair wave and
    // its round trip, and the whole batch through the ports.
    GenFib fib(lambda);
    const Rational fn = n >= 2 ? fib.f(n) : Rational(1);
    t.view_length = fn * Rational(2) + lambda * Rational(6) +
                    port_budget(n, slots) * Rational(2) +
                    Rational(2 * static_cast<std::int64_t>(n)) +
                    options.timeout_slack * Rational(2);
  }
  std::int64_t loss_budget = 0;
  Rational last_disturbance{0};
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      last_disturbance = rmax(last_disturbance, c.time);
    }
    for (const LatencySpike& s : plan->spikes) {
      last_disturbance = rmax(last_disturbance, s.until + s.extra);
    }
    for (const LinkLoss& l : plan->losses) {
      if (l.p > Rational(0)) {
        if (l.max_losses == 0) t.bounded_losses = false;
        loss_budget += static_cast<std::int64_t>(
            std::min<std::uint64_t>(l.max_losses, 64));
      }
    }
  }
  for (const ReconfigRequest& op : options.reconfig) {
    last_disturbance = rmax(last_disturbance, op.at);
  }
  // Views burned while disturbances (including reconfig triggers and
  // their activation margin) are still landing, plus one per eaten
  // message, plus a full leader rotation, plus slack.
  const std::int64_t disturbed = (last_disturbance / t.view_length).ceil() + 1;
  const std::int64_t rotation =
      static_cast<std::int64_t>(std::min<std::uint64_t>(n, 64));
  const std::int64_t views =
      disturbed + loss_budget + rotation + 4 +
      2 * static_cast<std::int64_t>(options.reconfig.size());
  const std::int64_t cap =
      options.reconfig.empty() ? (1LL << 20) - 1 : (1LL << 14) - 3;
  t.min_views =
      static_cast<std::uint32_t>(std::min<std::int64_t>(views, cap));
  return t;
}

// The last decision among the live members of `final_members`.
Rational last_final_decide(const std::vector<RankLog>& ranks,
                           const std::vector<ProcId>& final_members,
                           const std::vector<std::uint8_t>& crashed) {
  Rational latest{0};
  for (const ProcId r : final_members) {
    if (r < crashed.size() && crashed[r] != 0) continue;
    const RankLog& rl = ranks[r];
    if (!rl.started) continue;
    for (const SlotDecision& sd : rl.slots) {
      if (sd.decided) latest = rmax(latest, sd.at);
    }
  }
  return latest;
}

// The fault-free reference: the commit latency of the same resolved
// options with no plan attached (bench_log's trajectory quantity).
Rational fault_free_latency(const PostalParams& params,
                            const LogOptions& options,
                            const std::vector<ProcId>& final_members) {
  Machine machine(params, /*messages=*/1);
  machine.set_time_path(options.time_path);
  LogProtocol protocol(params, options);
  static_cast<void>(machine.run(protocol));
  LogHarvest harvest;
  harvest.ranks.resize(params.n());
  harvest.logs.resize(params.n());
  protocol.harvest(harvest);
  const std::vector<std::uint8_t> crashed(params.n(), 0);
  return last_final_decide(harvest.ranks, final_members, crashed);
}

}  // namespace

LogOptions resolve_log_options(const PostalParams& params,
                               const FaultPlan* plan,
                               const LogOptions& options) {
  LogOptions resolved = options;
  if (!resolved.reconfig.empty()) {
    POSTAL_REQUIRE(params.n() >= 2,
                   "resolve_log_options: reconfiguration requires n >= 2");
  }
  // Throws on out-of-range ranks or a membership shrinking below 2.
  static_cast<void>(expected_toggles(params.n(), resolved.reconfig, nullptr));
  const LogTiming timing = derive_log_timing(params, plan, resolved);
  resolved.heartbeat_period = timing.heartbeat_period;
  resolved.lease_length = timing.lease_length;
  resolved.view_length = timing.view_length;
  if (resolved.max_views == 0) resolved.max_views = timing.min_views;
  return resolved;
}

LogReport run_log(const PostalParams& params, const FaultPlan* plan,
                  const LogOptions& options) {
  LogReport report;
  report.options = resolve_log_options(params, plan, options);
  const std::uint64_t n = params.n();
  report.quorum = static_cast<std::uint32_t>(n / 2 + 1);
  report.slots = report.options.commands + report.options.reconfig.size();
  static_cast<void>(
      expected_toggles(n, report.options.reconfig, &report.final_members));

  ParMachine machine(params, /*messages=*/1);
  machine.set_time_path(report.options.time_path);
  machine.set_threads(report.options.threads == 0 ? 1 : report.options.threads);
  if (plan != nullptr) machine.attach_faults(*plan);
  LogFactory factory(params, report.options);
  report.result = machine.run(factory);
  report.counters = factory.harvest().counters;
  report.ranks = std::move(factory.harvest().ranks);

  for (std::uint64_t r = 0; r < n; ++r) {
    for (const LogEvent& e : factory.harvest().logs[r]) {
      report.events.push_back(e);
    }
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const LogEvent& a, const LogEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });

  std::vector<std::uint8_t> crashed(n, 0);
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      if (c.proc < n && crashed[c.proc] == 0) {
        crashed[c.proc] = 1;
        report.crashed.push_back(c.proc);
      }
    }
    std::sort(report.crashed.begin(), report.crashed.end());
  }

  const LogTiming timing = derive_log_timing(params, plan, report.options);
  report.settled =
      timing.bounded_losses && report.options.max_views >= timing.min_views;

  report.views_used = 0;
  for (const LogEvent& e : report.events) {
    report.views_used = std::max(report.views_used, e.view);
  }

  report.commit_latency =
      last_final_decide(report.ranks, report.final_members, crashed);
  report.baseline =
      (plan == nullptr || plan->empty())
          ? report.commit_latency
          : fault_free_latency(params, report.options, report.final_members);
  report.recovery_time = report.commit_latency > report.baseline
                             ? report.commit_latency - report.baseline
                             : Rational(0);

  ValidatorOptions vopts;
  vopts.messages = 1;
  vopts.preholds = true;  // control-plane traffic: no payload causality
  vopts.fifo_receive = true;
  vopts.require_coverage = false;
  vopts.time_path = report.options.time_path;
  if (plan != nullptr) vopts.crashes = plan->crashes;
  report.validation = validate_schedule(report.result.schedule, params, vopts);

  report.check = check_log(report, params, plan);
  return report;
}

}  // namespace postal::coord
