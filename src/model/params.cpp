#include "model/params.hpp"

namespace postal {

PostalParams::PostalParams(std::uint64_t n, Rational lambda)
    : n_(n), lambda_(std::move(lambda)) {
  POSTAL_REQUIRE(n_ >= 1, "PostalParams: need at least one processor");
  POSTAL_REQUIRE(n_ <= static_cast<std::uint64_t>(INT64_MAX),
                 "PostalParams: n exceeds exact-arithmetic range");
  POSTAL_REQUIRE(lambda_ >= Rational(1), "PostalParams: lambda must be >= 1");
}

Rational pack_lambda(const Rational& lambda, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "pack_lambda: m must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1), "pack_lambda: lambda must be >= 1");
  const auto mi = static_cast<std::int64_t>(m);
  return Rational(1) + (lambda - Rational(1)) / Rational(mi);
}

Rational pipeline1_lambda(const Rational& lambda, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "pipeline1_lambda: m must be >= 1");
  const auto mi = static_cast<std::int64_t>(m);
  POSTAL_REQUIRE(Rational(mi) <= lambda,
                 "pipeline1_lambda: PIPELINE-1 requires m <= lambda");
  return lambda / Rational(mi);
}

Rational pipeline2_lambda(const Rational& lambda, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "pipeline2_lambda: m must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1), "pipeline2_lambda: lambda must be >= 1");
  const auto mi = static_cast<std::int64_t>(m);
  POSTAL_REQUIRE(lambda <= Rational(mi),
                 "pipeline2_lambda: PIPELINE-2 requires m >= lambda");
  return Rational(mi) / lambda;
}

}  // namespace postal
