// Closed-form bounds from the paper: Theorem 7 (with the appendix's
// asymptotic refinement), the multi-message lower bounds of Lemma 8 /
// Corollary 9, and the upper-bound corollaries 11/13/15/17.
//
// Bounds that are exact count comparisons (Theorem 7 parts 1-2 on F_lambda)
// are computed in saturating integer arithmetic; bounds that are inherently
// real-valued (logarithmic forms, the alpha(lambda) refinement) return
// double and are only ever used for inequality checks with slack, never for
// exact-equality assertions.
#pragma once

#include <cstdint>

#include "model/genfib.hpp"
#include "support/rational.hpp"

namespace postal {

// ---------------------------------------------------------------------------
// Theorem 7, parts (1)-(2): two-sided bounds via (ceil(lambda)+1).
// ---------------------------------------------------------------------------

/// Part (1) lower bound: (ceil(lambda)+1)^floor(t/(2*lambda)) <= F_lambda(t).
[[nodiscard]] std::uint64_t thm7_F_lower(const Rational& lambda, const Rational& t);

/// Part (1) upper bound: F_lambda(t) <= (ceil(lambda)+1)^floor(t/lambda).
[[nodiscard]] std::uint64_t thm7_F_upper(const Rational& lambda, const Rational& t);

/// Part (2) lower bound: lambda*log2(n) / log2(ceil(lambda)+1) <= f_lambda(n).
[[nodiscard]] double thm7_f_lower(const Rational& lambda, std::uint64_t n);

/// Part (2) upper bound: f_lambda(n) <= 2*lambda + 2*lambda*log2(n)/log2(ceil(lambda)+1).
[[nodiscard]] double thm7_f_upper(const Rational& lambda, std::uint64_t n);

// ---------------------------------------------------------------------------
// Theorem 7, parts (3)-(4): asymptotic refinement for large lambda.
// ---------------------------------------------------------------------------

/// alpha(lambda) = 1 + (ln ln(lambda+1) + 1) / (ln(lambda+1) - (ln ln(lambda+1) + 1)).
/// The denominator is x - ln x - 1 at x = ln(lambda+1), which is >= 0 for
/// all lambda >= 1 and zero only at lambda = e - 1 (where alpha diverges);
/// throws InvalidArgument at that singular point.
[[nodiscard]] double thm7_alpha(const Rational& lambda);

/// Part (3): F_lambda(t) >= (lambda+1)^(t/(alpha*lambda) - 1) for large lambda.
[[nodiscard]] double thm7_part3_F_lower(const Rational& lambda, const Rational& t);

/// Part (4): the asymptotic upper bound
/// f_lambda(n) <= alpha*lambda*(log2(n)/log2(lambda+1) + 1)
/// (the proof's bound before folding into the 1+h(lambda) form).
[[nodiscard]] double thm7_part4_f_upper(const Rational& lambda, std::uint64_t n);

// ---------------------------------------------------------------------------
// Section 4.1: lower bounds for broadcasting m messages.
// ---------------------------------------------------------------------------

/// Lemma 8: T >= (m-1) + f_lambda(n) for any algorithm. Exact.
[[nodiscard]] Rational lemma8_lower(GenFib& fib, std::uint64_t n, std::uint64_t m);

/// Corollary 9(1): T >= m - 1 + lambda*log2(n)/log2(ceil(lambda)+1).
[[nodiscard]] double cor9_lower_log(const Rational& lambda, std::uint64_t n,
                                    std::uint64_t m);

/// Corollary 9(2): T > m - 1 + lambda (for n >= 2).
[[nodiscard]] Rational cor9_lower_latency(const Rational& lambda, std::uint64_t m);

// ---------------------------------------------------------------------------
// Section 4.2: upper-bound corollaries for the BCAST generalizations.
// ---------------------------------------------------------------------------

/// Corollary 11 (REPEAT):
/// T <= 2*m*lambda*log2(n)/log2(lambda+1) + m*lambda + m + lambda - 1.
[[nodiscard]] double cor11_repeat_upper(const Rational& lambda, std::uint64_t n,
                                        std::uint64_t m);

/// Corollary 13 (PACK):
/// T <= 2*(m+lambda-1)*log2(n)/log2(2+(lambda-1)/m) + 2*(m+lambda-1).
[[nodiscard]] double cor13_pack_upper(const Rational& lambda, std::uint64_t n,
                                      std::uint64_t m);

/// Corollary 15 (PIPELINE-1, m <= lambda):
/// T <= 2*lambda + 2*lambda*log2(n)/log2(1+lambda/m) + (m-1).
[[nodiscard]] double cor15_pipeline1_upper(const Rational& lambda, std::uint64_t n,
                                           std::uint64_t m);

/// Corollary 17 (PIPELINE-2, m >= lambda):
/// T <= 2*m*log2(n)/log2(1+m/lambda) + 2*m + lambda - 1.
[[nodiscard]] double cor17_pipeline2_upper(const Rational& lambda, std::uint64_t n,
                                           std::uint64_t m);

/// Lemma 18 (DTREE upper bound): T <= d*(m-1) + (d-1+lambda)*ceil(log_d n);
/// for d == 1 the tree is a line and the bound is (m-1) + lambda*(n-1).
[[nodiscard]] Rational lemma18_dtree_upper(const Rational& lambda, std::uint64_t n,
                                           std::uint64_t m, std::uint64_t d);

}  // namespace postal
