#include "model/bounds.hpp"

#include <cmath>

#include "support/saturating.hpp"

namespace postal {

namespace {

/// ceil(lambda) + 1 as an unsigned base for the Theorem 7 powers.
std::uint64_t ceil_lambda_plus_1(const Rational& lambda) {
  POSTAL_REQUIRE(lambda >= Rational(1), "bounds: lambda must be >= 1");
  return static_cast<std::uint64_t>(lambda.ceil()) + 1;
}

/// Smallest h >= 0 with d^h >= n (exact integer ceil(log_d n) for n >= 1).
std::uint64_t ceil_log(std::uint64_t d, std::uint64_t n) {
  POSTAL_REQUIRE(d >= 2, "ceil_log: base must be >= 2");
  POSTAL_REQUIRE(n >= 1, "ceil_log: n must be >= 1");
  std::uint64_t h = 0;
  std::uint64_t power = 1;
  while (power < n) {
    power = sat_mul(power, d);
    ++h;
  }
  return h;
}

}  // namespace

std::uint64_t thm7_F_lower(const Rational& lambda, const Rational& t) {
  POSTAL_REQUIRE(t >= Rational(0), "thm7_F_lower: t must be >= 0");
  const std::int64_t e = (t / (Rational(2) * lambda)).floor();
  return sat_pow(ceil_lambda_plus_1(lambda), static_cast<std::uint64_t>(e));
}

std::uint64_t thm7_F_upper(const Rational& lambda, const Rational& t) {
  POSTAL_REQUIRE(t >= Rational(0), "thm7_F_upper: t must be >= 0");
  const std::int64_t e = (t / lambda).floor();
  return sat_pow(ceil_lambda_plus_1(lambda), static_cast<std::uint64_t>(e));
}

double thm7_f_lower(const Rational& lambda, std::uint64_t n) {
  POSTAL_REQUIRE(n >= 1, "thm7_f_lower: n must be >= 1");
  const double base = static_cast<double>(ceil_lambda_plus_1(lambda));
  return lambda.to_double() * std::log2(static_cast<double>(n)) / std::log2(base);
}

double thm7_f_upper(const Rational& lambda, std::uint64_t n) {
  return 2.0 * lambda.to_double() + 2.0 * thm7_f_lower(lambda, n);
}

double thm7_alpha(const Rational& lambda) {
  const double l = std::log(lambda.to_double() + 1.0);
  const double ll = std::log(l) + 1.0;
  POSTAL_REQUIRE(l > ll, "thm7_alpha: lambda too small for the asymptotic form");
  return 1.0 + ll / (l - ll);
}

double thm7_part3_F_lower(const Rational& lambda, const Rational& t) {
  POSTAL_REQUIRE(t >= Rational(0), "thm7_part3_F_lower: t must be >= 0");
  const double alpha = thm7_alpha(lambda);
  const double lam = lambda.to_double();
  return std::pow(lam + 1.0, t.to_double() / (alpha * lam) - 1.0);
}

double thm7_part4_f_upper(const Rational& lambda, std::uint64_t n) {
  POSTAL_REQUIRE(n >= 1, "thm7_part4_f_upper: n must be >= 1");
  const double alpha = thm7_alpha(lambda);
  const double lam = lambda.to_double();
  const double logn = std::log2(static_cast<double>(n));
  return alpha * lam * (logn / std::log2(lam + 1.0) + 1.0);
}

Rational lemma8_lower(GenFib& fib, std::uint64_t n, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "lemma8_lower: m must be >= 1");
  return Rational(static_cast<std::int64_t>(m) - 1) + fib.f(n);
}

double cor9_lower_log(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "cor9_lower_log: m must be >= 1");
  return static_cast<double>(m - 1) + thm7_f_lower(lambda, n);
}

Rational cor9_lower_latency(const Rational& lambda, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "cor9_lower_latency: m must be >= 1");
  return Rational(static_cast<std::int64_t>(m) - 1) + lambda;
}

double cor11_repeat_upper(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  const double lam = lambda.to_double();
  const double md = static_cast<double>(m);
  const double logn = std::log2(static_cast<double>(n));
  return 2.0 * md * lam * logn / std::log2(lam + 1.0) + md * lam + md + lam - 1.0;
}

double cor13_pack_upper(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  const double lam = lambda.to_double();
  const double md = static_cast<double>(m);
  const double logn = std::log2(static_cast<double>(n));
  const double span = md + lam - 1.0;
  return 2.0 * span * logn / std::log2(2.0 + (lam - 1.0) / md) + 2.0 * span;
}

double cor15_pipeline1_upper(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  const double lam = lambda.to_double();
  const double md = static_cast<double>(m);
  const double logn = std::log2(static_cast<double>(n));
  return 2.0 * lam + 2.0 * lam * logn / std::log2(1.0 + lam / md) + (md - 1.0);
}

double cor17_pipeline2_upper(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  const double lam = lambda.to_double();
  const double md = static_cast<double>(m);
  const double logn = std::log2(static_cast<double>(n));
  return 2.0 * md * logn / std::log2(1.0 + md / lam) + 2.0 * md + lam - 1.0;
}

Rational lemma18_dtree_upper(const Rational& lambda, std::uint64_t n, std::uint64_t m,
                             std::uint64_t d) {
  POSTAL_REQUIRE(n >= 1, "lemma18_dtree_upper: n must be >= 1");
  POSTAL_REQUIRE(m >= 1, "lemma18_dtree_upper: m must be >= 1");
  POSTAL_REQUIRE(d >= 1 && (n == 1 || d <= n - 1),
                 "lemma18_dtree_upper: d must lie in [1, n-1]");
  const auto mi = static_cast<std::int64_t>(m);
  if (d == 1) {
    // Line: M_m leaves the root at t = m-1 and pays lambda per hop over
    // the n-1 hops of the path.
    return Rational(mi - 1) + lambda * Rational(static_cast<std::int64_t>(n) - 1);
  }
  const auto di = static_cast<std::int64_t>(d);
  const auto h = static_cast<std::int64_t>(ceil_log(d, n));
  return Rational(di) * Rational(mi - 1) +
         (Rational(di - 1) + lambda) * Rational(h);
}

}  // namespace postal
