// The generalized Fibonacci function F_lambda(t) and its index function
// f_lambda(n) -- Section 3 of the paper.
//
//   F_lambda(t) = 1                                  for 0 <= t < lambda
//   F_lambda(t) = F_lambda(t-1) + F_lambda(t-lambda) for t >= lambda
//
//   f_lambda(n) = min{ t : F_lambda(t) >= n }        (the index function)
//
// F_lambda is a right-continuous nondecreasing step function whose jumps,
// for rational lambda = p/q (reduced), all lie on the grid { k/q : k in N }.
// GenFib therefore memoizes F on that grid exactly, with saturating 64-bit
// arithmetic (F grows exponentially; only comparisons against n <= 2^63
// matter, see support/saturating.hpp).
//
// Special cases (useful anchors, checked in the tests):
//   lambda = 1:  F_1(t) = 2^floor(t),       f_1(n) = ceil(log2 n)
//   lambda = 2:  F_2(t) = Fib(floor(t)+1),  f_2 via classic Fibonacci
#pragma once

#include <cstdint>
#include <vector>

#include "support/rational.hpp"
#include "support/saturating.hpp"

namespace postal {

/// Exact evaluator for F_lambda and f_lambda at a fixed rational lambda >= 1.
///
/// Thread-compatible (not thread-safe): evaluation extends an internal memo
/// table. Construct one instance per thread or guard externally.
class GenFib {
 public:
  /// Throws InvalidArgument unless lambda >= 1.
  explicit GenFib(Rational lambda);

  /// The latency parameter this instance evaluates at.
  [[nodiscard]] const Rational& lambda() const noexcept { return lambda_; }

  /// F_lambda(t) for t >= 0 (throws InvalidArgument for t < 0). Values are
  /// clamped to kSaturated once they exceed 64 bits.
  [[nodiscard]] std::uint64_t F(const Rational& t);

  /// f_lambda(n) = min{ t : F_lambda(t) >= n } for n >= 1. The result is
  /// always a grid point k/q. Throws InvalidArgument for n == 0 and
  /// OverflowError if n exceeds the saturation cap.
  [[nodiscard]] Rational f(std::uint64_t n);

  /// The grid index of f_lambda(n): the k with f_lambda(n) = k/q. This is
  /// the big-index entry point the implicit-schedule oracle descends with
  /// (src/oracle): the memo is grown geometrically (F is exponential, so
  /// the table stays O(q * f_lambda(n)) even for n near 10^12) and the
  /// answer found by binary search instead of a front-to-back scan. The
  /// index is checked int64 by construction -- it indexes the memo vector
  /// -- and converts to exact Rational time as k/q, the same
  /// grid-tick-to-Rational discipline as support/ticks.
  [[nodiscard]] std::int64_t f_index(std::uint64_t n);

  /// The j used by Algorithm BCAST on a range of size n >= 2:
  /// j = F_lambda(f_lambda(n) - 1). Satisfies 1 <= j <= n-1 (Lemma 3).
  [[nodiscard]] std::uint64_t bcast_split(std::uint64_t n);

  /// All t in [0, t_max] where F_lambda jumps, in increasing order.
  /// Useful for plotting the step function in the benches.
  [[nodiscard]] std::vector<Rational> breakpoints(const Rational& t_max);

  /// Grid resolution: F_lambda is constant on [k/q, (k+1)/q).
  [[nodiscard]] std::int64_t grid_denominator() const noexcept { return q_; }

 private:
  /// F at grid index k (i.e. F_lambda(k/q)); extends the memo as needed.
  [[nodiscard]] std::uint64_t F_at_index(std::int64_t k);
  void extend_to(std::int64_t k);

  Rational lambda_;
  std::int64_t p_;  // lambda = p_/q_, reduced
  std::int64_t q_;
  std::vector<std::uint64_t> memo_;  // memo_[k] = F_lambda(k/q)
};

}  // namespace postal
