// Postal-model parameters and the normalizations used by the multi-message
// algorithms of Section 4.
//
// MPS(n, lambda) -- Definitions 1 and 2 of the paper: n fully connected
// processors with simultaneous I/O; a send occupies the sender during
// [t, t+1] and the receiver during [t+lambda-1, t+lambda], lambda >= 1.
#pragma once

#include <cstdint>

#include "support/rational.hpp"

namespace postal {

/// Identifies a processor p_0 .. p_{n-1}.
using ProcId = std::uint32_t;

/// Identifies one atomic message; for multi-message broadcast, message i of
/// the stream M_1..M_m has id i-1.
using MsgId = std::uint32_t;

/// Parameters of a message-passing system MPS(n, lambda).
class PostalParams {
 public:
  /// Throws InvalidArgument unless n >= 1 and lambda >= 1.
  PostalParams(std::uint64_t n, Rational lambda);

  /// Number of processors.
  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

  /// Communication latency lambda >= 1.
  [[nodiscard]] const Rational& lambda() const noexcept { return lambda_; }

 private:
  std::uint64_t n_;
  Rational lambda_;
};

/// Normalized latency used by Algorithm PACK (Lemma 12):
/// lambda' = (lambda + m - 1)/m = 1 + (lambda-1)/m. Requires m >= 1.
[[nodiscard]] Rational pack_lambda(const Rational& lambda, std::uint64_t m);

/// Normalized latency used by Algorithm PIPELINE-1 (Lemma 14):
/// lambda' = lambda/m. Requires 1 <= m <= lambda (so lambda' >= 1).
[[nodiscard]] Rational pipeline1_lambda(const Rational& lambda, std::uint64_t m);

/// Normalized latency used by Algorithm PIPELINE-2 (Lemma 16):
/// lambda' = m/lambda. Requires m >= lambda >= 1 (so lambda' >= 1).
[[nodiscard]] Rational pipeline2_lambda(const Rational& lambda, std::uint64_t m);

}  // namespace postal
