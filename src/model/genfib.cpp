#include "model/genfib.hpp"

#include <algorithm>

namespace postal {

GenFib::GenFib(Rational lambda) : lambda_(std::move(lambda)) {
  POSTAL_REQUIRE(lambda_ >= Rational(1), "GenFib: lambda must be >= 1");
  p_ = lambda_.num();
  q_ = lambda_.den();
  // F_lambda(t) = 1 on [0, lambda), i.e. grid indices 0 .. p-1.
  memo_.assign(static_cast<std::size_t>(p_), 1);
}

void GenFib::extend_to(std::int64_t k) {
  while (static_cast<std::int64_t>(memo_.size()) <= k) {
    const auto i = static_cast<std::int64_t>(memo_.size());
    // i >= p >= q, so both argument indices are in range.
    const std::uint64_t value =
        sat_add(memo_[static_cast<std::size_t>(i - q_)],
                memo_[static_cast<std::size_t>(i - p_)]);
    memo_.push_back(value);
  }
}

std::uint64_t GenFib::F_at_index(std::int64_t k) {
  POSTAL_CHECK(k >= 0);
  extend_to(k);
  return memo_[static_cast<std::size_t>(k)];
}

std::uint64_t GenFib::F(const Rational& t) {
  POSTAL_REQUIRE(t >= Rational(0), "GenFib::F: t must be >= 0");
  // F is constant on [k/q, (k+1)/q); floor(t*q) selects the grid cell.
  const Rational scaled = t * Rational(q_);
  return F_at_index(scaled.floor());
}

Rational GenFib::f(std::uint64_t n) { return Rational(f_index(n), q_); }

std::int64_t GenFib::f_index(std::uint64_t n) {
  POSTAL_REQUIRE(n >= 1, "GenFib::f: n must be >= 1");
  POSTAL_REQUIRE(n < kSaturated, "GenFib::f: n exceeds the saturation cap");
  // Grow the memo geometrically until it contains a value >= n; because F
  // is (weakly) exponential past index p, this stays O(q * f_lambda(n))
  // entries. Saturated entries compare correctly (kSaturated >= any n).
  while (memo_.back() < n) {
    extend_to(static_cast<std::int64_t>(memo_.size()) * 2 - 1);
  }
  // memo_ is nondecreasing, so the index function is a lower bound.
  const auto it = std::lower_bound(memo_.begin(), memo_.end(), n);
  return static_cast<std::int64_t>(it - memo_.begin());
}

std::uint64_t GenFib::bcast_split(std::uint64_t n) {
  POSTAL_REQUIRE(n >= 2, "GenFib::bcast_split: needs a range of size >= 2");
  // F_lambda(f_lambda(n) - 1) on the grid: one time unit is q indices.
  const std::int64_t idx = f_index(n) - q_;
  // f_lambda(n) >= lambda >= 1 for n >= 2, so idx >= 0 (proof of Lemma 3).
  POSTAL_CHECK(idx >= 0);
  return F_at_index(idx);
}

std::vector<Rational> GenFib::breakpoints(const Rational& t_max) {
  POSTAL_REQUIRE(t_max >= Rational(0), "GenFib::breakpoints: t_max must be >= 0");
  const std::int64_t k_max = (t_max * Rational(q_)).floor();
  extend_to(k_max);
  std::vector<Rational> out;
  for (std::int64_t k = 1; k <= k_max; ++k) {
    if (memo_[static_cast<std::size_t>(k)] != memo_[static_cast<std::size_t>(k - 1)]) {
      out.emplace_back(k, q_);
    }
  }
  return out;
}

}  // namespace postal
