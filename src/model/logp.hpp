// The LogP model (Culler et al., 1993) and its relationship to the postal
// model, which the paper notes in its introduction ("Recently, another
// model, the LogP model [8], was introduced that bears some similarities to
// our postal model").
//
// LogP parameters: L (wire latency), o (per-message CPU overhead on both
// sender and receiver), g (gap: minimum interval between consecutive sends
// or receives at one processor), P (processor count).
//
// Mapping (Karp et al.'s broadcast semantics). A processor informed at
// time r can inject messages at r, r + G, r + 2G, ... where G = max(o, g)
// (each injection costs o CPU and successive injections must be g apart);
// a message injected at s is usable at its recipient at s + 2o + L.
// Measuring time in units of G this is exactly the postal model with
//     lambda = (L + 2o) / G,
// which is >= 1 whenever L + 2o >= max(o, g) -- the usual LogP regime
// (validate() enforces it). The optimal LogP broadcast is therefore the
// generalized Fibonacci tree at that lambda, which this module both
// computes through GenFib and cross-checks with a direct dynamic program
// over inform times.
#pragma once

#include <cstdint>

#include "model/genfib.hpp"
#include "support/rational.hpp"

namespace postal {

/// LogP machine parameters. All quantities are rational multiples of one
/// CPU cycle; g >= 1 and L, o >= 0.
struct LogPParams {
  Rational L;       ///< network latency
  Rational o;       ///< send/receive CPU overhead
  Rational g;       ///< gap between consecutive sends (or receives)
  std::uint64_t P;  ///< number of processors

  /// Validates the parameter domain (including L + 2o >= max(o, g), the
  /// regime where the postal mapping is exact); throws InvalidArgument.
  void validate() const;

  /// The effective injection period G = max(o, g).
  [[nodiscard]] Rational effective_gap() const;

  /// The postal latency equivalent: lambda = (L + 2o)/G, in units of
  /// G = max(o, g).
  [[nodiscard]] Rational postal_lambda() const;
};

/// Optimal single-message LogP broadcast time (in the original LogP time
/// unit, not the normalized one), computed via the postal equivalence:
/// T = G * f_lambda(P) with lambda = postal_lambda(), G = max(o, g).
[[nodiscard]] Rational logp_broadcast_time(const LogPParams& params);

/// Independent cross-check: computes the maximum number of processors that
/// can be informed by time t in LogP by direct dynamic programming on the
/// grid of reachable times, then inverts it. Exponential-free but O(P * T);
/// intended for tests and small instances.
[[nodiscard]] Rational logp_broadcast_time_dp(const LogPParams& params);

}  // namespace postal
