#include "model/logp.hpp"

#include <queue>
#include <vector>

namespace postal {

void LogPParams::validate() const {
  POSTAL_REQUIRE(g >= Rational(1), "LogPParams: g must be >= 1");
  POSTAL_REQUIRE(L >= Rational(0), "LogPParams: L must be >= 0");
  POSTAL_REQUIRE(o >= Rational(0), "LogPParams: o must be >= 0");
  POSTAL_REQUIRE(P >= 1, "LogPParams: P must be >= 1");
  POSTAL_REQUIRE(P <= static_cast<std::uint64_t>(INT64_MAX),
                 "LogPParams: P exceeds exact-arithmetic range");
  POSTAL_REQUIRE(L + Rational(2) * o >= rmax(o, g),
                 "LogPParams: need L + 2o >= max(o, g) for the postal mapping");
}

Rational LogPParams::effective_gap() const { return rmax(o, g); }

Rational LogPParams::postal_lambda() const {
  validate();
  return (L + Rational(2) * o) / effective_gap();
}

Rational logp_broadcast_time(const LogPParams& params) {
  params.validate();
  GenFib fib(params.postal_lambda());
  return params.effective_gap() * fib.f(params.P);
}

Rational logp_broadcast_time_dp(const LogPParams& params) {
  params.validate();
  if (params.P == 1) return Rational(0);
  // Greedy frontier expansion: every informed processor sends as early and
  // as often as it can. Heap entries are candidate inform times; popping a
  // candidate materializes (a) the next sibling from the same sender and
  // (b) the new processor's own first child. Informing earlier is never
  // worse, so taking the P smallest candidate times is optimal.
  const Rational big_lambda = params.L + Rational(2) * params.o;
  const Rational gap = params.effective_gap();
  using Entry = Rational;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push(big_lambda);  // root's first child is informed at big_lambda
  std::uint64_t informed = 1;
  Rational last(0);
  while (informed < params.P) {
    POSTAL_CHECK(!heap.empty());
    const Rational t = heap.top();
    heap.pop();
    ++informed;
    last = t;
    heap.push(t + gap);            // next sibling from the same sender
    heap.push(t + big_lambda);     // the new processor's first child
  }
  return last;
}

}  // namespace postal
