#include "net/calibrate.hpp"

#include "support/prng.hpp"

namespace postal {

namespace {

/// Round `value` to the nearest multiple of 1/grid (ties up), at least 1.
Rational snap_up(const Rational& value, std::int64_t grid) {
  POSTAL_REQUIRE(grid >= 1, "snap_up: grid must be >= 1");
  const Rational scaled = value * Rational(grid);
  // ceil to the next grid point: a latency estimate should not be rounded
  // below the measurement, or schedules would be too optimistic.
  const Rational snapped(scaled.ceil(), grid);
  return rmax(snapped, Rational(1));
}

}  // namespace

CalibrationReport calibrate_lambda(PacketNetwork& net, std::uint64_t pairs,
                                   std::uint64_t seed, std::int64_t grid) {
  const std::uint64_t n = net.topology().n();
  POSTAL_REQUIRE(n >= 2, "calibrate_lambda: need at least two nodes");
  POSTAL_REQUIRE(pairs >= 1, "calibrate_lambda: need at least one probe");

  Xoshiro256 rng(seed);
  CalibrationReport report;
  report.probes = pairs;
  Rational sum(0);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(0, n - 1));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng.uniform(0, n - 1));
    net.submit(src, dst, /*msg=*/0, Rational(0));
    const std::vector<NetDelivery> out = net.run();
    POSTAL_CHECK(out.size() == 1);
    const Rational lambda = (out[0].delivered - out[0].requested) /
                            net.config().send_overhead;
    if (i == 0) {
      report.lambda_min = lambda;
      report.lambda_max = lambda;
    } else {
      report.lambda_min = rmin(report.lambda_min, lambda);
      report.lambda_max = rmax(report.lambda_max, lambda);
    }
    sum += lambda;
  }
  report.lambda_mean = sum / Rational(static_cast<std::int64_t>(pairs));
  report.lambda_snapped = snap_up(report.lambda_mean, grid);
  return report;
}

ReplayReport replay_schedule(PacketNetwork& net, const Schedule& schedule,
                             const Rational& postal_completion) {
  ReplayReport report;
  net.submit_schedule(schedule);
  const std::vector<NetDelivery> out = net.run();
  report.deliveries = out.size();
  report.observed = net_makespan(out);
  report.predicted = postal_completion * net.config().send_overhead;
  report.ratio = report.predicted == Rational(0)
                     ? 0.0
                     : report.observed.to_double() / report.predicted.to_double();
  return report;
}

}  // namespace postal
