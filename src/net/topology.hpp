// Network topologies for the packet-level substrate.
//
// The 1992 systems the paper motivates (Vulcan, CM-5, PARIS/plaNET) are
// packet-switching networks that present a *complete-graph abstraction*
// with roughly uniform latency. This module provides concrete topologies
// -- a complete graph, a 2-D mesh, and a 2-D torus -- over which the
// packet simulator (packet_sim.hpp) runs real store-and-forward traffic,
// so the benches can measure an effective postal lambda and check that
// postal-model predictions transfer.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"
#include "support/rational.hpp"

namespace postal {

/// Node index within a network topology.
using NodeId = std::uint32_t;

/// A directed point-to-point wire with a fixed propagation delay.
struct NetLink {
  NodeId to = 0;
  Rational propagation;  ///< signal flight time across the wire
};

/// A static directed network with shortest-path routing tables.
class Topology {
 public:
  /// Fully connected graph: every ordered pair gets a direct wire.
  [[nodiscard]] static Topology complete(std::uint64_t n, const Rational& propagation);

  /// rows x cols mesh with bidirectional wires between grid neighbors.
  [[nodiscard]] static Topology mesh2d(std::uint64_t rows, std::uint64_t cols,
                                       const Rational& propagation);

  /// rows x cols torus (mesh plus wrap-around wires).
  [[nodiscard]] static Topology torus2d(std::uint64_t rows, std::uint64_t cols,
                                        const Rational& propagation);

  [[nodiscard]] std::uint64_t n() const noexcept { return adjacency_.size(); }

  /// Outgoing wires of node u.
  [[nodiscard]] const std::vector<NetLink>& links(NodeId u) const;

  /// The next hop on a shortest path from u toward dst (hop-count metric,
  /// lowest-id tie-break, precomputed). Requires u != dst.
  [[nodiscard]] NodeId next_hop(NodeId u, NodeId dst) const;

  /// Number of hops on the routed path from u to dst (0 when u == dst).
  [[nodiscard]] std::uint32_t hop_count(NodeId u, NodeId dst) const;

 private:
  explicit Topology(std::vector<std::vector<NetLink>> adjacency);
  void build_routes();

  std::vector<std::vector<NetLink>> adjacency_;
  // next_hop_[dst * n + u]: next node from u toward dst; u itself when done.
  std::vector<NodeId> next_hop_;
};

}  // namespace postal
