// A store-and-forward packet-network simulator.
//
// This is the "hardware" substitute for the paper's 1992 machines: a
// concrete network under the complete-graph abstraction. The model per
// packet:
//
//   source software   -- occupies the sender's egress for `send_overhead`
//                        (one packet at a time, FIFO);
//   each routed hop   -- occupies the directed wire for `wire_time`
//                        (serialization; one packet at a time, FIFO), then
//                        flies for the wire's propagation delay, plus an
//                        optional uniform jitter in [0, jitter_max];
//   destination sw    -- occupies the receiver's ingress for
//                        `recv_overhead`; the packet is delivered when the
//                        ingress finishes.
//
// With send_overhead as the postal "unit of time", an idle network realizes
// an effective lambda of
//   (send_overhead + hops*(wire_time + propagation) + recv_overhead)
//     / send_overhead,
// which calibrate.hpp measures empirically instead of assuming.
//
// Fault injection (docs/FAULTS.md): attach_faults() arms a FaultPlan.
// Crashed nodes stop injecting, forwarding, and receiving at their exact
// crash time (a packet in flight dies at the first dead node it reaches),
// lossy wires eat serializations via the same seeded Bernoulli draws the
// Machine uses, and spike windows stretch propagation. All checks are
// guarded by a null injector test: fault-free runs are byte-identical to
// runs without a plan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/injector.hpp"
#include "model/params.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"
#include "support/prng.hpp"
#include "support/rational.hpp"
#include "support/ticks.hpp"

namespace postal {

/// How packets traverse multi-hop paths.
enum class Switching {
  kStoreAndForward,  ///< each hop waits for the whole packet: per-hop cost
                     ///< wire_time + propagation
  kCutThrough,       ///< the head streams ahead once received: per-hop cost
                     ///< header_time + propagation, full wire_time paid once
                     ///< at the tail
};

/// Tunables of the packet network.
struct NetConfig {
  Rational send_overhead{1};   ///< sender software time per packet (> 0)
  Rational recv_overhead{1};   ///< receiver software time per packet (> 0)
  Rational wire_time{1};       ///< per-hop serialization time (> 0)
  Rational header_time{1, 4};  ///< cut-through header latching time
                               ///< (0 < header_time <= wire_time)
  Rational jitter_max{0};      ///< max per-hop jitter (0 disables; >= 0)
  Switching switching = Switching::kStoreAndForward;
  std::uint64_t jitter_seed = 0x9e3779b9;

  /// Time representation (docs/PERFORMANCE.md). kAuto (default) runs each
  /// run() on int64 ticks when every config time, submit time, link
  /// propagation, and fault-plan time folds onto one 1/q grid and a static
  /// bound rules out tick overflow; kRational forces the reference engine.
  /// Deliveries and stats are identical either way (differential-tested).
  TimePath time_path = TimePath::kAuto;

  void validate() const;
};

/// Serialization occupancy of one directed wire over a run.
struct WireUse {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t packets = 0;  ///< serializations performed on this wire
  Rational busy;              ///< total occupancy (packets * wire_time, exact)
};

/// Utilization and event counters of one PacketNetwork::run(), collected
/// for free while the run executes. obs::record_net_stats folds them into
/// a metrics registry (per-wire utilization = busy / makespan); see
/// docs/OBSERVABILITY.md for the derived metric names.
struct NetRunStats {
  std::uint64_t packets_delivered = 0;  ///< end-to-end deliveries
  std::uint64_t hops_total = 0;         ///< wire traversals over all packets
  std::uint64_t jitter_draws = 0;       ///< PRNG draws (0 with jitter disabled)
  Rational egress_busy_total;           ///< sender software occupancy, summed
  Rational ingress_busy_total;          ///< receiver software occupancy, summed
  Rational makespan;                    ///< latest delivery time (0 when idle)
  std::vector<WireUse> wires;           ///< per-wire use, sorted by (from, to)
  FaultStats faults;                    ///< faults applied (zero without a plan)
  /// True iff this run executed on the tick fast path
  /// (docs/PERFORMANCE.md). Informational: both paths produce identical
  /// deliveries and stats, so equality checks should ignore it.
  bool tick_domain = false;
};

/// One completed end-to-end packet delivery.
struct NetDelivery {
  NodeId src = 0;
  NodeId dst = 0;
  MsgId msg = 0;
  Rational requested;  ///< when the sender asked to transmit
  Rational delivered;  ///< when the receiver software finished
};

/// The simulator. Submit traffic, then run() to quiescence.
class PacketNetwork {
 public:
  PacketNetwork(Topology topology, NetConfig config);

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const NetConfig& config() const noexcept { return config_; }

  /// Arm `plan` for subsequent run() calls (validated against n; copied).
  /// Plan times are in the network's own clock -- when replaying a postal
  /// schedule, scale postal times by send_overhead to match. Crashes halt a
  /// node's software and forwarding; LinkLoss entries apply per directed
  /// wire (each serialization draws once); spikes stretch propagation of
  /// hops whose serialization starts inside the window. Attaching an empty
  /// plan is equivalent to attaching none.
  void attach_faults(const FaultPlan& plan);

  /// Remove any attached plan; subsequent runs are fault-free.
  void detach_faults() noexcept { injector_.reset(); }

  /// True iff a (non-empty) plan is attached.
  [[nodiscard]] bool has_faults() const noexcept { return injector_ != nullptr; }

  /// Ask node `src` to send one packet to `dst` at time `t`.
  void submit(NodeId src, NodeId dst, MsgId msg, const Rational& t);

  /// Replay a postal schedule: postal time u is mapped to real time
  /// u * send_overhead (the postal unit is one send).
  void submit_schedule(const Schedule& schedule);

  /// Process all submitted traffic; returns deliveries sorted by delivery
  /// time. Resets submitted traffic afterwards (the network object can be
  /// reused).
  [[nodiscard]] std::vector<NetDelivery> run();

  /// Stats of the most recent run() (empty before the first run).
  [[nodiscard]] const NetRunStats& last_run_stats() const noexcept {
    return stats_;
  }

 private:
  struct Pending {
    NodeId src;
    NodeId dst;
    MsgId msg;
    Rational t;
  };

  Topology topology_;
  NetConfig config_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<Pending> pending_;
  NetRunStats stats_;
};

/// Latest delivery time in a run (0 when empty).
[[nodiscard]] Rational net_makespan(const std::vector<NetDelivery>& deliveries);

}  // namespace postal
