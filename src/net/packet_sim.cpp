#include "net/packet_sim.hpp"

#include <algorithm>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/tick_queue.hpp"

namespace postal {

void NetConfig::validate() const {
  POSTAL_REQUIRE(send_overhead > Rational(0), "NetConfig: send_overhead must be > 0");
  POSTAL_REQUIRE(recv_overhead > Rational(0), "NetConfig: recv_overhead must be > 0");
  POSTAL_REQUIRE(wire_time > Rational(0), "NetConfig: wire_time must be > 0");
  POSTAL_REQUIRE(header_time > Rational(0) && header_time <= wire_time,
                 "NetConfig: need 0 < header_time <= wire_time");
  POSTAL_REQUIRE(jitter_max >= Rational(0), "NetConfig: jitter_max must be >= 0");
}

PacketNetwork::PacketNetwork(Topology topology, NetConfig config)
    : topology_(std::move(topology)), config_(std::move(config)) {
  config_.validate();
}

void PacketNetwork::attach_faults(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(plan, topology_.n());
}

void PacketNetwork::submit(NodeId src, NodeId dst, MsgId msg, const Rational& t) {
  POSTAL_REQUIRE(src < topology_.n() && dst < topology_.n(),
                 "PacketNetwork::submit: node out of range");
  POSTAL_REQUIRE(src != dst, "PacketNetwork::submit: src == dst");
  POSTAL_REQUIRE(t >= Rational(0), "PacketNetwork::submit: time must be >= 0");
  pending_.push_back(Pending{src, dst, msg, t});
}

void PacketNetwork::submit_schedule(const Schedule& schedule) {
  for (const SendEvent& e : schedule.events()) {
    submit(e.src, e.dst, e.msg, e.t * config_.send_overhead);
  }
}

namespace {

// The run loop below is written once, generic over the time representation
// (docs/PERFORMANCE.md): RationalNetOps is the reference, TickNetOps the
// int64 fast path admitted by probe_net_ticks. Both instantiations take
// identical branches, consume the jitter PRNG and the per-wire loss
// counters in identical order, and record FaultEvents/deliveries with
// exactly-converted times, so their outputs are byte-identical
// (differential-tested).

template <typename Time>
struct Traveling {
  NodeId at;   ///< node the packet's head has reached
  NodeId src;
  NodeId dst;
  MsgId msg;
  Time requested;
  Time tail;  ///< time the packet is fully present at `at`
  bool injected;  ///< false while still waiting in the sender's software
};

/// Per-spike window in ticks (same membership test as the Rational path:
/// a hop whose serialization starts in [from, until) is stretched).
struct NetSpikeTicks {
  Tick from = 0;
  Tick until = 0;
  Tick extra = 0;
};

struct RationalNetOps {
  using Time = Rational;
  const NetConfig* cfg;
  const FaultInjector* injector;

  static Time zero() { return Rational(0); }
  static Time max(const Time& a, const Time& b) { return rmax(a, b); }
  static Rational rat(const Time& t) { return t; }
  [[nodiscard]] Time send_oh() const { return cfg->send_overhead; }
  [[nodiscard]] Time recv_oh() const { return cfg->recv_overhead; }
  [[nodiscard]] Time wire() const { return cfg->wire_time; }
  [[nodiscard]] Time header() const { return cfg->header_time; }
  [[nodiscard]] Time prop(const Rational& p) const { return p; }
  [[nodiscard]] Time jitter_amount(std::int64_t k) const {
    return cfg->jitter_max * Rational(k, 64);
  }
  [[nodiscard]] bool crashed(NodeId p, const Time& t) const {
    return injector->crashed(p, t);
  }
  [[nodiscard]] Time spike_extra(const Time& start) const {
    return injector->extra_latency(start);
  }
};

struct TickNetOps {
  using Time = Tick;
  TickDomain dom{1};
  Tick send_oh_ = 0;
  Tick recv_oh_ = 0;
  Tick wire_ = 0;
  Tick header_ = 0;
  Tick jitter_quantum = 0;  ///< jitter_max / 64 in ticks
  std::vector<std::optional<Tick>> crash;  ///< sized n when a plan is armed
  std::vector<NetSpikeTicks> spikes;

  static Time zero() { return 0; }
  static Time max(Time a, Time b) { return a > b ? a : b; }
  [[nodiscard]] Rational rat(Time t) const { return dom.to_rational(t); }
  [[nodiscard]] Time send_oh() const { return send_oh_; }
  [[nodiscard]] Time recv_oh() const { return recv_oh_; }
  [[nodiscard]] Time wire() const { return wire_; }
  [[nodiscard]] Time header() const { return header_; }
  [[nodiscard]] Time prop(const Rational& p) const {
    const std::optional<Tick> t = dom.to_ticks(p);
    POSTAL_CHECK(t.has_value());  // guaranteed by probe_net_ticks
    return *t;
  }
  [[nodiscard]] Time jitter_amount(std::int64_t k) const {
    return jitter_quantum * k;
  }
  [[nodiscard]] bool crashed(NodeId p, Time t) const {
    const auto& c = crash[p];
    return c.has_value() && t >= *c;
  }
  [[nodiscard]] Time spike_extra(Time start) const {
    Tick extra = 0;
    for (const NetSpikeTicks& s : spikes) {
      if (start >= s.from && start < s.until) extra += s.extra;
    }
    return extra;
  }
};

/// EventQueue with the (time, seq) FIFO contract -- the reference.
struct RationalNetQueue {
  EventQueue<Traveling<Rational>> q;
  void push(Rational t, Traveling<Rational> v) { q.push(std::move(t), std::move(v)); }
  [[nodiscard]] bool empty() const { return q.empty(); }
  std::pair<Rational, Traveling<Rational>> pop() { return q.pop(); }
};

/// Bucketed monotone queue under the same (time, seq) contract: seqs are
/// stamped in push order, so pops match the reference pop order exactly.
struct TickNetQueue {
  TickEventQueue<Traveling<Tick>> q;
  std::uint64_t seq = 0;
  void push(Tick t, Traveling<Tick> v) { q.push(t, seq++, std::move(v)); }
  [[nodiscard]] bool empty() const { return q.empty(); }
  std::pair<Tick, Traveling<Tick>> pop() { return q.pop(); }
};

/// Everything probe_net_ticks must pre-convert for a tick run.
struct NetTickPlan {
  TickNetOps ops;
  std::vector<Tick> submit;  ///< pending_[i].t in ticks, same order
};

template <typename Ops, typename Queue>
std::vector<NetDelivery> run_net(const Topology& topology, const NetConfig& config,
                                 FaultInjector* injector, const Ops& ops,
                                 Queue& queue, NetRunStats& stats) {
  const std::uint64_t n = topology.n();
  using Time = typename Ops::Time;

  std::vector<Time> egress_free(n, Ops::zero());
  std::vector<Time> ingress_free(n, Ops::zero());
  std::unordered_map<std::uint64_t, Time> wire_free;
  std::unordered_map<std::uint64_t, WireUse> wire_use;
  auto wire_key = [n](NodeId u, NodeId v) {
    return static_cast<std::uint64_t>(u) * n + v;
  };
  auto wire_propagation = [&topology](NodeId u, NodeId v) -> const Rational& {
    for (const NetLink& link : topology.links(u)) {
      if (link.to == v) return link.propagation;
    }
    throw LogicError("PacketNetwork: routed over a nonexistent wire");
  };

  Xoshiro256 rng(config.jitter_seed);
  const bool jitter_on = config.jitter_max > Rational(0);

  std::uint64_t egress_count = 0;
  std::uint64_t ingress_count = 0;
  std::vector<NetDelivery> deliveries;
  while (!queue.empty()) {
    auto [now, pkt] = queue.pop();
    if (!pkt.injected) {
      // Sender software: one packet at a time.
      const Time start = Ops::max(egress_free[pkt.src], now);
      if (injector && ops.crashed(pkt.src, start)) {
        // The sender died before its egress slot started: never injected.
        ++stats.faults.sends_suppressed;
        stats.faults.events.push_back(FaultEvent{
            FaultEvent::Kind::kSendSuppressed, ops.rat(start), pkt.src, pkt.dst});
        continue;
      }
      egress_free[pkt.src] = start + ops.send_oh();
      ++egress_count;
      pkt.injected = true;
      pkt.tail = start + ops.send_oh();
      queue.push(start + ops.send_oh(), pkt);
      continue;
    }
    if (pkt.at == pkt.dst) {
      // Receiver software: one packet at a time; needs the whole packet.
      const Time start = Ops::max(ingress_free[pkt.dst], pkt.tail);
      const Time done = start + ops.recv_oh();
      ingress_free[pkt.dst] = done;
      ++ingress_count;
      if (injector && ops.crashed(pkt.dst, done)) {
        // Dead before the receive completed: the ingress hardware latched
        // the packet (port time is charged) but the software never saw it.
        ++stats.faults.drops_crash;
        stats.faults.events.push_back(FaultEvent{
            FaultEvent::Kind::kDropCrash, ops.rat(done), pkt.dst, pkt.src});
        continue;
      }
      deliveries.push_back(NetDelivery{pkt.src, pkt.dst, pkt.msg,
                                       ops.rat(pkt.requested), ops.rat(done)});
      continue;
    }
    // Forward one hop: serialize onto the wire, then fly. Store-and-forward
    // begins once the whole packet is present; cut-through streams the head
    // onward after header_time, paying the full wire_time only at the tail.
    const NodeId next = topology.next_hop(pkt.at, pkt.dst);
    Time& free_at =
        wire_free.try_emplace(wire_key(pkt.at, next), Ops::zero()).first->second;
    const Time ready =
        config.switching == Switching::kStoreAndForward ? pkt.tail : now;
    const Time start = Ops::max(free_at, ready);
    if (injector && ops.crashed(pkt.at, start)) {
      // The relay died before it could serialize: the packet dies with it.
      ++stats.faults.drops_crash;
      stats.faults.events.push_back(FaultEvent{FaultEvent::Kind::kDropCrash,
                                               ops.rat(start), pkt.at, pkt.dst});
      continue;
    }
    free_at = start + ops.wire();
    ++stats.hops_total;
    WireUse& use = wire_use.try_emplace(wire_key(pkt.at, next),
                                        WireUse{pkt.at, next, 0, Rational(0)})
                       .first->second;
    ++use.packets;
    Time jit = Ops::zero();
    if (jitter_on) {
      ++stats.jitter_draws;
      // Uniform multiple of jitter_max/64 keeps arithmetic exactly rational.
      const auto k = static_cast<std::int64_t>(rng.uniform(0, 64));
      jit = ops.jitter_amount(k);
    }
    Time flight = ops.prop(wire_propagation(pkt.at, next)) + jit;
    if (injector && injector->has_spikes()) {
      const Time extra = ops.spike_extra(start);
      if (extra > Ops::zero()) {
        flight += extra;
        ++stats.faults.spikes_applied;
        stats.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kSpike, ops.rat(start), pkt.at, next});
      }
    }
    if (injector && injector->has_losses() && injector->lose(pkt.at, next)) {
      // The wire ate the serialization: occupancy is charged, nothing
      // comes out the far end.
      ++stats.faults.drops_loss;
      stats.faults.events.push_back(FaultEvent{FaultEvent::Kind::kDropLoss,
                                               ops.rat(start + ops.wire()), next,
                                               pkt.at});
      continue;
    }
    pkt.tail = start + ops.wire() + flight;
    const Time head = config.switching == Switching::kCutThrough
                          ? start + ops.header() + flight
                          : pkt.tail;
    pkt.at = next;
    queue.push(head, pkt);
  }

  // Busy totals are integer occupancy counts folded exactly at the end --
  // identical to summing per event (Rational arithmetic is exact), cheaper,
  // and shared by both engines.
  stats.egress_busy_total =
      Rational(static_cast<std::int64_t>(egress_count)) * config.send_overhead;
  stats.ingress_busy_total =
      Rational(static_cast<std::int64_t>(ingress_count)) * config.recv_overhead;
  stats.wires.reserve(wire_use.size());
  for (auto& kv : wire_use) {
    kv.second.busy =
        Rational(static_cast<std::int64_t>(kv.second.packets)) * config.wire_time;
    stats.wires.push_back(kv.second);
  }
  std::sort(stats.wires.begin(), stats.wires.end(),
            [](const WireUse& a, const WireUse& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });

  std::sort(deliveries.begin(), deliveries.end(),
            [](const NetDelivery& a, const NetDelivery& b) {
              if (a.delivered != b.delivered) return a.delivered < b.delivered;
              return std::tie(a.src, a.dst, a.msg) < std::tie(b.src, b.dst, b.msg);
            });
  stats.packets_delivered = deliveries.size();
  stats.makespan = net_makespan(deliveries);
  return deliveries;
}

/// Probe whether the whole run fits one int64 tick grid: fold a common
/// denominator q over every config time, link propagation, submit time,
/// and fault-plan time, convert them all (nullopt on any failure), and
/// check a generous static bound so the hot loop needs no overflow checks.
std::optional<NetTickPlan> probe_net_ticks(
    const Topology& topology, const NetConfig& config,
    const FaultInjector* injector,
    const std::vector<std::pair<NodeId, Rational>>& submits) {
  std::int64_t q = 1;
  auto fold = [&q](const Rational& r) {
    const std::optional<std::int64_t> folded = TickDomain::fold_denominator(q, r);
    if (!folded.has_value()) return false;
    q = *folded;
    return true;
  };
  if (!fold(config.send_overhead) || !fold(config.recv_overhead) ||
      !fold(config.wire_time) || !fold(config.header_time)) {
    return std::nullopt;
  }
  const bool jitter_on = config.jitter_max > Rational(0);
  Rational jitter_quantum(0);
  if (jitter_on) {
    // Jitter draws are multiples of jitter_max/64; fold that quantum.
    std::int64_t d64 = 0;
    if (__builtin_mul_overflow(config.jitter_max.den(), std::int64_t{64}, &d64)) {
      return std::nullopt;
    }
    jitter_quantum = Rational(config.jitter_max.num(), d64);
    if (!fold(jitter_quantum)) return std::nullopt;
  }
  const std::uint64_t n = topology.n();
  for (NodeId u = 0; u < n; ++u) {
    for (const NetLink& link : topology.links(u)) {
      if (!fold(link.propagation)) return std::nullopt;
    }
  }
  for (const auto& s : submits) {
    if (!fold(s.second)) return std::nullopt;
  }
  if (injector) {
    for (NodeId p = 0; p < n; ++p) {
      const auto& c = injector->crash_time(p);
      if (c.has_value() && !fold(*c)) return std::nullopt;
    }
    for (const LatencySpike& s : injector->plan().spikes) {
      if (!fold(s.from) || !fold(s.until) || !fold(s.extra)) return std::nullopt;
    }
  }

  NetTickPlan plan;
  plan.ops.dom = TickDomain(q);
  const TickDomain& dom = plan.ops.dom;
  const auto so = dom.to_ticks(config.send_overhead);
  const auto ro = dom.to_ticks(config.recv_overhead);
  const auto wt = dom.to_ticks(config.wire_time);
  const auto ht = dom.to_ticks(config.header_time);
  if (!so || !ro || !wt || !ht) return std::nullopt;
  plan.ops.send_oh_ = *so;
  plan.ops.recv_oh_ = *ro;
  plan.ops.wire_ = *wt;
  plan.ops.header_ = *ht;
  if (jitter_on) {
    const auto jq = dom.to_ticks(jitter_quantum);
    if (!jq) return std::nullopt;
    plan.ops.jitter_quantum = *jq;
  }

  __extension__ using int128 = __int128;
  int128 max_prop = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (const NetLink& link : topology.links(u)) {
      const auto p = dom.to_ticks(link.propagation);
      if (!p) return std::nullopt;
      if (*p > max_prop) max_prop = *p;
    }
  }
  int128 max_submit = 0;
  plan.submit.reserve(submits.size());
  for (const auto& s : submits) {
    const auto t = dom.to_ticks(s.second);
    if (!t) return std::nullopt;
    plan.submit.push_back(*t);
    if (*t > max_submit) max_submit = *t;
  }
  int128 extra_sum = 0;
  if (injector) {
    plan.ops.crash.resize(n);
    for (NodeId p = 0; p < n; ++p) {
      const auto& c = injector->crash_time(p);
      if (!c.has_value()) continue;
      const auto ct = dom.to_ticks(*c);
      if (!ct) return std::nullopt;
      plan.ops.crash[p] = *ct;
    }
    for (const LatencySpike& s : injector->plan().spikes) {
      const auto from = dom.to_ticks(s.from);
      const auto until = dom.to_ticks(s.until);
      const auto extra = dom.to_ticks(s.extra);
      if (!from || !until || !extra) return std::nullopt;
      plan.ops.spikes.push_back(NetSpikeTicks{*from, *until, *extra});
      extra_sum += *extra;
    }
  }

  // Every packet advances some clock by at most `step` per queue event and
  // visits at most n nodes, so all times stay below this product; admit
  // only when it leaves int64 headroom (then the hot loop's raw adds
  // cannot overflow).
  const int128 step = static_cast<int128>(q) + *so + *ro + *wt + max_prop +
                      64 * static_cast<int128>(plan.ops.jitter_quantum) + extra_sum;
  const int128 bound =
      max_submit + (static_cast<int128>(submits.size()) + 1) *
                       (static_cast<int128>(n) + 4) * step;
  if (bound >= (int128{1} << 62)) return std::nullopt;
  return plan;
}

}  // namespace

std::vector<NetDelivery> PacketNetwork::run() {
  stats_ = NetRunStats();
  if (injector_) {
    injector_->reset();
    for (NodeId p = 0; p < topology_.n(); ++p) {
      const auto& c = injector_->crash_time(p);
      if (c.has_value()) {
        ++stats_.faults.crashes_applied;
        stats_.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kCrash, *c, p, p});
      }
    }
  }

  std::optional<NetTickPlan> plan;
  if (config_.time_path == TimePath::kAuto) {
    std::vector<std::pair<NodeId, Rational>> submits;
    submits.reserve(pending_.size());
    for (const Pending& p : pending_) submits.emplace_back(p.src, p.t);
    plan = probe_net_ticks(topology_, config_, injector_.get(), submits);
  }

  std::vector<NetDelivery> deliveries;
  if (plan.has_value()) {
    stats_.tick_domain = true;
    TickNetQueue queue;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const Pending& p = pending_[i];
      const Tick t = plan->submit[i];
      queue.push(t, Traveling<Tick>{p.src, p.src, p.dst, p.msg, t, t,
                                    /*injected=*/false});
    }
    pending_.clear();
    deliveries = run_net(topology_, config_, injector_.get(), plan->ops, queue,
                         stats_);
  } else {
    RationalNetQueue queue;
    for (const Pending& p : pending_) {
      queue.push(p.t, Traveling<Rational>{p.src, p.src, p.dst, p.msg, p.t, p.t,
                                          /*injected=*/false});
    }
    pending_.clear();
    const RationalNetOps ops{&config_, injector_.get()};
    deliveries = run_net(topology_, config_, injector_.get(), ops, queue, stats_);
  }
  return deliveries;
}

Rational net_makespan(const std::vector<NetDelivery>& deliveries) {
  Rational latest(0);
  for (const NetDelivery& d : deliveries) latest = rmax(latest, d.delivered);
  return latest;
}

}  // namespace postal
