#include "net/packet_sim.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "sim/event_queue.hpp"

namespace postal {

void NetConfig::validate() const {
  POSTAL_REQUIRE(send_overhead > Rational(0), "NetConfig: send_overhead must be > 0");
  POSTAL_REQUIRE(recv_overhead > Rational(0), "NetConfig: recv_overhead must be > 0");
  POSTAL_REQUIRE(wire_time > Rational(0), "NetConfig: wire_time must be > 0");
  POSTAL_REQUIRE(header_time > Rational(0) && header_time <= wire_time,
                 "NetConfig: need 0 < header_time <= wire_time");
  POSTAL_REQUIRE(jitter_max >= Rational(0), "NetConfig: jitter_max must be >= 0");
}

PacketNetwork::PacketNetwork(Topology topology, NetConfig config)
    : topology_(std::move(topology)), config_(std::move(config)) {
  config_.validate();
}

void PacketNetwork::attach_faults(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(plan, topology_.n());
}

void PacketNetwork::submit(NodeId src, NodeId dst, MsgId msg, const Rational& t) {
  POSTAL_REQUIRE(src < topology_.n() && dst < topology_.n(),
                 "PacketNetwork::submit: node out of range");
  POSTAL_REQUIRE(src != dst, "PacketNetwork::submit: src == dst");
  POSTAL_REQUIRE(t >= Rational(0), "PacketNetwork::submit: time must be >= 0");
  pending_.push_back(Pending{src, dst, msg, t});
}

void PacketNetwork::submit_schedule(const Schedule& schedule) {
  for (const SendEvent& e : schedule.events()) {
    submit(e.src, e.dst, e.msg, e.t * config_.send_overhead);
  }
}

std::vector<NetDelivery> PacketNetwork::run() {
  const std::uint64_t n = topology_.n();

  struct Traveling {
    NodeId at;   ///< node the packet's head has reached
    NodeId src;
    NodeId dst;
    MsgId msg;
    Rational requested;
    Rational tail;  ///< time the packet is fully present at `at`
    bool injected;  ///< false while still waiting in the sender's software
  };

  EventQueue<Traveling> queue;
  for (const Pending& p : pending_) {
    queue.push(p.t,
               Traveling{p.src, p.src, p.dst, p.msg, p.t, p.t, /*injected=*/false});
  }
  pending_.clear();

  stats_ = NetRunStats();
  if (injector_) {
    injector_->reset();
    for (NodeId p = 0; p < n; ++p) {
      const auto& c = injector_->crash_time(p);
      if (c.has_value()) {
        ++stats_.faults.crashes_applied;
        stats_.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kCrash, *c, p, p});
      }
    }
  }

  std::vector<Rational> egress_free(n, Rational(0));
  std::vector<Rational> ingress_free(n, Rational(0));
  std::unordered_map<std::uint64_t, Rational> wire_free;
  std::unordered_map<std::uint64_t, WireUse> wire_use;
  auto wire_key = [n](NodeId u, NodeId v) {
    return static_cast<std::uint64_t>(u) * n + v;
  };
  auto wire_propagation = [this](NodeId u, NodeId v) -> const Rational& {
    for (const NetLink& link : topology_.links(u)) {
      if (link.to == v) return link.propagation;
    }
    throw LogicError("PacketNetwork: routed over a nonexistent wire");
  };

  Xoshiro256 rng(config_.jitter_seed);
  const bool jitter_on = config_.jitter_max > Rational(0);
  auto jitter = [&]() -> Rational {
    if (!jitter_on) return Rational(0);
    ++stats_.jitter_draws;
    // Uniform multiple of jitter_max/64 keeps arithmetic exactly rational.
    const auto k = static_cast<std::int64_t>(rng.uniform(0, 64));
    return config_.jitter_max * Rational(k, 64);
  };

  std::vector<NetDelivery> deliveries;
  while (!queue.empty()) {
    auto [now, pkt] = queue.pop();
    if (!pkt.injected) {
      // Sender software: one packet at a time.
      const Rational start = rmax(egress_free[pkt.src], now);
      if (injector_ && injector_->crashed(pkt.src, start)) {
        // The sender died before its egress slot started: never injected.
        ++stats_.faults.sends_suppressed;
        stats_.faults.events.push_back(FaultEvent{
            FaultEvent::Kind::kSendSuppressed, start, pkt.src, pkt.dst});
        continue;
      }
      egress_free[pkt.src] = start + config_.send_overhead;
      stats_.egress_busy_total += config_.send_overhead;
      pkt.injected = true;
      pkt.tail = start + config_.send_overhead;
      queue.push(start + config_.send_overhead, pkt);
      continue;
    }
    if (pkt.at == pkt.dst) {
      // Receiver software: one packet at a time; needs the whole packet.
      const Rational start = rmax(ingress_free[pkt.dst], pkt.tail);
      const Rational done = start + config_.recv_overhead;
      ingress_free[pkt.dst] = done;
      stats_.ingress_busy_total += config_.recv_overhead;
      if (injector_ && injector_->crashed(pkt.dst, done)) {
        // Dead before the receive completed: the ingress hardware latched
        // the packet (port time is charged) but the software never saw it.
        ++stats_.faults.drops_crash;
        stats_.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kDropCrash, done, pkt.dst, pkt.src});
        continue;
      }
      deliveries.push_back(
          NetDelivery{pkt.src, pkt.dst, pkt.msg, pkt.requested, done});
      continue;
    }
    // Forward one hop: serialize onto the wire, then fly. Store-and-forward
    // begins once the whole packet is present; cut-through streams the head
    // onward after header_time, paying the full wire_time only at the tail.
    const NodeId next = topology_.next_hop(pkt.at, pkt.dst);
    Rational& free_at = wire_free.try_emplace(wire_key(pkt.at, next), Rational(0))
                            .first->second;
    const Rational ready =
        config_.switching == Switching::kStoreAndForward ? pkt.tail : now;
    const Rational start = rmax(free_at, ready);
    if (injector_ && injector_->crashed(pkt.at, start)) {
      // The relay died before it could serialize: the packet dies with it.
      ++stats_.faults.drops_crash;
      stats_.faults.events.push_back(
          FaultEvent{FaultEvent::Kind::kDropCrash, start, pkt.at, pkt.dst});
      continue;
    }
    free_at = start + config_.wire_time;
    ++stats_.hops_total;
    WireUse& use = wire_use.try_emplace(wire_key(pkt.at, next),
                                        WireUse{pkt.at, next, 0, Rational(0)})
                       .first->second;
    ++use.packets;
    use.busy += config_.wire_time;
    Rational flight = wire_propagation(pkt.at, next) + jitter();
    if (injector_ && injector_->has_spikes()) {
      const Rational extra = injector_->extra_latency(start);
      if (extra > Rational(0)) {
        flight += extra;
        ++stats_.faults.spikes_applied;
        stats_.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kSpike, start, pkt.at, next});
      }
    }
    if (injector_ && injector_->has_losses() && injector_->lose(pkt.at, next)) {
      // The wire ate the serialization: occupancy is charged, nothing
      // comes out the far end.
      ++stats_.faults.drops_loss;
      stats_.faults.events.push_back(FaultEvent{
          FaultEvent::Kind::kDropLoss, start + config_.wire_time, next, pkt.at});
      continue;
    }
    pkt.tail = start + config_.wire_time + flight;
    const Rational head = config_.switching == Switching::kCutThrough
                              ? start + config_.header_time + flight
                              : pkt.tail;
    pkt.at = next;
    queue.push(head, pkt);
  }

  std::sort(deliveries.begin(), deliveries.end(),
            [](const NetDelivery& a, const NetDelivery& b) {
              if (a.delivered != b.delivered) return a.delivered < b.delivered;
              return std::tie(a.src, a.dst, a.msg) < std::tie(b.src, b.dst, b.msg);
            });

  stats_.packets_delivered = deliveries.size();
  stats_.makespan = net_makespan(deliveries);
  stats_.wires.reserve(wire_use.size());
  for (const auto& kv : wire_use) stats_.wires.push_back(kv.second);
  std::sort(stats_.wires.begin(), stats_.wires.end(),
            [](const WireUse& a, const WireUse& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  return deliveries;
}

Rational net_makespan(const std::vector<NetDelivery>& deliveries) {
  Rational latest(0);
  for (const NetDelivery& d : deliveries) latest = rmax(latest, d.delivered);
  return latest;
}

}  // namespace postal
