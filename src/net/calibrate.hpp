// Calibration: measuring the effective postal lambda of a packet network,
// and replaying postal schedules on it to check that postal-model
// predictions transfer to the "real" wire.
//
// The postal unit of time is the time a sender is busy per send, i.e.
// NetConfig::send_overhead. The effective latency of an idle network for a
// (src, dst) pair is
//     lambda(src, dst) = (delivered - requested) / send_overhead,
// measured with one probe packet at a time. The calibrator probes a set of
// pairs, reports min/mean/max, and snaps the mean to a small rational grid
// so the result can seed GenFib.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet_sim.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// Summary of a calibration run.
struct CalibrationReport {
  Rational lambda_min;
  Rational lambda_mean;  ///< exact rational mean over all probes
  Rational lambda_max;
  Rational lambda_snapped;  ///< mean rounded up to the grid, clamped to >= 1
  std::uint64_t probes = 0;
};

/// Probe `pairs` random ordered (src, dst) pairs (seeded, deterministic),
/// one at a time on an idle network, and summarize. `grid` is the
/// denominator for snapping (e.g. 4 -> quarters).
[[nodiscard]] CalibrationReport calibrate_lambda(PacketNetwork& net,
                                                 std::uint64_t pairs,
                                                 std::uint64_t seed,
                                                 std::int64_t grid = 4);

/// Result of replaying a postal schedule on the network.
struct ReplayReport {
  Rational predicted;   ///< postal-model completion (in network time units)
  Rational observed;    ///< measured network completion
  double ratio = 0.0;   ///< observed / predicted (1.0 = perfect transfer)
  std::uint64_t deliveries = 0;
};

/// Submit `schedule` (postal times scaled by send_overhead), run the
/// network, and compare against `postal_completion` (a postal-model time,
/// also scaled by send_overhead for comparison).
[[nodiscard]] ReplayReport replay_schedule(PacketNetwork& net, const Schedule& schedule,
                                           const Rational& postal_completion);

}  // namespace postal
