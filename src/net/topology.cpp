#include "net/topology.hpp"

#include <queue>

namespace postal {

Topology::Topology(std::vector<std::vector<NetLink>> adjacency)
    : adjacency_(std::move(adjacency)) {
  POSTAL_REQUIRE(!adjacency_.empty(), "Topology: need at least one node");
  build_routes();
}

Topology Topology::complete(std::uint64_t n, const Rational& propagation) {
  POSTAL_REQUIRE(n >= 1, "Topology::complete: n must be >= 1");
  std::vector<std::vector<NetLink>> adj(n);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::uint64_t v = 0; v < n; ++v) {
      if (u == v) continue;
      adj[u].push_back(NetLink{static_cast<NodeId>(v), propagation});
    }
  }
  return Topology(std::move(adj));
}

namespace {

std::vector<std::vector<NetLink>> grid(std::uint64_t rows, std::uint64_t cols,
                                       const Rational& propagation, bool wrap) {
  POSTAL_REQUIRE(rows >= 1 && cols >= 1, "Topology grid: rows and cols must be >= 1");
  const std::uint64_t n = rows * cols;
  std::vector<std::vector<NetLink>> adj(n);
  auto id = [cols](std::uint64_t r, std::uint64_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  auto connect = [&](NodeId a, NodeId b) {
    if (a == b) return;
    adj[a].push_back(NetLink{b, propagation});
  };
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        connect(id(r, c), id(r, c + 1));
        connect(id(r, c + 1), id(r, c));
      } else if (wrap && cols > 2) {
        connect(id(r, c), id(r, 0));
        connect(id(r, 0), id(r, c));
      }
      if (r + 1 < rows) {
        connect(id(r, c), id(r + 1, c));
        connect(id(r + 1, c), id(r, c));
      } else if (wrap && rows > 2) {
        connect(id(r, c), id(0, c));
        connect(id(0, c), id(r, c));
      }
    }
  }
  return adj;
}

}  // namespace

Topology Topology::mesh2d(std::uint64_t rows, std::uint64_t cols,
                          const Rational& propagation) {
  return Topology(grid(rows, cols, propagation, /*wrap=*/false));
}

Topology Topology::torus2d(std::uint64_t rows, std::uint64_t cols,
                           const Rational& propagation) {
  return Topology(grid(rows, cols, propagation, /*wrap=*/true));
}

const std::vector<NetLink>& Topology::links(NodeId u) const {
  POSTAL_REQUIRE(u < n(), "Topology::links: node out of range");
  return adjacency_[u];
}

void Topology::build_routes() {
  const std::uint64_t n_nodes = n();
  next_hop_.assign(n_nodes * n_nodes, 0);
  // Reverse BFS from every destination; parent pointers give next hops.
  // Lowest-id neighbors win ties because adjacency lists are id-ordered by
  // construction and BFS visits in queue order.
  std::vector<std::vector<NodeId>> reverse_adj(n_nodes);
  for (std::uint64_t u = 0; u < n_nodes; ++u) {
    for (const NetLink& link : adjacency_[u]) {
      reverse_adj[link.to].push_back(static_cast<NodeId>(u));
    }
  }
  std::vector<std::uint32_t> dist(n_nodes);
  for (NodeId dst = 0; dst < n_nodes; ++dst) {
    constexpr std::uint32_t kUnreached = UINT32_MAX;
    dist.assign(n_nodes, kUnreached);
    dist[dst] = 0;
    next_hop_[static_cast<std::uint64_t>(dst) * n_nodes + dst] = dst;
    std::queue<NodeId> frontier;
    frontier.push(dst);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const NodeId u : reverse_adj[v]) {
        if (dist[u] != kUnreached) continue;
        dist[u] = dist[v] + 1;
        // From u, going to v makes progress toward dst.
        next_hop_[static_cast<std::uint64_t>(dst) * n_nodes + u] = v;
        frontier.push(u);
      }
    }
    for (std::uint64_t u = 0; u < n_nodes; ++u) {
      POSTAL_REQUIRE(dist[u] != kUnreached, "Topology: graph is not strongly connected");
    }
  }
}

NodeId Topology::next_hop(NodeId u, NodeId dst) const {
  POSTAL_REQUIRE(u < n() && dst < n(), "Topology::next_hop: node out of range");
  POSTAL_REQUIRE(u != dst, "Topology::next_hop: already at destination");
  return next_hop_[static_cast<std::uint64_t>(dst) * n() + u];
}

std::uint32_t Topology::hop_count(NodeId u, NodeId dst) const {
  POSTAL_REQUIRE(u < n() && dst < n(), "Topology::hop_count: node out of range");
  std::uint32_t hops = 0;
  NodeId at = u;
  while (at != dst) {
    at = next_hop(at, dst);
    ++hops;
    POSTAL_CHECK(hops <= n());
  }
  return hops;
}

}  // namespace postal
