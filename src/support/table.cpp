#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace postal {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  POSTAL_REQUIRE(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  POSTAL_REQUIRE(cells.size() == headers_.size(),
                 "TextTable: row width does not match header count");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "+") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

}  // namespace postal
