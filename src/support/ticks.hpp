// The tick domain: integer time at resolution 1/q (docs/PERFORMANCE.md).
//
// With lambda = p/q, every event time the paper's algorithms produce is an
// integer multiple of 1/q (the exact-equality property the Theorem 6 and
// Lemma 10/12/14/16 tests rely on). A hot loop can therefore carry its
// times as int64 *ticks* -- plain adds and compares instead of Rational's
// gcd-normalizing, overflow-checked arithmetic -- and convert back to
// Rational only at the boundary. TickDomain is that boundary: a checked,
// exact, two-way mapping between Rational time and tick counts.
//
// The conversion never lies and never wraps: to_ticks() reports
// unrepresentable (nullopt) when the value is not a multiple of 1/q or the
// tick count would not fit, and the caller falls back to the Rational
// reference path. Because Rational is canonical (reduced, positive
// denominator), to_rational(to_ticks(r)) == r exactly -- including the
// str() rendering -- which is what lets tick-domain runs be byte-identical
// to Rational runs in the differential gates.
//
// The tick domain is an internal, per-run representation. Rational remains
// the only time type in public APIs; TimePath is the one knob simulators
// expose (kAuto = take the fast path when representable, kRational = force
// the reference path, used by the differential tests and benches).
#pragma once

#include <cstdint>
#include <optional>

#include "support/rational.hpp"

namespace postal {

/// Integer time in units of 1/q.
using Tick = std::int64_t;

/// Per-run time representation choice (docs/PERFORMANCE.md).
enum class TimePath : std::uint8_t {
  kAuto,      ///< tick fast path when exactly representable, else Rational
  kRational,  ///< always the Rational reference path
};

/// The mapping between Rational time and int64 ticks at resolution 1/q.
class TickDomain {
 public:
  /// Resolution denominator; ticks measure multiples of 1/q. q >= 1.
  explicit TickDomain(std::int64_t q) : q_(q) {
    POSTAL_REQUIRE(q >= 1, "TickDomain: resolution denominator must be >= 1");
  }

  [[nodiscard]] std::int64_t q() const noexcept { return q_; }

  /// Exact conversion to ticks: r == to_ticks(r) / q. Returns nullopt when
  /// r is not a multiple of 1/q or the count overflows int64 -- the caller
  /// must then take the Rational path (never an approximation, never UB).
  [[nodiscard]] std::optional<Tick> to_ticks(const Rational& r) const noexcept {
    if (q_ % r.den() != 0) return std::nullopt;
    Tick out = 0;
    if (__builtin_mul_overflow(r.num(), q_ / r.den(), &out)) return std::nullopt;
    return out;
  }

  /// Exact conversion back; always succeeds (Rational reduces t/q_
  /// canonically, so round trips reproduce the original value and string).
  [[nodiscard]] Rational to_rational(Tick t) const { return Rational(t, q_); }

  /// Smallest resolution representing both multiples of 1/q and `r`
  /// exactly: lcm(q, r.den()). Probes fold every time a run can encounter
  /// through this; nullopt (lcm overflows) means no common grid exists and
  /// the run must stay on the Rational path.
  [[nodiscard]] static std::optional<std::int64_t> fold_denominator(
      std::int64_t q, const Rational& r) noexcept;

 private:
  std::int64_t q_;
};

}  // namespace postal
