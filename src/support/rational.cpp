#include "support/rational.hpp"

#include <cstdlib>
#include <ostream>

namespace postal {

namespace {

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("Rational: 64-bit addition overflow");
  }
  return out;
}

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError("Rational: 64-bit multiplication overflow");
  }
  return out;
}

}  // namespace

std::int64_t Rational::checked_neg(std::int64_t v) {
  if (v == INT64_MIN) throw OverflowError("Rational: negation overflow");
  return -v;
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(0), den_(1) {
  POSTAL_REQUIRE(den != 0, "Rational denominator must be nonzero");
  normalize(num, den);
}

void Rational::normalize(std::int64_t num, std::int64_t den) {
  if (den < 0) {
    num = checked_neg(num);
    den = checked_neg(den);
  }
  const std::int64_t g = std::gcd(num, den);
  num_ = (g == 0) ? 0 : num / g;
  den_ = (g == 0) ? 1 : den / g;
  if (num_ == 0) den_ = 1;
}

std::int64_t Rational::floor() const {
  // C++ integer division truncates toward zero; adjust for negatives.
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

std::int64_t Rational::ceil() const {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

std::int64_t Rational::trunc() const { return num_ / den_; }

Rational& Rational::operator+=(const Rational& rhs) {
  // a/b + c/d with a reduced-intermediate form to delay overflow:
  // let g = gcd(b, d); result = (a*(d/g) + c*(b/g)) / (b*(d/g)).
  const std::int64_t g = std::gcd(den_, rhs.den_);
  const std::int64_t dg = rhs.den_ / g;
  const std::int64_t bg = den_ / g;
  const std::int64_t num = checked_add(checked_mul(num_, dg), checked_mul(rhs.num_, bg));
  const std::int64_t den = checked_mul(den_, dg);
  normalize(num, den);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) { return *this += -rhs; }

Rational& Rational::operator*=(const Rational& rhs) {
  // Cross-reduce before multiplying to delay overflow.
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  const std::int64_t num = checked_mul(num_ / g1, rhs.num_ / g2);
  const std::int64_t den = checked_mul(den_ / g2, rhs.den_ / g1);
  normalize(num, den);
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  POSTAL_REQUIRE(rhs.num_ != 0, "Rational division by zero");
  Rational inv;
  inv.num_ = rhs.den_;
  inv.den_ = rhs.num_;
  if (inv.den_ < 0) {
    inv.num_ = checked_neg(inv.num_);
    inv.den_ = checked_neg(inv.den_);
  }
  return *this *= inv;
}

Rational Rational::parse(const std::string& text) {
  POSTAL_REQUIRE(!text.empty(), "Rational::parse: empty string");
  const auto slash = text.find('/');
  const auto dot = text.find('.');
  try {
    if (slash != std::string::npos) {
      const std::int64_t num = std::stoll(text.substr(0, slash));
      const std::int64_t den = std::stoll(text.substr(slash + 1));
      return Rational(num, den);
    }
    if (dot != std::string::npos) {
      const std::string whole = text.substr(0, dot);
      const std::string frac = text.substr(dot + 1);
      POSTAL_REQUIRE(!frac.empty(), "Rational::parse: trailing decimal point");
      POSTAL_REQUIRE(frac.size() <= 18, "Rational::parse: too many decimal digits");
      std::int64_t den = 1;
      for (std::size_t i = 0; i < frac.size(); ++i) den = checked_mul(den, 10);
      const std::int64_t w = whole.empty() || whole == "-" ? 0 : std::stoll(whole);
      const std::int64_t f = std::stoll(frac);
      POSTAL_REQUIRE(f >= 0, "Rational::parse: malformed fraction digits");
      const bool negative = !whole.empty() && whole[0] == '-';
      const std::int64_t mag = checked_add(checked_mul(std::llabs(w), den), f);
      return Rational(negative ? checked_neg(mag) : mag, den);
    }
    return Rational(static_cast<std::int64_t>(std::stoll(text)));
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("Rational::parse: cannot parse '" + text + "'");
  } catch (const std::out_of_range&) {
    throw OverflowError("Rational::parse: value out of 64-bit range: '" + text + "'");
  }
}

std::string Rational::str() const {
  if (is_integer()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.str(); }

}  // namespace postal
