// Error handling primitives shared by all postal libraries.
//
// The library distinguishes three failure classes:
//  * InvalidArgument  -- caller passed parameters outside a documented domain
//                        (e.g. lambda < 1, n == 0, d outside [1, n-1]).
//  * OverflowError    -- exact rational arithmetic would exceed 64-bit range.
//  * LogicError       -- an internal invariant failed; indicates a bug in the
//                        library itself, never a caller mistake.
//
// POSTAL_CHECK / POSTAL_REQUIRE are used instead of <cassert> so contract
// violations are observable (and testable) in every build type.
#pragma once

#include <stdexcept>
#include <string>

namespace postal {

/// Thrown when a caller-supplied argument is outside its documented domain.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when exact arithmetic would overflow its 64-bit representation.
class OverflowError : public std::overflow_error {
 public:
  using std::overflow_error::overflow_error;
};

/// Thrown when an internal invariant of the library fails (a library bug).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* expr, const std::string& msg) {
  throw InvalidArgument(msg.empty() ? std::string("requirement failed: ") + expr
                                    : msg + " (requirement: " + expr + ")");
}
[[noreturn]] inline void throw_logic(const char* expr, const char* file, int line) {
  throw LogicError(std::string("internal invariant failed: ") + expr + " at " +
                   file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace postal

/// Validate a caller-facing precondition; throws postal::InvalidArgument.
#define POSTAL_REQUIRE(expr, msg)                          \
  do {                                                     \
    if (!(expr)) ::postal::detail::throw_invalid(#expr, (msg)); \
  } while (0)

/// Validate an internal invariant; throws postal::LogicError.
#define POSTAL_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) ::postal::detail::throw_logic(#expr, __FILE__, __LINE__); \
  } while (0)
