#include "support/interval_set.hpp"

namespace postal {

std::optional<IntervalSet::Interval> IntervalSet::find_overlap(const Rational& lo,
                                                               const Rational& hi) const {
  POSTAL_REQUIRE(lo < hi, "IntervalSet: interval must be nonempty (lo < hi)");
  // Candidate 1: the first interval starting at or after lo; overlaps iff it
  // starts before hi.
  auto it = by_lo_.lower_bound(lo);
  if (it != by_lo_.end() && it->first < hi) {
    return Interval{it->first, it->second};
  }
  // Candidate 2: the last interval starting before lo; overlaps iff it ends
  // after lo.
  if (it != by_lo_.begin()) {
    --it;
    if (lo < it->second) {
      return Interval{it->first, it->second};
    }
  }
  return std::nullopt;
}

std::optional<IntervalSet::Interval> IntervalSet::insert(const Rational& lo,
                                                         const Rational& hi) {
  if (auto hit = find_overlap(lo, hi)) return hit;
  by_lo_.emplace(lo, hi);
  return std::nullopt;
}

bool IntervalSet::overlaps(const Rational& lo, const Rational& hi) const {
  return find_overlap(lo, hi).has_value();
}

Rational IntervalSet::total_length() const {
  Rational sum;
  for (const auto& [lo, hi] : by_lo_) sum += hi - lo;
  return sum;
}

Rational IntervalSet::earliest_fit(const Rational& from, const Rational& len) const {
  POSTAL_REQUIRE(Rational(0) < len, "IntervalSet::earliest_fit: length must be positive");
  Rational start = from;
  // Walk intervals in order; each conflict pushes the start to the end of
  // the conflicting interval. Intervals are disjoint and sorted, so one
  // forward pass suffices.
  for (const auto& [lo, hi] : by_lo_) {
    if (hi <= start) continue;       // entirely before the candidate slot
    if (start + len <= lo) break;    // candidate slot fits before this one
    start = hi;                      // push past the conflicting interval
  }
  return start;
}

}  // namespace postal
