#include "support/interval_set.hpp"

namespace postal {

template <typename T>
auto BasicIntervalSet<T>::find_overlap(const T& lo, const T& hi) const
    -> std::optional<Interval> {
  POSTAL_REQUIRE(lo < hi, "IntervalSet: interval must be nonempty (lo < hi)");
  // Candidate 1: the first interval starting at or after lo; overlaps iff it
  // starts before hi.
  auto it = by_lo_.lower_bound(lo);
  if (it != by_lo_.end() && it->first < hi) {
    return Interval{it->first, it->second};
  }
  // Candidate 2: the last interval starting before lo; overlaps iff it ends
  // after lo.
  if (it != by_lo_.begin()) {
    --it;
    if (lo < it->second) {
      return Interval{it->first, it->second};
    }
  }
  return std::nullopt;
}

template <typename T>
auto BasicIntervalSet<T>::insert(const T& lo, const T& hi) -> std::optional<Interval> {
  if (auto hit = find_overlap(lo, hi)) return hit;
  by_lo_.emplace(lo, hi);
  return std::nullopt;
}

template <typename T>
bool BasicIntervalSet<T>::overlaps(const T& lo, const T& hi) const {
  return find_overlap(lo, hi).has_value();
}

template <typename T>
T BasicIntervalSet<T>::total_length() const {
  T sum{};
  for (const auto& [lo, hi] : by_lo_) sum += hi - lo;
  return sum;
}

template <typename T>
T BasicIntervalSet<T>::earliest_fit(const T& from, const T& len) const {
  POSTAL_REQUIRE(T{} < len, "IntervalSet::earliest_fit: length must be positive");
  T start = from;
  // Walk intervals in order; each conflict pushes the start to the end of
  // the conflicting interval. Intervals are disjoint and sorted, so one
  // forward pass suffices.
  for (const auto& [lo, hi] : by_lo_) {
    if (hi <= start) continue;       // entirely before the candidate slot
    if (start + len <= lo) break;    // candidate slot fits before this one
    start = hi;                      // push past the conflicting interval
  }
  return start;
}

template class BasicIntervalSet<Rational>;
template class BasicIntervalSet<std::int64_t>;

}  // namespace postal
