// Exact rational arithmetic over checked 64-bit integers.
//
// All model-level quantities in this library -- the latency parameter
// lambda, event times, makespans, and the closed-form lemma predictions --
// are postal::Rational. With lambda = p/q every event time produced by the
// paper's algorithms is a multiple of 1/q, so rational arithmetic lets the
// test suite assert *exact equality* between simulated makespans and the
// paper's formulas (Lemmas 10, 12, 14, 16; Theorem 6), which a floating
// point representation could not.
//
// Representation invariants:
//   * den > 0
//   * gcd(|num|, den) == 1  (always fully reduced)
// Every operation normalizes and throws postal::OverflowError rather than
// silently wrapping.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <numeric>
#include <string>

#include "support/error.hpp"

namespace postal {

/// An exact rational number with checked 64-bit numerator and denominator.
class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Integer value `v` (implicit: integers are rationals throughout the API).
  constexpr Rational(std::int64_t v) noexcept : num_(v), den_(1) {}  // NOLINT
  constexpr Rational(int v) noexcept : num_(v), den_(1) {}           // NOLINT

  /// The reduced fraction num/den. Throws InvalidArgument if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  /// Numerator of the reduced form (sign lives here).
  [[nodiscard]] constexpr std::int64_t num() const noexcept { return num_; }
  /// Denominator of the reduced form; always positive.
  [[nodiscard]] constexpr std::int64_t den() const noexcept { return den_; }

  /// True iff the value is an integer (den == 1).
  [[nodiscard]] constexpr bool is_integer() const noexcept { return den_ == 1; }

  /// Largest integer <= value.
  [[nodiscard]] std::int64_t floor() const;
  /// Smallest integer >= value.
  [[nodiscard]] std::int64_t ceil() const;
  /// Truncation toward zero.
  [[nodiscard]] std::int64_t trunc() const;

  /// Lossy conversion for reporting/plotting only; never used in proofs.
  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Parse "a", "a/b", or "a.b" decimal (e.g. "2.5"); throws InvalidArgument.
  [[nodiscard]] static Rational parse(const std::string& text);

  /// Render as "a" when integral, otherwise "a/b".
  [[nodiscard]] std::string str() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws InvalidArgument on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend Rational operator-(const Rational& r) {
    Rational out;
    out.num_ = checked_neg(r.num_);
    out.den_ = r.den_;
    return out;
  }

  friend constexpr bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }

  /// Exact three-way comparison. Inline with two fast paths because this is
  /// the hottest operation in the simulators (event-queue ordering,
  /// interval bookkeeping): equal denominators -- which covers the
  /// all-integer case (den == 1) and any two times on the same 1/q grid --
  /// compare numerators directly, and otherwise the 64-bit cross products
  /// are tried first (overflow-checked, so an integer operand's num * 1
  /// always qualifies) before falling back to the always-exact 128-bit
  /// products. Near-overflow comparisons stay exact on every path
  /// (tests/support/rational_test.cpp covers the boundary).
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) noexcept {
    if (a.den_ == b.den_) return a.num_ <=> b.num_;
    std::int64_t lhs = 0;
    std::int64_t rhs = 0;
    if (!__builtin_mul_overflow(a.num_, b.den_, &lhs) &&
        !__builtin_mul_overflow(b.num_, a.den_, &rhs)) {
      return lhs <=> rhs;
    }
    __extension__ using int128 = __int128;
    const int128 wide_lhs = static_cast<int128>(a.num_) * b.den_;
    const int128 wide_rhs = static_cast<int128>(b.num_) * a.den_;
    if (wide_lhs < wide_rhs) return std::strong_ordering::less;
    if (wide_lhs > wide_rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

 private:
  static std::int64_t checked_neg(std::int64_t v);
  void normalize(std::int64_t num, std::int64_t den);

  std::int64_t num_;
  std::int64_t den_;
};

/// min/max convenience (std::min works too; these read better in formulas).
[[nodiscard]] inline const Rational& rmin(const Rational& a, const Rational& b) {
  return b < a ? b : a;
}
[[nodiscard]] inline const Rational& rmax(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace postal

template <>
struct std::hash<postal::Rational> {
  std::size_t operator()(const postal::Rational& r) const noexcept {
    std::size_t h1 = std::hash<std::int64_t>{}(r.num());
    std::size_t h2 = std::hash<std::int64_t>{}(r.den());
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
