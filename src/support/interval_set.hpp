// Disjoint half-open interval tracking over rational (or tick) time.
//
// The postal-model validator uses one interval set per processor port: a
// send occupies the sender's output port for [t, t+1) and the receiver's
// input port for [t+lambda-1, t+lambda). The model's "simultaneous I/O"
// rule says intervals on the *same* port must be disjoint; inserting an
// overlapping interval is the violation the validator reports.
//
// Intervals are half-open [lo, hi): a send finishing at time x and another
// starting at exactly x do not conflict, matching the paper's timing (e.g.
// a processor starts forwarding a message at the same instant its receive
// completes).
//
// The container is generic over the time type: IntervalSet (Rational) is
// the historical reference, TickIntervalSet (int64 ticks at resolution
// 1/q, support/ticks.hpp) is the validator's fast path -- same algorithm,
// same overlap answers, integer comparisons (docs/PERFORMANCE.md). Member
// definitions live in interval_set.cpp via explicit instantiation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "support/rational.hpp"

namespace postal {

/// A set of pairwise-disjoint half-open intervals [lo, hi) over time type T.
template <typename T>
class BasicIntervalSet {
 public:
  /// One half-open busy interval.
  struct Interval {
    T lo;
    T hi;
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  /// Try to insert [lo, hi). Returns std::nullopt on success, or the first
  /// existing interval that overlaps on failure (the set is unchanged).
  /// Requires lo < hi.
  std::optional<Interval> insert(const T& lo, const T& hi);

  /// True iff [lo, hi) overlaps some stored interval. Requires lo < hi.
  [[nodiscard]] bool overlaps(const T& lo, const T& hi) const;

  /// Number of stored intervals.
  [[nodiscard]] std::size_t size() const noexcept { return by_lo_.size(); }

  [[nodiscard]] bool empty() const noexcept { return by_lo_.empty(); }

  /// Total measure (sum of interval lengths); useful for port-utilization
  /// statistics in the benches.
  [[nodiscard]] T total_length() const;

  /// Earliest time >= from at which an interval of length len fits without
  /// overlap. Runs in O(#intervals) worst case.
  [[nodiscard]] T earliest_fit(const T& from, const T& len) const;

 private:
  [[nodiscard]] std::optional<Interval> find_overlap(const T& lo, const T& hi) const;

  std::map<T, T> by_lo_;  // lo -> hi
};

extern template class BasicIntervalSet<Rational>;
extern template class BasicIntervalSet<std::int64_t>;

/// The historical Rational-time interval set (public API).
using IntervalSet = BasicIntervalSet<Rational>;
/// Integer-tick twin for the validator's fast path (internal).
using TickIntervalSet = BasicIntervalSet<std::int64_t>;

}  // namespace postal
