// Disjoint half-open interval tracking over rational time.
//
// The postal-model validator uses one IntervalSet per processor port: a send
// occupies the sender's output port for [t, t+1) and the receiver's input
// port for [t+lambda-1, t+lambda). The model's "simultaneous I/O" rule says
// intervals on the *same* port must be disjoint; inserting an overlapping
// interval is the violation the validator reports.
//
// Intervals are half-open [lo, hi): a send finishing at time x and another
// starting at exactly x do not conflict, matching the paper's timing (e.g.
// a processor starts forwarding a message at the same instant its receive
// completes).
#pragma once

#include <map>
#include <optional>

#include "support/rational.hpp"

namespace postal {

/// A set of pairwise-disjoint half-open intervals [lo, hi) over Rational.
class IntervalSet {
 public:
  /// One half-open busy interval.
  struct Interval {
    Rational lo;
    Rational hi;
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  /// Try to insert [lo, hi). Returns std::nullopt on success, or the first
  /// existing interval that overlaps on failure (the set is unchanged).
  /// Requires lo < hi.
  std::optional<Interval> insert(const Rational& lo, const Rational& hi);

  /// True iff [lo, hi) overlaps some stored interval. Requires lo < hi.
  [[nodiscard]] bool overlaps(const Rational& lo, const Rational& hi) const;

  /// Number of stored intervals.
  [[nodiscard]] std::size_t size() const noexcept { return by_lo_.size(); }

  [[nodiscard]] bool empty() const noexcept { return by_lo_.empty(); }

  /// Total measure (sum of interval lengths); useful for port-utilization
  /// statistics in the benches.
  [[nodiscard]] Rational total_length() const;

  /// Earliest time >= from at which an interval of length len fits without
  /// overlap. Runs in O(#intervals) worst case.
  [[nodiscard]] Rational earliest_fit(const Rational& from, const Rational& len) const;

 private:
  [[nodiscard]] std::optional<Interval> find_overlap(const Rational& lo,
                                                     const Rational& hi) const;

  std::map<Rational, Rational> by_lo_;  // lo -> hi
};

}  // namespace postal
