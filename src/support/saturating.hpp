// Saturating unsigned 64-bit arithmetic.
//
// The generalized Fibonacci function F_lambda(t) grows exponentially in t.
// Its only consumer that needs exact values is the index function
// f_lambda(n) = min{ t : F_lambda(t) >= n } with n well below 2^63, so all
// arithmetic on F-values saturates at kSaturated instead of overflowing:
// once a value reaches the cap, every comparison against a realistic n
// still gives the right answer.
#pragma once

#include <cstdint>
#include <limits>

namespace postal {

/// The saturation cap for counting arithmetic. Any population count that
/// reaches this value is reported as "at least kSaturated".
inline constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

/// a + b, clamped to kSaturated.
[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return (s < a) ? kSaturated : s;
}

/// a * b, clamped to kSaturated.
[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

/// base^exp, clamped to kSaturated.
[[nodiscard]] constexpr std::uint64_t sat_pow(std::uint64_t base,
                                              std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  std::uint64_t b = base;
  std::uint64_t e = exp;
  while (e > 0) {
    if (e & 1U) result = sat_mul(result, b);
    e >>= 1U;
    if (e > 0) b = sat_mul(b, b);
  }
  return result;
}

}  // namespace postal
