// Minimal fixed-width ASCII table writer.
//
// Every bench binary prints its reproduction of a paper table/figure as a
// plain-text table; this helper keeps column widths and separators uniform
// across all of them.
//
// The tables are the human-readable half of the bench output contract. The
// machine-readable half is obs/bench_record.hpp: when POSTAL_BENCH_JSON is
// set, each bench also appends a one-line JSON record to that file (schema
// in docs/OBSERVABILITY.md). Keep the two in sync when adding columns that
// carry headline results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace postal {

/// Accumulates rows of strings and prints them as an aligned ASCII table.
class TextTable {
 public:
  /// Construct with column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render the table (headers, separator, rows) to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 3 digits).
[[nodiscard]] std::string fmt(double v, int precision = 3);

}  // namespace postal
