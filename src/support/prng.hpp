// Deterministic pseudo-random number generation for workloads and tests.
//
// Benches and property tests must be reproducible run-to-run and
// platform-to-platform, so the library carries its own small PRNG
// (xoshiro256** seeded via SplitMix64) instead of relying on unspecified
// standard-library distributions.
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace postal {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, deterministic 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [lo, hi] via rejection sampling.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    if (lo > hi) {
      const std::uint64_t tmp = lo;
      lo = hi;
      hi = tmp;
    }
    const std::uint64_t span = hi - lo;
    if (span == ~0ULL) return (*this)();
    const std::uint64_t range = span + 1;
    const std::uint64_t limit = (~0ULL) - ((~0ULL) % range);
    std::uint64_t x = (*this)();
    while (x >= limit) x = (*this)();
    return lo + (x % range);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace postal
