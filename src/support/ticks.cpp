#include "support/ticks.hpp"

#include <numeric>

namespace postal {

std::optional<std::int64_t> TickDomain::fold_denominator(
    std::int64_t q, const Rational& r) noexcept {
  const std::int64_t d = r.den();  // > 0 by Rational's invariant
  const std::int64_t g = std::gcd(q, d);
  std::int64_t out = 0;
  if (__builtin_mul_overflow(q, d / g, &out)) return std::nullopt;
  return out;
}

}  // namespace postal
