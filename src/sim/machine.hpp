// The event-driven MPS(n, lambda) runtime.
//
// The paper stresses that all its algorithms are "practical event-driven
// algorithms": each processor acts only on local events (its own start, or
// a message arrival) and local knowledge carried in the message. This
// module provides that execution style. A Protocol supplies per-processor
// handlers; the Machine runs them, models the output port (one send per
// unit of time, FIFO queueing when handlers request sends faster than the
// port drains), delivers messages after lambda, and records both a Trace
// and the equivalent Schedule.
//
// The Machine enforces nothing else by itself -- the resulting schedule is
// meant to be passed through validate_schedule, which certifies all model
// constraints independently. Tests cross-check that the event-driven BCAST
// and DTREE protocols produce identical schedules to the analytic
// generators in src/sched.
#pragma once

#include <cstdint>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace postal {

/// A message on the wire: the payload id plus two protocol-defined control
/// words (Algorithm BCAST uses them to carry the recipient's range).
struct Packet {
  MsgId msg = 0;
  std::uint64_t ctl_a = 0;
  std::uint64_t ctl_b = 0;
};

class Machine;

/// Handle protocols use to interact with the machine from inside handlers.
class MachineContext {
 public:
  /// Enqueue a send from `self` to `dst`. The transmission starts as soon
  /// as the output port is free (immediately if idle) and arrives lambda
  /// later. Multiple queued sends leave one per time unit, FIFO.
  void send(ProcId dst, const Packet& packet);

  /// Current simulation time of the handler invocation.
  [[nodiscard]] const Rational& now() const noexcept { return now_; }
  /// The processor this handler runs on.
  [[nodiscard]] ProcId self() const noexcept { return self_; }
  /// System parameters.
  [[nodiscard]] const PostalParams& params() const noexcept;

 private:
  friend class Machine;
  MachineContext(Machine& machine, ProcId self, Rational now)
      : machine_(machine), self_(self), now_(std::move(now)) {}

  Machine& machine_;
  ProcId self_;
  Rational now_;
};

/// Per-processor behavior. Handlers must be deterministic.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Invoked once per processor at t = 0 (the origin typically kicks off
  /// the algorithm here).
  virtual void on_start(MachineContext& ctx) { static_cast<void>(ctx); }

  /// Invoked when a packet has been fully received (at send start + lambda).
  virtual void on_receive(MachineContext& ctx, const Packet& packet) = 0;
};

/// Occupancy and event counts of one machine run, collected for free while
/// the run executes. These are the quantities the paper reasons about
/// informally ("the root keeps its output port busy...") made measurable;
/// obs::record_machine_stats folds them into a metrics registry and
/// docs/OBSERVABILITY.md documents the derived metric names.
struct MachineStats {
  std::uint64_t events_processed = 0;  ///< deliveries handled (on_receive calls)
  std::uint64_t sends_enqueued = 0;    ///< sends requested by handlers
  std::uint64_t sends_deferred = 0;    ///< sends that found the port busy
  /// Deepest output-port backlog seen at any send request: the number of
  /// transmissions (including the new one) not yet finished on that
  /// processor's port at request time. 1 = the port was idle.
  std::uint64_t max_fifo_depth = 0;
  /// Per-processor output-port busy time (exact; one unit per send), sized n.
  std::vector<Rational> port_busy;
};

/// Result of a machine run.
struct MachineResult {
  Schedule schedule;   ///< all sends performed, sorted by time
  Trace trace{1, 0};   ///< all deliveries
  MachineStats stats;  ///< occupancy/event counters of this run
};

/// The event-driven runtime itself.
class Machine {
 public:
  /// `messages` sizes the trace; handlers may send ids in [0, messages).
  Machine(PostalParams params, std::uint32_t messages);

  /// Run `protocol` to quiescence (no in-flight packets left). Throws
  /// InvalidArgument if a handler misbehaves (bad processor/message ids)
  /// and LogicError if the run exceeds `max_events` deliveries.
  [[nodiscard]] MachineResult run(Protocol& protocol,
                                  std::uint64_t max_events = 1ULL << 22);

 private:
  friend class MachineContext;

  struct InFlight {
    ProcId src;
    ProcId dst;
    Packet packet;
    Rational send_start;
  };

  void enqueue_send(ProcId src, ProcId dst, const Packet& packet, const Rational& now);

  PostalParams params_;
  std::uint32_t messages_;

  // Per-run state.
  std::vector<Rational> port_free_;
  Schedule schedule_;
  EventQueue<InFlight> queue_;
  MachineStats stats_;
};

}  // namespace postal
