// The event-driven MPS(n, lambda) runtime.
//
// The paper stresses that all its algorithms are "practical event-driven
// algorithms": each processor acts only on local events (its own start, a
// message arrival, or a local timer) and local knowledge carried in the
// message. This module provides that execution style. A Protocol supplies
// per-processor handlers; the Machine runs them, models the output port
// (one send per unit of time, FIFO queueing when handlers request sends
// faster than the port drains), models the input port the same way
// (simultaneous arrivals serialize FIFO; the paper's algorithms never
// collide, so their traces are unchanged), delivers messages after lambda,
// and records both a Trace and the equivalent Schedule.
//
// Fault injection (docs/FAULTS.md): attach_faults() arms a FaultPlan for
// subsequent runs. Crashed processors stop sending and receiving at their
// exact crash time, lossy links eat transmissions via seeded Bernoulli
// draws, and latency-spike windows stretch lambda. Every fault check is
// guarded by a null injector test, so runs without a plan execute the
// historical code path byte-for-byte (regression-tested).
//
// Tick-domain fast path (docs/PERFORMANCE.md): with lambda = p/q every
// event time the paper's protocols produce is a multiple of 1/q, so by
// default each run probes whether it can execute on int64 ticks -- plain
// integer arithmetic, a bucketed monotone queue (sim/tick_queue.hpp), and
// a recycled event arena -- instead of Rational-keyed heap events. The
// probe admits a run only when lambda, every fault-plan time, and a static
// overflow bound all check out; protocols may still arm timers at times
// off the 1/q grid mid-run, in which case the pending event set is
// transplanted exactly into the Rational engine (shared sequence numbers
// preserve the global pop order) and the run finishes there. Either way
// the observable result -- schedule, trace, stats, fault timeline -- is
// event-for-event identical to the Rational reference (differential- and
// chaos-tested); MachineStats::tick_domain reports which engine finished
// the run, and set_time_path(TimePath::kRational) forces the reference.
//
// The Machine enforces nothing else by itself -- the resulting schedule is
// meant to be passed through validate_schedule, which certifies all model
// constraints independently. Tests cross-check that the event-driven BCAST
// and DTREE protocols produce identical schedules to the analytic
// generators in src/sched.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "faults/injector.hpp"
#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/event_queue.hpp"
#include "sim/tick_queue.hpp"
#include "sim/tick_setup.hpp"
#include "sim/trace.hpp"
#include "support/ticks.hpp"

namespace postal {

/// A message on the wire: the payload id plus two protocol-defined control
/// words (Algorithm BCAST uses them to carry the recipient's range).
struct Packet {
  MsgId msg = 0;
  std::uint64_t ctl_a = 0;
  std::uint64_t ctl_b = 0;
};

class Machine;
class MachineContext;

/// The dispatch seam between MachineContext and the engine that invoked
/// the running handler (docs/ARCHITECTURE.md). The sequential Machine is
/// one implementation; ParMachine's per-shard engines (sim/par_machine)
/// are another -- protocols see the same MachineContext either way, which
/// is what lets one Protocol implementation run unchanged on both engines.
class ContextSink {
 public:
  virtual ~ContextSink() = default;

 protected:
  ContextSink() = default;
  ContextSink(const ContextSink&) = default;
  ContextSink& operator=(const ContextSink&) = default;

 private:
  friend class MachineContext;
  virtual void sink_send(ProcId self, ProcId dst, const Packet& packet,
                         const Rational& now, Tick now_ticks) = 0;
  virtual void sink_timer(ProcId self, const Rational& now, Tick now_ticks,
                          const Rational& delay, std::uint64_t token) = 0;
  [[nodiscard]] virtual const PostalParams& sink_params() const noexcept = 0;
};

/// Handle protocols use to interact with the machine from inside handlers.
class MachineContext {
 public:
  /// Enqueue a send from `self` to `dst`. The transmission starts as soon
  /// as the output port is free (immediately if idle) and arrives lambda
  /// later. Multiple queued sends leave one per time unit, FIFO.
  void send(ProcId dst, const Packet& packet);

  /// Arm a local timer on `self` that fires `delay` (>= 0) from now; the
  /// protocol's on_timer receives `token` back. Timers are local bookkeeping
  /// -- they occupy no port and appear in neither the Schedule nor the
  /// Trace. A timer armed by a processor that later crashes never fires.
  void set_timer(const Rational& delay, std::uint64_t token);

  /// Current simulation time of the handler invocation.
  [[nodiscard]] const Rational& now() const noexcept { return now_; }
  /// The processor this handler runs on.
  [[nodiscard]] ProcId self() const noexcept { return self_; }
  /// System parameters.
  [[nodiscard]] const PostalParams& params() const noexcept;

 private:
  friend class Machine;
  friend class ParShard;  // sim/par_machine.cpp: ParMachine's shard engine
  MachineContext(ContextSink& sink, ProcId self, Rational now, Tick now_ticks = 0)
      : sink_(sink), self_(self), now_(std::move(now)), now_ticks_(now_ticks) {}

  ContextSink& sink_;
  ProcId self_;
  Rational now_;
  Tick now_ticks_;  ///< now_ in ticks while a tick engine runs; else unused
};

/// Per-processor behavior. Handlers must be deterministic.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Invoked once per processor at t = 0 (the origin typically kicks off
  /// the algorithm here).
  virtual void on_start(MachineContext& ctx) { static_cast<void>(ctx); }

  /// Invoked when a packet has been fully received (at send start + lambda,
  /// later if the input port had to serialize simultaneous arrivals).
  virtual void on_receive(MachineContext& ctx, const Packet& packet) = 0;

  /// Invoked when a timer armed via MachineContext::set_timer fires.
  virtual void on_timer(MachineContext& ctx, std::uint64_t token) {
    static_cast<void>(ctx);
    static_cast<void>(token);
  }
};

/// Occupancy and event counts of one machine run, collected for free while
/// the run executes. These are the quantities the paper reasons about
/// informally ("the root keeps its output port busy...") made measurable;
/// obs::record_machine_stats folds them into a metrics registry and
/// docs/OBSERVABILITY.md documents the derived metric names.
struct MachineStats {
  std::uint64_t events_processed = 0;  ///< deliveries handled (on_receive calls)
  std::uint64_t sends_enqueued = 0;    ///< sends requested by handlers
  std::uint64_t sends_deferred = 0;    ///< sends that found the port busy
  std::uint64_t timers_set = 0;        ///< timers armed by handlers
  std::uint64_t timers_fired = 0;      ///< timers that reached on_timer
  /// Deliveries whose receive window had to wait for the input port (0 for
  /// every paper algorithm: they schedule receives collision-free).
  std::uint64_t receives_queued = 0;
  /// Deepest output-port backlog seen at any send request: the number of
  /// transmissions (including the new one) not yet finished on that
  /// processor's port at request time. 1 = the port was idle.
  std::uint64_t max_fifo_depth = 0;
  /// Per-processor output-port busy time (exact; one unit per send), sized n.
  std::vector<Rational> port_busy;
  /// True iff the run executed on the tick-domain fast path end to end
  /// (docs/PERFORMANCE.md); false for the Rational reference path and for
  /// runs that transplanted mid-way. Informational: results are identical
  /// either way, so equality checks should ignore it.
  bool tick_domain = false;
};

/// Result of a machine run.
struct MachineResult {
  Schedule schedule;   ///< all sends performed, sorted by time
  Trace trace{1, 0};   ///< all deliveries
  MachineStats stats;  ///< occupancy/event counters of this run
  FaultStats faults;   ///< faults applied (all zero without a plan)
};

/// The event-driven runtime itself.
class Machine : private ContextSink {
 public:
  /// `messages` sizes the trace; handlers may send ids in [0, messages).
  Machine(PostalParams params, std::uint32_t messages);

  /// Arm `plan` for subsequent run() calls (validates it against n; copies
  /// it). Attaching an empty plan is equivalent to attaching none.
  void attach_faults(const FaultPlan& plan);

  /// Remove any attached plan; subsequent runs are fault-free.
  void detach_faults() noexcept { injector_.reset(); }

  /// True iff a (non-empty) plan is attached.
  [[nodiscard]] bool has_faults() const noexcept { return injector_ != nullptr; }

  /// Time representation of subsequent runs (docs/PERFORMANCE.md): kAuto
  /// (default) probes each run for the tick fast path, kRational forces
  /// the reference engine. Results are identical either way.
  void set_time_path(TimePath path) noexcept { time_path_ = path; }
  [[nodiscard]] TimePath time_path() const noexcept { return time_path_; }

  /// Trace retention of subsequent runs (sim/trace.hpp): kFull (default)
  /// materializes every Delivery; kCounters keeps first arrivals, the
  /// delivery count, and the makespan only. Schedule, stats, and fault
  /// timeline are identical either way.
  void set_trace_mode(TraceMode mode) noexcept { trace_mode_ = mode; }
  [[nodiscard]] TraceMode trace_mode() const noexcept { return trace_mode_; }

  /// Run `protocol` to quiescence (no in-flight packets or timers left).
  /// Throws InvalidArgument if a handler misbehaves (bad processor/message
  /// ids) and LogicError if the run exceeds `max_events` queue events.
  [[nodiscard]] MachineResult run(Protocol& protocol,
                                  std::uint64_t max_events = 1ULL << 22);

 private:
  // ContextSink: route a handler's request to whichever engine is running.
  void sink_send(ProcId self, ProcId dst, const Packet& packet,
                 const Rational& now, Tick now_ticks) override;
  void sink_timer(ProcId self, const Rational& now, Tick now_ticks,
                  const Rational& delay, std::uint64_t token) override;
  [[nodiscard]] const PostalParams& sink_params() const noexcept override;

  struct Pending {
    enum class Kind : std::uint8_t {
      kFlight,       ///< in-flight packet at its nominal arrival time
      kFlightFinal,  ///< packet re-queued at its serialized arrival time
      kTimer,        ///< local timer (dst = owner, token = payload)
    };
    Kind kind = Kind::kFlight;
    ProcId src = 0;
    ProcId dst = 0;
    Packet packet;
    Rational send_start;
    std::uint64_t token = 0;
  };

  /// Tick-engine twin of Pending (send_start in ticks).
  struct PendingTicks {
    Pending::Kind kind = Pending::Kind::kFlight;
    ProcId src = 0;
    ProcId dst = 0;
    Packet packet;
    Tick send_start = 0;
    std::uint64_t token = 0;
  };

  /// A timer whose fire time is off the 1/q grid (or out of tick range),
  /// parked Rational-keyed with its global seq until the transplant.
  struct ParkedEvent {
    Rational time;
    std::uint64_t seq = 0;
    Pending event;
  };

  // Rational engine.
  void enqueue_send(ProcId src, ProcId dst, const Packet& packet, const Rational& now);
  void enqueue_timer(ProcId owner, const Rational& at, std::uint64_t token);
  void deliver(Protocol& protocol, const Rational& time, const Pending& flight,
               std::uint64_t& delivered);

  // Tick engine (docs/PERFORMANCE.md).
  bool try_tick_setup(std::uint64_t max_events);
  void enqueue_send_ticks(ProcId src, ProcId dst, const Packet& packet, Tick now);
  void enqueue_timer_ticks(ProcId owner, Tick now_ticks, const Rational& now,
                           const Rational& delay, std::uint64_t token);
  void deliver_ticks(Protocol& protocol, Tick time, const PendingTicks& flight,
                     std::uint64_t& delivered);
  void run_tick_loop(Protocol& protocol, std::uint64_t max_events,
                     std::uint64_t& steps, std::uint64_t& delivered);
  void transplant_to_rational();
  void fold_tick_port_busy();
  [[nodiscard]] bool crashed_ticks(ProcId p, Tick t) const {
    const auto& c = crash_ticks_[p];
    return c.has_value() && t >= *c;
  }
  [[nodiscard]] Rational tick_rational(Tick t) const {
    return Rational(t, tick_q_);
  }

  PostalParams params_;
  std::uint32_t messages_;
  std::unique_ptr<FaultInjector> injector_;
  TimePath time_path_ = TimePath::kAuto;
  TraceMode trace_mode_ = TraceMode::kFull;

  // Per-run state (Rational engine; also the post-transplant target).
  std::vector<Rational> port_free_;
  std::vector<Rational> recv_free_;
  Schedule schedule_;
  EventQueue<Pending> queue_;
  MachineStats stats_;
  FaultStats fault_stats_;
  Trace* trace_ = nullptr;

  // Per-run state (tick engine; SpikeTicks/TickRunSetup in tick_setup.hpp).
  // tick_mode_ flips off at transplant.
  bool tick_mode_ = false;
  std::int64_t tick_q_ = 1;         ///< resolution denominator of this run
  Tick lambda_ticks_ = 0;           ///< lambda in ticks
  std::uint64_t seq_ = 0;           ///< shared push counter (tick queue + parked)
  TickEventQueue<PendingTicks> tick_queue_;
  std::vector<ParkedEvent> parked_;         ///< off-grid timers awaiting transplant
  std::vector<Tick> port_free_ticks_;
  std::vector<Tick> recv_free_ticks_;
  std::vector<std::uint64_t> port_busy_units_;  ///< sends per port (exact units)
  std::vector<std::optional<Tick>> crash_ticks_;
  std::vector<SpikeTicks> spike_ticks_;
};

}  // namespace postal
