#include "sim/json.hpp"

#include <sstream>

namespace postal {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream hex;
          hex << "\\u" << std::hex << static_cast<int>(c);
          std::string code = hex.str();
          // pad \uXXXX to four hex digits
          code.insert(2, 4 - (code.size() - 2), '0');
          out += code;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string schedule_to_json(const Schedule& schedule, const PostalParams& params) {
  std::ostringstream out;
  out << "{\"lambda\":\"" << params.lambda().str() << "\",\"n\":" << params.n()
      << ",\"events\":[";
  bool first = true;
  for (const SendEvent& e : schedule.events()) {
    if (!first) out << ",";
    first = false;
    out << "{\"src\":" << e.src << ",\"dst\":" << e.dst << ",\"msg\":" << e.msg
        << ",\"t\":\"" << e.t.str() << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string report_to_json(const SimReport& report) {
  std::ostringstream out;
  out << "{\"ok\":" << (report.ok ? "true" : "false") << ",\"makespan\":\""
      << report.makespan.str() << "\",\"order_preserving\":"
      << (report.order_preserving ? "true" : "false") << ",\"violations\":[";
  bool first = true;
  for (const auto& v : report.violations) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(v) << "\"";
  }
  out << "]}";
  return out.str();
}

}  // namespace postal
