#include "sim/validator.hpp"

#include <algorithm>
#include <sstream>

#include "support/interval_set.hpp"

namespace postal {

std::string SimReport::summary() const {
  if (ok) return "ok";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):";
  for (const auto& v : violations) oss << "\n  - " << v;
  return oss.str();
}

SimReport validate_schedule(const Schedule& schedule, const PostalParams& params,
                            const ValidatorOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  const std::uint32_t messages =
      options.messages != 0 ? options.messages : schedule.message_count();

  SimReport report;
  report.trace = Trace(n, messages);
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  POSTAL_REQUIRE(options.origin < n, "validate_schedule: origin out of range");

  // Sort events by send time so causality state (arrival times) is always
  // known before any later send is examined: an arrival enabling a send at
  // t happened at a send that started at t - lambda < t.
  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  std::vector<IntervalSet> send_port(n);
  std::vector<IntervalSet> recv_port(n);
  // holds_at[p * messages + msg]: earliest time p holds msg (origin: 0).
  std::vector<std::optional<Rational>> holds(n * messages);
  if (options.origins.empty()) {
    for (MsgId msg = 0; msg < messages; ++msg) {
      holds[options.origin * messages + msg] = Rational(0);
    }
  } else {
    POSTAL_REQUIRE(options.origins.size() == messages,
                   "validate_schedule: origins must name one processor per message");
    for (MsgId msg = 0; msg < messages; ++msg) {
      POSTAL_REQUIRE(options.origins[msg] < n,
                     "validate_schedule: message origin out of range");
      holds[options.origins[msg] * messages + msg] = Rational(0);
    }
  }

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    if (e.msg >= messages) {
      violate(who.str() + "message id out of range");
      continue;
    }
    // Causality: the sender must hold the message when the send starts.
    const auto& held = holds[e.src * messages + e.msg];
    if (!held.has_value() || e.t < *held) {
      violate(who.str() + "sender does not hold the message yet" +
              (held.has_value() ? " (holds it only from t=" + held->str() + ")" : ""));
    }
    // Send-port exclusivity: [t, t+1).
    if (auto clash = send_port[e.src].insert(e.t, e.t + Rational(1))) {
      std::ostringstream oss;
      oss << who.str() << "send port of p" << e.src << " already busy on ["
          << clash->lo << ", " << clash->hi << ")";
      violate(oss.str());
    }
    // Receive-port exclusivity: [t+lambda-1, t+lambda).
    const Rational arrive = e.t + lambda;
    if (auto clash = recv_port[e.dst].insert(arrive - Rational(1), arrive)) {
      std::ostringstream oss;
      oss << who.str() << "receive port of p" << e.dst << " already busy on ["
          << clash->lo << ", " << clash->hi << ")";
      violate(oss.str());
    }
    auto& dst_holds = holds[e.dst * messages + e.msg];
    if (!dst_holds.has_value() || arrive < *dst_holds) dst_holds = arrive;
    report.trace.record(Delivery{e.src, e.dst, e.msg, e.t, arrive});
  }

  if (options.require_coverage) {
    if (!options.required.empty()) {
      for (const auto& [p, msg] : options.required) {
        POSTAL_REQUIRE(p < n && msg < messages,
                       "validate_schedule: required delivery out of range");
        const ProcId msg_origin =
            options.origins.empty() ? options.origin : options.origins[msg];
        if (p == msg_origin) continue;
        if (!holds[p * messages + msg].has_value()) {
          violate("p" + std::to_string(p) + " never received required M" +
                  std::to_string(msg + 1));
        }
      }
    } else if (!options.origins.empty()) {
      // All-to-all goal with per-message origins.
      for (ProcId p = 0; p < n; ++p) {
        for (MsgId msg = 0; msg < messages; ++msg) {
          if (p == options.origins[msg]) continue;
          if (!holds[p * messages + msg].has_value()) {
            violate("p" + std::to_string(p) + " never received M" +
                    std::to_string(msg + 1));
          }
        }
      }
    } else {
      for (const ProcId p : report.trace.uncovered(options.origin)) {
        violate("p" + std::to_string(p) + " never received all messages");
      }
      if (messages == 0 && n > 1) {
        violate("schedule delivers no messages but n > 1");
      }
    }
  }

  report.makespan = report.trace.makespan();
  report.order_preserving = report.trace.order_preserving();
  report.ok = report.violations.empty();
  return report;
}

}  // namespace postal
