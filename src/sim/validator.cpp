#include "sim/validator.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "support/interval_set.hpp"

namespace postal {

std::string SimReport::summary() const {
  if (ok) return "ok";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):";
  for (const auto& v : violations) oss << "\n  - " << v;
  return oss.str();
}

SimReport validate_schedule(const Schedule& schedule, const PostalParams& params,
                            const ValidatorOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  const std::uint32_t messages =
      options.messages != 0 ? options.messages : schedule.message_count();

  SimReport report;
  report.trace = Trace(n, messages);
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  POSTAL_REQUIRE(options.origin < n, "validate_schedule: origin out of range");

  // Earliest known crash per processor (docs/FAULTS.md): deliveries at or
  // after it are void, sends at or after it are impossible, and the
  // processor is exempt from coverage.
  std::vector<std::optional<Rational>> crash(n);
  for (const CrashFault& c : options.crashes) {
    POSTAL_REQUIRE(c.proc < n, "validate_schedule: crashed processor out of range");
    auto& slot = crash[c.proc];
    if (!slot.has_value() || c.time < *slot) slot = c.time;
  }

  // Sort events by send time so causality state (arrival times) is always
  // known before any later send is examined: an arrival enabling a send at
  // t happened at a send that started at t - lambda < t. Because lambda is
  // a constant, this order is simultaneously nominal-arrival order, which
  // is what the fifo_receive serialization below iterates in.
  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  std::vector<IntervalSet> send_port(n);
  std::vector<IntervalSet> recv_port(n);
  std::vector<Rational> recv_free(options.fifo_receive ? n : 0, Rational(0));
  // holds_at[p * messages + msg]: earliest time p holds msg (origin: 0).
  std::vector<std::optional<Rational>> holds(n * messages);
  if (options.origins.empty()) {
    for (MsgId msg = 0; msg < messages; ++msg) {
      holds[options.origin * messages + msg] = Rational(0);
    }
  } else {
    POSTAL_REQUIRE(options.origins.size() == messages,
                   "validate_schedule: origins must name one processor per message");
    for (MsgId msg = 0; msg < messages; ++msg) {
      POSTAL_REQUIRE(options.origins[msg] < n,
                     "validate_schedule: message origin out of range");
      holds[options.origins[msg] * messages + msg] = Rational(0);
    }
  }

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    if (e.msg >= messages) {
      violate(who.str() + "message id out of range");
      continue;
    }
    // A dead processor cannot transmit: such an event proves the schedule
    // was not produced under the declared crashes.
    if (crash[e.src].has_value() && e.t >= *crash[e.src]) {
      violate(who.str() + "p" + std::to_string(e.src) + " crashed at t=" +
              crash[e.src]->str() + " but sends afterwards");
      continue;
    }
    // Causality: the sender must hold the message when the send starts.
    const auto& held = holds[e.src * messages + e.msg];
    if (!held.has_value() || e.t < *held) {
      violate(who.str() + "sender does not hold the message yet" +
              (held.has_value() ? " (holds it only from t=" + held->str() + ")" : ""));
    }
    // Send-port exclusivity: [t, t+1).
    if (auto clash = send_port[e.src].insert(e.t, e.t + Rational(1))) {
      std::ostringstream oss;
      oss << who.str() << "send port of p" << e.src << " already busy on ["
          << clash->lo << ", " << clash->hi << ")";
      violate(oss.str());
    }
    // Receive port. Strict mode: exclusivity of [t+lambda-1, t+lambda),
    // overlap is a violation. FIFO mode: simultaneous arrivals serialize in
    // nominal-arrival order (the Machine's input-port queueing), so overlap
    // delays the arrival instead. Either way a delivery reaching a crashed
    // receiver at or after its crash time is void: no port use, no hold.
    Rational arrive = e.t + lambda;
    bool voided;
    if (options.fifo_receive) {
      const Rational window = rmax(arrive - Rational(1), recv_free[e.dst]);
      arrive = window + Rational(1);
      recv_free[e.dst] = arrive;
      voided = crash[e.dst].has_value() && arrive >= *crash[e.dst];
    } else {
      voided = crash[e.dst].has_value() && arrive >= *crash[e.dst];
      if (!voided) {
        if (auto clash = recv_port[e.dst].insert(arrive - Rational(1), arrive)) {
          std::ostringstream oss;
          oss << who.str() << "receive port of p" << e.dst << " already busy on ["
              << clash->lo << ", " << clash->hi << ")";
          violate(oss.str());
        }
      }
    }
    if (voided) continue;
    auto& dst_holds = holds[e.dst * messages + e.msg];
    if (!dst_holds.has_value() || arrive < *dst_holds) dst_holds = arrive;
    report.trace.record(Delivery{e.src, e.dst, e.msg, e.t, arrive});
  }

  if (options.require_coverage) {
    const auto is_crashed = [&crash](ProcId p) { return crash[p].has_value(); };
    if (!options.required.empty()) {
      for (const auto& [p, msg] : options.required) {
        POSTAL_REQUIRE(p < n && msg < messages,
                       "validate_schedule: required delivery out of range");
        const ProcId msg_origin =
            options.origins.empty() ? options.origin : options.origins[msg];
        if (p == msg_origin || is_crashed(p)) continue;
        if (!holds[p * messages + msg].has_value()) {
          violate("p" + std::to_string(p) + " never received required M" +
                  std::to_string(msg + 1));
        }
      }
    } else if (!options.origins.empty()) {
      // All-to-all goal with per-message origins.
      for (ProcId p = 0; p < n; ++p) {
        if (is_crashed(p)) continue;
        for (MsgId msg = 0; msg < messages; ++msg) {
          if (p == options.origins[msg]) continue;
          if (!holds[p * messages + msg].has_value()) {
            violate("p" + std::to_string(p) + " never received M" +
                    std::to_string(msg + 1));
          }
        }
      }
    } else {
      for (const ProcId p : report.trace.uncovered(options.origin)) {
        if (is_crashed(p)) continue;
        violate("p" + std::to_string(p) + " never received all messages");
      }
      if (messages == 0 && n > 1) {
        bool all_crashed = true;
        for (ProcId p = 0; p < n; ++p) {
          if (p != options.origin && !is_crashed(p)) all_crashed = false;
        }
        if (!all_crashed) violate("schedule delivers no messages but n > 1");
      }
    }
  }

  report.makespan = report.trace.makespan();
  report.order_preserving = report.trace.order_preserving();
  report.ok = report.violations.empty();
  return report;
}

}  // namespace postal
