#include "sim/validator.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "support/interval_set.hpp"

namespace postal {

std::string SimReport::summary() const {
  if (ok) return "ok";
  std::ostringstream oss;
  oss << violations.size() << " violation(s):";
  for (const auto& v : violations) oss << "\n  - " << v;
  return oss.str();
}

namespace {

// The validation loop is written once, generic over the time
// representation (docs/PERFORMANCE.md). Two policies instantiate it:
//
//   RationalOps -- the historical reference: Rational times, IntervalSet
//                  ports, checked arithmetic everywhere.
//   TickOps     -- int64 ticks at resolution 1/q: plain integer adds and
//                  compares, TickIntervalSet ports. Chosen by a static
//                  probe (below) only when every input time is exactly
//                  representable and a 128-bit bound proves no tick
//                  expression can overflow, so the loop needs no per-op
//                  checks and cannot invoke UB.
//
// Exactness: tick <-> Rational is an order-preserving bijection on the
// admitted inputs, so both instantiations take identical branches, record
// identical deliveries, and -- because conversion round-trips reproduce
// the canonical reduced form -- produce byte-identical violation strings.

struct RationalOps {
  using Time = Rational;
  using Ports = IntervalSet;
  Rational lambda;
  Rational one{1};

  [[nodiscard]] const Time& event_time(const SendEvent& e, std::size_t i) const {
    static_cast<void>(i);
    return e.t;
  }
  [[nodiscard]] const Rational& rat(const Time& t) const { return t; }
};

struct TickOps {
  using Time = Tick;
  using Ports = TickIntervalSet;
  TickDomain dom;
  Tick lambda = 0;
  Tick one = 0;
  const std::vector<Tick>* event_ticks = nullptr;  // pre-converted, by index

  [[nodiscard]] Time event_time(const SendEvent& e, std::size_t i) const {
    static_cast<void>(e);
    return (*event_ticks)[i];
  }
  [[nodiscard]] Rational rat(Time t) const { return dom.to_rational(t); }
};

template <typename Ops>
void validate_events(const Ops& ops, const std::vector<SendEvent>& events,
                     std::uint64_t n, std::uint32_t messages,
                     const ValidatorOptions& options,
                     const std::vector<std::optional<typename Ops::Time>>& crash,
                     SimReport& report) {
  using Time = typename Ops::Time;
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  std::vector<typename Ops::Ports> send_port(n);
  std::vector<typename Ops::Ports> recv_port(n);
  std::vector<Time> recv_free(options.fifo_receive ? n : 0, Time{});
  // holds[p * messages + msg]: earliest time p holds msg (origin: 0).
  std::vector<std::optional<Time>> holds(n * messages);
  if (options.preholds) {
    for (auto& h : holds) h = Time{};
  } else if (options.origins.empty()) {
    for (MsgId msg = 0; msg < messages; ++msg) {
      holds[options.origin * messages + msg] = Time{};
    }
  } else {
    POSTAL_REQUIRE(options.origins.size() == messages,
                   "validate_schedule: origins must name one processor per message");
    for (MsgId msg = 0; msg < messages; ++msg) {
      POSTAL_REQUIRE(options.origins[msg] < n,
                     "validate_schedule: message origin out of range");
      holds[options.origins[msg] * messages + msg] = Time{};
    }
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const SendEvent& e = events[i];
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    if (e.msg >= messages) {
      violate(who.str() + "message id out of range");
      continue;
    }
    const Time t = ops.event_time(e, i);
    // A dead processor cannot transmit: such an event proves the schedule
    // was not produced under the declared crashes.
    if (crash[e.src].has_value() && t >= *crash[e.src]) {
      violate(who.str() + "p" + std::to_string(e.src) + " crashed at t=" +
              ops.rat(*crash[e.src]).str() + " but sends afterwards");
      continue;
    }
    // Causality: the sender must hold the message when the send starts.
    const auto& held = holds[e.src * messages + e.msg];
    if (!held.has_value() || t < *held) {
      violate(who.str() + "sender does not hold the message yet" +
              (held.has_value() ? " (holds it only from t=" + ops.rat(*held).str() + ")"
                                : ""));
    }
    // Send-port exclusivity: [t, t+1).
    if (auto clash = send_port[e.src].insert(t, t + ops.one)) {
      std::ostringstream oss;
      oss << who.str() << "send port of p" << e.src << " already busy on ["
          << ops.rat(clash->lo) << ", " << ops.rat(clash->hi) << ")";
      violate(oss.str());
    }
    // Receive port. Strict mode: exclusivity of [t+lambda-1, t+lambda),
    // overlap is a violation. FIFO mode: simultaneous arrivals serialize in
    // nominal-arrival order (the Machine's input-port queueing), so overlap
    // delays the arrival instead. Either way a delivery reaching a crashed
    // receiver at or after its crash time is void: no port use, no hold.
    Time arrive = t + ops.lambda;
    bool voided;
    if (options.fifo_receive) {
      const Time window = std::max(arrive - ops.one, recv_free[e.dst]);
      arrive = window + ops.one;
      recv_free[e.dst] = arrive;
      voided = crash[e.dst].has_value() && arrive >= *crash[e.dst];
    } else {
      voided = crash[e.dst].has_value() && arrive >= *crash[e.dst];
      if (!voided) {
        if (auto clash = recv_port[e.dst].insert(arrive - ops.one, arrive)) {
          std::ostringstream oss;
          oss << who.str() << "receive port of p" << e.dst << " already busy on ["
              << ops.rat(clash->lo) << ", " << ops.rat(clash->hi) << ")";
          violate(oss.str());
        }
      }
    }
    if (voided) continue;
    auto& dst_holds = holds[e.dst * messages + e.msg];
    if (!dst_holds.has_value() || arrive < *dst_holds) dst_holds = arrive;
    report.trace.record(Delivery{e.src, e.dst, e.msg, e.t, ops.rat(arrive)});
  }

  if (options.require_coverage) {
    const auto is_crashed = [&crash](ProcId p) { return crash[p].has_value(); };
    if (!options.required.empty()) {
      for (const auto& [p, msg] : options.required) {
        POSTAL_REQUIRE(p < n && msg < messages,
                       "validate_schedule: required delivery out of range");
        const ProcId msg_origin =
            options.origins.empty() ? options.origin : options.origins[msg];
        if (p == msg_origin || is_crashed(p)) continue;
        if (!holds[p * messages + msg].has_value()) {
          violate("p" + std::to_string(p) + " never received required M" +
                  std::to_string(msg + 1));
        }
      }
    } else if (!options.origins.empty()) {
      // All-to-all goal with per-message origins.
      for (ProcId p = 0; p < n; ++p) {
        if (is_crashed(p)) continue;
        for (MsgId msg = 0; msg < messages; ++msg) {
          if (p == options.origins[msg]) continue;
          if (!holds[p * messages + msg].has_value()) {
            violate("p" + std::to_string(p) + " never received M" +
                    std::to_string(msg + 1));
          }
        }
      }
    } else {
      for (const ProcId p : report.trace.uncovered(options.origin)) {
        if (is_crashed(p)) continue;
        violate("p" + std::to_string(p) + " never received all messages");
      }
      if (messages == 0 && n > 1) {
        bool all_crashed = true;
        for (ProcId p = 0; p < n; ++p) {
          if (p != options.origin && !is_crashed(p)) all_crashed = false;
        }
        if (!all_crashed) violate("schedule delivers no messages but n > 1");
      }
    }
  }
}

/// Static tick-path probe: fold every time the loop will touch into one
/// resolution q, convert, and bound the largest tick expression the loop
/// can form (arrive = t + lambda, +- 1 per port window, plus one unit per
/// event of FIFO receive drift) in 128-bit arithmetic. Any failure --
/// unrepresentable time, lcm overflow, bound exceeded -- returns nullopt
/// and validation stays on the Rational reference path.
struct TickPlan {
  TickOps ops;
  std::vector<Tick> event_ticks;
  std::vector<std::optional<Tick>> crash;
};

std::optional<TickPlan> probe_ticks(
    const std::vector<SendEvent>& events, const Rational& lambda,
    const std::vector<std::optional<Rational>>& crash_times) {
  std::int64_t q = lambda.den();
  auto fold = [&q](const Rational& r) {
    const std::optional<std::int64_t> folded = TickDomain::fold_denominator(q, r);
    if (!folded.has_value()) return false;
    q = *folded;
    return true;
  };
  for (const SendEvent& e : events) {
    if (!fold(e.t)) return std::nullopt;
  }
  for (const auto& c : crash_times) {
    if (c.has_value() && !fold(*c)) return std::nullopt;
  }

  const TickDomain dom(q);
  const std::optional<Tick> lambda_ticks = dom.to_ticks(lambda);
  if (!lambda_ticks.has_value()) return std::nullopt;

  TickPlan plan{TickOps{dom, *lambda_ticks, q, nullptr}, {}, {}};
  plan.event_ticks.reserve(events.size());
  Tick max_abs = 0;
  for (const SendEvent& e : events) {
    const std::optional<Tick> t = dom.to_ticks(e.t);
    if (!t.has_value()) return std::nullopt;
    plan.event_ticks.push_back(*t);
    max_abs = std::max(max_abs, *t < 0 ? (*t == INT64_MIN ? INT64_MAX : -*t) : *t);
  }
  plan.crash.resize(crash_times.size());
  for (std::size_t p = 0; p < crash_times.size(); ++p) {
    if (!crash_times[p].has_value()) continue;
    const std::optional<Tick> c = dom.to_ticks(*crash_times[p]);
    if (!c.has_value()) return std::nullopt;
    plan.crash[p] = *c;
    max_abs = std::max(max_abs, *c < 0 ? (*c == INT64_MIN ? INT64_MAX : -*c) : *c);
  }

  __extension__ using int128 = __int128;
  const int128 bound = static_cast<int128>(max_abs) + *lambda_ticks +
                       (static_cast<int128>(events.size()) + 2) * q;
  if (bound >= (int128{1} << 62)) return std::nullopt;
  return plan;
}

}  // namespace

SimReport validate_schedule(const Schedule& schedule, const PostalParams& params,
                            const ValidatorOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  const std::uint32_t messages =
      options.messages != 0 ? options.messages : schedule.message_count();

  SimReport report;
  report.trace = Trace(n, messages);

  POSTAL_REQUIRE(options.origin < n, "validate_schedule: origin out of range");

  // Earliest known crash per processor (docs/FAULTS.md): deliveries at or
  // after it are void, sends at or after it are impossible, and the
  // processor is exempt from coverage.
  std::vector<std::optional<Rational>> crash(n);
  for (const CrashFault& c : options.crashes) {
    POSTAL_REQUIRE(c.proc < n, "validate_schedule: crashed processor out of range");
    auto& slot = crash[c.proc];
    if (!slot.has_value() || c.time < *slot) slot = c.time;
  }

  // Sort events by send time so causality state (arrival times) is always
  // known before any later send is examined: an arrival enabling a send at
  // t happened at a send that started at t - lambda < t. Because lambda is
  // a constant, this order is simultaneously nominal-arrival order, which
  // is what the fifo_receive serialization below iterates in. The sort is
  // shared by both time paths, so their event order is identical by
  // construction.
  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  if (options.time_path == TimePath::kAuto) {
    if (std::optional<TickPlan> plan = probe_ticks(events, lambda, crash)) {
      plan->ops.event_ticks = &plan->event_ticks;
      validate_events(plan->ops, events, n, messages, options, plan->crash, report);
      report.tick_domain = true;
      report.makespan = report.trace.makespan();
      report.order_preserving = report.trace.order_preserving();
      report.ok = report.violations.empty();
      return report;
    }
  }

  validate_events(RationalOps{lambda, Rational(1)}, events, n, messages, options,
                  crash, report);
  report.makespan = report.trace.makespan();
  report.order_preserving = report.trace.order_preserving();
  report.ok = report.violations.empty();
  return report;
}

}  // namespace postal
