// Shared tick-run admission: the probe that decides whether a simulation
// can execute on int64 ticks (docs/PERFORMANCE.md, docs/SIMULATION.md).
//
// Both event engines -- the sequential Machine and the sharded ParMachine
// -- take the integer-time fast path only when every quantity the run can
// encounter is exactly representable on a common 1/q grid and a static
// overflow bound holds. Keeping the probe in one place keeps the two
// engines' admission decisions identical by construction: a run ParMachine
// shards is exactly a run Machine would have ticked, which is what the
// shard-count-invariance differential relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/injector.hpp"
#include "model/params.hpp"
#include "support/ticks.hpp"

namespace postal {

// Timer fire times are admitted to a tick queue only up to this cap, and
// the send paths check their port slot against it, so every tick value in
// an admitted run stays below kTickCap + the per-event step budget < 2^62:
// all tick arithmetic in the hot loops is overflow-free without per-op
// checks.
inline constexpr Tick kTickCap = Tick{1} << 61;

/// A latency-spike window converted to ticks (faults/fault_plan.hpp).
struct SpikeTicks {
  Tick from = 0;
  Tick until = 0;
  Tick extra = 0;
};

/// Everything a tick-domain run needs beyond the params: the resolution,
/// lambda in ticks, and the fault plan's times pre-converted.
struct TickRunSetup {
  std::int64_t q = 1;      ///< resolution denominator (tick = 1/q)
  Tick lambda_ticks = 0;   ///< lambda in ticks
  /// Per-processor crash tick (empty vector when no injector is attached).
  std::vector<std::optional<Tick>> crash_ticks;
  std::vector<SpikeTicks> spike_ticks;
};

/// Probe one run for tick-domain admission: fold lambda and every time in
/// the (optional) fault plan onto one 1/q grid, convert, and check the
/// static overflow headroom against `max_events`. Returns nullopt when the
/// run must stay on the Rational reference path -- never an approximation.
[[nodiscard]] std::optional<TickRunSetup> plan_tick_run(
    const PostalParams& params, const FaultInjector* injector,
    std::uint64_t max_events);

}  // namespace postal
