#include "sim/stream_validator.hpp"

#include <sstream>

#include "support/error.hpp"

namespace postal {

std::string StreamReport::summary() const {
  if (ok) return "stream OK";
  std::ostringstream os;
  os << violations.size() << " violation(s)";
  if (truncated) os << " (truncated)";
  for (const std::string& v : violations) os << "; " << v;
  return os.str();
}

StreamingValidator::StreamingValidator(const RankScheduleSource& source,
                                       std::uint64_t first, std::uint64_t last)
    : source_(source),
      next_(first < 1 ? 1 : first),
      last_(last),
      full_range_(next_ <= 1 && last == source.n()) {
  POSTAL_REQUIRE(first <= last && last <= source.n(),
                 "StreamingValidator: need first <= last <= n");
  // Degenerate ranges ([x, x) or n == 1) certify vacuously.
  if (next_ > last_) next_ = last_;
}

StreamingValidator::StreamingValidator(const RankScheduleSource& source)
    : StreamingValidator(source, 1, source.n()) {}

void StreamingValidator::violation(std::string text) {
  if (report_.violations.size() >= kMaxViolations) {
    report_.truncated = true;
    return;
  }
  report_.violations.push_back(std::move(text));
}

void StreamingValidator::feed(const std::vector<StreamEvent>& chunk) {
  feed(chunk.data(), chunk.size());
}

void StreamingValidator::feed(const StreamEvent* events, std::size_t count) {
  POSTAL_CHECK(!finished_);
  const std::uint64_t n = source_.n();
  const Rational lambda = source_.lambda();
  const Rational makespan = source_.schedule_makespan();
  for (std::size_t i = 0; i < count; ++i) {
    const StreamEvent& e = events[i];
    std::ostringstream tag;
    tag << "event (p" << e.src << " -> p" << e.dst << " at t=" << e.t << "): ";
    // Coverage ordering: receivers arrive as the contiguous run
    // [first, last), each exactly once.
    if (next_ >= last_) {
      violation(tag.str() + "event past the end of the certified receiver range");
    } else if (e.dst != next_) {
      std::ostringstream os;
      os << tag.str() << "receiver out of order: expected rank " << next_;
      violation(os.str());
      // Resync forward so one gap does not cascade into a violation per
      // event; duplicates and regressions leave the expectation in place.
      if (e.dst > next_ && e.dst < last_) next_ = e.dst + 1;
    } else {
      ++next_;
    }
    if (e.dst == 0 || e.dst >= n || e.src >= n || e.src == e.dst) {
      violation(tag.str() + "endpoints outside the legal rank domain");
      continue;
    }
    // Causality + send-port exclusivity: the send must start a whole
    // number of units after the sender's inform time, and that slot must
    // address exactly this receiver.
    const Rational inform_src = source_.rank_inform_time(e.src);
    const Rational offset = e.t - inform_src;
    if (offset < Rational(0)) {
      std::ostringstream os;
      os << tag.str() << "sender not informed until t=" << inform_src;
      violation(os.str());
      continue;
    }
    if (!offset.is_integer()) {
      violation(tag.str() +
                "send start is not slot-aligned with the sender's inform time");
      continue;
    }
    const std::uint64_t slot = static_cast<std::uint64_t>(offset.num());
    const std::optional<std::uint64_t> child = source_.rank_child_at(e.src, slot);
    if (!child.has_value()) {
      std::ostringstream os;
      os << tag.str() << "sender performs no send in slot " << slot;
      violation(os.str());
      continue;
    }
    if (*child != e.dst) {
      std::ostringstream os;
      os << tag.str() << "slot " << slot << " of p" << e.src << " addresses p"
         << *child;
      violation(os.str());
      continue;
    }
    // Receive side: the arrival must be the receiver's certified inform
    // time and must not exceed the schedule's certified makespan.
    const Rational arrival = e.t + lambda;
    const Rational inform_dst = source_.rank_inform_time(e.dst);
    if (arrival != inform_dst) {
      std::ostringstream os;
      os << tag.str() << "arrival t=" << arrival
         << " differs from the receiver's inform time " << inform_dst;
      violation(os.str());
      continue;
    }
    if (arrival > makespan) {
      std::ostringstream os;
      os << tag.str() << "arrival exceeds the certified makespan " << makespan;
      violation(os.str());
      continue;
    }
    if (report_.last_arrival < arrival) report_.last_arrival = arrival;
    ++report_.events_checked;
  }
}

StreamReport StreamingValidator::finish() {
  POSTAL_CHECK(!finished_);
  finished_ = true;
  if (next_ != last_) {
    std::ostringstream os;
    os << "stream ended at rank " << next_ << ", expected to reach " << last_;
    violation(os.str());
  }
  // The Theorem 6 completion certificate: a full, clean stream must attain
  // the closed-form makespan exactly.
  if (full_range_ && source_.n() >= 2 && report_.violations.empty() &&
      report_.last_arrival != source_.schedule_makespan()) {
    std::ostringstream os;
    os << "latest arrival " << report_.last_arrival
       << " != certified makespan " << source_.schedule_makespan();
    violation(os.str());
  }
  report_.ok = report_.violations.empty() && !report_.truncated;
  return report_;
}

}  // namespace postal
