// Streaming schedule validation: certify an event stream chunk-by-chunk
// in O(chunk) memory (docs/ORACLE.md).
//
// The materialized validator (sim/validator.hpp) holds every event, every
// delivery, and per-processor interval sets at once -- the right authority
// for schedules that fit in memory, and the wrong shape for the implicit
// oracle (src/oracle), whose schedules for n up to 10^12 never exist as a
// list. The streaming validator closes that gap for *single-message
// broadcast-tree* streams: events arrive ordered by receiver rank (each
// rank other than the origin receives exactly once, so receiver order is
// a total order), and every postal-model clause is checked per event with
// O(1) retained state:
//
//  * coverage            -- receivers must arrive as the contiguous run
//                           [first, last); a gap or duplicate is flagged
//                           immediately and the run's end is checked at
//                           finish();
//  * causality           -- a sender must be informed no later than the
//                           send start; the sender's inform time comes
//                           from the RankScheduleSource closed form, not
//                           from a table of past events;
//  * send-port exclusivity -- every send of a rank starts a whole number
//                           of time units after its inform time (the slot)
//                           and each (sender, slot) pair is hit at most
//                           once because the addressed child is unique per
//                           slot, so the [t, t+1) windows are disjoint;
//  * receive-port exclusivity -- each rank receives exactly once (coverage
//                           ordering), so the [t+lambda-1, t+lambda)
//                           windows are trivially disjoint;
//  * completion          -- no arrival may exceed the certified makespan,
//                           and a full-range stream must attain it.
//
// What this buys and what it assumes: the per-rank closed forms
// (RankScheduleSource, implemented by oracle::ScheduleOracle) are
// *cross-checked* against the stream, so a corrupted event -- wrong time,
// wrong sender, wrong receiver, duplicate, gap -- is caught; the closed
// forms themselves are certified by the differential gate against the
// materialized validator on every size the old path can hold
// (tests/oracle/oracle_differential_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace postal {

/// One send event in a rank stream: `src` starts sending to `dst` at `t`.
/// Ranks are 64-bit on purpose: streams describe systems far larger than
/// the ProcId-indexed Schedule can materialize.
struct StreamEvent {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  Rational t;

  friend bool operator==(const StreamEvent&, const StreamEvent&) = default;
};

/// The per-rank closed-form answers a streaming validation certifies the
/// event stream against. Implemented by oracle::ScheduleOracle; the
/// interface lives here so postal_sim does not depend on postal_oracle.
class RankScheduleSource {
 public:
  virtual ~RankScheduleSource() = default;

  /// Number of processors in the system.
  [[nodiscard]] virtual std::uint64_t n() const = 0;

  /// The latency parameter lambda.
  [[nodiscard]] virtual Rational lambda() const = 0;

  /// When `rank` is fully informed: the arrival time of its single
  /// receive, 0 for the origin.
  [[nodiscard]] virtual Rational rank_inform_time(std::uint64_t rank) const = 0;

  /// The rank addressed by `rank`'s send in unit slot `slot` (the send
  /// starting at inform time + slot), or nullopt when `rank` performs
  /// fewer than slot+1 sends.
  [[nodiscard]] virtual std::optional<std::uint64_t> rank_child_at(
      std::uint64_t rank, std::uint64_t slot) const = 0;

  /// The certified completion time of the whole schedule.
  [[nodiscard]] virtual Rational schedule_makespan() const = 0;
};

/// Result of a streaming validation.
struct StreamReport {
  bool ok = false;                      ///< no violations, run complete
  std::vector<std::string> violations;  ///< capped; see truncated flag
  bool truncated = false;               ///< violations beyond the cap dropped
  std::uint64_t events_checked = 0;     ///< events accepted and verified
  Rational last_arrival;                ///< latest arrival seen (0 if none)

  /// Joined violation text for test failure messages.
  [[nodiscard]] std::string summary() const;
};

/// Chunk-by-chunk certifier for a receiver-ordered event stream.
///
/// Feed any number of chunks (possibly empty, any chunk sizes) whose
/// concatenation lists, in increasing receiver order, the receive event of
/// every rank in [first, last); then call finish() exactly once. Memory is
/// O(1) beyond the violation list, which is capped at kMaxViolations.
class StreamingValidator {
 public:
  /// Certify the receiver range [max(first, 1), last). Throws
  /// InvalidArgument unless first <= last <= source.n(). The full-schedule
  /// certificate (completion == makespan) is only asserted when the range
  /// covers every non-origin rank.
  StreamingValidator(const RankScheduleSource& source, std::uint64_t first,
                     std::uint64_t last);

  /// Certify the whole schedule: receiver range [1, n).
  explicit StreamingValidator(const RankScheduleSource& source);

  /// At most this many violation strings are retained (the report's
  /// truncated flag records that more occurred).
  static constexpr std::size_t kMaxViolations = 64;

  /// Verify one chunk of consecutive events. Throws LogicError if called
  /// after finish().
  void feed(const StreamEvent* events, std::size_t count);
  void feed(const std::vector<StreamEvent>& chunk);

  /// Close the stream: check the run reached `last` and, for a full-range
  /// stream, that the latest arrival equals the certified makespan.
  /// Idempotent-hostile on purpose: throws LogicError on a second call.
  [[nodiscard]] StreamReport finish();

 private:
  void violation(std::string text);

  const RankScheduleSource& source_;
  std::uint64_t next_;        ///< next receiver rank expected
  std::uint64_t last_;        ///< one past the final receiver certified
  bool full_range_;           ///< stream covers every non-origin rank
  bool finished_ = false;
  StreamReport report_;
};

}  // namespace postal
