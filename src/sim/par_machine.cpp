// The sharded engine and its determinism machinery. Three pieces:
//
//  1. ParShard -- the per-lane event loop. An exact transliteration of
//     Machine's tick-domain hot path (same branch structure, same fault
//     hook order, same REQUIRE messages), except that instead of writing
//     to the global trace/fault-timeline/sequence-counter directly it
//     *logs* what each pop produced.
//
//  2. The stamp algebra. Every queued event carries a stamp standing in
//     for Machine's global push counter. Events routed through a barrier
//     carry their true global sequence number (gseq); events pushed and
//     consumed inside one window carry a provisional stamp (top bit set,
//     window-local counter). Provisional stamps compare correctly against
//     everything they can ever meet: within a shard's queue, in-window
//     pushes are strictly later (in sequential push order) than anything
//     that crossed a barrier, and the window-local counter orders them
//     among themselves exactly as the sequential engine's counter would --
//     a shard pops its own events in the same relative order the global
//     engine would, so it also pushes in that relative order (induction
//     over windows).
//
//  3. The barrier merge-replay ("merge-replay v2", docs/SIMULATION.md).
//     When a window closes, a cheap *sequential* pass k-way merges the
//     shards' pop logs by (tick, resolved stamp): the head of a log with a
//     provisional stamp always resolves, because the push that created it
//     sits earlier in the *same* log (pushed, then popped, both in-window)
//     and the merge consumes logs front to back. The merge visits pops in
//     exactly the sequential engine's pop order -- but it only *assigns*:
//     gseqs to each entry's pushes (reproducing the sequential
//     push-counter order) and global output slots to each entry's
//     deliveries and fault events. The expensive half -- writing the
//     Delivery/FaultEvent payloads into those slots -- then runs as a
//     parallel pass, one lane per shard, because the merge hands each
//     shard a strictly increasing slot list and every first-arrival cell
//     (dst, msg) belongs to the shard that owns dst. Outbox entries
//     likewise get their gseq from the sequential pass and then flush into
//     their destination shards *in parallel, one lane per destination*:
//     each source shard sealed its per-destination outbox runs into
//     (tick, gseq) order on its own lane before the barrier (a counting
//     bucket by tick; gseqs increase with a run's append order, so
//     (tick, local_seq) order IS (tick, gseq) order), and the flush is a
//     k-way merge of those sorted runs -- no global sort anywhere.
//
// Window placement needs no alignment: each window is [B, B + lambda)
// with B = the global minimum pending tick, so every send started in the
// window (at start >= B, latency >= lambda ticks) arrives at or after the
// window's end -- sends *always* route through the barrier, and only
// timers and input-port requeues can land in-window. Shared per-rank
// arrays (port_free, recv_free, port_busy_units) are safe unsynchronized:
// send-side fields are indexed by the handler's own rank and receive-side
// fields by the delivering event's destination rank, and both ranks
// belong to the shard doing the write; the pool's batch join publishes
// them across windows. Loss draws are likewise shard-local per directed
// link (keyed by the sending rank), so the per-link draw counters consume
// in sequential order.
//
// Arena discipline: every window-local buffer (pop logs, side streams,
// outbox runs, seal scratch, replay scratch, the shard queues' arenas)
// lives in ParMachine::Engine and is *retained* across windows and across
// run() calls -- cleared, never deallocated. After the first run's
// high-water mark, steady-state windows allocate nothing;
// ParRunInfo::arena_growths counts the capacity growths actually observed
// so benches can prove it (bench_micro's warm-rerun section).
#include "sim/par_machine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>

#include "par/thread_pool.hpp"
#include "support/error.hpp"

namespace postal {

namespace {

/// Provisional stamps live above every possible gseq (gseqs count queue
/// pushes, bounded by max_events, far below 2^63).
constexpr std::uint64_t kProvBase = std::uint64_t{1} << 63;
constexpr Tick kNoTick = std::numeric_limits<Tick>::max();

/// Widest tick span a sealed outbox run may cover and still use the
/// counting-bucket sort. Normal windows span at most lambda ticks (every
/// in-window send lands in [window_end, window_end + lambda)); only the
/// preamble backlog and extreme latency spikes can exceed this, and those
/// runs fall back to a comparison sort (counted in flush_fallback_sorts).
constexpr std::uint64_t kSealSpanCap = std::uint64_t{1} << 14;

/// Raised by a shard when a handler arms a timer the tick engine cannot
/// key (off the 1/q grid or out of range). The sequential Machine
/// transplants to the Rational engine mid-run; the sharded engine cannot
/// (shards have already diverged from sequential state), so the whole run
/// restarts on a fresh sequential Machine.
struct ParFallbackError : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "ParMachine: off-grid timer; rerunning sequentially";
  }
};

}  // namespace

/// One lane's event engine. Plain-struct wiring: ParMachine::run_windowed
/// sets every field, runs the windows, then reads the accumulators back.
/// Lives in this TU only; MachineContext befriends it by name.
class ParShard final : public ContextSink {
 public:
  /// ParMachine's pending-event record (Machine::Pending is private to
  /// Machine; the shard engine keeps its own, with send_start in ticks).
  struct Ev {
    enum class Kind : std::uint8_t { kFlight, kFlightFinal, kTimer };
    Kind kind = Kind::kFlight;
    ProcId src = 0;
    ProcId dst = 0;
    Packet packet;
    Tick send_start = 0;
    std::uint64_t token = 0;
  };

  /// A push that must cross a barrier: delivered to shard_of(ev.dst) once
  /// the merge has assigned its gseq. `local_seq` is the shard-wide outbox
  /// append counter of the window; the barrier merge consumes a shard's
  /// outbox pushes in exactly that order, so the gseq of entry L is
  /// Replay's outbox_gseq[shard][L] -- and gseqs strictly increase with L.
  struct OutboxEntry {
    Tick tick = 0;
    std::uint64_t local_seq = 0;
    Ev ev;
  };

  /// One productive pop in a shard's window log. `pushes`, `faults`, and
  /// `delivered` are counts into the shard's side streams (push_kinds /
  /// fevents / deliveries), consumed in order during replay. Pops that
  /// produce nothing observable (e.g. a crash-skipped timer, or a
  /// delivery under TraceMode::kCounters) are not logged.
  struct PopEntry {
    Tick tick = 0;
    std::uint64_t stamp = 0;
    std::uint32_t pushes = 0;
    std::uint32_t faults = 0;
    std::uint8_t delivered = 0;
  };

  // Wiring (constant during a run).
  const PostalParams* params = nullptr;
  std::uint32_t messages = 0;
  FaultInjector* injector = nullptr;
  ProcId lo = 0;  ///< first rank owned
  ProcId hi = 0;  ///< one past last rank owned
  std::int64_t tick_q = 1;
  Tick lambda_ticks = 0;
  const std::vector<std::optional<Tick>>* crash_ticks = nullptr;
  const std::vector<SpikeTicks>* spike_ticks = nullptr;
  Tick* port_free = nullptr;                 ///< shared, written at own ranks
  Tick* recv_free = nullptr;                 ///< shared, written at own ranks
  std::uint64_t* port_busy_units = nullptr;  ///< shared, written at own ranks
  std::uint64_t max_events = 0;
  std::uint64_t shard_size = 1;  ///< rank -> owning shard divisor
  TraceMode trace_mode = TraceMode::kFull;
  Trace* trace = nullptr;  ///< kCounters: direct first-arrival notes
  std::unique_ptr<Protocol> protocol;

  // Run-cumulative accumulators, merged by ParMachine at the end.
  TickEventQueue<Ev> q;
  std::vector<SendEvent> sends;  ///< this shard's schedule slice, append order
  MachineStats stats;  ///< port_busy stays empty (folded from the units array)
  FaultStats faults;   ///< counters only; the timeline is built at replay
  std::uint64_t steps = 0;
  std::uint64_t stalled_windows = 0;
  std::uint64_t mailbox_in = 0;
  Tick max_delivery_tick = 0;  ///< kCounters: latest arrival on this shard
  std::uint64_t flush_fallback_sorts = 0;
  std::uint64_t arena_growths = 0;

  // Window-local pop log and side streams (cleared after every barrier;
  // capacity retained -- see the arena discipline in the file comment).
  std::vector<PopEntry> log;
  std::vector<std::uint8_t> push_kinds;  ///< per push: 0 = in-window, 1 = outbox
  std::vector<Delivery> deliveries;      ///< kFull only
  std::vector<FaultEvent> fevents;
  std::vector<std::vector<OutboxEntry>> outbox;  ///< one run per destination shard
  std::uint64_t outbox_seq = 0;  ///< outbox appends this window (all runs)
  std::uint64_t prov_count = 0;  ///< provisional stamps handed out this window

  /// Reset all per-run state; every buffer keeps its capacity. `dests` is
  /// the shard count of the coming run (outbox runs are per destination).
  void prepare(std::uint32_t dests) {
    q.clear();
    sends.clear();
    stats = MachineStats();
    stats.tick_domain = true;
    faults = FaultStats();
    steps = 0;
    stalled_windows = 0;
    mailbox_in = 0;
    max_delivery_tick = 0;
    flush_fallback_sorts = 0;
    arena_growths = 0;
    outbox.resize(dests);
    caps_outbox_.resize(dests, 0);
    log.clear();
    push_kinds.clear();
    deliveries.clear();
    fevents.clear();
    for (std::vector<OutboxEntry>& run : outbox) run.clear();
    outbox_seq = 0;
    prov_count = 0;
  }

  /// The preamble image of Machine's on_start loop for one owned rank:
  /// a pseudo-pop at (tick 0, stamp = rank), every push routed to the
  /// outbox (window_end_ = 0), so the preamble barrier's rank-ordered
  /// merge reproduces the sequential on_start push order.
  void start_rank(ProcId p) {
    window_end_ = 0;
    cur_ = PopEntry{0, p, 0, 0, 0};
    if (injector != nullptr && injector->crashed(p, Rational(0))) return;
    MachineContext ctx(*this, p, Rational(0), 0);
    protocol->on_start(ctx);
    commit_log();
  }

  /// Drain every owned event strictly before `window_end`.
  void run_window(Tick window_end) {
    window_end_ = window_end;
    const std::uint64_t before = steps;
    while (!q.empty()) {
      const Tick t = q.peek_time();
      if (t >= window_end) break;
      q.drain_current_tick([&](std::uint64_t stamp, Ev&& ev) {
        process(t, stamp, std::move(ev));
      });
    }
    if (steps == before) ++stalled_windows;
  }

  /// Sort every per-destination outbox run into (tick, local_seq) order --
  /// which is (tick, gseq) order, since the barrier hands out gseqs in
  /// local_seq order. Runs on the shard's own lane, inside the window
  /// batch, so the barrier-side flush is a pure merge of sorted runs.
  void seal_outboxes() {
    for (std::vector<OutboxEntry>& run : outbox) seal_run(run);
  }

  /// Clear the window streams (capacity kept) and count arena growth.
  void clear_window() {
    note_growth(log.capacity(), caps_log_);
    note_growth(push_kinds.capacity(), caps_kinds_);
    note_growth(deliveries.capacity(), caps_del_);
    note_growth(fevents.capacity(), caps_fev_);
    note_growth(seal_scratch_.capacity(), caps_scratch_);
    for (std::size_t d = 0; d < outbox.size(); ++d) {
      note_growth(outbox[d].capacity(), caps_outbox_[d]);
      outbox[d].clear();
    }
    log.clear();
    push_kinds.clear();
    deliveries.clear();
    fevents.clear();
    outbox_seq = 0;
    prov_count = 0;
  }

  [[nodiscard]] Rational tick_rational(Tick t) const {
    return Rational(t, tick_q);
  }

 private:
  // ContextSink: the tick-domain images of Machine::enqueue_send_ticks /
  // enqueue_timer_ticks, logging instead of globally sequencing.
  void sink_send(ProcId self, ProcId dst, const Packet& packet,
                 const Rational& now, Tick now_ticks) override {
    static_cast<void>(now);
    POSTAL_REQUIRE(dst < params->n(), "Machine: send destination out of range");
    POSTAL_REQUIRE(dst != self, "Machine: a processor cannot send to itself");
    POSTAL_REQUIRE(packet.msg < messages, "Machine: message id out of range");
    const Tick start = std::max(now_ticks, port_free[self]);
    POSTAL_CHECK(start <= kTickCap);
    if (injector != nullptr && crashed_at(self, start)) {
      ++faults.sends_suppressed;
      log_fault(FaultEvent{FaultEvent::Kind::kSendSuppressed,
                           tick_rational(start), self, dst});
      return;
    }
    port_free[self] = start + tick_q;
    ++stats.sends_enqueued;
    if (start > now_ticks) ++stats.sends_deferred;
    ++port_busy_units[self];
    const std::uint64_t depth = static_cast<std::uint64_t>(
        (port_free[self] - now_ticks + tick_q - 1) / tick_q);
    if (depth > stats.max_fifo_depth) stats.max_fifo_depth = depth;
    sends.push_back(SendEvent{self, dst, packet.msg, tick_rational(start)});
    Tick latency = lambda_ticks;
    if (injector != nullptr && injector->has_spikes()) {
      Tick extra = 0;
      for (const SpikeTicks& s : *spike_ticks) {
        if (start >= s.from && start < s.until) extra += s.extra;
      }
      if (extra > 0) {
        latency += extra;
        ++faults.spikes_applied;
        log_fault(
            FaultEvent{FaultEvent::Kind::kSpike, tick_rational(start), self, dst});
      }
    }
    if (injector != nullptr && injector->has_losses() && injector->lose(self, dst)) {
      ++faults.drops_loss;
      log_fault(FaultEvent{FaultEvent::Kind::kDropLoss,
                           tick_rational(start + latency), dst, self});
      return;
    }
    route_push(start + latency,
               Ev{Ev::Kind::kFlight, self, dst, packet, start, 0});
  }

  void sink_timer(ProcId self, const Rational& now, Tick now_ticks,
                  const Rational& delay, std::uint64_t token) override {
    static_cast<void>(now);
    ++stats.timers_set;
    const std::optional<Tick> d = TickDomain(tick_q).to_ticks(delay);
    Tick fire = 0;
    if (!d.has_value() || __builtin_add_overflow(now_ticks, *d, &fire) ||
        fire > kTickCap) {
      throw ParFallbackError{};
    }
    route_push(fire, Ev{Ev::Kind::kTimer, self, self, Packet{}, fire, token});
  }

  [[nodiscard]] const PostalParams& sink_params() const noexcept override {
    return *params;
  }

  /// One pop: Machine::run_tick_loop's switch, against the window log.
  void process(Tick time, std::uint64_t stamp, Ev&& ev) {
    if (++steps > max_events) {
      throw LogicError("ParMachine::run: exceeded max_events; runaway protocol?");
    }
    cur_ = PopEntry{time, stamp, 0, 0, 0};
    switch (ev.kind) {
      case Ev::Kind::kTimer: {
        if (injector != nullptr && crashed_at(ev.dst, time)) break;
        ++stats.timers_fired;
        MachineContext ctx(*this, ev.dst, tick_rational(time), time);
        protocol->on_timer(ctx, ev.token);
        break;
      }
      case Ev::Kind::kFlight: {
        const Tick window_start = std::max(time - tick_q, recv_free[ev.dst]);
        const Tick arrival = window_start + tick_q;
        recv_free[ev.dst] = arrival;
        if (arrival > time) {
          ++stats.receives_queued;
          Ev requeued = ev;
          requeued.kind = Ev::Kind::kFlightFinal;
          route_push(arrival, std::move(requeued));
          break;
        }
        deliver(time, ev);
        break;
      }
      case Ev::Kind::kFlightFinal:
        deliver(time, ev);
        break;
    }
    commit_log();
  }

  void deliver(Tick time, const Ev& ev) {
    if (injector != nullptr && crashed_at(ev.dst, time)) {
      ++faults.drops_crash;
      log_fault(FaultEvent{FaultEvent::Kind::kDropCrash, tick_rational(time),
                           ev.dst, ev.src});
      return;
    }
    ++stats.events_processed;
    cur_.delivered = 1;
    if (trace_mode == TraceMode::kFull) {
      deliveries.push_back(Delivery{ev.src, ev.dst, ev.packet.msg,
                                    tick_rational(ev.send_start),
                                    tick_rational(time)});
    } else {
      // Elided trace: update the (dst, msg) first-arrival cell directly --
      // dst belongs to this shard, so the cell is ours alone -- and keep
      // count/makespan shard-local until the end-of-run fold. The global
      // pop order is irrelevant to a min and a max, so no replay needed.
      trace->counters_note(ev.dst, ev.packet.msg, tick_rational(time));
      if (time > max_delivery_tick) max_delivery_tick = time;
    }
    MachineContext ctx(*this, ev.dst, tick_rational(time), time);
    protocol->on_receive(ctx, ev.packet);
  }

  /// Every queue push of the sequential engine maps to exactly one call
  /// here, so replaying `pushes` per entry reproduces its seq counter.
  void route_push(Tick at, Ev&& ev) {
    ++cur_.pushes;
    if (at < window_end_) {
      push_kinds.push_back(0);
      q.push(at, kProvBase + prov_count++, std::move(ev));
    } else {
      push_kinds.push_back(1);
      const std::size_t d = static_cast<std::size_t>(ev.dst / shard_size);
      outbox[d].push_back(OutboxEntry{at, outbox_seq++, std::move(ev)});
    }
  }

  void log_fault(const FaultEvent& e) {
    fevents.push_back(e);
    ++cur_.faults;
  }

  void commit_log() {
    // A delivery with no pushes and no faults is observable only through
    // the materialized Delivery; under kCounters it was already folded
    // into the first-arrival cells above, so the merge can skip it.
    if (cur_.pushes != 0 || cur_.faults != 0 ||
        (cur_.delivered != 0 && trace_mode == TraceMode::kFull)) {
      log.push_back(cur_);
    }
  }

  /// Counting-bucket sort of one outbox run by (tick, local_seq). Appends
  /// arrive in local_seq order, so a stable bucket-by-tick pass is a full
  /// sort; runs spanning more than kSealSpanCap ticks fall back to
  /// std::stable_sort (stability again supplies the local_seq order).
  void seal_run(std::vector<OutboxEntry>& run) {
    if (run.size() < 2) return;
    Tick lo_t = run[0].tick;
    Tick hi_t = run[0].tick;
    for (const OutboxEntry& e : run) {
      lo_t = std::min(lo_t, e.tick);
      hi_t = std::max(hi_t, e.tick);
    }
    const std::uint64_t span = static_cast<std::uint64_t>(hi_t - lo_t) + 1;
    if (span > kSealSpanCap) {
      ++flush_fallback_sorts;
      std::stable_sort(run.begin(), run.end(),
                       [](const OutboxEntry& a, const OutboxEntry& b) {
                         return a.tick < b.tick;
                       });
      return;
    }
    seal_counts_.assign(static_cast<std::size_t>(span), 0);
    for (const OutboxEntry& e : run) {
      ++seal_counts_[static_cast<std::size_t>(e.tick - lo_t)];
    }
    std::uint32_t offset = 0;
    for (std::uint32_t& c : seal_counts_) {
      const std::uint32_t count = c;
      c = offset;
      offset += count;
    }
    seal_scratch_.resize(run.size());
    for (OutboxEntry& e : run) {
      seal_scratch_[seal_counts_[static_cast<std::size_t>(e.tick - lo_t)]++] =
          std::move(e);
    }
    // Move back instead of swapping: a swap would shuffle capacities between
    // the run and the scratch slot, so a warm rerun of the identical workload
    // could start a vector below its watermark and re-grow it -- breaking the
    // zero-allocation steady-state claim the arena_growths counter certifies.
    std::move(seal_scratch_.begin(), seal_scratch_.end(), run.begin());
  }

  void note_growth(std::size_t cap_now, std::size_t& cap_seen) {
    if (cap_now > cap_seen) {
      cap_seen = cap_now;
      ++arena_growths;
    }
  }

  [[nodiscard]] bool crashed_at(ProcId p, Tick t) const {
    const auto& c = (*crash_ticks)[p];
    return c.has_value() && t >= *c;
  }

  Tick window_end_ = 0;
  PopEntry cur_{};
  std::vector<OutboxEntry> seal_scratch_;
  std::vector<std::uint32_t> seal_counts_;
  // Capacity watermarks (persist across runs; growth past one increments
  // arena_growths, so a warm rerun reports 0).
  std::size_t caps_log_ = 0, caps_kinds_ = 0, caps_del_ = 0, caps_fev_ = 0,
              caps_scratch_ = 0;
  std::vector<std::size_t> caps_outbox_;
};

namespace {

/// The barrier-side sequencer (sequential half of merge-replay v2): merges
/// shard pop logs into the sequential pop order, handing out gseqs and
/// assigning each delivery / fault event its global output slot. The
/// payload writes happen afterwards in materialize_shard(), one lane per
/// shard -- each shard's slot list is strictly increasing and the lists
/// partition the window's slots, so the parallel writes are disjoint.
/// Scratch is retained across barriers and across runs (Engine member).
class Replay {
 public:
  std::uint64_t replayed_pops = 0;
  std::uint64_t merge_deliveries = 0;
  std::uint64_t merge_fault_events = 0;

  void start_run(std::vector<ParShard>* shards, Trace* trace,
                 FaultStats* faults, bool full) {
    shards_ = shards;
    trace_ = trace;
    faults_ = faults;
    full_ = full;
    const std::size_t s = shards_->size();
    head_.assign(s, 0);
    fev_.assign(s, 0);
    del_.assign(s, 0);
    push_.assign(s, 0);
    live_.assign(s, 0);
    prov2g_.resize(s);
    outbox_gseq_.resize(s);
    del_slots_.resize(s);
    fev_slots_.resize(s);
    gseq_ = 0;
    del_next_ = 0;
    // The crash timeline is pre-seeded before the first barrier; window
    // fault events append after it.
    fev_next_ = faults_->events.size();
    replayed_pops = 0;
    merge_deliveries = 0;
    merge_fault_events = 0;
  }

  /// Sequential pass: visit this window's pops in exact sequential order,
  /// assigning gseqs and output slots. O(pops * shards) with trivial
  /// per-entry work -- no Delivery/FaultEvent is touched here.
  void sequence() {
    const std::size_t s_count = shards_->size();
    for (std::size_t s = 0; s < s_count; ++s) {
      head_[s] = fev_[s] = del_[s] = push_[s] = live_[s] = 0;
      prov2g_[s].assign((*shards_)[s].prov_count, 0);
      outbox_gseq_[s].clear();
      del_slots_[s].clear();
      fev_slots_[s].clear();
    }
    window_del_base_ = del_next_;
    window_fev_base_ = fev_next_;
    while (true) {
      // Linear head scan: the shard count is tiny (<= threads), so a heap
      // would cost more than it saves. Keys never tie -- resolved stamps
      // are distinct gseqs (or distinct ranks, at the preamble barrier).
      std::size_t best = s_count;
      Tick best_tick = 0;
      std::uint64_t best_stamp = 0;
      for (std::size_t s = 0; s < s_count; ++s) {
        const std::vector<ParShard::PopEntry>& log = (*shards_)[s].log;
        if (head_[s] >= log.size()) continue;
        const ParShard::PopEntry& e = log[head_[s]];
        const std::uint64_t stamp = resolve(s, e.stamp);
        if (best == s_count || e.tick < best_tick ||
            (e.tick == best_tick && stamp < best_stamp)) {
          best = s;
          best_tick = e.tick;
          best_stamp = stamp;
        }
      }
      if (best == s_count) break;
      ParShard& sh = (*shards_)[best];
      const ParShard::PopEntry& e = sh.log[head_[best]++];
      for (std::uint32_t i = 0; i < e.faults; ++i) {
        fev_slots_[best].push_back(fev_next_++);
      }
      if (e.delivered != 0 && full_) del_slots_[best].push_back(del_next_++);
      for (std::uint32_t i = 0; i < e.pushes; ++i) {
        const std::uint8_t kind = sh.push_kinds[push_[best]++];
        const std::uint64_t g = gseq_++;
        if (kind == 0) {
          prov2g_[best][live_[best]++] = g;
        } else {
          // Outbox pushes are consumed in a shard's append (local_seq)
          // order, so outbox_gseq_[s][L] is entry L's gseq -- and the
          // sequence is strictly increasing in L.
          outbox_gseq_[best].push_back(g);
        }
      }
      ++replayed_pops;
    }
  }

  /// Deliveries + fault events this window (0 = materialization can skip).
  [[nodiscard]] std::uint64_t window_payloads() const noexcept {
    return (del_next_ - window_del_base_) + (fev_next_ - window_fev_base_);
  }

  /// Sequential: grow the shared containers to this window's high slot.
  void materialize_prepare() {
    if (full_ && del_next_ != window_del_base_) {
      const std::size_t base =
          trace_->replay_extend(static_cast<std::size_t>(del_next_ - window_del_base_));
      POSTAL_CHECK(base == window_del_base_);
    }
    faults_->events.resize(static_cast<std::size_t>(fev_next_));
    merge_deliveries += del_next_ - window_del_base_;
    merge_fault_events += fev_next_ - window_fev_base_;
  }

  /// Parallel per-shard: write the window's payloads into their slots.
  void materialize_shard(std::size_t s) {
    ParShard& sh = (*shards_)[s];
    if (full_) {
      const std::vector<std::uint64_t>& slots = del_slots_[s];
      POSTAL_CHECK(slots.size() == sh.deliveries.size());
      for (std::size_t i = 0; i < slots.size(); ++i) {
        trace_->replay_set(static_cast<std::size_t>(slots[i]), sh.deliveries[i]);
      }
    }
    const std::vector<std::uint64_t>& fslots = fev_slots_[s];
    POSTAL_CHECK(fslots.size() == sh.fevents.size());
    for (std::size_t i = 0; i < fslots.size(); ++i) {
      faults_->events[static_cast<std::size_t>(fslots[i])] = sh.fevents[i];
    }
  }

  [[nodiscard]] const std::vector<std::uint64_t>& outbox_gseq(
      std::size_t s) const noexcept {
    return outbox_gseq_[s];
  }

 private:
  /// A provisional head always resolves: the push that minted it sits in
  /// an earlier entry of the same log, already consumed front-to-back.
  [[nodiscard]] std::uint64_t resolve(std::size_t s, std::uint64_t stamp) const {
    return stamp >= kProvBase ? prov2g_[s][stamp - kProvBase] : stamp;
  }

  std::vector<ParShard>* shards_ = nullptr;
  Trace* trace_ = nullptr;
  FaultStats* faults_ = nullptr;
  bool full_ = true;
  std::uint64_t gseq_ = 0;  ///< image of Machine's push counter, run-global
  std::uint64_t del_next_ = 0;  ///< next global delivery slot
  std::uint64_t fev_next_ = 0;  ///< next global fault-event slot
  std::uint64_t window_del_base_ = 0;
  std::uint64_t window_fev_base_ = 0;
  std::vector<std::size_t> head_, fev_, del_, push_, live_;
  std::vector<std::vector<std::uint64_t>> prov2g_;
  std::vector<std::vector<std::uint64_t>> outbox_gseq_;
  std::vector<std::vector<std::uint64_t>> del_slots_;
  std::vector<std::vector<std::uint64_t>> fev_slots_;
};

}  // namespace

/// Arena-backed engine state, retained across run() calls (header
/// comment). Everything here is capacity: a new run resets values, never
/// storage.
struct ParMachine::Engine {
  std::vector<ParShard> shards;
  std::vector<Tick> port_free;
  std::vector<Tick> recv_free;
  std::vector<std::uint64_t> port_busy_units;
  Replay replay;
  /// Flat [dest * shards + src] head indexes of the flush merges.
  std::vector<std::size_t> flush_head;
  std::vector<std::uint64_t> flush_in;     ///< per dest: entries flushed
  std::vector<std::uint64_t> flush_cross;  ///< per dest: from another shard
  std::unique_ptr<par::ThreadPool> pool;
  unsigned pool_threads = 0;
};

ParMachine::ParMachine(PostalParams params, std::uint32_t messages)
    : params_(std::move(params)), messages_(messages) {}

ParMachine::~ParMachine() = default;

void ParMachine::attach_faults(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(plan, params_.n());
}

MachineResult ParMachine::run(ShardProtocolFactory& factory,
                              std::uint64_t max_events) {
  info_ = ParRunInfo();
  info_.trace_mode = trace_mode_;
  if (time_path_ == TimePath::kRational) {
    return run_sequential(factory, max_events, "rational time path forced");
  }
  const std::optional<TickRunSetup> setup =
      plan_tick_run(params_, injector_.get(), max_events);
  if (!setup.has_value()) {
    return run_sequential(factory, max_events, "tick-domain admission failed");
  }
  try {
    return run_windowed(factory, *setup, max_events);
  } catch (const ParFallbackError&) {
    info_ = ParRunInfo();
    info_.trace_mode = trace_mode_;
    return run_sequential(factory, max_events, "off-grid timer armed mid-run");
  }
}

MachineResult ParMachine::run_sequential(ShardProtocolFactory& factory,
                                         std::uint64_t max_events,
                                         std::string reason) {
  Machine machine(params_, messages_);
  if (injector_ != nullptr) machine.attach_faults(injector_->plan());
  machine.set_time_path(time_path_);
  machine.set_trace_mode(trace_mode_);
  std::unique_ptr<Protocol> protocol = factory.make(0, 1);
  POSTAL_CHECK(protocol != nullptr);
  MachineResult result = machine.run(*protocol, max_events);
  factory.reclaim(0, std::move(protocol));
  info_.parallel_engine = false;
  info_.fallback_reason = std::move(reason);
  info_.shards = 1;
  return result;
}

MachineResult ParMachine::run_windowed(ShardProtocolFactory& factory,
                                       const TickRunSetup& setup,
                                       std::uint64_t max_events) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };

  const std::uint64_t n = params_.n();
  const std::uint64_t lanes = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(threads_, n == 0 ? 1 : n));
  const std::uint64_t shard_size = n == 0 ? 1 : (n + lanes - 1) / lanes;
  const std::uint32_t s_count =
      static_cast<std::uint32_t>(n == 0 ? 1 : (n + shard_size - 1) / shard_size);

  if (!engine_) engine_ = std::make_unique<Engine>();
  Engine& eng = *engine_;
  if (!eng.pool || eng.pool_threads != static_cast<unsigned>(lanes)) {
    eng.pool = std::make_unique<par::ThreadPool>(static_cast<unsigned>(lanes));
    eng.pool_threads = static_cast<unsigned>(lanes);
  }
  par::ThreadPool& pool = *eng.pool;

  eng.port_free.assign(n, 0);
  eng.recv_free.assign(n, 0);
  eng.port_busy_units.assign(n, 0);
  eng.flush_head.assign(static_cast<std::size_t>(s_count) * s_count, 0);
  eng.flush_in.assign(s_count, 0);
  eng.flush_cross.assign(s_count, 0);

  MachineResult result;
  result.trace = Trace(n, messages_, trace_mode_);

  eng.shards.resize(s_count);
  std::vector<ParShard>& shards = eng.shards;
  for (std::uint32_t s = 0; s < s_count; ++s) {
    ParShard& sh = shards[s];
    sh.params = &params_;
    sh.messages = messages_;
    sh.injector = injector_.get();
    sh.lo = static_cast<ProcId>(s * shard_size);
    sh.hi = static_cast<ProcId>(std::min<std::uint64_t>(n, (s + 1) * shard_size));
    sh.tick_q = setup.q;
    sh.lambda_ticks = setup.lambda_ticks;
    sh.crash_ticks = &setup.crash_ticks;
    sh.spike_ticks = &setup.spike_ticks;
    sh.port_free = eng.port_free.data();
    sh.recv_free = eng.recv_free.data();
    sh.port_busy_units = eng.port_busy_units.data();
    sh.max_events = max_events;
    sh.shard_size = shard_size;
    sh.trace_mode = trace_mode_;
    sh.trace = &result.trace;
    sh.prepare(s_count);
    sh.protocol = factory.make(s, s_count);
    POSTAL_CHECK(sh.protocol != nullptr);
  }

  if (injector_ != nullptr) {
    injector_->reset();
    for (ProcId p = 0; p < n; ++p) {
      const auto& c = injector_->crash_time(p);
      if (c.has_value()) {
        ++result.faults.crashes_applied;
        result.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kCrash, *c, p, p});
      }
    }
  }

  Replay& replay = eng.replay;
  replay.start_run(&shards, &result.trace, &result.faults,
                   trace_mode_ == TraceMode::kFull);

  // One barrier: the sequential slot-assignment pass, then the parallel
  // payload materialization (merge_ms), then the parallel per-destination
  // mailbox merge into the shard queues (flush_ms).
  const auto flush_dest = [&](std::size_t d) {
    ParShard& dst = shards[d];
    std::size_t* head = &eng.flush_head[d * s_count];
    for (std::uint32_t s = 0; s < s_count; ++s) head[s] = 0;
    std::uint64_t in = 0;
    std::uint64_t cross = 0;
    while (true) {
      std::size_t best = s_count;
      Tick best_tick = 0;
      std::uint64_t best_g = 0;
      for (std::size_t s = 0; s < s_count; ++s) {
        const std::vector<ParShard::OutboxEntry>& run = shards[s].outbox[d];
        if (head[s] >= run.size()) continue;
        const ParShard::OutboxEntry& e = run[head[s]];
        const std::uint64_t g = replay.outbox_gseq(s)[e.local_seq];
        if (best == s_count || e.tick < best_tick ||
            (e.tick == best_tick && g < best_g)) {
          best = s;
          best_tick = e.tick;
          best_g = g;
        }
      }
      if (best == s_count) break;
      ParShard::OutboxEntry& e = shards[best].outbox[d][head[best]++];
      // (tick, gseq) merge order satisfies the queue's same-tick FIFO
      // contract; every tick is >= the window end, hence >= the cursor.
      dst.q.push(e.tick, best_g, std::move(e.ev));
      ++in;
      if (best != d) ++cross;
    }
    dst.mailbox_in += in;
    eng.flush_in[d] = in;
    eng.flush_cross[d] = cross;
  };

  const auto barrier = [&] {
    auto t0 = Clock::now();
    replay.sequence();
    replay.materialize_prepare();
    if (replay.window_payloads() != 0) {
      pool.for_each(s_count,
                    [&replay](std::size_t s) { replay.materialize_shard(s); });
    }
    info_.merge_ms += ms_since(t0);
    t0 = Clock::now();
    bool any_outbox = false;
    for (const ParShard& sh : shards) {
      for (const auto& run : sh.outbox) {
        if (!run.empty()) {
          any_outbox = true;
          ++info_.flush_runs;
        }
      }
    }
    if (any_outbox) {
      pool.for_each(s_count, flush_dest);
      for (std::uint32_t d = 0; d < s_count; ++d) {
        info_.barrier_events += eng.flush_in[d];
        info_.cross_shard_events += eng.flush_cross[d];
      }
    }
    for (ParShard& sh : shards) sh.clear_window();
    info_.flush_ms += ms_since(t0);
  };
  const auto check_total_steps = [&] {
    std::uint64_t total = 0;
    for (const ParShard& sh : shards) total += sh.steps;
    if (total > max_events) {
      throw LogicError("ParMachine::run: exceeded max_events; runaway protocol?");
    }
  };

  // Preamble: Machine's sequential on_start loop, as pseudo-pops merged in
  // rank order (stamp = rank, everything outboxed).
  auto t0 = Clock::now();
  pool.for_each(s_count, [&shards](std::size_t s) {
    ParShard& sh = shards[s];
    for (ProcId p = sh.lo; p < sh.hi; ++p) sh.start_rank(p);
    sh.seal_outboxes();
  });
  info_.window_ms += ms_since(t0);
  barrier();

  while (true) {
    Tick next = kNoTick;
    for (ParShard& sh : shards) {
      if (!sh.q.empty()) next = std::min(next, sh.q.peek_time());
    }
    if (next == kNoTick) break;
    const Tick window_end = next + setup.lambda_ticks;
    t0 = Clock::now();
    pool.for_each(s_count, [&shards, window_end](std::size_t s) {
      shards[s].run_window(window_end);
      shards[s].seal_outboxes();
    });
    info_.window_ms += ms_since(t0);
    barrier();
    check_total_steps();
    ++info_.windows;
  }

  // Merge run accumulators into the sequential result shape.
  result.stats.tick_domain = true;
  result.stats.port_busy.assign(n, Rational(0));
  Schedule schedule;
  for (ParShard& sh : shards) {
    result.stats.events_processed += sh.stats.events_processed;
    result.stats.sends_enqueued += sh.stats.sends_enqueued;
    result.stats.sends_deferred += sh.stats.sends_deferred;
    result.stats.timers_set += sh.stats.timers_set;
    result.stats.timers_fired += sh.stats.timers_fired;
    result.stats.receives_queued += sh.stats.receives_queued;
    result.stats.max_fifo_depth =
        std::max(result.stats.max_fifo_depth, sh.stats.max_fifo_depth);
    result.faults.sends_suppressed += sh.faults.sends_suppressed;
    result.faults.drops_crash += sh.faults.drops_crash;
    result.faults.drops_loss += sh.faults.drops_loss;
    result.faults.spikes_applied += sh.faults.spikes_applied;
    for (const SendEvent& e : sh.sends) schedule.add(e);
  }
  if (trace_mode_ == TraceMode::kCounters) {
    for (const ParShard& sh : shards) {
      result.trace.counters_fold(sh.stats.events_processed,
                                 Rational(sh.max_delivery_tick, setup.q));
    }
  }
  for (std::uint64_t p = 0; p < n; ++p) {
    if (eng.port_busy_units[p] == 0) continue;
    POSTAL_CHECK(eng.port_busy_units[p] <= static_cast<std::uint64_t>(INT64_MAX));
    result.stats.port_busy[p] +=
        Rational(static_cast<std::int64_t>(eng.port_busy_units[p]));
  }
  schedule.sort();
  result.schedule = std::move(schedule);

  info_.parallel_engine = true;
  info_.shards = s_count;
  info_.replayed_pops = replay.replayed_pops;
  info_.merge_deliveries = replay.merge_deliveries;
  info_.merge_fault_events = replay.merge_fault_events;
  info_.shard.resize(s_count);
  for (std::uint32_t s = 0; s < s_count; ++s) {
    info_.shard[s].pops = shards[s].steps;
    info_.shard[s].stalled_windows = shards[s].stalled_windows;
    info_.shard[s].mailbox_in = shards[s].mailbox_in;
    info_.flush_fallback_sorts += shards[s].flush_fallback_sorts;
    info_.arena_growths += shards[s].arena_growths;
    factory.reclaim(s, std::move(shards[s].protocol));
  }
  return result;
}

}  // namespace postal
