// The sharded engine and its determinism machinery. Three pieces:
//
//  1. ParShard -- the per-lane event loop. An exact transliteration of
//     Machine's tick-domain hot path (same branch structure, same fault
//     hook order, same REQUIRE messages), except that instead of writing
//     to the global trace/fault-timeline/sequence-counter directly it
//     *logs* what each pop produced.
//
//  2. The stamp algebra. Every queued event carries a stamp standing in
//     for Machine's global push counter. Events routed through a barrier
//     carry their true global sequence number (gseq); events pushed and
//     consumed inside one window carry a provisional stamp (top bit set,
//     window-local counter). Provisional stamps compare correctly against
//     everything they can ever meet: within a shard's queue, in-window
//     pushes are strictly later (in sequential push order) than anything
//     that crossed a barrier, and the window-local counter orders them
//     among themselves exactly as the sequential engine's counter would --
//     a shard pops its own events in the same relative order the global
//     engine would, so it also pushes in that relative order (induction
//     over windows).
//
//  3. The barrier merge-replay. When a window closes, the caller k-way
//     merges the shards' pop logs by (tick, resolved stamp): the head of a
//     log with a provisional stamp always resolves, because the push that
//     created it sits earlier in the *same* log (pushed, then popped,
//     both in-window) and the merge consumes logs front to back. The merge
//     visits pops in exactly the sequential engine's pop order, so
//     replaying each entry's logged deliveries and fault events rebuilds
//     the sequential trace and fault timeline byte for byte, and handing
//     out gseqs to each entry's pushes in replay order reproduces the
//     sequential push-counter order. Outbox entries get their gseq here,
//     then flush into their destination shard's queue sorted by
//     (tick, gseq) -- the append order TickEventQueue's same-tick FIFO
//     contract requires.
//
// Window placement needs no alignment: each window is [B, B + lambda)
// with B = the global minimum pending tick, so every send started in the
// window (at start >= B, latency >= lambda ticks) arrives at or after the
// window's end -- sends *always* route through the barrier, and only
// timers and input-port requeues can land in-window. Shared per-rank
// arrays (port_free, recv_free, port_busy_units) are safe unsynchronized:
// send-side fields are indexed by the handler's own rank and receive-side
// fields by the delivering event's destination rank, and both ranks
// belong to the shard doing the write; the pool's batch join publishes
// them across windows. Loss draws are likewise shard-local per directed
// link (keyed by the sending rank), so the per-link draw counters consume
// in sequential order.
#include "sim/par_machine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>

#include "par/thread_pool.hpp"
#include "support/error.hpp"

namespace postal {

namespace {

/// Provisional stamps live above every possible gseq (gseqs count queue
/// pushes, bounded by max_events, far below 2^63).
constexpr std::uint64_t kProvBase = std::uint64_t{1} << 63;
constexpr Tick kNoTick = std::numeric_limits<Tick>::max();

/// Raised by a shard when a handler arms a timer the tick engine cannot
/// key (off the 1/q grid or out of range). The sequential Machine
/// transplants to the Rational engine mid-run; the sharded engine cannot
/// (shards have already diverged from sequential state), so the whole run
/// restarts on a fresh sequential Machine.
struct ParFallbackError : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "ParMachine: off-grid timer; rerunning sequentially";
  }
};

}  // namespace

/// One lane's event engine. Plain-struct wiring: ParMachine::run_windowed
/// sets every field, runs the windows, then reads the accumulators back.
/// Lives in this TU only; MachineContext befriends it by name.
class ParShard final : public ContextSink {
 public:
  /// ParMachine's pending-event record (Machine::Pending is private to
  /// Machine; the shard engine keeps its own, with send_start in ticks).
  struct Ev {
    enum class Kind : std::uint8_t { kFlight, kFlightFinal, kTimer };
    Kind kind = Kind::kFlight;
    ProcId src = 0;
    ProcId dst = 0;
    Packet packet;
    Tick send_start = 0;
    std::uint64_t token = 0;
  };

  /// A push that must cross a barrier: delivered to shard_of(ev.dst) once
  /// the merge has assigned its gseq.
  struct OutboxEntry {
    Tick tick = 0;
    std::uint64_t gseq = 0;  ///< filled during barrier replay
    Ev ev;
  };

  /// One productive pop in a shard's window log. `pushes`, `faults`, and
  /// `delivered` are counts into the shard's side streams (push_kinds /
  /// fevents / deliveries), consumed in order during replay. Pops that
  /// produce nothing observable (e.g. a crash-skipped timer) are not
  /// logged.
  struct PopEntry {
    Tick tick = 0;
    std::uint64_t stamp = 0;
    std::uint32_t pushes = 0;
    std::uint32_t faults = 0;
    std::uint8_t delivered = 0;
  };

  // Wiring (constant during a run).
  const PostalParams* params = nullptr;
  std::uint32_t messages = 0;
  FaultInjector* injector = nullptr;
  ProcId lo = 0;  ///< first rank owned
  ProcId hi = 0;  ///< one past last rank owned
  std::int64_t tick_q = 1;
  Tick lambda_ticks = 0;
  const std::vector<std::optional<Tick>>* crash_ticks = nullptr;
  const std::vector<SpikeTicks>* spike_ticks = nullptr;
  Tick* port_free = nullptr;                 ///< shared, written at own ranks
  Tick* recv_free = nullptr;                 ///< shared, written at own ranks
  std::uint64_t* port_busy_units = nullptr;  ///< shared, written at own ranks
  std::uint64_t max_events = 0;
  std::unique_ptr<Protocol> protocol;

  // Run-cumulative accumulators, merged by ParMachine at the end.
  TickEventQueue<Ev> q;
  Schedule schedule;
  MachineStats stats;  ///< port_busy stays empty (folded from the units array)
  FaultStats faults;   ///< counters only; the timeline is built at replay
  std::uint64_t steps = 0;
  std::uint64_t stalled_windows = 0;
  std::uint64_t mailbox_in = 0;

  // Window-local pop log and side streams (cleared after every barrier).
  std::vector<PopEntry> log;
  std::vector<std::uint8_t> push_kinds;  ///< per push: 0 = in-window, 1 = outbox
  std::vector<Delivery> deliveries;
  std::vector<FaultEvent> fevents;
  std::vector<OutboxEntry> outbox;
  std::uint64_t prov_count = 0;  ///< provisional stamps handed out this window

  /// The preamble image of Machine's on_start loop for one owned rank:
  /// a pseudo-pop at (tick 0, stamp = rank), every push routed to the
  /// outbox (window_end_ = 0), so the preamble barrier's rank-ordered
  /// merge reproduces the sequential on_start push order.
  void start_rank(ProcId p) {
    window_end_ = 0;
    cur_ = PopEntry{0, p, 0, 0, 0};
    if (injector != nullptr && injector->crashed(p, Rational(0))) return;
    MachineContext ctx(*this, p, Rational(0), 0);
    protocol->on_start(ctx);
    commit_log();
  }

  /// Drain every owned event strictly before `window_end`.
  void run_window(Tick window_end) {
    window_end_ = window_end;
    const std::uint64_t before = steps;
    while (!q.empty()) {
      const Tick t = q.peek_time();
      if (t >= window_end) break;
      q.drain_current_tick([&](std::uint64_t stamp, Ev&& ev) {
        process(t, stamp, std::move(ev));
      });
    }
    if (steps == before) ++stalled_windows;
  }

  void clear_window() {
    log.clear();
    push_kinds.clear();
    deliveries.clear();
    fevents.clear();
    outbox.clear();
    prov_count = 0;
  }

 private:
  // ContextSink: the tick-domain images of Machine::enqueue_send_ticks /
  // enqueue_timer_ticks, logging instead of globally sequencing.
  void sink_send(ProcId self, ProcId dst, const Packet& packet,
                 const Rational& now, Tick now_ticks) override {
    static_cast<void>(now);
    POSTAL_REQUIRE(dst < params->n(), "Machine: send destination out of range");
    POSTAL_REQUIRE(dst != self, "Machine: a processor cannot send to itself");
    POSTAL_REQUIRE(packet.msg < messages, "Machine: message id out of range");
    const Tick start = std::max(now_ticks, port_free[self]);
    POSTAL_CHECK(start <= kTickCap);
    if (injector != nullptr && crashed_at(self, start)) {
      ++faults.sends_suppressed;
      log_fault(FaultEvent{FaultEvent::Kind::kSendSuppressed,
                           tick_rational(start), self, dst});
      return;
    }
    port_free[self] = start + tick_q;
    ++stats.sends_enqueued;
    if (start > now_ticks) ++stats.sends_deferred;
    ++port_busy_units[self];
    const std::uint64_t depth = static_cast<std::uint64_t>(
        (port_free[self] - now_ticks + tick_q - 1) / tick_q);
    if (depth > stats.max_fifo_depth) stats.max_fifo_depth = depth;
    schedule.add(self, dst, packet.msg, tick_rational(start));
    Tick latency = lambda_ticks;
    if (injector != nullptr && injector->has_spikes()) {
      Tick extra = 0;
      for (const SpikeTicks& s : *spike_ticks) {
        if (start >= s.from && start < s.until) extra += s.extra;
      }
      if (extra > 0) {
        latency += extra;
        ++faults.spikes_applied;
        log_fault(
            FaultEvent{FaultEvent::Kind::kSpike, tick_rational(start), self, dst});
      }
    }
    if (injector != nullptr && injector->has_losses() && injector->lose(self, dst)) {
      ++faults.drops_loss;
      log_fault(FaultEvent{FaultEvent::Kind::kDropLoss,
                           tick_rational(start + latency), dst, self});
      return;
    }
    route_push(start + latency,
               Ev{Ev::Kind::kFlight, self, dst, packet, start, 0});
  }

  void sink_timer(ProcId self, const Rational& now, Tick now_ticks,
                  const Rational& delay, std::uint64_t token) override {
    static_cast<void>(now);
    ++stats.timers_set;
    const std::optional<Tick> d = TickDomain(tick_q).to_ticks(delay);
    Tick fire = 0;
    if (!d.has_value() || __builtin_add_overflow(now_ticks, *d, &fire) ||
        fire > kTickCap) {
      throw ParFallbackError{};
    }
    route_push(fire, Ev{Ev::Kind::kTimer, self, self, Packet{}, fire, token});
  }

  [[nodiscard]] const PostalParams& sink_params() const noexcept override {
    return *params;
  }

  /// One pop: Machine::run_tick_loop's switch, against the window log.
  void process(Tick time, std::uint64_t stamp, Ev&& ev) {
    if (++steps > max_events) {
      throw LogicError("ParMachine::run: exceeded max_events; runaway protocol?");
    }
    cur_ = PopEntry{time, stamp, 0, 0, 0};
    switch (ev.kind) {
      case Ev::Kind::kTimer: {
        if (injector != nullptr && crashed_at(ev.dst, time)) break;
        ++stats.timers_fired;
        MachineContext ctx(*this, ev.dst, tick_rational(time), time);
        protocol->on_timer(ctx, ev.token);
        break;
      }
      case Ev::Kind::kFlight: {
        const Tick window_start = std::max(time - tick_q, recv_free[ev.dst]);
        const Tick arrival = window_start + tick_q;
        recv_free[ev.dst] = arrival;
        if (arrival > time) {
          ++stats.receives_queued;
          Ev requeued = ev;
          requeued.kind = Ev::Kind::kFlightFinal;
          route_push(arrival, std::move(requeued));
          break;
        }
        deliver(time, ev);
        break;
      }
      case Ev::Kind::kFlightFinal:
        deliver(time, ev);
        break;
    }
    commit_log();
  }

  void deliver(Tick time, const Ev& ev) {
    if (injector != nullptr && crashed_at(ev.dst, time)) {
      ++faults.drops_crash;
      log_fault(FaultEvent{FaultEvent::Kind::kDropCrash, tick_rational(time),
                           ev.dst, ev.src});
      return;
    }
    ++stats.events_processed;
    cur_.delivered = 1;
    deliveries.push_back(Delivery{ev.src, ev.dst, ev.packet.msg,
                                  tick_rational(ev.send_start),
                                  tick_rational(time)});
    MachineContext ctx(*this, ev.dst, tick_rational(time), time);
    protocol->on_receive(ctx, ev.packet);
  }

  /// Every queue push of the sequential engine maps to exactly one call
  /// here, so replaying `pushes` per entry reproduces its seq counter.
  void route_push(Tick at, Ev&& ev) {
    ++cur_.pushes;
    if (at < window_end_) {
      push_kinds.push_back(0);
      q.push(at, kProvBase + prov_count++, std::move(ev));
    } else {
      push_kinds.push_back(1);
      outbox.push_back(OutboxEntry{at, 0, std::move(ev)});
    }
  }

  void log_fault(const FaultEvent& e) {
    fevents.push_back(e);
    ++cur_.faults;
  }

  void commit_log() {
    if (cur_.pushes != 0 || cur_.faults != 0 || cur_.delivered != 0) {
      log.push_back(cur_);
    }
  }

  [[nodiscard]] bool crashed_at(ProcId p, Tick t) const {
    const auto& c = (*crash_ticks)[p];
    return c.has_value() && t >= *c;
  }
  [[nodiscard]] Rational tick_rational(Tick t) const {
    return Rational(t, tick_q);
  }

  Tick window_end_ = 0;
  PopEntry cur_{};
};

namespace {

/// The barrier-side sequencer: merges shard pop logs into the sequential
/// pop order, rebuilding the global trace and fault timeline and handing
/// out gseqs (see file comment, piece 3). One instance per run; the
/// scratch vectors are reused across barriers.
class Replay {
 public:
  Replay(std::vector<ParShard>& shards, Trace& trace, FaultStats& faults)
      : shards_(shards), trace_(trace), faults_(faults) {
    const std::size_t s = shards_.size();
    head_.resize(s);
    fev_.resize(s);
    del_.resize(s);
    push_.resize(s);
    live_.resize(s);
    out_.resize(s);
    prov2g_.resize(s);
  }

  std::uint64_t replayed_pops = 0;

  void barrier() {
    const std::size_t s_count = shards_.size();
    for (std::size_t s = 0; s < s_count; ++s) {
      head_[s] = fev_[s] = del_[s] = push_[s] = live_[s] = out_[s] = 0;
      prov2g_[s].assign(shards_[s].prov_count, 0);
    }
    while (true) {
      // Linear head scan: the shard count is tiny (<= threads), so a heap
      // would cost more than it saves. Keys never tie -- resolved stamps
      // are distinct gseqs (or distinct ranks, at the preamble barrier).
      std::size_t best = s_count;
      Tick best_tick = 0;
      std::uint64_t best_stamp = 0;
      for (std::size_t s = 0; s < s_count; ++s) {
        const std::vector<ParShard::PopEntry>& log = shards_[s].log;
        if (head_[s] >= log.size()) continue;
        const ParShard::PopEntry& e = log[head_[s]];
        const std::uint64_t stamp = resolve(s, e.stamp);
        if (best == s_count || e.tick < best_tick ||
            (e.tick == best_tick && stamp < best_stamp)) {
          best = s;
          best_tick = e.tick;
          best_stamp = stamp;
        }
      }
      if (best == s_count) break;
      ParShard& sh = shards_[best];
      const ParShard::PopEntry& e = sh.log[head_[best]++];
      for (std::uint32_t i = 0; i < e.faults; ++i) {
        faults_.events.push_back(sh.fevents[fev_[best]++]);
      }
      if (e.delivered != 0) trace_.record(sh.deliveries[del_[best]++]);
      for (std::uint32_t i = 0; i < e.pushes; ++i) {
        const std::uint8_t kind = sh.push_kinds[push_[best]++];
        const std::uint64_t g = gseq_++;
        if (kind == 0) {
          prov2g_[best][live_[best]++] = g;
        } else {
          sh.outbox[out_[best]++].gseq = g;
        }
      }
      ++replayed_pops;
    }
  }

 private:
  /// A provisional head always resolves: the push that minted it sits in
  /// an earlier entry of the same log, already consumed front-to-back.
  [[nodiscard]] std::uint64_t resolve(std::size_t s, std::uint64_t stamp) const {
    return stamp >= kProvBase ? prov2g_[s][stamp - kProvBase] : stamp;
  }

  std::vector<ParShard>& shards_;
  Trace& trace_;
  FaultStats& faults_;
  std::uint64_t gseq_ = 0;  ///< image of Machine's push counter, run-global
  std::vector<std::size_t> head_, fev_, del_, push_, live_, out_;
  std::vector<std::vector<std::uint64_t>> prov2g_;
};

}  // namespace

ParMachine::ParMachine(PostalParams params, std::uint32_t messages)
    : params_(std::move(params)), messages_(messages) {}

void ParMachine::attach_faults(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(plan, params_.n());
}

MachineResult ParMachine::run(ShardProtocolFactory& factory,
                              std::uint64_t max_events) {
  info_ = ParRunInfo();
  if (time_path_ == TimePath::kRational) {
    return run_sequential(factory, max_events, "rational time path forced");
  }
  const std::optional<TickRunSetup> setup =
      plan_tick_run(params_, injector_.get(), max_events);
  if (!setup.has_value()) {
    return run_sequential(factory, max_events, "tick-domain admission failed");
  }
  try {
    return run_windowed(factory, *setup, max_events);
  } catch (const ParFallbackError&) {
    info_ = ParRunInfo();
    return run_sequential(factory, max_events, "off-grid timer armed mid-run");
  }
}

MachineResult ParMachine::run_sequential(ShardProtocolFactory& factory,
                                         std::uint64_t max_events,
                                         std::string reason) {
  Machine machine(params_, messages_);
  if (injector_ != nullptr) machine.attach_faults(injector_->plan());
  machine.set_time_path(time_path_);
  std::unique_ptr<Protocol> protocol = factory.make(0, 1);
  POSTAL_CHECK(protocol != nullptr);
  MachineResult result = machine.run(*protocol, max_events);
  factory.reclaim(0, std::move(protocol));
  info_.parallel_engine = false;
  info_.fallback_reason = std::move(reason);
  info_.shards = 1;
  return result;
}

MachineResult ParMachine::run_windowed(ShardProtocolFactory& factory,
                                       const TickRunSetup& setup,
                                       std::uint64_t max_events) {
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  };

  const std::uint64_t n = params_.n();
  const std::uint64_t lanes = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(threads_, n == 0 ? 1 : n));
  const std::uint64_t shard_size = n == 0 ? 1 : (n + lanes - 1) / lanes;
  const std::uint32_t s_count =
      static_cast<std::uint32_t>(n == 0 ? 1 : (n + shard_size - 1) / shard_size);
  const auto shard_of = [shard_size](ProcId p) {
    return static_cast<std::uint32_t>(p / shard_size);
  };

  std::vector<Tick> port_free(n, 0);
  std::vector<Tick> recv_free(n, 0);
  std::vector<std::uint64_t> port_busy_units(n, 0);

  MachineResult result;
  result.trace = Trace(n, messages_);

  std::vector<ParShard> shards(s_count);
  for (std::uint32_t s = 0; s < s_count; ++s) {
    ParShard& sh = shards[s];
    sh.params = &params_;
    sh.messages = messages_;
    sh.injector = injector_.get();
    sh.lo = static_cast<ProcId>(s * shard_size);
    sh.hi = static_cast<ProcId>(std::min<std::uint64_t>(n, (s + 1) * shard_size));
    sh.tick_q = setup.q;
    sh.lambda_ticks = setup.lambda_ticks;
    sh.crash_ticks = &setup.crash_ticks;
    sh.spike_ticks = &setup.spike_ticks;
    sh.port_free = port_free.data();
    sh.recv_free = recv_free.data();
    sh.port_busy_units = port_busy_units.data();
    sh.max_events = max_events;
    sh.stats.tick_domain = true;
    sh.protocol = factory.make(s, s_count);
    POSTAL_CHECK(sh.protocol != nullptr);
  }

  if (injector_ != nullptr) {
    injector_->reset();
    for (ProcId p = 0; p < n; ++p) {
      const auto& c = injector_->crash_time(p);
      if (c.has_value()) {
        ++result.faults.crashes_applied;
        result.faults.events.push_back(
            FaultEvent{FaultEvent::Kind::kCrash, *c, p, p});
      }
    }
  }

  Replay replay(shards, result.trace, result.faults);
  par::ThreadPool pool(static_cast<unsigned>(lanes));

  // Per-destination-shard mailbox staging, reused across barriers.
  std::vector<std::vector<ParShard::OutboxEntry>> mailbox(s_count);
  const auto flush_outboxes = [&] {
    for (std::uint32_t s = 0; s < s_count; ++s) {
      for (ParShard::OutboxEntry& e : shards[s].outbox) {
        const std::uint32_t d = shard_of(e.ev.dst);
        if (d != s) ++info_.cross_shard_events;
        ++info_.barrier_events;
        mailbox[d].push_back(std::move(e));
      }
    }
    for (std::uint32_t d = 0; d < s_count; ++d) {
      std::vector<ParShard::OutboxEntry>& in = mailbox[d];
      if (in.empty()) continue;
      // (tick, gseq) append order satisfies the queue's same-tick FIFO
      // contract; every tick is >= the window end, hence >= the cursor.
      std::sort(in.begin(), in.end(),
                [](const ParShard::OutboxEntry& a, const ParShard::OutboxEntry& b) {
                  if (a.tick != b.tick) return a.tick < b.tick;
                  return a.gseq < b.gseq;
                });
      shards[d].mailbox_in += in.size();
      for (ParShard::OutboxEntry& e : in) {
        shards[d].q.push(e.tick, e.gseq, std::move(e.ev));
      }
      in.clear();
    }
    for (ParShard& sh : shards) sh.clear_window();
  };
  const auto check_total_steps = [&] {
    std::uint64_t total = 0;
    for (const ParShard& sh : shards) total += sh.steps;
    if (total > max_events) {
      throw LogicError("ParMachine::run: exceeded max_events; runaway protocol?");
    }
  };

  // Preamble: Machine's sequential on_start loop, as pseudo-pops merged in
  // rank order (stamp = rank, everything outboxed).
  auto t0 = Clock::now();
  pool.for_each(s_count, [&shards](std::size_t s) {
    ParShard& sh = shards[s];
    for (ProcId p = sh.lo; p < sh.hi; ++p) sh.start_rank(p);
  });
  info_.window_ms += ms_since(t0);
  t0 = Clock::now();
  replay.barrier();
  flush_outboxes();
  info_.merge_ms += ms_since(t0);

  while (true) {
    Tick next = kNoTick;
    for (ParShard& sh : shards) {
      if (!sh.q.empty()) next = std::min(next, sh.q.peek_time());
    }
    if (next == kNoTick) break;
    const Tick window_end = next + setup.lambda_ticks;
    t0 = Clock::now();
    pool.for_each(s_count, [&shards, window_end](std::size_t s) {
      shards[s].run_window(window_end);
    });
    info_.window_ms += ms_since(t0);
    t0 = Clock::now();
    replay.barrier();
    flush_outboxes();
    check_total_steps();
    info_.merge_ms += ms_since(t0);
    ++info_.windows;
  }

  // Merge run accumulators into the sequential result shape.
  result.stats.tick_domain = true;
  result.stats.port_busy.assign(n, Rational(0));
  Schedule schedule;
  for (ParShard& sh : shards) {
    result.stats.events_processed += sh.stats.events_processed;
    result.stats.sends_enqueued += sh.stats.sends_enqueued;
    result.stats.sends_deferred += sh.stats.sends_deferred;
    result.stats.timers_set += sh.stats.timers_set;
    result.stats.timers_fired += sh.stats.timers_fired;
    result.stats.receives_queued += sh.stats.receives_queued;
    result.stats.max_fifo_depth =
        std::max(result.stats.max_fifo_depth, sh.stats.max_fifo_depth);
    result.faults.sends_suppressed += sh.faults.sends_suppressed;
    result.faults.drops_crash += sh.faults.drops_crash;
    result.faults.drops_loss += sh.faults.drops_loss;
    result.faults.spikes_applied += sh.faults.spikes_applied;
    for (const SendEvent& e : sh.schedule.events()) schedule.add(e);
  }
  for (std::uint64_t p = 0; p < n; ++p) {
    if (port_busy_units[p] == 0) continue;
    POSTAL_CHECK(port_busy_units[p] <= static_cast<std::uint64_t>(INT64_MAX));
    result.stats.port_busy[p] +=
        Rational(static_cast<std::int64_t>(port_busy_units[p]));
  }
  schedule.sort();
  result.schedule = std::move(schedule);

  info_.parallel_engine = true;
  info_.shards = s_count;
  info_.replayed_pops = replay.replayed_pops;
  info_.shard.resize(s_count);
  for (std::uint32_t s = 0; s < s_count; ++s) {
    info_.shard[s].pops = shards[s].steps;
    info_.shard[s].stalled_windows = shards[s].stalled_windows;
    info_.shard[s].mailbox_in = shards[s].mailbox_in;
    factory.reclaim(s, std::move(shards[s].protocol));
  }
  return result;
}

}  // namespace postal
