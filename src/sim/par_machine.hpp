// Sharded event-driven MPS(n, lambda) runtime: the parallel twin of
// sim::Machine (docs/SIMULATION.md, docs/ARCHITECTURE.md).
//
// The postal model is its own lookahead oracle: a message sent at time t
// arrives at t + lambda at the earliest, so once every processor has been
// simulated up to some time B, no cross-processor interaction can occur
// before B + lambda. ParMachine exploits exactly that. Ranks are
// partitioned into contiguous shards, each shard runs the tick-domain
// event loop (the same integer-time hot path as Machine, via the shared
// ContextSink seam and TickEventQueue::drain_current_tick batched pops) on
// a par::ThreadPool lane, and shards synchronize at a barrier every
// lambda ticks: sends land in per-destination-shard mailboxes that are
// drained -- in globally deterministic order -- when the window closes.
// This is classic conservative (null-message) parallel discrete-event
// simulation with the model's latency as the lookahead.
//
// Determinism contract (the point of the design): a ParMachine run is
// byte-identical to the sequential Machine run of the same protocol --
// same Schedule, same Trace deliveries in the same order, same stats, same
// fault timeline -- at *every* thread count, not just threads == 1. The
// barrier replays each window's per-shard pop logs through a k-way merge
// that reconstructs the exact global pop order the sequential engine would
// have used (see par_machine.cpp for the stamp algebra), so the shard
// count is unobservable in the result. tests/paper/par_differential_test
// enforces this across the protocol families, fault plans, and thread
// counts.
//
// Runs the sharded engine only where the tick-domain fast path is
// admitted (sim/tick_setup.hpp); Rational-time runs and runs that arm
// off-grid timers mid-flight fall back to a fresh sequential Machine run,
// reported in last_run_info().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/machine.hpp"

namespace postal {

/// Makes one Protocol instance per shard. ParMachine cannot share a single
/// Protocol across lanes: the paper protocols are thread-compatible but
/// not thread-safe (GenFib memoizes, handlers keep per-run scratch), so
/// each shard drives its own instance. Handlers only ever see events for
/// ranks the shard owns, and any per-rank state a protocol keeps is only
/// touched through those ranks, so per-shard instances compose into
/// exactly the sequential behavior.
class ShardProtocolFactory {
 public:
  virtual ~ShardProtocolFactory() = default;

  /// Create the instance shard `shard` of `shards` will run. Called once
  /// per shard per run; implementations must return equivalently-behaving
  /// instances (same construction parameters) for a deterministic result.
  [[nodiscard]] virtual std::unique_ptr<Protocol> make(std::uint32_t shard,
                                                       std::uint32_t shards) = 0;

  /// Hands each instance back after the run, before run() returns, so
  /// callers can harvest per-run protocol state. Any counter a protocol
  /// keeps is incremented from exactly one rank's handler, so summing it
  /// across reclaimed instances yields the sequential-run total (this is
  /// how run_reliable_bcast folds ReliableBcastCounters). On a sequential
  /// fallback the single instance arrives as shard 0 of 1. Not called if
  /// run() throws. Default: discard.
  virtual void reclaim(std::uint32_t shard, std::unique_ptr<Protocol> protocol) {
    static_cast<void>(shard);
    static_cast<void>(protocol);
  }
};

/// ShardProtocolFactory for the common case: every shard gets `P`
/// constructed from the same argument tuple.
template <typename P, typename... Args>
class ProtocolFactory final : public ShardProtocolFactory {
 public:
  explicit ProtocolFactory(Args... args) : args_(std::move(args)...) {}

  [[nodiscard]] std::unique_ptr<Protocol> make(std::uint32_t /*shard*/,
                                               std::uint32_t /*shards*/) override {
    return std::apply(
        [](const Args&... a) { return std::make_unique<P>(a...); }, args_);
  }

 private:
  std::tuple<Args...> args_;
};

/// Deduce the factory's stored-argument types from the call site:
/// `auto f = make_protocol_factory<BcastProtocol>(params, origin);`.
template <typename P, typename... Args>
[[nodiscard]] ProtocolFactory<P, std::decay_t<Args>...> make_protocol_factory(
    Args&&... args) {
  return ProtocolFactory<P, std::decay_t<Args>...>(std::forward<Args>(args)...);
}

/// Per-shard observability of one sharded run (obs::record_par_run).
struct ParShardInfo {
  std::uint64_t pops = 0;             ///< events this shard's loop popped
  /// Windows in which this shard popped nothing: it sat at the barrier the
  /// whole window. The deterministic proxy for barrier-stall time (wall
  /// clock would vary run to run; this is a property of the workload).
  std::uint64_t stalled_windows = 0;
  std::uint64_t mailbox_in = 0;       ///< events received at barriers
};

/// What the last ParMachine::run did, for metrics and tests.
struct ParRunInfo {
  /// True iff the sharded engine produced the result; false means a
  /// sequential-Machine fallback ran (see fallback_reason).
  bool parallel_engine = false;
  std::string fallback_reason;        ///< empty when parallel_engine
  std::uint32_t shards = 0;
  std::uint64_t windows = 0;          ///< lambda-lookahead windows executed
  std::uint64_t barrier_events = 0;   ///< events routed through mailboxes
  std::uint64_t cross_shard_events = 0;  ///< subset that changed shard
  std::uint64_t replayed_pops = 0;    ///< pop-log entries merged at barriers
  /// Deliveries / fault events materialized by the barrier replay (the
  /// work the parallel materialization pass moved off the sequential
  /// merge; obs: par.merge_deliveries / par.merge_fault_events).
  std::uint64_t merge_deliveries = 0;
  std::uint64_t merge_fault_events = 0;
  /// Sealed per-(source, destination) outbox runs merged at barriers, and
  /// the subset whose tick span overflowed the counting buckets and fell
  /// back to a comparison sort (preamble backlog, extreme spikes).
  std::uint64_t flush_runs = 0;
  std::uint64_t flush_fallback_sorts = 0;
  /// Window-buffer capacity growths observed across the run. Buffers are
  /// retained across windows *and* across run() calls on one ParMachine,
  /// so a warm rerun reports 0 here: the steady state allocates nothing
  /// per window (bench_micro proves it).
  std::uint64_t arena_growths = 0;
  double window_ms = 0.0;             ///< wall time in parallel windows (drain + seal)
  double merge_ms = 0.0;              ///< wall time in barrier merge-replay
  double flush_ms = 0.0;              ///< wall time flushing mailboxes to shard queues
  TraceMode trace_mode = TraceMode::kFull;  ///< retention mode of the run
  std::vector<ParShardInfo> shard;    ///< sized `shards` when parallel
};

/// The sharded runtime. Mirrors Machine's configuration surface; run()
/// takes a factory instead of a Protocol& (one instance per shard).
class ParMachine {
 public:
  /// `messages` sizes the trace; handlers may send ids in [0, messages).
  ParMachine(PostalParams params, std::uint32_t messages);
  ~ParMachine();

  ParMachine(const ParMachine&) = delete;
  ParMachine& operator=(const ParMachine&) = delete;

  /// Arm `plan` for subsequent run() calls (validates it against n; copies
  /// it). Attaching an empty plan is equivalent to attaching none.
  void attach_faults(const FaultPlan& plan);
  void detach_faults() noexcept { injector_.reset(); }
  [[nodiscard]] bool has_faults() const noexcept { return injector_ != nullptr; }

  /// Time representation (docs/PERFORMANCE.md). kRational forces the
  /// sequential reference engine: the sharded loops are tick-domain only.
  void set_time_path(TimePath path) noexcept { time_path_ = path; }
  [[nodiscard]] TimePath time_path() const noexcept { return time_path_; }

  /// Trace retention for subsequent runs (sim/trace.hpp): kFull (default)
  /// keeps every Delivery byte-identical to the sequential Machine;
  /// kCounters elides the delivery list (first arrivals, delivery count,
  /// and makespan are still exact) and skips the barrier's delivery
  /// materialization entirely.
  void set_trace_mode(TraceMode mode) noexcept { trace_mode_ = mode; }
  [[nodiscard]] TraceMode trace_mode() const noexcept { return trace_mode_; }

  /// Shard/lane count for subsequent runs (clamped to >= 1; also capped to
  /// n at run time so no shard is empty). The result is identical at every
  /// setting; only wall clock and last_run_info() change.
  void set_threads(unsigned threads) noexcept {
    threads_ = threads == 0 ? 1 : threads;
  }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Run one protocol instance per shard to global quiescence. Semantics,
  /// preconditions, and failure modes match Machine::run; the LogicError
  /// for exceeding `max_events` may surface at the next barrier rather
  /// than at the exact offending event (docs/SIMULATION.md).
  [[nodiscard]] MachineResult run(ShardProtocolFactory& factory,
                                  std::uint64_t max_events = 1ULL << 22);

  /// Introspection of the most recent run() (valid until the next run).
  [[nodiscard]] const ParRunInfo& last_run_info() const noexcept { return info_; }

 private:
  MachineResult run_windowed(ShardProtocolFactory& factory,
                             const TickRunSetup& setup, std::uint64_t max_events);
  MachineResult run_sequential(ShardProtocolFactory& factory,
                               std::uint64_t max_events, std::string reason);

  PostalParams params_;
  std::uint32_t messages_;
  std::unique_ptr<FaultInjector> injector_;
  TimePath time_path_ = TimePath::kAuto;
  TraceMode trace_mode_ = TraceMode::kFull;
  unsigned threads_ = 1;
  ParRunInfo info_;
  /// Arena-backed engine state (shards, queues, window buffers, replay
  /// scratch, thread pool), retained across run() calls so steady-state
  /// windows allocate nothing (sim/par_machine.cpp). Lazily built by the
  /// first windowed run; every buffer is reset -- capacity kept -- at the
  /// start of each run, so back-to-back runs stay byte-identical.
  struct Engine;
  std::unique_ptr<Engine> engine_;
};

}  // namespace postal
