#include "sim/protocols/reliable_bcast.hpp"

#include <algorithm>
#include <memory>

#include "sim/par_machine.hpp"
#include "support/error.hpp"

namespace postal {
namespace {

// Wire encoding. Both kinds carry the sender in ctl_a's high half (the
// postal model has no implicit sender on delivery). DATA additionally
// carries the recipient's assigned range [lo, hi) -- lo in ctl_a's low
// half, hi in ctl_b. Ranges always have hi >= 1, and ACKs set ctl_b = 0,
// so ctl_b discriminates the two kinds. Requires n <= 2^32.
constexpr std::uint64_t kLoMask = 0xffffffffULL;

Packet make_data(ProcId sender, std::uint64_t lo, std::uint64_t hi) {
  return Packet{/*msg=*/0, (static_cast<std::uint64_t>(sender) << 32) | lo, hi};
}

Packet make_ack(ProcId sender) {
  return Packet{/*msg=*/0, static_cast<std::uint64_t>(sender) << 32, 0};
}

// Factory for the sharded runner: one ReliableBcastProtocol per shard,
// counters folded back on reclaim. Each counter increments inside exactly
// one rank's handler, and a rank's handlers run on the shard that owns it,
// so the per-shard sums equal the sequential run's totals.
class ReliableBcastFactory final : public ShardProtocolFactory {
 public:
  ReliableBcastFactory(const PostalParams& params,
                       const ReliableBcastOptions& options)
      : params_(params), options_(options) {}

  [[nodiscard]] std::unique_ptr<Protocol> make(std::uint32_t /*shard*/,
                                               std::uint32_t /*shards*/) override {
    return std::make_unique<ReliableBcastProtocol>(params_, options_);
  }

  void reclaim(std::uint32_t /*shard*/,
               std::unique_ptr<Protocol> protocol) override {
    const ReliableBcastCounters& c =
        static_cast<const ReliableBcastProtocol&>(*protocol).counters();
    counters_.data_sends += c.data_sends;
    counters_.retransmissions += c.retransmissions;
    counters_.acks_sent += c.acks_sent;
    counters_.acks_received += c.acks_received;
    counters_.timeouts += c.timeouts;
    counters_.dead_declared += c.dead_declared;
    counters_.repairs += c.repairs;
  }

  [[nodiscard]] const ReliableBcastCounters& counters() const noexcept {
    return counters_;
  }

 private:
  const PostalParams& params_;
  const ReliableBcastOptions& options_;
  ReliableBcastCounters counters_;
};

}  // namespace

ReliableBcastProtocol::ReliableBcastProtocol(const PostalParams& params,
                                             ReliableBcastOptions options)
    : origin_(0),
      lambda_(params.lambda()),
      fib_(params.lambda()),
      options_(options),
      state_(params.n()) {
  POSTAL_REQUIRE(params.n() <= (1ULL << 32),
                 "ReliableBcastProtocol: packet encoding requires n <= 2^32");
  POSTAL_REQUIRE(options_.max_attempts >= 1,
                 "ReliableBcastProtocol: max_attempts must be >= 1");
  POSTAL_REQUIRE(options_.timeout_slack >= Rational(0),
                 "ReliableBcastProtocol: timeout_slack must be >= 0");
}

Rational ReliableBcastProtocol::do_send(MachineContext& ctx, ProcId dst,
                                        const Packet& packet) {
  // Mirror the machine's output-port FIFO so the exact transmission start
  // is known locally (timers are armed relative to it).
  ProcState& st = state_[ctx.self()];
  const Rational start = rmax(ctx.now(), st.port_free);
  st.port_free = start + Rational(1);
  ctx.send(dst, packet);
  return start;
}

Rational ReliableBcastProtocol::timeout_base(std::uint64_t m) {
  // From the DATA send start: lambda for the flight, f_lambda(m) for the
  // child to finish its subtree, ~2 f_lambda(m) for the aggregate-ack
  // convergecast back up (each return hop costs lambda, plus input-port
  // serialization when sibling acks collide). 3 f + 2 lambda + slack
  // provably over-covers the fault-free case; the tests assert zero
  // timeouts fire early.
  const Rational fm = fib_.f(std::max<std::uint64_t>(m, 1));
  return fm * Rational(3) + lambda_ * Rational(2) + options_.timeout_slack;
}

ReliableBcastProtocol::ChildSlot* ReliableBcastProtocol::find_slot(
    ProcId self, ProcId child) {
  for (ChildSlot& slot : state_[self].children) {
    if (slot.child == child) return &slot;
  }
  return nullptr;
}

void ReliableBcastProtocol::send_data(MachineContext& ctx, ProcId child,
                                      std::uint64_t lo, std::uint64_t hi) {
  ProcState& st = state_[ctx.self()];
  st.children.push_back(
      ChildSlot{child, lo, hi, /*attempts=*/1, SlotState::kPending});
  ++counters_.data_sends;
  const Rational start = do_send(ctx, child, make_data(ctx.self(), lo, hi));
  ctx.set_timer(start + timeout_base(hi - lo) - ctx.now(),
                static_cast<std::uint64_t>(child));
}

void ReliableBcastProtocol::spawn_children(MachineContext& ctx,
                                           std::uint64_t hi) {
  // Algorithm BCAST's generalized-Fibonacci splits of [self, hi), exactly
  // as in BcastProtocol -- fault-free, the resulting schedule is
  // event-for-event the optimal one -- but every delegation is tracked.
  const std::uint64_t self = ctx.self();
  std::uint64_t count = hi - self;
  while (count >= 2) {
    const std::uint64_t j = fib_.bcast_split(count);
    const std::uint64_t target = self + j;
    send_data(ctx, static_cast<ProcId>(target), target, hi);
    hi = target;  // the holder keeps [self, self + j)
    count = j;
  }
}

void ReliableBcastProtocol::maybe_ack(MachineContext& ctx) {
  // Aggregate ack: only once the entire assigned subtree is resolved may
  // the waiting parents be acked. Acking earlier would let a relay that
  // acks and then crashes before forwarding silently orphan its subtree.
  ProcState& st = state_[ctx.self()];
  if (!st.has_data || st.waiting.empty()) return;
  for (const ChildSlot& slot : st.children) {
    if (slot.state == SlotState::kPending) return;
  }
  for (const ProcId parent : st.waiting) {
    ++counters_.acks_sent;
    do_send(ctx, parent, make_ack(ctx.self()));
  }
  st.waiting.clear();
}

void ReliableBcastProtocol::on_start(MachineContext& ctx) {
  if (ctx.self() != origin_) return;
  ProcState& st = state_[origin_];
  st.has_data = true;
  st.hi = ctx.params().n();
  spawn_children(ctx, st.hi);
}

void ReliableBcastProtocol::on_receive(MachineContext& ctx,
                                       const Packet& packet) {
  const ProcId self = ctx.self();
  const ProcId sender = static_cast<ProcId>(packet.ctl_a >> 32);
  if (packet.ctl_b == 0) {
    // ACK: the sender's whole subtree is resolved.
    ++counters_.acks_received;
    if (ChildSlot* slot = find_slot(self, sender)) {
      if (slot->state != SlotState::kAcked) {
        slot->state = SlotState::kAcked;
        maybe_ack(ctx);
      }
    }
    return;
  }

  // DATA assigning [lo, hi) == [self, hi).
  const std::uint64_t hi = packet.ctl_b;
  POSTAL_CHECK((packet.ctl_a & kLoMask) == self);
  ProcState& st = state_[self];
  if (!st.has_data) {
    st.has_data = true;
    st.hi = hi;
    spawn_children(ctx, hi);
  } else if (hi > st.hi) {
    // Range extension (a repair handed this processor a wider remainder
    // than it already owns): only the new tail [old_hi, hi) needs work;
    // delegate it to its head, which splits it optimally.
    const std::uint64_t old_hi = st.hi;
    st.hi = hi;
    ++counters_.repairs;
    send_data(ctx, static_cast<ProcId>(old_hi), old_hi, hi);
  }
  // Owe the sender an ack (duplicates from retransmissions are answered
  // once the subtree resolves; an already-done processor re-acks at once).
  if (std::find(st.waiting.begin(), st.waiting.end(), sender) ==
      st.waiting.end()) {
    st.waiting.push_back(sender);
  }
  maybe_ack(ctx);
}

void ReliableBcastProtocol::on_timer(MachineContext& ctx, std::uint64_t token) {
  const ProcId self = ctx.self();
  const ProcId child = static_cast<ProcId>(token);
  ChildSlot* slot = find_slot(self, child);
  if (slot == nullptr || slot->state != SlotState::kPending) return;
  ++counters_.timeouts;

  if (slot->attempts >= options_.max_attempts) {
    // Give up on the child and repair: it owned [lo, hi); re-root the
    // orphaned remainder [lo + 1, hi) at processor lo + 1. If that one is
    // dead too, its own timeout repairs with [lo + 2, hi), and so on.
    slot->state = SlotState::kDead;
    ++counters_.dead_declared;
    const std::uint64_t lo = slot->lo;
    const std::uint64_t hi = slot->hi;
    if (lo + 1 < hi) {
      ++counters_.repairs;
      // Invalidates `slot` (push_back) -- locals only from here.
      send_data(ctx, static_cast<ProcId>(lo + 1), lo + 1, hi);
    } else {
      // Nothing left to salvage; the slot's resolution may complete us.
      maybe_ack(ctx);
    }
    return;
  }

  // Retransmit with exponentially growing patience.
  ++slot->attempts;
  ++counters_.retransmissions;
  const Rational start =
      do_send(ctx, child, make_data(self, slot->lo, slot->hi));
  const std::uint32_t shift = std::min<std::uint32_t>(slot->attempts - 1, 20);
  const Rational patience =
      timeout_base(slot->hi - slot->lo) * Rational(std::int64_t{1} << shift);
  ctx.set_timer(start + patience - ctx.now(), token);
}

ReliableBcastReport run_reliable_bcast(const PostalParams& params,
                                       const FaultPlan* plan,
                                       const ReliableBcastOptions& options) {
  ReliableBcastReport report;
  if (options.threads > 1) {
    ParMachine machine(params, /*messages=*/1);
    machine.set_time_path(options.time_path);
    machine.set_threads(options.threads);
    machine.set_trace_mode(options.trace_mode);
    if (plan != nullptr) machine.attach_faults(*plan);
    ReliableBcastFactory factory(params, options);
    report.result = machine.run(factory);
    report.counters = factory.counters();
  } else {
    Machine machine(params, /*messages=*/1);
    machine.set_time_path(options.time_path);
    machine.set_trace_mode(options.trace_mode);
    if (plan != nullptr) machine.attach_faults(*plan);
    ReliableBcastProtocol protocol(params, options);
    report.result = machine.run(protocol);
    report.counters = protocol.counters();
  }

  GenFib fib(params.lambda());
  report.baseline = params.n() >= 2 ? fib.f(params.n()) : Rational(0);

  const std::uint64_t n = params.n();
  std::vector<bool> crashed(n, false);
  if (plan != nullptr) {
    for (const CrashFault& c : plan->crashes) {
      if (c.proc < n && !crashed[c.proc]) {
        crashed[c.proc] = true;
        report.crashed.push_back(c.proc);
      }
    }
    std::sort(report.crashed.begin(), report.crashed.end());
  }

  // Coverage and completion are judged from the trace (actual deliveries),
  // never from the schedule: a lost transmission is in the schedule but
  // delivered nothing.
  report.completion = Rational(0);
  for (ProcId p = 1; p < n; ++p) {
    if (crashed[p]) continue;
    const auto arrival = report.result.trace.arrival(p, 0);
    if (!arrival.has_value()) {
      report.uncovered_alive.push_back(p);
    } else if (*arrival > report.completion) {
      report.completion = *arrival;
    }
  }
  report.covered = report.uncovered_alive.empty();
  report.recovery_overhead = report.completion > report.baseline
                                 ? report.completion - report.baseline
                                 : Rational(0);

  ValidatorOptions vopts;
  vopts.messages = 1;
  vopts.fifo_receive = true;
  vopts.time_path = options.time_path;
  if (plan != nullptr) vopts.crashes = plan->crashes;
  report.validation =
      validate_schedule(report.result.schedule, params, vopts);
  return report;
}

}  // namespace postal
