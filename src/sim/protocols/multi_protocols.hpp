// Event-driven forms of the Section 4.2 multi-message algorithms. The
// paper emphasizes that REPEAT, PACK, and PIPELINE are "practical
// event-driven algorithms that preserve the order of messages": every
// processor acts only on its own start or on message arrivals, with the
// range it is responsible for carried in the packet's control words, and
// all timing emerging from the Machine's output-port FIFO.
//
// Cross-validation (tests/sim/multi_protocols_test.cpp):
//  * PACK and PIPELINE-1/2 protocols produce event-identical schedules to
//    the analytic generators in src/sched.
//  * The literal event-driven REPEAT ("p0 starts the next iteration
//    immediately after sending the last copy") matches Lemma 10 exactly
//    for integer lambda; for fractional lambda the root's send chain can
//    be shorter than f - (lambda-1), so the event-driven run is sometimes
//    *faster* than Lemma 10's schedule while remaining valid -- see the
//    E14 compaction study.
#pragma once

#include <cstdint>
#include <vector>

#include "model/genfib.hpp"
#include "sim/machine.hpp"

namespace postal {

/// Event-driven REPEAT: the root enqueues the BCAST send chain of each
/// message back to back; every recipient re-broadcasts each message over
/// the range carried in its packet.
class RepeatProtocol final : public Protocol {
 public:
  RepeatProtocol(const PostalParams& params, std::uint32_t m);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;

 private:
  std::uint32_t m_;
  GenFib fib_;
};

/// Event-driven PACK: a processor forwards nothing until all m messages of
/// the long message have arrived, then relays the whole block along its
/// BCAST(lambda') chain.
class PackProtocol final : public Protocol {
 public:
  PackProtocol(const PostalParams& params, std::uint32_t m);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;

 private:
  void relay_block(MachineContext& ctx, std::uint64_t lo, std::uint64_t hi);

  std::uint32_t m_;
  GenFib fib_;  // at lambda' = 1 + (lambda-1)/m
  std::vector<std::uint32_t> received_;
  std::vector<std::uint64_t> range_hi_;
};

/// Event-driven PIPELINE-1 (m <= lambda): each processor forwards every
/// piece to its first chain target the instant it arrives, and replays the
/// full stream to its remaining targets once the stream is complete.
class Pipeline1Protocol final : public Protocol {
 public:
  Pipeline1Protocol(const PostalParams& params, std::uint32_t m);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;

 private:
  std::uint32_t m_;
  GenFib fib_;  // at lambda' = lambda/m
  std::vector<std::uint64_t> range_hi_;
};

/// Event-driven PIPELINE-2 (m >= lambda): like PIPELINE-1, but with the
/// paper's role reversal -- the chain targets are computed by the swapped
/// recursion (the stream recipient takes the continuing-sender role).
class Pipeline2Protocol final : public Protocol {
 public:
  Pipeline2Protocol(const PostalParams& params, std::uint32_t m);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;

 private:
  std::uint32_t m_;
  GenFib fib_;  // at lambda' = m/lambda
  std::vector<std::uint64_t> range_hi_;
};

}  // namespace postal
