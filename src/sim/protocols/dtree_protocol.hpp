// The event-driven form of Algorithm DTREE: the root pushes M_1..M_m to its
// children in left-to-right order; every non-root processor relays each
// received message to its own children left to right. All timing emerges
// from the Machine's output-port FIFO -- no processor needs a clock or any
// global knowledge beyond the (static) tree.
#pragma once

#include "sched/broadcast_tree.hpp"
#include "sim/machine.hpp"

namespace postal {

/// Event-driven DTREE broadcast of m messages over the almost-full
/// degree-d tree rooted at processor 0.
class DTreeProtocol final : public Protocol {
 public:
  DTreeProtocol(const PostalParams& params, std::uint32_t m, std::uint64_t d);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;

 private:
  void relay(MachineContext& ctx, MsgId msg);

  std::uint32_t m_;
  BroadcastTree tree_;
};

}  // namespace postal
