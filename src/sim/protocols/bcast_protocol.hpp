// The event-driven form of Algorithm BCAST, exactly as the paper states it:
// a processor, upon receiving message M together with the range of
// processors it is now responsible for, immediately starts broadcasting to
// that range -- computing the split j = F_lambda(f_lambda(n')-1) locally
// and handing the trailing sub-range to each recipient inside the packet's
// control words.
//
// Running this protocol on the Machine reproduces, event by event, the
// schedule bcast_schedule() generates analytically (asserted in the tests).
#pragma once

#include "model/genfib.hpp"
#include "sim/machine.hpp"

namespace postal {

/// Event-driven BCAST of a single message (id 0) from processor `origin`.
class BcastProtocol final : public Protocol {
 public:
  explicit BcastProtocol(const PostalParams& params, ProcId origin = 0);

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;

 private:
  /// The paper's step (a)/(b): broadcast to the range [lo, hi) with `self`
  /// == lo holding the message now.
  void broadcast_range(MachineContext& ctx, std::uint64_t lo, std::uint64_t hi);

  ProcId origin_;
  GenFib fib_;
};

}  // namespace postal
