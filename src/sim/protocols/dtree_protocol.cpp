#include "sim/protocols/dtree_protocol.hpp"

namespace postal {

DTreeProtocol::DTreeProtocol(const PostalParams& params, std::uint32_t m,
                             std::uint64_t d)
    : m_(m), tree_(BroadcastTree::dary(params.n(), d)) {
  POSTAL_REQUIRE(m >= 1, "DTreeProtocol: m must be >= 1");
}

void DTreeProtocol::on_start(MachineContext& ctx) {
  if (ctx.self() != tree_.root()) return;
  for (MsgId msg = 0; msg < m_; ++msg) relay(ctx, msg);
}

void DTreeProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  relay(ctx, packet.msg);
}

void DTreeProtocol::relay(MachineContext& ctx, MsgId msg) {
  for (const ProcId child : tree_.children(ctx.self())) {
    ctx.send(child, Packet{msg, 0, 0});
  }
}

}  // namespace postal
