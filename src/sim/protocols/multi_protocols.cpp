#include "sim/protocols/multi_protocols.hpp"

namespace postal {

namespace {

/// Enqueue the BCAST holder chain for one message over [lo, hi): each
/// packet hands the recipient the trailing sub-range it now owns.
void bcast_chain(MachineContext& ctx, GenFib& fib, std::uint64_t lo, std::uint64_t hi,
                 MsgId msg) {
  std::uint64_t count = hi - lo;
  while (count >= 2) {
    const std::uint64_t j = fib.bcast_split(count);
    const std::uint64_t target = lo + j;
    ctx.send(static_cast<ProcId>(target), Packet{msg, target, hi});
    hi = target;
    count = j;
  }
}

/// The BCAST chain targets of [lo, hi) under `fib`, with each target's
/// sub-range upper end. Used by the stream protocols.
struct ChainEdge {
  std::uint64_t target;
  std::uint64_t hi;
};

std::vector<ChainEdge> bcast_chain_edges(GenFib& fib, std::uint64_t lo,
                                         std::uint64_t hi) {
  std::vector<ChainEdge> edges;
  std::uint64_t count = hi - lo;
  while (count >= 2) {
    const std::uint64_t j = fib.bcast_split(count);
    const std::uint64_t target = lo + j;
    edges.push_back(ChainEdge{target, hi});
    hi = target;
    count = j;
  }
  return edges;
}

/// The role-reversed chain of PIPELINE-2: the k-th stream goes to the
/// processor that takes the *continuing-sender* role, which sits at
/// lo + (count - j) and owns the trailing sub-range of size j.
std::vector<ChainEdge> pl2_chain_edges(GenFib& fib, std::uint64_t lo,
                                       std::uint64_t hi) {
  std::vector<ChainEdge> edges;
  std::uint64_t count = hi - lo;
  while (count >= 2) {
    const std::uint64_t j = fib.bcast_split(count);
    const std::uint64_t target = lo + (count - j);
    edges.push_back(ChainEdge{target, lo + count});
    count -= j;
  }
  return edges;
}

}  // namespace

// ---------------------------------------------------------------------------
// REPEAT
// ---------------------------------------------------------------------------

RepeatProtocol::RepeatProtocol(const PostalParams& params, std::uint32_t m)
    : m_(m), fib_(params.lambda()) {
  POSTAL_REQUIRE(m >= 1, "RepeatProtocol: m must be >= 1");
}

void RepeatProtocol::on_start(MachineContext& ctx) {
  if (ctx.self() != 0) return;
  // "Processor p0 starts the i-th iteration immediately after it sends the
  // last copy of message M_{i-1}": back-to-back enqueue on the output port.
  for (MsgId msg = 0; msg < m_; ++msg) {
    bcast_chain(ctx, fib_, 0, ctx.params().n(), msg);
  }
}

void RepeatProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  POSTAL_CHECK(packet.ctl_a == ctx.self());
  bcast_chain(ctx, fib_, packet.ctl_a, packet.ctl_b, packet.msg);
}

// ---------------------------------------------------------------------------
// PACK
// ---------------------------------------------------------------------------

PackProtocol::PackProtocol(const PostalParams& params, std::uint32_t m)
    : m_(m), fib_(pack_lambda(params.lambda(), m)) {
  received_.assign(params.n(), 0);
  range_hi_.assign(params.n(), 0);
}

void PackProtocol::relay_block(MachineContext& ctx, std::uint64_t lo,
                               std::uint64_t hi) {
  for (const ChainEdge& edge : bcast_chain_edges(fib_, lo, hi)) {
    for (MsgId msg = 0; msg < m_; ++msg) {
      ctx.send(static_cast<ProcId>(edge.target), Packet{msg, edge.target, edge.hi});
    }
  }
}

void PackProtocol::on_start(MachineContext& ctx) {
  if (ctx.self() != 0) return;
  relay_block(ctx, 0, ctx.params().n());
}

void PackProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  const ProcId self = ctx.self();
  POSTAL_CHECK(packet.ctl_a == self);
  range_hi_[self] = packet.ctl_b;
  // Wait for the whole long message before forwarding anything.
  if (++received_[self] == m_) {
    relay_block(ctx, self, range_hi_[self]);
  }
}

// ---------------------------------------------------------------------------
// PIPELINE-1
// ---------------------------------------------------------------------------

Pipeline1Protocol::Pipeline1Protocol(const PostalParams& params, std::uint32_t m)
    : m_(m), fib_(pipeline1_lambda(params.lambda(), m)) {
  range_hi_.assign(params.n(), 0);
}

void Pipeline1Protocol::on_start(MachineContext& ctx) {
  if (ctx.self() != 0) return;
  // The origin holds the whole stream: all streams go out back to back.
  for (const ChainEdge& edge : bcast_chain_edges(fib_, 0, ctx.params().n())) {
    for (MsgId msg = 0; msg < m_; ++msg) {
      ctx.send(static_cast<ProcId>(edge.target), Packet{msg, edge.target, edge.hi});
    }
  }
}

void Pipeline1Protocol::on_receive(MachineContext& ctx, const Packet& packet) {
  const ProcId self = ctx.self();
  POSTAL_CHECK(packet.ctl_a == self);
  range_hi_[self] = packet.ctl_b;
  const auto edges = bcast_chain_edges(fib_, self, range_hi_[self]);
  if (edges.empty()) return;
  // Forward each piece to the first target the instant it arrives...
  ctx.send(static_cast<ProcId>(edges[0].target),
           Packet{packet.msg, edges[0].target, edges[0].hi});
  // ...and replay the full stream to the remaining targets once complete.
  if (packet.msg + 1 == m_) {
    for (std::size_t i = 1; i < edges.size(); ++i) {
      for (MsgId msg = 0; msg < m_; ++msg) {
        ctx.send(static_cast<ProcId>(edges[i].target),
                 Packet{msg, edges[i].target, edges[i].hi});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// PIPELINE-2
// ---------------------------------------------------------------------------

Pipeline2Protocol::Pipeline2Protocol(const PostalParams& params, std::uint32_t m)
    : m_(m), fib_(pipeline2_lambda(params.lambda(), m)) {
  range_hi_.assign(params.n(), 0);
}

void Pipeline2Protocol::on_start(MachineContext& ctx) {
  if (ctx.self() != 0) return;
  for (const ChainEdge& edge : pl2_chain_edges(fib_, 0, ctx.params().n())) {
    for (MsgId msg = 0; msg < m_; ++msg) {
      ctx.send(static_cast<ProcId>(edge.target), Packet{msg, edge.target, edge.hi});
    }
  }
}

void Pipeline2Protocol::on_receive(MachineContext& ctx, const Packet& packet) {
  const ProcId self = ctx.self();
  POSTAL_CHECK(packet.ctl_a == self);
  range_hi_[self] = packet.ctl_b;
  const auto edges = pl2_chain_edges(fib_, self, range_hi_[self]);
  if (edges.empty()) return;
  ctx.send(static_cast<ProcId>(edges[0].target),
           Packet{packet.msg, edges[0].target, edges[0].hi});
  if (packet.msg + 1 == m_) {
    for (std::size_t i = 1; i < edges.size(); ++i) {
      for (MsgId msg = 0; msg < m_; ++msg) {
        ctx.send(static_cast<ProcId>(edges[i].target),
                 Packet{msg, edges[i].target, edges[i].hi});
      }
    }
  }
}

}  // namespace postal
