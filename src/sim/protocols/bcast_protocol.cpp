#include "sim/protocols/bcast_protocol.hpp"

namespace postal {

BcastProtocol::BcastProtocol(const PostalParams& params, ProcId origin)
    : origin_(origin), fib_(params.lambda()) {
  POSTAL_REQUIRE(origin < params.n(), "BcastProtocol: origin out of range");
  POSTAL_REQUIRE(origin == 0,
                 "BcastProtocol: ranges are [origin, n); only origin 0 is supported");
}

void BcastProtocol::on_start(MachineContext& ctx) {
  if (ctx.self() != origin_) return;
  broadcast_range(ctx, 0, ctx.params().n());
}

void BcastProtocol::on_receive(MachineContext& ctx, const Packet& packet) {
  // The packet's control words carry the range this processor now owns.
  POSTAL_CHECK(packet.ctl_a == ctx.self());
  broadcast_range(ctx, packet.ctl_a, packet.ctl_b);
}

void BcastProtocol::broadcast_range(MachineContext& ctx, std::uint64_t lo,
                                    std::uint64_t hi) {
  // Iterative form of the recursion: each queued send leaves one time unit
  // after the previous one (the Machine's output port staggers them), which
  // is exactly the "send to a new processor every unit of time" rule.
  std::uint64_t count = hi - lo;
  while (count >= 2) {
    const std::uint64_t j = fib_.bcast_split(count);
    const std::uint64_t target = lo + j;
    ctx.send(static_cast<ProcId>(target), Packet{/*msg=*/0, target, hi});
    hi = target;  // the holder keeps [lo, lo + j)
    count = j;
  }
}

}  // namespace postal
