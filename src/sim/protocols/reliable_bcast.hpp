// Reliable broadcast on top of the optimal BCAST tree: ack / timeout /
// exponential-backoff retransmission, plus subtree repair when a relay
// dies (docs/FAULTS.md).
//
// Fault-free, the protocol's DATA sends are event-for-event the paper's
// Algorithm BCAST -- a processor receiving its range immediately starts
// the generalized-Fibonacci splits, so completion is exactly f_lambda(n)
// (asserted in the tests). The reliability layer rides on top:
//
//   * every DATA send is tracked by the sender: the child owes an ACK,
//     and a local timer fires if it does not arrive in time;
//   * ACKs are aggregated (convergecast): a processor acks its parent only
//     once its entire assigned subtree has acked, so a parent's single
//     timeout covers failures anywhere below the child;
//   * a timeout retransmits with exponentially growing patience; after
//     max_attempts the child is declared dead and the parent repairs: the
//     dead child owned the contiguous range [lo, hi), so the parent
//     re-roots the orphaned remainder by handing [lo+1, hi) to processor
//     lo+1, which broadcasts it with the optimal remaining-range
//     Fibonacci splits (cascading crashes recurse: if lo+1 is dead too,
//     its own timeout repairs with [lo+2, hi), and so on);
//   * duplicates are idempotent: a processor that already holds the
//     message just re-acks, and a DATA extending its range covers only
//     the extension, so spurious timeouts cost traffic, never safety.
//
// Guarantee (the chaos suite sweeps this): under any FaultPlan whose
// per-link loss bursts are bounded below the retransmission budget
// (LinkLoss::max_losses < max_attempts), every processor that never
// crashes receives the message, regardless of which relays die when.
// Unbounded adversarial loss is impossible to beat -- see docs/FAULTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "sim/machine.hpp"
#include "sim/validator.hpp"

namespace postal {

/// Reliability knobs.
struct ReliableBcastOptions {
  /// DATA transmissions to a child before declaring it dead. Must be >= 1.
  /// Keep LinkLoss::max_losses < max_attempts to guarantee delivery to
  /// live processors.
  std::uint32_t max_attempts = 4;
  /// Extra slack added to every ack timeout (model time units, >= 0).
  Rational timeout_slack{2};
  /// Time representation for the Machine run and the validation pass
  /// (docs/PERFORMANCE.md). kAuto takes the int64 tick fast path when the
  /// run is exactly representable; kRational forces the reference engine.
  /// Reports are identical either way (chaos-differential-tested).
  TimePath time_path = TimePath::kAuto;
  /// Simulation lanes (docs/SIMULATION.md). 0 = inherit the caller's
  /// setting (Communicator::set_threads; the standalone runner treats it
  /// as 1). Values > 1 run the sharded ParMachine; the report is
  /// byte-identical at every setting. Note the ack timers are on the tick
  /// grid only when f_lambda values are (integer lambda): off-grid runs
  /// fall back to the sequential engine automatically.
  unsigned threads = 0;
  /// Trace retention (sim/trace.hpp). kCounters elides the per-delivery
  /// trace; completion, counters, and validation are unaffected (they read
  /// first arrivals and the schedule, both exact in either mode).
  TraceMode trace_mode = TraceMode::kFull;
};

/// Traffic/recovery counters of one run.
struct ReliableBcastCounters {
  std::uint64_t data_sends = 0;       ///< first DATA transmissions
  std::uint64_t retransmissions = 0;  ///< timeout-driven DATA resends
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t timeouts = 0;         ///< timer firings that found no ack
  std::uint64_t dead_declared = 0;    ///< children given up on
  std::uint64_t repairs = 0;          ///< subtree re-roots (incl. range extensions)
};

/// Event-driven reliable broadcast of message id 0 from processor 0.
/// One protocol instance drives one Machine::run (state is per-run).
class ReliableBcastProtocol final : public Protocol {
 public:
  explicit ReliableBcastProtocol(const PostalParams& params,
                                 ReliableBcastOptions options = {});

  void on_start(MachineContext& ctx) override;
  void on_receive(MachineContext& ctx, const Packet& packet) override;
  void on_timer(MachineContext& ctx, std::uint64_t token) override;

  [[nodiscard]] const ReliableBcastCounters& counters() const noexcept {
    return counters_;
  }

 private:
  enum class SlotState : std::uint8_t { kPending, kAcked, kDead };

  struct ChildSlot {
    ProcId child = 0;
    std::uint64_t lo = 0;  ///< the child's assigned range [lo, hi), child == lo
    std::uint64_t hi = 0;
    std::uint32_t attempts = 0;
    SlotState state = SlotState::kPending;
  };

  struct ProcState {
    bool has_data = false;
    std::uint64_t hi = 0;     ///< responsible for [self, hi)
    Rational port_free;       ///< local mirror of the machine's output port
    std::vector<ChildSlot> children;
    std::vector<ProcId> waiting;  ///< DATA senders owed an ack once done
  };

  /// Port-mirrored send; returns the transmission's start time.
  Rational do_send(MachineContext& ctx, ProcId dst, const Packet& packet);
  /// First DATA to `child` for range [lo, hi); arms the ack timer.
  void send_data(MachineContext& ctx, ProcId child, std::uint64_t lo,
                 std::uint64_t hi);
  /// BCAST's generalized-Fibonacci splits over [self, hi), reliably.
  void spawn_children(MachineContext& ctx, std::uint64_t hi);
  /// Ack every waiting sender if the whole assigned subtree is resolved.
  void maybe_ack(MachineContext& ctx);
  /// Base ack timeout for a range of size m, measured from the DATA send
  /// start: generous enough that a fault-free subtree always acks in time.
  Rational timeout_base(std::uint64_t m);

  [[nodiscard]] ChildSlot* find_slot(ProcId self, ProcId child);

  ProcId origin_;
  Rational lambda_;
  GenFib fib_;
  ReliableBcastOptions options_;
  std::vector<ProcState> state_;
  ReliableBcastCounters counters_;
};

/// Everything one reliable run produces, judged.
struct ReliableBcastReport {
  MachineResult result;             ///< schedule/trace/stats/faults of the run
  ReliableBcastCounters counters;
  SimReport validation;             ///< fifo_receive + crash-aware validation
  Rational baseline;                ///< fault-free completion f_lambda(n)
  Rational completion;              ///< last first-arrival among live processors
  Rational recovery_overhead;       ///< max(0, completion - baseline)
  std::vector<ProcId> crashed;      ///< processors the plan crashes (any time)
  std::vector<ProcId> uncovered_alive;  ///< live processors never reached (bug!)
  bool covered = false;             ///< uncovered_alive.empty()
};

/// Run the protocol on a Machine under `plan` (nullptr = fault-free) and
/// judge the outcome: coverage of every surviving processor, crash-aware
/// validation, and completion against the f_lambda(n) baseline.
[[nodiscard]] ReliableBcastReport run_reliable_bcast(
    const PostalParams& params, const FaultPlan* plan = nullptr,
    const ReliableBcastOptions& options = {});

}  // namespace postal
