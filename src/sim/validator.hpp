// The postal-model schedule validator: the single authority on whether a
// schedule is legal in MPS(n, lambda) and on its true completion time.
//
// A schedule is checked against every clause of Definitions 1-2:
//  * send-port exclusivity   -- a processor's sends [t, t+1) are disjoint;
//  * receive-port exclusivity-- its receives [t+lambda-1, t+lambda) are
//                               disjoint (simultaneous send+receive is
//                               explicitly allowed: distinct ports);
//  * causality               -- a processor may only send a message it
//                               holds: the origin holds everything at t=0,
//                               everyone else must have fully received the
//                               message no later than the send start;
//  * coverage                -- every processor ends up holding every
//                               message id in [0, messages).
// Order preservation is additionally reported (all the paper's algorithms
// have it, but it is a property, not a model constraint).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/trace.hpp"
#include "support/ticks.hpp"

namespace postal {

/// Result of validating a schedule.
struct SimReport {
  bool ok = false;                       ///< no violations and full coverage
  std::vector<std::string> violations;   ///< human-readable constraint breaches
  Trace trace{1, 0};                     ///< all deliveries (even when !ok)
  Rational makespan;                     ///< latest arrival; 0 if none
  bool order_preserving = false;         ///< Section 4's order property
  /// True iff this validation ran on the int64 tick fast path
  /// (docs/PERFORMANCE.md). Informational: both paths produce identical
  /// reports (differential-tested), so equality checks should ignore it.
  bool tick_domain = false;

  /// Joined violation text for test failure messages.
  [[nodiscard]] std::string summary() const;
};

/// Validation knobs.
struct ValidatorOptions {
  ProcId origin = 0;        ///< processor that initially holds all messages
  std::uint32_t messages = 0;  ///< expected message count; 0 = infer from schedule
  bool require_coverage = true;  ///< demand the coverage goal below

  /// Per-message origins for collectives where messages start at different
  /// processors (allgather, gather). Entry i is the origin of message i;
  /// empty means every message originates at `origin`.
  std::vector<ProcId> origins;

  /// Explicit coverage goal: the (processor, message) pairs that must be
  /// delivered. Empty means "every processor gets every message" (the
  /// broadcast goal). Pairs whose processor is the message's origin are
  /// trivially satisfied.
  std::vector<std::pair<ProcId, MsgId>> required;

  /// Known processor crashes (docs/FAULTS.md). A schedule produced under a
  /// FaultPlan is truncated in exactly the ways crashes allow, and the
  /// validator must know them to judge it:
  ///  * a crashed processor is exempt from the coverage goal (it is dead;
  ///    nobody can deliver to it);
  ///  * a delivery arriving at or after the receiver's crash time is void:
  ///    it occupies no receive port, establishes no message hold, and is
  ///    not recorded in the trace;
  ///  * a send whose start is at or after the sender's crash time is a
  ///    violation -- dead processors cannot transmit, so such an event
  ///    proves the schedule was not produced under these crashes.
  /// Without the crash set, the same truncated schedule fails coverage --
  /// the caller cannot silently excuse missing processors.
  std::vector<CrashFault> crashes;

  /// Control-plane mode: every processor holds every message id from t=0,
  /// so the causality clause never fires. For protocols whose packets are
  /// locally originated control traffic (heartbeats, votes, acks keyed by
  /// message id) rather than relayed payloads; the port, crash, and FIFO
  /// clauses stay fully active. `origin`/`origins` become irrelevant to
  /// causality but still define the coverage goal if one is requested.
  bool preholds = false;

  /// Input-port semantics. false (default, the paper's model): receive
  /// windows [t+lambda-1, t+lambda) must be exclusive, overlap is a
  /// violation -- every paper algorithm satisfies this. true: simultaneous
  /// arrivals at a receiver serialize FIFO in nominal-arrival order
  /// (matching the Machine's input-port queueing), so overlap delays
  /// deliveries instead of violating; needed for protocols whose receive
  /// times are fault-dependent (reliable_bcast acks under crashes).
  bool fifo_receive = false;

  /// Time representation (docs/PERFORMANCE.md). kAuto (default) validates
  /// on int64 ticks at resolution 1/q when every event and crash time is
  /// exactly representable and a static bound rules out tick overflow,
  /// falling back to the Rational reference otherwise; kRational forces
  /// the reference. Reports are identical either way -- violations quote
  /// the same strings because tick<->Rational conversion is exact.
  TimePath time_path = TimePath::kAuto;
};

/// Validate `schedule` under MPS(params.n(), params.lambda()).
[[nodiscard]] SimReport validate_schedule(const Schedule& schedule,
                                          const PostalParams& params,
                                          const ValidatorOptions& options = {});

}  // namespace postal
