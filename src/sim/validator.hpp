// The postal-model schedule validator: the single authority on whether a
// schedule is legal in MPS(n, lambda) and on its true completion time.
//
// A schedule is checked against every clause of Definitions 1-2:
//  * send-port exclusivity   -- a processor's sends [t, t+1) are disjoint;
//  * receive-port exclusivity-- its receives [t+lambda-1, t+lambda) are
//                               disjoint (simultaneous send+receive is
//                               explicitly allowed: distinct ports);
//  * causality               -- a processor may only send a message it
//                               holds: the origin holds everything at t=0,
//                               everyone else must have fully received the
//                               message no later than the send start;
//  * coverage                -- every processor ends up holding every
//                               message id in [0, messages).
// Order preservation is additionally reported (all the paper's algorithms
// have it, but it is a property, not a model constraint).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace postal {

/// Result of validating a schedule.
struct SimReport {
  bool ok = false;                       ///< no violations and full coverage
  std::vector<std::string> violations;   ///< human-readable constraint breaches
  Trace trace{1, 0};                     ///< all deliveries (even when !ok)
  Rational makespan;                     ///< latest arrival; 0 if none
  bool order_preserving = false;         ///< Section 4's order property

  /// Joined violation text for test failure messages.
  [[nodiscard]] std::string summary() const;
};

/// Validation knobs.
struct ValidatorOptions {
  ProcId origin = 0;        ///< processor that initially holds all messages
  std::uint32_t messages = 0;  ///< expected message count; 0 = infer from schedule
  bool require_coverage = true;  ///< demand the coverage goal below

  /// Per-message origins for collectives where messages start at different
  /// processors (allgather, gather). Entry i is the origin of message i;
  /// empty means every message originates at `origin`.
  std::vector<ProcId> origins;

  /// Explicit coverage goal: the (processor, message) pairs that must be
  /// delivered. Empty means "every processor gets every message" (the
  /// broadcast goal). Pairs whose processor is the message's origin are
  /// trivially satisfied.
  std::vector<std::pair<ProcId, MsgId>> required;
};

/// Validate `schedule` under MPS(params.n(), params.lambda()).
[[nodiscard]] SimReport validate_schedule(const Schedule& schedule,
                                          const PostalParams& params,
                                          const ValidatorOptions& options = {});

}  // namespace postal
