#include "sim/machine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace postal {

const PostalParams& MachineContext::params() const noexcept {
  return sink_.sink_params();
}

void MachineContext::send(ProcId dst, const Packet& packet) {
  sink_.sink_send(self_, dst, packet, now_, now_ticks_);
}

void MachineContext::set_timer(const Rational& delay, std::uint64_t token) {
  POSTAL_REQUIRE(delay >= Rational(0), "Machine: timer delay must be >= 0");
  sink_.sink_timer(self_, now_, now_ticks_, delay, token);
}

void Machine::sink_send(ProcId self, ProcId dst, const Packet& packet,
                        const Rational& now, Tick now_ticks) {
  if (tick_mode_) {
    enqueue_send_ticks(self, dst, packet, now_ticks);
  } else {
    enqueue_send(self, dst, packet, now);
  }
}

void Machine::sink_timer(ProcId self, const Rational& now, Tick now_ticks,
                         const Rational& delay, std::uint64_t token) {
  if (tick_mode_) {
    enqueue_timer_ticks(self, now_ticks, now, delay, token);
  } else {
    enqueue_timer(self, now + delay, token);
  }
}

const PostalParams& Machine::sink_params() const noexcept { return params_; }

Machine::Machine(PostalParams params, std::uint32_t messages)
    : params_(std::move(params)), messages_(messages) {}

void Machine::attach_faults(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(plan, params_.n());
}

void Machine::enqueue_send(ProcId src, ProcId dst, const Packet& packet,
                           const Rational& now) {
  POSTAL_REQUIRE(dst < params_.n(), "Machine: send destination out of range");
  POSTAL_REQUIRE(dst != src, "Machine: a processor cannot send to itself");
  POSTAL_REQUIRE(packet.msg < messages_, "Machine: message id out of range");
  // The output port transmits one message per unit of time, FIFO.
  const Rational start = rmax(now, port_free_[src]);
  if (injector_ && injector_->crashed(src, start)) {
    // The handler ran before the crash, but the port slot this send would
    // occupy starts at or after it: the transmission never happens.
    ++fault_stats_.sends_suppressed;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kSendSuppressed, start, src, dst});
    return;
  }
  port_free_[src] = start + Rational(1);
  ++stats_.sends_enqueued;
  if (start > now) ++stats_.sends_deferred;
  stats_.port_busy[src] += Rational(1);
  // Backlog = transmissions not yet finished on this port, i.e. the busy
  // span [now, port_free) measured in unit-length sends (partial first
  // send rounds up).
  const std::uint64_t depth =
      static_cast<std::uint64_t>((port_free_[src] - now).ceil());
  if (depth > stats_.max_fifo_depth) stats_.max_fifo_depth = depth;
  schedule_.add(src, dst, packet.msg, start);
  Rational latency = params_.lambda();
  if (injector_ && injector_->has_spikes()) {
    const Rational extra = injector_->extra_latency(start);
    if (extra > Rational(0)) {
      latency += extra;
      ++fault_stats_.spikes_applied;
      fault_stats_.events.push_back(
          FaultEvent{FaultEvent::Kind::kSpike, start, src, dst});
    }
  }
  if (injector_ && injector_->has_losses() && injector_->lose(src, dst)) {
    // The send occupied the port and is part of the schedule -- the wire
    // ate it. The arrival simply never happens.
    ++fault_stats_.drops_loss;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kDropLoss, start + latency, dst, src});
    return;
  }
  queue_.push(start + latency,
              Pending{Pending::Kind::kFlight, src, dst, packet, start, 0});
}

void Machine::enqueue_timer(ProcId owner, const Rational& at, std::uint64_t token) {
  ++stats_.timers_set;
  queue_.push(at, Pending{Pending::Kind::kTimer, owner, owner, Packet{}, at, token});
}

void Machine::deliver(Protocol& protocol, const Rational& time,
                      const Pending& flight, std::uint64_t& delivered) {
  if (injector_ && injector_->crashed(flight.dst, time)) {
    ++fault_stats_.drops_crash;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kDropCrash, time, flight.dst, flight.src});
    return;
  }
  ++delivered;
  trace_->record(
      Delivery{flight.src, flight.dst, flight.packet.msg, flight.send_start, time});
  MachineContext ctx(*this, flight.dst, time);
  protocol.on_receive(ctx, flight.packet);
}

// ---------------------------------------------------------------------------
// Tick engine (docs/PERFORMANCE.md). Every function below is the exact
// integer-time image of its Rational twin above: same branch structure,
// same fault-hook call order (loss draws consume per-link counters, so
// order is behavior), same FaultEvent pushes with exactly-converted times.
// The differential and chaos tests assert event-for-event identity.
// ---------------------------------------------------------------------------

bool Machine::try_tick_setup(std::uint64_t max_events) {
  // The admission logic lives in sim/tick_setup.hpp, shared with
  // ParMachine so both engines tick exactly the same runs.
  std::optional<TickRunSetup> setup =
      plan_tick_run(params_, injector_.get(), max_events);
  if (!setup.has_value()) return false;
  tick_q_ = setup->q;
  lambda_ticks_ = setup->lambda_ticks;
  crash_ticks_ = std::move(setup->crash_ticks);
  spike_ticks_ = std::move(setup->spike_ticks);
  return true;
}

void Machine::enqueue_send_ticks(ProcId src, ProcId dst, const Packet& packet,
                                 Tick now) {
  POSTAL_REQUIRE(dst < params_.n(), "Machine: send destination out of range");
  POSTAL_REQUIRE(dst != src, "Machine: a processor cannot send to itself");
  POSTAL_REQUIRE(packet.msg < messages_, "Machine: message id out of range");
  const Tick start = std::max(now, port_free_ticks_[src]);
  // Unreachable before memory exhaustion (2^61/q sends queued on one
  // port), but keeps the no-overflow guarantee airtight rather than UB.
  POSTAL_CHECK(start <= kTickCap);
  if (injector_ && crashed_ticks(src, start)) {
    ++fault_stats_.sends_suppressed;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kSendSuppressed, tick_rational(start), src, dst});
    return;
  }
  port_free_ticks_[src] = start + tick_q_;
  ++stats_.sends_enqueued;
  if (start > now) ++stats_.sends_deferred;
  ++port_busy_units_[src];
  // Integer image of ceil((port_free - now) / 1): the span is a positive
  // multiple of ticks, so the rounded-up unit count matches exactly.
  const std::uint64_t depth = static_cast<std::uint64_t>(
      (port_free_ticks_[src] - now + tick_q_ - 1) / tick_q_);
  if (depth > stats_.max_fifo_depth) stats_.max_fifo_depth = depth;
  schedule_.add(src, dst, packet.msg, tick_rational(start));
  Tick latency = lambda_ticks_;
  if (injector_ && injector_->has_spikes()) {
    Tick extra = 0;
    for (const SpikeTicks& s : spike_ticks_) {
      if (start >= s.from && start < s.until) extra += s.extra;
    }
    if (extra > 0) {
      latency += extra;
      ++fault_stats_.spikes_applied;
      fault_stats_.events.push_back(
          FaultEvent{FaultEvent::Kind::kSpike, tick_rational(start), src, dst});
    }
  }
  if (injector_ && injector_->has_losses() && injector_->lose(src, dst)) {
    ++fault_stats_.drops_loss;
    fault_stats_.events.push_back(FaultEvent{
        FaultEvent::Kind::kDropLoss, tick_rational(start + latency), dst, src});
    return;
  }
  tick_queue_.push(start + latency, seq_++,
                   PendingTicks{Pending::Kind::kFlight, src, dst, packet, start, 0});
}

void Machine::enqueue_timer_ticks(ProcId owner, Tick now_ticks, const Rational& now,
                                  const Rational& delay, std::uint64_t token) {
  ++stats_.timers_set;
  const std::optional<Tick> d = TickDomain(tick_q_).to_ticks(delay);
  Tick fire = 0;
  if (d.has_value() && !__builtin_add_overflow(now_ticks, *d, &fire) &&
      fire <= kTickCap) {
    tick_queue_.push(fire, seq_++,
                     PendingTicks{Pending::Kind::kTimer, owner, owner, Packet{},
                                  fire, token});
    return;
  }
  // The fire time is off this run's 1/q grid (or beyond the tick range):
  // park it Rational-keyed under the shared seq counter. The loop top
  // transplants the whole run to the Rational engine before anything else
  // pops, so the global (time, seq) order is exactly what a pure Rational
  // run would have used.
  const Rational at = now + delay;
  parked_.push_back(ParkedEvent{
      at, seq_++,
      Pending{Pending::Kind::kTimer, owner, owner, Packet{}, at, token}});
}

void Machine::deliver_ticks(Protocol& protocol, Tick time, const PendingTicks& flight,
                            std::uint64_t& delivered) {
  if (injector_ && crashed_ticks(flight.dst, time)) {
    ++fault_stats_.drops_crash;
    fault_stats_.events.push_back(FaultEvent{
        FaultEvent::Kind::kDropCrash, tick_rational(time), flight.dst, flight.src});
    return;
  }
  ++delivered;
  trace_->record(Delivery{flight.src, flight.dst, flight.packet.msg,
                          tick_rational(flight.send_start), tick_rational(time)});
  MachineContext ctx(*this, flight.dst, tick_rational(time), time);
  protocol.on_receive(ctx, flight.packet);
}

void Machine::run_tick_loop(Protocol& protocol, std::uint64_t max_events,
                            std::uint64_t& steps, std::uint64_t& delivered) {
  while (true) {
    if (!parked_.empty()) {
      // A handler armed an off-grid timer: finish the run on the Rational
      // engine. Transplanting at the loop top (never mid-handler) means no
      // event has popped since the park, so nothing is lost or reordered.
      transplant_to_rational();
      return;
    }
    if (tick_queue_.empty()) return;
    auto [time, event] = tick_queue_.pop();
    if (++steps > max_events) {
      throw LogicError("Machine::run: exceeded max_events; runaway protocol?");
    }
    switch (event.kind) {
      case Pending::Kind::kTimer: {
        if (injector_ && crashed_ticks(event.dst, time)) break;
        ++stats_.timers_fired;
        MachineContext ctx(*this, event.dst, tick_rational(time), time);
        protocol.on_timer(ctx, event.token);
        break;
      }
      case Pending::Kind::kFlight: {
        // Input-port serialization, integer image of the Rational loop:
        // the receive needs [arrival-1, arrival) exclusively.
        const Tick window_start =
            std::max(time - tick_q_, recv_free_ticks_[event.dst]);
        const Tick arrival = window_start + tick_q_;
        recv_free_ticks_[event.dst] = arrival;
        if (arrival > time) {
          ++stats_.receives_queued;
          PendingTicks requeued = event;
          requeued.kind = Pending::Kind::kFlightFinal;
          tick_queue_.push(arrival, seq_++, std::move(requeued));
          break;
        }
        deliver_ticks(protocol, time, event, delivered);
        break;
      }
      case Pending::Kind::kFlightFinal:
        deliver_ticks(protocol, time, event, delivered);
        break;
    }
  }
}

void Machine::transplant_to_rational() {
  tick_mode_ = false;
  stats_.tick_domain = false;
  // Every pending tick event crosses over with its original seq;
  // EventQueue::push_at_seq keeps later stamps strictly larger, so the
  // merged queue pops in the exact (time, seq) order of a pure Rational
  // run. Conversion is exact by the tick-domain invariant.
  tick_queue_.drain([this](Tick t, std::uint64_t seq, PendingTicks&& e) {
    queue_.push_at_seq(
        tick_rational(t), seq,
        Pending{e.kind, e.src, e.dst, e.packet, tick_rational(e.send_start),
                e.token});
  });
  for (ParkedEvent& p : parked_) {
    queue_.push_at_seq(std::move(p.time), p.seq, std::move(p.event));
  }
  parked_.clear();
  for (std::size_t p = 0; p < port_free_ticks_.size(); ++p) {
    port_free_[p] = tick_rational(port_free_ticks_[p]);
    recv_free_[p] = tick_rational(recv_free_ticks_[p]);
  }
  fold_tick_port_busy();
}

void Machine::fold_tick_port_busy() {
  for (std::size_t p = 0; p < port_busy_units_.size(); ++p) {
    if (port_busy_units_[p] == 0) continue;
    POSTAL_CHECK(port_busy_units_[p] <= static_cast<std::uint64_t>(INT64_MAX));
    stats_.port_busy[p] += Rational(static_cast<std::int64_t>(port_busy_units_[p]));
    port_busy_units_[p] = 0;
  }
}

MachineResult Machine::run(Protocol& protocol, std::uint64_t max_events) {
  const std::uint64_t n = params_.n();
  port_free_.assign(n, Rational(0));
  recv_free_.assign(n, Rational(0));
  schedule_ = Schedule();
  queue_ = EventQueue<Pending>();
  stats_ = MachineStats();
  stats_.port_busy.assign(n, Rational(0));
  fault_stats_ = FaultStats();
  seq_ = 0;
  tick_mode_ = time_path_ == TimePath::kAuto && try_tick_setup(max_events);
  if (tick_mode_) {
    stats_.tick_domain = true;
    port_free_ticks_.assign(n, 0);
    recv_free_ticks_.assign(n, 0);
    port_busy_units_.assign(n, 0);
    tick_queue_.clear();
    parked_.clear();
  }
  if (injector_) {
    injector_->reset();
    for (ProcId p = 0; p < n; ++p) {
      const auto& c = injector_->crash_time(p);
      if (c.has_value()) {
        ++fault_stats_.crashes_applied;
        fault_stats_.events.push_back(FaultEvent{FaultEvent::Kind::kCrash, *c, p, p});
      }
    }
  }

  MachineResult result;
  result.trace = Trace(n, messages_, trace_mode_);
  trace_ = &result.trace;

  for (ProcId p = 0; p < n; ++p) {
    if (injector_ && injector_->crashed(p, Rational(0))) continue;
    MachineContext ctx(*this, p, Rational(0), 0);
    protocol.on_start(ctx);
  }

  std::uint64_t delivered = 0;
  std::uint64_t steps = 0;
  if (tick_mode_) {
    run_tick_loop(protocol, max_events, steps, delivered);
    // Falls through with a populated queue_ iff the run transplanted.
  }
  while (!queue_.empty()) {
    auto [time, event] = queue_.pop();
    if (++steps > max_events) {
      throw LogicError("Machine::run: exceeded max_events; runaway protocol?");
    }
    switch (event.kind) {
      case Pending::Kind::kTimer: {
        if (injector_ && injector_->crashed(event.dst, time)) break;
        ++stats_.timers_fired;
        MachineContext ctx(*this, event.dst, time);
        protocol.on_timer(ctx, event.token);
        break;
      }
      case Pending::Kind::kFlight: {
        // Input-port serialization: the receive needs the window
        // [arrival-1, arrival) exclusively. Simultaneous arrivals queue
        // FIFO; the paper's algorithms never collide, so for them
        // arrival == nominal time and this is a single comparison.
        const Rational window_start = rmax(time - Rational(1), recv_free_[event.dst]);
        const Rational arrival = window_start + Rational(1);
        recv_free_[event.dst] = arrival;
        if (arrival > time) {
          ++stats_.receives_queued;
          Pending requeued = event;
          requeued.kind = Pending::Kind::kFlightFinal;
          queue_.push(arrival, std::move(requeued));
          break;
        }
        deliver(protocol, time, event, delivered);
        break;
      }
      case Pending::Kind::kFlightFinal:
        deliver(protocol, time, event, delivered);
        break;
    }
  }
  if (tick_mode_) {
    fold_tick_port_busy();
    tick_mode_ = false;
  }

  stats_.events_processed = delivered;
  schedule_.sort();
  result.schedule = std::move(schedule_);
  result.stats = std::move(stats_);
  result.faults = std::move(fault_stats_);
  trace_ = nullptr;
  return result;
}

}  // namespace postal
