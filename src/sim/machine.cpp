#include "sim/machine.hpp"

#include "support/error.hpp"

namespace postal {

const PostalParams& MachineContext::params() const noexcept {
  return machine_.params_;
}

void MachineContext::send(ProcId dst, const Packet& packet) {
  machine_.enqueue_send(self_, dst, packet, now_);
}

void MachineContext::set_timer(const Rational& delay, std::uint64_t token) {
  POSTAL_REQUIRE(delay >= Rational(0), "Machine: timer delay must be >= 0");
  machine_.enqueue_timer(self_, now_ + delay, token);
}

Machine::Machine(PostalParams params, std::uint32_t messages)
    : params_(std::move(params)), messages_(messages) {}

void Machine::attach_faults(const FaultPlan& plan) {
  if (plan.empty()) {
    injector_.reset();
    return;
  }
  injector_ = std::make_unique<FaultInjector>(plan, params_.n());
}

void Machine::enqueue_send(ProcId src, ProcId dst, const Packet& packet,
                           const Rational& now) {
  POSTAL_REQUIRE(dst < params_.n(), "Machine: send destination out of range");
  POSTAL_REQUIRE(dst != src, "Machine: a processor cannot send to itself");
  POSTAL_REQUIRE(packet.msg < messages_, "Machine: message id out of range");
  // The output port transmits one message per unit of time, FIFO.
  const Rational start = rmax(now, port_free_[src]);
  if (injector_ && injector_->crashed(src, start)) {
    // The handler ran before the crash, but the port slot this send would
    // occupy starts at or after it: the transmission never happens.
    ++fault_stats_.sends_suppressed;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kSendSuppressed, start, src, dst});
    return;
  }
  port_free_[src] = start + Rational(1);
  ++stats_.sends_enqueued;
  if (start > now) ++stats_.sends_deferred;
  stats_.port_busy[src] += Rational(1);
  // Backlog = transmissions not yet finished on this port, i.e. the busy
  // span [now, port_free) measured in unit-length sends (partial first
  // send rounds up).
  const std::uint64_t depth =
      static_cast<std::uint64_t>((port_free_[src] - now).ceil());
  if (depth > stats_.max_fifo_depth) stats_.max_fifo_depth = depth;
  schedule_.add(src, dst, packet.msg, start);
  Rational latency = params_.lambda();
  if (injector_ && injector_->has_spikes()) {
    const Rational extra = injector_->extra_latency(start);
    if (extra > Rational(0)) {
      latency += extra;
      ++fault_stats_.spikes_applied;
      fault_stats_.events.push_back(
          FaultEvent{FaultEvent::Kind::kSpike, start, src, dst});
    }
  }
  if (injector_ && injector_->has_losses() && injector_->lose(src, dst)) {
    // The send occupied the port and is part of the schedule -- the wire
    // ate it. The arrival simply never happens.
    ++fault_stats_.drops_loss;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kDropLoss, start + latency, dst, src});
    return;
  }
  queue_.push(start + latency,
              Pending{Pending::Kind::kFlight, src, dst, packet, start, 0});
}

void Machine::enqueue_timer(ProcId owner, const Rational& at, std::uint64_t token) {
  ++stats_.timers_set;
  queue_.push(at, Pending{Pending::Kind::kTimer, owner, owner, Packet{}, at, token});
}

void Machine::deliver(Protocol& protocol, const Rational& time,
                      const Pending& flight, std::uint64_t& delivered) {
  if (injector_ && injector_->crashed(flight.dst, time)) {
    ++fault_stats_.drops_crash;
    fault_stats_.events.push_back(
        FaultEvent{FaultEvent::Kind::kDropCrash, time, flight.dst, flight.src});
    return;
  }
  ++delivered;
  trace_->record(
      Delivery{flight.src, flight.dst, flight.packet.msg, flight.send_start, time});
  MachineContext ctx(*this, flight.dst, time);
  protocol.on_receive(ctx, flight.packet);
}

MachineResult Machine::run(Protocol& protocol, std::uint64_t max_events) {
  const std::uint64_t n = params_.n();
  port_free_.assign(n, Rational(0));
  recv_free_.assign(n, Rational(0));
  schedule_ = Schedule();
  queue_ = EventQueue<Pending>();
  stats_ = MachineStats();
  stats_.port_busy.assign(n, Rational(0));
  fault_stats_ = FaultStats();
  if (injector_) {
    injector_->reset();
    for (ProcId p = 0; p < n; ++p) {
      const auto& c = injector_->crash_time(p);
      if (c.has_value()) {
        ++fault_stats_.crashes_applied;
        fault_stats_.events.push_back(FaultEvent{FaultEvent::Kind::kCrash, *c, p, p});
      }
    }
  }

  MachineResult result;
  result.trace = Trace(n, messages_);
  trace_ = &result.trace;

  for (ProcId p = 0; p < n; ++p) {
    if (injector_ && injector_->crashed(p, Rational(0))) continue;
    MachineContext ctx(*this, p, Rational(0));
    protocol.on_start(ctx);
  }

  std::uint64_t delivered = 0;
  std::uint64_t steps = 0;
  while (!queue_.empty()) {
    auto [time, event] = queue_.pop();
    if (++steps > max_events) {
      throw LogicError("Machine::run: exceeded max_events; runaway protocol?");
    }
    switch (event.kind) {
      case Pending::Kind::kTimer: {
        if (injector_ && injector_->crashed(event.dst, time)) break;
        ++stats_.timers_fired;
        MachineContext ctx(*this, event.dst, time);
        protocol.on_timer(ctx, event.token);
        break;
      }
      case Pending::Kind::kFlight: {
        // Input-port serialization: the receive needs the window
        // [arrival-1, arrival) exclusively. Simultaneous arrivals queue
        // FIFO; the paper's algorithms never collide, so for them
        // arrival == nominal time and this is a single comparison.
        const Rational window_start = rmax(time - Rational(1), recv_free_[event.dst]);
        const Rational arrival = window_start + Rational(1);
        recv_free_[event.dst] = arrival;
        if (arrival > time) {
          ++stats_.receives_queued;
          Pending requeued = event;
          requeued.kind = Pending::Kind::kFlightFinal;
          queue_.push(arrival, std::move(requeued));
          break;
        }
        deliver(protocol, time, event, delivered);
        break;
      }
      case Pending::Kind::kFlightFinal:
        deliver(protocol, time, event, delivered);
        break;
    }
  }

  stats_.events_processed = delivered;
  schedule_.sort();
  result.schedule = std::move(schedule_);
  result.stats = std::move(stats_);
  result.faults = std::move(fault_stats_);
  trace_ = nullptr;
  return result;
}

}  // namespace postal
