#include "sim/machine.hpp"

#include "support/error.hpp"

namespace postal {

const PostalParams& MachineContext::params() const noexcept {
  return machine_.params_;
}

void MachineContext::send(ProcId dst, const Packet& packet) {
  machine_.enqueue_send(self_, dst, packet, now_);
}

Machine::Machine(PostalParams params, std::uint32_t messages)
    : params_(std::move(params)), messages_(messages) {}

void Machine::enqueue_send(ProcId src, ProcId dst, const Packet& packet,
                           const Rational& now) {
  POSTAL_REQUIRE(dst < params_.n(), "Machine: send destination out of range");
  POSTAL_REQUIRE(dst != src, "Machine: a processor cannot send to itself");
  POSTAL_REQUIRE(packet.msg < messages_, "Machine: message id out of range");
  // The output port transmits one message per unit of time, FIFO.
  const Rational start = rmax(now, port_free_[src]);
  port_free_[src] = start + Rational(1);
  ++stats_.sends_enqueued;
  if (start > now) ++stats_.sends_deferred;
  stats_.port_busy[src] += Rational(1);
  // Backlog = transmissions not yet finished on this port, i.e. the busy
  // span [now, port_free) measured in unit-length sends (partial first
  // send rounds up).
  const std::uint64_t depth =
      static_cast<std::uint64_t>((port_free_[src] - now).ceil());
  if (depth > stats_.max_fifo_depth) stats_.max_fifo_depth = depth;
  schedule_.add(src, dst, packet.msg, start);
  queue_.push(start + params_.lambda(), InFlight{src, dst, packet, start});
}

MachineResult Machine::run(Protocol& protocol, std::uint64_t max_events) {
  const std::uint64_t n = params_.n();
  port_free_.assign(n, Rational(0));
  schedule_ = Schedule();
  queue_ = EventQueue<InFlight>();
  stats_ = MachineStats();
  stats_.port_busy.assign(n, Rational(0));

  MachineResult result;
  result.trace = Trace(n, messages_);

  for (ProcId p = 0; p < n; ++p) {
    MachineContext ctx(*this, p, Rational(0));
    protocol.on_start(ctx);
  }

  std::uint64_t delivered = 0;
  while (!queue_.empty()) {
    auto [time, flight] = queue_.pop();
    if (++delivered > max_events) {
      throw LogicError("Machine::run: exceeded max_events; runaway protocol?");
    }
    result.trace.record(
        Delivery{flight.src, flight.dst, flight.packet.msg, flight.send_start, time});
    MachineContext ctx(*this, flight.dst, time);
    protocol.on_receive(ctx, flight.packet);
  }

  stats_.events_processed = delivered;
  schedule_.sort();
  result.schedule = std::move(schedule_);
  result.stats = std::move(stats_);
  return result;
}

}  // namespace postal
