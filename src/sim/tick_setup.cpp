#include "sim/tick_setup.hpp"

namespace postal {

std::optional<TickRunSetup> plan_tick_run(const PostalParams& params,
                                          const FaultInjector* injector,
                                          std::uint64_t max_events) {
  const Rational& lambda = params.lambda();
  std::int64_t q = lambda.den();
  auto fold = [&q](const Rational& r) {
    const std::optional<std::int64_t> folded = TickDomain::fold_denominator(q, r);
    if (!folded.has_value()) return false;
    q = *folded;
    return true;
  };
  __extension__ using int128 = __int128;
  int128 extra_sum = 0;
  if (injector != nullptr) {
    for (ProcId p = 0; p < params.n(); ++p) {
      const auto& c = injector->crash_time(p);
      if (c.has_value() && !fold(*c)) return std::nullopt;
    }
    for (const LatencySpike& s : injector->plan().spikes) {
      if (!fold(s.from) || !fold(s.until) || !fold(s.extra)) return std::nullopt;
    }
  }
  const TickDomain dom(q);
  const std::optional<Tick> lambda_ticks = dom.to_ticks(lambda);
  if (!lambda_ticks.has_value()) return std::nullopt;

  std::vector<SpikeTicks> spikes;
  if (injector != nullptr) {
    for (const LatencySpike& s : injector->plan().spikes) {
      const auto from = dom.to_ticks(s.from);
      const auto until = dom.to_ticks(s.until);
      const auto extra = dom.to_ticks(s.extra);
      if (!from || !until || !extra) return std::nullopt;
      spikes.push_back(SpikeTicks{*from, *until, *extra});
      extra_sum += *extra;
    }
  }

  // Static headroom: each queue event advances some clock by at most
  // step_max = 1 + lambda + sum(spike extras) ticks, and there are at most
  // max_events of them, so admitting only runs with (max_events + 4) *
  // step_max below kTickCap keeps every tick expression under 2^62 --
  // overflow-free by construction (timer fire times are additionally
  // capped at kTickCap on entry; see the enqueue_timer paths).
  const int128 step_max = static_cast<int128>(q) + *lambda_ticks + extra_sum;
  if ((static_cast<int128>(max_events) + 4) * step_max >= kTickCap) {
    return std::nullopt;
  }

  std::vector<std::optional<Tick>> crash_ticks;
  if (injector != nullptr) {
    crash_ticks.resize(params.n());
    for (ProcId p = 0; p < params.n(); ++p) {
      const auto& c = injector->crash_time(p);
      if (!c.has_value()) continue;
      const std::optional<Tick> ct = dom.to_ticks(*c);
      if (!ct.has_value()) return std::nullopt;
      crash_ticks[p] = *ct;
    }
  }

  TickRunSetup setup;
  setup.q = q;
  setup.lambda_ticks = *lambda_ticks;
  setup.crash_ticks = std::move(crash_ticks);
  setup.spike_ticks = std::move(spikes);
  return setup;
}

}  // namespace postal
