// Delivery traces and the analyses shared by the schedule validator and the
// event-driven machine: coverage (who got what), order preservation, and
// makespan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/params.hpp"
#include "support/rational.hpp"

namespace postal {

/// One completed message delivery.
struct Delivery {
  ProcId src = 0;
  ProcId dst = 0;
  MsgId msg = 0;
  Rational send_start;  ///< sender started transmitting at this time
  Rational arrival;     ///< receiver finished receiving (send_start + lambda)

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// A full run trace: all deliveries of one simulation.
class Trace {
 public:
  Trace(std::uint64_t n, std::uint32_t messages);

  /// Record one delivery.
  void record(const Delivery& d);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t messages() const noexcept { return messages_; }
  [[nodiscard]] const std::vector<Delivery>& deliveries() const noexcept {
    return deliveries_;
  }

  /// Earliest arrival of message `msg` at processor `p` (nullopt if never).
  [[nodiscard]] std::optional<Rational> arrival(ProcId p, MsgId msg) const;

  /// Latest arrival over all deliveries. A trace with zero deliveries has
  /// makespan 0 by convention: broadcasting among n = 1 processors (the
  /// origin already holds everything) legitimately sends nothing and
  /// completes at t = 0. Downstream consumers share the convention -- the
  /// validator reports makespan 0 and the Chrome-trace exporter emits a
  /// valid metadata-only document (see obs/trace_export.hpp).
  [[nodiscard]] Rational makespan() const;

  /// True iff every processor other than `origin` received every message
  /// id in [0, messages).
  [[nodiscard]] bool covers_all(ProcId origin) const;

  /// Processors (excluding origin) missing at least one message.
  [[nodiscard]] std::vector<ProcId> uncovered(ProcId origin) const;

  /// True iff every processor receives messages in increasing id order
  /// (first arrivals compared; the paper's order-preservation property).
  [[nodiscard]] bool order_preserving() const;

  /// Human-readable order violations ("p3 got M2 before M1 ..."), empty if
  /// order_preserving().
  [[nodiscard]] std::vector<std::string> order_violations() const;

 private:
  std::uint64_t n_;
  std::uint32_t messages_;
  std::vector<Delivery> deliveries_;
  // first_arrival_[p * messages_ + msg]; nullopt until delivered.
  std::vector<std::optional<Rational>> first_arrival_;
};

}  // namespace postal
