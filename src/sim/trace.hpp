// Delivery traces and the analyses shared by the schedule validator and the
// event-driven machine: coverage (who got what), order preservation, and
// makespan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/params.hpp"
#include "support/rational.hpp"

namespace postal {

/// One completed message delivery.
struct Delivery {
  ProcId src = 0;
  ProcId dst = 0;
  MsgId msg = 0;
  Rational send_start;  ///< sender started transmitting at this time
  Rational arrival;     ///< receiver finished receiving (send_start + lambda)

  friend bool operator==(const Delivery&, const Delivery&) = default;
};

/// How much of a run's delivery history a Trace retains
/// (docs/SIMULATION.md, "trace elision").
enum class TraceMode : std::uint8_t {
  /// Materialize every Delivery in pop order (the default). The full list
  /// is the byte-replayable artifact the differential suites and the
  /// Chrome-trace exporter consume.
  kFull,
  /// Keep only the per-(processor, message) first arrivals, the delivery
  /// count, and the running makespan; deliveries() stays empty. Coverage,
  /// order preservation, arrival() and makespan() are unchanged -- only
  /// the raw delivery list is elided. For callers that never read it
  /// (sampled execution tiers, headline benches) this removes the
  /// dominant memory traffic of a large run.
  kCounters,
};

/// A full run trace: all deliveries of one simulation.
class Trace {
 public:
  Trace(std::uint64_t n, std::uint32_t messages, TraceMode mode = TraceMode::kFull);

  /// Record one delivery (under kCounters: counters/first-arrival only).
  void record(const Delivery& d);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t messages() const noexcept { return messages_; }
  [[nodiscard]] TraceMode mode() const noexcept { return mode_; }
  [[nodiscard]] const std::vector<Delivery>& deliveries() const noexcept {
    return deliveries_;
  }

  /// Deliveries recorded, independent of mode (under kCounters the list
  /// itself is elided but the count is exact).
  [[nodiscard]] std::uint64_t delivery_count() const noexcept {
    return mode_ == TraceMode::kCounters
               ? counters_count_
               : static_cast<std::uint64_t>(deliveries_.size());
  }

  /// Earliest arrival of message `msg` at processor `p` (nullopt if never).
  [[nodiscard]] std::optional<Rational> arrival(ProcId p, MsgId msg) const;

  /// Latest arrival over all deliveries. A trace with zero deliveries has
  /// makespan 0 by convention: broadcasting among n = 1 processors (the
  /// origin already holds everything) legitimately sends nothing and
  /// completes at t = 0. Downstream consumers share the convention -- the
  /// validator reports makespan 0 and the Chrome-trace exporter emits a
  /// valid metadata-only document (see obs/trace_export.hpp).
  [[nodiscard]] Rational makespan() const;

  /// True iff every processor other than `origin` received every message
  /// id in [0, messages).
  [[nodiscard]] bool covers_all(ProcId origin) const;

  /// Processors (excluding origin) missing at least one message.
  [[nodiscard]] std::vector<ProcId> uncovered(ProcId origin) const;

  /// True iff every processor receives messages in increasing id order
  /// (first arrivals compared; the paper's order-preservation property).
  [[nodiscard]] bool order_preserving() const;

  /// Human-readable order violations ("p3 got M2 before M1 ..."), empty if
  /// order_preserving().
  [[nodiscard]] std::vector<std::string> order_violations() const;

  // -- Replay interface (sim/par_machine.cpp, merge-replay v2) ------------
  //
  // ParMachine's barrier materializes each window's deliveries in parallel:
  // the sequential stamp-resolution pass assigns every delivery its global
  // slot, then each shard writes its own slots concurrently. Safe because
  // the slots are disjoint by construction and each first-arrival cell
  // (dst, msg) is only ever written by the shard owning `dst`
  // (docs/SIMULATION.md).

  /// kFull only: grow the delivery list by `count` empty slots; returns the
  /// index of the first new slot.
  std::size_t replay_extend(std::size_t count);

  /// kFull only: fill slot `index` (from replay_extend) with `d`, updating
  /// the (dst, msg) first-arrival cell.
  void replay_set(std::size_t index, const Delivery& d);

  /// kCounters only: update the (dst, msg) first-arrival cell for one
  /// delivery. Shard-parallel safe under the ownership rule above; the
  /// count/makespan half lives shard-local until counters_fold().
  void counters_note(ProcId dst, MsgId msg, const Rational& arrival);

  /// kCounters only: fold one shard's delivery count and latest arrival
  /// into the global counters (sequential, once per shard per run).
  void counters_fold(std::uint64_t count, const Rational& max_arrival);

 private:
  std::uint64_t n_;
  std::uint32_t messages_;
  TraceMode mode_;
  std::vector<Delivery> deliveries_;
  // first_arrival_[p * messages_ + msg]; nullopt until delivered.
  std::vector<std::optional<Rational>> first_arrival_;
  std::uint64_t counters_count_ = 0;  ///< kCounters: deliveries recorded
  Rational counters_makespan_{0};     ///< kCounters: latest arrival seen
};

}  // namespace postal
