// JSON export of schedules and simulation reports, for downstream tooling
// (plotting, trace viewers, regression dashboards). Hand-rolled writer --
// the structures are flat and the library carries no third-party deps.
//
// Format (stable, documented):
//   schedule: {"lambda": "5/2", "n": 14, "events":
//              [{"src":0,"dst":9,"msg":0,"t":"0"}, ...]}
//   report:   {"ok": true, "makespan": "15/2", "order_preserving": true,
//              "violations": ["..."]}
// Rationals are serialized as exact strings ("15/2"), never floats.
//
// This module covers the two flat *library* structures. For run-level
// observability output -- metric snapshots as JSON lines, Chrome trace_event
// timelines, machine-readable bench records -- see src/obs/ and
// docs/OBSERVABILITY.md; those exporters follow the same exact-string rule
// for rationals and add a float convenience field where viewers need one.
#pragma once

#include <string>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/validator.hpp"

namespace postal {

/// Serialize a schedule (with its system parameters) to a JSON object.
[[nodiscard]] std::string schedule_to_json(const Schedule& schedule,
                                           const PostalParams& params);

/// Serialize a validation report to a JSON object.
[[nodiscard]] std::string report_to_json(const SimReport& report);

/// Escape a string for embedding in JSON (quotes, backslashes, control
/// characters).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace postal
