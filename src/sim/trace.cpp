#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace postal {

Trace::Trace(std::uint64_t n, std::uint32_t messages, TraceMode mode)
    : n_(n), messages_(messages), mode_(mode) {
  POSTAL_REQUIRE(n_ >= 1, "Trace: need at least one processor");
  first_arrival_.resize(n_ * messages_);
}

void Trace::record(const Delivery& d) {
  POSTAL_REQUIRE(d.dst < n_ && d.src < n_, "Trace::record: processor id out of range");
  POSTAL_REQUIRE(d.msg < messages_, "Trace::record: message id out of range");
  if (mode_ == TraceMode::kCounters) {
    ++counters_count_;
    if (d.arrival > counters_makespan_) counters_makespan_ = d.arrival;
  } else {
    deliveries_.push_back(d);
  }
  auto& slot = first_arrival_[d.dst * messages_ + d.msg];
  if (!slot.has_value() || d.arrival < *slot) slot = d.arrival;
}

std::optional<Rational> Trace::arrival(ProcId p, MsgId msg) const {
  POSTAL_REQUIRE(p < n_, "Trace::arrival: processor id out of range");
  POSTAL_REQUIRE(msg < messages_, "Trace::arrival: message id out of range");
  return first_arrival_[p * messages_ + msg];
}

Rational Trace::makespan() const {
  if (mode_ == TraceMode::kCounters) return counters_makespan_;
  Rational latest(0);
  for (const Delivery& d : deliveries_) latest = rmax(latest, d.arrival);
  return latest;
}

std::size_t Trace::replay_extend(std::size_t count) {
  POSTAL_CHECK(mode_ == TraceMode::kFull);
  const std::size_t base = deliveries_.size();
  deliveries_.resize(base + count);
  return base;
}

void Trace::replay_set(std::size_t index, const Delivery& d) {
  deliveries_[index] = d;
  auto& slot = first_arrival_[d.dst * messages_ + d.msg];
  if (!slot.has_value() || d.arrival < *slot) slot = d.arrival;
}

void Trace::counters_note(ProcId dst, MsgId msg, const Rational& arrival) {
  auto& slot = first_arrival_[dst * messages_ + msg];
  if (!slot.has_value() || arrival < *slot) slot = arrival;
}

void Trace::counters_fold(std::uint64_t count, const Rational& max_arrival) {
  POSTAL_CHECK(mode_ == TraceMode::kCounters);
  counters_count_ += count;
  if (max_arrival > counters_makespan_) counters_makespan_ = max_arrival;
}

bool Trace::covers_all(ProcId origin) const { return uncovered(origin).empty(); }

std::vector<ProcId> Trace::uncovered(ProcId origin) const {
  std::vector<ProcId> missing;
  for (ProcId p = 0; p < n_; ++p) {
    if (p == origin) continue;
    for (MsgId msg = 0; msg < messages_; ++msg) {
      if (!first_arrival_[p * messages_ + msg].has_value()) {
        missing.push_back(p);
        break;
      }
    }
  }
  return missing;
}

bool Trace::order_preserving() const { return order_violations().empty(); }

std::vector<std::string> Trace::order_violations() const {
  std::vector<std::string> out;
  for (ProcId p = 0; p < n_; ++p) {
    // First arrivals must be nondecreasing in message id: message i+1 may
    // not be fully received before message i.
    for (MsgId msg = 0; msg + 1 < messages_; ++msg) {
      const auto& a = first_arrival_[p * messages_ + msg];
      const auto& b = first_arrival_[p * messages_ + msg + 1];
      if (a.has_value() && b.has_value() && *b < *a) {
        std::ostringstream oss;
        oss << "p" << p << " received M" << (msg + 2) << " at t=" << *b
            << " before M" << (msg + 1) << " at t=" << *a;
        out.push_back(oss.str());
      }
    }
  }
  return out;
}

}  // namespace postal
