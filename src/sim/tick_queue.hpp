// The tick-keyed twin of EventQueue: a bucketed monotone integer-time
// queue with a recycled payload arena (docs/PERFORMANCE.md).
//
// ## Contract
//
// Identical to EventQueue's (time, seq) contract: pops are ordered by
// (tick, seq) -- strictly earliest tick first, FIFO among events at the
// same tick. The caller supplies the seq explicitly (the Machine shares
// one counter between this queue and a Rational side queue so a mid-run
// engine transplant preserves global order); seqs must be distinct and
// each push's seq larger than any already-popped event at the same tick.
// tests/sim/event_queue_test.cpp verifies both queues against the same
// randomized workloads.
//
// ## Why a calendar, not a heap
//
// Event-driven simulation only ever schedules at or after the current
// time, so pushes are *monotone*: never earlier than the last pop. That
// admits a calendar layout with O(1) push/pop instead of a binary heap's
// O(log n) Rational comparisons: the near future is a ring of per-tick
// FIFO buckets (vectors of (seq, arena index); appending preserves FIFO
// because seqs only grow), and events beyond the ring horizon overflow
// into a small (tick, seq) min-heap that refills the ring when the cursor
// reaches them. Pops scan forward from the cursor -- total scan work over
// a run is bounded by the time span crossed, and in the simulators' dense
// schedules the next bucket is almost always within a step or two.
//
// ## The arena
//
// Payloads live in a vector recycled through a free list; a run allocates
// only while growing to its high-water mark, and clear() keeps all
// capacity for the next run -- this is the "per-run event arena" that
// removes the per-event heap allocations of the Rational path.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/ticks.hpp"

namespace postal {

/// Monotone (tick, seq)-ordered queue of payloads; see file comment.
template <typename Payload>
class TickEventQueue {
 public:
  TickEventQueue() : ring_(kRingSize), head_(kRingSize, 0) {}

  /// Insert at `time` (>= the last popped time, >= 0) with explicit `seq`.
  void push(Tick time, std::uint64_t seq, Payload payload) {
    POSTAL_CHECK(time >= cursor_);
    const std::uint32_t idx = alloc(std::move(payload));
    if (time < base_ + static_cast<Tick>(kRingSize)) {
      ring_[bucket(time)].push_back(Slot{seq, idx});
      ++ring_count_;
    } else {
      far_.push(Far{time, seq, idx});
    }
    ++size_;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Tick of the earliest event; requires !empty(). Commits the scan: the
  /// cursor moves to that tick, so later pushes below it are rejected even
  /// if nothing was popped there. Use peek_time() to look without
  /// committing.
  [[nodiscard]] Tick next_time() {
    advance();
    return cursor_;
  }

  /// Tick of the earliest event without moving the cursor; requires
  /// !empty(). Lets a caller decide *whether* to pop here at all (e.g.
  /// ParMachine's window loops stop at a horizon, then push barrier
  /// traffic at ticks the committed cursor would have overshot). Cost
  /// mirrors advance()'s forward scan without its amortization, bounded
  /// by the ring size.
  [[nodiscard]] Tick peek_time() const {
    POSTAL_CHECK(size_ != 0);
    if (ring_count_ == 0) return far_.top().time;
    Tick t = cursor_;
    while (true) {
      POSTAL_CHECK(t < base_ + static_cast<Tick>(kRingSize));
      const std::size_t b = bucket(t);
      if (head_[b] < ring_[b].size()) return t;
      ++t;
    }
  }

  /// Remove and return the earliest event; requires !empty().
  std::pair<Tick, Payload> pop() {
    auto [tick, slot] = take();
    Payload out = std::move(arena_[slot.idx]);
    free_.push_back(slot.idx);
    return {tick, std::move(out)};
  }

  /// Batched per-bucket pop: position the cursor on the earliest nonempty
  /// tick and hand every event at that tick to fn(seq, Payload&&) in FIFO
  /// order -- including events fn itself pushes back at the same tick while
  /// the batch drains, exactly as repeated pop() calls would order them.
  /// Returns the drained tick. Requires !empty(). fn may push() into this
  /// queue but must not pop/drain/clear it. Compared to a pop() loop this
  /// touches the cursor/bucket bookkeeping once per tick instead of once
  /// per event; slot metadata (seq, arena index) stays separate from the
  /// payload arena, so the batch walk is a contiguous scan. This is the
  /// data-oriented hot path of ParMachine's shard loop
  /// (docs/SIMULATION.md).
  template <typename Fn>
  Tick drain_current_tick(Fn&& fn) {
    advance();
    const Tick tick = cursor_;
    const std::size_t b = bucket(tick);
    std::vector<Slot>& slots = ring_[b];
    std::size_t i = head_[b];
    std::size_t drained = 0;
    // Index-based: fn may push at `tick`, growing (and reallocating) the
    // bucket vector mid-walk; seqs only grow, so appends extend FIFO order.
    while (i < slots.size()) {
      const Slot slot = slots[i];
      ++i;
      ++drained;
      Payload payload = std::move(arena_[slot.idx]);
      free_.push_back(slot.idx);
      fn(slot.seq, std::move(payload));
    }
    slots.clear();
    head_[b] = 0;
    ring_count_ -= drained;
    size_ -= drained;
    return tick;
  }

  /// Empty the queue through fn(tick, seq, Payload&&), in pop order. Used
  /// by the Machine's transplant to hand every pending event (with its
  /// original seq) to the Rational engine.
  template <typename Fn>
  void drain(Fn&& fn) {
    while (size_ != 0) {
      auto [tick, slot] = take();
      fn(tick, slot.seq, std::move(arena_[slot.idx]));
      free_.push_back(slot.idx);
    }
  }

  /// Reset to empty, keeping arena/bucket capacity for the next run.
  void clear() {
    for (std::size_t b = 0; b < kRingSize; ++b) {
      ring_[b].clear();
      head_[b] = 0;
    }
    while (!far_.empty()) far_.pop();
    arena_.clear();
    free_.clear();
    size_ = 0;
    ring_count_ = 0;
    base_ = 0;
    cursor_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t seq;
    std::uint32_t idx;
  };
  struct Far {
    Tick time;
    std::uint64_t seq;
    std::uint32_t idx;
    // Min-heap on (time, seq): invert for std::priority_queue's max-heap.
    friend bool operator<(const Far& a, const Far& b) {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  static constexpr std::size_t kRingSize = 1024;  // power of two (mask below)

  static std::size_t bucket(Tick t) noexcept {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t)) &
           (kRingSize - 1);
  }

  std::uint32_t alloc(Payload&& payload) {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      arena_[idx] = std::move(payload);
      return idx;
    }
    POSTAL_CHECK(arena_.size() < UINT32_MAX);
    arena_.push_back(std::move(payload));
    return static_cast<std::uint32_t>(arena_.size() - 1);
  }

  /// Move the cursor to the earliest nonempty bucket; requires !empty().
  void advance() {
    POSTAL_CHECK(size_ != 0);
    if (ring_count_ == 0) {
      // Nothing in the window: jump the window to the far heap's minimum.
      // All ring buckets are empty here, so rebasing cannot strand slots,
      // and the heap pops in (time, seq) order, so same-bucket appends
      // stay FIFO.
      base_ = far_.top().time;
      cursor_ = base_;
      refill();
    }
    // ring_count_ > 0 here, every live slot's tick is in [cursor_, base_ +
    // kRingSize) (pushes are >= cursor_, the window spans exactly kRingSize
    // ticks so each bucket holds one tick value), hence the scan hits a
    // nonempty bucket before the window edge.
    while (true) {
      POSTAL_CHECK(cursor_ < base_ + static_cast<Tick>(kRingSize));
      const std::size_t b = bucket(cursor_);
      if (head_[b] < ring_[b].size()) return;
      ++cursor_;
    }
  }

  void refill() {
    while (!far_.empty() && far_.top().time < base_ + static_cast<Tick>(kRingSize)) {
      const Far f = far_.top();
      far_.pop();
      ring_[bucket(f.time)].push_back(Slot{f.seq, f.idx});
      ++ring_count_;
    }
  }

  std::pair<Tick, Slot> take() {
    advance();
    const std::size_t b = bucket(cursor_);
    const Slot slot = ring_[b][head_[b]++];
    if (head_[b] == ring_[b].size()) {
      ring_[b].clear();
      head_[b] = 0;
    }
    --ring_count_;
    --size_;
    return {cursor_, slot};
  }

  std::vector<std::vector<Slot>> ring_;  ///< per-tick FIFO buckets
  std::vector<std::size_t> head_;        ///< consumed prefix per bucket
  std::priority_queue<Far> far_;         ///< events at >= base_ + kRingSize
  std::vector<Payload> arena_;           ///< recycled payload storage
  std::vector<std::uint32_t> free_;      ///< arena free list
  std::size_t size_ = 0;
  std::size_t ring_count_ = 0;  ///< live slots currently in the ring
  Tick base_ = 0;               ///< ring window is [base_, base_ + kRingSize)
  Tick cursor_ = 0;             ///< current scan position (last pop's tick)
};

}  // namespace postal
