// A deterministic min-heap event queue over rational time.
//
// ## The (time, seq) tie-break contract
//
// Every push is stamped with a monotonically increasing sequence number,
// and pops are ordered by (time, seq): strictly earliest time first, and
// among events at the *same* time, strictly first-pushed first (FIFO).
// This makes every simulation in this library reproducible independent of
// heap internals -- std::priority_queue gives no guarantee about equal
// keys, so the seq is load-bearing, not cosmetic. The contract is what the
// tick-keyed twin (sim/tick_queue.hpp) is verified against: both queues,
// fed the same (time, payload) pushes, pop the same payloads in the same
// order (tests/sim/event_queue_test.cpp).
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "support/rational.hpp"

namespace postal {

/// Priority queue of (time, payload) with FIFO tie-breaking on equal times.
template <typename Payload>
class EventQueue {
 public:
  void push(Rational time, Payload payload) {
    heap_.push(Entry{std::move(time), seq_++, std::move(payload)});
  }

  /// Insert with an explicit sequence number, keeping later push() stamps
  /// strictly larger. This is the transplant hook for the tick-domain fast
  /// path (sim/machine.cpp): when a tick run falls back to the Rational
  /// engine mid-run, every pending event is re-inserted here with its
  /// original seq, so the merged queue pops in exactly the order the
  /// single-engine run would have used.
  void push_at_seq(Rational time, std::uint64_t seq, Payload payload) {
    heap_.push(Entry{std::move(time), seq, std::move(payload)});
    if (seq >= seq_) seq_ = seq + 1;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest event; requires !empty().
  [[nodiscard]] const Rational& next_time() const { return heap_.top().time; }

  /// Remove and return the earliest event; requires !empty().
  std::pair<Rational, Payload> pop() {
    Entry top = heap_.top();
    heap_.pop();
    return {std::move(top.time), std::move(top.payload)};
  }

 private:
  struct Entry {
    Rational time;
    std::uint64_t seq;
    Payload payload;
    // std::priority_queue is a max-heap; invert so earliest (time, seq) wins.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace postal
