// A deterministic min-heap event queue over rational time.
//
// Ties in time are broken by insertion sequence (FIFO), which makes every
// simulation in this library reproducible independent of heap internals.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "support/rational.hpp"

namespace postal {

/// Priority queue of (time, payload) with FIFO tie-breaking on equal times.
template <typename Payload>
class EventQueue {
 public:
  void push(Rational time, Payload payload) {
    heap_.push(Entry{std::move(time), seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest event; requires !empty().
  [[nodiscard]] const Rational& next_time() const { return heap_.top().time; }

  /// Remove and return the earliest event; requires !empty().
  std::pair<Rational, Payload> pop() {
    Entry top = heap_.top();
    heap_.pop();
    return {std::move(top.time), std::move(top.payload)};
  }

 private:
  struct Entry {
    Rational time;
    std::uint64_t seq;
    Payload payload;
    // std::priority_queue is a max-heap; invert so earliest (time, seq) wins.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace postal
