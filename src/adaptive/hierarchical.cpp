#include "adaptive/hierarchical.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "support/interval_set.hpp"

namespace postal {

void TwoLevelParams::validate() const {
  POSTAL_REQUIRE(n >= 1, "TwoLevelParams: n must be >= 1");
  POSTAL_REQUIRE(cluster_size >= 1, "TwoLevelParams: cluster_size must be >= 1");
  POSTAL_REQUIRE(lambda_intra >= Rational(1), "TwoLevelParams: lambda_intra >= 1");
  POSTAL_REQUIRE(lambda_inter >= lambda_intra,
                 "TwoLevelParams: lambda_inter must be >= lambda_intra");
}

std::uint64_t TwoLevelParams::cluster_of(ProcId p) const { return p / cluster_size; }

const Rational& TwoLevelParams::lambda(ProcId a, ProcId b) const {
  return cluster_of(a) == cluster_of(b) ? lambda_intra : lambda_inter;
}

std::uint64_t TwoLevelParams::clusters() const {
  return (n + cluster_size - 1) / cluster_size;
}

Schedule hierarchical_flat_schedule(const TwoLevelParams& params) {
  params.validate();
  return bcast_schedule(PostalParams(params.n, params.lambda_inter));
}

Schedule hierarchical_two_level_schedule(const TwoLevelParams& params) {
  params.validate();
  Schedule schedule;
  const std::uint64_t K = params.clusters();
  const std::uint64_t c = params.cluster_size;

  // Phase 1: BCAST over the K cluster leaders at lambda_inter, with virtual
  // leader i mapped onto processor i*c.
  std::vector<Rational> inform(K, Rational(0));      // leader inform times
  std::vector<Rational> port_free(K, Rational(0));   // after phase-1 sends
  if (K >= 2) {
    const Schedule leaders = bcast_schedule(PostalParams(K, params.lambda_inter));
    for (const SendEvent& e : leaders.events()) {
      schedule.add(static_cast<ProcId>(e.src * c), static_cast<ProcId>(e.dst * c),
                   /*msg=*/0, e.t);
      inform[e.dst] = e.t + params.lambda_inter;
      port_free[e.src] = rmax(port_free[e.src], e.t + Rational(1));
    }
  }

  // Phase 2: every leader broadcasts inside its own cluster at lambda_intra,
  // starting when both it is informed and its output port has drained the
  // phase-1 sends.
  GenFib intra_fib(params.lambda_intra);
  for (std::uint64_t i = 0; i < K; ++i) {
    const std::uint64_t lo = i * c;
    const std::uint64_t hi = std::min<std::uint64_t>(lo + c, params.n);
    const Rational start = rmax(inform[i], port_free[i]);
    bcast_emit(schedule, intra_fib, static_cast<ProcId>(lo), hi - lo, start,
               /*msg=*/0);
  }
  schedule.sort();
  return schedule;
}

HeteroReport simulate_two_level(const Schedule& schedule, const TwoLevelParams& params) {
  params.validate();
  const std::uint64_t n = params.n;
  HeteroReport report;
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  std::vector<IntervalSet> send_port(n);
  std::vector<IntervalSet> recv_port(n);
  std::vector<std::optional<Rational>> informed(n);
  informed[0] = Rational(0);

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    const auto& held = informed[e.src];
    if (!held.has_value() || e.t < *held) {
      violate(who.str() + "sender not informed yet");
    }
    if (send_port[e.src].insert(e.t, e.t + Rational(1))) {
      violate(who.str() + "send-port conflict");
    }
    const Rational arrive = e.t + params.lambda(e.src, e.dst);
    if (recv_port[e.dst].insert(arrive - Rational(1), arrive)) {
      violate(who.str() + "receive-port conflict");
    }
    auto& dst_informed = informed[e.dst];
    if (!dst_informed.has_value() || arrive < *dst_informed) dst_informed = arrive;
    report.completion = rmax(report.completion, arrive);
  }
  for (ProcId p = 0; p < n; ++p) {
    if (!informed[p].has_value()) {
      violate("p" + std::to_string(p) + " never informed");
    }
  }
  report.ok = report.violations.empty();
  return report;
}

}  // namespace postal
