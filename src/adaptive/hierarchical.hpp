// Hierarchical latency -- the paper's Section 5 direction "investigate
// hierarchies of latency parameters that may be used to model subsystems
// within a larger system".
//
// Two-level postal model: n processors partitioned into clusters of size c
// (processor p belongs to cluster p / c). A send between processors in the
// same cluster experiences lambda_intra; across clusters, lambda_inter
// (lambda_inter >= lambda_intra >= 1).
//
// Algorithms:
//  * flat      -- a single generalized Fibonacci tree planned at the
//                 conservative lambda_inter (correct but ignores cheap
//                 intra-cluster wires);
//  * two-level -- BCAST over the cluster leaders at lambda_inter, then
//                 BCAST inside every cluster at lambda_intra.
//
// Completion is measured by an exact heterogeneous-latency simulator
// (validate/measure with per-pair lambda), so the bench can show where the
// hierarchy-aware plan wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// Parameters of the two-level system.
struct TwoLevelParams {
  std::uint64_t n = 0;            ///< total processors
  std::uint64_t cluster_size = 0; ///< c; the last cluster may be smaller
  Rational lambda_intra{1};
  Rational lambda_inter{1};

  void validate() const;

  /// Cluster index of processor p.
  [[nodiscard]] std::uint64_t cluster_of(ProcId p) const;
  /// Latency between two distinct processors.
  [[nodiscard]] const Rational& lambda(ProcId a, ProcId b) const;
  /// Number of clusters.
  [[nodiscard]] std::uint64_t clusters() const;
};

/// Flat plan: one BCAST tree planned at lambda_inter.
[[nodiscard]] Schedule hierarchical_flat_schedule(const TwoLevelParams& params);

/// Two-level plan: leaders first (lambda_inter), then clusters
/// (lambda_intra).
[[nodiscard]] Schedule hierarchical_two_level_schedule(const TwoLevelParams& params);

/// Result of simulating a schedule under per-pair latencies.
struct HeteroReport {
  bool ok = false;
  std::vector<std::string> violations;
  Rational completion;
};

/// Exact simulation/validation of any single-message broadcast schedule
/// under the two-level latency function: port exclusivity, causality, and
/// coverage, with lambda depending on the (src, dst) pair. Send times in
/// `schedule` are interpreted as-is; arrival = t + lambda(src, dst).
[[nodiscard]] HeteroReport simulate_two_level(const Schedule& schedule,
                                              const TwoLevelParams& params);

}  // namespace postal
