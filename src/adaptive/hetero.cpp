#include "adaptive/hetero.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "sched/bcast.hpp"
#include "support/interval_set.hpp"
#include "support/prng.hpp"

namespace postal {

HeteroLatency::HeteroLatency(std::uint64_t n, std::vector<Rational> matrix)
    : n_(n), matrix_(std::move(matrix)) {
  POSTAL_REQUIRE(n_ >= 1, "HeteroLatency: need at least one processor");
  POSTAL_REQUIRE(matrix_.size() == n_ * n_,
                 "HeteroLatency: matrix must be n x n (row-major)");
  for (std::uint64_t a = 0; a < n_; ++a) {
    for (std::uint64_t b = 0; b < n_; ++b) {
      if (a == b) continue;
      POSTAL_REQUIRE(matrix_[a * n_ + b] >= Rational(1),
                     "HeteroLatency: off-diagonal latencies must be >= 1");
    }
  }
}

HeteroLatency HeteroLatency::uniform(std::uint64_t n, const Rational& lambda) {
  return HeteroLatency(n, std::vector<Rational>(n * n, lambda));
}

HeteroLatency HeteroLatency::two_level(std::uint64_t n, std::uint64_t cluster,
                                       const Rational& intra, const Rational& inter) {
  POSTAL_REQUIRE(cluster >= 1, "HeteroLatency::two_level: cluster size must be >= 1");
  std::vector<Rational> matrix(n * n, intra);
  for (std::uint64_t a = 0; a < n; ++a) {
    for (std::uint64_t b = 0; b < n; ++b) {
      if (a / cluster != b / cluster) matrix[a * n + b] = inter;
    }
  }
  return HeteroLatency(n, std::move(matrix));
}

HeteroLatency HeteroLatency::random(std::uint64_t n, const Rational& lo,
                                    const Rational& hi, std::uint64_t seed) {
  POSTAL_REQUIRE(Rational(1) <= lo && lo <= hi,
                 "HeteroLatency::random: need 1 <= lo <= hi");
  // Quarter-grid values in [lo, hi], symmetric.
  const std::int64_t steps = ((hi - lo) * Rational(4)).floor();
  Xoshiro256 rng(seed);
  std::vector<Rational> matrix(n * n, lo);
  for (std::uint64_t a = 0; a < n; ++a) {
    for (std::uint64_t b = a + 1; b < n; ++b) {
      const auto k = static_cast<std::int64_t>(
          rng.uniform(0, static_cast<std::uint64_t>(steps)));
      const Rational value = lo + Rational(k, 4);
      matrix[a * n + b] = value;
      matrix[b * n + a] = value;
    }
  }
  return HeteroLatency(n, std::move(matrix));
}

const Rational& HeteroLatency::lambda(ProcId a, ProcId b) const {
  POSTAL_REQUIRE(a < n_ && b < n_, "HeteroLatency::lambda: id out of range");
  POSTAL_REQUIRE(a != b, "HeteroLatency::lambda: no self-latency");
  return matrix_[a * n_ + b];
}

Rational HeteroLatency::max_lambda() const {
  Rational best(1);
  for (std::uint64_t a = 0; a < n_; ++a) {
    for (std::uint64_t b = 0; b < n_; ++b) {
      if (a != b) best = rmax(best, matrix_[a * n_ + b]);
    }
  }
  return best;
}

HeteroSimReport simulate_hetero(const Schedule& schedule, const HeteroLatency& lat) {
  const std::uint64_t n = lat.n();
  HeteroSimReport report;
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  std::vector<IntervalSet> send_port(n);
  std::vector<IntervalSet> recv_port(n);
  std::vector<std::optional<Rational>> informed(n);
  informed[0] = Rational(0);

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    const auto& held = informed[e.src];
    if (!held.has_value() || e.t < *held) violate(who.str() + "sender not informed yet");
    if (send_port[e.src].insert(e.t, e.t + Rational(1))) {
      violate(who.str() + "send-port conflict");
    }
    const Rational arrive = e.t + lat.lambda(e.src, e.dst);
    if (recv_port[e.dst].insert(arrive - Rational(1), arrive)) {
      violate(who.str() + "receive-port conflict");
    }
    auto& dst = informed[e.dst];
    if (!dst.has_value() || arrive < *dst) dst = arrive;
    report.completion = rmax(report.completion, arrive);
  }
  for (ProcId p = 0; p < n; ++p) {
    if (!informed[p].has_value()) violate("p" + std::to_string(p) + " never informed");
  }
  report.ok = report.violations.empty();
  return report;
}

Schedule hetero_greedy_broadcast(const HeteroLatency& lat) {
  const std::uint64_t n = lat.n();
  Schedule schedule;
  if (n == 1) return schedule;

  std::vector<std::optional<Rational>> free_at(n);  // informed -> next free
  free_at[0] = Rational(0);
  std::vector<bool> informed(n, false);
  informed[0] = true;
  std::uint64_t remaining = n - 1;

  while (remaining > 0) {
    // Pick the (sender, target) pair with the earliest possible arrival;
    // break ties toward lower ids for determinism.
    std::optional<Rational> best_arrival;
    ProcId best_s = 0;
    ProcId best_q = 0;
    for (ProcId s = 0; s < n; ++s) {
      if (!free_at[s].has_value()) continue;
      for (ProcId q = 0; q < n; ++q) {
        if (informed[q]) continue;
        const Rational arrival = *free_at[s] + lat.lambda(s, q);
        if (!best_arrival.has_value() || arrival < *best_arrival) {
          best_arrival = arrival;
          best_s = s;
          best_q = q;
        }
      }
    }
    POSTAL_CHECK(best_arrival.has_value());
    schedule.add(best_s, best_q, /*msg=*/0, *free_at[best_s]);
    free_at[best_s] = *free_at[best_s] + Rational(1);
    free_at[best_q] = *best_arrival;
    informed[best_q] = true;
    --remaining;
  }
  schedule.sort();
  return schedule;
}

Schedule hetero_conservative_broadcast(const HeteroLatency& lat) {
  // Plan a plain generalized Fibonacci tree at the worst-case latency;
  // running it under the true matrix only makes arrivals earlier, and the
  // planned send times remain valid.
  return bcast_schedule(PostalParams(lat.n(), lat.max_lambda()));
}

}  // namespace postal
