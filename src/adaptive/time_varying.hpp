// Time-varying latency profiles and broadcasting under them -- the paper's
// Section 5 open problem "explore time-changing values of lambda and design
// algorithms that adapt to changing lambda".
//
// Semantics: a send started at time t experiences the latency in force at
// its start, lambda(t); the recipient is informed at t + lambda(t). (Sends
// still occupy the sender for one unit; lambda(t) >= 1 always.)
//
// Three planners are compared:
//   * static  -- plans the whole generalized Fibonacci tree with lambda(0)
//                and never revises it;
//   * adaptive-- every holder re-plans its split with the latency in force
//                at each send (an idealized, perfectly informed adapter);
//   * estimated -- holders share an EWMA estimator fed by every completed
//                delivery and plan with its current output (a realistic
//                adapter).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "adaptive/estimator.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// A piecewise-constant latency profile lambda(t) >= 1.
class LatencyProfile {
 public:
  /// Pieces: (start_time, lambda) with strictly increasing start times,
  /// first start at 0. Throws InvalidArgument otherwise.
  explicit LatencyProfile(std::vector<std::pair<Rational, Rational>> pieces);

  /// Constant profile.
  [[nodiscard]] static LatencyProfile constant(const Rational& lambda);

  /// Profile that steps from `from` to `to` at time `when`.
  [[nodiscard]] static LatencyProfile step(const Rational& from, const Rational& to,
                                           const Rational& when);

  /// The latency in force at time t >= 0.
  [[nodiscard]] const Rational& at(const Rational& t) const;

  [[nodiscard]] const std::vector<std::pair<Rational, Rational>>& pieces()
      const noexcept {
    return pieces_;
  }

 private:
  std::vector<std::pair<Rational, Rational>> pieces_;
};

/// Which planner drives the broadcast under a varying profile.
enum class AdaptPolicy {
  kStatic,     ///< plan with lambda(0) forever
  kAdaptive,   ///< plan each send with the true lambda at that instant
  kEstimated,  ///< plan each send with a shared EWMA estimate
};

/// Result of a time-varying broadcast run.
struct AdaptiveRunResult {
  Schedule schedule;    ///< the sends performed (send times only)
  Rational completion;  ///< last inform time under the profile
};

/// Broadcast one message from p_0 to n processors under `profile` using
/// `policy`. Event-driven: each holder keeps sending into its remaining
/// range every unit of time, choosing each split with the planner's
/// current latency belief. Completion is exact under the profile.
[[nodiscard]] AdaptiveRunResult adaptive_broadcast(std::uint64_t n,
                                                   const LatencyProfile& profile,
                                                   AdaptPolicy policy);

}  // namespace postal
