#include "adaptive/estimator.hpp"

#include "support/error.hpp"

namespace postal {

Rational quantize(const Rational& value, std::int64_t grid) {
  POSTAL_REQUIRE(grid >= 1, "quantize: grid must be >= 1");
  // round(value * grid) with half-up ties, then divide back.
  const Rational scaled = value * Rational(grid);
  const Rational shifted = scaled + Rational(1, 2);
  return Rational(shifted.floor(), grid);
}

LatencyEstimator::LatencyEstimator(Rational alpha, Rational initial, std::int64_t grid)
    : alpha_(std::move(alpha)), estimate_(std::move(initial)), grid_(grid) {
  POSTAL_REQUIRE(alpha_ > Rational(0) && alpha_ <= Rational(1),
                 "LatencyEstimator: alpha must be in (0, 1]");
  POSTAL_REQUIRE(estimate_ >= Rational(1),
                 "LatencyEstimator: initial estimate must be >= 1");
  POSTAL_REQUIRE(grid_ >= 1, "LatencyEstimator: grid must be >= 1");
  estimate_ = quantize(estimate_, grid_);
}

void LatencyEstimator::observe(const Rational& sample) {
  POSTAL_REQUIRE(sample >= Rational(0), "LatencyEstimator: sample must be >= 0");
  estimate_ = estimate_ + alpha_ * (sample - estimate_);
  estimate_ = rmax(quantize(estimate_, grid_), Rational(1));
  ++samples_;
}

}  // namespace postal
