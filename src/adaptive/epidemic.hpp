// Randomized (epidemic / rumor-spreading) broadcast in the postal model:
// every informed processor sends to a *uniformly random* other processor
// every unit of time, with no coordination, no ranges, and no knowledge of
// who is informed. The classic gossip baseline.
//
// Purpose: quantify the price of obliviousness against Theorem 6. The
// epidemic completes in O(lambda * log n) with high probability -- a
// constant factor above the optimal generalized Fibonacci tree (largest,
// ~1.85x, in the telephone regime) -- and burns Theta(log n) duplicate
// deliveries per processor; the bench maps both costs.
//
// Modeling note: duplicate arrivals at an already-informed processor are
// counted but not charged to its receive port (the hardware discards
// them); the *informing* arrivals respect postal timing exactly.
#pragma once

#include <cstdint>

#include "model/params.hpp"
#include "support/rational.hpp"

namespace postal {

/// One epidemic run.
struct EpidemicResult {
  Rational completion;          ///< time the last processor was informed
  std::uint64_t total_sends = 0;
  std::uint64_t duplicate_deliveries = 0;  ///< arrivals at already-informed procs
  bool finished = false;        ///< false only if the safety cap tripped
};

/// Simulate one epidemic broadcast from p_0 (deterministic in `seed`).
/// Every informed processor sends to a random target (not itself) at its
/// inform time, inform time + 1, ... until everyone is informed. The run
/// aborts (finished == false) after a generous safety cap of sends.
[[nodiscard]] EpidemicResult run_epidemic(const PostalParams& params,
                                          std::uint64_t seed);

/// Aggregate over `trials` independent runs.
struct EpidemicStats {
  Rational mean_completion;  ///< exact rational mean
  Rational worst_completion;
  double mean_duplicates_per_proc = 0.0;
  std::uint64_t trials = 0;
};

[[nodiscard]] EpidemicStats epidemic_stats(const PostalParams& params,
                                           std::uint64_t trials, std::uint64_t seed);

}  // namespace postal
