// Online latency estimation -- groundwork for the paper's Section 5
// direction "explore time-changing values of lambda and design algorithms
// that adapt to changing lambda".
//
// The estimator is an exponentially weighted moving average over observed
// one-way latencies, kept in exact rational arithmetic but re-quantized to
// a fixed grid after every update so denominators stay bounded no matter
// how many samples arrive.
#pragma once

#include <cstdint>

#include "support/rational.hpp"

namespace postal {

/// Quantize `value` to the nearest multiple of 1/grid (round half up).
[[nodiscard]] Rational quantize(const Rational& value, std::int64_t grid);

/// EWMA latency estimator: est <- est + alpha * (sample - est), clamped to
/// >= 1 (the postal model's domain) and quantized to `grid`.
class LatencyEstimator {
 public:
  /// alpha in (0, 1]; grid >= 1. Starts at `initial` (default lambda = 1).
  explicit LatencyEstimator(Rational alpha = Rational(1, 4),
                            Rational initial = Rational(1),
                            std::int64_t grid = 64);

  /// Feed one observed latency sample (must be >= 0).
  void observe(const Rational& sample);

  /// Current estimate; always >= 1 and a multiple of 1/grid.
  [[nodiscard]] const Rational& estimate() const noexcept { return estimate_; }

  /// Number of samples observed so far.
  [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

 private:
  Rational alpha_;
  Rational estimate_;
  std::int64_t grid_;
  std::uint64_t samples_ = 0;
};

}  // namespace postal
