// Fully heterogeneous latencies -- the general form of the paper's
// Section 5 direction "hierarchies of latency parameters that may be used
// to model subsystems within a larger system".
//
// The postal model keeps unit send/receive occupancy, but the latency is
// now an arbitrary matrix lambda(p, q) >= 1. This module provides:
//   * HeteroLatency      -- the matrix, with builders (uniform, two-level,
//                           random-clustered);
//   * simulate_hetero    -- exact single-message broadcast validation under
//                           the matrix (ports, causality, coverage);
//   * hetero_greedy_broadcast -- an earliest-arrival greedy planner: at
//                           every step the free sender/uninformed target
//                           pair with the earliest possible arrival sends
//                           next. Reduces to BCAST-quality schedules when
//                           the matrix is uniform (tested), and exploits
//                           cheap edges when it is not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// A symmetric-or-not latency matrix over n processors.
class HeteroLatency {
 public:
  /// From an explicit row-major matrix. Diagonal entries are ignored;
  /// off-diagonal entries must be >= 1.
  HeteroLatency(std::uint64_t n, std::vector<Rational> matrix);

  /// Uniform lambda everywhere (the plain postal model).
  [[nodiscard]] static HeteroLatency uniform(std::uint64_t n, const Rational& lambda);

  /// Two-level: lambda_intra within clusters of size c, lambda_inter across.
  [[nodiscard]] static HeteroLatency two_level(std::uint64_t n, std::uint64_t cluster,
                                               const Rational& intra,
                                               const Rational& inter);

  /// Random per-pair latency in {lo, lo + 1/4, ..., hi}, symmetric,
  /// deterministic in `seed`.
  [[nodiscard]] static HeteroLatency random(std::uint64_t n, const Rational& lo,
                                            const Rational& hi, std::uint64_t seed);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] const Rational& lambda(ProcId a, ProcId b) const;
  /// Largest off-diagonal entry (the conservative uniform bound).
  [[nodiscard]] Rational max_lambda() const;

 private:
  std::uint64_t n_;
  std::vector<Rational> matrix_;
};

/// Result of simulating a single-message broadcast under a matrix.
struct HeteroSimReport {
  bool ok = false;
  std::vector<std::string> violations;
  Rational completion;
};

/// Exact validation of a single-message broadcast schedule from p_0 under
/// per-pair latencies (arrival = t + lambda(src, dst)).
[[nodiscard]] HeteroSimReport simulate_hetero(const Schedule& schedule,
                                              const HeteroLatency& lat);

/// Earliest-arrival greedy broadcast planner. Returns a schedule that
/// simulate_hetero certifies; completion is its exact makespan.
[[nodiscard]] Schedule hetero_greedy_broadcast(const HeteroLatency& lat);

/// Baseline: plan a plain BCAST tree at the conservative max_lambda() and
/// run it under the true matrix (always valid; usually slower).
[[nodiscard]] Schedule hetero_conservative_broadcast(const HeteroLatency& lat);

}  // namespace postal
