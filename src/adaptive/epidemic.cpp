#include "adaptive/epidemic.hpp"

#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "support/prng.hpp"

namespace postal {

EpidemicResult run_epidemic(const PostalParams& params, std::uint64_t seed) {
  const std::uint64_t n = params.n();
  EpidemicResult result;
  if (n == 1) {
    result.finished = true;
    return result;
  }

  Xoshiro256 rng(seed);
  std::vector<bool> informed(n, false);
  informed[0] = true;
  std::uint64_t informed_count = 1;

  // Events are "processor p performs a send at time t". A processor's
  // sends are at inform_time + k, k = 0, 1, 2, ... Processing in global
  // time order makes first-delivery-wins exact.
  struct SendSlot {
    ProcId p;
  };
  EventQueue<SendSlot> queue;
  queue.push(Rational(0), SendSlot{0});

  // Safety cap: epidemic broadcast finishes in O(lambda log n) rounds whp;
  // 64 * n * 64 sends is far beyond any plausible run at our sizes.
  const std::uint64_t cap = 64ULL * 64ULL * n;
  while (informed_count < n && result.total_sends < cap) {
    auto [t, slot] = queue.pop();
    ++result.total_sends;
    // Uniform random target other than the sender.
    auto target = static_cast<ProcId>(rng.uniform(0, n - 2));
    if (target >= slot.p) ++target;
    const Rational arrival = t + params.lambda();
    if (informed[target]) {
      ++result.duplicate_deliveries;
    } else {
      informed[target] = true;
      ++informed_count;
      result.completion = rmax(result.completion, arrival);
      queue.push(arrival, SendSlot{target});
    }
    queue.push(t + Rational(1), SendSlot{slot.p});
  }
  result.finished = informed_count == n;
  return result;
}

EpidemicStats epidemic_stats(const PostalParams& params, std::uint64_t trials,
                             std::uint64_t seed) {
  POSTAL_REQUIRE(trials >= 1, "epidemic_stats: need at least one trial");
  EpidemicStats stats;
  stats.trials = trials;
  Rational sum(0);
  double duplicates = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    const EpidemicResult run = run_epidemic(params, seed + i);
    POSTAL_CHECK(run.finished);
    sum += run.completion;
    stats.worst_completion = rmax(stats.worst_completion, run.completion);
    duplicates += static_cast<double>(run.duplicate_deliveries);
  }
  stats.mean_completion = sum / Rational(static_cast<std::int64_t>(trials));
  stats.mean_duplicates_per_proc =
      duplicates / static_cast<double>(trials) / static_cast<double>(params.n());
  return stats;
}

}  // namespace postal
