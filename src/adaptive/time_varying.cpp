#include "adaptive/time_varying.hpp"

#include <map>
#include <optional>

#include "model/genfib.hpp"
#include "sim/event_queue.hpp"
#include "support/error.hpp"

namespace postal {

LatencyProfile::LatencyProfile(std::vector<std::pair<Rational, Rational>> pieces)
    : pieces_(std::move(pieces)) {
  POSTAL_REQUIRE(!pieces_.empty(), "LatencyProfile: need at least one piece");
  POSTAL_REQUIRE(pieces_.front().first == Rational(0),
                 "LatencyProfile: first piece must start at t = 0");
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    POSTAL_REQUIRE(pieces_[i].second >= Rational(1),
                   "LatencyProfile: lambda must be >= 1 everywhere");
    if (i > 0) {
      POSTAL_REQUIRE(pieces_[i - 1].first < pieces_[i].first,
                     "LatencyProfile: piece starts must strictly increase");
    }
  }
}

LatencyProfile LatencyProfile::constant(const Rational& lambda) {
  return LatencyProfile({{Rational(0), lambda}});
}

LatencyProfile LatencyProfile::step(const Rational& from, const Rational& to,
                                    const Rational& when) {
  POSTAL_REQUIRE(when > Rational(0), "LatencyProfile::step: step time must be > 0");
  return LatencyProfile({{Rational(0), from}, {when, to}});
}

const Rational& LatencyProfile::at(const Rational& t) const {
  POSTAL_REQUIRE(t >= Rational(0), "LatencyProfile::at: t must be >= 0");
  const Rational* lambda = &pieces_.front().second;
  for (const auto& [start, value] : pieces_) {
    if (start <= t) {
      lambda = &value;
    } else {
      break;
    }
  }
  return *lambda;
}

AdaptiveRunResult adaptive_broadcast(std::uint64_t n, const LatencyProfile& profile,
                                     AdaptPolicy policy) {
  POSTAL_REQUIRE(n >= 1, "adaptive_broadcast: n must be >= 1");
  POSTAL_REQUIRE(n <= static_cast<std::uint64_t>(INT64_MAX),
                 "adaptive_broadcast: n out of range");

  AdaptiveRunResult result;
  if (n == 1) return result;

  const Rational lambda0 = profile.at(Rational(0));
  LatencyEstimator estimator(Rational(1, 4), lambda0);
  std::map<Rational, GenFib> fib_cache;
  auto fib_for = [&fib_cache](const Rational& lambda) -> GenFib& {
    auto it = fib_cache.find(lambda);
    if (it == fib_cache.end()) it = fib_cache.emplace(lambda, GenFib(lambda)).first;
    return it->second;
  };

  auto belief = [&](const Rational& now) -> Rational {
    switch (policy) {
      case AdaptPolicy::kStatic:
        return lambda0;
      case AdaptPolicy::kAdaptive:
        return profile.at(now);
      case AdaptPolicy::kEstimated:
        return estimator.estimate();
    }
    throw LogicError("adaptive_broadcast: unknown policy");
  };

  struct HolderTask {
    std::uint64_t lo;
    std::uint64_t hi;
    std::optional<Rational> observed_latency;  ///< set when spawned by a delivery
  };
  EventQueue<HolderTask> queue;
  queue.push(Rational(0), HolderTask{0, n, std::nullopt});

  while (!queue.empty()) {
    auto [now, task] = queue.pop();
    if (task.observed_latency.has_value() && policy == AdaptPolicy::kEstimated) {
      estimator.observe(*task.observed_latency);
    }
    const std::uint64_t count = task.hi - task.lo;
    if (count < 2) continue;
    const Rational lambda_belief = belief(now);
    const std::uint64_t j = fib_for(lambda_belief).bcast_split(count);
    const std::uint64_t target = task.lo + j;
    const Rational& lambda_true = profile.at(now);
    result.schedule.add(static_cast<ProcId>(task.lo), static_cast<ProcId>(target),
                        /*msg=*/0, now);
    result.completion = rmax(result.completion, now + lambda_true);
    // Recipient starts broadcasting its sub-range when informed.
    queue.push(now + lambda_true, HolderTask{target, task.hi, lambda_true});
    // The holder continues on its own sub-range one unit later.
    queue.push(now + Rational(1), HolderTask{task.lo, target, std::nullopt});
  }

  result.schedule.sort();
  return result;
}

}  // namespace postal
