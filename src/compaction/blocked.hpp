// Schedule compaction and the blocked broadcast family -- an extension
// beyond the paper (flagged as such in DESIGN.md).
//
// The paper's multi-message algorithms compose one template schedule with a
// fixed analytic stride: REPEAT restarts BCAST every f_lambda(n) - (lambda-1)
// time units (Lemma 10's overlap argument). That argument is *sufficient*,
// not necessary: it only uses the root's idle tail. This module searches
// for the true minimal stride -- the smallest shift at which every copy of
// the template remains a legal postal schedule -- by binary-searching on
// the exact 1/q time grid with the full validator as the oracle.
//
// On top of the optimizer sits BLOCKED(b): split the m messages into
// ceil(m/b) blocks, broadcast each block with PIPELINE(b) (the best
// per-block primitive), and launch consecutive blocks at the minimal valid
// stride. b = m recovers PIPELINE; b = 1 recovers stride-optimized REPEAT;
// intermediate b interpolates. auto_blocked scans b and returns the best.
#pragma once

#include <cstdint>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The smallest stride s (a multiple of the lambda grid 1/q) such that
/// `copies` copies of `iteration` -- copy i shifted by i*s, with message
/// ids offset by i*msgs_per_iteration -- form a valid postal schedule in
/// `params`. Validity is monotone in s (shifting identical copies further
/// apart only separates their port windows), so binary search applies.
///
/// Requires: `iteration` itself validates with msgs_per_iteration messages
/// from origin p0. Throws InvalidArgument otherwise.
[[nodiscard]] Rational minimal_stride(const Schedule& iteration,
                                      const PostalParams& params,
                                      std::uint32_t msgs_per_iteration,
                                      std::uint32_t copies = 3);

/// The BLOCKED(b) schedule: ceil(m/b) PIPELINE blocks at the minimal valid
/// stride. Requires 1 <= b <= m. The final (possibly short) block reuses
/// the same stride, which is always sufficient. Sorted by time.
[[nodiscard]] Schedule blocked_schedule(const PostalParams& params, std::uint64_t m,
                                        std::uint64_t b);

/// Exact completion time of blocked_schedule (computed, not closed form).
[[nodiscard]] Rational predict_blocked(const PostalParams& params, std::uint64_t m,
                                       std::uint64_t b);

/// Result of the block-size scan.
struct BlockedPlan {
  std::uint64_t block = 1;   ///< chosen b
  Rational completion;       ///< its exact completion time
};

/// Scan b over {1, 2, 4, ..., m} (plus m itself) and return the best
/// block size for broadcasting m messages in `params`.
[[nodiscard]] BlockedPlan auto_blocked(const PostalParams& params, std::uint64_t m);

}  // namespace postal
