#include "compaction/blocked.hpp"

#include <numeric>

#include "sched/pipeline.hpp"
#include "sim/validator.hpp"

namespace postal {

namespace {

/// Common grid denominator of every event time in `s` and lambda itself:
/// all candidate strides are multiples of 1/Q.
std::int64_t grid_denominator(const Schedule& s, const Rational& lambda) {
  std::int64_t q = lambda.den();
  for (const SendEvent& e : s.events()) {
    q = std::lcm(q, e.t.den());
    POSTAL_CHECK(q > 0 && q < (1LL << 32));
  }
  return q;
}

bool copies_valid(const Schedule& iteration, const PostalParams& params,
                  std::uint32_t msgs_per_iteration, std::uint32_t copies,
                  const Rational& stride) {
  Schedule combined;
  for (std::uint32_t i = 0; i < copies; ++i) {
    combined.append_shifted(iteration, stride * Rational(static_cast<std::int64_t>(i)),
                            msgs_per_iteration * i);
  }
  ValidatorOptions options;
  options.messages = msgs_per_iteration * copies;
  return validate_schedule(combined, params, options).ok;
}

}  // namespace

Rational minimal_stride(const Schedule& iteration, const PostalParams& params,
                        std::uint32_t msgs_per_iteration, std::uint32_t copies) {
  POSTAL_REQUIRE(copies >= 2, "minimal_stride: need at least two copies");
  POSTAL_REQUIRE(msgs_per_iteration >= 1, "minimal_stride: need at least one message");
  {
    ValidatorOptions options;
    options.messages = msgs_per_iteration;
    POSTAL_REQUIRE(validate_schedule(iteration, params, options).ok,
                   "minimal_stride: the iteration template itself is invalid");
  }
  if (iteration.empty()) return Rational(0);
  const std::int64_t q = grid_denominator(iteration, params.lambda());
  const Rational step(1, q);
  const Rational upper = iteration.makespan(params.lambda());
  // Linear scan on the exact grid: validity of shifted interval patterns is
  // not monotone in the shift in general, so the first valid stride found
  // scanning upward is the true minimum.
  for (Rational s = step; s < upper; s += step) {
    if (copies_valid(iteration, params, msgs_per_iteration, copies, s)) return s;
  }
  POSTAL_CHECK(copies_valid(iteration, params, msgs_per_iteration, copies, upper));
  return upper;
}

Schedule blocked_schedule(const PostalParams& params, std::uint64_t m, std::uint64_t b) {
  POSTAL_REQUIRE(m >= 1, "blocked_schedule: m must be >= 1");
  POSTAL_REQUIRE(b >= 1 && b <= m, "blocked_schedule: block size must be in [1, m]");
  Schedule combined;
  if (params.n() == 1) return combined;

  const std::uint64_t blocks = (m + b - 1) / b;
  Rational last_shift(0);
  std::uint32_t msg_offset = 0;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    const std::uint64_t bi = std::min<std::uint64_t>(b, m - i * b);
    const Schedule block = pipeline_schedule(params, bi);
    if (i == 0) {
      combined.append_shifted(block, Rational(0), 0);
    } else {
      // Greedy compaction: the earliest grid shift after the previous
      // block's launch at which the combined schedule stays valid.
      const std::int64_t q = grid_denominator(block, params.lambda());
      const Rational step(1, q);
      const Rational upper =
          last_shift + combined.makespan(params.lambda());
      Rational shift = last_shift + step;
      for (;; shift += step) {
        POSTAL_CHECK(shift <= upper);
        Schedule candidate = combined;
        candidate.append_shifted(block, shift, msg_offset);
        ValidatorOptions options;
        options.messages = msg_offset + static_cast<std::uint32_t>(bi);
        if (validate_schedule(candidate, params, options).ok) {
          combined = std::move(candidate);
          break;
        }
      }
      last_shift = shift;
    }
    msg_offset += static_cast<std::uint32_t>(bi);
  }
  combined.sort();
  return combined;
}

Rational predict_blocked(const PostalParams& params, std::uint64_t m, std::uint64_t b) {
  return blocked_schedule(params, m, b).makespan(params.lambda());
}

BlockedPlan auto_blocked(const PostalParams& params, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "auto_blocked: m must be >= 1");
  BlockedPlan plan;
  bool first = true;
  auto consider = [&](std::uint64_t b) {
    const Rational t = predict_blocked(params, m, b);
    if (first || t < plan.completion) {
      plan.block = b;
      plan.completion = t;
      first = false;
    }
  };
  for (std::uint64_t b = 1; b < m; b *= 2) consider(b);
  consider(m);
  return plan;
}

}  // namespace postal
