// The high-level facade: one object that plans, predicts, and verifies
// every collective this library implements -- the API a downstream user
// (e.g. an MPI-library implementor evaluating latency-aware collectives)
// would program against.
//
//   postal::Communicator comm(64, postal::Rational(5, 2));
//   auto plan = comm.broadcast(12);       // best multi-message plan
//   plan.schedule                          // the sends to execute
//   plan.completion                        // exact predicted finish time
//   plan.verified                          // certified by the simulator
//
// Every plan returned by a Communicator has already been validated against
// the full postal model; `verified` is recorded for transparency and the
// class throws LogicError if any internal plan ever fails validation
// (which would be a library bug).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coord/consensus.hpp"
#include "coord/election.hpp"
#include "coord/log.hpp"
#include "faults/fault_plan.hpp"
#include "model/genfib.hpp"
#include "model/params.hpp"
#include "oracle/oracle.hpp"
#include "sched/registry.hpp"
#include "sched/schedule.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "support/rational.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"

namespace postal {

/// A planned collective: the schedule, its exact completion time, the
/// relevant lower bound, and the algorithm label.
struct CollectivePlan {
  Schedule schedule;
  Rational completion;
  Rational lower_bound;
  std::string algorithm;
  bool verified = false;
};

/// Plans optimal (or best-known) collectives for one MPS(n, lambda).
class Communicator {
 public:
  /// Throws InvalidArgument unless n >= 1 and lambda >= 1.
  Communicator(std::uint64_t n, Rational lambda);

  [[nodiscard]] std::uint64_t n() const noexcept { return params_.n(); }
  [[nodiscard]] const Rational& lambda() const noexcept { return params_.lambda(); }

  /// Simulation lanes for event-driven runs this Communicator launches
  /// (currently broadcast_reliable). Values > 1 select the sharded
  /// ParMachine engine (docs/SIMULATION.md); results are byte-identical at
  /// every setting. Clamped to >= 1. Planning calls are unaffected.
  void set_threads(unsigned threads) noexcept {
    threads_ = threads == 0 ? 1 : threads;
  }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Optimal single-message broadcast (Algorithm BCAST, Theorem 6); for
  /// m > 1, the best algorithm in the registry for this (n, m, lambda).
  [[nodiscard]] CollectivePlan broadcast(std::uint64_t m = 1);

  /// Broadcast with a specific Section 4 algorithm.
  [[nodiscard]] CollectivePlan broadcast_with(MultiAlgo algo, std::uint64_t m);

  /// Optimal combining into p_0 (time-reversed BCAST).
  [[nodiscard]] CollectivePlan reduce();

  /// Optimal personalized one-to-all / all-to-one.
  [[nodiscard]] CollectivePlan scatter();
  [[nodiscard]] CollectivePlan gather();

  /// Optimal gossip (direct exchange).
  [[nodiscard]] CollectivePlan allgather();

  /// Optimal personalized all-to-all (rotated exchange).
  [[nodiscard]] CollectivePlan alltoall();

  /// Two-phase barrier (combine + release broadcast).
  [[nodiscard]] CollectivePlan barrier();

  /// Two-phase exclusive prefix (up-sweep + down-sweep).
  [[nodiscard]] CollectivePlan scan();

  /// k-source gossip: sources[i] holds message i; everyone gets all k
  /// (gather-to-hub + PIPELINE broadcast).
  [[nodiscard]] CollectivePlan multi_source(const std::vector<ProcId>& sources);

  /// The exact optimal broadcast time f_lambda(n) (Theorem 6).
  [[nodiscard]] Rational broadcast_time();

  /// Per-rank queries against the optimal broadcast without materializing
  /// its schedule (docs/ORACLE.md): O(1)-memory inform-time / parent /
  /// children / send-slot answers for n far beyond what broadcast() can
  /// hold. Cheap to construct; backed by the process-wide GenFibCache.
  [[nodiscard]] oracle::ScheduleOracle broadcast_oracle() const;

  /// Reliable broadcast under an optional fault plan (docs/FAULTS.md):
  /// ack/timeout/retransmit with subtree repair on the optimal BCAST tree,
  /// executed on the event-driven Machine and judged against the
  /// f_lambda(n) baseline. Fault-free (plan == nullptr) the run IS
  /// Algorithm BCAST and completes in exactly broadcast_time().
  /// options.threads == 0 inherits set_threads().
  [[nodiscard]] ReliableBcastReport broadcast_reliable(
      const FaultPlan* plan = nullptr,
      const ReliableBcastOptions& options = {});

  /// Postal-model leader election under an optional fault plan
  /// (docs/COORDINATION.md): lambda-scaled heartbeat watchdogs detect a
  /// dead leader and the bully protocol installs the deterministic
  /// successor (highest rank or smallest BCAST-tree depth). The report
  /// carries the crash-aware validation and the coordination validator's
  /// verdict. options.threads == 0 inherits set_threads().
  [[nodiscard]] coord::ElectionReport elect_leader(
      const FaultPlan* plan = nullptr,
      const coord::ElectionOptions& options = {});

  /// Broadcast-based view-change consensus under an optional fault plan
  /// (docs/COORDINATION.md): epoch-numbered views, tree-disseminated
  /// proposals, quorum acks; agreement / validity / integrity certified by
  /// the coordination validator. options.threads == 0 inherits
  /// set_threads().
  [[nodiscard]] coord::ConsensusReport run_consensus(
      const FaultPlan* plan = nullptr,
      const coord::ConsensusOptions& options = {});

  /// Multi-decree replicated log under an optional fault plan
  /// (docs/COORDINATION.md): per-slot consensus instances sharing one
  /// view/leader, batched PROPOSE/COMMIT over the view's BCAST tree,
  /// lambda-scaled leader leases with fencing tokens, catch-up transfer
  /// for stragglers, and membership reconfiguration decided like any
  /// other slot. The report carries the crash-aware validation and the
  /// replicated-log validator's verdict. options.threads == 0 inherits
  /// set_threads().
  [[nodiscard]] coord::LogReport replicate_log(
      const FaultPlan* plan = nullptr, const coord::LogOptions& options = {});

  /// Submit one broadcast job with this Communicator's (n, lambda) to a
  /// running BroadcastService (docs/SERVICE.md): the job enters the
  /// admission queue at `arrival` (nondecreasing across submissions to
  /// `service`) and the outcome reports admit-or-shed, the exact start /
  /// completion / sojourn, and the planner used.
  [[nodiscard]] svc::JobOutcome broadcast_job(svc::BroadcastService& service,
                                              const Rational& arrival,
                                              std::uint64_t m = 1) const;

  /// Run the open-loop broadcast service over a seeded workload
  /// (docs/SERVICE.md): every job of (spec, seed) streamed through a fresh
  /// BroadcastService. The report is a pure function of
  /// (spec, seed, options) -- byte-replayable, no wall clock.
  [[nodiscard]] static svc::ServiceReport serve(
      const svc::WorkloadSpec& spec, std::uint64_t seed,
      const svc::ServiceOptions& options = {},
      obs::MetricsRegistry* metrics = nullptr);

 private:
  PostalParams params_;
  GenFib fib_;
  unsigned threads_ = 1;
};

}  // namespace postal
