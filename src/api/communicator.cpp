#include "api/communicator.hpp"

#include "collectives/allgather.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/barrier.hpp"
#include "collectives/multi_source.hpp"
#include "collectives/reduce.hpp"
#include "collectives/scan.hpp"
#include "collectives/scatter.hpp"
#include "model/bounds.hpp"
#include "sched/bcast.hpp"
#include "sim/validator.hpp"

namespace postal {

namespace {

/// Run the standard validator and stamp the plan; a failure here is a
/// library bug, not user error.
CollectivePlan finish(Schedule schedule, Rational completion, Rational lower,
                      std::string algorithm, const PostalParams& params,
                      const ValidatorOptions& options) {
  const SimReport report = validate_schedule(schedule, params, options);
  if (!report.ok) {
    throw LogicError("Communicator produced an invalid plan (" + algorithm +
                     "): " + report.summary());
  }
  POSTAL_CHECK(report.makespan == completion);
  CollectivePlan plan;
  plan.schedule = std::move(schedule);
  plan.completion = std::move(completion);
  plan.lower_bound = std::move(lower);
  plan.algorithm = std::move(algorithm);
  plan.verified = true;
  return plan;
}

}  // namespace

Communicator::Communicator(std::uint64_t n, Rational lambda)
    : params_(n, lambda), fib_(params_.lambda()) {}

Rational Communicator::broadcast_time() { return fib_.f(params_.n()); }

oracle::ScheduleOracle Communicator::broadcast_oracle() const {
  return oracle::ScheduleOracle(params_.n(), params_.lambda());
}

ReliableBcastReport Communicator::broadcast_reliable(
    const FaultPlan* plan, const ReliableBcastOptions& options) {
  ReliableBcastOptions effective = options;
  if (effective.threads == 0) effective.threads = threads_;
  return run_reliable_bcast(params_, plan, effective);
}

coord::ElectionReport Communicator::elect_leader(
    const FaultPlan* plan, const coord::ElectionOptions& options) {
  coord::ElectionOptions effective = options;
  if (effective.threads == 0) effective.threads = threads_;
  return coord::run_election(params_, plan, effective);
}

coord::ConsensusReport Communicator::run_consensus(
    const FaultPlan* plan, const coord::ConsensusOptions& options) {
  coord::ConsensusOptions effective = options;
  if (effective.threads == 0) effective.threads = threads_;
  return coord::run_consensus(params_, plan, effective);
}

coord::LogReport Communicator::replicate_log(const FaultPlan* plan,
                                             const coord::LogOptions& options) {
  coord::LogOptions effective = options;
  if (effective.threads == 0) effective.threads = threads_;
  return coord::run_log(params_, plan, effective);
}

svc::JobOutcome Communicator::broadcast_job(svc::BroadcastService& service,
                                            const Rational& arrival,
                                            std::uint64_t m) const {
  svc::Job job;
  job.id = service.counters().generated;
  job.arrival = arrival;
  job.n = params_.n();
  job.lambda = params_.lambda();
  job.m = m;
  return service.submit(job);
}

svc::ServiceReport Communicator::serve(const svc::WorkloadSpec& spec,
                                       std::uint64_t seed,
                                       const svc::ServiceOptions& options,
                                       obs::MetricsRegistry* metrics) {
  return svc::run_service(spec, seed, options, metrics);
}

CollectivePlan Communicator::broadcast(std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "Communicator::broadcast: m must be >= 1");
  if (m == 1) {
    ValidatorOptions options;
    options.messages = 1;
    options.require_coverage = params_.n() > 1;
    return finish(bcast_schedule(params_, fib_), fib_.f(params_.n()),
                  fib_.f(params_.n()), "BCAST", params_, options);
  }
  MultiAlgo best = MultiAlgo::kRepeat;
  Rational best_time;
  bool first = true;
  for (const MultiAlgo algo : all_multi_algos()) {
    const Rational t = predict_multi(algo, params_, m);
    if (first || t < best_time) {
      best = algo;
      best_time = t;
      first = false;
    }
  }
  return broadcast_with(best, m);
}

CollectivePlan Communicator::broadcast_with(MultiAlgo algo, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "Communicator::broadcast_with: m must be >= 1");
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  options.require_coverage = params_.n() > 1;
  return finish(make_multi_schedule(algo, params_, m),
                predict_multi(algo, params_, m), lemma8_lower(fib_, params_.n(), m),
                algo_name(algo), params_, options);
}

CollectivePlan Communicator::reduce() {
  // Reduce has combining semantics the generic validator cannot express;
  // use its dedicated checker and adapt the result.
  Schedule schedule = reduce_schedule(params_);
  const ReduceReport report = validate_reduce(schedule, params_);
  if (!report.ok) {
    throw LogicError("Communicator produced an invalid reduce plan");
  }
  CollectivePlan plan;
  plan.schedule = std::move(schedule);
  plan.completion = predict_reduce(params_);
  plan.lower_bound = plan.completion;  // mirrors broadcast optimality
  plan.algorithm = "REDUCE (reversed BCAST)";
  plan.verified = true;
  POSTAL_CHECK(params_.n() == 1 || report.completion == plan.completion);
  return plan;
}

CollectivePlan Communicator::scatter() {
  return finish(scatter_schedule(params_), predict_scatter(params_),
                scatter_gather_lower_bound(params_), "SCATTER (direct)", params_,
                scatter_goal(params_));
}

CollectivePlan Communicator::gather() {
  return finish(gather_schedule(params_), predict_gather(params_),
                scatter_gather_lower_bound(params_), "GATHER (direct)", params_,
                gather_goal(params_));
}

CollectivePlan Communicator::allgather() {
  return finish(allgather_direct_schedule(params_), predict_allgather_direct(params_),
                allgather_lower_bound(params_), "ALLGATHER (direct exchange)",
                params_, allgather_goal(params_));
}

CollectivePlan Communicator::alltoall() {
  return finish(alltoall_schedule(params_), predict_alltoall(params_),
                alltoall_lower_bound(params_), "ALLTOALL (rotated exchange)",
                params_, alltoall_goal(params_));
}

CollectivePlan Communicator::barrier() {
  // The barrier mixes combining semantics (phase 1) with broadcast
  // semantics (phase 2); validate the phases separately, as the tests do.
  Schedule schedule = barrier_schedule(params_);
  Schedule arrive;
  Schedule release;
  const Rational arrive_done = predict_reduce(params_);
  for (const SendEvent& e : schedule.events()) {
    if (e.msg == params_.n()) {
      release.add(e.src, e.dst, 0, e.t - arrive_done);
    } else {
      arrive.add(e);
    }
  }
  const bool phase1 = validate_reduce(arrive, params_).ok;
  ValidatorOptions options;
  options.messages = 1;
  options.require_coverage = params_.n() > 1;
  const bool phase2 = validate_schedule(release, params_, options).ok;
  if (!phase1 || !phase2) {
    throw LogicError("Communicator produced an invalid barrier plan");
  }
  CollectivePlan plan;
  plan.schedule = std::move(schedule);
  plan.completion = predict_barrier(params_);
  plan.lower_bound = Rational(2) * fib_.f(params_.n());
  plan.algorithm = "BARRIER (combine + release)";
  plan.verified = true;
  return plan;
}

CollectivePlan Communicator::multi_source(const std::vector<ProcId>& sources) {
  return finish(multi_source_schedule(params_, sources),
                predict_multi_source(params_, sources),
                multi_source_lower_bound(params_, sources.size()),
                "MULTI-SOURCE (gather + pipeline)", params_,
                multi_source_goal(params_, sources));
}

CollectivePlan Communicator::scan() {
  // Scan mixes combining (up-sweep) and personalized-prefix (down-sweep)
  // semantics; scan_values() enforces the data-availability timing, and
  // the phases' port usage mirrors reduce + BCAST, validated separately.
  Schedule schedule = scan_schedule(params_);
  Schedule up;
  Schedule down;
  const Rational half = predict_reduce(params_);
  for (const SendEvent& e : schedule.events()) {
    if (e.msg < params_.n()) {
      up.add(e.src, e.dst, e.msg, e.t);
    } else {
      down.add(e.src, e.dst, 0, e.t - half);
    }
  }
  const bool phase1 = validate_reduce(up, params_).ok;
  ValidatorOptions options;
  options.messages = 1;
  options.require_coverage = params_.n() > 1;
  const bool phase2 = validate_schedule(down, params_, options).ok;
  if (!phase1 || !phase2) {
    throw LogicError("Communicator produced an invalid scan plan");
  }
  CollectivePlan plan;
  plan.schedule = std::move(schedule);
  plan.completion = predict_scan(params_);
  plan.lower_bound = fib_.f(params_.n());  // at least one full dissemination
  plan.algorithm = "SCAN (up-sweep + down-sweep)";
  plan.verified = true;
  return plan;
}

}  // namespace postal
