#include "brute/multi_search.hpp"

#include <unordered_set>
#include <vector>

#include "brute/optimal_search.hpp"
#include "support/error.hpp"

namespace postal {

namespace {

constexpr std::int64_t kNone = -1;

struct Searcher {
  std::uint64_t n;
  std::uint64_t m;
  std::int64_t lambda;
  std::int64_t horizon;
  bool order;
  std::uint32_t full;

  // State (copied down the recursion; tiny):
  //   holds[p]        -- bitmask of fully received messages
  //   arrival[p*m+j]  -- in-flight arrival time of message j at p, or kNone
  std::unordered_set<std::uint64_t> failed;  // (t, state) proven infeasible

  [[nodiscard]] std::uint64_t encode(std::int64_t t,
                                     const std::vector<std::uint32_t>& holds,
                                     const std::vector<std::int64_t>& arrival) const {
    // Per (p, j): 0 = missing, 1..lambda = arrives in (arrival - t) units,
    // lambda+1 = held. Needs ceil(log2(lambda+2)) bits; sizes are capped so
    // the whole state plus t fits in 64 bits.
    std::uint64_t key = static_cast<std::uint64_t>(t);
    for (std::uint64_t p = 0; p < n; ++p) {
      for (std::uint64_t j = 0; j < m; ++j) {
        std::uint64_t code;
        if ((holds[p] >> j) & 1U) {
          code = static_cast<std::uint64_t>(lambda) + 1;
        } else if (arrival[p * m + j] == kNone) {
          code = 0;
        } else {
          code = static_cast<std::uint64_t>(arrival[p * m + j] - t);
        }
        key = key * (static_cast<std::uint64_t>(lambda) + 2) + code;
      }
    }
    return key;
  }

  bool dfs(std::int64_t t, std::vector<std::uint32_t> holds,
           std::vector<std::int64_t> arrival) {
    // Deliver everything arriving exactly now.
    for (std::uint64_t p = 0; p < n; ++p) {
      for (std::uint64_t j = 0; j < m; ++j) {
        if (arrival[p * m + j] == t) {
          holds[p] |= (1U << j);
          arrival[p * m + j] = kNone;
        }
      }
    }
    bool done = true;
    bool all_remaining_in_flight = true;
    for (std::uint64_t p = 0; p < n; ++p) {
      done = done && holds[p] == full;
      std::int64_t not_in_flight = 0;
      for (std::uint64_t j = 0; j < m; ++j) {
        if (((holds[p] >> j) & 1U) == 0 && arrival[p * m + j] == kNone) {
          ++not_in_flight;
        }
      }
      all_remaining_in_flight = all_remaining_in_flight && not_in_flight == 0;
      // Optimistic completion bound: the missing messages must still be
      // sent, landing one per unit from t + lambda on.
      if (not_in_flight > 0 && t + lambda + not_in_flight - 1 > horizon) return false;
    }
    if (done) return true;
    if (all_remaining_in_flight) {
      // Just wait: every in-flight arrival is <= horizon by construction
      // (sends past the horizon are never enumerated).
      return true;
    }
    // Some message still needs a send; it cannot land in time past here.
    if (t + lambda > horizon) return false;

    const std::uint64_t key = encode(t, holds, arrival);
    if (failed.contains(key)) return false;

    // Enumerate one action (idle or a useful send) per processor, with
    // distinct destinations within the step (one arrival per receive port
    // per instant).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sends;  // (dst, msg)
    const bool ok = choose(0, t, holds, arrival, 0U, sends);
    if (!ok) failed.insert(key);
    return ok;
  }

  bool choose(std::uint64_t p, std::int64_t t, const std::vector<std::uint32_t>& holds,
              const std::vector<std::int64_t>& arrival, std::uint32_t used_dsts,
              std::vector<std::pair<std::uint64_t, std::uint64_t>>& sends) {
    if (p == n) {
      auto next_arrival = arrival;
      for (const auto& [dst, msg] : sends) {
        next_arrival[dst * m + msg] = t + lambda;
      }
      return dfs(t + 1, holds, std::move(next_arrival));
    }
    // Option: this processor stays idle.
    if (choose(p + 1, t, holds, arrival, used_dsts, sends)) return true;
    // Options: every useful send.
    for (std::uint64_t j = 0; j < m; ++j) {
      if (((holds[p] >> j) & 1U) == 0) continue;  // sender must hold it
      for (std::uint64_t dst = 0; dst < n; ++dst) {
        if (dst == p || ((used_dsts >> dst) & 1U)) continue;
        if ((holds[dst] >> j) & 1U) continue;           // already held
        if (arrival[dst * m + j] != kNone) continue;    // already in flight
        if (order) {
          // Order preservation: every lower-numbered message must reach
          // dst no later than this one (held, or in flight strictly
          // earlier than t + lambda -- equal is impossible on the grid).
          bool legal = true;
          for (std::uint64_t i = 0; i < j && legal; ++i) {
            legal = ((holds[dst] >> i) & 1U) != 0 || arrival[dst * m + i] != kNone;
          }
          if (!legal) continue;
        }
        sends.emplace_back(dst, j);
        const bool ok =
            choose(p + 1, t, holds, arrival, used_dsts | (1U << dst), sends);
        sends.pop_back();
        if (ok) return true;
      }
    }
    return false;
  }
};

}  // namespace

bool multi_broadcast_feasible(std::uint64_t n, std::uint64_t m, std::int64_t lambda,
                              std::int64_t horizon, bool require_order) {
  POSTAL_REQUIRE(n >= 1 && n <= 5, "multi_broadcast_feasible: n must be in [1, 5]");
  POSTAL_REQUIRE(m >= 1 && m <= 4, "multi_broadcast_feasible: m must be in [1, 4]");
  POSTAL_REQUIRE(lambda >= 1 && lambda <= 6,
                 "multi_broadcast_feasible: integer lambda in [1, 6]");
  POSTAL_REQUIRE(horizon >= 0, "multi_broadcast_feasible: horizon must be >= 0");
  if (n == 1) return true;
  Searcher searcher;
  searcher.n = n;
  searcher.m = m;
  searcher.lambda = lambda;
  searcher.horizon = horizon;
  searcher.order = require_order;
  searcher.full = static_cast<std::uint32_t>((1U << m) - 1);
  std::vector<std::uint32_t> holds(n, 0);
  holds[0] = searcher.full;
  std::vector<std::int64_t> arrival(n * m, kNone);
  return searcher.dfs(0, std::move(holds), std::move(arrival));
}

std::int64_t multi_broadcast_optimum(std::uint64_t n, std::uint64_t m,
                                     std::int64_t lambda, bool require_order,
                                     std::int64_t max_horizon) {
  if (n == 1) return 0;
  // Start at Lemma 8's bound (integral for integer lambda).
  const Rational f = optimal_broadcast_dp(n, Rational(lambda));
  POSTAL_CHECK(f.is_integer());
  for (std::int64_t horizon = static_cast<std::int64_t>(m) - 1 + f.num();
       horizon <= max_horizon; ++horizon) {
    if (multi_broadcast_feasible(n, m, lambda, horizon, require_order)) {
      return horizon;
    }
  }
  throw LogicError("multi_broadcast_optimum: no feasible horizon found");
}

}  // namespace postal
