// Independent computations of the optimal single-message broadcast time,
// used by the property tests to confirm Theorem 6 without trusting the
// generalized-Fibonacci machinery.
//
// Two routes, neither of which evaluates F_lambda:
//
//  * optimal_broadcast_dp: the split recursion
//        T(1) = 0,
//        T(k) = min_{1 <= j <= k-1} max(1 + T(j), lambda + T(k-j)),
//    which scans *every* possible first-split size instead of the paper's
//    closed-form choice j = F_lambda(f_lambda(k)-1).
//
//  * optimal_broadcast_greedy: frontier expansion with a priority queue --
//    every informed processor sends to a new processor every unit of time,
//    and the n earliest inform times are taken. (Idling or re-informing a
//    processor can only delay completion, so this greedy is optimal; it is
//    the constructive reading of the paper's Lemma 5 argument.)
//
// Theorem 6 says both equal f_lambda(n) exactly.
//
// Both routes take the tick-domain fast path by default (time_path ==
// kAuto): with lambda = p/q every T(k) is a multiple of 1/q, so the inner
// loops run on int64 ticks whenever a static bound proves the tick values
// cannot overflow, and fall back to the checked Rational reference loops
// otherwise. Results are identical either way (the differential tests
// assert it); pass TimePath::kRational to force the reference loops.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rational.hpp"
#include "support/ticks.hpp"

namespace postal {

/// Optimal broadcast time via the exhaustive split recursion. O(n^2) time,
/// O(n) memo; intended for n up to a few thousand.
[[nodiscard]] Rational optimal_broadcast_dp(std::uint64_t n, const Rational& lambda,
                                            TimePath time_path = TimePath::kAuto);

/// The whole DP table at once: entry k (1 <= k <= n_max) is
/// optimal_broadcast_dp(k, lambda), from one O(n_max^2) pass. Grid sweeps
/// that probe many n at a fixed lambda (par/sweep.hpp, the benches) share
/// this table instead of paying O(n^2) per point; the values are identical
/// by construction because the recursion's prefix does not depend on n_max.
/// Entry 0 is 0 (unused).
[[nodiscard]] std::vector<Rational> optimal_broadcast_dp_table(
    std::uint64_t n_max, const Rational& lambda,
    TimePath time_path = TimePath::kAuto);

/// Optimal broadcast time via greedy frontier expansion. O(n log n).
[[nodiscard]] Rational optimal_broadcast_greedy(std::uint64_t n, const Rational& lambda,
                                                TimePath time_path = TimePath::kAuto);

}  // namespace postal
