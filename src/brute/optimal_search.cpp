#include "brute/optimal_search.hpp"

#include <queue>
#include <vector>

#include "support/error.hpp"

namespace postal {

std::vector<Rational> optimal_broadcast_dp_table(std::uint64_t n_max,
                                                 const Rational& lambda) {
  POSTAL_REQUIRE(n_max >= 1, "optimal_broadcast_dp_table: n_max must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1),
                 "optimal_broadcast_dp_table: lambda must be >= 1");
  std::vector<Rational> T(n_max + 1, Rational(0));
  for (std::uint64_t k = 2; k <= n_max; ++k) {
    // First split: the holder keeps j processors (continuing one unit
    // later), the recipient takes k - j (starting lambda later). Scan all j.
    Rational best = Rational(1) + T[k - 1];  // j = k-1 as the initial bound
    best = rmax(best, lambda + T[1]);
    for (std::uint64_t j = 1; j + 1 <= k - 1; ++j) {
      const Rational cand = rmax(Rational(1) + T[j], lambda + T[k - j]);
      best = rmin(best, cand);
    }
    T[k] = best;
  }
  return T;
}

Rational optimal_broadcast_dp(std::uint64_t n, const Rational& lambda) {
  POSTAL_REQUIRE(n >= 1, "optimal_broadcast_dp: n must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1), "optimal_broadcast_dp: lambda must be >= 1");
  return optimal_broadcast_dp_table(n, lambda)[n];
}

Rational optimal_broadcast_greedy(std::uint64_t n, const Rational& lambda) {
  POSTAL_REQUIRE(n >= 1, "optimal_broadcast_greedy: n must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1), "optimal_broadcast_greedy: lambda must be >= 1");
  if (n == 1) return Rational(0);
  // Heap of candidate inform times. Popping a candidate materializes the
  // next sibling (same sender, one unit later) and the new processor's own
  // first child (lambda after it is informed).
  std::priority_queue<Rational, std::vector<Rational>, std::greater<>> heap;
  heap.push(lambda);  // p_0's first recipient is informed at lambda
  std::uint64_t informed = 1;
  Rational last(0);
  while (informed < n) {
    POSTAL_CHECK(!heap.empty());
    const Rational t = heap.top();
    heap.pop();
    ++informed;
    last = t;
    heap.push(t + Rational(1));  // sender's next send, one unit later
    heap.push(t + lambda);       // new processor's first own recipient
  }
  return last;
}

}  // namespace postal
