#include "brute/optimal_search.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "support/error.hpp"

namespace postal {

namespace {

// Static overflow headroom for the tick loops: every value either route
// produces is bounded by count * (lambda + 1), i.e. count * (lambda_ticks
// + q) ticks, because each of the at most `count` steps adds 1 or lambda.
// Admitting only runs whose bound stays far inside int64 lets the inner
// loops use raw adds -- no per-operation checks, no UB (the bound is
// checked in 128-bit arithmetic, so the probe itself cannot overflow).
bool ticks_admissible(std::uint64_t count, const TickDomain& dom, Tick lambda_ticks) {
  __extension__ using int128 = __int128;
  const int128 bound = (static_cast<int128>(count) + 2) *
                       (static_cast<int128>(lambda_ticks) + dom.q());
  return bound < (int128{1} << 62);
}

std::vector<Rational> dp_table_rational(std::uint64_t n_max, const Rational& lambda) {
  std::vector<Rational> T(n_max + 1, Rational(0));
  for (std::uint64_t k = 2; k <= n_max; ++k) {
    // First split: the holder keeps j processors (continuing one unit
    // later), the recipient takes k - j (starting lambda later). Scan all j.
    Rational best = Rational(1) + T[k - 1];  // j = k-1 as the initial bound
    best = rmax(best, lambda + T[1]);
    for (std::uint64_t j = 1; j + 1 <= k - 1; ++j) {
      const Rational cand = rmax(Rational(1) + T[j], lambda + T[k - j]);
      best = rmin(best, cand);
    }
    T[k] = best;
  }
  return T;
}

// The identical recursion on int64 ticks. Exactness: tick <-> Rational is
// an order-preserving bijection on multiples of 1/q, and every T(k) is
// such a multiple, so min/max decisions match the Rational loop exactly.
std::vector<Rational> dp_table_ticks(std::uint64_t n_max, const TickDomain& dom,
                                     Tick lambda_ticks) {
  const Tick one = dom.q();
  std::vector<Tick> T(n_max + 1, 0);
  for (std::uint64_t k = 2; k <= n_max; ++k) {
    Tick best = std::max(one + T[k - 1], lambda_ticks + T[1]);
    for (std::uint64_t j = 1; j + 1 <= k - 1; ++j) {
      const Tick cand = std::max(one + T[j], lambda_ticks + T[k - j]);
      best = std::min(best, cand);
    }
    T[k] = best;
  }
  std::vector<Rational> out(n_max + 1, Rational(0));
  for (std::uint64_t k = 2; k <= n_max; ++k) {
    out[k] = dom.to_rational(T[k]);
  }
  return out;
}

}  // namespace

std::vector<Rational> optimal_broadcast_dp_table(std::uint64_t n_max,
                                                 const Rational& lambda,
                                                 TimePath time_path) {
  POSTAL_REQUIRE(n_max >= 1, "optimal_broadcast_dp_table: n_max must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1),
                 "optimal_broadcast_dp_table: lambda must be >= 1");
  if (time_path == TimePath::kAuto) {
    const TickDomain dom(lambda.den());
    const std::optional<Tick> lambda_ticks = dom.to_ticks(lambda);
    if (lambda_ticks.has_value() && ticks_admissible(n_max, dom, *lambda_ticks)) {
      return dp_table_ticks(n_max, dom, *lambda_ticks);
    }
  }
  return dp_table_rational(n_max, lambda);
}

Rational optimal_broadcast_dp(std::uint64_t n, const Rational& lambda,
                              TimePath time_path) {
  POSTAL_REQUIRE(n >= 1, "optimal_broadcast_dp: n must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1), "optimal_broadcast_dp: lambda must be >= 1");
  return optimal_broadcast_dp_table(n, lambda, time_path)[n];
}

namespace {

Rational greedy_rational(std::uint64_t n, const Rational& lambda) {
  // Heap of candidate inform times. Popping a candidate materializes the
  // next sibling (same sender, one unit later) and the new processor's own
  // first child (lambda after it is informed).
  std::priority_queue<Rational, std::vector<Rational>, std::greater<>> heap;
  heap.push(lambda);  // p_0's first recipient is informed at lambda
  std::uint64_t informed = 1;
  Rational last(0);
  while (informed < n) {
    POSTAL_CHECK(!heap.empty());
    const Rational t = heap.top();
    heap.pop();
    ++informed;
    last = t;
    heap.push(t + Rational(1));  // sender's next send, one unit later
    heap.push(t + lambda);       // new processor's first own recipient
  }
  return last;
}

// Same expansion on ticks. Heap order among *equal* keys is unspecified
// either way, but only the popped values feed the result, so the two
// loops agree exactly.
Rational greedy_ticks(std::uint64_t n, const TickDomain& dom, Tick lambda_ticks) {
  const Tick one = dom.q();
  std::priority_queue<Tick, std::vector<Tick>, std::greater<>> heap;
  heap.push(lambda_ticks);
  std::uint64_t informed = 1;
  Tick last = 0;
  while (informed < n) {
    POSTAL_CHECK(!heap.empty());
    const Tick t = heap.top();
    heap.pop();
    ++informed;
    last = t;
    heap.push(t + one);
    heap.push(t + lambda_ticks);
  }
  return dom.to_rational(last);
}

}  // namespace

Rational optimal_broadcast_greedy(std::uint64_t n, const Rational& lambda,
                                  TimePath time_path) {
  POSTAL_REQUIRE(n >= 1, "optimal_broadcast_greedy: n must be >= 1");
  POSTAL_REQUIRE(lambda >= Rational(1), "optimal_broadcast_greedy: lambda must be >= 1");
  if (n == 1) return Rational(0);
  if (time_path == TimePath::kAuto) {
    const TickDomain dom(lambda.den());
    const std::optional<Tick> lambda_ticks = dom.to_ticks(lambda);
    if (lambda_ticks.has_value() && ticks_admissible(n, dom, *lambda_ticks)) {
      return greedy_ticks(n, dom, *lambda_ticks);
    }
  }
  return greedy_rational(n, lambda);
}

}  // namespace postal
