// Exhaustive search for optimal multi-message broadcast on tiny instances
// -- a computational probe of the paper's Section 5 open problem: "This
// paper leaves a gap between the lower bounds for broadcasting multiple
// messages and the performance of the algorithms presented in Section 4
// ... It would be interesting either to develop improved event-driven
// algorithms that preserve the order of messages or to improve the lower
// bound for such situations."
//
// For integer lambda, the search explores every schedule whose sends start
// at integer times (a natural grid restriction at integer lambda),
// depth-first with pruning:
//   * only useful sends (the target lacks the message and no copy is in
//     flight to it) -- duplicates can never help;
//   * optimistic completion bound per processor (its missing messages
//     must still arrive, one per unit, the first no sooner than lambda).
//
// Two modes: unrestricted, and order-preserving (a message may only be
// sent to a processor that will have received all lower-numbered messages
// by that arrival). Comparing the two optima against Lemma 8 measures the
// gap exactly -- on instances small enough to enumerate.
#pragma once

#include <cstdint>

#include "support/rational.hpp"

namespace postal {

/// True iff some integer-grid schedule broadcasts m messages from p_0 to
/// all n processors within `horizon` time units under latency `lambda`
/// (an integer >= 1). `require_order` restricts to order-preserving
/// schedules. Intended for n <= 4, m <= 3, small horizons.
[[nodiscard]] bool multi_broadcast_feasible(std::uint64_t n, std::uint64_t m,
                                            std::int64_t lambda, std::int64_t horizon,
                                            bool require_order);

/// The optimal integer-grid completion time: the smallest feasible horizon,
/// scanned upward from Lemma 8's bound (which is integral here). Throws
/// LogicError if nothing is feasible within `max_horizon` (a search bug --
/// the Section 4 algorithms give a finite upper bound).
[[nodiscard]] std::int64_t multi_broadcast_optimum(std::uint64_t n, std::uint64_t m,
                                                   std::int64_t lambda,
                                                   bool require_order,
                                                   std::int64_t max_horizon = 64);

}  // namespace postal
