#include "collectives/alltoall.hpp"

namespace postal {

MsgId alltoall_msg_id(const PostalParams& params, ProcId src, ProcId dst) {
  const std::uint64_t n = params.n();
  POSTAL_REQUIRE(src < n && dst < n && src != dst,
                 "alltoall_msg_id: need two distinct processors");
  const std::uint64_t rot = (dst + n - src - 1) % n;  // in [0, n-2]
  POSTAL_CHECK(rot <= n - 2);
  return static_cast<MsgId>(src * (n - 1) + rot);
}

Schedule alltoall_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  for (std::uint64_t p = 0; p < n; ++p) {
    for (std::uint64_t k = 0; k + 1 < n; ++k) {
      const auto dst = static_cast<ProcId>((p + 1 + k) % n);
      schedule.add(static_cast<ProcId>(p), dst,
                   alltoall_msg_id(params, static_cast<ProcId>(p), dst),
                   Rational(static_cast<std::int64_t>(k)));
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_alltoall(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  return Rational(static_cast<std::int64_t>(params.n()) - 2) + params.lambda();
}

Rational alltoall_lower_bound(const PostalParams& params) {
  return predict_alltoall(params);
}

ValidatorOptions alltoall_goal(const PostalParams& params) {
  ValidatorOptions options;
  const std::uint64_t n = params.n();
  options.messages = static_cast<std::uint32_t>(n >= 2 ? n * (n - 1) : 0);
  options.origins.resize(options.messages);
  for (std::uint64_t src = 0; src < n; ++src) {
    for (std::uint64_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const MsgId id = alltoall_msg_id(params, static_cast<ProcId>(src),
                                       static_cast<ProcId>(dst));
      options.origins[id] = static_cast<ProcId>(src);
      options.required.emplace_back(static_cast<ProcId>(dst), id);
    }
  }
  return options;
}

}  // namespace postal
