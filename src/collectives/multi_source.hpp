// Multi-source broadcast: k distinct processors each hold one message and
// *everyone* must end up with all k -- the k-source gossip that sits
// between broadcast (k = 1) and allgather (k = n). Another of the paper's
// Section 5 "other problems".
//
// Lower bounds: every processor must receive at least k-1 messages
// (k, if it is not a source), so T >= k - 1 + lambda for k >= 2; and the
// last message still has to reach everyone, so T >= f_lambda(n).
//
// Algorithm (gather + pipeline): sources stream their messages to source 0
// back to back (arrivals saturate its receive port), then source 0
// broadcasts the k messages with Algorithm PIPELINE. Completion:
//     (k - 2) + lambda + T_PIPELINE(n, k, lambda)
// which is within a small constant of max(k, f_lambda(n)).
#pragma once

#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/validator.hpp"
#include "support/rational.hpp"

namespace postal {

/// Gather+pipeline multi-source broadcast. `sources[i]` holds message i;
/// sources must be distinct, nonempty, and sources[0] acts as the hub.
/// Sorted by time.
[[nodiscard]] Schedule multi_source_schedule(const PostalParams& params,
                                             const std::vector<ProcId>& sources);

/// Exact completion time of multi_source_schedule.
[[nodiscard]] Rational predict_multi_source(const PostalParams& params,
                                            const std::vector<ProcId>& sources);

/// Lower bound: max(k - 1 + lambda  [k >= 2], f_lambda(n)).
[[nodiscard]] Rational multi_source_lower_bound(const PostalParams& params,
                                                std::uint64_t k);

/// Validator options for the goal (message i originates at sources[i];
/// everyone needs everything).
[[nodiscard]] ValidatorOptions multi_source_goal(const PostalParams& params,
                                                 const std::vector<ProcId>& sources);

}  // namespace postal
