// Barrier synchronization in the postal model -- Section 5 "other
// problems". Composition of the two optimal primitives this library
// already has:
//
//   phase 1 (arrive):  optimal reduction of arrival signals into p_0
//                      (time-reversed BCAST, f_lambda(n));
//   phase 2 (release): Algorithm BCAST of the release message
//                      (another f_lambda(n)).
//
// Completion: 2 * f_lambda(n). Message encoding: ids 0..n-1 are the
// arrival signals (id p originates at p; the reduction combines them), and
// id n is the release message.
#pragma once

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The two-phase barrier schedule. Sorted by time.
[[nodiscard]] Schedule barrier_schedule(const PostalParams& params);

/// Exact completion time: 2 * f_lambda(n) (0 for n == 1).
[[nodiscard]] Rational predict_barrier(const PostalParams& params);

/// Time at which the *last* processor learns the barrier released; equal to
/// predict_barrier and reported separately only for readability in benches.
[[nodiscard]] Rational barrier_release_time(const PostalParams& params);

}  // namespace postal
