#include "collectives/sort.hpp"

#include <algorithm>

#include "collectives/allgather.hpp"

namespace postal {

Schedule sort_schedule(const PostalParams& params) {
  return allgather_direct_schedule(params);
}

Rational predict_sort(const PostalParams& params) {
  return predict_allgather_direct(params);
}

std::vector<std::int64_t> sort_values(const PostalParams& params,
                                      const std::vector<std::int64_t>& keys) {
  POSTAL_REQUIRE(keys.size() == params.n(), "sort_values: one key per processor");
  // After the gossip every processor holds every key; processor p selects
  // the key of rank p locally (ties broken by original owner id so the
  // result is a permutation of the inputs even with duplicates).
  std::vector<std::pair<std::int64_t, std::uint64_t>> tagged;
  tagged.reserve(keys.size());
  for (std::uint64_t p = 0; p < keys.size(); ++p) tagged.emplace_back(keys[p], p);
  std::sort(tagged.begin(), tagged.end());
  std::vector<std::int64_t> out(keys.size());
  for (std::uint64_t rank = 0; rank < tagged.size(); ++rank) {
    out[rank] = tagged[rank].first;
  }
  return out;
}

OddEvenResult odd_even_sort(const PostalParams& params,
                            const std::vector<std::int64_t>& keys) {
  POSTAL_REQUIRE(keys.size() == params.n(), "odd_even_sort: one key per processor");
  OddEvenResult result;
  result.values = keys;
  const std::uint64_t n = params.n();
  // The classic bound: n rounds always suffice. Each round, adjacent pairs
  // exchange keys (one postal message each way, overlapping in time) and
  // keep min/max -- a full round costs lambda.
  for (std::uint64_t round = 0; round < n; ++round) {
    const std::uint64_t start = round % 2;  // even rounds pair (0,1),(2,3)...
    for (std::uint64_t i = start; i + 1 < n; i += 2) {
      if (result.values[i] > result.values[i + 1]) {
        std::swap(result.values[i], result.values[i + 1]);
      }
    }
    ++result.rounds;
  }
  POSTAL_CHECK(std::is_sorted(result.values.begin(), result.values.end()));
  result.completion =
      Rational(static_cast<std::int64_t>(result.rounds)) * params.lambda();
  return result;
}

}  // namespace postal
