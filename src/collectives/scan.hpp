// Parallel prefix (exclusive scan) in the postal model -- Section 5
// "other problems".
//
// Every processor p holds a value x_p; processor p must learn
// x_0 (+) ... (+) x_{p-1} (exclusive prefix; the root's prefix is the
// identity). The generalized Fibonacci tree is ideal for this because the
// BCAST recursion assigns every subtree a *contiguous* processor range:
//
//   up-sweep   -- the time-reversed BCAST schedule (exactly reduce):
//                 every node sends the combined value of its contiguous
//                 subtree range to its parent; completes at f_lambda(n);
//   down-sweep -- the BCAST schedule re-run with personalized payloads:
//                 each parent sends every child the prefix of everything
//                 to the child's left; completes f_lambda(n) later.
//
// Total: 2 * f_lambda(n), matching barrier (and twice broadcast).
//
// scan_values() actually pushes integer payloads through both sweeps,
// enforcing the postal timing as it goes, so tests can check the
// *semantics* (each processor ends with the right prefix), not just the
// schedule's legality.
#pragma once

#include <cstdint>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The two-phase scan schedule. Message ids: 0..n-2 are up-sweep partials
/// (id = sender), n..2n-2 are down-sweep prefixes (id = n + receiver).
[[nodiscard]] Schedule scan_schedule(const PostalParams& params);

/// Exact completion time: 2 * f_lambda(n) (0 for n == 1).
[[nodiscard]] Rational predict_scan(const PostalParams& params);

/// Execute the scan on concrete values (summing with +). Returns the
/// exclusive prefix at each processor and checks, while executing, that
/// every message is sent only after the data it carries is available at
/// the sender (throws LogicError on any timing inconsistency -- that would
/// be a library bug, not a caller error).
[[nodiscard]] std::vector<std::int64_t> scan_values(
    const PostalParams& params, const std::vector<std::int64_t>& inputs);

}  // namespace postal
