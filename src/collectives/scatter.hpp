// Scatter and gather (personalized one-to-all / all-to-one) in the postal
// model -- Section 5 "other problems".
//
// Scatter: p_0 holds n-1 distinct atomic messages, message i addressed to
// processor p_{i+1}. Messages are atomic (Section 2), so no bundling is
// possible: the root itself must perform n-1 unit-time sends, giving the
// lower bound T >= (n-2) + lambda, which the direct schedule below meets
// exactly -- in a fully connected postal system, relaying personalized data
// through intermediaries only adds latency.
//
// Gather is the time reversal: every processor sends its message straight
// to the root, staggered so the root's receive port takes one message per
// unit of time; T = (n-2) + lambda, again optimal (the root must spend
// n-1 units receiving).
#pragma once

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/validator.hpp"
#include "support/rational.hpp"

namespace postal {

/// Direct scatter: p_0 sends message i to p_{i+1} at time i. Sorted.
[[nodiscard]] Schedule scatter_schedule(const PostalParams& params);

/// Exact scatter completion time: (n-2) + lambda for n >= 2, else 0.
[[nodiscard]] Rational predict_scatter(const PostalParams& params);

/// Validator options describing the scatter goal (message i must reach
/// p_{i+1}; all messages originate at p_0).
[[nodiscard]] ValidatorOptions scatter_goal(const PostalParams& params);

/// Direct gather: p_{i+1} sends its message i to p_0 at time i, so arrivals
/// land back to back at the root. Sorted.
[[nodiscard]] Schedule gather_schedule(const PostalParams& params);

/// Exact gather completion time: (n-2) + lambda for n >= 2, else 0.
[[nodiscard]] Rational predict_gather(const PostalParams& params);

/// Validator options describing the gather goal (message i originates at
/// p_{i+1} and must reach p_0).
[[nodiscard]] ValidatorOptions gather_goal(const PostalParams& params);

/// Lower bound for either problem: the root port is busy n-1 units and the
/// last unit-message still pays the latency: T >= (n-2) + lambda.
[[nodiscard]] Rational scatter_gather_lower_bound(const PostalParams& params);

}  // namespace postal
