// Allgather / gossiping in the postal model -- Section 5 "other problems".
//
// Every processor p starts with its own atomic message; every processor
// must end up holding all n messages.
//
// Lower bound: each processor must *receive* n-1 distinct atomic messages
// through a receive port that absorbs one message per unit of time, and
// the last of them still pays the latency of its final hop, so
//     T >= (n-2) + lambda.
//
// Three algorithms, with an instructive contrast to broadcast:
//
//  * Direct exchange (rotated all-to-all): processor p sends its message
//    to p+1+k (mod n) at time k, for k = 0..n-2. Every receive port takes
//    one message per unit; completion is exactly (n-2) + lambda -- the
//    lower bound. Unlike broadcast, optimal gossiping in the postal model
//    needs *no* latency awareness at all (full connectivity does the work).
//
//  * Ring: at each hop processor p forwards the message it just received
//    to p+1 (mod n). Every hop pays the full latency, so completion is
//    (n-1) * lambda -- optimal only at lambda = 1, and progressively worse
//    as lambda grows. The classic telephone-model idiom mispriced.
//
//  * Gather + broadcast: collect everything at p_0 (optimal gather), then
//    broadcast the n messages with Algorithm PIPELINE.
#pragma once

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/validator.hpp"
#include "support/rational.hpp"

namespace postal {

/// Direct-exchange allgather: n*(n-1) sends, completes at (n-2) + lambda
/// (the lower bound). Sorted.
[[nodiscard]] Schedule allgather_direct_schedule(const PostalParams& params);

/// Exact completion of the direct exchange: (n-2) + lambda for n >= 2.
[[nodiscard]] Rational predict_allgather_direct(const PostalParams& params);

/// Ring allgather: message j moves one hop per lambda; completes at
/// (n-1) * lambda. Sorted.
[[nodiscard]] Schedule allgather_ring_schedule(const PostalParams& params);

/// Exact completion of the ring: (n-1) * lambda for n >= 2, else 0.
[[nodiscard]] Rational predict_allgather_ring(const PostalParams& params);

/// Baseline: optimal gather into p_0, then PIPELINE-broadcast of all n
/// messages (message ids stay 0..n-1; p_0's own message is id... id p for
/// processor p's contribution throughout).
[[nodiscard]] Schedule allgather_gather_bcast_schedule(const PostalParams& params);

/// Exact completion of the gather+broadcast baseline.
[[nodiscard]] Rational predict_allgather_gather_bcast(const PostalParams& params);

/// Lower bound: (n-2) + lambda for n >= 2, else 0.
[[nodiscard]] Rational allgather_lower_bound(const PostalParams& params);

/// Validator options for the allgather goal (message p originates at p,
/// everyone needs everything).
[[nodiscard]] ValidatorOptions allgather_goal(const PostalParams& params);

}  // namespace postal
