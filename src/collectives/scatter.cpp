#include "collectives/scatter.hpp"

namespace postal {

Schedule scatter_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    schedule.add(/*src=*/0, static_cast<ProcId>(i + 1), static_cast<MsgId>(i),
                 Rational(static_cast<std::int64_t>(i)));
  }
  return schedule;
}

Rational predict_scatter(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  return Rational(static_cast<std::int64_t>(params.n()) - 2) + params.lambda();
}

ValidatorOptions scatter_goal(const PostalParams& params) {
  ValidatorOptions options;
  options.origin = 0;
  const std::uint64_t n = params.n();
  options.messages = static_cast<std::uint32_t>(n > 0 ? n - 1 : 0);
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    options.required.emplace_back(static_cast<ProcId>(i + 1), static_cast<MsgId>(i));
  }
  return options;
}

Schedule gather_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    schedule.add(static_cast<ProcId>(i + 1), /*dst=*/0, static_cast<MsgId>(i),
                 Rational(static_cast<std::int64_t>(i)));
  }
  return schedule;
}

Rational predict_gather(const PostalParams& params) { return predict_scatter(params); }

ValidatorOptions gather_goal(const PostalParams& params) {
  ValidatorOptions options;
  const std::uint64_t n = params.n();
  options.messages = static_cast<std::uint32_t>(n > 0 ? n - 1 : 0);
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    options.origins.push_back(static_cast<ProcId>(i + 1));
    options.required.emplace_back(/*dst=*/0, static_cast<MsgId>(i));
  }
  return options;
}

Rational scatter_gather_lower_bound(const PostalParams& params) {
  return predict_scatter(params);
}

}  // namespace postal
