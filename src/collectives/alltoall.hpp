// All-to-all personalized exchange (MPI_Alltoall) in the postal model --
// Section 5 "other problems".
//
// Every processor p holds n-1 distinct atomic messages, one addressed to
// each other processor. Lower bound: every receive port must absorb n-1
// messages, so T >= (n-2) + lambda -- the same bound as gossip, and the
// rotated exchange meets it exactly: at step k = 0..n-2 processor p sends
// its message for processor (p+1+k) mod n directly. Each receive port sees
// exactly one arrival per unit of time.
//
// Message id encoding: the message processor `src` addresses to `dst` has
// id src*(n-1) + rot, where rot = (dst - src - 1) mod n in [0, n-2].
#pragma once

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/validator.hpp"
#include "support/rational.hpp"

namespace postal {

/// The rotated direct exchange: n*(n-1) sends, completes at (n-2)+lambda.
[[nodiscard]] Schedule alltoall_schedule(const PostalParams& params);

/// Exact completion time: (n-2) + lambda for n >= 2, else 0.
[[nodiscard]] Rational predict_alltoall(const PostalParams& params);

/// Lower bound (receive-port counting): (n-2) + lambda for n >= 2.
[[nodiscard]] Rational alltoall_lower_bound(const PostalParams& params);

/// Message id of src's payload addressed to dst (src != dst).
[[nodiscard]] MsgId alltoall_msg_id(const PostalParams& params, ProcId src, ProcId dst);

/// Validator options describing the goal: message (src -> dst) originates
/// at src and must reach dst.
[[nodiscard]] ValidatorOptions alltoall_goal(const PostalParams& params);

}  // namespace postal
