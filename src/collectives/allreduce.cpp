#include "collectives/allreduce.hpp"

#include "collectives/allgather.hpp"
#include "collectives/reduce.hpp"
#include "model/genfib.hpp"
#include "sched/bcast.hpp"

namespace postal {

Schedule allreduce_schedule(const PostalParams& params, AllreduceStrategy strategy) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  switch (strategy) {
    case AllreduceStrategy::kTree: {
      // Phase 1: combine into p_0; phase 2: broadcast the result (id n).
      const Schedule arrive = reduce_schedule(params);
      for (const SendEvent& e : arrive.events()) schedule.add(e);
      const Rational arrive_done = predict_reduce(params);
      const Schedule release = bcast_schedule(params);
      for (const SendEvent& e : release.events()) {
        schedule.add(e.src, e.dst, static_cast<MsgId>(n), e.t + arrive_done);
      }
      break;
    }
    case AllreduceStrategy::kGossip: {
      schedule = allgather_direct_schedule(params);
      break;
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_allreduce(const PostalParams& params, AllreduceStrategy strategy) {
  if (params.n() == 1) return Rational(0);
  switch (strategy) {
    case AllreduceStrategy::kTree:
      return Rational(2) * predict_reduce(params);
    case AllreduceStrategy::kGossip:
      return predict_allgather_direct(params);
  }
  throw LogicError("predict_allreduce: unknown strategy");
}

AllreduceStrategy allreduce_auto(const PostalParams& params) {
  const Rational tree = predict_allreduce(params, AllreduceStrategy::kTree);
  const Rational gossip = predict_allreduce(params, AllreduceStrategy::kGossip);
  return tree < gossip ? AllreduceStrategy::kTree : AllreduceStrategy::kGossip;
}

std::string allreduce_strategy_name(AllreduceStrategy strategy) {
  switch (strategy) {
    case AllreduceStrategy::kTree:
      return "tree (reduce + broadcast)";
    case AllreduceStrategy::kGossip:
      return "gossip (allgather + local combine)";
  }
  throw LogicError("allreduce_strategy_name: unknown strategy");
}

Rational allreduce_lower_bound(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  GenFib fib(params.lambda());
  return rmax(fib.f(params.n()), params.lambda());
}

}  // namespace postal
