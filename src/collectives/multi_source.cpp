#include "collectives/multi_source.hpp"

#include <algorithm>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "sched/pipeline.hpp"

namespace postal {

namespace {

void check_sources(const PostalParams& params, const std::vector<ProcId>& sources) {
  POSTAL_REQUIRE(!sources.empty(), "multi_source: need at least one source");
  POSTAL_REQUIRE(sources.size() <= params.n(),
                 "multi_source: more sources than processors");
  std::vector<ProcId> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    POSTAL_REQUIRE(sorted[i] < params.n(), "multi_source: source out of range");
    POSTAL_REQUIRE(i == 0 || sorted[i] != sorted[i - 1],
                   "multi_source: sources must be distinct");
  }
}

}  // namespace

Schedule multi_source_schedule(const PostalParams& params,
                               const std::vector<ProcId>& sources) {
  check_sources(params, sources);
  const std::uint64_t n = params.n();
  const std::uint64_t k = sources.size();
  const ProcId hub = sources[0];
  Schedule schedule;
  if (n == 1) return schedule;

  // Phase 1: non-hub sources stream into the hub, arrivals back to back.
  for (std::uint64_t i = 1; i < k; ++i) {
    schedule.add(sources[i], hub, static_cast<MsgId>(i),
                 Rational(static_cast<std::int64_t>(i) - 1));
  }
  const Rational shift =
      k >= 2 ? Rational(static_cast<std::int64_t>(k) - 2) + params.lambda()
             : Rational(0);

  // Phase 2: the hub PIPELINE-broadcasts all k messages; processor ids are
  // rotated so the hub plays p_0's role.
  const Schedule pipeline = pipeline_schedule(params, k);
  for (const SendEvent& e : pipeline.events()) {
    const auto src = static_cast<ProcId>((e.src + hub) % n);
    const auto dst = static_cast<ProcId>((e.dst + hub) % n);
    schedule.add(src, dst, e.msg, e.t + shift);
  }
  schedule.sort();
  return schedule;
}

Rational predict_multi_source(const PostalParams& params,
                              const std::vector<ProcId>& sources) {
  check_sources(params, sources);
  if (params.n() == 1) return Rational(0);
  const std::uint64_t k = sources.size();
  const Rational shift =
      k >= 2 ? Rational(static_cast<std::int64_t>(k) - 2) + params.lambda()
             : Rational(0);
  return shift + predict_pipeline(params.lambda(), params.n(), k);
}

Rational multi_source_lower_bound(const PostalParams& params, std::uint64_t k) {
  POSTAL_REQUIRE(k >= 1, "multi_source_lower_bound: k must be >= 1");
  GenFib fib(params.lambda());
  Rational bound = fib.f(params.n());
  if (k >= 2) {
    bound = rmax(bound,
                 Rational(static_cast<std::int64_t>(k) - 1) + params.lambda());
  }
  return bound;
}

ValidatorOptions multi_source_goal(const PostalParams& params,
                                   const std::vector<ProcId>& sources) {
  check_sources(params, sources);
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(sources.size());
  options.origins = sources;
  return options;
}

}  // namespace postal
