#include "collectives/hrelation.hpp"

#include <algorithm>

namespace postal {

namespace {

constexpr std::int64_t kNone = -1;

void check_demands(const PostalParams& params, const std::vector<Demand>& demands) {
  for (const Demand& d : demands) {
    POSTAL_REQUIRE(d.src < params.n() && d.dst < params.n(),
                   "hrelation: processor id out of range");
    POSTAL_REQUIRE(d.src != d.dst, "hrelation: self-sends are not messages");
  }
}

}  // namespace

std::uint64_t relation_degree(const PostalParams& params,
                              const std::vector<Demand>& demands) {
  check_demands(params, demands);
  std::vector<std::uint64_t> out(params.n(), 0);
  std::vector<std::uint64_t> in(params.n(), 0);
  std::uint64_t h = 0;
  for (const Demand& d : demands) {
    h = std::max({h, ++out[d.src], ++in[d.dst]});
  }
  return h;
}

std::vector<std::uint64_t> color_relation(const PostalParams& params,
                                          const std::vector<Demand>& demands) {
  check_demands(params, demands);
  const std::uint64_t n = params.n();
  const std::uint64_t h = relation_degree(params, demands);
  std::vector<std::uint64_t> color(demands.size(), 0);
  if (demands.empty()) return color;

  // slot tables: sender_slot[u*h + c] / receiver_slot[v*h + c] hold the
  // demand index colored c at that port, or kNone.
  std::vector<std::int64_t> sender_slot(n * h, kNone);
  std::vector<std::int64_t> receiver_slot(n * h, kNone);
  auto first_free = [&](const std::vector<std::int64_t>& slots, ProcId node) {
    for (std::uint64_t c = 0; c < h; ++c) {
      if (slots[node * h + c] == kNone) return c;
    }
    throw LogicError("color_relation: no free color (degree bookkeeping bug)");
  };

  for (std::size_t e = 0; e < demands.size(); ++e) {
    const ProcId u = demands[e].src;
    const ProcId v = demands[e].dst;
    const std::uint64_t a = first_free(sender_slot, u);
    const std::uint64_t b = first_free(receiver_slot, v);
    if (a != b) {
      // Kempe chain: the maximal a/b-alternating path starting at v with
      // its a-edge. It cannot reach u (parity argument), so flipping it
      // frees color a at v while keeping a free at u.
      std::vector<std::size_t> chain;
      bool at_receiver = true;
      ProcId node = v;
      std::uint64_t want = a;
      while (true) {
        const std::int64_t next = at_receiver ? receiver_slot[node * h + want]
                                              : sender_slot[node * h + want];
        if (next == kNone) break;
        const auto idx = static_cast<std::size_t>(next);
        chain.push_back(idx);
        node = at_receiver ? demands[idx].src : demands[idx].dst;
        at_receiver = !at_receiver;
        want = (want == a) ? b : a;
      }
      // Clear the chain from the tables, then re-add with swapped colors.
      for (const std::size_t idx : chain) {
        sender_slot[demands[idx].src * h + color[idx]] = kNone;
        receiver_slot[demands[idx].dst * h + color[idx]] = kNone;
      }
      for (const std::size_t idx : chain) {
        color[idx] = (color[idx] == a) ? b : a;
        POSTAL_CHECK(sender_slot[demands[idx].src * h + color[idx]] == kNone);
        POSTAL_CHECK(receiver_slot[demands[idx].dst * h + color[idx]] == kNone);
        sender_slot[demands[idx].src * h + color[idx]] =
            static_cast<std::int64_t>(idx);
        receiver_slot[demands[idx].dst * h + color[idx]] =
            static_cast<std::int64_t>(idx);
      }
    }
    POSTAL_CHECK(sender_slot[u * h + a] == kNone);
    POSTAL_CHECK(receiver_slot[v * h + a] == kNone);
    color[e] = a;
    sender_slot[u * h + a] = static_cast<std::int64_t>(e);
    receiver_slot[v * h + a] = static_cast<std::int64_t>(e);
  }
  return color;
}

Schedule hrelation_schedule(const PostalParams& params,
                            const std::vector<Demand>& demands) {
  const std::vector<std::uint64_t> color = color_relation(params, demands);
  Schedule schedule;
  for (std::size_t e = 0; e < demands.size(); ++e) {
    schedule.add(demands[e].src, demands[e].dst, static_cast<MsgId>(e),
                 Rational(static_cast<std::int64_t>(color[e])));
  }
  schedule.sort();
  return schedule;
}

Rational predict_hrelation(const PostalParams& params,
                           const std::vector<Demand>& demands) {
  const std::uint64_t h = relation_degree(params, demands);
  if (h == 0) return Rational(0);
  return Rational(static_cast<std::int64_t>(h) - 1) + params.lambda();
}

Rational hrelation_lower_bound(const PostalParams& params,
                               const std::vector<Demand>& demands) {
  return predict_hrelation(params, demands);
}

ValidatorOptions hrelation_goal(const PostalParams& params,
                                const std::vector<Demand>& demands) {
  check_demands(params, demands);
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(demands.size());
  options.origins.reserve(demands.size());
  for (std::size_t e = 0; e < demands.size(); ++e) {
    options.origins.push_back(demands[e].src);
    options.required.emplace_back(demands[e].dst, static_cast<MsgId>(e));
  }
  return options;
}

std::vector<Demand> permutation_demands(const PostalParams& params,
                                        const std::vector<ProcId>& pi) {
  POSTAL_REQUIRE(pi.size() == params.n(),
                 "permutation_demands: pi must have one entry per processor");
  std::vector<bool> seen(params.n(), false);
  std::vector<Demand> demands;
  for (ProcId p = 0; p < params.n(); ++p) {
    POSTAL_REQUIRE(pi[p] < params.n(), "permutation_demands: target out of range");
    POSTAL_REQUIRE(!seen[pi[p]], "permutation_demands: pi is not a permutation");
    seen[pi[p]] = true;
    if (pi[p] != p) demands.push_back(Demand{p, pi[p]});
  }
  return demands;
}

}  // namespace postal
