// Permuting and h-relation routing in the postal model -- "permuting" is
// one of the Section 5 "other problems" (gossiping, combining, permuting,
// sorting).
//
// An h-relation is a set of point-to-point message demands in which every
// processor sends at most h messages and receives at most h messages.
// Lower bound: some port is busy h units and the last of its messages
// still pays the latency, so T >= (h-1) + lambda.
//
// The bound is achievable, and the construction is classical: the demands
// form a bipartite multigraph (senders x receivers) of maximum degree h,
// which by Konig's edge-coloring theorem can be properly colored with
// exactly h colors; all edges of color c are pairwise port-disjoint, so
// they all fire at time c. A permutation is a 1-relation: T = lambda --
// permuting is *free* in a fully connected postal system, in sharp
// contrast to store-and-forward networks.
//
// The edge coloring is implemented with the standard alternating-path
// (Kempe chain) argument, in O(E * (n + E)).
#pragma once

#include <cstdint>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "sim/validator.hpp"
#include "support/rational.hpp"

namespace postal {

/// One point-to-point demand: src must deliver one message to dst.
struct Demand {
  ProcId src = 0;
  ProcId dst = 0;
};

/// The relation's h: max over processors of max(out-degree, in-degree).
/// 0 for an empty demand list.
[[nodiscard]] std::uint64_t relation_degree(const PostalParams& params,
                                            const std::vector<Demand>& demands);

/// Proper h-coloring of the demands (Konig): returns one color in [0, h)
/// per demand such that demands sharing a sender or a receiver get
/// distinct colors. Throws InvalidArgument on self-sends or bad ids.
[[nodiscard]] std::vector<std::uint64_t> color_relation(
    const PostalParams& params, const std::vector<Demand>& demands);

/// The optimal routing schedule: demand with color c is sent at time c.
/// Message id = index into `demands`. Completes at (h-1) + lambda.
[[nodiscard]] Schedule hrelation_schedule(const PostalParams& params,
                                          const std::vector<Demand>& demands);

/// Exact completion: (h-1) + lambda (0 for an empty relation).
[[nodiscard]] Rational predict_hrelation(const PostalParams& params,
                                         const std::vector<Demand>& demands);

/// Lower bound == predict (the schedule is optimal).
[[nodiscard]] Rational hrelation_lower_bound(const PostalParams& params,
                                             const std::vector<Demand>& demands);

/// Validator options for the goal (demand i originates at its src and must
/// reach its dst).
[[nodiscard]] ValidatorOptions hrelation_goal(const PostalParams& params,
                                              const std::vector<Demand>& demands);

/// Convenience: the demands of a permutation pi (p sends to pi[p],
/// skipping fixed points). pi must be a permutation of 0..n-1.
[[nodiscard]] std::vector<Demand> permutation_demands(const PostalParams& params,
                                                      const std::vector<ProcId>& pi);

}  // namespace postal
