#include "collectives/scan.hpp"

#include <algorithm>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"

namespace postal {

namespace {

/// Structural facts about the generalized Fibonacci tree that both sweeps
/// share: parent links, each node's contiguous subtree range [lo, hi), and
/// the (down-sweep relative) send/arrival times from the BCAST schedule.
struct TreeInfo {
  struct Node {
    ProcId parent = 0;
    std::uint64_t hi = 0;          ///< full subtree range at receive: [self, hi)
    std::uint64_t remaining = 0;   ///< shrinking range during the replay
    Rational down_send;            ///< parent's send time in BCAST
    std::vector<ProcId> children;  ///< in BCAST send order
  };
  std::vector<Node> nodes;
};

TreeInfo build_tree(const PostalParams& params, GenFib& fib) {
  TreeInfo info;
  info.nodes.resize(params.n());
  info.nodes[0].hi = params.n();
  info.nodes[0].remaining = params.n();
  const Schedule schedule = bcast_schedule(params, fib);
  // BCAST semantics: a send u -> v at time t hands v the trailing part of
  // u's current range; u's working range shrinks to [u, v), but u remains
  // responsible for its *original* range [u, hi). Replaying events in time
  // order keeps the working ranges consistent (a node's sends come after
  // its own receive).
  for (const SendEvent& e : schedule.events()) {
    info.nodes[e.dst].parent = e.src;
    info.nodes[e.dst].hi = info.nodes[e.src].remaining;
    info.nodes[e.dst].remaining = info.nodes[e.src].remaining;
    info.nodes[e.dst].down_send = e.t;
    info.nodes[e.src].remaining = e.dst;
    info.nodes[e.src].children.push_back(e.dst);
  }
  return info;
}

}  // namespace

Schedule scan_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  GenFib fib(params.lambda());
  const Rational T = fib.f(n);
  const Schedule bcast = bcast_schedule(params, fib);
  // Up-sweep: time-reversed BCAST; message id = sender.
  for (const SendEvent& e : bcast.events()) {
    schedule.add(e.dst, e.src, /*msg=*/e.dst, T - e.t - params.lambda());
  }
  // Down-sweep: BCAST again, shifted by T; message id = n + receiver.
  for (const SendEvent& e : bcast.events()) {
    schedule.add(e.src, e.dst, static_cast<MsgId>(n + e.dst), e.t + T);
  }
  schedule.sort();
  return schedule;
}

Rational predict_scan(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  GenFib fib(params.lambda());
  return Rational(2) * fib.f(params.n());
}

std::vector<std::int64_t> scan_values(const PostalParams& params,
                                      const std::vector<std::int64_t>& inputs) {
  const std::uint64_t n = params.n();
  POSTAL_REQUIRE(inputs.size() == n, "scan_values: need one input per processor");
  std::vector<std::int64_t> prefix(n, 0);
  if (n == 1) return prefix;

  GenFib fib(params.lambda());
  const TreeInfo tree = build_tree(params, fib);
  const Rational T = fib.f(n);

  // Up-sweep: subtree sums flow to parents along the reversed tree. The
  // reversed-BCAST timing guarantees a node has heard from all its
  // children before it sends; verify that explicitly.
  std::vector<std::int64_t> subtree(n);
  for (ProcId p = 0; p < n; ++p) {
    std::int64_t sum = 0;
    for (std::uint64_t i = p; i < tree.nodes[p].hi; ++i) sum += inputs[i];
    subtree[p] = sum;
  }
  for (ProcId p = 1; p < n; ++p) {
    const Rational up_send = T - tree.nodes[p].down_send - params.lambda();
    for (const ProcId c : tree.nodes[p].children) {
      const Rational child_arrival = T - tree.nodes[c].down_send;
      POSTAL_CHECK(child_arrival <= up_send);
    }
  }

  // Down-sweep: each parent derives every child's exclusive prefix from
  // its own prefix, its own input, and the up-sweep subtree sums of the
  // children it already handed off (which cover [child, previous-hi)).
  // Children are in send order (first child took the largest trailing
  // range), so a running subtraction from the parent's subtree sum gives
  // sum over [parent, child).
  for (ProcId u = 0; u < n; ++u) {
    std::int64_t trailing = 0;  // sum of subtree sums of children sent so far
    for (const ProcId c : tree.nodes[u].children) {
      trailing += subtree[c];
      const std::int64_t left_of_c = subtree[u] - trailing;  // sum over [u, c)
      prefix[c] = prefix[u] + left_of_c;
      // Timing: u sends c's prefix at T + down_send(c); it needs its own
      // prefix (arrived T + down_send(u) + lambda for u != 0, or held at 0)
      // and the up-sweep partials (all arrived by T).
      const Rational send_time = T + tree.nodes[c].down_send;
      if (u != 0) {
        const Rational own_prefix_arrival =
            T + tree.nodes[u].down_send + params.lambda();
        POSTAL_CHECK(own_prefix_arrival <= send_time);
      }
      POSTAL_CHECK(T <= send_time);
    }
  }

  // Semantic ground truth: the compositional prefixes must equal direct
  // prefix sums (any mismatch is a tree-range bug).
  std::int64_t running = 0;
  for (ProcId p = 0; p < n; ++p) {
    POSTAL_CHECK(prefix[p] == running);
    running += inputs[p];
  }
  return prefix;
}

}  // namespace postal
