// Allreduce in the postal model: every processor contributes a value and
// every processor must end up with the full combination -- the workhorse
// collective of data-parallel computing, and a natural composition problem
// over the paper's primitives.
//
// Two classical strategies with a genuine crossover:
//
//  * tree:    reduce to p_0 (time-reversed BCAST, f_lambda(n)), then BCAST
//             the result:              T = 2 * f_lambda(n) + ~0
//             -- wins when n is large relative to lambda
//               (2 f ~ 2 lambda log n / log lambda << n).
//
//  * gossip:  run the optimal direct-exchange allgather and let everyone
//             combine locally:         T = (n - 2) + lambda
//             -- wins when lambda is large relative to n
//               (a single latency beats two tree heights).
//
// allreduce_auto picks the cheaper one exactly; the bench maps the
// crossover line.
#pragma once

#include <string>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// Which composition realizes the allreduce.
enum class AllreduceStrategy {
  kTree,    ///< reduce to p_0 + broadcast the result
  kGossip,  ///< direct-exchange allgather + local combine
};

/// The allreduce schedule under the chosen strategy. Message encoding for
/// kTree: ids 0..n-1 are the partial results (as in reduce), id n is the
/// combined result being broadcast. For kGossip: id p is p's contribution.
[[nodiscard]] Schedule allreduce_schedule(const PostalParams& params,
                                          AllreduceStrategy strategy);

/// Exact completion time of allreduce_schedule.
[[nodiscard]] Rational predict_allreduce(const PostalParams& params,
                                         AllreduceStrategy strategy);

/// The cheaper strategy for these parameters (ties go to kGossip, which
/// needs no combining tree at all).
[[nodiscard]] AllreduceStrategy allreduce_auto(const PostalParams& params);

/// Human-readable strategy name.
[[nodiscard]] std::string allreduce_strategy_name(AllreduceStrategy strategy);

/// Lower bound: information must still cross the machine, so
/// T >= f_lambda(n); and everyone must hear from everyone, so for n >= 2
/// T >= (n-2) + lambda is NOT required (combining compresses), but the
/// receive-port of any processor must absorb at least one message:
/// T >= lambda. The tight bound is max(f_lambda(n), lambda).
[[nodiscard]] Rational allreduce_lower_bound(const PostalParams& params);

}  // namespace postal
