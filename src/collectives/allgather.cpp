#include "collectives/allgather.hpp"

#include "sched/pipeline.hpp"

namespace postal {

Schedule allgather_direct_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  for (std::uint64_t p = 0; p < n; ++p) {
    for (std::uint64_t k = 0; k + 1 < n; ++k) {
      // Rotation keeps every receive port loaded exactly once per unit.
      const std::uint64_t dst = (p + 1 + k) % n;
      schedule.add(static_cast<ProcId>(p), static_cast<ProcId>(dst),
                   static_cast<MsgId>(p), Rational(static_cast<std::int64_t>(k)));
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_allgather_direct(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  return Rational(static_cast<std::int64_t>(params.n()) - 2) + params.lambda();
}

Schedule allgather_ring_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  for (std::uint64_t p = 0; p < n; ++p) {
    for (std::uint64_t k = 0; k + 1 < n; ++k) {
      // At "ring step" k processor p forwards message (p - k mod n); the
      // message only arrived k*lambda ago, so the step time is k*lambda.
      const std::uint64_t msg = (p + n - k % n) % n;
      schedule.add(static_cast<ProcId>(p), static_cast<ProcId>((p + 1) % n),
                   static_cast<MsgId>(msg),
                   Rational(static_cast<std::int64_t>(k)) * params.lambda());
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_allgather_ring(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  return Rational(static_cast<std::int64_t>(params.n()) - 1) * params.lambda();
}

Schedule allgather_gather_bcast_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  // Phase 1: optimal gather -- processor p streams its contribution (id p)
  // to the root so arrivals land back to back.
  for (std::uint64_t p = 1; p < n; ++p) {
    schedule.add(static_cast<ProcId>(p), /*dst=*/0, static_cast<MsgId>(p),
                 Rational(static_cast<std::int64_t>(p) - 1));
  }
  const Rational gather_done =
      Rational(static_cast<std::int64_t>(n) - 2) + params.lambda();
  // Phase 2: PIPELINE-broadcast all n messages from the root.
  const Schedule bcast = pipeline_schedule(params, /*m=*/n);
  schedule.append_shifted(bcast, gather_done, /*msg_offset=*/0);
  schedule.sort();
  return schedule;
}

Rational predict_allgather_gather_bcast(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  const Rational gather_done =
      Rational(static_cast<std::int64_t>(params.n()) - 2) + params.lambda();
  return gather_done + predict_pipeline(params.lambda(), params.n(), params.n());
}

Rational allgather_lower_bound(const PostalParams& params) {
  return predict_allgather_direct(params);
}

ValidatorOptions allgather_goal(const PostalParams& params) {
  ValidatorOptions options;
  const std::uint64_t n = params.n();
  options.messages = static_cast<std::uint32_t>(n);
  for (std::uint64_t p = 0; p < n; ++p) {
    options.origins.push_back(static_cast<ProcId>(p));
  }
  return options;
}

}  // namespace postal
