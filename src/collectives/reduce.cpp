#include "collectives/reduce.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "support/interval_set.hpp"

namespace postal {

Schedule reduce_schedule(const PostalParams& params) {
  Schedule schedule;
  if (params.n() == 1) return schedule;
  GenFib fib(params.lambda());
  const Schedule bcast = bcast_schedule(params, fib);
  const Rational T = fib.f(params.n());
  // Time reversal: a broadcast send u -> v at t (arriving t + lambda)
  // becomes a combine send v -> u at T - t - lambda (arriving T - t).
  for (const SendEvent& e : bcast.events()) {
    schedule.add(e.dst, e.src, /*msg=*/e.dst, T - e.t - params.lambda());
  }
  schedule.sort();
  return schedule;
}

Rational predict_reduce(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  GenFib fib(params.lambda());
  return fib.f(params.n());
}

ReduceReport validate_reduce(const Schedule& schedule, const PostalParams& params) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  ReduceReport report;
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  std::vector<IntervalSet> send_port(n);
  std::vector<IntervalSet> recv_port(n);
  std::vector<std::optional<Rational>> sent_at(n);
  // contributions[p]: count of distinct inputs currently combined at p.
  std::vector<std::uint64_t> contributions(n, 1);

  struct PendingArrival {
    Rational arrival;
    ProcId dst;
    std::uint64_t count;
  };
  std::vector<PendingArrival> pending;  // kept sorted by arrival lazily

  auto flush_until = [&](const Rational& now) {
    std::stable_sort(pending.begin(), pending.end(),
                     [](const PendingArrival& a, const PendingArrival& b) {
                       return a.arrival < b.arrival;
                     });
    std::size_t i = 0;
    for (; i < pending.size() && pending[i].arrival <= now; ++i) {
      const PendingArrival& a = pending[i];
      if (sent_at[a.dst].has_value() && *sent_at[a.dst] < a.arrival) {
        std::ostringstream oss;
        oss << "p" << a.dst << " already sent its partial result at t="
            << *sent_at[a.dst] << " but a contribution arrives at t=" << a.arrival;
        violate(oss.str());
      } else {
        contributions[a.dst] += a.count;
      }
    }
    pending.erase(pending.begin(), pending.begin() + static_cast<std::ptrdiff_t>(i));
  };

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    flush_until(e.t);
    if (e.src == 0) {
      violate(who.str() + "the reduction root p0 must not send");
      continue;
    }
    if (sent_at[e.src].has_value()) {
      violate(who.str() + "processor sends its partial result twice");
      continue;
    }
    sent_at[e.src] = e.t;
    if (auto clash = send_port[e.src].insert(e.t, e.t + Rational(1))) {
      violate(who.str() + "send-port conflict");
    }
    const Rational arrive = e.t + lambda;
    if (auto clash = recv_port[e.dst].insert(arrive - Rational(1), arrive)) {
      violate(who.str() + "receive-port conflict");
    }
    pending.push_back(PendingArrival{arrive, e.dst, contributions[e.src]});
    report.completion = rmax(report.completion, arrive);
  }
  // Flush everything still in flight.
  Rational horizon = report.completion + Rational(1);
  flush_until(horizon);

  for (ProcId p = 1; p < n; ++p) {
    if (!sent_at[p].has_value()) {
      violate("p" + std::to_string(p) + " never sent its contribution");
    }
  }
  if (contributions[0] != n) {
    violate("root combined " + std::to_string(contributions[0]) + " of " +
            std::to_string(n) + " contributions");
  }
  report.ok = report.violations.empty();
  return report;
}

}  // namespace postal
