#include "collectives/barrier.hpp"

#include "collectives/reduce.hpp"
#include "sched/bcast.hpp"

namespace postal {

Schedule barrier_schedule(const PostalParams& params) {
  Schedule schedule;
  const std::uint64_t n = params.n();
  if (n == 1) return schedule;
  // Phase 1: arrival signals combine toward p_0. The reduce schedule tags
  // each send with the sender's id; that matches the "ids 0..n-1 are
  // arrival signals" encoding directly.
  const Schedule arrive = reduce_schedule(params);
  for (const SendEvent& e : arrive.events()) schedule.add(e);
  const Rational arrive_done = predict_reduce(params);
  // Phase 2: p_0 broadcasts the release message (id n).
  const Schedule release = bcast_schedule(params);
  for (const SendEvent& e : release.events()) {
    schedule.add(e.src, e.dst, static_cast<MsgId>(n), e.t + arrive_done);
  }
  schedule.sort();
  return schedule;
}

Rational predict_barrier(const PostalParams& params) {
  if (params.n() == 1) return Rational(0);
  return Rational(2) * predict_reduce(params);
}

Rational barrier_release_time(const PostalParams& params) {
  return predict_barrier(params);
}

}  // namespace postal
