// Sorting in the postal model -- the last of the Section 5 "other
// problems" (gossiping, combining, permuting, sorting).
//
// Setting: processor p holds one key; afterwards processor p must hold the
// key of rank p. Two algorithms with an instructive gap:
//
//  * gossip sort -- run the optimal direct-exchange allgather, then every
//    processor locally selects the key of its own rank:
//        T = (n-2) + lambda,
//    and one more lambda + permutation if only the *owners* may move data
//    (here keys travel with the gossip, so selection is local and free).
//    Full connectivity again absorbs the latency.
//
//  * odd-even transposition sort -- the classic fixed-connectivity
//    baseline: n rounds of neighbor exchanges, each round paying a full
//    round trip of the wire:
//        T = n * lambda,
//    i.e. a lambda-factor slower. The postal lens makes the textbook
//    algorithm's latency bill explicit.
//
// sort_values() executes the gossip sort on concrete keys; the odd-even
// baseline is also executed (round by round, with its exact postal time)
// so the two can be compared both in answer and in cost.
#pragma once

#include <cstdint>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The gossip-sort communication schedule (== optimal allgather).
[[nodiscard]] Schedule sort_schedule(const PostalParams& params);

/// Exact completion of the gossip sort: (n-2) + lambda for n >= 2.
[[nodiscard]] Rational predict_sort(const PostalParams& params);

/// Execute the gossip sort: returns the keys in rank order (the value
/// processor p ends up holding at index p).
[[nodiscard]] std::vector<std::int64_t> sort_values(
    const PostalParams& params, const std::vector<std::int64_t>& keys);

/// Result of the odd-even transposition baseline.
struct OddEvenResult {
  std::vector<std::int64_t> values;  ///< keys after the run (sorted)
  std::uint64_t rounds = 0;          ///< rounds executed (n, per the classic bound)
  Rational completion;               ///< rounds * lambda
};

/// Execute odd-even transposition sort and report its exact postal cost.
[[nodiscard]] OddEvenResult odd_even_sort(const PostalParams& params,
                                          const std::vector<std::int64_t>& keys);

}  // namespace postal
