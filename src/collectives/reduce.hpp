// Combining (reduction) in the postal model -- the problem of [6] (Cidon,
// Gopal, Kutten) that the paper credits as the source of its Fibonacci-tree
// approach, and one of the Section 5 "other problems".
//
// Every processor p holds a private contribution x_p; processor p_0 must
// learn x_0 (+) x_1 (+) ... (+) x_{n-1} for an associative, commutative
// operator (+). Partial results stay atomic (combining does not grow
// messages), so the problem is exactly time-reversed broadcast: running
// Algorithm BCAST's schedule backwards turns every receive into a send and
// yields a combine schedule that finishes in f_lambda(n) -- optimal, since
// a reduction schedule reversed is a broadcast schedule and Lemma 5 bounds
// those below by f_lambda(n).
//
// Schedule encoding: message id p is processor p's partial result at the
// moment it sends (its own contribution combined with everything it
// received earlier). validate_reduce checks combine-readiness and closure.
#pragma once

#include <string>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The time-reversed-BCAST reduction schedule: every non-root processor
/// sends exactly one partial result; p_0 holds the full combination at
/// completion. Sorted by time.
[[nodiscard]] Schedule reduce_schedule(const PostalParams& params);

/// Exact completion time: f_lambda(n) (0 for n == 1), matching broadcast.
[[nodiscard]] Rational predict_reduce(const PostalParams& params);

/// Result of checking a reduction schedule.
struct ReduceReport {
  bool ok = false;
  std::vector<std::string> violations;
  Rational completion;  ///< time p_0 holds the full combination
};

/// Validate any reduction schedule for MPS(n, lambda) with root p_0:
///  * port exclusivity (send and receive, as in the postal model);
///  * single-shot: every non-root sends exactly once, the root never sends;
///  * combine-readiness: a processor sends only after every partial result
///    addressed to it has fully arrived;
///  * closure: the root's final combined set is all n contributions.
[[nodiscard]] ReduceReport validate_reduce(const Schedule& schedule,
                                           const PostalParams& params);

}  // namespace postal
