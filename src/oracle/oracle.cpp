#include "oracle/oracle.hpp"

#include "support/error.hpp"

namespace postal::oracle {

namespace {

// Overflow-checked tick add. Descent times are bounded by f_lambda(n)
// ticks -- the index range of GenFib's own memo table -- so this can only
// fire on an internal bug, never on a constructible input.
[[nodiscard]] Tick add_ticks(Tick a, Tick b) {
  Tick out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("ScheduleOracle: tick time overflow in descent");
  }
  return out;
}

}  // namespace

ScheduleOracle::ScheduleOracle(std::uint64_t n, Rational lambda,
                               par::GenFibCache* cache)
    : n_(n),
      lambda_(std::move(lambda)),
      q_(lambda_.den()),
      lambda_ticks_(lambda_.num()),
      cache_(cache != nullptr ? cache : &par::GenFibCache::global()) {
  POSTAL_REQUIRE(n >= 1, "ScheduleOracle: n must be >= 1");
  POSTAL_REQUIRE(lambda_ >= Rational(1), "ScheduleOracle: lambda must be >= 1");
}

std::uint64_t ScheduleOracle::split(std::uint64_t count) const {
  return cache_->bcast_split(lambda_, count);
}

Tick ScheduleOracle::f_ticks(std::uint64_t count) const {
  if (count <= 1) return 0;
  const Rational f = cache_->f(lambda_, count);
  // f is a grid point k/q with f.den() | q, so this is exact.
  return f.num() * (q_ / f.den());
}

Rational ScheduleOracle::makespan() const { return tick_time(f_ticks(n_)); }

ScheduleOracle::Cursor ScheduleOracle::locate(Rank rank) const {
  POSTAL_REQUIRE(rank < n_, "ScheduleOracle: rank out of range");
  Cursor c;
  c.count = n_;
  Tick now = 0;  // the current holder's next send start
  while (c.base != rank) {
    // rank lies strictly inside [base, base + count), so count >= 2 and
    // the holder splits: it keeps [base, base + j) and informs base + j.
    const std::uint64_t j = split(c.count);
    const Rank child = c.base + j;
    if (rank >= child) {
      // Descend into the recipient's range [base + j, base + count).
      c.parent = c.base;
      c.parent_send = now;
      c.base = child;
      c.count -= j;
      c.inform = add_ticks(now, lambda_ticks_);
      now = c.inform;
      ++c.depth;
    } else {
      // Stay with the holder, whose range shrinks to [base, base + j) and
      // whose next send starts one unit later.
      c.count = j;
      now = add_ticks(now, q_);
    }
  }
  return c;
}

Rational ScheduleOracle::inform_time(Rank rank) const {
  return tick_time(locate(rank).inform);
}

Rank ScheduleOracle::parent(Rank rank) const { return locate(rank).parent; }

RankInfo ScheduleOracle::info(Rank rank) const {
  const Cursor c = locate(rank);
  RankInfo out;
  out.rank = rank;
  out.parent = c.parent;
  out.inform_time = tick_time(c.inform);
  out.parent_send = tick_time(c.parent_send);
  out.subtree = c.count;
  out.depth = c.depth;
  // The out-degree is the length of the split chain count > j(count) >
  // j(j(count)) > ... > 1: one send per link.
  std::uint64_t remaining = c.count;
  while (remaining >= 2) {
    remaining = split(remaining);
    ++out.out_degree;
  }
  return out;
}

std::uint64_t ScheduleOracle::out_degree(Rank rank) const {
  return info(rank).out_degree;
}

Rational ScheduleOracle::send_slot(Rank rank, std::uint64_t slot) const {
  const RankInfo i = info(rank);
  POSTAL_REQUIRE(slot < i.out_degree,
                 "ScheduleOracle::send_slot: slot beyond the rank's out-degree");
  return tick_time(
      add_ticks(locate(rank).inform, static_cast<Tick>(slot) * q_));
}

std::optional<Rank> ScheduleOracle::child_at(Rank rank,
                                             std::uint64_t slot) const {
  const Cursor c = locate(rank);
  std::uint64_t remaining = c.count;
  for (std::uint64_t k = 0; remaining >= 2; ++k) {
    const std::uint64_t j = split(remaining);
    if (k == slot) return c.base + j;
    remaining = j;
  }
  return std::nullopt;
}

Rank ScheduleOracle::last_informed_rank() const {
  if (n_ == 1) return 0;
  Rank base = 0;
  std::uint64_t count = n_;
  Tick inform = 0;
  Tick now = 0;
  while (count >= 2) {
    const std::uint64_t j = split(count);
    // Completion of each branch if descended into: the holder's remaining
    // sub-broadcast on j ranks first sends at now + 1; the recipient's on
    // count - j ranks first sends at its inform time now + lambda. A
    // size-1 branch completes at its member's inform time.
    const Tick holder_done =
        j >= 2 ? add_ticks(add_ticks(now, q_), f_ticks(j)) : inform;
    const Tick recipient_done =
        add_ticks(add_ticks(now, lambda_ticks_), f_ticks(count - j));
    if (recipient_done >= holder_done) {
      base += j;
      count -= j;
      inform = add_ticks(now, lambda_ticks_);
      now = inform;
    } else {
      count = j;
      now = add_ticks(now, q_);
    }
  }
  // Theorem 6: the deepest completion is exactly f_lambda(n).
  POSTAL_CHECK(inform == f_ticks(n_));
  return base;
}

ScheduleOracle::ChildRange ScheduleOracle::children(Rank rank) const {
  const Cursor c = locate(rank);
  return ChildRange(this, c.base, c.count, c.inform);
}

Child ScheduleOracle::ChildRange::iterator::operator*() const {
  POSTAL_CHECK(oracle_ != nullptr && remaining_ >= 2);
  const std::uint64_t j = oracle_->split(remaining_);
  Child out;
  out.rank = base_ + j;
  out.send_time = oracle_->tick_time(now_);
  out.subtree = remaining_ - j;
  return out;
}

ScheduleOracle::ChildRange::iterator&
ScheduleOracle::ChildRange::iterator::operator++() {
  POSTAL_CHECK(oracle_ != nullptr && remaining_ >= 2);
  remaining_ = oracle_->split(remaining_);
  now_ = add_ticks(now_, oracle_->q_);
  return *this;
}

std::vector<StreamEvent> ScheduleOracle::events(Rank lo, Rank hi) const {
  POSTAL_REQUIRE(lo <= hi && hi <= n_,
                 "ScheduleOracle::events: need lo <= hi <= n");
  std::vector<StreamEvent> out;
  const Rank first = lo < 1 ? 1 : lo;
  if (first >= hi) return out;
  out.reserve(static_cast<std::size_t>(hi - first));
  for (Rank r = first; r < hi; ++r) {
    const Cursor c = locate(r);
    out.push_back(StreamEvent{c.parent, r, tick_time(c.parent_send)});
  }
  return out;
}

}  // namespace postal::oracle
