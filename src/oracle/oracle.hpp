// The implicit schedule oracle: Algorithm BCAST's answers without the
// schedule (docs/ORACLE.md).
//
// Every generator in src/sched materializes its schedule as an event list,
// which caps the largest system the repo can reason about at whatever fits
// in memory (~10^7 processors). But the paper's closed forms define the
// optimal broadcast tree *implicitly*: with j = F_lambda(f_lambda(n) - 1)
// (Theorem 6), the holder of a contiguous rank range [base, base + count)
// keeps [base, base + j) and hands [base + j, base + count) to the
// processor it informs next. A rank's parent, inform time, and send slots
// are therefore computable by *descending* that split recursion from
// (0, n) -- O(f_lambda(n)) arithmetic steps and O(1) memory per query,
// with no event list anywhere. This is the same per-rank closed-form shape
// collective libraries in the LogP tradition use to serve huge
// communicators without global coordination.
//
// Exactness discipline: the descent carries times as int64 grid ticks
// (multiples of 1/q, support/ticks) with overflow-checked adds -- an
// inform time's tick index is bounded by f_lambda(n) * q, the size of
// GenFib's own memo table, so the checks cannot fire for any constructible
// lambda -- and converts to exact Rational only at the API boundary.
// Split values come from the process-wide (or caller-owned) sharded
// par::GenFibCache: a query's chain of range sizes n > j(n) > j(j(n)) ...
// shares its prefix with every other query at the same lambda, so the
// cache turns repeated queries into pure hash lookups.
//
// The oracle is certified two ways (tests/oracle/): a differential gate
// proves it reproduces the materialized sched::bcast schedule
// event-for-event on every (n, lambda) the old path can hold, and the
// streaming validator (sim/stream_validator.hpp) re-checks oracle-emitted
// event chunks against the postal-model clauses at any n.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "par/genfib_cache.hpp"
#include "sim/stream_validator.hpp"
#include "support/rational.hpp"
#include "support/ticks.hpp"

namespace postal::oracle {

/// A processor rank in [0, n). 64-bit on purpose: the oracle serves
/// systems far larger than the ProcId-indexed materialized path.
using Rank = std::uint64_t;

/// Everything one descent learns about a rank.
struct RankInfo {
  Rank rank = 0;
  Rank parent = 0;            ///< the rank that informs it; == rank for p0
  Rational inform_time;       ///< arrival of its single receive; 0 for p0
  Rational parent_send;       ///< start of the send informing it; 0 for p0
  std::uint64_t subtree = 1;  ///< processors in its BCAST range (incl. itself)
  std::uint64_t depth = 0;    ///< receive hops from the origin
  std::uint64_t out_degree = 0;  ///< sends it performs
};

/// One child edge yielded by the lazy children generator.
struct Child {
  Rank rank = 0;              ///< the recipient
  Rational send_time;         ///< when the parent starts this send
  std::uint64_t subtree = 1;  ///< processors handed to the recipient
};

/// Per-rank queries against the optimal broadcast schedule of
/// MPS(n, lambda), without materializing it.
///
/// Thread-safe: all state is immutable after construction except the
/// shared GenFibCache, which synchronizes internally.
class ScheduleOracle final : public RankScheduleSource {
 public:
  /// Throws InvalidArgument unless n >= 1 and lambda >= 1.
  /// `cache` = nullptr uses par::GenFibCache::global().
  ScheduleOracle(std::uint64_t n, Rational lambda,
                 par::GenFibCache* cache = nullptr);

  [[nodiscard]] std::uint64_t n() const noexcept override { return n_; }
  [[nodiscard]] Rational lambda() const override { return lambda_; }

  /// The exact completion time f_lambda(n) (0 for n == 1).
  [[nodiscard]] Rational makespan() const;

  /// When `rank` is fully informed (0 for the origin).
  [[nodiscard]] Rational inform_time(Rank rank) const;

  /// The rank that informs `rank`. The origin is its own parent by
  /// convention (use depth == 0 to distinguish it).
  [[nodiscard]] Rank parent(Rank rank) const;

  /// Parent, inform time, subtree size, depth, and out-degree in one
  /// descent.
  [[nodiscard]] RankInfo info(Rank rank) const;

  /// Number of sends `rank` performs.
  [[nodiscard]] std::uint64_t out_degree(Rank rank) const;

  /// Start time of `rank`'s send number `slot` (its sends start at
  /// inform_time, inform_time + 1, ...). Throws InvalidArgument unless
  /// slot < out_degree(rank).
  [[nodiscard]] Rational send_slot(Rank rank, std::uint64_t slot) const;

  /// The rank addressed by `rank`'s send in `slot`, or nullopt past its
  /// out-degree.
  [[nodiscard]] std::optional<Rank> child_at(Rank rank,
                                             std::uint64_t slot) const;

  /// A rank whose inform time equals the makespan -- the witness that the
  /// implicit schedule attains f_lambda(n) exactly, found by descending
  /// into whichever branch of the split recursion completes last. Returns
  /// 0 for n == 1; throws LogicError if the witness's inform time ever
  /// disagreed with f_lambda(n) (that would disprove Theorem 6).
  [[nodiscard]] Rank last_informed_rank() const;

  /// Bounded lazy generator over `rank`'s children in send order. The
  /// range is input-iterable, O(1) memory, and at most
  /// out_degree(rank) <= f_lambda(n)/1 items long.
  class ChildRange;
  [[nodiscard]] ChildRange children(Rank rank) const;

  /// The receive events of ranks [max(lo, 1), hi), one per rank in rank
  /// order -- the chunk shape StreamingValidator certifies. O(hi - lo)
  /// memory; throws InvalidArgument unless lo <= hi <= n.
  [[nodiscard]] std::vector<StreamEvent> events(Rank lo, Rank hi) const;

  // RankScheduleSource (the streaming validator's closed-form source).
  [[nodiscard]] Rational rank_inform_time(std::uint64_t rank) const override {
    return inform_time(rank);
  }
  [[nodiscard]] std::optional<std::uint64_t> rank_child_at(
      std::uint64_t rank, std::uint64_t slot) const override {
    return child_at(rank, slot);
  }
  [[nodiscard]] Rational schedule_makespan() const override {
    return makespan();
  }

  /// The cache serving this oracle's split/f lookups (never null).
  [[nodiscard]] par::GenFibCache& cache() const noexcept { return *cache_; }

 private:
  /// Descent state at the moment `rank` became the holder of its range.
  struct Cursor {
    Rank base = 0;             ///< == the queried rank on return
    std::uint64_t count = 1;   ///< size of the range it holds
    Tick inform = 0;           ///< when it was informed (grid ticks)
    Tick parent_send = 0;      ///< start of the send that informed it
    Rank parent = 0;
    std::uint64_t depth = 0;
  };

  [[nodiscard]] Cursor locate(Rank rank) const;
  [[nodiscard]] std::uint64_t split(std::uint64_t count) const;
  [[nodiscard]] Tick f_ticks(std::uint64_t count) const;
  [[nodiscard]] Rational tick_time(Tick t) const { return Rational(t, q_); }

  std::uint64_t n_;
  Rational lambda_;
  std::int64_t q_;     ///< grid resolution: times are multiples of 1/q
  Tick lambda_ticks_;  ///< lambda as grid ticks (= its numerator)
  par::GenFibCache* cache_;

  friend class ChildRange;
};

/// Input range over a rank's children; see ScheduleOracle::children.
class ScheduleOracle::ChildRange {
 public:
  class iterator {
   public:
    using value_type = Child;
    using difference_type = std::ptrdiff_t;

    iterator() = default;

    [[nodiscard]] Child operator*() const;
    iterator& operator++();
    void operator++(int) { ++*this; }

    friend bool operator==(const iterator& a, const iterator& b) {
      const bool a_end = a.oracle_ == nullptr || a.remaining_ < 2;
      const bool b_end = b.oracle_ == nullptr || b.remaining_ < 2;
      if (a_end || b_end) return a_end == b_end;
      return a.base_ == b.base_ && a.remaining_ == b.remaining_ &&
             a.now_ == b.now_;
    }

   private:
    friend class ChildRange;
    iterator(const ScheduleOracle* oracle, Rank base, std::uint64_t remaining,
             Tick now)
        : oracle_(oracle), base_(base), remaining_(remaining), now_(now) {}

    const ScheduleOracle* oracle_ = nullptr;
    Rank base_ = 0;
    std::uint64_t remaining_ = 1;  ///< < 2 means exhausted
    Tick now_ = 0;                 ///< start time of the current send
  };

  [[nodiscard]] iterator begin() const {
    return iterator(oracle_, base_, count_, start_);
  }
  [[nodiscard]] iterator end() const { return iterator(); }

 private:
  friend class ScheduleOracle;
  ChildRange(const ScheduleOracle* oracle, Rank base, std::uint64_t count,
             Tick start)
      : oracle_(oracle), base_(base), count_(count), start_(start) {}

  const ScheduleOracle* oracle_;
  Rank base_;
  std::uint64_t count_;
  Tick start_;
};

}  // namespace postal::oracle
