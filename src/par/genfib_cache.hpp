// Sharded, thread-safe memo cache for the generalized Fibonacci machinery.
//
// GenFib (model/genfib.hpp) is deliberately thread-compatible, not
// thread-safe: every evaluation may extend its internal memo table. The
// sweeps fixed that historically by constructing a fresh GenFib per grid
// point, recomputing the same F_lambda table over and over. GenFibCache
// keeps exactly one GenFib per *exact* Rational lambda -- keys are the
// reduced p/q pair, so lambda = 5/2 and lambda = 2.5 share one table while
// 5/2 and 3/2 never collide -- plus a per-lambda memo of finished f(n)
// answers.
//
// Concurrency: the lambda -> entry map is sharded by hash(lambda), each
// shard behind its own mutex, so lookups for different lambdas rarely
// contend; evaluation itself holds the entry's own mutex (one writer per
// F_lambda table at a time). Values are bit-identical to a fresh GenFib by
// construction -- the cache only ever *reuses* tables, never approximates.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/genfib.hpp"
#include "support/rational.hpp"

#include <atomic>

namespace postal::par {

/// Process-wide (or locally owned) cache of GenFib tables and f(n) answers.
class GenFibCache {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit GenFibCache(std::size_t shards = kDefaultShards);

  /// f_lambda(n), memoized per (lambda, n). Same contract as GenFib::f.
  [[nodiscard]] Rational f(const Rational& lambda, std::uint64_t n);

  /// F_lambda(t). Same contract as GenFib::F (the grid memo is shared).
  [[nodiscard]] std::uint64_t F(const Rational& lambda, const Rational& t);

  /// The BCAST split j = F_lambda(f_lambda(n) - 1) (GenFib::bcast_split),
  /// memoized per (lambda, n). This is the descent cache of the implicit
  /// schedule oracle (src/oracle): every per-rank query walks a chain of
  /// range sizes n > j(n) > j(j(n)) > ... whose prefixes are shared between
  /// ranks, so one oracle query warms the splits every later query on the
  /// same lambda re-reads.
  [[nodiscard]] std::uint64_t bcast_split(const Rational& lambda, std::uint64_t n);

  /// Cache effectiveness counters (monotone since construction/clear).
  struct Stats {
    std::uint64_t f_hits = 0;    ///< f() answered from the per-lambda memo
    std::uint64_t f_misses = 0;  ///< f() computed (and then memoized)
    std::uint64_t split_hits = 0;    ///< bcast_split() memo hits
    std::uint64_t split_misses = 0;  ///< bcast_split() computed + memoized
    std::uint64_t tables = 0;    ///< distinct lambda tables materialized
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Drop every table, memo, and counter.
  void clear();

  /// The process-wide instance used when callers pass no cache explicitly.
  [[nodiscard]] static GenFibCache& global();

 private:
  struct Entry {
    explicit Entry(const Rational& lambda) : fib(lambda) {}
    std::mutex mu;
    GenFib fib;                                      // guarded by mu
    std::unordered_map<std::uint64_t, Rational> f_memo;  // guarded by mu
    std::unordered_map<std::uint64_t, std::uint64_t> split_memo;  // guarded by mu
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Rational, std::shared_ptr<Entry>> entries;
  };

  [[nodiscard]] std::shared_ptr<Entry> entry(const Rational& lambda);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> f_hits_{0};
  std::atomic<std::uint64_t> f_misses_{0};
  std::atomic<std::uint64_t> split_hits_{0};
  std::atomic<std::uint64_t> split_misses_{0};
  std::atomic<std::uint64_t> tables_{0};
};

}  // namespace postal::par
