#include "par/sweep.hpp"

#include <algorithm>
#include <chrono>

#include "brute/optimal_search.hpp"
#include "sim/validator.hpp"
#include "support/error.hpp"

namespace postal::par {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  const auto dt = std::chrono::steady_clock::now() - since;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         1e6;
}

}  // namespace

std::vector<SweepPointResult> sweep_grid(const std::vector<std::uint64_t>& ns,
                                         const std::vector<Rational>& lambdas,
                                         const SweepOptions& options) {
  POSTAL_REQUIRE(!ns.empty() && !lambdas.empty(), "sweep_grid: empty grid");
  GenFibCache& genfib =
      options.genfib_cache != nullptr ? *options.genfib_cache : GenFibCache::global();
  ScheduleCache& schedules = options.schedule_cache != nullptr
                                 ? *options.schedule_cache
                                 : ScheduleCache::global();
  const std::uint64_t n_max = *std::max_element(ns.begin(), ns.end());

  std::vector<SweepPointResult> out(ns.size() * lambdas.size());
  parallel_for(options.threads, lambdas.size(), [&](std::size_t li) {
    const Rational& lambda = lambdas[li];
    // One exhaustive-DP pass per lambda group: T[k] is the split-recursion
    // optimum for every k <= n_max, so each point below is a table read.
    std::vector<Rational> dp_table;
    double dp_table_ms = 0.0;
    if (options.with_dp) {
      const auto t0 = std::chrono::steady_clock::now();
      dp_table = optimal_broadcast_dp_table(n_max, lambda, options.time_path);
      dp_table_ms = elapsed_ms(t0);
    }
    for (std::size_t ni = 0; ni < ns.size(); ++ni) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t n = ns[ni];
      SweepPointResult r;
      r.n = n;
      r.lambda = lambda;
      r.f = genfib.f(lambda, n);
      r.greedy = optimal_broadcast_greedy(n, lambda, options.time_path);
      const PostalParams params(n, lambda);
      const std::shared_ptr<const Schedule> schedule = schedules.bcast(params);
      ValidatorOptions vopts;
      vopts.time_path = options.time_path;
      const SimReport report = validate_schedule(*schedule, params, vopts);
      r.makespan = report.makespan;
      r.sends = schedule->size();
      r.dp = options.with_dp ? dp_table[static_cast<std::size_t>(n)] : r.f;
      r.ok = report.ok && r.f == r.dp && r.f == r.greedy && r.f == r.makespan;
      r.dp_table_ms = dp_table_ms;
      r.wall_ms = elapsed_ms(t0);
      out[li * ns.size() + ni] = r;
    }
  });
  return out;
}

bool sweep_results_equal_ignoring_wall(const std::vector<SweepPointResult>& a,
                                       const std::vector<SweepPointResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SweepPointResult& x = a[i];
    const SweepPointResult& y = b[i];
    if (x.n != y.n || x.lambda != y.lambda || x.f != y.f || x.dp != y.dp ||
        x.greedy != y.greedy || x.makespan != y.makespan || x.sends != y.sends ||
        x.ok != y.ok) {
      return false;
    }
  }
  return true;
}

}  // namespace postal::par
