#include "par/thread_pool.hpp"

#include <cstdlib>

namespace postal::par {

unsigned default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned threads_from_env(unsigned fallback) noexcept {
  const char* raw = std::getenv("POSTAL_THREADS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0 || value > 1024) return fallback;
  return static_cast<unsigned>(value);
}

ThreadPool::ThreadPool(unsigned threads) : threads_(threads) {
  POSTAL_REQUIRE(threads >= 1, "ThreadPool: threads must be >= 1");
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    std::exception_ptr error;
    try {
      (*batch.fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mu_);
    if (error && (!batch.error || i < batch.error_index)) {
      batch.error = error;
      batch.error_index = i;
    }
    if (++batch.finished == batch.count) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::shared_ptr<Batch> seen;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || batch_ != seen; });
    if (stop_) return;
    seen = batch_;
    lock.unlock();
    drain(*seen);
    lock.lock();
  }
}

void ThreadPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_ == 1 || count == 1) {
    // The exact sequential code path: no pool machinery, index order.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = count;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    POSTAL_CHECK(!batch_active_);  // batches do not nest
    batch_active_ = true;
    batch_ = batch;
  }
  work_cv_.notify_all();
  drain(*batch);  // the caller is a lane too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->finished == batch->count; });
    batch_active_ = false;
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(unsigned threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(threads);
  pool.for_each(count, fn);
}

}  // namespace postal::par
