// The (n, lambda) grid sweep engine -- Theorem 6 cross-checked at every
// point, fanned across cores.
//
// Every grid point is an independent pure computation (the same
// embarrassingly-parallel shape the multihop-broadcast literature exploits
// for graph sweeps), so the engine parallelizes over *lambda groups*: one
// task per lambda builds the exhaustive-DP table T[1..max(n)] once (a
// single O(max_n^2) pass replaces one O(n^2) recomputation per point --
// the dominant cost of the historical sequential sweeps) and then walks its
// n column reading optima off the table, evaluating f_lambda(n) through the
// GenFibCache, rebuilding nothing the ScheduleCache already holds, and
// validating the BCAST schedule in the simulator.
//
// Determinism contract: results are written at grid-order indices
// (lambda-major: result[li * ns.size() + ni] is (lambdas[li], ns[ni])), so
// every field except the wall-time measurements is identical for any thread
// count, and threads == 1 executes the exact sequential code path
// (par/thread_pool.hpp). See docs/PARALLELISM.md.
#pragma once

#include <cstdint>
#include <vector>

#include "par/genfib_cache.hpp"
#include "par/schedule_cache.hpp"
#include "par/thread_pool.hpp"
#include "support/rational.hpp"
#include "support/ticks.hpp"

namespace postal::par {

/// Everything the Theorem-6 cross-check knows about one grid point.
struct SweepPointResult {
  std::uint64_t n = 0;
  Rational lambda{1};
  Rational f;         ///< f_lambda(n), the paper's closed form (GenFibCache)
  Rational dp;        ///< exhaustive split-recursion optimum (DP table)
  Rational greedy;    ///< greedy frontier-expansion optimum
  Rational makespan;  ///< validator makespan of the (cached) BCAST schedule
  std::uint64_t sends = 0;  ///< events in the BCAST schedule
  bool ok = false;    ///< schedule valid and all four quantities equal
  /// Wall time of this point's own work (greedy + schedule + validation +
  /// f lookup). Excluded from the determinism contract.
  double wall_ms = 0.0;
  /// Wall time of the lambda group's shared DP-table build (the same value
  /// is reported on every point of the group). Excluded likewise.
  double dp_table_ms = 0.0;
};

/// Sweep knobs. Defaults reproduce the full cross-check on all cores using
/// the process-wide caches.
struct SweepOptions {
  unsigned threads = default_threads();  ///< 1 = exact sequential path
  bool with_dp = true;  ///< include the O(n^2) exhaustive-DP cross-check
  GenFibCache* genfib_cache = nullptr;      ///< nullptr = GenFibCache::global()
  ScheduleCache* schedule_cache = nullptr;  ///< nullptr = ScheduleCache::global()
  /// Time representation for the DP table, greedy search, and validator
  /// (docs/PERFORMANCE.md). kAuto takes the int64 tick fast path wherever a
  /// point is exactly representable; kRational forces the reference loops.
  /// Every result field except the wall times is identical either way.
  TimePath time_path = TimePath::kAuto;
};

/// Cross-check every point of the full lambda x n grid. Throws
/// InvalidArgument on an empty grid or any invalid (n, lambda).
[[nodiscard]] std::vector<SweepPointResult> sweep_grid(
    const std::vector<std::uint64_t>& ns, const std::vector<Rational>& lambdas,
    const SweepOptions& options = {});

/// True iff every field of every point except the wall-time measurements
/// matches -- the equality the thread-count invariance tests assert.
[[nodiscard]] bool sweep_results_equal_ignoring_wall(
    const std::vector<SweepPointResult>& a, const std::vector<SweepPointResult>& b);

}  // namespace postal::par
