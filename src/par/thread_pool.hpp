// Deterministic fixed-size thread pool -- the execution substrate for the
// parallel sweep engine (par/sweep.hpp) and the bench grid fan-outs.
//
// Determinism contract (the testable heart of this subsystem):
//
//  * for_each(count, fn) calls fn(i) exactly once for every i in
//    [0, count); which lane runs which index is scheduling-dependent, but
//    map() writes result i at output index i, so the *output* is ordered by
//    index regardless of interleaving.
//  * A pool constructed with threads == 1 owns no worker threads at all:
//    for_each degenerates to a plain `for (i = 0; i < count; ++i) fn(i);`
//    on the caller. "Parallel at one thread" is therefore the exact
//    sequential code path by construction -- byte-identical output is a
//    contract, not a hope (tests/par/par_test.cpp checks it anyway).
//  * If any fn(i) throws, the exception for the *smallest* failing index is
//    rethrown from for_each/map once the batch drains, so error reporting
//    is deterministic too. The pool remains usable afterwards.
//
// A pool of `threads` lanes runs `threads - 1` background workers plus the
// calling thread, which participates in every batch (so threads == 8 means
// eight lanes busy, not nine). Work is claimed by atomic index increments
// from a shared per-batch counter: no per-item allocation, no futures, and
// coarse items (one sweep point each) keep contention negligible.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace postal::par {

/// Hardware concurrency, clamped to at least 1 (the standard allows 0).
[[nodiscard]] unsigned default_threads() noexcept;

/// Thread-count knob shared by the benches: the POSTAL_THREADS environment
/// variable when set to a positive integer, otherwise `fallback`.
[[nodiscard]] unsigned threads_from_env(unsigned fallback) noexcept;

/// Fixed-size pool of `threads` execution lanes (caller included).
class ThreadPool {
 public:
  /// Throws InvalidArgument unless threads >= 1. threads == 1 spawns no
  /// workers and runs every batch inline on the caller.
  explicit ThreadPool(unsigned threads = default_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of lanes (constructor argument).
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Run fn(i) for every i in [0, count); blocks until the batch drains.
  /// Batches do not nest: calling for_each from inside fn throws LogicError.
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Deterministic map: out[i] = fn(i). The result type must be default-
  /// constructible (results are written into a pre-sized vector).
  template <typename Fn>
  [[nodiscard]] auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<T> out(count);
    for_each(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  // One batch of work. Workers hold a shared_ptr, so a lane still draining
  // an exhausted batch can never claim indices from (or report into) a
  // newer one -- each batch has its own claim counter and its own books.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t finished = 0;        // guarded by the pool mutex
    std::exception_ptr error;        // guarded by the pool mutex
    std::size_t error_index = 0;     // guarded by the pool mutex
  };

  void worker_loop();
  void drain(Batch& batch);

  unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch (or stop) exists
  std::condition_variable done_cv_;  // caller: batch fully finished
  bool stop_ = false;
  bool batch_active_ = false;        // rejects nested for_each
  std::shared_ptr<Batch> batch_;     // guarded by mu_
};

/// One-shot conveniences: construct a transient pool, run, tear down.
void parallel_for(unsigned threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

template <typename Fn>
[[nodiscard]] auto parallel_map(unsigned threads, std::size_t count, Fn&& fn) {
  ThreadPool pool(threads);
  return pool.map(count, std::forward<Fn>(fn));
}

}  // namespace postal::par
