#include "par/genfib_cache.hpp"

#include "support/error.hpp"

namespace postal::par {

GenFibCache::GenFibCache(std::size_t shards) {
  POSTAL_REQUIRE(shards >= 1, "GenFibCache: shards must be >= 1");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<GenFibCache::Entry> GenFibCache::entry(const Rational& lambda) {
  Shard& shard = *shards_[std::hash<Rational>{}(lambda) % shards_.size()];
  const std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(lambda);
  if (it != shard.entries.end()) return it->second;
  // Constructing GenFib validates lambda >= 1 and seeds the [0, lambda)
  // prefix; it is cheap enough to do under the shard lock.
  auto fresh = std::make_shared<Entry>(lambda);
  shard.entries.emplace(lambda, fresh);
  tables_.fetch_add(1, std::memory_order_relaxed);
  return fresh;
}

Rational GenFibCache::f(const Rational& lambda, std::uint64_t n) {
  const std::shared_ptr<Entry> e = entry(lambda);
  const std::lock_guard<std::mutex> lock(e->mu);
  auto it = e->f_memo.find(n);
  if (it != e->f_memo.end()) {
    f_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  f_misses_.fetch_add(1, std::memory_order_relaxed);
  const Rational value = e->fib.f(n);
  e->f_memo.emplace(n, value);
  return value;
}

std::uint64_t GenFibCache::F(const Rational& lambda, const Rational& t) {
  const std::shared_ptr<Entry> e = entry(lambda);
  const std::lock_guard<std::mutex> lock(e->mu);
  return e->fib.F(t);
}

std::uint64_t GenFibCache::bcast_split(const Rational& lambda, std::uint64_t n) {
  const std::shared_ptr<Entry> e = entry(lambda);
  const std::lock_guard<std::mutex> lock(e->mu);
  auto it = e->split_memo.find(n);
  if (it != e->split_memo.end()) {
    split_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  split_misses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t value = e->fib.bcast_split(n);
  e->split_memo.emplace(n, value);
  return value;
}

GenFibCache::Stats GenFibCache::stats() const noexcept {
  Stats out;
  out.f_hits = f_hits_.load(std::memory_order_relaxed);
  out.f_misses = f_misses_.load(std::memory_order_relaxed);
  out.split_hits = split_hits_.load(std::memory_order_relaxed);
  out.split_misses = split_misses_.load(std::memory_order_relaxed);
  out.tables = tables_.load(std::memory_order_relaxed);
  return out;
}

void GenFibCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
  f_hits_.store(0, std::memory_order_relaxed);
  f_misses_.store(0, std::memory_order_relaxed);
  split_hits_.store(0, std::memory_order_relaxed);
  split_misses_.store(0, std::memory_order_relaxed);
  tables_.store(0, std::memory_order_relaxed);
}

GenFibCache& GenFibCache::global() {
  static GenFibCache instance;
  return instance;
}

}  // namespace postal::par
