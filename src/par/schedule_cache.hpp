// Sharded, thread-safe cache of BCAST schedules keyed by (n, exact lambda).
//
// Repeated validator and bench runs over the same MPS(n, lambda) used to
// rebuild the optimal broadcast schedule from scratch every time. The
// schedule is a pure function of (n, lambda), so the cache hands out one
// immutable, shared copy per key: callers hold a shared_ptr<const Schedule>
// and may keep it past clear() (entries are dropped from the map, never
// mutated in place).
//
// Concurrency: the key -> schedule map is sharded by key hash; schedule
// construction happens *outside* the shard lock, so a slow build never
// blocks unrelated lookups. Two threads racing on the same cold key may
// both build -- the first insert wins and both receive the same (identical)
// schedule object thereafter; determinism is unaffected because
// construction is pure.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"

#include <atomic>

namespace postal::par {

/// Process-wide (or locally owned) cache of optimal BCAST schedules.
class ScheduleCache {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit ScheduleCache(std::size_t shards = kDefaultShards);

  /// The BCAST schedule for MPS(params.n(), params.lambda()), built on
  /// first use and shared (immutable) afterwards.
  [[nodiscard]] std::shared_ptr<const Schedule> bcast(const PostalParams& params);

  struct Stats {
    std::uint64_t hits = 0;    ///< answered with an existing schedule
    std::uint64_t misses = 0;  ///< schedule built (first use or race loser)
  };
  [[nodiscard]] Stats stats() const noexcept;

  /// Drop every cached schedule and counter (outstanding shared_ptrs
  /// remain valid).
  void clear();

  /// The process-wide instance used when callers pass no cache explicitly.
  [[nodiscard]] static ScheduleCache& global();

 private:
  struct Key {
    std::uint64_t n = 0;
    Rational lambda;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      const std::size_t h1 = std::hash<std::uint64_t>{}(key.n);
      const std::size_t h2 = std::hash<Rational>{}(key.lambda);
      return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const Schedule>, KeyHash> entries;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace postal::par
