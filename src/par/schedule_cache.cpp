#include "par/schedule_cache.hpp"

#include "sched/bcast.hpp"
#include "support/error.hpp"

namespace postal::par {

ScheduleCache::ScheduleCache(std::size_t shards) {
  POSTAL_REQUIRE(shards >= 1, "ScheduleCache: shards must be >= 1");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const Schedule> ScheduleCache::bcast(const PostalParams& params) {
  const Key key{params.n(), params.lambda()};
  Shard& shard = *shards_[KeyHash{}(key) % shards_.size()];
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside the lock; ties are resolved by first insert.
  auto built = std::make_shared<const Schedule>(bcast_schedule(params));
  misses_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.entries.emplace(key, std::move(built));
  return it->second;
}

ScheduleCache::Stats ScheduleCache::stats() const noexcept {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  return out;
}

void ScheduleCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

ScheduleCache& ScheduleCache::global() {
  static ScheduleCache instance;
  return instance;
}

}  // namespace postal::par
