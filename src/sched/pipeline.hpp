// Algorithm PIPELINE (Section 4.2): broadcast m messages as a pipelined
// stream. Each processor forwards messages the instant they arrive instead
// of waiting for the whole stream (contrast with PACK).
//
// Two regimes, split at m = lambda:
//
//  * PIPELINE-1 (m <= lambda). A stream-sender finishes before its
//    recipient can start forwarding, so roles match BCAST directly under
//    the normalization t' = t/m, lambda' = lambda/m (Lemma 14):
//        T_PL1 = m * f_{lambda/m}(n) + (m - 1).
//
//  * PIPELINE-2 (m >= lambda). The recipient can start forwarding *before*
//    the sender finishes, so the responsibilities of BCAST's sender and
//    receiver swap on every edge: the physical stream-recipient plays the
//    continuing-sender role (free after lambda), and the physical sender
//    plays the receiver role (free after m). Normalization t' = t/lambda,
//    lambda' = m/lambda (Lemma 16):
//        T_PL2 = lambda * f_{m/lambda}(n) + (lambda - 1).
//
// Both preserve message order: every processor receives and forwards
// M_1, ..., M_m in sequence.
#pragma once

#include "model/genfib.hpp"
#include "model/params.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// PIPELINE-1 schedule; requires 1 <= m <= lambda. Sorted by time.
[[nodiscard]] Schedule pipeline1_schedule(const PostalParams& params, std::uint64_t m);

/// PIPELINE-2 schedule; requires m >= lambda >= 1. Sorted by time.
[[nodiscard]] Schedule pipeline2_schedule(const PostalParams& params, std::uint64_t m);

/// Dispatches to PIPELINE-1 when m <= lambda, otherwise PIPELINE-2.
[[nodiscard]] Schedule pipeline_schedule(const PostalParams& params, std::uint64_t m);

/// Lemma 14's exact running time (0 for n == 1); requires m <= lambda.
[[nodiscard]] Rational predict_pipeline1(const Rational& lambda, std::uint64_t n,
                                         std::uint64_t m);

/// Lemma 16's exact running time (0 for n == 1); requires m >= lambda.
[[nodiscard]] Rational predict_pipeline2(const Rational& lambda, std::uint64_t n,
                                         std::uint64_t m);

/// The better-applicable regime's prediction.
[[nodiscard]] Rational predict_pipeline(const Rational& lambda, std::uint64_t n,
                                        std::uint64_t m);

}  // namespace postal
