#include "sched/scatter_allgather.hpp"

namespace postal {

ProcId scatter_allgather_owner(const PostalParams& params, MsgId j) {
  return static_cast<ProcId>(j % params.n());
}

Schedule scatter_allgather_schedule(const PostalParams& params, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "scatter_allgather_schedule: m must be >= 1");
  const std::uint64_t n = params.n();
  Schedule schedule;
  if (n == 1) return schedule;

  // Phase 1: scatter every message to its owner (root-owned ones stay).
  std::uint64_t scatter_sends = 0;
  for (std::uint64_t j = 0; j < m; ++j) {
    const ProcId owner = scatter_allgather_owner(params, static_cast<MsgId>(j));
    if (owner == 0) continue;
    schedule.add(0, owner, static_cast<MsgId>(j),
                 Rational(static_cast<std::int64_t>(scatter_sends)));
    ++scatter_sends;
  }
  // Everything scattered has arrived by this time; the rotation may start.
  const Rational phase2_start =
      scatter_sends == 0
          ? Rational(0)
          : Rational(static_cast<std::int64_t>(scatter_sends) - 1) + params.lambda();

  // Phase 2: rotated allgather of the shares. Super-round c moves every
  // processor's c-th owned message; rotation slot k targets p + 1 + k.
  const std::uint64_t rounds = (m + n - 1) / n;
  for (std::uint64_t c = 0; c < rounds; ++c) {
    for (std::uint64_t p = 0; p < n; ++p) {
      const std::uint64_t j = p + c * n;  // p's c-th owned message
      if (j >= m) continue;
      for (std::uint64_t k = 0; k + 1 < n; ++k) {
        const auto dst = static_cast<ProcId>((p + 1 + k) % n);
        const Rational t = phase2_start +
                           Rational(static_cast<std::int64_t>(c * (n - 1) + k));
        schedule.add(static_cast<ProcId>(p), dst, static_cast<MsgId>(j), t);
      }
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_scatter_allgather(const PostalParams& params, std::uint64_t m) {
  return scatter_allgather_schedule(params, m).makespan(params.lambda());
}

}  // namespace postal
