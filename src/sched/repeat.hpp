// Algorithm REPEAT (Section 4.2): broadcast m messages by m overlapped
// iterations of Algorithm BCAST.
//
// Processor p_0 starts iteration i+1 immediately after sending the last
// copy of message M_i, which happens lambda - 1 time units before iteration
// i terminates; the latency guarantees every M_{i+1} arrives only after
// iteration i is complete, so the iterations never collide (Lemma 10).
//
// Exact running time (Lemma 10):
//   T_R(n, m, lambda) = m * f_lambda(n) - (m-1)(lambda-1).
#pragma once

#include "model/genfib.hpp"
#include "model/params.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// Generate the REPEAT schedule for broadcasting messages 0..m-1 from p_0.
/// Requires m >= 1. Sorted by time.
[[nodiscard]] Schedule repeat_schedule(const PostalParams& params, std::uint64_t m);

/// Lemma 10's exact running time; requires n >= 2 (for n == 1 the time is 0).
[[nodiscard]] Rational predict_repeat(GenFib& fib, std::uint64_t n, std::uint64_t m);

}  // namespace postal
