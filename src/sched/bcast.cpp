#include "sched/bcast.hpp"

#include "support/ticks.hpp"

namespace postal {

namespace {

// bcast_emit on int64 ticks (docs/PERFORMANCE.md): identical recursion,
// identical fib.bcast_split choices (those are pure integer arithmetic),
// only the send times are carried as ticks and converted exactly when the
// event is recorded. Every time is a multiple of 1/q bounded by
// f_lambda(n) <= n * lambda, so the admission bound in bcast_schedule
// makes the raw adds overflow-free.
void bcast_emit_ticks(Schedule& schedule, GenFib& fib, const TickDomain& dom,
                      Tick lambda_ticks, ProcId base, std::uint64_t count,
                      Tick start, MsgId msg) {
  const Tick one = dom.q();
  ProcId holder = base;
  std::uint64_t remaining = count;
  Tick now = start;
  while (remaining >= 2) {
    const std::uint64_t j = fib.bcast_split(remaining);
    POSTAL_CHECK(j >= 1 && j <= remaining - 1);
    const ProcId recipient = holder + static_cast<ProcId>(j);
    schedule.add(holder, recipient, msg, dom.to_rational(now));
    const Tick recipient_start = now + lambda_ticks;
    const std::uint64_t recipient_count = remaining - j;
    if (recipient_count >= 2) {
      bcast_emit_ticks(schedule, fib, dom, lambda_ticks, recipient,
                       recipient_count, recipient_start, msg);
    }
    now += one;
    remaining = j;
  }
}

}  // namespace

void bcast_emit(Schedule& schedule, GenFib& fib, ProcId base, std::uint64_t count,
                const Rational& start, MsgId msg) {
  // Iterative form of the paper's recursion: the holder keeps sending into
  // its shrinking range every unit of time; each recipient's sub-broadcast
  // is recursed explicitly.
  ProcId holder = base;
  std::uint64_t remaining = count;
  Rational now = start;
  while (remaining >= 2) {
    const std::uint64_t j = fib.bcast_split(remaining);
    POSTAL_CHECK(j >= 1 && j <= remaining - 1);
    // The holder keeps the first j processors [holder, holder+j) and hands
    // the trailing n'-j processors [holder+j, holder+n') to the recipient.
    const ProcId recipient = holder + static_cast<ProcId>(j);
    schedule.add(holder, recipient, msg, now);
    // Recurse for the recipient: it receives at now + lambda and then runs
    // BCAST on its own sub-range.
    const Rational recipient_start = now + fib.lambda();
    const std::uint64_t recipient_count = remaining - j;
    if (recipient_count >= 2) {
      bcast_emit(schedule, fib, recipient, recipient_count, recipient_start, msg);
    }
    // The holder continues one unit later on its own sub-range of size j.
    now += Rational(1);
    remaining = j;
  }
}

Schedule bcast_schedule(const PostalParams& params, GenFib& fib) {
  POSTAL_REQUIRE(fib.lambda() == params.lambda(),
                 "bcast_schedule: GenFib lambda differs from params lambda");
  Schedule schedule;
  // Tick fast path: all emit times are multiples of 1/q bounded by
  // f_lambda(n) <= n * lambda, so (n + 2) * (lambda_ticks + q) far inside
  // int64 admits raw tick arithmetic. Otherwise (huge n * lambda, or a
  // lambda whose tick count overflows) the Rational reference emit runs;
  // both produce the identical schedule (differential-tested).
  const Rational& lambda = params.lambda();
  const TickDomain dom(lambda.den());
  const std::optional<Tick> lambda_ticks = dom.to_ticks(lambda);
  __extension__ using int128 = __int128;
  const bool ticks_ok =
      lambda_ticks.has_value() &&
      (static_cast<int128>(params.n()) + 2) *
              (static_cast<int128>(*lambda_ticks) + dom.q()) <
          (int128{1} << 62);
  if (ticks_ok) {
    bcast_emit_ticks(schedule, fib, dom, *lambda_ticks, /*base=*/0, params.n(),
                     /*start=*/0, /*msg=*/0);
  } else {
    bcast_emit(schedule, fib, /*base=*/0, params.n(), Rational(0), /*msg=*/0);
  }
  schedule.sort();
  return schedule;
}

Schedule bcast_schedule(const PostalParams& params) {
  GenFib fib(params.lambda());
  return bcast_schedule(params, fib);
}

Rational predict_bcast(GenFib& fib, std::uint64_t n) { return fib.f(n); }

}  // namespace postal
