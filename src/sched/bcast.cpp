#include "sched/bcast.hpp"

namespace postal {

void bcast_emit(Schedule& schedule, GenFib& fib, ProcId base, std::uint64_t count,
                const Rational& start, MsgId msg) {
  // Iterative form of the paper's recursion: the holder keeps sending into
  // its shrinking range every unit of time; each recipient's sub-broadcast
  // is recursed explicitly.
  ProcId holder = base;
  std::uint64_t remaining = count;
  Rational now = start;
  while (remaining >= 2) {
    const std::uint64_t j = fib.bcast_split(remaining);
    POSTAL_CHECK(j >= 1 && j <= remaining - 1);
    // The holder keeps the first j processors [holder, holder+j) and hands
    // the trailing n'-j processors [holder+j, holder+n') to the recipient.
    const ProcId recipient = holder + static_cast<ProcId>(j);
    schedule.add(holder, recipient, msg, now);
    // Recurse for the recipient: it receives at now + lambda and then runs
    // BCAST on its own sub-range.
    const Rational recipient_start = now + fib.lambda();
    const std::uint64_t recipient_count = remaining - j;
    if (recipient_count >= 2) {
      bcast_emit(schedule, fib, recipient, recipient_count, recipient_start, msg);
    }
    // The holder continues one unit later on its own sub-range of size j.
    now += Rational(1);
    remaining = j;
  }
}

Schedule bcast_schedule(const PostalParams& params, GenFib& fib) {
  POSTAL_REQUIRE(fib.lambda() == params.lambda(),
                 "bcast_schedule: GenFib lambda differs from params lambda");
  Schedule schedule;
  bcast_emit(schedule, fib, /*base=*/0, params.n(), Rational(0), /*msg=*/0);
  schedule.sort();
  return schedule;
}

Schedule bcast_schedule(const PostalParams& params) {
  GenFib fib(params.lambda());
  return bcast_schedule(params, fib);
}

Rational predict_bcast(GenFib& fib, std::uint64_t n) { return fib.f(n); }

}  // namespace postal
