#include "sched/gantt.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace postal {

namespace {

/// Common denominator of every event time and lambda.
std::int64_t common_grid(const Schedule& schedule, const Rational& lambda) {
  std::int64_t q = lambda.den();
  for (const SendEvent& e : schedule.events()) {
    q = std::lcm(q, e.t.den());
    POSTAL_REQUIRE(q < (1LL << 24), "render_gantt: schedule grid too fine to render");
  }
  return q;
}

void paint(std::string& row, std::int64_t from_cell, std::int64_t cells, char mark) {
  for (std::int64_t c = from_cell; c < from_cell + cells; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    if (idx >= row.size()) return;
    row[idx] = (row[idx] == '.') ? mark : '#';
  }
}

}  // namespace

std::string render_gantt(const Schedule& schedule, const PostalParams& params,
                         const GanttOptions& options) {
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  std::ostringstream out;
  if (schedule.empty()) {
    out << "(empty schedule)\n";
    return out.str();
  }

  const std::int64_t q = common_grid(schedule, lambda);
  const Rational horizon = schedule.makespan(lambda);
  const auto total_cells = static_cast<std::size_t>((horizon * Rational(q)).ceil());
  const std::size_t cells = std::min(total_cells, options.max_columns);
  const bool truncated = cells < total_cells;

  std::vector<std::string> snd(n, std::string(cells, '.'));
  std::vector<std::string> rcv(n, std::string(cells, '.'));
  for (const SendEvent& e : schedule.events()) {
    POSTAL_REQUIRE(e.src < n && e.dst < n, "render_gantt: processor out of range");
    const char mark_s = options.show_message_ids
                            ? static_cast<char>('0' + e.msg % 10)
                            : 'S';
    const char mark_r = options.show_message_ids
                            ? static_cast<char>('0' + e.msg % 10)
                            : 'R';
    const std::int64_t send_cell = (e.t * Rational(q)).floor();
    paint(snd[e.src], send_cell, q, mark_s);
    const std::int64_t recv_cell = ((e.t + lambda - Rational(1)) * Rational(q)).floor();
    paint(rcv[e.dst], recv_cell, q, mark_r);
  }

  out << "time grid: 1 column = 1/" << q << " unit; horizon t = " << horizon;
  if (truncated) out << " (truncated to " << cells << " columns)";
  out << "\n";
  for (ProcId p = 0; p < n; ++p) {
    out << "p" << p << (p < 10 ? "  " : " ") << "snd |" << snd[p] << "|\n";
    out << "    " << "rcv |" << rcv[p] << "|\n";
  }
  return out.str();
}

}  // namespace postal
