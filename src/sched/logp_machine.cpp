#include "sched/logp_machine.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "sched/bcast.hpp"
#include "support/interval_set.hpp"

namespace postal {

LogPReport validate_logp_schedule(const Schedule& schedule, const LogPParams& params) {
  params.validate();
  const std::uint64_t n = params.P;
  const Rational gap = params.effective_gap();
  const Rational usable_after = Rational(2) * params.o + params.L;

  LogPReport report;
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  // Spacing constraints are interval-exclusivity over windows of length
  // max(o, g): two submissions (or absorptions) closer than that overlap.
  std::vector<IntervalSet> submit_port(n);
  std::vector<IntervalSet> absorb_port(n);
  std::vector<std::optional<Rational>> usable(n);
  usable[0] = Rational(0);

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    const auto& held = usable[e.src];
    if (!held.has_value() || e.t < *held) {
      violate(who.str() + "submitting a message that is not yet usable");
    }
    if (submit_port[e.src].insert(e.t, e.t + gap)) {
      violate(who.str() + "submissions closer than max(o, g)");
    }
    const Rational usable_at = e.t + usable_after;
    if (absorb_port[e.dst].insert(usable_at - gap, usable_at)) {
      violate(who.str() + "absorptions closer than max(o, g)");
    }
    auto& dst = usable[e.dst];
    if (!dst.has_value() || usable_at < *dst) dst = usable_at;
    report.completion = rmax(report.completion, usable_at);
  }
  for (ProcId p = 0; p < n; ++p) {
    if (!usable[p].has_value()) {
      violate("p" + std::to_string(p) + " never informed");
    }
  }
  report.ok = report.violations.empty();
  return report;
}

Schedule logp_bcast_schedule(const LogPParams& params) {
  params.validate();
  const Rational gap = params.effective_gap();
  GenFib fib(params.postal_lambda());
  Schedule postal;
  bcast_emit(postal, fib, /*base=*/0, params.P, Rational(0), /*msg=*/0);
  Schedule schedule;
  for (const SendEvent& e : postal.events()) {
    schedule.add(e.src, e.dst, e.msg, e.t * gap);
  }
  schedule.sort();
  return schedule;
}

}  // namespace postal
