#include "sched/broadcast_tree.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "sched/bcast.hpp"
#include "support/error.hpp"

namespace postal {

BroadcastTree::BroadcastTree(ProcId root, std::vector<std::vector<ProcId>> children)
    : root_(root), children_(std::move(children)) {
  validate();
}

void BroadcastTree::validate() {
  const std::uint64_t n = children_.size();
  POSTAL_REQUIRE(n >= 1, "BroadcastTree: need at least one node");
  POSTAL_REQUIRE(root_ < n, "BroadcastTree: root out of range");
  parent_.assign(n, root_);
  std::vector<bool> seen(n, false);
  seen[root_] = true;
  std::uint64_t reached = 1;
  // Iterative DFS from the root; every node must be reached exactly once.
  std::vector<ProcId> stack{root_};
  while (!stack.empty()) {
    const ProcId p = stack.back();
    stack.pop_back();
    for (const ProcId c : children_[p]) {
      POSTAL_REQUIRE(c < n, "BroadcastTree: child id out of range");
      POSTAL_REQUIRE(!seen[c], "BroadcastTree: node informed twice (not a tree)");
      seen[c] = true;
      parent_[c] = p;
      ++reached;
      stack.push_back(c);
    }
  }
  POSTAL_REQUIRE(reached == n, "BroadcastTree: not all processors are reached");
}

BroadcastTree BroadcastTree::fibonacci(std::uint64_t n, const Rational& lambda) {
  const PostalParams params(n, lambda);
  return from_schedule(bcast_schedule(params), n, /*root=*/0);
}

BroadcastTree BroadcastTree::binomial(std::uint64_t n) {
  return fibonacci(n, Rational(1));
}

BroadcastTree BroadcastTree::dary(std::uint64_t n, std::uint64_t d) {
  POSTAL_REQUIRE(n >= 1, "BroadcastTree::dary: n must be >= 1");
  if (n >= 2) {
    POSTAL_REQUIRE(d >= 1 && d <= n - 1, "BroadcastTree::dary: d must lie in [1, n-1]");
  }
  std::vector<std::vector<ProcId>> children(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t c = d * i + 1; c <= d * i + d && c < n; ++c) {
      children[i].push_back(static_cast<ProcId>(c));
    }
  }
  return BroadcastTree(0, std::move(children));
}

BroadcastTree BroadcastTree::leveled(std::uint64_t n,
                                     const std::vector<std::uint64_t>& degrees) {
  POSTAL_REQUIRE(n >= 1, "BroadcastTree::leveled: n must be >= 1");
  POSTAL_REQUIRE(!degrees.empty(), "BroadcastTree::leveled: need at least one degree");
  for (const std::uint64_t d : degrees) {
    POSTAL_REQUIRE(d >= 1, "BroadcastTree::leveled: degrees must be >= 1");
  }
  std::vector<std::vector<ProcId>> children(n);
  // BFS fill: frontier of (node, depth); next id handed out left to right.
  std::vector<std::pair<ProcId, std::uint32_t>> frontier{{0, 0}};
  std::size_t head = 0;
  std::uint64_t next_id = 1;
  while (next_id < n) {
    POSTAL_CHECK(head < frontier.size());
    const auto [node, depth] = frontier[head++];
    const std::uint64_t d =
        degrees[std::min<std::size_t>(depth, degrees.size() - 1)];
    for (std::uint64_t c = 0; c < d && next_id < n; ++c) {
      children[node].push_back(static_cast<ProcId>(next_id));
      frontier.emplace_back(static_cast<ProcId>(next_id), depth + 1);
      ++next_id;
    }
  }
  return BroadcastTree(0, std::move(children));
}

BroadcastTree BroadcastTree::from_schedule(const Schedule& schedule, std::uint64_t n,
                                           ProcId root) {
  POSTAL_REQUIRE(schedule.message_count() <= 1,
                 "BroadcastTree::from_schedule: schedule carries multiple messages");
  std::vector<std::vector<std::pair<Rational, ProcId>>> timed(n);
  std::vector<bool> received(n, false);
  for (const SendEvent& e : schedule.events()) {
    POSTAL_REQUIRE(e.src < n && e.dst < n,
                   "BroadcastTree::from_schedule: processor id out of range");
    POSTAL_REQUIRE(!received[e.dst],
                   "BroadcastTree::from_schedule: processor receives twice");
    received[e.dst] = true;
    timed[e.src].emplace_back(e.t, e.dst);
  }
  POSTAL_REQUIRE(!received[root],
                 "BroadcastTree::from_schedule: root receives the message");
  std::vector<std::vector<ProcId>> children(n);
  for (std::uint64_t p = 0; p < n; ++p) {
    std::sort(timed[p].begin(), timed[p].end());
    for (const auto& [t, dst] : timed[p]) children[p].push_back(dst);
  }
  return BroadcastTree(root, std::move(children));
}

const std::vector<ProcId>& BroadcastTree::children(ProcId p) const {
  POSTAL_REQUIRE(p < n(), "BroadcastTree::children: id out of range");
  return children_[p];
}

ProcId BroadcastTree::parent(ProcId p) const {
  POSTAL_REQUIRE(p < n(), "BroadcastTree::parent: id out of range");
  return parent_[p];
}

std::vector<std::uint32_t> BroadcastTree::depths() const {
  std::vector<std::uint32_t> depth(n(), 0);
  std::vector<ProcId> stack{root_};
  while (!stack.empty()) {
    const ProcId p = stack.back();
    stack.pop_back();
    for (const ProcId c : children_[p]) {
      depth[c] = depth[p] + 1;
      stack.push_back(c);
    }
  }
  return depth;
}

std::uint64_t BroadcastTree::max_degree() const {
  std::uint64_t best = 0;
  for (const auto& kids : children_) best = std::max<std::uint64_t>(best, kids.size());
  return best;
}

std::vector<std::uint64_t> BroadcastTree::depth_histogram() const {
  const std::vector<std::uint32_t> depth = depths();
  const std::uint32_t deepest = *std::max_element(depth.begin(), depth.end());
  std::vector<std::uint64_t> histogram(deepest + 1, 0);
  for (const std::uint32_t d : depth) ++histogram[d];
  return histogram;
}

std::vector<std::uint64_t> BroadcastTree::degree_histogram() const {
  std::vector<std::uint64_t> histogram(max_degree() + 1, 0);
  for (const auto& kids : children_) ++histogram[kids.size()];
  return histogram;
}

Schedule BroadcastTree::greedy_schedule(const Rational& lambda) const {
  POSTAL_REQUIRE(lambda >= Rational(1), "BroadcastTree::greedy_schedule: lambda >= 1");
  Schedule schedule;
  // BFS-free recursion on inform times: node informed at time r sends to
  // children at r, r+1, r+2, ...
  std::vector<std::pair<ProcId, Rational>> stack{{root_, Rational(0)}};
  while (!stack.empty()) {
    auto [p, informed] = stack.back();
    stack.pop_back();
    Rational t = informed;
    for (const ProcId c : children_[p]) {
      schedule.add(p, c, /*msg=*/0, t);
      stack.emplace_back(c, t + lambda);
      t += Rational(1);
    }
  }
  schedule.sort();
  return schedule;
}

std::vector<Rational> BroadcastTree::inform_times(const Rational& lambda) const {
  std::vector<Rational> informed(n(), Rational(0));
  std::vector<std::pair<ProcId, Rational>> stack{{root_, Rational(0)}};
  while (!stack.empty()) {
    auto [p, r] = stack.back();
    stack.pop_back();
    informed[p] = r;
    Rational t = r;
    for (const ProcId c : children_[p]) {
      stack.emplace_back(c, t + lambda);
      t += Rational(1);
    }
  }
  return informed;
}

Rational BroadcastTree::completion_time(const Rational& lambda) const {
  Rational latest(0);
  for (const Rational& r : inform_times(lambda)) latest = rmax(latest, r);
  return latest;
}

std::string BroadcastTree::render(const Rational& lambda) const {
  const std::vector<Rational> informed = inform_times(lambda);
  std::ostringstream out;
  std::function<void(ProcId, std::string, bool)> walk =
      [&](ProcId p, const std::string& prefix, bool last) {
        out << prefix;
        if (p != root_) out << (last ? "`-- " : "|-- ");
        out << "p" << p << "  (t=" << informed[p] << ")\n";
        const std::string next_prefix =
            (p == root_) ? prefix : prefix + (last ? "    " : "|   ");
        const auto& kids = children_[p];
        for (std::size_t i = 0; i < kids.size(); ++i) {
          walk(kids[i], next_prefix, i + 1 == kids.size());
        }
      };
  walk(root_, "", true);
  return out.str();
}

}  // namespace postal
