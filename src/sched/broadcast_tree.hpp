// Rooted ordered broadcast trees.
//
// A broadcast tree records *who informs whom* and in what order. The
// library uses trees in three roles:
//  * analysis/rendering of BCAST's generalized Fibonacci tree (Figure 1);
//  * the lambda-oblivious binomial-tree baseline (telephone-model optimal);
//  * the left-to-right almost-full degree-d trees of Algorithm DTREE.
//
// `greedy_schedule` turns any tree into a single-message schedule under a
// given latency: each informed node sends to its children in order, one
// send per time unit, starting the instant it is informed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// A rooted tree over processors 0..n-1 with ordered children.
class BroadcastTree {
 public:
  /// Builds a tree from explicit ordered child lists. `children[p]` are the
  /// processors p informs, in sending order. Throws InvalidArgument unless
  /// the structure is a tree spanning 0..n-1 rooted at `root`.
  BroadcastTree(ProcId root, std::vector<std::vector<ProcId>> children);

  /// The generalized Fibonacci tree of Algorithm BCAST for MPS(n, lambda):
  /// derived from the schedule bcast_schedule produces.
  [[nodiscard]] static BroadcastTree fibonacci(std::uint64_t n, const Rational& lambda);

  /// The binomial tree (telephone-model optimal; equals fibonacci at
  /// lambda = 1). The lambda-oblivious baseline of the benches.
  [[nodiscard]] static BroadcastTree binomial(std::uint64_t n);

  /// The left-to-right, almost-full, degree-d tree of Algorithm DTREE:
  /// node i's children are d*i+1 .. min(d*i+d, n-1) in left-to-right order.
  /// Requires 1 <= d <= n-1 for n >= 2 (any d accepted for n == 1).
  [[nodiscard]] static BroadcastTree dary(std::uint64_t n, std::uint64_t d);

  /// A leveled tree: nodes at depth L have degrees[min(L, degrees.size()-1)]
  /// children, filled left to right in BFS order until n nodes exist -- the
  /// per-range degree freedom MacKenzie's analysis [13] exploits. Ids are
  /// assigned in BFS order. Requires every degree >= 1 for n >= 2.
  [[nodiscard]] static BroadcastTree leveled(std::uint64_t n,
                                             const std::vector<std::uint64_t>& degrees);

  /// Reconstruct the tree a single-message schedule induces (each processor
  /// other than the root must receive exactly once; children are ordered by
  /// send time). Throws InvalidArgument if the schedule is not a broadcast
  /// of one message over n processors rooted at `root`.
  [[nodiscard]] static BroadcastTree from_schedule(const Schedule& schedule,
                                                   std::uint64_t n, ProcId root = 0);

  [[nodiscard]] std::uint64_t n() const noexcept { return children_.size(); }
  [[nodiscard]] ProcId root() const noexcept { return root_; }
  [[nodiscard]] const std::vector<ProcId>& children(ProcId p) const;
  /// Parent of p; the root's parent is itself.
  [[nodiscard]] ProcId parent(ProcId p) const;

  /// Depth in edges of each node (root = 0).
  [[nodiscard]] std::vector<std::uint32_t> depths() const;
  /// Maximum node out-degree.
  [[nodiscard]] std::uint64_t max_degree() const;
  /// Node count per depth (index = depth). At lambda = 1 the generalized
  /// Fibonacci tree is the binomial tree, whose histogram is the binomial
  /// coefficients -- a shape test the suite exploits.
  [[nodiscard]] std::vector<std::uint64_t> depth_histogram() const;
  /// Out-degree count per degree value (index = degree).
  [[nodiscard]] std::vector<std::uint64_t> degree_histogram() const;

  /// The single-message schedule of sending greedily down this tree: every
  /// node, once informed (root at t = 0, others at their receive time),
  /// sends to its children in order at one send per unit of time.
  [[nodiscard]] Schedule greedy_schedule(const Rational& lambda) const;

  /// Time at which each processor is informed under greedy_schedule
  /// (root = 0; others = send start + lambda).
  [[nodiscard]] std::vector<Rational> inform_times(const Rational& lambda) const;

  /// Completion time of greedy_schedule: max inform time.
  [[nodiscard]] Rational completion_time(const Rational& lambda) const;

  /// Multi-line ASCII rendering with per-node inform times (used to
  /// reproduce Figure 1).
  [[nodiscard]] std::string render(const Rational& lambda) const;

 private:
  void validate();

  ProcId root_ = 0;
  std::vector<std::vector<ProcId>> children_;
  std::vector<ProcId> parent_;
};

}  // namespace postal
