// Algorithm BCAST (Section 3): the optimal single-message broadcast.
//
// Processor p_0 holds message M at t = 0 and must broadcast it to
// p_0 .. p_{n-1}. At each step the current holder of a range of size
// n' >= 2 computes j = F_lambda(f_lambda(n') - 1), sends M to the processor
// j positions into its range, then recurses on its own sub-range of size j
// one time unit later, while the recipient recurses on the remaining
// sub-range of size n' - j upon receipt (lambda time units later).
//
// Theorem 6: the resulting schedule completes in exactly f_lambda(n) time,
// and no algorithm can do better.
#pragma once

#include "model/genfib.hpp"
#include "model/params.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// Generate the BCAST schedule for broadcasting one message (id 0) from
/// p_0 in MPS(n, lambda). `fib` must have been constructed with the same
/// lambda. The returned schedule is sorted by time.
[[nodiscard]] Schedule bcast_schedule(const PostalParams& params, GenFib& fib);

/// Convenience overload constructing its own GenFib.
[[nodiscard]] Schedule bcast_schedule(const PostalParams& params);

/// The exact running time of BCAST: T_B(n, lambda) = f_lambda(n)
/// (Theorem 6). Equals 0 for n == 1.
[[nodiscard]] Rational predict_bcast(GenFib& fib, std::uint64_t n);

/// Internal building block shared with the multi-message generators:
/// emit BCAST send events for the contiguous range [base, base+count) with
/// the range's first processor holding the message and free to send from
/// `start`. Message id is `msg`.
void bcast_emit(Schedule& schedule, GenFib& fib, ProcId base, std::uint64_t count,
                const Rational& start, MsgId msg);

}  // namespace postal
