// ASCII Gantt rendering of postal schedules: one row per processor, time
// flowing right, showing exactly when each send ('S') and receive ('R')
// window occupies each port. Invaluable when debugging why a schedule
// violates port exclusivity -- overlaps show up as '#'.
//
// Time is discretized to the schedule's exact grid (the lcm of all event
// denominators and lambda's), so nothing is lost to rounding; each output
// column is one grid cell.
//
// This is the terminal-friendly sibling of the Chrome trace_event exporter
// (obs/trace_export.hpp): the same send/receive windows, rendered as text
// here and as an interactive timeline there. See docs/OBSERVABILITY.md.
#pragma once

#include <string>

#include "model/params.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// Rendering options.
struct GanttOptions {
  std::size_t max_columns = 160;  ///< truncate wider charts (with a note)
  bool show_message_ids = false;  ///< digits instead of S/R (msg id mod 10)
};

/// Render `schedule` under latency `lambda` as an ASCII chart. Each
/// processor gets two rows (snd / rcv); overlapping occupancy renders '#'.
[[nodiscard]] std::string render_gantt(const Schedule& schedule,
                                       const PostalParams& params,
                                       const GanttOptions& options = {});

}  // namespace postal
