// A full LogP machine: schedule construction and validation under the
// four-parameter model (L, o, g, P), not just the lambda mapping of
// model/logp.hpp.
//
// Semantics per message (Karp et al.):
//   * the sender spends o CPU time submitting, during [t, t+o);
//   * consecutive submissions at one processor start >= max(o, g) apart
//     (o because the CPU is serial, g because of interface bandwidth);
//     likewise consecutive absorptions at one processor;
//   * the message flies for L and is absorbed for o: it is usable at
//     t + 2o + L, with the absorption occupying [t + o + L, t + 2o + L).
//
// The paper notes LogP "bears some similarities" to the postal model; the
// precise constructive statement, checked end to end by the tests: a LogP
// machine is a postal system with time unit G = max(o, g) and
// lambda = (L + 2o)/G, and the generalized Fibonacci tree at that lambda
// (submissions spaced G) is the optimal LogP broadcast.
#pragma once

#include <string>
#include <vector>

#include "model/logp.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// Result of validating a schedule under the full LogP rules.
struct LogPReport {
  bool ok = false;
  std::vector<std::string> violations;
  Rational completion;  ///< latest time a message becomes usable
};

/// Validate a single-message broadcast schedule (send submission times in
/// LogP time units, origin p_0) against every LogP rule: per-processor
/// submission spacing >= max(o, g), per-processor absorption spacing
/// >= max(o, g), causality (submit only what is already usable), and
/// coverage of all P processors.
[[nodiscard]] LogPReport validate_logp_schedule(const Schedule& schedule,
                                                const LogPParams& params);

/// The optimal LogP single-message broadcast schedule: the generalized
/// Fibonacci tree at lambda = (L + 2o)/max(o, g), submissions spaced
/// max(o, g). Its completion equals logp_broadcast_time(params) exactly.
[[nodiscard]] Schedule logp_bcast_schedule(const LogPParams& params);

}  // namespace postal
