// Schedule intermediate representation.
//
// Every broadcasting algorithm in this library is represented as a
// *schedule*: the set of atomic send events it performs. A schedule is the
// common currency between the algorithm generators (src/sched), the
// postal-model validator/simulator (src/sim), and the benches. The
// simulator, not the generator, is the authority on whether a schedule is
// legal in MPS(n, lambda) and on its makespan.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "model/params.hpp"
#include "support/rational.hpp"

namespace postal {

/// One atomic send: processor `src` starts transmitting message `msg` to
/// processor `dst` at time `t` (occupying src's output port on [t, t+1) and
/// dst's input port on [t+lambda-1, t+lambda)).
struct SendEvent {
  ProcId src = 0;
  ProcId dst = 0;
  MsgId msg = 0;
  Rational t;

  friend bool operator==(const SendEvent&, const SendEvent&) = default;
};

std::ostream& operator<<(std::ostream& os, const SendEvent& e);

/// An ordered collection of send events plus bookkeeping helpers.
class Schedule {
 public:
  Schedule() = default;

  /// Append one send event.
  void add(ProcId src, ProcId dst, MsgId msg, Rational t);
  void add(SendEvent event);

  /// Append every event of `other`, shifted forward by `dt` and with
  /// message ids offset by `msg_offset`. Used by REPEAT's iteration overlap.
  void append_shifted(const Schedule& other, const Rational& dt, MsgId msg_offset);

  /// Stable-sort events by (t, src, dst, msg) for deterministic output.
  void sort();

  [[nodiscard]] const std::vector<SendEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Latest send start, or 0 for an empty schedule.
  [[nodiscard]] Rational last_send_start() const;

  /// Latest arrival time (last send start + lambda), or 0 if empty. This is
  /// the running time T of the algorithm *if* the schedule's last event is
  /// on the critical path; the simulator computes the authoritative value.
  [[nodiscard]] Rational makespan(const Rational& lambda) const;

  /// Number of sends performed by each processor (index = ProcId), sized n.
  [[nodiscard]] std::vector<std::uint64_t> sends_per_proc(std::uint64_t n) const;

  /// Number of distinct message ids referenced (max id + 1), 0 if empty.
  [[nodiscard]] std::uint32_t message_count() const;

 private:
  std::vector<SendEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const Schedule& s);

}  // namespace postal
