#include "sched/dtree.hpp"

#include <algorithm>

namespace postal {

Schedule dtree_schedule(const PostalParams& params, std::uint64_t m, std::uint64_t d) {
  POSTAL_REQUIRE(m >= 1, "dtree_schedule: m must be >= 1");
  const std::uint64_t n = params.n();
  Schedule schedule;
  if (n == 1) return schedule;
  const BroadcastTree tree = BroadcastTree::dary(n, d);

  // recv[p][i] = time processor p has fully received message i. The dary
  // tree numbers nodes in BFS order (children of i are d*i+1 ..), so a
  // single forward pass over processor ids sees every parent before its
  // children.
  std::vector<std::vector<Rational>> recv(n, std::vector<Rational>(m, Rational(0)));
  for (ProcId p = 0; p < n; ++p) {
    const auto& kids = tree.children(p);
    if (kids.empty()) continue;
    Rational send_ready(0);
    for (std::uint64_t i = 0; i < m; ++i) {
      for (const ProcId c : kids) {
        // Event-driven rule: relay message i as soon as both the output
        // port is free and the message is in hand.
        const Rational t = rmax(send_ready, recv[p][i]);
        schedule.add(p, c, static_cast<MsgId>(i), t);
        recv[c][i] = t + params.lambda();
        send_ready = t + Rational(1);
      }
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_dtree(const PostalParams& params, std::uint64_t m, std::uint64_t d) {
  return dtree_schedule(params, m, d).makespan(params.lambda());
}

std::uint64_t dtree_recommended_degree(const PostalParams& params) {
  const std::uint64_t n = params.n();
  if (n <= 2) return 1;
  const auto d = static_cast<std::uint64_t>(params.lambda().ceil()) + 1;
  return std::min<std::uint64_t>(d, n - 1);
}

Schedule tree_multicast_schedule(const PostalParams& params, std::uint64_t m,
                                 const BroadcastTree& tree) {
  POSTAL_REQUIRE(m >= 1, "tree_multicast_schedule: m must be >= 1");
  POSTAL_REQUIRE(tree.n() == params.n(),
                 "tree_multicast_schedule: tree size differs from n");
  POSTAL_REQUIRE(tree.root() == 0, "tree_multicast_schedule: root must be p0");
  const std::uint64_t n = params.n();
  Schedule schedule;
  if (n == 1) return schedule;
  // Same event-driven rule as dtree_schedule; ids in BFS order guarantee a
  // parent's receive times are final before its children are visited.
  std::vector<std::vector<Rational>> recv(n, std::vector<Rational>(m, Rational(0)));
  for (ProcId p = 0; p < n; ++p) {
    const auto& kids = tree.children(p);
    if (kids.empty()) continue;
    Rational send_ready(0);
    for (std::uint64_t i = 0; i < m; ++i) {
      for (const ProcId c : kids) {
        POSTAL_REQUIRE(c > p, "tree_multicast_schedule: ids must be in BFS order");
        const Rational t = rmax(send_ready, recv[p][i]);
        schedule.add(p, c, static_cast<MsgId>(i), t);
        recv[c][i] = t + params.lambda();
        send_ready = t + Rational(1);
      }
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_tree_multicast(const PostalParams& params, std::uint64_t m,
                                const BroadcastTree& tree) {
  return tree_multicast_schedule(params, m, tree).makespan(params.lambda());
}

LeveledPlan leveled_dtree_auto(const PostalParams& params, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "leveled_dtree_auto: m must be >= 1");
  const std::uint64_t n = params.n();
  LeveledPlan plan;
  if (n == 1) {
    plan.degrees = {1};
    return plan;
  }
  const std::uint64_t cap = n - 1;
  bool first = true;
  auto consider = [&](std::vector<std::uint64_t> degrees) {
    const BroadcastTree tree = BroadcastTree::leveled(n, degrees);
    const Rational t = predict_tree_multicast(params, m, tree);
    if (first || t < plan.completion) {
      plan.degrees = std::move(degrees);
      plan.completion = t;
      first = false;
    }
  };

  // Pass 1: every uniform degree (this alone matches the best DTREE).
  std::uint64_t best_uniform = 1;
  Rational best_uniform_time;
  bool first_uniform = true;
  for (std::uint64_t d = 1; d <= cap; ++d) {
    const Rational t = predict_dtree(params, m, d);
    if (first_uniform || t < best_uniform_time) {
      best_uniform = d;
      best_uniform_time = t;
      first_uniform = false;
    }
    consider({d});
  }

  // Pass 2: two-segment profiles over a pruned candidate set anchored at
  // the best uniform degree (the [13]-style per-range freedom).
  std::vector<std::uint64_t> candidates{1, 2, dtree_recommended_degree(params),
                                        best_uniform};
  if (best_uniform > 1) candidates.push_back(best_uniform - 1);
  if (best_uniform < cap) candidates.push_back(best_uniform + 1);
  for (std::uint64_t d = 4; d < cap; d *= 2) candidates.push_back(d);
  candidates.push_back(cap);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const std::uint64_t a : candidates) {
    for (const std::uint64_t b : candidates) {
      if (b == a) continue;
      consider({a, b});     // one root level at a, then uniform b
      consider({a, a, b});  // two top levels at a
    }
  }
  return plan;
}

}  // namespace postal
