#include "sched/repeat.hpp"

#include "sched/bcast.hpp"

namespace postal {

Schedule repeat_schedule(const PostalParams& params, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "repeat_schedule: m must be >= 1");
  GenFib fib(params.lambda());
  Schedule iteration = bcast_schedule(params, fib);
  Schedule schedule;
  if (params.n() == 1) return schedule;
  // Iteration i starts at i * (f_lambda(n) - (lambda - 1)): p_0's last send
  // of iteration i starts at f_lambda(n) - lambda, so it is free exactly
  // lambda - 1 units before the iteration terminates (proof of Lemma 10).
  const Rational stride = fib.f(params.n()) - (params.lambda() - Rational(1));
  Rational start(0);
  for (std::uint64_t i = 0; i < m; ++i) {
    schedule.append_shifted(iteration, start, static_cast<MsgId>(i));
    start += stride;
  }
  schedule.sort();
  return schedule;
}

Rational predict_repeat(GenFib& fib, std::uint64_t n, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "predict_repeat: m must be >= 1");
  if (n == 1) return Rational(0);
  const auto mi = static_cast<std::int64_t>(m);
  return Rational(mi) * fib.f(n) -
         Rational(mi - 1) * (fib.lambda() - Rational(1));
}

}  // namespace postal
