#include "sched/pipeline.hpp"

#include "sched/bcast.hpp"

namespace postal {

namespace {

/// PIPELINE-2 recursion. The contiguous range [base, base+count) is owned
/// by its first processor, which holds the stream and can send piece k at
/// real time lambda*tau + k. Each edge streams all m pieces to a recipient
/// and then *swaps roles*: the recipient continues as BCAST's sender
/// (normalized tau+1, sub-range of size j), while the physical sender
/// becomes BCAST's receiver (normalized tau+lambda', sub-range of size
/// count-j).
void pl2_emit(Schedule& schedule, GenFib& fib, const Rational& lambda,
              std::uint64_t m, ProcId base, std::uint64_t count, const Rational& tau) {
  if (count < 2) return;
  const std::uint64_t j = fib.bcast_split(count);
  const ProcId recipient = base + static_cast<ProcId>(count - j);
  const Rational real_start = lambda * tau;
  for (std::uint64_t k = 0; k < m; ++k) {
    schedule.add(base, recipient, static_cast<MsgId>(k),
                 real_start + Rational(static_cast<std::int64_t>(k)));
  }
  // Role reversal: the recipient is free to forward pieces from
  // real_start + lambda (normalized tau + 1) and takes the larger
  // sub-range of size j; the sender is free again at real_start + m
  // (normalized tau + lambda') with the remaining count - j processors.
  pl2_emit(schedule, fib, lambda, m, recipient, j, tau + Rational(1));
  pl2_emit(schedule, fib, lambda, m, base, count - j, tau + fib.lambda());
}

}  // namespace

Schedule pipeline1_schedule(const PostalParams& params, std::uint64_t m) {
  const Rational lambda_prime = pipeline1_lambda(params.lambda(), m);
  Schedule schedule;
  if (params.n() == 1) return schedule;
  GenFib fib(lambda_prime);
  const PostalParams normalized(params.n(), lambda_prime);
  const Schedule base = bcast_schedule(normalized, fib);
  const auto mi = static_cast<std::int64_t>(m);
  for (const SendEvent& e : base.events()) {
    // A normalized send at tau is a stream: piece k leaves at m*tau + k.
    for (std::int64_t k = 0; k < mi; ++k) {
      schedule.add(e.src, e.dst, static_cast<MsgId>(k),
                   Rational(mi) * e.t + Rational(k));
    }
  }
  schedule.sort();
  return schedule;
}

Schedule pipeline2_schedule(const PostalParams& params, std::uint64_t m) {
  const Rational lambda_prime = pipeline2_lambda(params.lambda(), m);
  Schedule schedule;
  if (params.n() == 1) return schedule;
  GenFib fib(lambda_prime);
  pl2_emit(schedule, fib, params.lambda(), m, /*base=*/0, params.n(), Rational(0));
  schedule.sort();
  return schedule;
}

Schedule pipeline_schedule(const PostalParams& params, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "pipeline_schedule: m must be >= 1");
  if (Rational(static_cast<std::int64_t>(m)) <= params.lambda()) {
    return pipeline1_schedule(params, m);
  }
  return pipeline2_schedule(params, m);
}

Rational predict_pipeline1(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  const Rational lambda_prime = pipeline1_lambda(lambda, m);
  if (n == 1) return Rational(0);
  GenFib fib(lambda_prime);
  const auto mi = static_cast<std::int64_t>(m);
  return Rational(mi) * fib.f(n) + Rational(mi - 1);
}

Rational predict_pipeline2(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  const Rational lambda_prime = pipeline2_lambda(lambda, m);
  if (n == 1) return Rational(0);
  GenFib fib(lambda_prime);
  return lambda * fib.f(n) + (lambda - Rational(1));
}

Rational predict_pipeline(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "predict_pipeline: m must be >= 1");
  if (Rational(static_cast<std::int64_t>(m)) <= lambda) {
    return predict_pipeline1(lambda, n, m);
  }
  return predict_pipeline2(lambda, n, m);
}

}  // namespace postal
