// Algorithm PACK (Section 4.2): broadcast m messages as one "long message".
//
// Each processor first receives all m atomic messages back-to-back and only
// then starts forwarding them. Normalizing the time scale t' = t/m turns
// this into one BCAST run with latency lambda' = (lambda + m - 1)/m =
// 1 + (lambda-1)/m (Lemma 12):
//
//   T_PK(n, m, lambda) = m * f_{1 + (lambda-1)/m}(n).
//
// Schedule expansion: each normalized send at time tau becomes m atomic
// sends at real times m*tau, m*tau + 1, ..., m*tau + m - 1 (messages in
// order, so PACK is order-preserving).
#pragma once

#include "model/genfib.hpp"
#include "model/params.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// Generate the PACK schedule for broadcasting messages 0..m-1 from p_0.
/// Requires m >= 1. Sorted by time.
[[nodiscard]] Schedule pack_schedule(const PostalParams& params, std::uint64_t m);

/// Lemma 12's exact running time (0 for n == 1).
[[nodiscard]] Rational predict_pack(const Rational& lambda, std::uint64_t n,
                                    std::uint64_t m);

}  // namespace postal
