#include "sched/registry.hpp"

#include <algorithm>

#include "model/genfib.hpp"
#include "sched/dtree.hpp"
#include "sched/pack.hpp"
#include "sched/pipeline.hpp"
#include "sched/repeat.hpp"
#include "support/error.hpp"

namespace postal {

namespace {

std::uint64_t degree_for(MultiAlgo algo, const PostalParams& params) {
  const std::uint64_t n = params.n();
  const std::uint64_t cap = (n >= 2) ? n - 1 : 1;
  switch (algo) {
    case MultiAlgo::kDTreeLine:
      return 1;
    case MultiAlgo::kDTreeBinary:
      return std::min<std::uint64_t>(2, cap);
    case MultiAlgo::kDTreeRecommended:
      return dtree_recommended_degree(params);
    case MultiAlgo::kDTreeStar:
      return cap;
    default:
      throw LogicError("degree_for: not a DTREE algorithm");
  }
}

}  // namespace

const std::vector<MultiAlgo>& all_multi_algos() {
  static const std::vector<MultiAlgo> algos{
      MultiAlgo::kRepeat,    MultiAlgo::kPack,
      MultiAlgo::kPipeline,  MultiAlgo::kDTreeLine,
      MultiAlgo::kDTreeBinary, MultiAlgo::kDTreeRecommended,
      MultiAlgo::kDTreeStar,
  };
  return algos;
}

std::string algo_name(MultiAlgo algo) {
  switch (algo) {
    case MultiAlgo::kRepeat:
      return "REPEAT";
    case MultiAlgo::kPack:
      return "PACK";
    case MultiAlgo::kPipeline:
      return "PIPELINE";
    case MultiAlgo::kDTreeLine:
      return "DTREE(d=1)";
    case MultiAlgo::kDTreeBinary:
      return "DTREE(d=2)";
    case MultiAlgo::kDTreeRecommended:
      return "DTREE(d=ceil(lambda)+1)";
    case MultiAlgo::kDTreeStar:
      return "DTREE(d=n-1)";
  }
  throw LogicError("algo_name: unknown algorithm");
}

Schedule make_multi_schedule(MultiAlgo algo, const PostalParams& params,
                             std::uint64_t m) {
  switch (algo) {
    case MultiAlgo::kRepeat:
      return repeat_schedule(params, m);
    case MultiAlgo::kPack:
      return pack_schedule(params, m);
    case MultiAlgo::kPipeline:
      return pipeline_schedule(params, m);
    case MultiAlgo::kDTreeLine:
    case MultiAlgo::kDTreeBinary:
    case MultiAlgo::kDTreeRecommended:
    case MultiAlgo::kDTreeStar:
      return dtree_schedule(params, m, degree_for(algo, params));
  }
  throw LogicError("make_multi_schedule: unknown algorithm");
}

Rational predict_multi(MultiAlgo algo, const PostalParams& params, std::uint64_t m) {
  switch (algo) {
    case MultiAlgo::kRepeat: {
      GenFib fib(params.lambda());
      return predict_repeat(fib, params.n(), m);
    }
    case MultiAlgo::kPack:
      return predict_pack(params.lambda(), params.n(), m);
    case MultiAlgo::kPipeline:
      return predict_pipeline(params.lambda(), params.n(), m);
    case MultiAlgo::kDTreeLine:
    case MultiAlgo::kDTreeBinary:
    case MultiAlgo::kDTreeRecommended:
    case MultiAlgo::kDTreeStar:
      return predict_dtree(params, m, degree_for(algo, params));
  }
  throw LogicError("predict_multi: unknown algorithm");
}

}  // namespace postal
