// A small registry enumerating the paper's multi-message broadcasting
// algorithms, so benches, tests, and examples can sweep "every algorithm"
// uniformly.
#pragma once

#include <string>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The multi-message algorithm families of Section 4.
enum class MultiAlgo {
  kRepeat,            ///< m overlapped BCAST iterations (Lemma 10)
  kPack,              ///< one BCAST of the packed long message (Lemma 12)
  kPipeline,          ///< PIPELINE-1/2 by regime (Lemmas 14/16)
  kDTreeLine,         ///< DTREE with d = 1
  kDTreeBinary,       ///< DTREE with d = 2
  kDTreeRecommended,  ///< DTREE with d = ceil(lambda)+1 (clamped)
  kDTreeStar,         ///< DTREE with d = n-1
};

/// All registry entries in a stable order.
[[nodiscard]] const std::vector<MultiAlgo>& all_multi_algos();

/// Human-readable name ("REPEAT", "DTREE(d=2)", ...).
[[nodiscard]] std::string algo_name(MultiAlgo algo);

/// Generate the algorithm's schedule for broadcasting m messages from p_0.
[[nodiscard]] Schedule make_multi_schedule(MultiAlgo algo, const PostalParams& params,
                                           std::uint64_t m);

/// The algorithm's exact predicted running time (closed form where the
/// paper gives one; exact tree walk for the DTREE family).
[[nodiscard]] Rational predict_multi(MultiAlgo algo, const PostalParams& params,
                                     std::uint64_t m);

}  // namespace postal
