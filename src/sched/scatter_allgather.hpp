// Scatter-allgather broadcast -- a near-optimal multi-message algorithm in
// the spirit of the paper's companion work [2] ("we have developed several
// near-optimal algorithms for broadcasting multiple messages ... these
// algorithms, however, ... do not preserve the order of the messages",
// Section 5).
//
// Idea (the construction modern MPI libraries call van-de-Geijn
// broadcast): split the m messages among the n processors as evenly as
// possible, have the root *scatter* each processor its share, then run an
// optimal rotated *allgather* so everyone collects every share.
//
//   phase 1 (scatter):  <= m sends by the root, one per unit of time; the
//                        last scatter arrival lands by (m-1) + lambda.
//   phase 2 (allgather): ceil(m/n) rotation super-rounds of n-1 slots;
//                        every receive port takes at most one message per
//                        unit, so the phase adds ceil(m/n)*(n-1) - 1 +
//                        lambda after its start.
//
// Completion is Theta(m + lambda) for m >= n -- within a constant factor
// of Lemma 8's (m-1) + f_lambda(n) when m dominates, where every
// order-preserving algorithm of Section 4 pays an extra log n or lambda
// factor. The price is exactly what the paper warns about: messages arrive
// out of order (the validator's order_preserving flag is false), and the
// phase structure assumes a synchronized start.
#pragma once

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"

namespace postal {

/// The two-phase scatter-allgather schedule for broadcasting messages
/// 0..m-1 from p_0. Sorted by time. Requires m >= 1.
[[nodiscard]] Schedule scatter_allgather_schedule(const PostalParams& params,
                                                  std::uint64_t m);

/// Exact completion time of scatter_allgather_schedule (computed).
[[nodiscard]] Rational predict_scatter_allgather(const PostalParams& params,
                                                 std::uint64_t m);

/// The message share owned by processor p after the scatter: message j is
/// owned by processor j mod n.
[[nodiscard]] ProcId scatter_allgather_owner(const PostalParams& params, MsgId j);

}  // namespace postal
