// The k-ported postal model: every processor can drive k simultaneous
// sends (CM-5-style multi-port network interfaces), still with one receive
// port. A model extension in the spirit of the paper's Section 5 ("it
// would be interesting to relax this assumption"), and the direction the
// authors themselves pursued in later work.
//
// The single-port generalized Fibonacci function becomes
//
//   F_{lambda,k}(t) = 1                                   for 0 <= t < lambda
//   F_{lambda,k}(t) = F_{lambda,k}(t-1) + k*F_{lambda,k}(t-lambda)  otherwise
//
// (an informed processor seeds k new subtrees every unit of time), and the
// optimal broadcast time is its index function f_{lambda,k}(n) -- achieved
// by the natural generalization of Algorithm BCAST (the holder keeps
// F(f-1) processors and hands each of its k simultaneous recipients at
// most F(f-lambda)), and unbeatable by the same counting argument as
// Lemma 5. k = 1 reduces to the paper's model exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/params.hpp"
#include "sched/schedule.hpp"
#include "support/rational.hpp"
#include "support/saturating.hpp"

namespace postal {

/// Exact evaluator for F_{lambda,k} and its index function.
class GenFibK {
 public:
  /// Throws InvalidArgument unless lambda >= 1 and k >= 1.
  GenFibK(Rational lambda, std::uint64_t k);

  [[nodiscard]] const Rational& lambda() const noexcept { return lambda_; }
  [[nodiscard]] std::uint64_t k() const noexcept { return k_; }

  /// F_{lambda,k}(t), saturating.
  [[nodiscard]] std::uint64_t F(const Rational& t);
  /// f_{lambda,k}(n) = min{ t : F(t) >= n }.
  [[nodiscard]] Rational f(std::uint64_t n);

 private:
  Rational lambda_;
  std::uint64_t k_;
  std::int64_t p_;
  std::int64_t q_;
  std::vector<std::uint64_t> memo_;
};

/// The optimal k-ported broadcast schedule from p_0 (generalized BCAST).
/// With k > 1 the schedule contains up to k simultaneous sends per
/// processor -- use validate_kported, not the single-port validator.
[[nodiscard]] Schedule kported_bcast_schedule(const PostalParams& params,
                                              std::uint64_t k);

/// Exact completion: f_{lambda,k}(n) (0 for n == 1).
[[nodiscard]] Rational predict_kported_bcast(const PostalParams& params,
                                             std::uint64_t k);

/// Independent optimum via greedy frontier expansion (never evaluates F).
[[nodiscard]] Rational kported_optimal_greedy(const PostalParams& params,
                                              std::uint64_t k);

/// Result of validating a k-ported broadcast schedule.
struct KPortedReport {
  bool ok = false;
  std::vector<std::string> violations;
  Rational completion;
};

/// Validate a single-message broadcast schedule from p_0 under the
/// k-ported rules: at most k overlapping send windows [t, t+1) per
/// processor, exclusive receive windows, causality, and coverage.
[[nodiscard]] KPortedReport validate_kported(const Schedule& schedule,
                                             const PostalParams& params,
                                             std::uint64_t k);

}  // namespace postal
