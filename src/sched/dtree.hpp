// Algorithm DTREE (Section 4.3): multi-message broadcast over a
// left-to-right, almost-full, degree-d tree.
//
// The root sends d copies of M_1 to its children left to right, then moves
// on to M_2, and so on. A non-root processor, upon receiving a message from
// its parent, relays it to its own children left to right. The algorithm
// interpolates between REPEAT-like (d = n-1, a star) and PIPELINE-like
// (d = 1, a line) strategies and is order-preserving.
//
// Lemma 18: T_DT(n, m, lambda) <= d(m-1) + (d - 1 + lambda) * ceil(log_d n).
//
// Interesting degrees (the paper's discussion):
//   d = 1              near-optimal as m -> infinity (line)
//   d = 2              within max{2, log(ceil(lambda)+1)} of optimal
//   d = ceil(lambda)+1 within max{2, ceil(lambda)+1} of optimal; within 3x
//                      when m <= log n / log(ceil(lambda)+1)
//   d = n - 1          near-optimal as lambda -> infinity (star)
#pragma once

#include "model/params.hpp"
#include "sched/broadcast_tree.hpp"
#include "sched/schedule.hpp"

namespace postal {

/// Generate the DTREE schedule for broadcasting messages 0..m-1 from p_0
/// over the almost-full degree-d tree. Requires m >= 1 and, for n >= 2,
/// 1 <= d <= n-1. Sorted by time.
[[nodiscard]] Schedule dtree_schedule(const PostalParams& params, std::uint64_t m,
                                      std::uint64_t d);

/// The *exact* completion time of dtree_schedule (computed analytically by
/// walking the tree, not an upper bound; always <= lemma18_dtree_upper).
[[nodiscard]] Rational predict_dtree(const PostalParams& params, std::uint64_t m,
                                     std::uint64_t d);

/// The paper's recommended degree d = ceil(lambda) + 1, clamped to [1, n-1].
[[nodiscard]] std::uint64_t dtree_recommended_degree(const PostalParams& params);

/// DTREE generalized to an arbitrary tree topology (node ids must be in
/// BFS order, as BroadcastTree::dary and ::leveled produce): the root pumps
/// messages in order, every node relays each message to its children left
/// to right as soon as port and data allow. Sorted by time.
[[nodiscard]] Schedule tree_multicast_schedule(const PostalParams& params,
                                               std::uint64_t m,
                                               const BroadcastTree& tree);

/// Exact completion time of tree_multicast_schedule.
[[nodiscard]] Rational predict_tree_multicast(const PostalParams& params,
                                              std::uint64_t m,
                                              const BroadcastTree& tree);

/// Result of the leveled-degree search.
struct LeveledPlan {
  std::vector<std::uint64_t> degrees;  ///< per-level degree profile
  Rational completion;
};

/// Search two-segment leveled profiles (degree a for the top `split`
/// levels, degree b below) plus the uniform degrees, and return the best
/// tree for broadcasting m messages -- the per-range freedom that [13]'s
/// factor-7 construction uses. Search is over a small exact grid; the
/// result is always at least as good as every uniform DTREE degree tried.
[[nodiscard]] LeveledPlan leveled_dtree_auto(const PostalParams& params,
                                             std::uint64_t m);

}  // namespace postal
