#include "sched/schedule.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "support/error.hpp"

namespace postal {

std::ostream& operator<<(std::ostream& os, const SendEvent& e) {
  return os << "p" << e.src << " -> p" << e.dst << " : M" << (e.msg + 1)
            << " @ t=" << e.t;
}

void Schedule::add(ProcId src, ProcId dst, MsgId msg, Rational t) {
  add(SendEvent{src, dst, msg, std::move(t)});
}

void Schedule::add(SendEvent event) {
  POSTAL_REQUIRE(event.src != event.dst, "Schedule: a processor cannot send to itself");
  POSTAL_REQUIRE(event.t >= Rational(0), "Schedule: send times must be >= 0");
  events_.push_back(std::move(event));
}

void Schedule::append_shifted(const Schedule& other, const Rational& dt,
                              MsgId msg_offset) {
  events_.reserve(events_.size() + other.events_.size());
  for (const SendEvent& e : other.events_) {
    add(e.src, e.dst, e.msg + msg_offset, e.t + dt);
  }
}

void Schedule::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const SendEvent& a, const SendEvent& b) {
                     return std::tie(a.t, a.src, a.dst, a.msg) <
                            std::tie(b.t, b.src, b.dst, b.msg);
                   });
}

Rational Schedule::last_send_start() const {
  Rational latest(0);
  for (const SendEvent& e : events_) latest = rmax(latest, e.t);
  return latest;
}

Rational Schedule::makespan(const Rational& lambda) const {
  if (events_.empty()) return Rational(0);
  return last_send_start() + lambda;
}

std::vector<std::uint64_t> Schedule::sends_per_proc(std::uint64_t n) const {
  std::vector<std::uint64_t> counts(n, 0);
  for (const SendEvent& e : events_) {
    POSTAL_REQUIRE(e.src < n && e.dst < n,
                   "Schedule::sends_per_proc: event references processor >= n");
    ++counts[e.src];
  }
  return counts;
}

std::uint32_t Schedule::message_count() const {
  std::uint32_t max_id = 0;
  bool any = false;
  for (const SendEvent& e : events_) {
    max_id = std::max(max_id, e.msg);
    any = true;
  }
  return any ? max_id + 1 : 0;
}

std::ostream& operator<<(std::ostream& os, const Schedule& s) {
  for (const SendEvent& e : s.events()) os << e << "\n";
  return os;
}

}  // namespace postal
