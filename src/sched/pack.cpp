#include "sched/pack.hpp"

#include "sched/bcast.hpp"

namespace postal {

Schedule pack_schedule(const PostalParams& params, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "pack_schedule: m must be >= 1");
  Schedule schedule;
  if (params.n() == 1) return schedule;
  const Rational lambda_prime = pack_lambda(params.lambda(), m);
  GenFib fib(lambda_prime);
  const PostalParams normalized(params.n(), lambda_prime);
  const Schedule base = bcast_schedule(normalized, fib);
  const auto mi = static_cast<std::int64_t>(m);
  for (const SendEvent& e : base.events()) {
    // One long-message send expands into m consecutive atomic sends.
    for (std::int64_t k = 0; k < mi; ++k) {
      schedule.add(e.src, e.dst, static_cast<MsgId>(k),
                   Rational(mi) * e.t + Rational(k));
    }
  }
  schedule.sort();
  return schedule;
}

Rational predict_pack(const Rational& lambda, std::uint64_t n, std::uint64_t m) {
  POSTAL_REQUIRE(m >= 1, "predict_pack: m must be >= 1");
  if (n == 1) return Rational(0);
  GenFib fib(pack_lambda(lambda, m));
  return Rational(static_cast<std::int64_t>(m)) * fib.f(n);
}

}  // namespace postal
