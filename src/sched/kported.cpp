#include "sched/kported.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>

#include "support/interval_set.hpp"

namespace postal {

GenFibK::GenFibK(Rational lambda, std::uint64_t k) : lambda_(std::move(lambda)), k_(k) {
  POSTAL_REQUIRE(lambda_ >= Rational(1), "GenFibK: lambda must be >= 1");
  POSTAL_REQUIRE(k_ >= 1, "GenFibK: k must be >= 1");
  p_ = lambda_.num();
  q_ = lambda_.den();
  memo_.assign(static_cast<std::size_t>(p_), 1);
}

std::uint64_t GenFibK::F(const Rational& t) {
  POSTAL_REQUIRE(t >= Rational(0), "GenFibK::F: t must be >= 0");
  const std::int64_t idx = (t * Rational(q_)).floor();
  while (static_cast<std::int64_t>(memo_.size()) <= idx) {
    const auto i = static_cast<std::int64_t>(memo_.size());
    memo_.push_back(sat_add(memo_[static_cast<std::size_t>(i - q_)],
                            sat_mul(k_, memo_[static_cast<std::size_t>(i - p_)])));
  }
  return memo_[static_cast<std::size_t>(idx)];
}

Rational GenFibK::f(std::uint64_t n) {
  POSTAL_REQUIRE(n >= 1, "GenFibK::f: n must be >= 1");
  POSTAL_REQUIRE(n < kSaturated, "GenFibK::f: n exceeds the saturation cap");
  std::int64_t idx = 0;
  while (F(Rational(idx, q_)) < n) ++idx;
  return Rational(idx, q_);
}

namespace {

void kported_emit(Schedule& schedule, GenFibK& fib, ProcId base, std::uint64_t count,
                  const Rational& start) {
  ProcId holder = base;
  std::uint64_t remaining_range = count;
  Rational now = start;
  while (remaining_range >= 2) {
    const Rational idx = fib.f(remaining_range);
    POSTAL_CHECK(idx >= fib.lambda());
    const std::uint64_t j = fib.F(idx - Rational(1));
    POSTAL_CHECK(j >= 1 && j <= remaining_range - 1);
    const std::uint64_t chunk_cap = fib.F(idx - fib.lambda());
    std::uint64_t to_place = remaining_range - j;
    ProcId offset = holder + static_cast<ProcId>(j);
    // Up to k simultaneous sends, each seeding a sub-range of size at most
    // F(f - lambda); the recurrence guarantees k chunks suffice.
    for (std::uint64_t port = 0; port < fib.k() && to_place > 0; ++port) {
      const std::uint64_t c = std::min<std::uint64_t>(chunk_cap, to_place);
      schedule.add(holder, offset, /*msg=*/0, now);
      if (c >= 2) kported_emit(schedule, fib, offset, c, now + fib.lambda());
      offset += static_cast<ProcId>(c);
      to_place -= c;
    }
    POSTAL_CHECK(to_place == 0);
    remaining_range = j;
    now += Rational(1);
  }
}

}  // namespace

Schedule kported_bcast_schedule(const PostalParams& params, std::uint64_t k) {
  GenFibK fib(params.lambda(), k);
  Schedule schedule;
  if (params.n() == 1) return schedule;
  kported_emit(schedule, fib, 0, params.n(), Rational(0));
  schedule.sort();
  return schedule;
}

Rational predict_kported_bcast(const PostalParams& params, std::uint64_t k) {
  if (params.n() == 1) return Rational(0);
  GenFibK fib(params.lambda(), k);
  return fib.f(params.n());
}

Rational kported_optimal_greedy(const PostalParams& params, std::uint64_t k) {
  POSTAL_REQUIRE(k >= 1, "kported_optimal_greedy: k must be >= 1");
  const std::uint64_t n = params.n();
  if (n == 1) return Rational(0);
  // Candidate inform times. A new processor informed at t opens k port
  // streams whose first candidates land at t + lambda; popping a candidate
  // also materializes the next candidate of its own stream (+1).
  std::priority_queue<Rational, std::vector<Rational>, std::greater<>> heap;
  for (std::uint64_t port = 0; port < k; ++port) heap.push(params.lambda());
  std::uint64_t informed = 1;
  Rational last(0);
  while (informed < n) {
    POSTAL_CHECK(!heap.empty());
    const Rational t = heap.top();
    heap.pop();
    ++informed;
    last = t;
    heap.push(t + Rational(1));
    for (std::uint64_t port = 0; port < k; ++port) heap.push(t + params.lambda());
  }
  return last;
}

KPortedReport validate_kported(const Schedule& schedule, const PostalParams& params,
                               std::uint64_t k) {
  POSTAL_REQUIRE(k >= 1, "validate_kported: k must be >= 1");
  const std::uint64_t n = params.n();
  const Rational& lambda = params.lambda();
  KPortedReport report;
  auto violate = [&report](const std::string& text) {
    report.violations.push_back(text);
  };

  std::vector<SendEvent> events = schedule.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const SendEvent& a, const SendEvent& b) { return a.t < b.t; });

  std::vector<std::vector<Rational>> send_times(n);
  std::vector<IntervalSet> recv_port(n);
  std::vector<std::optional<Rational>> informed(n);
  informed[0] = Rational(0);

  for (const SendEvent& e : events) {
    std::ostringstream who;
    who << "[" << e << "] ";
    if (e.src >= n || e.dst >= n) {
      violate(who.str() + "processor id out of range");
      continue;
    }
    const auto& held = informed[e.src];
    if (!held.has_value() || e.t < *held) violate(who.str() + "sender not informed");
    // k-port rule: at most k send windows [t, t+1) may overlap. Since
    // events come in time order, count earlier sends still open at e.t.
    auto& mine = send_times[e.src];
    std::uint64_t open = 0;
    for (auto it = mine.rbegin(); it != mine.rend(); ++it) {
      if (*it + Rational(1) > e.t) {
        ++open;
      } else {
        break;  // times are nondecreasing; older windows are closed
      }
    }
    if (open >= k) violate(who.str() + "more than k overlapping sends");
    mine.push_back(e.t);
    const Rational arrive = e.t + lambda;
    if (recv_port[e.dst].insert(arrive - Rational(1), arrive)) {
      violate(who.str() + "receive-port conflict");
    }
    auto& dst = informed[e.dst];
    if (!dst.has_value() || arrive < *dst) dst = arrive;
    report.completion = rmax(report.completion, arrive);
  }
  for (ProcId p = 0; p < n; ++p) {
    if (!informed[p].has_value()) violate("p" + std::to_string(p) + " never informed");
  }
  report.ok = report.violations.empty();
  return report;
}

}  // namespace postal
