// Seeded open-loop workload generation for the broadcast service
// (docs/SERVICE.md).
//
// A WorkloadSpec describes a stream of broadcast *jobs* -- arrival process,
// job count, and the distribution of job shapes (n, lambda, m) -- as pure
// data with a canonical string form, so a run is fully named by
// (spec, seed) and `postal_cli serve` can replay it byte-for-byte.
//
// Arrivals live on an integer tick grid of resolution 1/grid model-time
// units and are drawn *without floating point*: each tick flips an exact
// Bernoulli coin with p = rate/grid by comparing a 64-bit PRNG draw x
// against the reduced fraction a/b via 128-bit cross products
// (x * b < a * 2^64), so the accept/reject decision is a pure integer
// function of the xoshiro stream -- identical on every platform and
// compiler. kPoisson flips every tick (the Bernoulli discretization of a
// Poisson process: geometric gaps, at most one arrival per tick); kOnOff
// flips only during the ON phase of a deterministic on/off square wave,
// producing the bursty traffic the admission queue's shed policy exists
// for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/prng.hpp"
#include "support/rational.hpp"

namespace postal::svc {

/// One broadcast job: at `arrival`, broadcast m messages in MPS(n, lambda).
struct Job {
  std::uint64_t id = 0;  ///< generation order, dense from 0
  Rational arrival;      ///< model-time arrival (multiple of 1/grid)
  std::uint64_t n = 1;
  Rational lambda{1};
  std::uint64_t m = 1;

  friend bool operator==(const Job&, const Job&) = default;
};

/// Arrival process families.
enum class ArrivalKind : std::uint8_t {
  kPoisson,  ///< Bernoulli(rate/grid) every tick
  kOnOff,    ///< Bernoulli(rate/grid) during ON ticks, silent during OFF
};

/// One job shape in the mix, drawn with probability weight/sum(weights).
struct MixEntry {
  std::uint64_t weight = 1;
  std::uint64_t n = 2;
  Rational lambda{1};
  std::uint64_t m = 1;

  friend bool operator==(const MixEntry&, const MixEntry&) = default;
};

/// A complete workload description. Canonical string form (round-tripped
/// by parse/to_string, used in bench records and golden tests):
///
///   poisson;grid=16;rate=1/4;jobs=1000;mix=w1:n64:l2:m1|w1:n256:l5/2:m1
///   onoff;grid=16;rate=1/2;on=64;off=192;jobs=500;mix=w1:n64:l2:m1
struct WorkloadSpec {
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  std::int64_t grid = 16;  ///< arrival ticks per model-time unit, >= 1
  Rational rate{1, 4};     ///< mean jobs per model-time unit (ON phase for kOnOff)
  std::int64_t on_ticks = 64;   ///< kOnOff: ON phase length in ticks, >= 1
  std::int64_t off_ticks = 192; ///< kOnOff: OFF phase length in ticks, >= 0
  std::uint64_t jobs = 1000;    ///< jobs to generate
  // One default entry; vector(1) rather than {MixEntry{}} because GCC 12's
  // -Wmaybe-uninitialized misfires on the initializer_list backing array.
  std::vector<MixEntry> mix = std::vector<MixEntry>(1);

  /// Throws InvalidArgument on any violated bound: grid >= 1,
  /// 0 < rate <= grid (a per-tick Bernoulli probability cannot exceed 1),
  /// nonempty mix with weight >= 1, n >= 1, lambda >= 1, m >= 1 each, and
  /// for kOnOff on_ticks >= 1, off_ticks >= 0.
  void validate() const;

  /// Canonical form; parse(to_string()) == *this.
  [[nodiscard]] std::string to_string() const;

  /// Parse the canonical form. Throws InvalidArgument on malformed input,
  /// unknown keys, or a spec that fails validate().
  [[nodiscard]] static WorkloadSpec parse(const std::string& text);

  /// The smallest tick resolution carrying every sojourn a service run over
  /// this spec can produce fault-free: lcm of `grid` and every mix lambda's
  /// denominator (arrival times are multiples of 1/grid; a job's service
  /// time is a multiple of 1/den(lambda)). nullopt if the lcm overflows.
  [[nodiscard]] std::optional<std::int64_t> sojourn_grid() const;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Streams the job sequence determined by (spec, seed). Exactly spec.jobs
/// jobs are produced, with strictly increasing arrival times (one tick can
/// carry at most one arrival).
class WorkloadGenerator {
 public:
  /// Validates the spec. The generator owns its PRNG; two generators built
  /// from equal (spec, seed) produce identical job sequences.
  WorkloadGenerator(WorkloadSpec spec, std::uint64_t seed);

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The next job, or nullopt once spec.jobs have been emitted. Throws
  /// LogicError if the arrival tick counter would overflow (astronomically
  /// sparse specs only; the bound is ~2^62 ticks).
  [[nodiscard]] std::optional<Job> next();

  /// Jobs emitted so far.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  [[nodiscard]] bool tick_active(std::int64_t tick) const noexcept;
  [[nodiscard]] bool bernoulli();
  [[nodiscard]] const MixEntry& draw_mix();

  WorkloadSpec spec_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
  std::uint64_t accept_num_ = 0;  ///< Bernoulli p = accept_num_/accept_den_
  std::uint64_t accept_den_ = 1;
  std::uint64_t weight_total_ = 0;
  std::int64_t tick_ = 0;     ///< last inspected tick
  std::uint64_t emitted_ = 0;
};

}  // namespace postal::svc
