// The bounded admission queue: back-pressure bookkeeping for the broadcast
// service (docs/SERVICE.md).
//
// The service is a single-server FIFO queue in virtual time: an admitted
// job's completion time is fixed the moment it is admitted (start =
// max(arrival, server-free), completion = start + service time), so the
// queue only has to track the multiset of in-flight completion times --
// which, because service is FIFO, is a monotone sequence retired from the
// front. `capacity` bounds the in-flight population (waiting + in
// service); an arrival that finds the queue full is *shed* by the service,
// never enqueued, which is the whole back-pressure policy: depth() can
// never exceed capacity (asserted here, property-tested in
// tests/svc/service_soak_test.cpp).
#pragma once

#include <cstdint>
#include <deque>

#include "support/error.hpp"
#include "support/rational.hpp"

namespace postal::svc {

/// Bounded FIFO of in-flight job completion times.
class AdmissionQueue {
 public:
  /// capacity = 0 means unbounded (full() is always false).
  explicit AdmissionQueue(std::uint64_t capacity) : capacity_(capacity) {}

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// In-flight jobs right now (waiting + in service).
  [[nodiscard]] std::uint64_t depth() const noexcept {
    return static_cast<std::uint64_t>(entries_.size());
  }

  /// Highest depth() ever reached.
  [[nodiscard]] std::uint64_t depth_max() const noexcept { return depth_max_; }

  /// Jobs ever admitted via push().
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }

  /// Jobs retired (completed) so far. admitted() == retired() + depth()
  /// always -- the conservation law the soak tests assert.
  [[nodiscard]] std::uint64_t retired() const noexcept { return retired_; }

  /// True iff an arrival right now would have to be shed.
  [[nodiscard]] bool full() const noexcept {
    return capacity_ != 0 && depth() >= capacity_;
  }

  /// Retire every in-flight job whose completion is <= t (a job departing
  /// at exactly t frees its slot before an arrival at t is judged);
  /// returns how many retired.
  std::uint64_t retire_until(const Rational& t) {
    std::uint64_t count = 0;
    while (!entries_.empty() && entries_.front() <= t) {
      entries_.pop_front();
      ++count;
    }
    retired_ += count;
    return count;
  }

  /// Retire everything in flight; returns how many retired.
  std::uint64_t retire_all() {
    const auto count = static_cast<std::uint64_t>(entries_.size());
    entries_.clear();
    retired_ += count;
    return count;
  }

  /// Admit a job completing at `completion`. Throws LogicError if the
  /// queue is full or completions would go backwards (FIFO service makes
  /// them monotone by construction; a violation is a service bug).
  void push(const Rational& completion) {
    POSTAL_CHECK(!full());
    POSTAL_CHECK(entries_.empty() || !(completion < entries_.back()));
    entries_.push_back(completion);
    ++admitted_;
    if (depth() > depth_max_) depth_max_ = depth();
  }

 private:
  std::uint64_t capacity_;
  std::deque<Rational> entries_;
  std::uint64_t depth_max_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace postal::svc
