// The broadcast service: a long-running frontend that admits a stream of
// broadcast jobs, plans each one, and reports tail latency + throughput
// (docs/SERVICE.md).
//
// Virtual-time semantics (the determinism contract): the service is a
// single-server FIFO queue over exact model time. A job arriving at a,
// when admitted, starts at s = max(a, server-free), completes at
// c = s + service-time, and its *sojourn* c - a (wait + service) is what
// the percentile report measures. Service time is the job's exact
// broadcast makespan: f_lambda(n) from the O(1)-memory ScheduleOracle
// where admissible, the materialized sched::bcast schedule as the reported
// fallback, and the Section 4 registry's best prediction for m > 1. No
// wall clock anywhere -- every number a run produces is a pure function of
// the submitted job sequence (for run_service: of (spec, seed)), which is
// what makes `postal_cli serve` byte-identical across reruns and thread
// counts.
//
// Back-pressure: a bounded AdmissionQueue caps the in-flight population;
// an arrival that finds it full is shed (counted, never queued). The
// conservation laws generated = admitted + shed and
// admitted = completed + in-flight hold at every instant (soak-tested).
//
// Execution tier: every exec_every-th admitted job (and under a fault
// seed, with a per-job seeded FaultPlan) is additionally run event-driven
// through run_reliable_bcast on the Machine -- or the sharded ParMachine
// when threads > 1 -- which is Algorithm BCAST exactly when fault-free;
// the run's completion must equal the planned makespan (LogicError
// otherwise), and under faults the crash-aware validator must certify the
// run. Executed-with-faults jobs bill their *actual* completion (recovery
// overhead inflates the sojourn), which is the honest service-level view
// of a failure.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"
#include "support/rational.hpp"
#include "support/ticks.hpp"
#include "svc/queue.hpp"
#include "svc/workload.hpp"

namespace postal::svc {

/// Planner selection.
enum class PlannerPolicy : std::uint8_t {
  kAuto,          ///< oracle first, materialized fallback on overflow
  kMaterialized,  ///< always the materialized sched::bcast path (m == 1)
};

/// Service knobs. Everything here is part of the replay key: two runs over
/// the same job sequence with equal options produce identical reports.
struct ServiceOptions {
  /// Max in-flight jobs (waiting + in service); arrivals beyond it are
  /// shed. 0 = unbounded.
  std::uint64_t queue_capacity = 64;
  /// Run every k-th admitted job event-driven on the Machine/ParMachine
  /// (1 = every job, 0 = plan-only). The first admitted job is always in
  /// the sample when k >= 1.
  std::uint64_t exec_every = 0;
  PlannerPolicy planner = PlannerPolicy::kAuto;
  /// Time representation for executed runs (docs/PERFORMANCE.md).
  TimePath time_path = TimePath::kAuto;
  /// Simulation lanes for executed runs (docs/SIMULATION.md); results are
  /// byte-identical at every setting. Clamped to >= 1.
  unsigned threads = 1;
  /// Trace retention for executed runs (sim/trace.hpp). The service reads
  /// only first arrivals, completion, and the validated schedule -- all
  /// exact under kCounters -- so the exec tier can elide per-delivery
  /// traces on large jobs without changing any report byte.
  TraceMode trace_mode = TraceMode::kFull;
  /// != 0: executed jobs run under random_fault_plan(params, h(fault_seed,
  /// job.id), fault_options) and bill their actual (recovery-inflated)
  /// completion. 0 = fault-free execution.
  std::uint64_t fault_seed = 0;
  RandomFaultOptions fault_options{};
  /// Tick resolution for the sojourn histogram: sojourns are recorded as
  /// ticks of 1/sojourn_grid (run_service folds this from the spec).
  /// Off-grid sojourns are counted and ceil-rounded to the next tick.
  std::int64_t sojourn_grid = 1;
  /// Histogram precision (obs/histogram.hpp): relative error <= 2^-bits.
  unsigned histogram_bits = 7;
  /// Retain the full exact sojourn list in the report (certification
  /// tests); off by default -- the histogram is the scalable path.
  bool keep_sojourns = false;
  /// > 0: route admissions through a coordinator elected over an
  /// MPS(coord_ranks, coord_lambda) control plane (docs/COORDINATION.md).
  /// The election runs at construction; with coord_crash_at > 0 the
  /// elected coordinator crashes at that model time and a failover
  /// election installs the deterministic successor -- job starts that
  /// would land inside the leaderless window are deferred to its end
  /// (counted in ServiceCounters::coord_deferred). 0 = off; every coord
  /// field stays out of the report's JSON, so replays are unchanged.
  std::uint64_t coord_ranks = 0;
  /// Control-plane latency (>= 1) of coordination runs.
  Rational coord_lambda{2};
  /// > 0: crash the coordinator at this model time (mid-workload
  /// failover; requires coord_ranks >= 2). 0 = the coordinator never
  /// fails.
  Rational coord_crash_at{0};
  /// Route admissions through the replicated log on the coordination
  /// control plane (docs/COORDINATION.md; requires coord_ranks > 0): a
  /// fault-free log run over MPS(coord_ranks, coord_lambda) at
  /// construction certifies the control plane and measures its exact
  /// commit latency, and every admitted job is billed that latency (its
  /// start is granted only once the admission command commits). Strictly
  /// conditional: off (the default), no report byte changes.
  bool coord_log = false;
};

/// What the service decided and predicted for one submitted job.
struct JobOutcome {
  Job job;
  bool admitted = false;      ///< false = shed (every field below is zero)
  Rational start;             ///< service start (>= arrival)
  Rational completion;        ///< start + service time
  Rational sojourn;           ///< completion - arrival
  Rational planned_makespan;  ///< the planner's exact broadcast time
  std::string planner;        ///< "oracle", "materialized", "registry:<NAME>"
  bool executed = false;      ///< ran event-driven on Machine/ParMachine
  Rational exec_completion;   ///< executed run's completion (== planned fault-free)
  std::uint64_t exec_retransmissions = 0;
  std::uint64_t exec_crashed = 0;  ///< processors the per-job plan crashed
};

/// Monotone run counters; the conservation laws relating them are the
/// admission-queue invariants (docs/SERVICE.md).
struct ServiceCounters {
  std::uint64_t generated = 0;  ///< jobs submitted
  std::uint64_t admitted = 0;   ///< generated - shed
  std::uint64_t shed = 0;       ///< rejected by back-pressure
  std::uint64_t completed = 0;  ///< retired departures
  std::uint64_t depth_max = 0;  ///< queue high-water mark
  std::uint64_t planned_oracle = 0;
  std::uint64_t planned_materialized = 0;  ///< oracle-inadmissible fallbacks
  std::uint64_t planned_registry = 0;      ///< m > 1 jobs
  std::uint64_t exec_runs = 0;
  std::uint64_t exec_verified = 0;  ///< fault-free runs matching the plan exactly
  std::uint64_t exec_faulted = 0;   ///< runs under a per-job FaultPlan
  std::uint64_t exec_retransmissions = 0;
  std::uint64_t exec_repairs = 0;
  std::uint64_t exec_crashed = 0;
  std::uint64_t sojourn_offgrid = 0;  ///< sojourns ceil-rounded to the grid
  std::uint64_t coord_elections = 0;  ///< coordination elections run (0 = off)
  std::uint64_t coord_failovers = 0;  ///< coordinator crashes recovered from
  std::uint64_t coord_deferred = 0;   ///< starts pushed past the leaderless window
  std::uint64_t coord_log_commands = 0;  ///< admissions billed at commit latency
};

/// The drained run, ready for bench records and `serve` output. Contains
/// no wall-clock field: to_json() is the byte-replayable artifact the
/// golden tests diff.
struct ServiceReport {
  std::string spec;  ///< canonical workload spec ("" when driven manually)
  std::uint64_t seed = 0;
  ServiceCounters counters;
  Rational horizon;        ///< latest completion (model time; 0 if none)
  Rational sojourn_total;  ///< exact sum over completed jobs
  Rational sojourn_max;
  std::int64_t sojourn_grid = 1;
  unsigned histogram_bits = 7;
  /// Nearest-rank sojourn percentiles from the streaming histogram, as
  /// ticks of 1/sojourn_grid and as exact model time (ticks/grid). Zero
  /// when no job completed.
  std::uint64_t p50_ticks = 0;
  std::uint64_t p99_ticks = 0;
  std::uint64_t p999_ticks = 0;
  Rational p50;
  Rational p99;
  Rational p999;
  Rational throughput;  ///< completed / horizon (jobs per model-time unit)
  /// Full exact sojourn list in completion order; only populated under
  /// ServiceOptions::keep_sojourns (excluded from to_json()).
  std::vector<Rational> sojourns;
  /// Coordinator routing (docs/COORDINATION.md); meaningful -- and present
  /// in to_json() -- only when ServiceOptions::coord_ranks > 0. The window
  /// is the leaderless interval of the failover ([0, 0) when none).
  std::uint64_t coord_ranks = 0;
  std::uint64_t coord_leader = 0;
  Rational coord_window_start;
  Rational coord_window_end;
  /// Replicated-log admission routing (ServiceOptions::coord_log); the
  /// latency is the control plane's exact per-command commit latency.
  bool coord_log = false;
  Rational coord_log_latency;

  /// One deterministic JSON object (linted, stable key order, exact-string
  /// rationals, no wall times). See docs/SERVICE.md for the schema.
  [[nodiscard]] std::string to_json() const;
};

/// The long-running service. Jobs are submitted in arrival order; the
/// virtual clock is the arrivals themselves plus drain calls.
class BroadcastService {
 public:
  /// `metrics` != nullptr: svc.* metrics are maintained live in the
  /// registry (docs/OBSERVABILITY.md). The registry must outlive the
  /// service.
  explicit BroadcastService(ServiceOptions options = {},
                            obs::MetricsRegistry* metrics = nullptr);

  /// Admit-or-shed one job. Arrivals must be nondecreasing (InvalidArgument
  /// otherwise); job.n >= 1, job.lambda >= 1, job.m >= 1. Retires every
  /// departure up to the arrival first, so back-pressure sees the true
  /// in-flight population.
  JobOutcome submit(const Job& job);

  /// Advance the virtual clock to t, retiring departures.
  void drain_until(const Rational& t);

  /// Retire everything in flight and produce the final report.
  [[nodiscard]] ServiceReport drain();

  [[nodiscard]] const ServiceCounters& counters() const noexcept { return counters_; }
  /// In-flight jobs right now (admitted - completed).
  [[nodiscard]] std::uint64_t depth() const noexcept { return queue_.depth(); }
  [[nodiscard]] const obs::LatencyHistogram& histogram() const noexcept {
    return histogram_;
  }
  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }

 private:
  struct PlanResult {
    Rational makespan;
    std::string planner;
  };

  [[nodiscard]] PlanResult plan_job(const Job& job);
  /// Elect the coordinator (and run the failover election when
  /// coord_crash_at > 0); called from the constructor under coord_ranks > 0.
  void init_coordinator();
  /// Event-driven execution of an admitted job; returns the actual
  /// completion to bill. Updates exec counters and `outcome`.
  [[nodiscard]] Rational execute_job(const Job& job, const Rational& planned,
                                     JobOutcome& outcome);
  void retire(std::uint64_t count);
  void record_sojourn(const Rational& sojourn);

  ServiceOptions options_;
  obs::MetricsRegistry* metrics_;
  TickDomain sojourn_domain_;
  AdmissionQueue queue_;
  std::deque<Rational> pending_sojourns_;  ///< in-flight, admission order
  ServiceCounters counters_;
  obs::LatencyHistogram histogram_;
  Rational server_free_;
  Rational last_arrival_;
  Rational horizon_;
  Rational sojourn_total_;
  Rational sojourn_max_;
  std::vector<Rational> sojourns_;  ///< only under keep_sojourns
  std::uint64_t coord_leader_ = 0;  ///< current coordinator (coord_ranks > 0)
  bool coord_window_open_ = false;  ///< a failover window exists
  Rational coord_window_start_;
  Rational coord_window_end_;
  Rational coord_log_latency_;  ///< per-command commit latency (coord_log)
};

/// The open-loop runner: stream every job of (spec, seed) through a fresh
/// BroadcastService and drain. When options.sojourn_grid is 1 (the
/// default), the histogram grid is folded from the spec
/// (WorkloadSpec::sojourn_grid) so fault-free sojourns land on it exactly.
[[nodiscard]] ServiceReport run_service(const WorkloadSpec& spec, std::uint64_t seed,
                                        const ServiceOptions& options = {},
                                        obs::MetricsRegistry* metrics = nullptr);

}  // namespace postal::svc
