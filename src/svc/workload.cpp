#include "svc/workload.hpp"

#include <limits>
#include <numeric>
#include <sstream>

#include "support/error.hpp"
#include "support/ticks.hpp"

namespace postal::svc {

namespace {

constexpr std::int64_t kMaxTick = std::int64_t{1} << 62;

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  if (text.empty()) throw InvalidArgument("WorkloadSpec: empty " + what);
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw InvalidArgument("WorkloadSpec: bad " + what + " '" + text + "'");
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      throw InvalidArgument("WorkloadSpec: " + what + " overflows: '" + text + "'");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::int64_t parse_i64(const std::string& text, const std::string& what) {
  const std::uint64_t value = parse_u64(text, what);
  if (value > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    throw InvalidArgument("WorkloadSpec: " + what + " overflows: '" + text + "'");
  }
  return static_cast<std::int64_t>(value);
}

MixEntry parse_mix_entry(const std::string& text) {
  MixEntry entry;
  bool saw_w = false;
  bool saw_n = false;
  bool saw_l = false;
  bool saw_m = false;
  for (const auto& field : split(text, ':')) {
    if (field.size() < 2) {
      throw InvalidArgument("WorkloadSpec: bad mix field '" + field + "'");
    }
    const std::string value = field.substr(1);
    switch (field[0]) {
      case 'w':
        entry.weight = parse_u64(value, "mix weight");
        saw_w = true;
        break;
      case 'n':
        entry.n = parse_u64(value, "mix n");
        saw_n = true;
        break;
      case 'l':
        entry.lambda = Rational::parse(value);
        saw_l = true;
        break;
      case 'm':
        entry.m = parse_u64(value, "mix m");
        saw_m = true;
        break;
      default:
        throw InvalidArgument("WorkloadSpec: unknown mix field '" + field + "'");
    }
  }
  if (!saw_w || !saw_n || !saw_l || !saw_m) {
    throw InvalidArgument("WorkloadSpec: mix entry '" + text +
                          "' must name w, n, l, and m");
  }
  return entry;
}

}  // namespace

void WorkloadSpec::validate() const {
  if (grid < 1) throw InvalidArgument("WorkloadSpec: grid must be >= 1");
  if (rate <= Rational(0)) throw InvalidArgument("WorkloadSpec: rate must be > 0");
  if (rate > Rational(grid)) {
    throw InvalidArgument(
        "WorkloadSpec: rate must be <= grid (per-tick probability <= 1); got rate " +
        rate.str() + " on grid " + std::to_string(grid));
  }
  if (arrivals == ArrivalKind::kOnOff) {
    if (on_ticks < 1) throw InvalidArgument("WorkloadSpec: on_ticks must be >= 1");
    if (off_ticks < 0) throw InvalidArgument("WorkloadSpec: off_ticks must be >= 0");
    if (on_ticks > kMaxTick - off_ticks) {
      throw InvalidArgument("WorkloadSpec: on_ticks + off_ticks overflows");
    }
  }
  if (mix.empty()) throw InvalidArgument("WorkloadSpec: mix must be nonempty");
  std::uint64_t total = 0;
  for (const auto& entry : mix) {
    if (entry.weight < 1) {
      throw InvalidArgument("WorkloadSpec: mix weight must be >= 1");
    }
    if (entry.n < 1) throw InvalidArgument("WorkloadSpec: mix n must be >= 1");
    if (entry.lambda < Rational(1)) {
      throw InvalidArgument("WorkloadSpec: mix lambda must be >= 1");
    }
    if (entry.m < 1) throw InvalidArgument("WorkloadSpec: mix m must be >= 1");
    if (total > std::numeric_limits<std::uint64_t>::max() - entry.weight) {
      throw InvalidArgument("WorkloadSpec: mix weights overflow");
    }
    total += entry.weight;
  }
}

std::string WorkloadSpec::to_string() const {
  std::ostringstream os;
  os << (arrivals == ArrivalKind::kPoisson ? "poisson" : "onoff");
  os << ";grid=" << grid << ";rate=" << rate.str();
  if (arrivals == ArrivalKind::kOnOff) {
    os << ";on=" << on_ticks << ";off=" << off_ticks;
  }
  os << ";jobs=" << jobs << ";mix=";
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (i > 0) os << '|';
    os << 'w' << mix[i].weight << ":n" << mix[i].n << ":l" << mix[i].lambda.str()
       << ":m" << mix[i].m;
  }
  return os.str();
}

WorkloadSpec WorkloadSpec::parse(const std::string& text) {
  const auto fields = split(text, ';');
  WorkloadSpec spec;
  bool saw_phase = false;
  bool saw_mix = false;
  if (fields[0] == "poisson") {
    spec.arrivals = ArrivalKind::kPoisson;
  } else if (fields[0] == "onoff") {
    spec.arrivals = ArrivalKind::kOnOff;
  } else {
    throw InvalidArgument("WorkloadSpec: unknown arrival kind '" + fields[0] + "'");
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::size_t eq = fields[i].find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("WorkloadSpec: field '" + fields[i] + "' is not key=value");
    }
    const std::string key = fields[i].substr(0, eq);
    const std::string value = fields[i].substr(eq + 1);
    if (key == "grid") {
      spec.grid = parse_i64(value, "grid");
    } else if (key == "rate") {
      spec.rate = Rational::parse(value);
    } else if (key == "on") {
      spec.on_ticks = parse_i64(value, "on");
      saw_phase = true;
    } else if (key == "off") {
      spec.off_ticks = parse_i64(value, "off");
      saw_phase = true;
    } else if (key == "jobs") {
      spec.jobs = parse_u64(value, "jobs");
    } else if (key == "mix") {
      saw_mix = true;
      spec.mix.clear();
      for (const auto& entry : split(value, '|')) {
        spec.mix.push_back(parse_mix_entry(entry));
      }
    } else {
      throw InvalidArgument("WorkloadSpec: unknown key '" + key + "'");
    }
  }
  // on/off would be silently dropped by to_string() for poisson specs,
  // breaking the parse(to_string()) round trip -- reject rather than drift.
  if (saw_phase && spec.arrivals == ArrivalKind::kPoisson) {
    throw InvalidArgument("WorkloadSpec: on/off apply only to onoff arrivals");
  }
  // The canonical form always names the mix; accepting its absence would
  // let a silently-default spec masquerade as an explicit one.
  if (!saw_mix) throw InvalidArgument("WorkloadSpec: missing mix");
  spec.validate();
  return spec;
}

std::optional<std::int64_t> WorkloadSpec::sojourn_grid() const {
  std::int64_t q = grid;
  for (const auto& entry : mix) {
    const auto folded = TickDomain::fold_denominator(q, entry.lambda);
    if (!folded) return std::nullopt;
    q = *folded;
  }
  return q;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed), rng_(seed) {
  spec_.validate();
  // p = rate/grid as a reduced fraction; validate() guarantees p <= 1.
  const Rational p = spec_.rate / Rational(spec_.grid);
  accept_num_ = static_cast<std::uint64_t>(p.num());
  accept_den_ = static_cast<std::uint64_t>(p.den());
  for (const auto& entry : spec_.mix) weight_total_ += entry.weight;
}

bool WorkloadGenerator::tick_active(std::int64_t tick) const noexcept {
  if (spec_.arrivals == ArrivalKind::kPoisson) return true;
  const std::int64_t period = spec_.on_ticks + spec_.off_ticks;
  return (tick - 1) % period < spec_.on_ticks;  // ticks start at 1, phase ON first
}

bool WorkloadGenerator::bernoulli() {
  // Accept iff x/2^64 < num/den, decided exactly: x * den < num * 2^64.
  const std::uint64_t x = rng_();
  __extension__ using u128 = unsigned __int128;
  return static_cast<u128>(x) * accept_den_ < (static_cast<u128>(accept_num_) << 64);
}

const MixEntry& WorkloadGenerator::draw_mix() {
  if (spec_.mix.size() == 1) return spec_.mix.front();
  std::uint64_t pick = rng_.uniform(0, weight_total_ - 1);
  for (const auto& entry : spec_.mix) {
    if (pick < entry.weight) return entry;
    pick -= entry.weight;
  }
  return spec_.mix.back();  // unreachable: pick < weight_total_
}

std::optional<Job> WorkloadGenerator::next() {
  if (emitted_ >= spec_.jobs) return std::nullopt;
  while (true) {
    if (tick_ >= kMaxTick) {
      throw LogicError("WorkloadGenerator: arrival tick counter overflow");
    }
    ++tick_;
    if (!tick_active(tick_)) continue;
    if (!bernoulli()) continue;
    const MixEntry& shape = draw_mix();
    Job job;
    job.id = emitted_;
    job.arrival = Rational(tick_, spec_.grid);
    job.n = shape.n;
    job.lambda = shape.lambda;
    job.m = shape.m;
    ++emitted_;
    return job;
  }
}

}  // namespace postal::svc
