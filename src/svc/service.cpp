#include "svc/service.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "coord/election.hpp"
#include "coord/log.hpp"
#include "model/params.hpp"
#include "obs/json_lint.hpp"
#include "oracle/oracle.hpp"
#include "par/schedule_cache.hpp"
#include "sched/registry.hpp"
#include "sim/json.hpp"
#include "sim/protocols/reliable_bcast.hpp"
#include "support/prng.hpp"

namespace postal::svc {

namespace {

/// Per-job fault seed: mixes the run's fault_seed with the job id so every
/// executed job sees an independent, reproducible plan.
std::uint64_t job_fault_seed(std::uint64_t fault_seed, std::uint64_t job_id) {
  SplitMix64 sm(fault_seed ^ (job_id * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

}  // namespace

BroadcastService::BroadcastService(ServiceOptions options,
                                   obs::MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics),
      sojourn_domain_(options_.sojourn_grid),
      queue_(options_.queue_capacity),
      histogram_(options_.histogram_bits) {
  if (options_.threads == 0) options_.threads = 1;
  if (metrics_ != nullptr) {
    metrics_->gauge("svc.exec.trace_mode")
        .set(options_.trace_mode == TraceMode::kCounters ? 1 : 0);
  }
  POSTAL_REQUIRE(!options_.coord_log || options_.coord_ranks > 0,
                 "BroadcastService: coord_log requires coord_ranks > 0");
  if (options_.coord_ranks > 0) init_coordinator();
}

void BroadcastService::init_coordinator() {
  POSTAL_REQUIRE(options_.coord_ranks >= 2 || !(Rational(0) < options_.coord_crash_at),
                 "BroadcastService: coord_crash_at needs coord_ranks >= 2");
  const PostalParams params(options_.coord_ranks, options_.coord_lambda);
  if (options_.coord_log) {
    // Certify the control plane's replicated log fault-free and read off
    // the exact per-command commit latency every admission will be billed.
    coord::LogOptions lopts;
    lopts.commands = 1;
    lopts.time_path = options_.time_path;
    lopts.threads = options_.threads;
    const coord::LogReport log = coord::run_log(params, nullptr, lopts);
    POSTAL_CHECK(log.validation.ok && log.check.ok);
    coord_log_latency_ = log.commit_latency;
    if (metrics_ != nullptr) {
      metrics_->rational("svc.coord.log_latency").add(coord_log_latency_);
    }
  }
  coord::ElectionOptions eopts;
  eopts.time_path = options_.time_path;
  eopts.threads = options_.threads;
  // Fault-free seat of the initial coordinator. Both elections are judged
  // by the coordination validator; a failure is a library bug.
  const coord::ElectionReport initial = coord::run_election(params, nullptr, eopts);
  POSTAL_CHECK(initial.validation.ok && initial.check.ok);
  coord_leader_ = initial.leader;
  ++counters_.coord_elections;
  if (metrics_ != nullptr) metrics_->counter("svc.coord.elections").add();
  if (!(Rational(0) < options_.coord_crash_at)) return;
  FaultPlan plan;
  plan.crashes.push_back(
      CrashFault{static_cast<ProcId>(coord_leader_), options_.coord_crash_at});
  const coord::ElectionReport failover = coord::run_election(params, &plan, eopts);
  POSTAL_CHECK(failover.validation.ok && failover.check.ok && failover.settled);
  coord_leader_ = failover.leader;
  coord_window_start_ = options_.coord_crash_at;
  coord_window_end_ = failover.elected_at;
  coord_window_open_ = coord_window_start_ < coord_window_end_;
  ++counters_.coord_elections;
  ++counters_.coord_failovers;
  if (metrics_ != nullptr) {
    metrics_->counter("svc.coord.elections").add();
    metrics_->counter("svc.coord.failovers").add();
    metrics_->rational("svc.coord.window")
        .add(coord_window_end_ - coord_window_start_);
  }
}

BroadcastService::PlanResult BroadcastService::plan_job(const Job& job) {
  PlanResult out;
  if (job.m > 1) {
    // Best Section 4 multi-message algorithm by exact prediction. kRepeat
    // is valid for every (n, lambda, m), so the minimum always exists.
    bool found = false;
    MultiAlgo best = MultiAlgo::kRepeat;
    Rational best_time;
    const PostalParams params(job.n, job.lambda);
    for (const MultiAlgo algo : all_multi_algos()) {
      Rational predicted;
      try {
        predicted = predict_multi(algo, params, job.m);
      } catch (const InvalidArgument&) {
        continue;  // algorithm's regime excludes this (lambda, m)
      }
      if (!found || predicted < best_time) {
        found = true;
        best = algo;
        best_time = predicted;
      }
    }
    POSTAL_CHECK(found);
    out.makespan = best_time;
    out.planner = "registry:" + algo_name(best);
    ++counters_.planned_registry;
    if (metrics_ != nullptr) metrics_->counter("svc.plan.registry").add();
    return out;
  }
  if (options_.planner == PlannerPolicy::kAuto) {
    try {
      const oracle::ScheduleOracle oracle(job.n, job.lambda);
      out.makespan = oracle.makespan();
      out.planner = "oracle";
      ++counters_.planned_oracle;
      if (metrics_ != nullptr) metrics_->counter("svc.plan.oracle").add();
      return out;
    } catch (const OverflowError&) {
      // Oracle inadmissible (tick descent off the int64 grid); fall through
      // to the materialized path and report it.
    }
  }
  const PostalParams params(job.n, job.lambda);
  const auto schedule = par::ScheduleCache::global().bcast(params);
  out.makespan = schedule->makespan(job.lambda);
  out.planner = "materialized";
  ++counters_.planned_materialized;
  if (metrics_ != nullptr) metrics_->counter("svc.plan.materialized").add();
  return out;
}

Rational BroadcastService::execute_job(const Job& job, const Rational& planned,
                                       JobOutcome& outcome) {
  const PostalParams params(job.n, job.lambda);
  ReliableBcastOptions ropts;
  ropts.time_path = options_.time_path;
  ropts.threads = options_.threads;
  ropts.trace_mode = options_.trace_mode;
  FaultPlan plan;
  const FaultPlan* plan_ptr = nullptr;
  if (options_.fault_seed != 0) {
    plan = random_fault_plan(params, job_fault_seed(options_.fault_seed, job.id),
                             options_.fault_options);
    if (!plan.empty()) plan_ptr = &plan;
  }
  const ReliableBcastReport report = run_reliable_bcast(params, plan_ptr, ropts);
  // The service's delivery guarantee rides on the protocol's: every live
  // processor covered, and the run certified by the crash-aware validator.
  POSTAL_CHECK(report.covered);
  POSTAL_CHECK(report.validation.ok);
  outcome.executed = true;
  outcome.exec_completion = report.completion;
  outcome.exec_retransmissions = report.counters.retransmissions;
  outcome.exec_crashed = static_cast<std::uint64_t>(report.crashed.size());
  ++counters_.exec_runs;
  counters_.exec_retransmissions += report.counters.retransmissions;
  counters_.exec_repairs += report.counters.repairs;
  counters_.exec_crashed += outcome.exec_crashed;
  if (metrics_ != nullptr) {
    metrics_->counter("svc.exec.runs").add();
    metrics_->counter("svc.exec.retransmissions").add(report.counters.retransmissions);
    metrics_->counter("svc.exec.repairs").add(report.counters.repairs);
  }
  if (plan_ptr == nullptr) {
    // Fault-free the run IS Algorithm BCAST: its completion must equal the
    // planner's f_lambda(n) exactly, or the library is broken.
    POSTAL_CHECK(report.completion == planned);
    ++counters_.exec_verified;
    if (metrics_ != nullptr) metrics_->counter("svc.exec.verified").add();
    return planned;
  }
  ++counters_.exec_faulted;
  if (metrics_ != nullptr) metrics_->counter("svc.exec.faulted").add();
  // Bill the actual completion: recovery overhead inflates the sojourn;
  // crashes can also finish the (smaller) live population early.
  return report.completion;
}

void BroadcastService::record_sojourn(const Rational& sojourn) {
  std::uint64_t ticks = 0;
  if (const auto exact = sojourn_domain_.to_ticks(sojourn)) {
    ticks = static_cast<std::uint64_t>(*exact);
  } else {
    ++counters_.sojourn_offgrid;
    if (metrics_ != nullptr) metrics_->counter("svc.sojourn.offgrid").add();
    try {
      const Rational scaled = sojourn * Rational(options_.sojourn_grid);
      ticks = static_cast<std::uint64_t>(scaled.ceil());
    } catch (const OverflowError&) {
      ticks = static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    }
  }
  histogram_.record(ticks);
  sojourn_total_ += sojourn;
  sojourn_max_ = rmax(sojourn_max_, sojourn);
  if (options_.keep_sojourns) sojourns_.push_back(sojourn);
  if (metrics_ != nullptr) metrics_->rational("svc.sojourn_total").add(sojourn);
}

void BroadcastService::retire(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    POSTAL_CHECK(!pending_sojourns_.empty());
    record_sojourn(pending_sojourns_.front());
    pending_sojourns_.pop_front();
  }
  counters_.completed += count;
  if (metrics_ != nullptr && count > 0) {
    metrics_->counter("svc.completed").add(count);
    metrics_->gauge("svc.queue_depth").set(static_cast<std::int64_t>(queue_.depth()));
  }
}

JobOutcome BroadcastService::submit(const Job& job) {
  POSTAL_REQUIRE(job.n >= 1, "BroadcastService: job.n must be >= 1");
  POSTAL_REQUIRE(job.m >= 1, "BroadcastService: job.m must be >= 1");
  POSTAL_REQUIRE(!(job.lambda < Rational(1)),
                 "BroadcastService: job.lambda must be >= 1");
  POSTAL_REQUIRE(!(job.arrival < Rational(0)),
                 "BroadcastService: job.arrival must be >= 0");
  POSTAL_REQUIRE(!(job.arrival < last_arrival_),
                 "BroadcastService: arrivals must be nondecreasing");
  last_arrival_ = job.arrival;
  ++counters_.generated;
  if (metrics_ != nullptr) metrics_->counter("svc.generated").add();
  retire(queue_.retire_until(job.arrival));

  JobOutcome outcome;
  outcome.job = job;
  if (queue_.full()) {
    ++counters_.shed;
    if (metrics_ != nullptr) metrics_->counter("svc.shed").add();
    return outcome;
  }

  const PlanResult plan = plan_job(job);
  outcome.admitted = true;
  outcome.planned_makespan = plan.makespan;
  outcome.planner = plan.planner;
  ++counters_.admitted;

  Rational service_time = plan.makespan;
  const bool sampled =
      options_.exec_every != 0 && (counters_.admitted - 1) % options_.exec_every == 0;
  if (sampled && job.m == 1 && job.n >= 2) {
    service_time = execute_job(job, plan.makespan, outcome);
  }

  outcome.start = rmax(job.arrival, server_free_);
  if (coord_window_open_ && !(outcome.start < coord_window_start_) &&
      outcome.start < coord_window_end_) {
    // Leaderless window of the coordinator failover: nobody can grant the
    // start, so the job waits for the successor's victory.
    outcome.start = coord_window_end_;
    ++counters_.coord_deferred;
    if (metrics_ != nullptr) metrics_->counter("svc.coord.deferred").add();
  }
  if (options_.coord_log && options_.coord_ranks > 0) {
    // The admission is a log command: the start is granted only once it
    // commits on the control plane.
    outcome.start = outcome.start + coord_log_latency_;
    ++counters_.coord_log_commands;
    if (metrics_ != nullptr) metrics_->counter("svc.coord.log_commands").add();
  }
  outcome.completion = outcome.start + service_time;
  outcome.sojourn = outcome.completion - job.arrival;
  server_free_ = outcome.completion;
  horizon_ = rmax(horizon_, outcome.completion);
  queue_.push(outcome.completion);
  pending_sojourns_.push_back(outcome.sojourn);
  counters_.depth_max = queue_.depth_max();
  if (metrics_ != nullptr) {
    metrics_->counter("svc.admitted").add();
    metrics_->gauge("svc.queue_depth").set(static_cast<std::int64_t>(queue_.depth()));
  }
  return outcome;
}

void BroadcastService::drain_until(const Rational& t) {
  retire(queue_.retire_until(t));
}

ServiceReport BroadcastService::drain() {
  retire(queue_.retire_all());
  POSTAL_CHECK(pending_sojourns_.empty());
  POSTAL_CHECK(counters_.admitted == counters_.completed);
  POSTAL_CHECK(counters_.generated == counters_.admitted + counters_.shed);

  ServiceReport report;
  report.counters = counters_;
  report.horizon = horizon_;
  report.sojourn_total = sojourn_total_;
  report.sojourn_max = sojourn_max_;
  report.sojourn_grid = options_.sojourn_grid;
  report.histogram_bits = options_.histogram_bits;
  if (histogram_.count() > 0) {
    report.p50_ticks = histogram_.quantile(1, 2);
    report.p99_ticks = histogram_.quantile(99, 100);
    report.p999_ticks = histogram_.quantile(999, 1000);
    report.p50 = Rational(static_cast<std::int64_t>(report.p50_ticks),
                          options_.sojourn_grid);
    report.p99 = Rational(static_cast<std::int64_t>(report.p99_ticks),
                          options_.sojourn_grid);
    report.p999 = Rational(static_cast<std::int64_t>(report.p999_ticks),
                           options_.sojourn_grid);
  }
  if (counters_.completed > 0 && Rational(0) < horizon_) {
    report.throughput =
        Rational(static_cast<std::int64_t>(counters_.completed)) / horizon_;
  }
  if (options_.keep_sojourns) report.sojourns = sojourns_;
  if (options_.coord_ranks > 0) {
    report.coord_ranks = options_.coord_ranks;
    report.coord_leader = coord_leader_;
    report.coord_window_start = coord_window_start_;
    report.coord_window_end = coord_window_end_;
    report.coord_log = options_.coord_log;
    report.coord_log_latency = coord_log_latency_;
  }
  if (metrics_ != nullptr) metrics_->rational("svc.horizon").add(horizon_);
  return report;
}

std::string ServiceReport::to_json() const {
  std::ostringstream os;
  os << "{\"spec\":\"" << json_escape(spec) << "\"";
  os << ",\"seed\":" << seed;
  os << ",\"generated\":" << counters.generated;
  os << ",\"admitted\":" << counters.admitted;
  os << ",\"shed\":" << counters.shed;
  os << ",\"completed\":" << counters.completed;
  os << ",\"depth_max\":" << counters.depth_max;
  os << ",\"planned_oracle\":" << counters.planned_oracle;
  os << ",\"planned_materialized\":" << counters.planned_materialized;
  os << ",\"planned_registry\":" << counters.planned_registry;
  os << ",\"exec_runs\":" << counters.exec_runs;
  os << ",\"exec_verified\":" << counters.exec_verified;
  os << ",\"exec_faulted\":" << counters.exec_faulted;
  os << ",\"exec_retransmissions\":" << counters.exec_retransmissions;
  os << ",\"exec_repairs\":" << counters.exec_repairs;
  os << ",\"exec_crashed\":" << counters.exec_crashed;
  os << ",\"sojourn_grid\":" << sojourn_grid;
  os << ",\"histogram_bits\":" << histogram_bits;
  os << ",\"sojourn_offgrid\":" << counters.sojourn_offgrid;
  os << ",\"sojourn_total\":\"" << sojourn_total.str() << "\"";
  os << ",\"sojourn_max\":\"" << sojourn_max.str() << "\"";
  os << ",\"horizon\":\"" << horizon.str() << "\"";
  os << ",\"p50_ticks\":" << p50_ticks;
  os << ",\"p99_ticks\":" << p99_ticks;
  os << ",\"p999_ticks\":" << p999_ticks;
  os << ",\"p50\":\"" << p50.str() << "\"";
  os << ",\"p99\":\"" << p99.str() << "\"";
  os << ",\"p999\":\"" << p999.str() << "\"";
  os << ",\"throughput\":\"" << throughput.str() << "\"";
  if (coord_ranks > 0) {
    // Coordinator routing block: strictly conditional so coord-off reports
    // (every golden artifact predating the feature) stay byte-identical.
    os << ",\"coord_ranks\":" << coord_ranks;
    os << ",\"coord_leader\":" << coord_leader;
    os << ",\"coord_elections\":" << counters.coord_elections;
    os << ",\"coord_failovers\":" << counters.coord_failovers;
    os << ",\"coord_deferred\":" << counters.coord_deferred;
    os << ",\"coord_window_start\":\"" << coord_window_start.str() << "\"";
    os << ",\"coord_window_end\":\"" << coord_window_end.str() << "\"";
    if (coord_log) {
      // Log-routing block: conditional inside the coord block for the
      // same reason -- log-off coord reports keep their exact bytes.
      os << ",\"coord_log_commands\":" << counters.coord_log_commands;
      os << ",\"coord_log_latency\":\"" << coord_log_latency.str() << "\"";
    }
  }
  os << "}";
  std::string out = os.str();
  if (const auto error = obs::json_lint(out)) {
    throw LogicError("ServiceReport::to_json produced malformed JSON: " + *error);
  }
  return out;
}

ServiceReport run_service(const WorkloadSpec& spec, std::uint64_t seed,
                          const ServiceOptions& options,
                          obs::MetricsRegistry* metrics) {
  ServiceOptions opts = options;
  if (opts.sojourn_grid == 1) {
    if (const auto folded = spec.sojourn_grid()) opts.sojourn_grid = *folded;
  }
  WorkloadGenerator generator(spec, seed);
  BroadcastService service(opts, metrics);
  while (auto job = generator.next()) {
    static_cast<void>(service.submit(*job));
  }
  ServiceReport report = service.drain();
  report.spec = spec.to_string();
  report.seed = seed;
  return report;
}

}  // namespace postal::svc
