#include "obs/trace_export.hpp"

#include <sstream>

#include "obs/json_lint.hpp"
#include "sim/json.hpp"
#include "support/error.hpp"

namespace postal::obs {
namespace {

// Accumulates trace_event objects and renders the enclosing JSON object.
class TraceWriter {
 public:
  explicit TraceWriter(const ChromeTraceOptions& options) : options_(options) {
    events_.precision(15);  // "ts" doubles must survive large timelines
  }

  void thread_names(std::uint64_t n, const char* prefix) {
    if (!options_.thread_names) return;
    for (std::uint64_t p = 0; p < n; ++p) {
      begin() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << p
              << ",\"args\":{\"name\":\"" << prefix << p << "\"}}";
    }
  }

  /// One complete ("ph":"X") event covering [start, start + length) model
  /// time on track `tid`; `args_json` is a preformatted JSON object body.
  void duration(const std::string& name, std::uint64_t tid, const Rational& start,
                const Rational& length, const std::string& args_json) {
    begin() << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"pid\":0"
            << ",\"tid\":" << tid
            << ",\"ts\":" << start.to_double() * options_.micros_per_unit
            << ",\"dur\":" << length.to_double() * options_.micros_per_unit
            << ",\"args\":{" << args_json << "}}";
  }

  /// One instant ("ph":"i", thread scope) marker at model time `at` on
  /// track `tid`.
  void instant(const std::string& name, std::uint64_t tid, const Rational& at,
               const std::string& args_json) {
    begin() << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"i\",\"s\":\"t\""
            << ",\"pid\":0,\"tid\":" << tid
            << ",\"ts\":" << at.to_double() * options_.micros_per_unit
            << ",\"args\":{" << args_json << "}}";
  }

  /// Render, lint, and return the finished document.
  [[nodiscard]] std::string finish() {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    out += events_.str();
    out += "]}";
    if (const auto err = json_lint(out)) {
      throw LogicError("chrome trace exporter produced invalid JSON: " + *err);
    }
    return out;
  }

 private:
  std::ostringstream& begin() {
    if (!first_) events_ << ",";
    first_ = false;
    return events_;
  }

  ChromeTraceOptions options_;
  std::ostringstream events_;
  bool first_ = true;
};

// Shared by the Trace and Schedule exporters: both reduce to a list of
// (src, dst, msg, send_start) sends under a common lambda.
void emit_send(TraceWriter& writer, ProcId src, ProcId dst, MsgId msg,
               const Rational& start, const Rational& lambda) {
  const std::string id = "M" + std::to_string(msg + 1);
  std::ostringstream args;
  args << "\"msg\":" << msg << ",\"t\":\"" << start.str() << "\"";
  writer.duration("send " + id + " -> p" + std::to_string(dst), src, start,
                  Rational(1), args.str() + ",\"dst\":" + std::to_string(dst));
  const Rational recv_start = start + lambda - Rational(1);
  writer.duration("recv " + id + " <- p" + std::to_string(src), dst, recv_start,
                  Rational(1), args.str() + ",\"src\":" + std::to_string(src));
}

// Marker names per fault kind; the affected processor's track hosts the
// event, the other endpoint rides in "args".
const char* fault_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kSendSuppressed: return "send suppressed (dead)";
    case FaultEvent::Kind::kDropCrash: return "drop (receiver dead)";
    case FaultEvent::Kind::kDropLoss: return "drop (link loss)";
    case FaultEvent::Kind::kSpike: return "latency spike";
  }
  return "fault";
}

void emit_faults(TraceWriter& writer, const FaultStats& faults) {
  for (const FaultEvent& e : faults.events) {
    std::ostringstream args;
    args << "\"t\":\"" << e.time.str() << "\"";
    if (e.peer != e.proc) args << ",\"peer\":" << e.peer;
    writer.instant(fault_name(e.kind), e.proc, e.time, args.str());
  }
}

}  // namespace

std::string trace_to_chrome_json(const Trace& trace, const PostalParams& params,
                                 const ChromeTraceOptions& options) {
  TraceWriter writer(options);
  writer.thread_names(trace.n(), "p");
  for (const Delivery& d : trace.deliveries()) {
    emit_send(writer, d.src, d.dst, d.msg, d.send_start, params.lambda());
  }
  return writer.finish();
}

std::string trace_to_chrome_json(const Trace& trace, const PostalParams& params,
                                 const FaultStats& faults,
                                 const ChromeTraceOptions& options) {
  TraceWriter writer(options);
  writer.thread_names(trace.n(), "p");
  for (const Delivery& d : trace.deliveries()) {
    emit_send(writer, d.src, d.dst, d.msg, d.send_start, params.lambda());
  }
  emit_faults(writer, faults);
  return writer.finish();
}

std::string trace_to_chrome_json(const Trace& trace, const PostalParams& params,
                                 const FaultStats& faults,
                                 const std::vector<TraceMarker>& markers,
                                 const ChromeTraceOptions& options) {
  TraceWriter writer(options);
  writer.thread_names(trace.n(), "p");
  for (const Delivery& d : trace.deliveries()) {
    emit_send(writer, d.src, d.dst, d.msg, d.send_start, params.lambda());
  }
  emit_faults(writer, faults);
  for (const TraceMarker& m : markers) {
    std::string args = "\"t\":\"" + m.time.str() + "\"";
    if (!m.args_json.empty()) args += "," + m.args_json;
    writer.instant(m.name, m.proc, m.time, args);
  }
  return writer.finish();
}

std::string schedule_to_chrome_json(const Schedule& schedule,
                                    const PostalParams& params,
                                    const ChromeTraceOptions& options) {
  TraceWriter writer(options);
  writer.thread_names(params.n(), "p");
  for (const SendEvent& e : schedule.events()) {
    emit_send(writer, e.src, e.dst, e.msg, e.t, params.lambda());
  }
  return writer.finish();
}

std::string net_to_chrome_json(const std::vector<NetDelivery>& deliveries,
                               std::uint64_t n, const ChromeTraceOptions& options) {
  TraceWriter writer(options);
  writer.thread_names(n, "node");
  for (const NetDelivery& d : deliveries) {
    std::ostringstream args;
    args << "\"src\":" << d.src << ",\"msg\":" << d.msg << ",\"requested\":\""
         << d.requested.str() << "\",\"delivered\":\"" << d.delivered.str() << "\"";
    writer.duration(
        "packet M" + std::to_string(d.msg + 1) + " <- node" + std::to_string(d.src),
        d.dst, d.requested, d.delivered - d.requested, args.str());
  }
  return writer.finish();
}

}  // namespace postal::obs
