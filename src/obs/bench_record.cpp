#include "obs/bench_record.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "obs/json_lint.hpp"
#include "sim/json.hpp"
#include "support/error.hpp"

namespace postal::obs {

std::string bench_record_to_json(const BenchRecord& record) {
  const std::uint64_t threads_hw =
      record.threads_hw != 0
          ? record.threads_hw
          : std::max<std::uint64_t>(1, std::thread::hardware_concurrency());
  std::ostringstream os;
  os.precision(15);
  os << "{\"bench\":\"" << json_escape(record.bench) << "\",\"n\":" << record.n
     << ",\"lambda\":\"" << record.lambda.str() << "\",\"m\":" << record.m
     << ",\"makespan\":\"" << record.makespan.str()
     << "\",\"makespan_float\":" << record.makespan.to_double()
     << ",\"wall_ms\":" << record.wall_ms << ",\"verdict\":\""
     << json_escape(record.verdict) << "\",\"threads_hw\":" << threads_hw
     << ",\"extra\":{";
  bool first = true;
  for (const auto& [key, value] : record.extra) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  os << "}}";
  std::string out = os.str();
  if (const auto err = json_lint(out)) {
    throw LogicError("bench record serialized to invalid JSON: " + *err);
  }
  return out;
}

void write_bench_record(const std::string& path, const BenchRecord& record) {
  std::ofstream out(path, std::ios::app);
  POSTAL_REQUIRE(out.good(), "write_bench_record: cannot open '" + path + "'");
  out << bench_record_to_json(record) << "\n";
}

bool emit_bench_record(const BenchRecord& record) {
  const char* path = std::getenv("POSTAL_BENCH_JSON");
  if (path == nullptr || *path == '\0') return false;
  // The records are an opt-in side channel: a misconfigured path must not
  // turn a finished MATCHES PAPER run into an abort. Warn and carry on --
  // consumers that require records (scripts/check.sh) detect the gap.
  try {
    write_bench_record(path, record);
  } catch (const std::exception& e) {
    std::cerr << "warning: POSTAL_BENCH_JSON: " << e.what()
              << " (record dropped)\n";
    return false;
  }
  return true;
}

}  // namespace postal::obs
