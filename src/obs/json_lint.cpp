#include "obs/json_lint.hpp"

#include <cctype>
#include <sstream>

namespace postal::obs {
namespace {

// Recursive-descent checker over the RFC 8259 grammar. Tracks only a
// cursor; builds nothing.
class Linter {
 public:
  explicit Linter(const std::string& text) : text_(text) {}

  std::optional<std::string> run() {
    skip_ws();
    if (!value()) return error_;
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return error_;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool value() {
    if (++depth_ > kMaxDepth) return fail("nesting deeper than 256 levels");
    bool ok = false;
    if (pos_ >= text_.size()) {
      ok = fail("expected a JSON value, got end of input");
    } else {
      switch (text_[pos_]) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        default: ok = number(); break;
      }
    }
    --depth_;
    return ok;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected '\"' to start an object key");
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)])) == 0) {
              return fail("\\u needs four hex digits");
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return fail("invalid escape sequence");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (std::isdigit(peek_uc()) == 0) return fail("expected a JSON value");
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (std::isdigit(peek_uc()) != 0) ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(peek_uc()) == 0) return fail("digit required after '.'");
      while (std::isdigit(peek_uc()) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(peek_uc()) == 0) return fail("digit required in exponent");
      while (std::isdigit(peek_uc()) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *w) {
        return fail(std::string("expected '") + word + "'");
      }
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  [[nodiscard]] unsigned char peek_uc() const {
    return static_cast<unsigned char>(peek());
  }

  bool fail(const std::string& what) {
    if (!error_.has_value()) {
      std::ostringstream os;
      os << "offset " << pos_ << ": " << what;
      error_ = os.str();
    }
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::optional<std::string> error_;
};

}  // namespace

std::optional<std::string> json_lint(const std::string& text) {
  return Linter(text).run();
}

std::optional<std::string> jsonl_lint(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (const auto err = json_lint(line)) {
      std::ostringstream os;
      os << "line " << lineno << ": " << *err;
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace postal::obs
