#include "obs/instrument.hpp"

namespace postal::obs {

void record_machine_stats(MetricsRegistry& registry, const MachineStats& stats,
                          const std::string& prefix) {
  registry.counter(prefix + ".events_processed").add(stats.events_processed);
  registry.counter(prefix + ".sends_enqueued").add(stats.sends_enqueued);
  registry.counter(prefix + ".sends_deferred").add(stats.sends_deferred);
  registry.gauge(prefix + ".max_fifo_depth")
      .set(static_cast<std::int64_t>(stats.max_fifo_depth));
  RationalAccum& total = registry.rational(prefix + ".port_busy.total");
  for (std::size_t p = 0; p < stats.port_busy.size(); ++p) {
    registry.rational(prefix + ".port_busy.p" + std::to_string(p))
        .add(stats.port_busy[p]);
    total.add(stats.port_busy[p]);
  }
}

void record_net_stats(MetricsRegistry& registry, const NetRunStats& stats,
                      const std::string& prefix) {
  registry.counter(prefix + ".packets_delivered").add(stats.packets_delivered);
  registry.counter(prefix + ".hops_total").add(stats.hops_total);
  registry.counter(prefix + ".jitter_draws").add(stats.jitter_draws);
  registry.rational(prefix + ".egress_busy").add(stats.egress_busy_total);
  registry.rational(prefix + ".ingress_busy").add(stats.ingress_busy_total);
  registry.rational(prefix + ".makespan").add(stats.makespan);
  RationalAccum& total = registry.rational(prefix + ".wire_busy.total");
  for (const WireUse& use : stats.wires) {
    registry
        .rational(prefix + ".wire_busy.w" + std::to_string(use.from) + "_" +
                  std::to_string(use.to))
        .add(use.busy);
    total.add(use.busy);
  }
}

void record_sim_report(MetricsRegistry& registry, const SimReport& report,
                       const std::string& prefix) {
  registry.gauge(prefix + ".ok").set(report.ok ? 1 : 0);
  registry.counter(prefix + ".violations").add(report.violations.size());
  registry.gauge(prefix + ".order_preserving").set(report.order_preserving ? 1 : 0);
  registry.rational(prefix + ".makespan").add(report.makespan);
}

void record_par_run(MetricsRegistry& registry, const ParRunInfo& info,
                    const std::string& prefix) {
  registry.gauge(prefix + ".parallel_engine").set(info.parallel_engine ? 1 : 0);
  registry.gauge(prefix + ".shards").set(static_cast<std::int64_t>(info.shards));
  registry.counter(prefix + ".windows").add(info.windows);
  registry.counter(prefix + ".barrier_events").add(info.barrier_events);
  registry.counter(prefix + ".cross_shard_events").add(info.cross_shard_events);
  registry.counter(prefix + ".replayed_pops").add(info.replayed_pops);
  registry.counter(prefix + ".merge_deliveries").add(info.merge_deliveries);
  registry.counter(prefix + ".merge_fault_events").add(info.merge_fault_events);
  registry.counter(prefix + ".flush_runs").add(info.flush_runs);
  registry.counter(prefix + ".flush_fallback_sorts").add(info.flush_fallback_sorts);
  registry.counter(prefix + ".arena_growths").add(info.arena_growths);
  record_trace_mode(registry, info.trace_mode, prefix);
  for (std::size_t s = 0; s < info.shard.size(); ++s) {
    const std::string base = prefix + ".shard" + std::to_string(s);
    registry.counter(base + ".pops").add(info.shard[s].pops);
    registry.counter(base + ".stalled_windows").add(info.shard[s].stalled_windows);
    registry.counter(base + ".mailbox_in").add(info.shard[s].mailbox_in);
  }
}

void record_trace_mode(MetricsRegistry& registry, TraceMode mode,
                       const std::string& prefix) {
  registry.gauge(prefix + ".trace_mode")
      .set(mode == TraceMode::kCounters ? 1 : 0);
}

void record_fault_stats(MetricsRegistry& registry, const FaultStats& stats,
                        const std::string& prefix) {
  registry.counter(prefix + ".crashes").add(stats.crashes_applied);
  registry.counter(prefix + ".sends_suppressed").add(stats.sends_suppressed);
  registry.counter(prefix + ".drops_crash").add(stats.drops_crash);
  registry.counter(prefix + ".drops_loss").add(stats.drops_loss);
  registry.counter(prefix + ".spikes").add(stats.spikes_applied);
  registry.counter(prefix + ".total").add(stats.total());
}

}  // namespace postal::obs
