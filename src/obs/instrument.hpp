// Bridges from the instrumented layers' native stats structs into the
// metrics registry. The hot layers (sim/machine, net/packet_sim) collect
// plain structs with zero dependencies on this library; these helpers give
// the numbers their canonical metric names (the schema contract of
// docs/OBSERVABILITY.md) in one place.
#pragma once

#include <string>

#include "net/packet_sim.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/validator.hpp"

namespace postal::obs {

/// Fold one machine run into `registry` under `prefix`:
///   <prefix>.events_processed, .sends_enqueued, .sends_deferred  (counter)
///   <prefix>.max_fifo_depth                                      (gauge)
///   <prefix>.port_busy.p<i>  per processor, .port_busy.total     (rational)
void record_machine_stats(MetricsRegistry& registry, const MachineStats& stats,
                          const std::string& prefix = "machine");

/// Fold one packet-network run into `registry` under `prefix`:
///   <prefix>.packets_delivered, .hops_total, .jitter_draws       (counter)
///   <prefix>.egress_busy, .ingress_busy, .makespan               (rational)
///   <prefix>.wire_busy.w<from>_<to>  per used wire, .wire_busy.total
/// Per-wire *utilization* is wire busy / makespan; the registry keeps the
/// exact numerator and denominator rather than a rounded quotient.
void record_net_stats(MetricsRegistry& registry, const NetRunStats& stats,
                      const std::string& prefix = "net");

/// Fold a validation report into `registry` under `prefix`:
///   <prefix>.ok (gauge 0/1), <prefix>.violations (counter),
///   <prefix>.order_preserving (gauge 0/1), <prefix>.makespan (rational).
void record_sim_report(MetricsRegistry& registry, const SimReport& report,
                       const std::string& prefix = "validate");

/// Fold one ParMachine run's introspection into `registry` under `prefix`:
///   <prefix>.parallel_engine (gauge 0/1), .shards (gauge),
///   <prefix>.windows, .barrier_events, .cross_shard_events,
///   <prefix>.replayed_pops, .merge_deliveries, .merge_fault_events,
///   <prefix>.flush_runs, .flush_fallback_sorts, .arena_growths  (counter)
///   <prefix>.trace_mode (gauge: 0 = kFull, 1 = kCounters)
///   <prefix>.shard<s>.pops, .shard<s>.stalled_windows,
///   <prefix>.shard<s>.mailbox_in  per shard                     (counter)
/// The stalled-window counters are the deterministic barrier-stall signal
/// (docs/SIMULATION.md): a shard that popped nothing all window sat at the
/// barrier for it. Wall-clock split (window_ms/merge_ms) is left out of
/// the registry -- it varies run to run; read it off ParRunInfo directly.
void record_par_run(MetricsRegistry& registry, const ParRunInfo& info,
                    const std::string& prefix = "par");

/// Record the trace retention mode an engine is configured with:
///   <prefix>.trace_mode (gauge: 0 = TraceMode::kFull, 1 = kCounters).
void record_trace_mode(MetricsRegistry& registry, TraceMode mode,
                       const std::string& prefix = "sim");

/// Fold the faults applied during one run (Machine or PacketNetwork) into
/// `registry` under `prefix`:
///   <prefix>.crashes, .sends_suppressed, .drops_crash, .drops_loss,
///   <prefix>.spikes, .total                                     (counter)
/// All zero -- and the timeline empty -- for fault-free runs.
void record_fault_stats(MetricsRegistry& registry, const FaultStats& stats,
                        const std::string& prefix = "faults");

}  // namespace postal::obs
