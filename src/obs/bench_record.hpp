// Machine-readable bench results: the BENCH_postal.json trajectory.
//
// Every bench binary historically printed a free-text table plus a
// MATCHES PAPER / MISMATCH verdict; the only machine-readable artifact was
// the exit code. A BenchRecord is the structured version of that verdict:
// one JSON object per bench headline result, appended as a line to the
// file named by the POSTAL_BENCH_JSON environment variable (unset = emit
// nothing, so default bench output is byte-identical to before).
//
//   POSTAL_BENCH_JSON=BENCH_postal.json ./build/bench/bench_fig1_tree
//
// appends
//
//   {"bench":"bench_fig1_tree","n":14,"lambda":"5/2","m":1,
//    "makespan":"15/2","makespan_float":7.5,"wall_ms":0.41,
//    "verdict":"MATCHES PAPER","extra":{}}
//
// The seven keys {bench, n, lambda, makespan, wall_ms, verdict,
// threads_hw} are the stable contract (scripts/check.sh validates them);
// "extra" carries bench-specific labels. threads_hw records the runner's
// hardware concurrency, so trajectory comparisons can tell a genuine
// speedup regression from a record produced on a smaller machine (the
// multi-core guards in scripts/compare_trajectory.py key off it). See
// docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "support/rational.hpp"

namespace postal::obs {

/// Steady-clock stopwatch for a bench's wall_ms field: starts at
/// construction, read with elapsed_ms().
class WallClock {
 public:
  WallClock() noexcept : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const noexcept {
    const auto dt = std::chrono::steady_clock::now() - start_;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
           1e6;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One bench's headline result.
struct BenchRecord {
  std::string bench;      ///< binary name, e.g. "bench_fig1_tree"
  std::uint64_t n = 0;    ///< processors of the headline instance
  Rational lambda{1};     ///< latency of the headline instance
  std::uint64_t m = 1;    ///< messages broadcast (1 for single-message)
  Rational makespan;      ///< measured completion time (exact)
  double wall_ms = 0.0;   ///< wall-clock of the bench's measured section
  std::string verdict;    ///< "MATCHES PAPER", "CONSISTENT", "MISMATCH", ...
  /// Hardware concurrency of the runner. 0 (the default) means "fill in
  /// std::thread::hardware_concurrency() at serialization time"; set it
  /// explicitly only to pin a value in tests.
  std::uint64_t threads_hw = 0;
  /// Additional bench-specific key/value labels ("algorithm": "PIPELINE").
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Serialize to one JSON object (no trailing newline). Lints its own
/// output; throws LogicError if it would be malformed.
[[nodiscard]] std::string bench_record_to_json(const BenchRecord& record);

/// Append `record` as one JSON line to `path`. Throws InvalidArgument if
/// the file cannot be opened for appending.
void write_bench_record(const std::string& path, const BenchRecord& record);

/// Append `record` to the file named by the POSTAL_BENCH_JSON environment
/// variable. No-op (returns false) when the variable is unset or empty;
/// returns true when a record was written. An unwritable path warns on
/// stderr and returns false instead of throwing -- the records are an
/// opt-in side channel and must never crash a finished bench.
bool emit_bench_record(const BenchRecord& record);

}  // namespace postal::obs
