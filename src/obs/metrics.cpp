#include "obs/metrics.hpp"

#include <sstream>

#include "support/error.hpp"

namespace postal::obs {
namespace {

// Metric names are caller-controlled identifiers; escape the few JSON
// specials anyway so a stray quote can never corrupt a snapshot. (The full
// string escaper lives in sim/json.hpp, above this library in the layering.)
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += (static_cast<unsigned char>(c) < 0x20) ? '?' : c;
  }
  return out;
}

enum Kind { kCounter = 0, kGauge, kRational, kTimer };

}  // namespace

void MetricsRegistry::require_unique(const std::string& name, int kind) const {
  const bool clash = (kind != kCounter && counters_.count(name) != 0) ||
                     (kind != kGauge && gauges_.count(name) != 0) ||
                     (kind != kRational && rationals_.count(name) != 0) ||
                     (kind != kTimer && timers_.count(name) != 0);
  POSTAL_REQUIRE(!clash,
                 "MetricsRegistry: metric '" + name + "' already has another kind");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  require_unique(name, kCounter);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  require_unique(name, kGauge);
  return gauges_[name];
}

RationalAccum& MetricsRegistry::rational(const std::string& name) {
  require_unique(name, kRational);
  return rationals_[name];
}

Timer& MetricsRegistry::timer(const std::string& name) {
  require_unique(name, kTimer);
  return timers_[name];
}

std::size_t MetricsRegistry::size() const noexcept {
  return counters_.size() + gauges_.size() + rationals_.size() + timers_.size();
}

std::string MetricsRegistry::to_jsonl() const {
  // Merge the four sorted maps into one name-sorted stream.
  std::map<std::string, std::string> lines;
  for (const auto& [name, c] : counters_) {
    std::ostringstream os;
    os << "{\"metric\":\"" << escape(name) << "\",\"kind\":\"counter\",\"value\":"
       << c.value() << "}";
    lines[name] = os.str();
  }
  for (const auto& [name, g] : gauges_) {
    std::ostringstream os;
    os << "{\"metric\":\"" << escape(name) << "\",\"kind\":\"gauge\",\"value\":"
       << g.value() << ",\"max\":" << g.max() << "}";
    lines[name] = os.str();
  }
  for (const auto& [name, r] : rationals_) {
    std::ostringstream os;
    os << "{\"metric\":\"" << escape(name) << "\",\"kind\":\"rational\",\"value\":\""
       << r.total().str() << "\",\"value_float\":" << r.total().to_double() << "}";
    lines[name] = os.str();
  }
  for (const auto& [name, t] : timers_) {
    std::ostringstream os;
    os << "{\"metric\":\"" << escape(name) << "\",\"kind\":\"timer\",\"ns\":"
       << t.total_ns() << ",\"count\":" << t.count() << ",\"ms\":" << t.total_ms()
       << "}";
    lines[name] = os.str();
  }
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace postal::obs
