// Streaming percentile accumulation for the service layer: an HDR-style
// log-bucketed histogram over integer tick values (docs/SERVICE.md,
// docs/OBSERVABILITY.md).
//
// The broadcast service records one sojourn latency per completed job --
// up to millions per run -- and must report p50/p99/p999 without holding
// the full value list. A LatencyHistogram buckets values the way HDR
// histograms do: values below 2^precision_bits land in exact unit buckets,
// and every larger value lands in a bucket of relative width 2^-bits, so
// the histogram is O(64 * 2^bits) memory no matter how many values are
// recorded.
//
// Certified error bound (the contract tests/svc/percentile_test.cpp and
// E25 enforce): counts are exact, so the histogram selects the *same
// nearest-rank element* as an exact reference over the full value list.
// The reported quantile is that element's bucket upper bound, hence for
// the true nearest-rank value v:
//
//     v <= quantile(p) <= v + floor(v * 2^-bits)
//
// (exact equality whenever v < 2^(bits+1): those buckets have width 1).
// There is no rank error, only this bounded value rounding -- which is why
// the certification test can use a hard inequality, not a tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace postal::obs {

/// Exact-count, bounded-relative-error histogram over uint64 values.
class LatencyHistogram {
 public:
  /// Bucket precision: relative value error is at most 2^-bits. Throws
  /// InvalidArgument unless 1 <= bits <= 20 (memory is O(64 * 2^bits)).
  explicit LatencyHistogram(unsigned bits = 7);

  [[nodiscard]] unsigned precision_bits() const noexcept { return bits_; }

  /// Record one value.
  void record(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Smallest / largest recorded value (exact; 0 if empty).
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  /// Mean of all recorded values (exact 128-bit sum; lossy division for
  /// reporting only). 0 if empty.
  [[nodiscard]] double mean() const noexcept;

  /// The nearest-rank p-quantile with p = num/den in [0, 1]: the bucket
  /// upper bound of the element at rank ceil(p * count) (rank clamped to
  /// [1, count]). Throws InvalidArgument if den == 0, num > den, or the
  /// histogram is empty. p = 1 reports max() exactly.
  [[nodiscard]] std::uint64_t quantile(std::uint64_t num, std::uint64_t den) const;

  /// Fold `other` into this histogram. Precision bits must match.
  void merge(const LatencyHistogram& other);

 private:
  [[nodiscard]] std::size_t index_of(std::uint64_t value) const noexcept;
  [[nodiscard]] std::uint64_t upper_of(std::size_t index) const noexcept;

  unsigned bits_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  __extension__ unsigned __int128 sum_ = 0;
  std::vector<std::uint64_t> buckets_;  ///< grown on demand, index_of order
};

/// The exact nearest-rank p-quantile of `sorted` (ascending), p = num/den
/// in [0, 1]: the element at rank ceil(p * n) clamped to [1, n]. This is
/// the reference the histogram's bound is certified against. Throws
/// InvalidArgument if den == 0, num > den, or `sorted` is empty.
[[nodiscard]] std::uint64_t exact_quantile(const std::vector<std::uint64_t>& sorted,
                                           std::uint64_t num, std::uint64_t den);

}  // namespace postal::obs
