// Chrome trace_event export: turn a postal run into a file that
// chrome://tracing and Perfetto render as a per-processor timeline.
//
// The mapping (documented in docs/OBSERVABILITY.md):
//   * one track (tid) per processor, all under pid 0, named "p<i>" via
//     thread_name metadata events;
//   * one complete duration event ("ph":"X") per port-occupancy window:
//       send window    [t, t+1)            on the sender's track,
//       receive window [t+lambda-1, t+lambda) on the receiver's track;
//   * model time unit -> micros_per_unit microseconds of trace time
//     (default 1000, i.e. one postal unit renders as 1 ms). The "ts"/"dur"
//     fields are lossy doubles as the format requires; the exact Rational
//     times ride along in each event's "args".
//
// A run with zero deliveries (broadcast with n = 1 never sends) exports a
// valid trace containing only metadata events -- the same convention as
// Trace::makespan() == 0 for the empty trace.
//
// Every exporter lints its own output (obs/json_lint.hpp) and throws
// LogicError on failure, so a malformed trace can never reach disk.
#pragma once

#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "model/params.hpp"
#include "net/packet_sim.hpp"
#include "sched/schedule.hpp"
#include "sim/trace.hpp"

namespace postal::obs {

/// Export knobs.
struct ChromeTraceOptions {
  double micros_per_unit = 1000.0;  ///< trace microseconds per model unit
  bool thread_names = true;         ///< emit "p<i>" thread_name metadata
};

/// Export a simulation trace (all deliveries) as a Chrome trace JSON
/// object: {"displayTimeUnit":"ms","traceEvents":[...]}.
[[nodiscard]] std::string trace_to_chrome_json(const Trace& trace,
                                               const PostalParams& params,
                                               const ChromeTraceOptions& options = {});

/// Same, overlaying the faults a run applied as instant events ("ph":"i")
/// on the affected processor's track: crashes, suppressed sends, dropped
/// deliveries (dead receiver / link loss), and latency spikes, each at its
/// exact model time with the peer in "args". Perfetto renders them as
/// markers on the timeline next to the send/receive windows they voided.
[[nodiscard]] std::string trace_to_chrome_json(const Trace& trace,
                                               const PostalParams& params,
                                               const FaultStats& faults,
                                               const ChromeTraceOptions& options = {});

/// A protocol-level annotation overlaid on a trace as an instant marker:
/// coordination runs use these for view changes, elections, suspicions and
/// decisions (src/coord/metrics.hpp builds them from a report's events).
struct TraceMarker {
  std::string name;       ///< marker label, e.g. "view-change v3"
  std::uint64_t proc = 0; ///< track (processor) hosting the marker
  Rational time;          ///< exact model time
  std::string args_json;  ///< preformatted JSON object body ("" = none)
};

/// Same as the fault overlay, additionally rendering `markers` as instant
/// events on their processors' tracks -- the coordination view-change
/// overlay (docs/COORDINATION.md).
[[nodiscard]] std::string trace_to_chrome_json(const Trace& trace,
                                               const PostalParams& params,
                                               const FaultStats& faults,
                                               const std::vector<TraceMarker>& markers,
                                               const ChromeTraceOptions& options = {});

/// Export a schedule directly (send windows [t, t+1), receive windows
/// [t+lambda-1, t+lambda) derived from each event). Same format as above.
[[nodiscard]] std::string schedule_to_chrome_json(
    const Schedule& schedule, const PostalParams& params,
    const ChromeTraceOptions& options = {});

/// Export packet-network deliveries: one duration event per packet on the
/// destination node's track, spanning requested -> delivered (the
/// end-to-end latency a postal send experiences on real wires).
[[nodiscard]] std::string net_to_chrome_json(
    const std::vector<NetDelivery>& deliveries, std::uint64_t n,
    const ChromeTraceOptions& options = {});

}  // namespace postal::obs
