// The observability core: a lightweight, dependency-free metrics registry.
//
// The paper's algorithms are event-driven; their interesting run-time
// quantities (port occupancy, queue depth, wire utilization, wall-clock
// cost of planning/validation) are exactly what the simulators in src/sim
// and src/net compute but never used to surface. The registry gives them a
// place to land, in three exactness classes:
//
//   Counter         -- monotone uint64 (events processed, sends queued);
//   Gauge           -- int64 with a high-water mark (FIFO depth);
//   RationalAccum   -- exact postal::Rational sums (port busy *model time*,
//                      never floats: accumulated busy windows stay on the
//                      1/q grid and tests assert equality with ==);
//   Timer           -- wall-clock nanoseconds (the only real-time class;
//                      planning and validation cost, via ScopedTimer).
//
// Snapshots serialize to JSON lines (one metric per line, names sorted) so
// downstream tooling can diff runs without a parser more complex than
// "read a line, parse an object". See docs/OBSERVABILITY.md for the schema.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "support/rational.hpp"

namespace postal::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  /// Increase by `by` (default 1).
  void add(std::uint64_t by = 1) noexcept { value_ += by; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A level that moves up and down; remembers the highest level ever set.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    if (v > max_) max_ = v;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  /// High-water mark over all set() calls (0 if never set above 0).
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// An exact accumulator of model-time quantities (postal::Rational).
class RationalAccum {
 public:
  void add(const Rational& dt) { total_ += dt; }
  [[nodiscard]] const Rational& total() const noexcept { return total_; }

 private:
  Rational total_;
};

/// A wall-clock duration accumulator (nanoseconds + sample count).
class Timer {
 public:
  void add_ns(std::uint64_t ns) noexcept {
    total_ns_ += ns;
    ++count_;
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Total in milliseconds (lossy; reporting only).
  [[nodiscard]] double total_ms() const noexcept {
    return static_cast<double>(total_ns_) / 1e6;
  }

 private:
  std::uint64_t total_ns_ = 0;
  std::uint64_t count_ = 0;
};

/// Named metrics of one run. Metric objects are created on first access and
/// live as long as the registry; repeated access by the same name returns
/// the same object. A name may be used with only one metric kind (a second
/// kind under the same name throws InvalidArgument).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  RationalAccum& rational(const std::string& name);
  Timer& timer(const std::string& name);

  /// Number of metrics registered so far (all kinds).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialize every metric as one JSON object per line, sorted by name:
  ///   {"metric":"machine.events","kind":"counter","value":27}
  ///   {"metric":"machine.port_busy.p0","kind":"rational","value":"15/2",
  ///    "value_float":7.5}
  ///   {"metric":"machine.fifo_depth","kind":"gauge","value":0,"max":3}
  ///   {"metric":"sim.validate","kind":"timer","ns":81250,"count":1,
  ///    "ms":0.08125}
  /// The trailing line has a newline too (the output is a complete JSONL
  /// document; empty registries serialize to the empty string).
  [[nodiscard]] std::string to_jsonl() const;

 private:
  // std::map keeps to_jsonl() deterministic (sorted by name) and never
  // invalidates references on insert, so handed-out metric refs stay valid.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, RationalAccum> rationals_;
  std::map<std::string, Timer> timers_;

  void require_unique(const std::string& name, int kind) const;
};

/// RAII wall-clock probe: measures from construction to destruction on the
/// steady clock and adds the elapsed nanoseconds to `timer`. Intended for
/// timing schedule generation and validation:
///
///   { ScopedTimer t(reg.timer("sched.generate"));
///     schedule = bcast_schedule(params, fib); }
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer) noexcept
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_.add_ns(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace postal::obs
