#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace postal::obs {

LatencyHistogram::LatencyHistogram(unsigned bits) : bits_(bits) {
  if (bits < 1 || bits > 20) {
    throw InvalidArgument("LatencyHistogram: precision bits must be in [1, 20], got " +
                          std::to_string(bits));
  }
}

std::size_t LatencyHistogram::index_of(std::uint64_t value) const noexcept {
  // Values below 2^bits get exact unit buckets [0, 2^bits). Larger values:
  // with k = bit_width(value) - 1 >= bits, the top (bits+1) significant
  // bits select a bucket of width 2^(k-bits); consecutive half-octaves of
  // 2^bits buckets each are laid out contiguously after the unit range.
  const auto width = static_cast<unsigned>(std::bit_width(value));
  if (width <= bits_) return static_cast<std::size_t>(value);
  const unsigned shift = width - 1U - bits_;
  const auto sub = static_cast<std::size_t>(value >> shift);  // in [2^bits, 2^(bits+1))
  const std::size_t base = static_cast<std::size_t>(shift) << bits_;
  return base + sub;
}

std::uint64_t LatencyHistogram::upper_of(std::size_t index) const noexcept {
  const std::size_t unit = std::size_t{1} << bits_;
  if (index < unit * 2) return static_cast<std::uint64_t>(index);
  const unsigned shift = static_cast<unsigned>(index >> bits_) - 1U;
  const std::uint64_t sub = static_cast<std::uint64_t>(index) - (static_cast<std::uint64_t>(shift) << bits_);
  // Largest value mapping to this bucket: (sub+1) << shift, minus 1.
  return ((sub + 1) << shift) - 1;
}

void LatencyHistogram::record(std::uint64_t value) {
  const std::size_t idx = index_of(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

double LatencyHistogram::mean() const noexcept {
  if (count_ == 0) return 0.0;
  // Split the 128-bit sum to avoid precision loss on the cast.
  const auto hi = static_cast<std::uint64_t>(sum_ >> 64);
  const auto lo = static_cast<std::uint64_t>(sum_);
  const double total = static_cast<double>(hi) * 18446744073709551616.0 + static_cast<double>(lo);
  return total / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile(std::uint64_t num, std::uint64_t den) const {
  if (den == 0) throw InvalidArgument("LatencyHistogram::quantile: zero denominator");
  if (num > den) throw InvalidArgument("LatencyHistogram::quantile: p > 1");
  if (count_ == 0) throw InvalidArgument("LatencyHistogram::quantile: empty histogram");
  // rank = ceil(p * count), clamped to [1, count]. Exact in 128 bits.
  __extension__ unsigned __int128 prod =
      static_cast<unsigned __int128>(num) * static_cast<unsigned __int128>(count_);
  auto rank = static_cast<std::uint64_t>((prod + den - 1) / den);
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The max bucket's upper bound may overshoot max(); clamp so p=1 is
      // exact and no reported quantile exceeds an actually-recorded value
      // range.
      return std::min(upper_of(i), max_);
    }
  }
  return max_;  // unreachable: seen reaches count_ >= rank
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.bits_ != bits_) {
    throw InvalidArgument("LatencyHistogram::merge: precision mismatch");
  }
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

std::uint64_t exact_quantile(const std::vector<std::uint64_t>& sorted, std::uint64_t num,
                             std::uint64_t den) {
  if (den == 0) throw InvalidArgument("exact_quantile: zero denominator");
  if (num > den) throw InvalidArgument("exact_quantile: p > 1");
  if (sorted.empty()) throw InvalidArgument("exact_quantile: empty sample");
  POSTAL_REQUIRE(std::is_sorted(sorted.begin(), sorted.end()),
                 "exact_quantile: sample must be sorted ascending");
  const auto n = static_cast<std::uint64_t>(sorted.size());
  __extension__ unsigned __int128 prod =
      static_cast<unsigned __int128>(num) * static_cast<unsigned __int128>(n);
  auto rank = static_cast<std::uint64_t>((prod + den - 1) / den);
  rank = std::clamp<std::uint64_t>(rank, 1, n);
  return sorted[static_cast<std::size_t>(rank - 1)];
}

}  // namespace postal::obs
