// A strict, dependency-free JSON syntax checker (RFC 8259 grammar, no DOM).
//
// Everything the observability layer emits -- metric snapshots, Chrome
// traces, bench records -- claims to be JSON; this linter is how the claim
// is enforced. The exporters lint their own output before writing it (a
// malformed trace would otherwise only be discovered inside Perfetto), the
// golden tests lint every emitted document, and scripts/check.sh leans on
// the same guarantee. It validates syntax only: no schema, no key
// uniqueness, no size limits beyond a recursion cap.
#pragma once

#include <optional>
#include <string>

namespace postal::obs {

/// Check that `text` is exactly one well-formed JSON value (object, array,
/// string, number, true/false/null) plus optional surrounding whitespace.
/// Returns nullopt on success, else a message with the byte offset of the
/// first error ("offset 17: expected ':' after object key").
[[nodiscard]] std::optional<std::string> json_lint(const std::string& text);

/// Lint newline-separated JSON documents (the metrics/bench JSONL format):
/// every non-empty line must be well-formed on its own. Returns nullopt on
/// success, else the first failing line's number and error.
[[nodiscard]] std::optional<std::string> jsonl_lint(const std::string& text);

}  // namespace postal::obs
