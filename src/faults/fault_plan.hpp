// Deterministic fault injection: the plan data model.
//
// The paper's MPS(n, lambda) is perfectly reliable; one crashed relay in
// the generalized Fibonacci tree silently orphans its whole subtree. A
// FaultPlan makes that scenario -- and message loss and latency spikes --
// expressible as *pure data*: no callbacks, no wall-clock, nothing that
// could differ between two runs. Both simulators (sim/machine, net/
// packet_sim) accept a plan via attach_faults(); executing the same plan
// twice produces bitwise-identical traces, and attaching no plan leaves
// the simulators on their historical code path (regression-tested to be
// byte-identical).
//
// The three fault classes, with exact semantics (docs/FAULTS.md):
//
//   CrashFault    -- processor `proc` halts at exact Rational `time`: it
//                    performs no send whose port slot starts at t >= time
//                    and completes no receive whose arrival is >= time.
//                    Messages it sent before crashing still arrive.
//   LinkLoss      -- each transmission on the directed link src -> dst is
//                    dropped with probability `p` (a seeded Bernoulli
//                    draw; the k-th transmission on a link draws a value
//                    determined only by (seed, src, dst, k), so draws are
//                    independent of event interleaving). `max_losses`
//                    bounds the total drops on the link (0 = unbounded);
//                    a bounded burst is the "fair lossy link" assumption
//                    reliable broadcast needs -- no protocol can beat an
//                    adversary that eats every retransmission.
//   LatencySpike  -- a send whose transmission starts in [from, until)
//                    takes lambda + extra instead of lambda to arrive.
//
// A plan is JSON-serializable (fault_plan_to_json / parse_fault_plan) so
// the CLI can run `postal_cli faults ... --plan plan.json`, and seeded
// random plans (random_fault_plan) drive the chaos suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/params.hpp"
#include "support/rational.hpp"

namespace postal {

/// Processor `proc` halts at exact time `time` (>= 0).
struct CrashFault {
  ProcId proc = 0;
  Rational time;

  friend bool operator==(const CrashFault&, const CrashFault&) = default;
};

/// Seeded Bernoulli loss on the directed link src -> dst.
struct LinkLoss {
  ProcId src = 0;
  ProcId dst = 0;
  Rational p;                    ///< loss probability in [0, 1]
  std::uint64_t max_losses = 0;  ///< cap on drops for this link; 0 = unbounded

  friend bool operator==(const LinkLoss&, const LinkLoss&) = default;
};

/// Sends starting in [from, until) incur `extra` additional latency.
struct LatencySpike {
  Rational from;
  Rational until;
  Rational extra;

  friend bool operator==(const LatencySpike&, const LatencySpike&) = default;
};

/// A complete, self-contained fault scenario. Pure data; every simulator
/// behavior under a plan is a deterministic function of (plan, workload).
struct FaultPlan {
  std::uint64_t seed = 0;  ///< drives the Bernoulli loss draws
  std::vector<CrashFault> crashes;
  std::vector<LinkLoss> losses;
  std::vector<LatencySpike> spikes;

  /// True iff the plan injects nothing (attaching it must be a no-op).
  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && losses.empty() && spikes.empty();
  }

  /// Throws InvalidArgument unless every processor id is < n, every
  /// probability is in [0, 1], every crash time is >= 0, and every spike
  /// window is well-formed (0 <= from < until, extra >= 0).
  void validate(std::uint64_t n) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Serialize to a single JSON object with exact-string rationals, e.g.
///   {"seed":7,"crashes":[{"proc":3,"time":"5/2"}],
///    "losses":[{"src":0,"dst":3,"p":"1/10","max_losses":3}],
///    "spikes":[{"from":"3","until":"6","extra":"2"}]}
/// The output is linted (obs-style) by construction: parse_fault_plan
/// round-trips it exactly.
[[nodiscard]] std::string fault_plan_to_json(const FaultPlan& plan);

/// Parse the JSON form above (a strict subset of JSON: objects, arrays,
/// unsigned integers, and rational strings). Throws InvalidArgument on
/// malformed input or unknown keys.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& json);

/// Knobs for seeded random plan generation.
struct RandomFaultOptions {
  std::uint64_t crashes = 1;   ///< processors to crash (origin 0 is never crashed)
  Rational loss_p{0};          ///< per-link loss probability for chosen links
  std::uint64_t lossy_links = 0;  ///< number of random directed links made lossy
  std::uint64_t max_losses = 3;   ///< per-link loss cap (see LinkLoss); keep it
                                  ///< < the reliable protocol's max_attempts so
                                  ///< every live processor is reachable
  Rational crash_window{0};    ///< crash times drawn uniformly from the grid
                               ///< [0, crash_window]; 0 = derive from f_lambda(n)
  std::uint64_t spikes = 0;    ///< latency-spike windows to generate
};

/// Generate a reproducible random plan for MPS(params.n(), params.lambda()):
/// `seed` fully determines the result. Crash times land on the lambda grid
/// (multiples of 1/q) inside the window so they interleave exactly with
/// event times; processor 0 (the broadcast origin) is never crashed.
[[nodiscard]] FaultPlan random_fault_plan(const PostalParams& params,
                                          std::uint64_t seed,
                                          const RandomFaultOptions& options = {});

}  // namespace postal
