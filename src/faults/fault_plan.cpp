#include "faults/fault_plan.hpp"

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <sstream>
#include <utility>

#include "model/genfib.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace postal {

void FaultPlan::validate(std::uint64_t n) const {
  for (const CrashFault& c : crashes) {
    POSTAL_REQUIRE(c.proc < n, "FaultPlan: crash processor out of range");
    POSTAL_REQUIRE(c.time >= Rational(0), "FaultPlan: crash time must be >= 0");
  }
  for (const LinkLoss& l : losses) {
    POSTAL_REQUIRE(l.src < n && l.dst < n, "FaultPlan: loss link out of range");
    POSTAL_REQUIRE(l.src != l.dst, "FaultPlan: loss link src == dst");
    POSTAL_REQUIRE(l.p >= Rational(0) && l.p <= Rational(1),
                   "FaultPlan: loss probability must be in [0, 1]");
  }
  for (const LatencySpike& s : spikes) {
    POSTAL_REQUIRE(s.from >= Rational(0) && s.from < s.until,
                   "FaultPlan: spike window must satisfy 0 <= from < until");
    POSTAL_REQUIRE(s.extra >= Rational(0), "FaultPlan: spike extra must be >= 0");
  }
}

namespace {

void append_rational(std::ostringstream& oss, const Rational& r) {
  oss << '"' << r.str() << '"';
}

}  // namespace

std::string fault_plan_to_json(const FaultPlan& plan) {
  std::ostringstream oss;
  oss << "{\"seed\":" << plan.seed << ",\"crashes\":[";
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    if (i) oss << ',';
    oss << "{\"proc\":" << plan.crashes[i].proc << ",\"time\":";
    append_rational(oss, plan.crashes[i].time);
    oss << '}';
  }
  oss << "],\"losses\":[";
  for (std::size_t i = 0; i < plan.losses.size(); ++i) {
    if (i) oss << ',';
    oss << "{\"src\":" << plan.losses[i].src << ",\"dst\":" << plan.losses[i].dst
        << ",\"p\":";
    append_rational(oss, plan.losses[i].p);
    oss << ",\"max_losses\":" << plan.losses[i].max_losses << '}';
  }
  oss << "],\"spikes\":[";
  for (std::size_t i = 0; i < plan.spikes.size(); ++i) {
    if (i) oss << ',';
    oss << "{\"from\":";
    append_rational(oss, plan.spikes[i].from);
    oss << ",\"until\":";
    append_rational(oss, plan.spikes[i].until);
    oss << ",\"extra\":";
    append_rational(oss, plan.spikes[i].extra);
    oss << '}';
  }
  oss << "]}";
  return oss.str();
}

namespace {

/// Minimal recursive-descent parser over the exact shape fault_plan_to_json
/// emits (plus arbitrary whitespace). Not a general JSON parser on purpose:
/// unknown keys are errors, so a typo'd plan file fails loudly instead of
/// silently injecting nothing.
class PlanParser {
 public:
  explicit PlanParser(const std::string& text) : text_(text) {}

  FaultPlan parse() {
    FaultPlan plan;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "seed") {
        plan.seed = parse_uint();
      } else if (key == "crashes") {
        parse_array([&] {
          CrashFault c;
          parse_object({{"proc", [&] { c.proc = parse_proc(); }},
                        {"time", [&] { c.time = parse_rational(); }}});
          plan.crashes.push_back(c);
        });
      } else if (key == "losses") {
        parse_array([&] {
          LinkLoss l;
          parse_object({{"src", [&] { l.src = parse_proc(); }},
                        {"dst", [&] { l.dst = parse_proc(); }},
                        {"p", [&] { l.p = parse_rational(); }},
                        {"max_losses", [&] { l.max_losses = parse_uint(); }}});
          plan.losses.push_back(l);
        });
      } else if (key == "spikes") {
        parse_array([&] {
          LatencySpike s;
          parse_object({{"from", [&] { s.from = parse_rational(); }},
                        {"until", [&] { s.until = parse_rational(); }},
                        {"extra", [&] { s.extra = parse_rational(); }}});
          plan.spikes.push_back(s);
        });
      } else {
        throw InvalidArgument("parse_fault_plan: unknown key '" + key + "'");
      }
    }
    skip_ws();
    POSTAL_REQUIRE(pos_ == text_.size(),
                   "parse_fault_plan: trailing characters after the plan object");
    return plan;
  }

 private:
  using Field = std::pair<std::string, std::function<void()>>;

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw InvalidArgument(std::string("parse_fault_plan: expected '") + c +
                            "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out.push_back(text_[pos_++]);
    expect('"');
    return out;
  }

  std::uint64_t parse_uint() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    POSTAL_REQUIRE(pos_ > start, "parse_fault_plan: expected an unsigned integer");
    return std::stoull(text_.substr(start, pos_ - start));
  }

  ProcId parse_proc() {
    const std::uint64_t v = parse_uint();
    POSTAL_REQUIRE(v <= 0xffffffffULL, "parse_fault_plan: processor id too large");
    return static_cast<ProcId>(v);
  }

  Rational parse_rational() { return Rational::parse(parse_string()); }

  template <typename Fn>
  void parse_array(Fn element) {
    expect('[');
    bool first = true;
    while (!try_consume(']')) {
      if (!first) expect(',');
      first = false;
      element();
    }
  }

  void parse_object(std::initializer_list<Field> fields) {
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      const auto it = std::find_if(fields.begin(), fields.end(),
                                   [&](const Field& f) { return f.first == key; });
      if (it == fields.end()) {
        throw InvalidArgument("parse_fault_plan: unknown key '" + key + "'");
      }
      it->second();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

FaultPlan parse_fault_plan(const std::string& json) {
  return PlanParser(json).parse();
}

FaultPlan random_fault_plan(const PostalParams& params, std::uint64_t seed,
                            const RandomFaultOptions& options) {
  const std::uint64_t n = params.n();
  FaultPlan plan;
  plan.seed = seed;
  Xoshiro256 rng(seed ^ 0xfa010755c0de0000ULL);

  // Crash times are drawn on the lambda grid inside [0, window] so they
  // interleave exactly with the broadcast's own event times. The default
  // window is the fault-free completion time f_lambda(n): crashing after
  // completion is a no-op, so that's where the interesting scenarios live.
  Rational window = options.crash_window;
  if (window == Rational(0)) {
    GenFib fib(params.lambda());
    window = n >= 2 ? fib.f(n) : Rational(1);
  }
  const std::int64_t q = params.lambda().den();
  const std::uint64_t grid_steps =
      static_cast<std::uint64_t>((window * Rational(q)).floor());

  const std::uint64_t crash_count = std::min<std::uint64_t>(
      options.crashes, n > 1 ? n - 1 : 0);  // never crash the origin
  std::vector<bool> crashed(n, false);
  for (std::uint64_t i = 0; i < crash_count; ++i) {
    ProcId victim;
    do {
      victim = static_cast<ProcId>(rng.uniform(1, n - 1));
    } while (crashed[victim]);
    crashed[victim] = true;
    const auto k = static_cast<std::int64_t>(rng.uniform(0, grid_steps));
    plan.crashes.push_back(CrashFault{victim, Rational(k, q)});
  }

  for (std::uint64_t i = 0; i < options.lossy_links && n >= 2; ++i) {
    const auto src = static_cast<ProcId>(rng.uniform(0, n - 1));
    auto dst = static_cast<ProcId>(rng.uniform(0, n - 2));
    if (dst >= src) ++dst;
    plan.losses.push_back(LinkLoss{src, dst, options.loss_p, options.max_losses});
  }

  for (std::uint64_t i = 0; i < options.spikes; ++i) {
    const auto from_k = static_cast<std::int64_t>(rng.uniform(0, grid_steps));
    const auto len_k = static_cast<std::int64_t>(
        rng.uniform(1, std::max<std::uint64_t>(grid_steps, 1)));
    const auto extra_k = static_cast<std::int64_t>(
        rng.uniform(1, 4 * static_cast<std::uint64_t>(q)));
    plan.spikes.push_back(LatencySpike{Rational(from_k, q),
                                       Rational(from_k + len_k, q),
                                       Rational(extra_k, q)});
  }

  std::sort(plan.crashes.begin(), plan.crashes.end(),
            [](const CrashFault& a, const CrashFault& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.proc < b.proc;
            });
  plan.validate(n);
  return plan;
}

}  // namespace postal
