// The runtime side of fault injection: deterministic plan queries plus the
// stats both simulators report.
//
// A FaultInjector is the compiled form of a FaultPlan for a fixed n:
// per-processor earliest crash times, spike windows, and the seeded
// Bernoulli machinery for link loss. The loss draw for the k-th
// transmission on a directed link depends only on (seed, src, dst, k) --
// never on global event order -- so the same workload under the same plan
// always sees the same drops, regardless of how unrelated traffic
// interleaves.
//
// Simulators hold the injector behind a pointer that is null when no plan
// is attached; every fault check is guarded by that null test, which is
// how the fault-free path stays byte-identical to the historical one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "faults/fault_plan.hpp"

namespace postal {

/// One fault the simulator actually applied, for timelines (Chrome trace
/// instant events) and postmortems.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,            ///< processor halted (proc; time = crash time)
    kSendSuppressed,   ///< crashed processor's queued send never left
                       ///< (proc=src, peer=dst)
    kDropCrash,        ///< delivery discarded: receiver dead (proc=dst, peer=src)
    kDropLoss,         ///< delivery discarded: link loss (proc=dst, peer=src)
    kSpike,            ///< send delayed by a latency-spike window (proc=src, peer=dst)
  };
  Kind kind = Kind::kCrash;
  Rational time;
  ProcId proc = 0;
  ProcId peer = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Counters + timeline of the faults applied during one run. Default state
/// (all zero, empty timeline) is what fault-free runs report.
struct FaultStats {
  std::uint64_t crashes_applied = 0;    ///< processors that halted during the run
  std::uint64_t sends_suppressed = 0;   ///< sends voided because the sender was dead
  std::uint64_t drops_crash = 0;        ///< deliveries voided: receiver dead
  std::uint64_t drops_loss = 0;         ///< deliveries voided: Bernoulli link loss
  std::uint64_t spikes_applied = 0;     ///< sends stretched by a spike window
  std::vector<FaultEvent> events;       ///< what happened, in application order

  /// Total faults applied (the `faults_injected` bench-record counter).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return crashes_applied + sends_suppressed + drops_crash + drops_loss +
           spikes_applied;
  }
};

/// Compiled plan queries. Loss draws are stateful (per-link transmission
/// counters); call reset() at the start of each run so identical runs see
/// identical draw sequences.
class FaultInjector {
 public:
  /// Validates the plan against n. Keeps a copy of the plan.
  FaultInjector(FaultPlan plan, std::uint64_t n);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Earliest crash time of `p`, if the plan crashes it at all.
  [[nodiscard]] const std::optional<Rational>& crash_time(ProcId p) const {
    return crash_time_[p];
  }

  /// True iff `p` has halted at time `t` (crash takes effect at its exact
  /// time: crashed(p, crash_time(p)) is true).
  [[nodiscard]] bool crashed(ProcId p, const Rational& t) const {
    const auto& c = crash_time_[p];
    return c.has_value() && t >= *c;
  }

  /// Draw the Bernoulli loss for the next transmission on src -> dst.
  /// Consumes the link's draw counter; deterministic per (plan, k).
  [[nodiscard]] bool lose(ProcId src, ProcId dst);

  /// Sum of `extra` over all spike windows containing `send_start`.
  [[nodiscard]] Rational extra_latency(const Rational& send_start) const;

  /// True iff the plan has any loss entries (lets callers skip the map
  /// lookup entirely on loss-free plans).
  [[nodiscard]] bool has_losses() const noexcept { return !link_.empty(); }
  [[nodiscard]] bool has_spikes() const noexcept { return !plan_.spikes.empty(); }

  /// Reset per-run draw state (loss counters). Crash/spike queries are
  /// stateless and unaffected.
  void reset();

 private:
  struct LinkState {
    std::uint64_t threshold_hi = 0;  ///< draw < threshold => lost (2^64 scale)
    bool always = false;             ///< p == 1
    std::uint64_t max_losses = 0;    ///< 0 = unbounded
    std::uint64_t sent = 0;          ///< transmissions drawn so far
    std::uint64_t lost = 0;          ///< losses applied so far
  };

  FaultPlan plan_;
  std::uint64_t n_;
  std::vector<std::optional<Rational>> crash_time_;
  std::unordered_map<std::uint64_t, LinkState> link_;  ///< key = src * n + dst
};

}  // namespace postal
