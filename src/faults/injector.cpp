#include "faults/injector.hpp"

#include "support/prng.hpp"

namespace postal {

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t n)
    : plan_(std::move(plan)), n_(n), crash_time_(n) {
  plan_.validate(n);
  for (const CrashFault& c : plan_.crashes) {
    auto& slot = crash_time_[c.proc];
    if (!slot.has_value() || c.time < *slot) slot = c.time;
  }
  for (const LinkLoss& l : plan_.losses) {
    LinkState state;
    state.always = l.p == Rational(1);
    if (!state.always && l.p.num() > 0) {
      // threshold = floor(p * 2^64): draw u < threshold <=> loss, exactly.
      __extension__ using U128 = unsigned __int128;
      const auto num = static_cast<U128>(l.p.num());
      const auto den = static_cast<U128>(l.p.den());
      state.threshold_hi = static_cast<std::uint64_t>((num << 64) / den);
    }
    state.max_losses = l.max_losses;
    // Later entries for the same link override earlier ones (documented in
    // docs/FAULTS.md; keeps plans composable by concatenation).
    link_[l.src * n_ + l.dst] = state;
  }
}

bool FaultInjector::lose(ProcId src, ProcId dst) {
  const auto it = link_.find(static_cast<std::uint64_t>(src) * n_ + dst);
  if (it == link_.end()) return false;
  LinkState& state = it->second;
  const std::uint64_t k = state.sent++;
  if (state.max_losses != 0 && state.lost >= state.max_losses) return false;
  bool lost;
  if (state.always) {
    lost = true;
  } else if (state.threshold_hi == 0) {
    lost = false;
  } else {
    // One SplitMix64 step keyed by (seed, src, dst, k): draw order across
    // links cannot matter because each link's k-th draw is self-contained.
    SplitMix64 mix(plan_.seed ^ (static_cast<std::uint64_t>(src) << 40) ^
                   (static_cast<std::uint64_t>(dst) << 20) ^ k);
    lost = mix.next() < state.threshold_hi;
  }
  if (lost) ++state.lost;
  return lost;
}

Rational FaultInjector::extra_latency(const Rational& send_start) const {
  Rational extra(0);
  for (const LatencySpike& s : plan_.spikes) {
    if (send_start >= s.from && send_start < s.until) extra += s.extra;
  }
  return extra;
}

void FaultInjector::reset() {
  for (auto& [key, state] : link_) {
    state.sent = 0;
    state.lost = 0;
  }
}

}  // namespace postal
