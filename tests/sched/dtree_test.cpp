// Tests for Algorithm DTREE (Section 4.3): model validity, order
// preservation, Lemma 18's upper bound, the line/star special cases, and
// the degree discussion.
#include "sched/dtree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "model/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

struct DTreeCase {
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t d;
  Rational lambda;
};

class DTreeSweep : public ::testing::TestWithParam<DTreeCase> {};

TEST_P(DTreeSweep, ValidOrderPreservingAndWithinLemma18) {
  const auto& [n, m, d, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = dtree_schedule(params, m, d);
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  const SimReport report = validate_schedule(s, params, options);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  // Exact completion equals the analytic tree walk...
  EXPECT_EQ(report.makespan, predict_dtree(params, m, d));
  // ...and stays within Lemma 18's bound.
  EXPECT_LE(report.makespan, lemma18_dtree_upper(lambda, n, m, d));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DTreeSweep,
    ::testing::Values(
        DTreeCase{2, 1, 1, Rational(2)}, DTreeCase{10, 4, 1, Rational(5, 2)},
        DTreeCase{10, 4, 2, Rational(5, 2)}, DTreeCase{10, 4, 3, Rational(5, 2)},
        DTreeCase{10, 4, 9, Rational(5, 2)}, DTreeCase{64, 8, 2, Rational(1)},
        DTreeCase{64, 8, 4, Rational(3)}, DTreeCase{100, 1, 5, Rational(4)},
        DTreeCase{31, 16, 2, Rational(3, 2)}, DTreeCase{81, 3, 3, Rational(7, 2)},
        DTreeCase{128, 2, 7, Rational(6)}, DTreeCase{17, 9, 4, Rational(9, 4)},
        DTreeCase{256, 5, 15, Rational(2)}, DTreeCase{33, 7, 32, Rational(5)}),
    [](const ::testing::TestParamInfo<DTreeCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_m" + std::to_string(pinfo.param.m) +
             "_d" + std::to_string(pinfo.param.d) + "_lam" +
             std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

TEST(DTree, LineExactCompletion) {
  // d = 1: T = (m-1) + lambda*(n-1), exactly.
  const PostalParams params(6, Rational(5, 2));
  EXPECT_EQ(predict_dtree(params, 4, 1), Rational(3) + Rational(5, 2) * Rational(5));
}

TEST(DTree, StarExactCompletion) {
  // d = n-1: root sends m*(n-1) messages back to back; the last leaves at
  // m*(n-1) - 1 and arrives lambda later.
  const PostalParams params(6, Rational(5, 2));
  EXPECT_EQ(predict_dtree(params, 3, 5),
            Rational(3 * 5 - 1) + Rational(5, 2));
}

TEST(DTree, SingleProcessorEmpty) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(dtree_schedule(params, 3, 1).empty());
  EXPECT_EQ(predict_dtree(params, 3, 1), Rational(0));
}

TEST(DTree, RejectsBadArguments) {
  const PostalParams params(8, Rational(2));
  POSTAL_EXPECT_THROW(dtree_schedule(params, 0, 2), InvalidArgument);
  POSTAL_EXPECT_THROW(dtree_schedule(params, 2, 0), InvalidArgument);
  POSTAL_EXPECT_THROW(dtree_schedule(params, 2, 8), InvalidArgument);
}

TEST(DTree, RecommendedDegreeIsCeilLambdaPlusOne) {
  EXPECT_EQ(dtree_recommended_degree(PostalParams(100, Rational(5, 2))), 4u);
  EXPECT_EQ(dtree_recommended_degree(PostalParams(100, Rational(3))), 4u);
  EXPECT_EQ(dtree_recommended_degree(PostalParams(100, Rational(1))), 2u);
  // Clamped to n-1.
  EXPECT_EQ(dtree_recommended_degree(PostalParams(4, Rational(10))), 3u);
  EXPECT_EQ(dtree_recommended_degree(PostalParams(2, Rational(10))), 1u);
}

TEST(DTree, LineWinsForManyMessages) {
  // Section 4.3: d = 1 is near-optimal when m -> infinity (fixed n, lambda).
  const PostalParams params(16, Rational(2));
  const std::uint64_t m = 512;
  const Rational line = predict_dtree(params, m, 1);
  const Rational star = predict_dtree(params, m, 15);
  const Rational binary = predict_dtree(params, m, 2);
  EXPECT_LT(line, star);
  EXPECT_LT(line, binary);
}

TEST(DTree, StarWinsForHugeLatency) {
  // Section 4.3: d = n-1 is near-optimal when lambda -> infinity.
  const PostalParams params(16, Rational(1000));
  const std::uint64_t m = 2;
  const Rational star = predict_dtree(params, m, 15);
  const Rational line = predict_dtree(params, m, 1);
  const Rational binary = predict_dtree(params, m, 2);
  EXPECT_LT(star, line);
  EXPECT_LT(star, binary);
}

TEST(DTree, RecommendedDegreeWithinThreeXForFewMessages) {
  // Section 4.3: for m <= log n / log(ceil(lambda)+1), DTREE with
  // d = ceil(lambda)+1 is within a factor 3 of optimal.
  for (const Rational lambda : {Rational(2), Rational(5, 2), Rational(4)}) {
    for (std::uint64_t n : {64ULL, 256ULL, 1024ULL}) {
      const PostalParams params(n, lambda);
      GenFib fib(lambda);
      const double logn = std::log2(static_cast<double>(n));
      const double base = std::log2(static_cast<double>(lambda.ceil()) + 1.0);
      const auto m_max = static_cast<std::uint64_t>(logn / base);
      for (std::uint64_t m = 1; m <= m_max; ++m) {
        const Rational t = predict_dtree(params, m, dtree_recommended_degree(params));
        const Rational lower = lemma8_lower(fib, n, m);
        EXPECT_LE(t.to_double(), 3.0 * lower.to_double() + 1e-9)
            << "lambda=" << lambda.str() << " n=" << n << " m=" << m;
      }
    }
  }
}

TEST(DTree, RegistryCoversAllAlgorithms) {
  const PostalParams params(20, Rational(5, 2));
  for (const MultiAlgo algo : all_multi_algos()) {
    const Schedule s = make_multi_schedule(algo, params, 3);
    ValidatorOptions options;
    options.messages = 3;
    const SimReport report = validate_schedule(s, params, options);
    ASSERT_TRUE(report.ok) << algo_name(algo) << ": " << report.summary();
    EXPECT_TRUE(report.order_preserving) << algo_name(algo);
    EXPECT_EQ(report.makespan, predict_multi(algo, params, 3)) << algo_name(algo);
    EXPECT_FALSE(algo_name(algo).empty());
  }
}

TEST(DTree, RegistryPredictionsRespectLemma8) {
  const PostalParams params(64, Rational(2));
  GenFib fib(params.lambda());
  const Rational lower = lemma8_lower(fib, 64, 6);
  for (const MultiAlgo algo : all_multi_algos()) {
    EXPECT_GE(predict_multi(algo, params, 6), lower) << algo_name(algo);
  }
}


TEST(LeveledTree, MatchesUniformDaryWhenDegreesConstant) {
  // leveled(n, {d}) and dary(n, d) are the same tree.
  for (std::uint64_t n : {2ULL, 10ULL, 33ULL}) {
    for (std::uint64_t d : {1ULL, 2ULL, 3ULL}) {
      if (n >= 2 && d > n - 1) continue;
      const BroadcastTree a = BroadcastTree::leveled(n, {d});
      const BroadcastTree b = BroadcastTree::dary(n, d);
      for (ProcId p = 0; p < n; ++p) {
        EXPECT_EQ(a.children(p), b.children(p)) << "n=" << n << " d=" << d;
      }
    }
  }
}

TEST(LeveledTree, PerLevelDegreesShapeTheTree) {
  // degrees {3, 1}: root has 3 children, everything below is a chain.
  const BroadcastTree t = BroadcastTree::leveled(10, {3, 1});
  EXPECT_EQ(t.children(0).size(), 3u);
  for (ProcId p = 1; p < 10; ++p) {
    EXPECT_LE(t.children(p).size(), 1u) << "p=" << p;
  }
  EXPECT_EQ(t.depth_histogram()[1], 3u);
}

TEST(LeveledTree, RejectsBadDegrees) {
  POSTAL_EXPECT_THROW(BroadcastTree::leveled(5, {}), InvalidArgument);
  POSTAL_EXPECT_THROW(BroadcastTree::leveled(5, {0}), InvalidArgument);
}

TEST(TreeMulticast, MatchesDtreeScheduleOnUniformTrees) {
  for (const Rational lambda : {Rational(2), Rational(5, 2)}) {
    const PostalParams params(20, lambda);
    for (std::uint64_t d : {1ULL, 3ULL, 19ULL}) {
      const BroadcastTree tree = BroadcastTree::dary(20, d);
      const Schedule a = tree_multicast_schedule(params, 4, tree);
      const Schedule b = dtree_schedule(params, 4, d);
      EXPECT_EQ(a.events(), b.events()) << "d=" << d;
    }
  }
}

TEST(TreeMulticast, LeveledTreesAreModelValid) {
  const PostalParams params(30, Rational(5, 2));
  for (const std::vector<std::uint64_t>& degrees :
       {std::vector<std::uint64_t>{4, 2}, {2, 4}, {6, 1}, {1, 5}}) {
    const BroadcastTree tree = BroadcastTree::leveled(30, degrees);
    const Schedule s = tree_multicast_schedule(params, 5, tree);
    ValidatorOptions options;
    options.messages = 5;
    const SimReport report = validate_schedule(s, params, options);
    ASSERT_TRUE(report.ok) << report.summary();
    EXPECT_TRUE(report.order_preserving);
    EXPECT_EQ(report.makespan, predict_tree_multicast(params, 5, tree));
  }
}

TEST(LeveledAuto, NeverWorseThanAnyUniformDegree) {
  for (const Rational lambda : {Rational(2), Rational(8)}) {
    for (std::uint64_t n : {16ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      for (std::uint64_t m : {1ULL, 4ULL, 16ULL}) {
        const LeveledPlan plan = leveled_dtree_auto(params, m);
        for (std::uint64_t d = 1; d <= n - 1; d = d * 2) {
          EXPECT_LE(plan.completion, predict_dtree(params, m, d) + Rational(0))
              << "n=" << n << " m=" << m << " d=" << d
              << " (leveled search includes all power-of-two uniforms)";
        }
        EXPECT_LE(plan.completion,
                  predict_dtree(params, m, dtree_recommended_degree(params)));
      }
    }
  }
}

TEST(LeveledAuto, BeatsEveryUniformDegreeSomewhere) {
  // The per-level freedom must pay off at least at one grid point: a fat
  // root level feeding thin sub-trees (or vice versa) can beat all
  // uniform-degree trees.
  bool strictly_better_somewhere = false;
  for (const Rational lambda : {Rational(2), Rational(4), Rational(8)}) {
    for (std::uint64_t n : {32ULL, 64ULL, 128ULL}) {
      const PostalParams params(n, lambda);
      for (std::uint64_t m : {1ULL, 2ULL, 8ULL}) {
        const LeveledPlan plan = leveled_dtree_auto(params, m);
        Rational best_uniform;
        bool first = true;
        for (std::uint64_t d = 1; d <= n - 1; ++d) {
          const Rational t = predict_dtree(params, m, d);
          if (first || t < best_uniform) best_uniform = t;
          first = false;
        }
        EXPECT_LE(plan.completion, best_uniform);
        if (plan.completion < best_uniform) strictly_better_somewhere = true;
      }
    }
  }
  EXPECT_TRUE(strictly_better_somewhere);
}

}  // namespace
}  // namespace postal
