// Tests for BroadcastTree: structure validation, the builders (fibonacci /
// binomial / dary), greedy scheduling, and Figure 1's tree shape.
#include "sched/broadcast_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(BroadcastTree, ValidatesTreeStructure) {
  // A valid 3-node chain.
  EXPECT_NO_THROW(BroadcastTree(0, {{1}, {2}, {}}));
  // Node informed twice.
  EXPECT_THROW(BroadcastTree(0, {{1, 1}, {}, {2}}), InvalidArgument);
  // Unreached node.
  EXPECT_THROW(BroadcastTree(0, {{1}, {}, {}}), InvalidArgument);
  // Child id out of range.
  EXPECT_THROW(BroadcastTree(0, {{5}}), InvalidArgument);
  // Root out of range.
  EXPECT_THROW(BroadcastTree(9, {{1}, {}}), InvalidArgument);
  // Cycle back to root.
  EXPECT_THROW(BroadcastTree(0, {{1}, {0}}), InvalidArgument);
}

TEST(BroadcastTree, SingleNode) {
  const BroadcastTree t(0, {{}});
  EXPECT_EQ(t.n(), 1u);
  EXPECT_EQ(t.completion_time(Rational(3)), Rational(0));
  EXPECT_TRUE(t.greedy_schedule(Rational(3)).empty());
}

TEST(BroadcastTree, ParentsAreConsistent) {
  const BroadcastTree t(0, {{2, 1}, {}, {3}, {}});
  EXPECT_EQ(t.parent(0), 0u);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 0u);
  EXPECT_EQ(t.parent(3), 2u);
}

TEST(BroadcastTree, DepthsFollowEdges) {
  const BroadcastTree t(0, {{1, 2}, {3}, {}, {}});
  const auto d = t.depths();
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 1u);
  EXPECT_EQ(d[3], 2u);
}

TEST(BroadcastTree, DaryLayoutIsLeftToRightAlmostFull) {
  const BroadcastTree t = BroadcastTree::dary(10, 3);
  EXPECT_EQ(t.children(0), (std::vector<ProcId>{1, 2, 3}));
  EXPECT_EQ(t.children(1), (std::vector<ProcId>{4, 5, 6}));
  EXPECT_EQ(t.children(2), (std::vector<ProcId>{7, 8, 9}));
  EXPECT_TRUE(t.children(3).empty());
  EXPECT_EQ(t.max_degree(), 3u);
}

TEST(BroadcastTree, DaryLineAndStar) {
  const BroadcastTree line = BroadcastTree::dary(5, 1);
  for (ProcId p = 0; p + 1 < 5; ++p) {
    EXPECT_EQ(line.children(p), (std::vector<ProcId>{p + 1}));
  }
  const BroadcastTree star = BroadcastTree::dary(5, 4);
  EXPECT_EQ(star.children(0).size(), 4u);
  for (ProcId p = 1; p < 5; ++p) EXPECT_TRUE(star.children(p).empty());
}

TEST(BroadcastTree, DaryRejectsBadDegree) {
  POSTAL_EXPECT_THROW(BroadcastTree::dary(5, 0), InvalidArgument);
  POSTAL_EXPECT_THROW(BroadcastTree::dary(5, 5), InvalidArgument);
  EXPECT_NO_THROW(BroadcastTree::dary(1, 99));  // any d for a single node
}

TEST(BroadcastTree, BinomialEqualsFibonacciAtLambdaOne) {
  for (std::uint64_t n : {2ULL, 5ULL, 16ULL, 31ULL}) {
    const BroadcastTree a = BroadcastTree::binomial(n);
    const BroadcastTree b = BroadcastTree::fibonacci(n, Rational(1));
    for (ProcId p = 0; p < n; ++p) {
      EXPECT_EQ(a.children(p), b.children(p)) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BroadcastTree, BinomialCompletionIsCeilLog2AtLambdaOne) {
  for (std::uint64_t n = 2; n <= 64; ++n) {
    const BroadcastTree t = BroadcastTree::binomial(n);
    GenFib fib(Rational(1));
    EXPECT_EQ(t.completion_time(Rational(1)), fib.f(n)) << "n=" << n;
  }
}

TEST(BroadcastTree, Figure1Shape) {
  const BroadcastTree t = BroadcastTree::fibonacci(14, Rational(5, 2));
  EXPECT_EQ(t.children(0).front(), 9u);
  EXPECT_EQ(t.completion_time(Rational(5, 2)), Rational(15, 2));
  const auto informed = t.inform_times(Rational(5, 2));
  EXPECT_EQ(informed[9], Rational(5, 2));
  EXPECT_EQ(informed[0], Rational(0));
}

TEST(BroadcastTree, FromScheduleRoundTrips) {
  const PostalParams params(20, Rational(5, 2));
  const Schedule s = bcast_schedule(params);
  const BroadcastTree t = BroadcastTree::from_schedule(s, 20);
  const Schedule regenerated = t.greedy_schedule(Rational(5, 2));
  ASSERT_EQ(regenerated.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(regenerated.events()[i], s.events()[i]) << "event " << i;
  }
}

TEST(BroadcastTree, FromScheduleRejectsDoubleReceive) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 1, 0, Rational(1));
  EXPECT_THROW(BroadcastTree::from_schedule(s, 2), InvalidArgument);
}

TEST(BroadcastTree, FromScheduleRejectsRootReceive) {
  Schedule s;
  s.add(1, 0, 0, Rational(0));
  EXPECT_THROW(BroadcastTree::from_schedule(s, 2), InvalidArgument);
}

TEST(BroadcastTree, FromScheduleRejectsMultiMessage) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 1, 1, Rational(1));
  EXPECT_THROW(BroadcastTree::from_schedule(s, 2), InvalidArgument);
}

TEST(BroadcastTree, GreedyScheduleInformTimesMatch) {
  const BroadcastTree t = BroadcastTree::dary(13, 3);
  const Rational lambda(7, 4);
  const auto informed = t.inform_times(lambda);
  const Schedule s = t.greedy_schedule(lambda);
  for (const SendEvent& e : s.events()) {
    EXPECT_EQ(informed[e.dst], e.t + lambda);
    EXPECT_GE(e.t, informed[e.src]);
  }
}

TEST(BroadcastTree, RenderContainsEveryNode) {
  const BroadcastTree t = BroadcastTree::fibonacci(8, Rational(2));
  const std::string out = t.render(Rational(2));
  for (ProcId p = 0; p < 8; ++p) {
    EXPECT_NE(out.find("p" + std::to_string(p)), std::string::npos);
  }
}

TEST(BroadcastTree, StarCompletionGrowsLinearly) {
  const BroadcastTree star = BroadcastTree::dary(10, 9);
  // Root sends at 0..8; last child informed at 8 + lambda.
  EXPECT_EQ(star.completion_time(Rational(5, 2)), Rational(8) + Rational(5, 2));
}

TEST(BroadcastTree, LineCompletionIsPathLatency) {
  const BroadcastTree line = BroadcastTree::dary(6, 1);
  EXPECT_EQ(line.completion_time(Rational(3)), Rational(15));
}

}  // namespace
}  // namespace postal
