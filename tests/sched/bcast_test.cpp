// Tests for Algorithm BCAST (Section 3): correctness (Lemma 3), exact
// running time (Lemma 4 + Theorem 6), and model validity across a sweep of
// (n, lambda), all checked through the independent validator.
#include "sched/bcast.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(Bcast, SingleProcessorIsEmpty) {
  const PostalParams params(1, Rational(3));
  EXPECT_TRUE(bcast_schedule(params).empty());
  GenFib fib(Rational(3));
  EXPECT_EQ(predict_bcast(fib, 1), Rational(0));
}

TEST(Bcast, TwoProcessorsOneSend) {
  const PostalParams params(2, Rational(5, 2));
  const Schedule s = bcast_schedule(params);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.events()[0], (SendEvent{0, 1, 0, Rational(0)}));
  GenFib fib(Rational(5, 2));
  EXPECT_EQ(predict_bcast(fib, 2), Rational(5, 2));
}

TEST(Bcast, MismatchedGenFibRejected) {
  const PostalParams params(4, Rational(2));
  GenFib wrong(Rational(3));
  POSTAL_EXPECT_THROW(bcast_schedule(params, wrong), InvalidArgument);
}

TEST(Bcast, EveryProcessorSendsExactlyOnceToNewTarget) {
  const PostalParams params(50, Rational(5, 2));
  const Schedule s = bcast_schedule(params);
  // Exactly n-1 sends (each processor receives exactly once).
  EXPECT_EQ(s.size(), params.n() - 1);
  std::vector<bool> received(params.n(), false);
  for (const SendEvent& e : s.events()) {
    EXPECT_FALSE(received[e.dst]);
    received[e.dst] = true;
  }
  EXPECT_FALSE(received[0]);
}

TEST(Bcast, Figure1ExactEventSequence) {
  // The first sends of the paper's Figure 1 run.
  const PostalParams params(14, Rational(5, 2));
  const Schedule s = bcast_schedule(params);
  EXPECT_EQ(s.events()[0], (SendEvent{0, 9, 0, Rational(0)}));
  // p0 recurses on [0, 9): next split of 9 at t = 1.
  EXPECT_EQ(s.events()[1].src, 0u);
  EXPECT_EQ(s.events()[1].t, Rational(1));
}

struct SweepCase {
  std::uint64_t n;
  Rational lambda;
};

class BcastSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BcastSweep, ValidAndExactlyOptimal) {
  const auto& [n, lambda] = GetParam();
  const PostalParams params(n, lambda);
  GenFib fib(lambda);
  const Schedule s = bcast_schedule(params, fib);
  const SimReport report = validate_schedule(s, params);
  ASSERT_TRUE(report.ok) << report.summary();
  // Theorem 6: the simulated completion time is exactly f_lambda(n).
  EXPECT_EQ(report.makespan, fib.f(n));
  EXPECT_TRUE(report.order_preserving);
}

INSTANTIATE_TEST_SUITE_P(
    NLambdaGrid, BcastSweep,
    ::testing::Values(
        SweepCase{2, Rational(1)}, SweepCase{3, Rational(1)},
        SweepCase{17, Rational(1)}, SweepCase{256, Rational(1)},
        SweepCase{1000, Rational(1)}, SweepCase{2, Rational(3, 2)},
        SweepCase{9, Rational(3, 2)}, SweepCase{100, Rational(3, 2)},
        SweepCase{5, Rational(2)}, SweepCase{89, Rational(2)},
        SweepCase{144, Rational(2)}, SweepCase{14, Rational(5, 2)},
        SweepCase{97, Rational(5, 2)}, SweepCase{8, Rational(3)},
        SweepCase{343, Rational(3)}, SweepCase{31, Rational(7, 2)},
        SweepCase{1000, Rational(4)}, SweepCase{12, Rational(19, 4)},
        SweepCase{60, Rational(8)}, SweepCase{2, Rational(16)},
        SweepCase{500, Rational(16)}, SweepCase{77, Rational(13, 3)},
        SweepCase{4096, Rational(5, 2)}),
    [](const ::testing::TestParamInfo<SweepCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_lam" +
             std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

TEST(Bcast, LambdaOneMatchesBinomialBroadcast) {
  for (std::uint64_t n = 2; n <= 128; ++n) {
    const PostalParams params(n, Rational(1));
    GenFib fib(Rational(1));
    const Schedule s = bcast_schedule(params, fib);
    const SimReport report = validate_schedule(s, params);
    ASSERT_TRUE(report.ok);
    // Telephone model: ceil(log2 n) rounds.
    EXPECT_EQ(report.makespan, fib.f(n));
    EXPECT_EQ(report.makespan, Rational(fib.f(n).num()));  // integral
  }
}

TEST(Bcast, LargeLatencyDegeneratesTowardStar) {
  // When lambda >= n - 1, sending directly to everyone is optimal, so the
  // optimal tree is the star and T = (n - 2) + lambda.
  const std::uint64_t n = 10;
  const Rational lambda(20);
  const PostalParams params(n, lambda);
  const Schedule s = bcast_schedule(params);
  const SimReport report = validate_schedule(s, params);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.makespan, Rational(8) + lambda);
  // All sends come from the root.
  for (const SendEvent& e : s.events()) EXPECT_EQ(e.src, 0u);
}

TEST(Bcast, EmitRespectsBaseAndStartOffsets) {
  GenFib fib(Rational(2));
  Schedule s;
  bcast_emit(s, fib, /*base=*/5, /*count=*/4, Rational(10), /*msg=*/3);
  for (const SendEvent& e : s.events()) {
    EXPECT_GE(e.src, 5u);
    EXPECT_GE(e.dst, 5u);
    EXPECT_LT(e.dst, 9u);
    EXPECT_EQ(e.msg, 3u);
    EXPECT_GE(e.t, Rational(10));
  }
}

}  // namespace
}  // namespace postal
