// Tests for the full LogP machine: the optimal schedule validates under
// every LogP rule, completes at exactly logp_broadcast_time (== the greedy
// frontier optimum), and broken schedules are rejected.
#include "sched/logp_machine.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hpp"

namespace postal {
namespace {

struct LogPCase {
  Rational L, o, g;
  std::uint64_t P;
};

class LogPMachineSweep : public ::testing::TestWithParam<LogPCase> {};

TEST_P(LogPMachineSweep, OptimalScheduleValidAndMatchesClosedForm) {
  const auto& [L, o, g, P] = GetParam();
  const LogPParams params{L, o, g, P};
  const Schedule s = logp_bcast_schedule(params);
  const LogPReport report = validate_logp_schedule(s, params);
  ASSERT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(report.completion, logp_broadcast_time(params));
  EXPECT_EQ(report.completion, logp_broadcast_time_dp(params));
  EXPECT_EQ(s.size(), P - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LogPMachineSweep,
    ::testing::Values(LogPCase{Rational(0), Rational(1, 2), Rational(1), 64},
                      LogPCase{Rational(4), Rational(1), Rational(2), 100},
                      LogPCase{Rational(10), Rational(2), Rational(1), 33},
                      LogPCase{Rational(15, 2), Rational(1, 2), Rational(5, 2), 17},
                      LogPCase{Rational(1), Rational(0), Rational(1), 256},
                      LogPCase{Rational(6), Rational(3), Rational(1), 50}),
    [](const ::testing::TestParamInfo<LogPCase>& pinfo) {
      return "L" + std::to_string(pinfo.param.L.num()) + "_" +
             std::to_string(pinfo.param.L.den()) + "_o" +
             std::to_string(pinfo.param.o.num()) + "_" +
             std::to_string(pinfo.param.o.den()) + "_g" +
             std::to_string(pinfo.param.g.num()) + "_" +
             std::to_string(pinfo.param.g.den()) + "_P" +
             std::to_string(pinfo.param.P);
    });

TEST(LogPMachine, RejectsSubmissionsCloserThanGap) {
  const LogPParams params{Rational(4), Rational(1), Rational(2), 4};
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(1));  // gap is max(1, 2) = 2
  s.add(0, 3, 0, Rational(4));
  const LogPReport report = validate_logp_schedule(s, params);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("submissions"), std::string::npos);
}

TEST(LogPMachine, RejectsPrematureForwarding) {
  // Message usable at 2o + L = 6; forwarding at 5 is illegal.
  const LogPParams params{Rational(4), Rational(1), Rational(2), 3};
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 0, Rational(5));
  const LogPReport report = validate_logp_schedule(s, params);
  ASSERT_FALSE(report.ok);
}

TEST(LogPMachine, ForwardingAtExactUsabilityIsLegal) {
  const LogPParams params{Rational(4), Rational(1), Rational(2), 3};
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 0, Rational(6));
  const LogPReport report = validate_logp_schedule(s, params);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(LogPMachine, RejectsAbsorptionPileUp) {
  // Two messages converging on p2 with usability times 1 apart < gap 2.
  const LogPParams params{Rational(4), Rational(1), Rational(2), 4};
  Schedule s;
  s.add(0, 2, 0, Rational(0));   // usable at p2 at 6
  s.add(0, 1, 0, Rational(2));   // usable at p1 at 8 (causality ok)
  s.add(1, 2, 0, Rational(9));   // usable at p2 at 15 -- fine
  s.add(0, 3, 0, Rational(4));
  const LogPReport ok_report = validate_logp_schedule(s, params);
  ASSERT_TRUE(ok_report.ok)
      << (ok_report.violations.empty() ? "" : ok_report.violations[0]);

  Schedule bad = s;
  bad.add(1, 2, 0, Rational(10));  // usable at 16, 1 < gap after 15
  const LogPReport report = validate_logp_schedule(bad, params);
  ASSERT_FALSE(report.ok);
  bool found = false;
  for (const auto& v : report.violations) {
    found |= v.find("absorptions") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(LogPMachine, CpuBoundGapDominates) {
  // o = 3 > g = 1: submissions must be >= 3 apart.
  const LogPParams params{Rational(6), Rational(3), Rational(1), 4};
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(2));  // < o apart
  s.add(0, 3, 0, Rational(6));
  const LogPReport report = validate_logp_schedule(s, params);
  ASSERT_FALSE(report.ok);
}

TEST(LogPMachine, PostalTreeShapeTransfersToLogP) {
  // The LogP-optimal tree at lambda = (L+2o)/G has the same topology as
  // the postal Fibonacci tree at that lambda.
  const LogPParams params{Rational(4), Rational(1, 2), Rational(1), 14};
  // lambda = (4 + 1)/1 = 5.
  GenFib fib(Rational(5));
  const Schedule s = logp_bcast_schedule(params);
  EXPECT_EQ(validate_logp_schedule(s, params).completion,
            params.effective_gap() * fib.f(14));
}

}  // namespace
}  // namespace postal
