// Tests for the schedule IR.
#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace postal {
namespace {

TEST(Schedule, StartsEmpty) {
  const Schedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.makespan(Rational(2)), Rational(0));
  EXPECT_EQ(s.message_count(), 0u);
}

TEST(Schedule, AddAndQuery) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(1));
  s.add(1, 3, 1, Rational(5, 2));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.last_send_start(), Rational(5, 2));
  EXPECT_EQ(s.makespan(Rational(5, 2)), Rational(5));
  EXPECT_EQ(s.message_count(), 2u);
}

TEST(Schedule, RejectsSelfSend) {
  Schedule s;
  EXPECT_THROW(s.add(3, 3, 0, Rational(0)), InvalidArgument);
}

TEST(Schedule, RejectsNegativeTime) {
  Schedule s;
  EXPECT_THROW(s.add(0, 1, 0, Rational(-1)), InvalidArgument);
}

TEST(Schedule, SortIsByTimeThenIds) {
  Schedule s;
  s.add(2, 3, 0, Rational(1));
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 0, Rational(1));
  s.sort();
  EXPECT_EQ(s.events()[0].src, 0u);
  EXPECT_EQ(s.events()[1].src, 1u);
  EXPECT_EQ(s.events()[2].src, 2u);
}

TEST(Schedule, AppendShiftedOffsetsTimeAndMsg) {
  Schedule base;
  base.add(0, 1, 0, Rational(0));
  base.add(1, 2, 0, Rational(3, 2));
  Schedule s;
  s.append_shifted(base, Rational(10), 5);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.events()[0].t, Rational(10));
  EXPECT_EQ(s.events()[0].msg, 5u);
  EXPECT_EQ(s.events()[1].t, Rational(23, 2));
  EXPECT_EQ(s.events()[1].msg, 5u);
}

TEST(Schedule, SendsPerProcCounts) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(1));
  s.add(2, 1, 0, Rational(4));
  const auto counts = s.sends_per_proc(3);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Schedule, SendsPerProcRejectsOutOfRange) {
  Schedule s;
  s.add(0, 7, 0, Rational(0));
  POSTAL_EXPECT_THROW(s.sends_per_proc(3), InvalidArgument);
}

TEST(SendEvent, StreamsHumanReadable) {
  std::ostringstream oss;
  oss << SendEvent{0, 9, 0, Rational(5, 2)};
  EXPECT_EQ(oss.str(), "p0 -> p9 : M1 @ t=5/2");
}

TEST(Schedule, StreamsAllEvents) {
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(1, 2, 1, Rational(2));
  std::ostringstream oss;
  oss << s;
  EXPECT_NE(oss.str().find("p0 -> p1 : M1 @ t=0"), std::string::npos);
  EXPECT_NE(oss.str().find("p1 -> p2 : M2 @ t=2"), std::string::npos);
}

}  // namespace
}  // namespace postal
