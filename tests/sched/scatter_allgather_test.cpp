// Tests for the scatter-allgather broadcast (the [2]-style near-optimal,
// non-order-preserving multi-message algorithm).
#include "sched/scatter_allgather.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "model/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

struct SagCase {
  std::uint64_t n;
  std::uint64_t m;
  Rational lambda;
};

class SagSweep : public ::testing::TestWithParam<SagCase> {};

TEST_P(SagSweep, ValidCoversAndRespectsLemma8) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = scatter_allgather_schedule(params, m);
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  const SimReport report = validate_schedule(s, params, options);
  ASSERT_TRUE(report.ok) << report.summary();
  GenFib fib(lambda);
  EXPECT_GE(report.makespan, lemma8_lower(fib, n, m));
  EXPECT_EQ(report.makespan, predict_scatter_allgather(params, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SagSweep,
    ::testing::Values(SagCase{2, 1, Rational(2)}, SagCase{2, 9, Rational(5, 2)},
                      SagCase{8, 3, Rational(2)}, SagCase{8, 64, Rational(2)},
                      SagCase{14, 30, Rational(5, 2)}, SagCase{16, 16, Rational(1)},
                      SagCase{9, 100, Rational(4)}, SagCase{32, 7, Rational(3)},
                      SagCase{5, 12, Rational(7, 2)}),
    [](const ::testing::TestParamInfo<SagCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_m" + std::to_string(pinfo.param.m) +
             "_lam" + std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

TEST(ScatterAllgather, OwnersPartitionMessages) {
  const PostalParams params(6, Rational(2));
  for (MsgId j = 0; j < 30; ++j) {
    EXPECT_EQ(scatter_allgather_owner(params, j), j % 6);
  }
}

TEST(ScatterAllgather, IsNotOrderPreserving) {
  // The defining trade-off (paper Section 5): near-optimal for large m,
  // but message order is lost.
  const PostalParams params(8, Rational(2));
  const std::uint64_t m = 24;
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  const SimReport report =
      validate_schedule(scatter_allgather_schedule(params, m), params, options);
  ASSERT_TRUE(report.ok);
  EXPECT_FALSE(report.order_preserving);
}

TEST(ScatterAllgather, BeatsEveryOrderPreservingAlgoInItsRegime) {
  // The winning regime in the postal model: lambda large relative to
  // sqrt(n), m comparable to n. (For m -> infinity at fixed n, DTREE(d=1)
  // is already near-optimal -- Section 4.3 -- so no algorithm can beat it
  // there; the non-order-preserving construction pays off when the latency
  // is what hurts, not the stream length.)
  for (const auto& [n, m, lambda] :
       {std::tuple<std::uint64_t, std::uint64_t, Rational>{64, 64, Rational(16)},
        {128, 64, Rational(16)},
        {64, 48, Rational(32)},
        {256, 128, Rational(32)}}) {
    const PostalParams params(n, lambda);
    const Rational sag = predict_scatter_allgather(params, m);
    for (const MultiAlgo algo : all_multi_algos()) {
      EXPECT_LT(sag, predict_multi(algo, params, m))
          << algo_name(algo) << " n=" << n << " m=" << m;
    }
  }
}

TEST(ScatterAllgather, WithinSmallConstantOfLowerBound) {
  // T ~ scatter (m + lambda) + allgather (ceil(m/n)(n-1) + lambda):
  // always within ~2.5x of Lemma 8 once m >= n.
  for (const Rational lambda : {Rational(2), Rational(4), Rational(16)}) {
    GenFib fib(lambda);
    for (const std::uint64_t n : {8ULL, 32ULL, 64ULL}) {
      const PostalParams params(n, lambda);
      for (const std::uint64_t mult : {1ULL, 4ULL, 16ULL}) {
        const std::uint64_t m = mult * n;
        const Rational sag = predict_scatter_allgather(params, m);
        const Rational lower = lemma8_lower(fib, n, m);
        EXPECT_LE(sag.to_double(), 2.5 * lower.to_double())
            << "n=" << n << " m=" << m << " lambda=" << lambda.str();
      }
    }
  }
}

TEST(ScatterAllgather, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(scatter_allgather_schedule(params, 5).empty());
  EXPECT_EQ(predict_scatter_allgather(params, 5), Rational(0));
}

TEST(ScatterAllgather, RejectsZeroMessages) {
  const PostalParams params(4, Rational(2));
  POSTAL_EXPECT_THROW(scatter_allgather_schedule(params, 0), InvalidArgument);
}

TEST(ScatterAllgather, SingleMessageDegeneratesToStar) {
  // m = 1: the root owns the only message; phase 2 is a star broadcast.
  const PostalParams params(6, Rational(3));
  const Schedule s = scatter_allgather_schedule(params, 1);
  EXPECT_EQ(s.size(), 5u);
  for (const SendEvent& e : s.events()) EXPECT_EQ(e.src, 0u);
}

}  // namespace
}  // namespace postal
