// Tests for the Section 4.2 multi-message generalizations of BCAST:
// REPEAT (Lemma 10), PACK (Lemma 12), PIPELINE-1 (Lemma 14), PIPELINE-2
// (Lemma 16). Every algorithm is validated against the full postal model
// and its simulated completion time is compared *exactly* (rational
// equality) with the paper's closed-form formula.
#include <gtest/gtest.h>

#include <tuple>

#include "model/bounds.hpp"
#include "sched/pack.hpp"
#include "sched/pipeline.hpp"
#include "sched/repeat.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

struct MultiCase {
  std::uint64_t n;
  std::uint64_t m;
  Rational lambda;
};

std::string case_name(const ::testing::TestParamInfo<MultiCase>& pinfo) {
  return "n" + std::to_string(pinfo.param.n) + "_m" + std::to_string(pinfo.param.m) +
         "_lam" + std::to_string(pinfo.param.lambda.num()) + "_" +
         std::to_string(pinfo.param.lambda.den());
}

SimReport validate_multi(const Schedule& s, const PostalParams& params,
                         std::uint64_t m) {
  ValidatorOptions options;
  options.messages = static_cast<std::uint32_t>(m);
  return validate_schedule(s, params, options);
}

// ---------------------------------------------------------------------------
// REPEAT
// ---------------------------------------------------------------------------

class RepeatSweep : public ::testing::TestWithParam<MultiCase> {};

TEST_P(RepeatSweep, ValidOrderPreservingAndLemma10Exact) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = repeat_schedule(params, m);
  const SimReport report = validate_multi(s, params, m);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  GenFib fib(lambda);
  EXPECT_EQ(report.makespan, predict_repeat(fib, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RepeatSweep,
    ::testing::Values(MultiCase{2, 1, Rational(2)}, MultiCase{2, 7, Rational(5, 2)},
                      MultiCase{14, 3, Rational(5, 2)}, MultiCase{9, 5, Rational(1)},
                      MultiCase{33, 4, Rational(3)}, MultiCase{100, 2, Rational(3, 2)},
                      MultiCase{64, 8, Rational(2)}, MultiCase{7, 16, Rational(7, 2)},
                      MultiCase{128, 6, Rational(4)}, MultiCase{20, 10, Rational(13, 4)},
                      MultiCase{256, 3, Rational(6)}, MultiCase{50, 12, Rational(11, 5)}),
    case_name);

TEST(Repeat, FormulaMatchesLemma10Algebra) {
  // T_R = m * f(n) - (m-1)(lambda-1).
  GenFib fib(Rational(5, 2));
  const Rational f14 = fib.f(14);
  EXPECT_EQ(predict_repeat(fib, 14, 4),
            Rational(4) * f14 - Rational(3) * Rational(3, 2));
}

TEST(Repeat, SingleMessageReducesToBcast) {
  const PostalParams params(21, Rational(5, 2));
  GenFib fib(params.lambda());
  EXPECT_EQ(predict_repeat(fib, 21, 1), fib.f(21));
  const Schedule s = repeat_schedule(params, 1);
  const SimReport report = validate_multi(s, params, 1);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.makespan, fib.f(21));
}

TEST(Repeat, StaysBelowCorollary11) {
  for (const auto& [n, m, lambda] :
       {MultiCase{32, 4, Rational(2)}, MultiCase{128, 16, Rational(5, 2)},
        MultiCase{512, 8, Rational(4)}}) {
    GenFib fib(lambda);
    EXPECT_LE(predict_repeat(fib, n, m).to_double(),
              cor11_repeat_upper(lambda, n, m) + 1e-9)
        << "n=" << n << " m=" << m;
  }
}

TEST(Repeat, RejectsZeroMessages) {
  const PostalParams params(4, Rational(2));
  POSTAL_EXPECT_THROW(repeat_schedule(params, 0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// PACK
// ---------------------------------------------------------------------------

class PackSweep : public ::testing::TestWithParam<MultiCase> {};

TEST_P(PackSweep, ValidOrderPreservingAndLemma12Exact) {
  const auto& [n, m, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = pack_schedule(params, m);
  const SimReport report = validate_multi(s, params, m);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  EXPECT_EQ(report.makespan, predict_pack(lambda, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PackSweep,
    ::testing::Values(MultiCase{2, 1, Rational(2)}, MultiCase{2, 5, Rational(5, 2)},
                      MultiCase{14, 3, Rational(5, 2)}, MultiCase{9, 4, Rational(1)},
                      MultiCase{33, 6, Rational(3)}, MultiCase{100, 2, Rational(3, 2)},
                      MultiCase{64, 8, Rational(2)}, MultiCase{7, 16, Rational(7, 2)},
                      MultiCase{128, 5, Rational(4)}, MultiCase{20, 9, Rational(13, 4)},
                      MultiCase{300, 3, Rational(9)}, MultiCase{41, 11, Rational(8, 3)}),
    case_name);

TEST(Pack, EachRecipientGetsWholeStreamBeforeForwarding) {
  const PostalParams params(9, Rational(3));
  const std::uint64_t m = 4;
  const Schedule s = pack_schedule(params, m);
  // For each processor, the first send must come after the arrival of the
  // *last* message of the packed stream.
  std::vector<Rational> last_arrival(params.n(), Rational(0));
  for (const SendEvent& e : s.events()) {
    last_arrival[e.dst] = rmax(last_arrival[e.dst], e.t + params.lambda());
  }
  std::vector<Rational> first_send(params.n(), Rational(-1));
  for (const SendEvent& e : s.events()) {
    if (first_send[e.src] < Rational(0)) first_send[e.src] = e.t;  // sorted
  }
  for (ProcId p = 1; p < params.n(); ++p) {
    if (first_send[p] >= Rational(0)) {
      EXPECT_GE(first_send[p], last_arrival[p]) << "p=" << p;
    }
  }
}

TEST(Pack, LambdaOnePackEqualsLambdaOne) {
  // At lambda = 1, lambda' = 1: PACK is m back-to-back binomial rounds.
  GenFib fib(Rational(1));
  EXPECT_EQ(predict_pack(Rational(1), 16, 4), Rational(4) * fib.f(16));
}

TEST(Pack, StaysBelowCorollary13) {
  for (const auto& [n, m, lambda] :
       {MultiCase{32, 4, Rational(2)}, MultiCase{128, 16, Rational(5, 2)},
        MultiCase{512, 8, Rational(4)}}) {
    EXPECT_LE(predict_pack(lambda, n, m).to_double(),
              cor13_pack_upper(lambda, n, m) + 1e-9)
        << "n=" << n << " m=" << m;
  }
}

// ---------------------------------------------------------------------------
// PIPELINE-1 and PIPELINE-2
// ---------------------------------------------------------------------------

class Pipeline1Sweep : public ::testing::TestWithParam<MultiCase> {};

TEST_P(Pipeline1Sweep, ValidOrderPreservingAndLemma14Exact) {
  const auto& [n, m, lambda] = GetParam();
  ASSERT_LE(Rational(static_cast<std::int64_t>(m)), lambda) << "regime m <= lambda";
  const PostalParams params(n, lambda);
  const Schedule s = pipeline1_schedule(params, m);
  const SimReport report = validate_multi(s, params, m);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  EXPECT_EQ(report.makespan, predict_pipeline1(lambda, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pipeline1Sweep,
    ::testing::Values(MultiCase{2, 1, Rational(2)}, MultiCase{14, 2, Rational(5, 2)},
                      MultiCase{9, 3, Rational(3)}, MultiCase{33, 2, Rational(4)},
                      MultiCase{100, 4, Rational(9, 2)}, MultiCase{64, 8, Rational(8)},
                      MultiCase{7, 5, Rational(11, 2)},
                      MultiCase{256, 3, Rational(3)},
                      MultiCase{50, 6, Rational(13, 2)},
                      MultiCase{2, 4, Rational(17, 4)}),
    case_name);

class Pipeline2Sweep : public ::testing::TestWithParam<MultiCase> {};

TEST_P(Pipeline2Sweep, ValidOrderPreservingAndLemma16Exact) {
  const auto& [n, m, lambda] = GetParam();
  ASSERT_GE(Rational(static_cast<std::int64_t>(m)), lambda) << "regime m >= lambda";
  const PostalParams params(n, lambda);
  const Schedule s = pipeline2_schedule(params, m);
  const SimReport report = validate_multi(s, params, m);
  ASSERT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.order_preserving);
  EXPECT_EQ(report.makespan, predict_pipeline2(lambda, n, m));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Pipeline2Sweep,
    ::testing::Values(MultiCase{2, 2, Rational(2)}, MultiCase{14, 5, Rational(5, 2)},
                      MultiCase{9, 9, Rational(3)}, MultiCase{33, 16, Rational(4)},
                      MultiCase{100, 8, Rational(3, 2)},
                      MultiCase{64, 32, Rational(2)},
                      MultiCase{7, 12, Rational(7, 2)},
                      MultiCase{128, 10, Rational(5, 2)},
                      MultiCase{25, 20, Rational(5)},
                      MultiCase{2, 64, Rational(1)},
                      MultiCase{200, 7, Rational(7, 4)}),
    case_name);

TEST(Pipeline, RegimesAgreeAtBoundary) {
  // m == lambda: both lemmas give the same time.
  const Rational lambda(4);
  const std::uint64_t m = 4;
  for (std::uint64_t n : {2ULL, 10ULL, 64ULL}) {
    EXPECT_EQ(predict_pipeline1(lambda, n, m), predict_pipeline2(lambda, n, m))
        << "n=" << n;
  }
}

TEST(Pipeline, DispatcherPicksRegime) {
  const PostalParams params(10, Rational(3));
  // m = 2 <= 3 -> PIPELINE-1; m = 5 >= 3 -> PIPELINE-2.
  const SimReport r1 = validate_multi(pipeline_schedule(params, 2), params, 2);
  ASSERT_TRUE(r1.ok) << r1.summary();
  EXPECT_EQ(r1.makespan, predict_pipeline(Rational(3), 10, 2));
  const SimReport r2 = validate_multi(pipeline_schedule(params, 5), params, 5);
  ASSERT_TRUE(r2.ok) << r2.summary();
  EXPECT_EQ(r2.makespan, predict_pipeline(Rational(3), 10, 5));
}

TEST(Pipeline, StaysBelowCorollaries15And17) {
  EXPECT_LE(predict_pipeline1(Rational(8), 128, 4).to_double(),
            cor15_pipeline1_upper(Rational(8), 128, 4) + 1e-9);
  EXPECT_LE(predict_pipeline2(Rational(2), 128, 16).to_double(),
            cor17_pipeline2_upper(Rational(2), 128, 16) + 1e-9);
}

TEST(Pipeline, RegimeViolationsRejected) {
  const PostalParams params(8, Rational(2));
  POSTAL_EXPECT_THROW(pipeline1_schedule(params, 5), InvalidArgument);
  POSTAL_EXPECT_THROW(pipeline2_schedule(params, 1), InvalidArgument);
}

TEST(Pipeline, PipelineBeatsPackForLongStreams) {
  // The paper: "the fact that Algorithm PIPELINE takes advantage of the
  // nonatomicity of the stream makes it more efficient than PACK."
  const Rational lambda(5, 2);
  for (std::uint64_t m : {8ULL, 32ULL, 128ULL}) {
    EXPECT_LT(predict_pipeline(lambda, 64, m), predict_pack(lambda, 64, m))
        << "m=" << m;
  }
}

TEST(Pipeline, AllMultiAlgosRespectLemma8) {
  // No generalization may beat the universal lower bound.
  for (const auto& [n, m, lambda] :
       {MultiCase{16, 4, Rational(5, 2)}, MultiCase{64, 16, Rational(2)},
        MultiCase{100, 3, Rational(6)}}) {
    GenFib fib(lambda);
    const Rational lower = lemma8_lower(fib, n, m);
    EXPECT_GE(predict_repeat(fib, n, m), lower);
    EXPECT_GE(predict_pack(lambda, n, m), lower);
    EXPECT_GE(predict_pipeline(lambda, n, m), lower);
  }
}

}  // namespace
}  // namespace postal
