// Tests for the k-ported postal model extension.
#include "sched/kported.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "model/genfib.hpp"
#include "sched/bcast.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

TEST(GenFibK, RejectsBadParameters) {
  EXPECT_THROW(GenFibK(Rational(1, 2), 1), InvalidArgument);
  EXPECT_THROW(GenFibK(Rational(2), 0), InvalidArgument);
}

TEST(GenFibK, KOneReducesToGenFib) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    GenFib single(lambda);
    GenFibK multi(lambda, 1);
    for (std::int64_t i = 0; i <= 60; ++i) {
      const Rational t(i, lambda.den());
      EXPECT_EQ(multi.F(t), single.F(t)) << "lambda=" << lambda.str() << " t=" << t.str();
    }
    for (std::uint64_t n = 1; n <= 200; ++n) {
      EXPECT_EQ(multi.f(n), single.f(n)) << "n=" << n;
    }
  }
}

TEST(GenFibK, RecurrenceHolds) {
  GenFibK fib(Rational(5, 2), 3);
  for (std::int64_t i = 5; i <= 40; ++i) {
    const Rational t(i, 2);
    EXPECT_EQ(fib.F(t), fib.F(t - Rational(1)) + 3 * fib.F(t - Rational(5, 2)))
        << "t=" << t.str();
  }
}

TEST(GenFibK, MorePortsNeverSlower) {
  for (std::uint64_t n : {16ULL, 256ULL, 4096ULL}) {
    Rational prev;
    bool first = true;
    for (std::uint64_t k = 1; k <= 8; k *= 2) {
      GenFibK fib(Rational(5, 2), k);
      const Rational t = fib.f(n);
      if (!first) {
        EXPECT_LE(t, prev) << "n=" << n << " k=" << k;
      }
      prev = t;
      first = false;
    }
  }
}

struct KCase {
  std::uint64_t n;
  std::uint64_t k;
  Rational lambda;
};

class KPortedSweep : public ::testing::TestWithParam<KCase> {};

TEST_P(KPortedSweep, ScheduleValidAndExactlyOptimal) {
  const auto& [n, k, lambda] = GetParam();
  const PostalParams params(n, lambda);
  const Schedule s = kported_bcast_schedule(params, k);
  const KPortedReport report = validate_kported(s, params, k);
  ASSERT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  const Rational predicted = predict_kported_bcast(params, k);
  EXPECT_EQ(report.completion, predicted);
  // Independent optimum: the greedy frontier agrees.
  EXPECT_EQ(predicted, kported_optimal_greedy(params, k));
  // Everyone informed exactly once.
  EXPECT_EQ(s.size(), n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KPortedSweep,
    ::testing::Values(KCase{2, 2, Rational(2)}, KCase{14, 2, Rational(5, 2)},
                      KCase{64, 2, Rational(1)}, KCase{100, 3, Rational(3)},
                      KCase{256, 4, Rational(2)}, KCase{33, 8, Rational(9, 4)},
                      KCase{500, 2, Rational(4)}, KCase{81, 3, Rational(7, 2)}),
    [](const ::testing::TestParamInfo<KCase>& pinfo) {
      return "n" + std::to_string(pinfo.param.n) + "_k" + std::to_string(pinfo.param.k) +
             "_lam" + std::to_string(pinfo.param.lambda.num()) + "_" +
             std::to_string(pinfo.param.lambda.den());
    });

TEST(KPorted, KOneScheduleMatchesBcast) {
  const PostalParams params(50, Rational(5, 2));
  const Schedule a = kported_bcast_schedule(params, 1);
  const Schedule b = bcast_schedule(params);
  EXPECT_EQ(a.events(), b.events());
}

TEST(KPorted, ValidatorAllowsExactlyKOverlaps) {
  const PostalParams params(5, Rational(3));
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(0));  // two simultaneous sends
  s.add(0, 3, 0, Rational(1));
  s.add(0, 4, 0, Rational(1));
  EXPECT_TRUE(validate_kported(s, params, 2).ok);
  EXPECT_FALSE(validate_kported(s, params, 1).ok);
}

TEST(KPorted, ValidatorStillRejectsReceiveOverlap) {
  const PostalParams params(3, Rational(2));
  Schedule s;
  s.add(0, 2, 0, Rational(0));
  s.add(0, 1, 0, Rational(0));
  // p1 informed at 2, forwards to p2 at 2: arrival windows at p2 overlap?
  // p2 already received at 2; second arrival at 4 -- fine. Make a real
  // conflict instead: two sends arriving at p2 half a unit apart.
  Schedule bad;
  bad.add(0, 1, 0, Rational(0));
  bad.add(0, 2, 0, Rational(0));
  bad.add(0, 2, 0, Rational(1, 2));
  const KPortedReport report = validate_kported(bad, params, 4);
  EXPECT_FALSE(report.ok);
}

TEST(KPorted, SpeedupGrowsWithPorts) {
  // Doubling ports must give a real speedup for large n.
  const PostalParams params(4096, Rational(4));
  const Rational t1 = predict_kported_bcast(params, 1);
  const Rational t2 = predict_kported_bcast(params, 2);
  const Rational t4 = predict_kported_bcast(params, 4);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
}

TEST(KPorted, SingleProcessorDegenerate) {
  const PostalParams params(1, Rational(2));
  EXPECT_TRUE(kported_bcast_schedule(params, 3).empty());
  EXPECT_EQ(predict_kported_bcast(params, 3), Rational(0));
  EXPECT_EQ(kported_optimal_greedy(params, 3), Rational(0));
}

}  // namespace
}  // namespace postal
