// Unit tests for postal::IntervalSet, the busy-port tracker behind the
// postal-model validator.
#include "support/interval_set.hpp"

#include <gtest/gtest.h>

namespace postal {
namespace {

TEST(IntervalSet, StartsEmpty) {
  const IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.total_length(), Rational(0));
}

TEST(IntervalSet, InsertDisjointSucceeds) {
  IntervalSet set;
  EXPECT_FALSE(set.insert(Rational(0), Rational(1)).has_value());
  EXPECT_FALSE(set.insert(Rational(2), Rational(3)).has_value());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.total_length(), Rational(2));
}

TEST(IntervalSet, HalfOpenIntervalsMayTouch) {
  IntervalSet set;
  EXPECT_FALSE(set.insert(Rational(0), Rational(1)).has_value());
  // [1, 2) starts exactly where [0, 1) ends: allowed in the postal model
  // (a processor may start sending the instant its previous send ends).
  EXPECT_FALSE(set.insert(Rational(1), Rational(2)).has_value());
  EXPECT_EQ(set.size(), 2u);
}

TEST(IntervalSet, OverlapFromLeftRejected) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(1), Rational(2)).has_value());
  const auto clash = set.insert(Rational(1, 2), Rational(3, 2));
  ASSERT_TRUE(clash.has_value());
  EXPECT_EQ(clash->lo, Rational(1));
  EXPECT_EQ(clash->hi, Rational(2));
  EXPECT_EQ(set.size(), 1u) << "failed insert must not modify the set";
}

TEST(IntervalSet, OverlapFromRightRejected) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(1), Rational(2)).has_value());
  EXPECT_TRUE(set.insert(Rational(3, 2), Rational(5, 2)).has_value());
}

TEST(IntervalSet, ContainedIntervalRejected) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(0), Rational(10)).has_value());
  EXPECT_TRUE(set.insert(Rational(4), Rational(5)).has_value());
}

TEST(IntervalSet, SurroundingIntervalRejected) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(4), Rational(5)).has_value());
  EXPECT_TRUE(set.insert(Rational(0), Rational(10)).has_value());
}

TEST(IntervalSet, RationalEndpointsExact) {
  IntervalSet set;
  // Receive windows at lambda = 5/2: [3/2, 5/2) and [5/2, 7/2) must abut.
  EXPECT_FALSE(set.insert(Rational(3, 2), Rational(5, 2)).has_value());
  EXPECT_FALSE(set.insert(Rational(5, 2), Rational(7, 2)).has_value());
  EXPECT_TRUE(set.insert(Rational(2), Rational(3)).has_value());
}

TEST(IntervalSet, EmptyIntervalThrows) {
  IntervalSet set;
  EXPECT_THROW(set.insert(Rational(1), Rational(1)), InvalidArgument);
  EXPECT_THROW(set.insert(Rational(2), Rational(1)), InvalidArgument);
}

TEST(IntervalSet, OverlapsQueryDoesNotInsert) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(0), Rational(1)).has_value());
  EXPECT_TRUE(set.overlaps(Rational(1, 2), Rational(2)));
  EXPECT_FALSE(set.overlaps(Rational(1), Rational(2)));
  EXPECT_EQ(set.size(), 1u);
}

TEST(IntervalSet, EarliestFitInEmptySetIsFrom) {
  const IntervalSet set;
  EXPECT_EQ(set.earliest_fit(Rational(3), Rational(1)), Rational(3));
}

TEST(IntervalSet, EarliestFitSkipsBusyIntervals) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(0), Rational(2)).has_value());
  ASSERT_FALSE(set.insert(Rational(3), Rational(4)).has_value());
  // Length 1 fits in the [2, 3) gap.
  EXPECT_EQ(set.earliest_fit(Rational(0), Rational(1)), Rational(2));
  // Length 2 does not fit in the gap; must go after [3, 4).
  EXPECT_EQ(set.earliest_fit(Rational(0), Rational(2)), Rational(4));
}

TEST(IntervalSet, EarliestFitHonorsFrom) {
  IntervalSet set;
  ASSERT_FALSE(set.insert(Rational(5), Rational(6)).has_value());
  EXPECT_EQ(set.earliest_fit(Rational(11, 2), Rational(1)), Rational(6));
}

TEST(IntervalSet, EarliestFitRequiresPositiveLength) {
  const IntervalSet set;
  EXPECT_THROW(static_cast<void>(set.earliest_fit(Rational(0), Rational(0))),
               InvalidArgument);
}

TEST(IntervalSet, ManyUnitIntervalsTotalLength) {
  IntervalSet set;
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(set.insert(Rational(2 * i), Rational(2 * i + 1)).has_value());
  }
  EXPECT_EQ(set.size(), 100u);
  EXPECT_EQ(set.total_length(), Rational(100));
}

}  // namespace
}  // namespace postal
