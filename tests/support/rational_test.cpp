// Unit tests for postal::Rational: normalization, ordering, arithmetic,
// overflow detection, parsing, and formatting.
#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <unordered_set>

namespace postal {
namespace {

TEST(Rational, DefaultIsZero) {
  const Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_EQ(r, Rational(0));
}

TEST(Rational, IntegerConversionIsImplicit) {
  const Rational r = 7;
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, NormalizesSignToNumerator) {
  const Rational r(3, -6);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
  const Rational s(-3, -6);
  EXPECT_EQ(s.num(), 1);
  EXPECT_EQ(s.den(), 2);
}

TEST(Rational, ZeroNumeratorNormalizesDenominator) {
  const Rational r(0, 17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), InvalidArgument);
}

TEST(Rational, AdditionExact) {
  EXPECT_EQ(Rational(1, 3) + Rational(1, 6), Rational(1, 2));
  EXPECT_EQ(Rational(5, 2) + Rational(5, 2), Rational(5));
  EXPECT_EQ(Rational(-1, 2) + Rational(1, 2), Rational(0));
}

TEST(Rational, SubtractionExact) {
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(1) - Rational(5, 2), Rational(-3, 2));
}

TEST(Rational, MultiplicationCrossReduces) {
  // Would overflow without cross-reduction.
  const std::int64_t big = 3'000'000'000;
  const Rational a(big, 7);
  const Rational b(7, big);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(Rational, DivisionExact) {
  EXPECT_EQ(Rational(5, 2) / Rational(5), Rational(1, 2));
  EXPECT_EQ(Rational(7) / Rational(1, 7), Rational(49));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), InvalidArgument);
}

TEST(Rational, AdditionOverflowThrows) {
  const Rational huge(std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW(huge + huge, OverflowError);
}

TEST(Rational, MultiplicationOverflowThrows) {
  const Rational huge(std::numeric_limits<std::int64_t>::max());
  EXPECT_THROW(huge * huge, OverflowError);
}

TEST(Rational, NegationOfMinThrows) {
  const Rational min_val(std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW(-min_val, OverflowError);
}

TEST(Rational, OrderingIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GT(Rational(5, 2), Rational(2));
  EXPECT_LE(Rational(2), Rational(2));
  // Cross products near 64-bit range must not overflow the comparison.
  const std::int64_t big = 4'000'000'000;
  EXPECT_LT(Rational(big, big + 1), Rational(big + 1, big + 2));
}

TEST(Rational, FloorCeilTrunc) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(7, 2).trunc(), 3);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-7, 2).trunc(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
  EXPECT_EQ(Rational(-4).floor(), -4);
  EXPECT_EQ(Rational(-4).ceil(), -4);
}

TEST(Rational, ParseInteger) { EXPECT_EQ(Rational::parse("42"), Rational(42)); }

TEST(Rational, ParseFractionForm) {
  EXPECT_EQ(Rational::parse("5/2"), Rational(5, 2));
  EXPECT_EQ(Rational::parse("-5/2"), Rational(-5, 2));
  EXPECT_EQ(Rational::parse("6/4"), Rational(3, 2));
}

TEST(Rational, ParseDecimalForm) {
  EXPECT_EQ(Rational::parse("2.5"), Rational(5, 2));
  EXPECT_EQ(Rational::parse("0.25"), Rational(1, 4));
  EXPECT_EQ(Rational::parse("-1.5"), Rational(-3, 2));
  EXPECT_EQ(Rational::parse("3.0"), Rational(3));
}

TEST(Rational, ParseRejectsGarbage) {
  EXPECT_THROW(static_cast<void>(Rational::parse("")), InvalidArgument);
  EXPECT_THROW(static_cast<void>(Rational::parse("abc")), InvalidArgument);
  EXPECT_THROW(static_cast<void>(Rational::parse("1.")), InvalidArgument);
}

TEST(Rational, StrRoundTrips) {
  EXPECT_EQ(Rational(5, 2).str(), "5/2");
  EXPECT_EQ(Rational(4).str(), "4");
  EXPECT_EQ(Rational(-1, 3).str(), "-1/3");
  std::ostringstream oss;
  oss << Rational(15, 2);
  EXPECT_EQ(oss.str(), "15/2");
}

TEST(Rational, ToDoubleIsClose) {
  EXPECT_DOUBLE_EQ(Rational(5, 2).to_double(), 2.5);
  EXPECT_DOUBLE_EQ(Rational(-1, 4).to_double(), -0.25);
}

TEST(Rational, HashEqualValuesCollide) {
  std::unordered_set<Rational> set;
  set.insert(Rational(1, 2));
  set.insert(Rational(2, 4));  // same value
  set.insert(Rational(3, 4));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rational, MinMaxHelpers) {
  EXPECT_EQ(rmin(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
  EXPECT_EQ(rmax(Rational(1, 2), Rational(1, 3)), Rational(1, 2));
  EXPECT_EQ(rmin(Rational(2), Rational(2)), Rational(2));
}

TEST(Rational, CompoundAssignmentChains) {
  Rational r(1, 2);
  r += Rational(1, 3);
  r -= Rational(1, 6);
  r *= Rational(3);
  r /= Rational(2);
  EXPECT_EQ(r, Rational(1));
}

TEST(Rational, RepeatedAdditionKeepsReducedForm) {
  Rational sum(0);
  for (int i = 0; i < 1000; ++i) sum += Rational(1, 8);
  EXPECT_EQ(sum, Rational(125));
  EXPECT_EQ(sum.den(), 1);
}

TEST(Rational, ParseStrRoundTripFuzz) {
  // str() -> parse() must be the identity for random reduced rationals.
  std::uint64_t state = 0x12345678;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 2000; ++i) {
    const auto num = static_cast<std::int64_t>(next() % 2000001) - 1000000;
    const auto den = static_cast<std::int64_t>(next() % 999) + 1;
    const Rational r(num, den);
    EXPECT_EQ(Rational::parse(r.str()), r) << r.str();
  }
}

TEST(Rational, DecimalParseMatchesFractionParse) {
  EXPECT_EQ(Rational::parse("0.5"), Rational::parse("1/2"));
  EXPECT_EQ(Rational::parse("12.25"), Rational::parse("49/4"));
  EXPECT_EQ(Rational::parse("-0.125"), Rational::parse("-1/8"));
}

TEST(Rational, ComparisonNearOverflowSameDenominator) {
  // Same canonical denominator takes the numerator-compare fast path; it
  // must stay exact at the edges of the 64-bit range.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_LT(Rational(max - 5, 5), Rational(max, 5));
  EXPECT_GT(Rational(max, 5), Rational(max - 5, 5));
  EXPECT_EQ(Rational(max, 5) <=> Rational(max, 5), std::strong_ordering::equal);
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min() + 1;
  EXPECT_LT(Rational(lo, 3), Rational(lo + 3, 3));
}

TEST(Rational, ComparisonNearOverflowCrossProducts) {
  // Different denominators whose 64-bit cross products overflow must fall
  // through to the 128-bit compare, never to UB or a wrong sign.
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_GT(Rational(max, 2), Rational(max - 2, 3));
  EXPECT_LT(Rational(max - 2, 3), Rational(max, 2));
  // max/(max-1) vs (max-1)/(max-2): both just above 1, second is larger.
  EXPECT_LT(Rational(max, max - 1), Rational(max - 1, max - 2));
  // Large negatives: x/3 > x/2 for negative x.
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min() + 1;
  EXPECT_GT(Rational(lo, 3), Rational(lo, 2));
  EXPECT_LT(Rational(lo, 2), Rational(lo, 3));
}

TEST(Rational, ComparisonMatches128BitReferenceOnRandomBigValues) {
  std::uint64_t state = 0xC0FFEE;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  __extension__ using int128 = __int128;
  for (int i = 0; i < 2000; ++i) {
    // Magnitudes up to ~2^62 so cross products routinely overflow 64 bits.
    const auto a_num = static_cast<std::int64_t>(next() >> 2) - (1LL << 61);
    const auto a_den = static_cast<std::int64_t>(next() >> 3) + 1;
    const auto b_num = static_cast<std::int64_t>(next() >> 2) - (1LL << 61);
    const auto b_den = static_cast<std::int64_t>(next() >> 3) + 1;
    const Rational a(a_num, a_den);
    const Rational b(b_num, b_den);
    const int128 lhs = static_cast<int128>(a.num()) * b.den();
    const int128 rhs = static_cast<int128>(b.num()) * a.den();
    EXPECT_EQ(a < b, lhs < rhs) << a << " vs " << b;
    EXPECT_EQ(a == b, lhs == rhs) << a << " vs " << b;
    EXPECT_EQ(a > b, lhs > rhs) << a << " vs " << b;
  }
}

TEST(Rational, ParseDecimalTrailingZeros) {
  EXPECT_EQ(Rational::parse("2.50"), Rational(5, 2));
  EXPECT_EQ(Rational::parse("0.250"), Rational(1, 4));
  EXPECT_EQ(Rational::parse("3.000"), Rational(3));
}

TEST(Rational, ParseBareAndNegativeFractionalForms) {
  EXPECT_EQ(Rational::parse(".5"), Rational(1, 2));
  EXPECT_EQ(Rational::parse("-.5"), Rational(-1, 2));
  EXPECT_EQ(Rational::parse("-0.5"), Rational(-1, 2));
  EXPECT_EQ(Rational::parse("-2.25"), Rational(-9, 4));
}

TEST(Rational, ParseDecimalDigitLimit) {
  // 18 fractional digits is the last exactly-representable width...
  EXPECT_EQ(Rational::parse("0.000000000000000001"),
            Rational(1, 1'000'000'000'000'000'000));
  // ...19 must be rejected, not silently rounded.
  EXPECT_THROW(static_cast<void>(Rational::parse("0.0000000000000000001")),
               InvalidArgument);
}

TEST(Rational, ParseRejectsZeroDenominatorAndMalformedFraction) {
  EXPECT_THROW(static_cast<void>(Rational::parse("1/0")), InvalidArgument);
  EXPECT_THROW(static_cast<void>(Rational::parse("1.-5")), InvalidArgument);
}

TEST(Rational, ParseReportsOverflowDistinctly) {
  EXPECT_THROW(static_cast<void>(Rational::parse("9223372036854775808")),
               OverflowError);
  EXPECT_THROW(static_cast<void>(Rational::parse("1/9223372036854775808")),
               OverflowError);
}

}  // namespace
}  // namespace postal
