// Tests for the small support utilities: saturating arithmetic, the PRNG,
// the ASCII table writer, and the error macros.
#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"
#include "support/prng.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"

namespace postal {
namespace {

TEST(Saturating, AddWithinRange) {
  EXPECT_EQ(sat_add(2, 3), 5u);
  EXPECT_EQ(sat_add(0, 0), 0u);
}

TEST(Saturating, AddSaturates) {
  EXPECT_EQ(sat_add(kSaturated, 1), kSaturated);
  EXPECT_EQ(sat_add(kSaturated - 1, 5), kSaturated);
  EXPECT_EQ(sat_add(kSaturated, kSaturated), kSaturated);
}

TEST(Saturating, MulWithinRange) {
  EXPECT_EQ(sat_mul(6, 7), 42u);
  EXPECT_EQ(sat_mul(0, kSaturated), 0u);
  EXPECT_EQ(sat_mul(kSaturated, 0), 0u);
  EXPECT_EQ(sat_mul(1, kSaturated), kSaturated);
}

TEST(Saturating, MulSaturates) {
  EXPECT_EQ(sat_mul(1ULL << 33, 1ULL << 33), kSaturated);
  EXPECT_EQ(sat_mul(kSaturated, 2), kSaturated);
}

TEST(Saturating, PowExact) {
  EXPECT_EQ(sat_pow(2, 10), 1024u);
  EXPECT_EQ(sat_pow(3, 0), 1u);
  EXPECT_EQ(sat_pow(1, 1000), 1u);
  EXPECT_EQ(sat_pow(10, 19), 10'000'000'000'000'000'000ULL);
}

TEST(Saturating, PowSaturates) {
  EXPECT_EQ(sat_pow(2, 64), kSaturated);
  EXPECT_EQ(sat_pow(3, 41), kSaturated);
  EXPECT_EQ(sat_pow(kSaturated, 2), kSaturated);
}

TEST(Prng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Prng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Prng, UniformSwapsReversedBounds) {
  Xoshiro256 rng(7);
  const std::uint64_t v = rng.uniform(20, 10);
  EXPECT_GE(v, 10u);
  EXPECT_LE(v, 20u);
}

TEST(Prng, UniformDegenerateRange) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Prng, Uniform01InHalfOpenUnit) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, UniformCoversExtremes) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000 && !(saw_lo && saw_hi); ++i) {
    const std::uint64_t v = rng.uniform(0, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, CountsRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0), "2.000");
}

TEST(ErrorMacros, RequireThrowsInvalidArgument) {
  EXPECT_THROW(POSTAL_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(POSTAL_REQUIRE(true, "fine"));
}

TEST(ErrorMacros, CheckThrowsLogicError) {
  EXPECT_THROW(POSTAL_CHECK(false), LogicError);
  EXPECT_NO_THROW(POSTAL_CHECK(true));
}

TEST(ErrorMacros, MessagesCarryContext) {
  try {
    POSTAL_REQUIRE(1 == 2, "lambda must be >= 1");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("lambda must be >= 1"), std::string::npos);
  }
}

}  // namespace
}  // namespace postal
