// Unit tests for the tick domain (support/ticks.hpp): exact conversion,
// every failure path (off-grid values, overflow) falling back to nullopt
// rather than approximating or wrapping, and denominator folding.
#include "support/ticks.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "test_util.hpp"

namespace postal {
namespace {

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(TickDomain, RequiresPositiveResolution) {
  POSTAL_EXPECT_THROW(TickDomain(0), InvalidArgument);
  POSTAL_EXPECT_THROW(TickDomain(-3), InvalidArgument);
  EXPECT_EQ(TickDomain(1).q(), 1);
  EXPECT_EQ(TickDomain(12).q(), 12);
}

TEST(TickDomain, ConvertsGridMultiplesExactly) {
  const TickDomain dom(4);
  EXPECT_EQ(dom.to_ticks(Rational(0)), 0);
  EXPECT_EQ(dom.to_ticks(Rational(1)), 4);
  EXPECT_EQ(dom.to_ticks(Rational(5, 2)), 10);
  EXPECT_EQ(dom.to_ticks(Rational(7, 4)), 7);
  EXPECT_EQ(dom.to_ticks(Rational(-3, 4)), -3);
}

TEST(TickDomain, RejectsOffGridValues) {
  const TickDomain dom(4);
  EXPECT_EQ(dom.to_ticks(Rational(1, 3)), std::nullopt);
  EXPECT_EQ(dom.to_ticks(Rational(1, 8)), std::nullopt);
  EXPECT_EQ(dom.to_ticks(Rational(5, 6)), std::nullopt);
}

TEST(TickDomain, RejectsOverflowingCountsInsteadOfWrapping) {
  const TickDomain dom(1000);
  // kMax/1000 ticks would overflow: nullopt, never a wrapped value.
  EXPECT_EQ(dom.to_ticks(Rational(kMax)), std::nullopt);
  EXPECT_EQ(dom.to_ticks(Rational(kMin + 1)), std::nullopt);
  // The same magnitude fits at resolution 1.
  EXPECT_EQ(TickDomain(1).to_ticks(Rational(kMax)), kMax);
}

TEST(TickDomain, RoundTripsReproduceValueAndRendering) {
  const TickDomain dom(6);
  const Rational samples[] = {Rational(0),     Rational(5, 2), Rational(-7, 3),
                              Rational(11, 6), Rational(42),   Rational(1, 6)};
  for (const Rational& r : samples) {
    const auto t = dom.to_ticks(r);
    ASSERT_TRUE(t.has_value()) << r;
    EXPECT_EQ(dom.to_rational(*t), r);
    EXPECT_EQ(dom.to_rational(*t).str(), r.str());
  }
}

TEST(TickDomain, FoldDenominatorIsLcm) {
  EXPECT_EQ(TickDomain::fold_denominator(1, Rational(5, 2)), 2);
  EXPECT_EQ(TickDomain::fold_denominator(4, Rational(1, 6)), 12);
  EXPECT_EQ(TickDomain::fold_denominator(6, Rational(1, 4)), 12);
  EXPECT_EQ(TickDomain::fold_denominator(12, Rational(7)), 12);
  // Values already on the grid leave q unchanged.
  EXPECT_EQ(TickDomain::fold_denominator(8, Rational(3, 8)), 8);
}

TEST(TickDomain, FoldDenominatorReportsOverflow) {
  // lcm(prime-ish huge, other huge) overflows int64: nullopt, so the probe
  // that called it falls back to the Rational path.
  const std::int64_t big = (std::int64_t{1} << 62) + 1;  // odd
  EXPECT_EQ(TickDomain::fold_denominator(big, Rational(1, 3)), std::nullopt);
  EXPECT_EQ(TickDomain::fold_denominator(3, Rational(1, big)), std::nullopt);
}

TEST(TickDomain, FoldThenConvertAlwaysSucceedsOnTheFoldedGrid) {
  // The probe pattern: fold a set of times, then convert each. Conversion
  // can only fail on magnitude after a successful fold.
  std::int64_t q = 1;
  const Rational times[] = {Rational(5, 2), Rational(7, 3), Rational(9, 4)};
  for (const Rational& r : times) {
    const auto folded = TickDomain::fold_denominator(q, r);
    ASSERT_TRUE(folded.has_value());
    q = *folded;
  }
  EXPECT_EQ(q, 12);
  const TickDomain dom(q);
  for (const Rational& r : times) {
    const auto t = dom.to_ticks(r);
    ASSERT_TRUE(t.has_value()) << r;
    EXPECT_EQ(dom.to_rational(*t), r);
  }
}

}  // namespace
}  // namespace postal
