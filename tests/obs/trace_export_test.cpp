// Golden-file tests for the Chrome trace_event exporter: an exact expected
// document for the smallest broadcast, structural checks on the paper's
// Figure-1 run MPS(14, 5/2), and the zero-delivery (n = 1) edge case.
#include <gtest/gtest.h>

#include <string>

#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "obs/json_lint.hpp"
#include "obs/trace_export.hpp"
#include "sched/bcast.hpp"
#include "sim/validator.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Golden file: the smallest broadcast, byte for byte
// ---------------------------------------------------------------------------

TEST(ChromeTrace, GoldenSmallestBroadcast) {
  // MPS(2, 2): one send at t = 0, receive window [1, 2). With the default
  // 1000 us per unit this is the exporter's entire output, pinned exactly;
  // any format drift must be a conscious (and documented) change.
  const PostalParams params(2, Rational(2));
  const SimReport report = validate_schedule(bcast_schedule(params), params);
  ASSERT_TRUE(report.ok);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"p0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"p1\"}},"
      "{\"name\":\"send M1 -> p1\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
      "\"ts\":0,\"dur\":1000,\"args\":{\"msg\":0,\"t\":\"0\",\"dst\":1}},"
      "{\"name\":\"recv M1 <- p0\",\"ph\":\"X\",\"pid\":0,\"tid\":1,"
      "\"ts\":1000,\"dur\":1000,\"args\":{\"msg\":0,\"t\":\"0\",\"src\":0}}"
      "]}";
  EXPECT_EQ(obs::trace_to_chrome_json(report.trace, params), expected);
}

// ---------------------------------------------------------------------------
// Figure 1: MPS(14, 5/2) BCAST
// ---------------------------------------------------------------------------

TEST(ChromeTrace, Figure1RunIsValidTraceEventJson) {
  const PostalParams params(14, Rational(5, 2));
  const SimReport report = validate_schedule(bcast_schedule(params), params);
  ASSERT_TRUE(report.ok);
  ASSERT_EQ(report.trace.deliveries().size(), 13u);  // n-1 deliveries
  ASSERT_EQ(report.makespan, Rational(15, 2));

  const std::string json = obs::trace_to_chrome_json(report.trace, params);
  EXPECT_EQ(obs::json_lint(json), std::nullopt) << json;
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  // One track-name event per processor, one send + one recv window per
  // delivery (the Perfetto-visible payload).
  EXPECT_EQ(count_of(json, "\"ph\":\"M\""), 14u);
  EXPECT_EQ(count_of(json, "\"ph\":\"X\""), 26u);
  EXPECT_EQ(count_of(json, "\"name\":\"send "), 13u);
  EXPECT_EQ(count_of(json, "\"name\":\"recv "), 13u);
  // The paper's first send: p0 -> p9 at t = 0, received at 5/2 (receive
  // window starts at 3/2 model time = 1500 us).
  EXPECT_NE(json.find("{\"name\":\"send M1 -> p9\",\"ph\":\"X\",\"pid\":0,"
                      "\"tid\":0,\"ts\":0,\"dur\":1000"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"recv M1 <- p0\",\"ph\":\"X\",\"pid\":0,"
                      "\"tid\":9,\"ts\":1500,\"dur\":1000"),
            std::string::npos);
  // Exact times ride along in args even though ts/dur are floats (the run
  // has fractional send starts at 5/2, 7/2, 9/2).
  EXPECT_NE(json.find("\"t\":\"9/2\""), std::string::npos);
}

TEST(ChromeTrace, ScheduleExportMatchesTraceExportForBcast) {
  // The schedule-direct exporter derives the same windows the simulator
  // records, so both views of the Figure-1 run carry identical events
  // (order may differ: schedules sort by time, traces by arrival).
  const PostalParams params(14, Rational(5, 2));
  const Schedule schedule = bcast_schedule(params);
  const SimReport report = validate_schedule(schedule, params);

  const std::string from_schedule = obs::schedule_to_chrome_json(schedule, params);
  const std::string from_trace = obs::trace_to_chrome_json(report.trace, params);
  EXPECT_EQ(obs::json_lint(from_schedule), std::nullopt);
  EXPECT_EQ(count_of(from_schedule, "\"ph\":\"X\""),
            count_of(from_trace, "\"ph\":\"X\""));
  for (const SendEvent& e : schedule.events()) {
    const std::string name =
        "\"send M" + std::to_string(e.msg + 1) + " -> p" + std::to_string(e.dst) +
        "\"";
    EXPECT_NE(from_schedule.find(name), std::string::npos) << name;
    EXPECT_NE(from_trace.find(name), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------------
// The zero-delivery edge case (n = 1)
// ---------------------------------------------------------------------------

TEST(ChromeTrace, EmptyTraceExportsValidMetadataOnlyDocument) {
  // Broadcasting among n = 1 processors sends nothing: the trace has zero
  // deliveries, makespan 0 by convention (see Trace::makespan), and the
  // exporter must still produce a loadable trace.
  const PostalParams params(1, Rational(3));
  const Schedule schedule = bcast_schedule(params);
  EXPECT_TRUE(schedule.empty());
  const SimReport report = validate_schedule(schedule, params);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.trace.deliveries().size(), 0u);
  EXPECT_EQ(report.trace.makespan(), Rational(0));
  EXPECT_EQ(report.makespan, Rational(0));

  const std::string json = obs::trace_to_chrome_json(report.trace, params);
  EXPECT_EQ(obs::json_lint(json), std::nullopt) << json;
  EXPECT_EQ(count_of(json, "\"ph\":\"M\""), 1u);  // p0's track name only
  EXPECT_EQ(count_of(json, "\"ph\":\"X\""), 0u);
}

TEST(ChromeTrace, ThreadNamesCanBeDisabled) {
  const PostalParams params(1, Rational(3));
  obs::ChromeTraceOptions options;
  options.thread_names = false;
  const std::string json =
      obs::trace_to_chrome_json(Trace(1, 0), params, options);
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

// ---------------------------------------------------------------------------
// Packet-network export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, NetExportSpansRequestedToDelivered) {
  PacketNetwork net(Topology::complete(3, Rational(1)), NetConfig{});
  net.submit(0, 1, 0, Rational(0));
  net.submit(0, 2, 1, Rational(2));
  const auto deliveries = net.run();
  ASSERT_EQ(deliveries.size(), 2u);

  const std::string json = obs::net_to_chrome_json(deliveries, 3);
  EXPECT_EQ(obs::json_lint(json), std::nullopt) << json;
  EXPECT_EQ(count_of(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"name\":\"node0\""), std::string::npos);
  EXPECT_NE(json.find("packet M1 <- node0"), std::string::npos);
  EXPECT_NE(json.find("\"delivered\":\""), std::string::npos);
}

TEST(ChromeTrace, CustomTimeScale) {
  const PostalParams params(2, Rational(2));
  const SimReport report = validate_schedule(bcast_schedule(params), params);
  obs::ChromeTraceOptions options;
  options.micros_per_unit = 1.0;  // one postal unit = one trace microsecond
  const std::string json = obs::trace_to_chrome_json(report.trace, params, options);
  EXPECT_NE(json.find("\"ts\":1,\"dur\":1,"), std::string::npos) << json;
}

}  // namespace
}  // namespace postal
