// Tests for the observability core: metric kind semantics, exact Rational
// accumulation, JSONL snapshots, the JSON linter, bench records, and the
// machine/network stats the registry is fed from.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "net/packet_sim.hpp"
#include "net/topology.hpp"
#include "obs/bench_record.hpp"
#include "obs/instrument.hpp"
#include "obs/json_lint.hpp"
#include "obs/metrics.hpp"
#include "sched/bcast.hpp"
#include "sim/machine.hpp"
#include "sim/par_machine.hpp"
#include "sim/protocols/bcast_protocol.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// Metric kinds
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAndDefaultsToOne) {
  MetricsRegistry reg;
  reg.counter("events").add();
  reg.counter("events").add(41);
  EXPECT_EQ(reg.counter("events").value(), 42u);
  EXPECT_EQ(reg.size(), 1u);  // same name, same metric
}

TEST(Metrics, GaugeTracksHighWaterMark) {
  MetricsRegistry reg;
  obs::Gauge& depth = reg.gauge("fifo_depth");
  depth.set(3);
  depth.set(7);
  depth.set(2);
  EXPECT_EQ(depth.value(), 2);
  EXPECT_EQ(depth.max(), 7);
}

TEST(Metrics, RationalAccumulationIsExact) {
  MetricsRegistry reg;
  obs::RationalAccum& busy = reg.rational("port_busy");
  busy.add(Rational(1, 3));
  busy.add(Rational(1, 6));
  // 1/3 + 1/6 == 1/2 exactly; a float accumulator could not assert this.
  EXPECT_EQ(busy.total(), Rational(1, 2));
}

TEST(Metrics, TimerCountsSamples) {
  MetricsRegistry reg;
  {
    obs::ScopedTimer t(reg.timer("validate"));
  }
  {
    obs::ScopedTimer t(reg.timer("validate"));
  }
  EXPECT_EQ(reg.timer("validate").count(), 2u);
  reg.timer("manual").add_ns(2'500'000);
  EXPECT_DOUBLE_EQ(reg.timer("manual").total_ms(), 2.5);
}

TEST(Metrics, NameCannotChangeKind) {
  MetricsRegistry reg;
  reg.counter("x").add();
  EXPECT_THROW(reg.gauge("x"), InvalidArgument);
  EXPECT_THROW(reg.rational("x"), InvalidArgument);
  EXPECT_THROW(reg.timer("x"), InvalidArgument);
}

TEST(Metrics, ReferencesStayValidAcrossInserts) {
  MetricsRegistry reg;
  obs::Counter& first = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  first.add(5);
  EXPECT_EQ(reg.counter("a").value(), 5u);
}

// ---------------------------------------------------------------------------
// JSONL snapshot
// ---------------------------------------------------------------------------

TEST(Metrics, JsonlSnapshotIsSortedValidJson) {
  MetricsRegistry reg;
  reg.counter("z.count").add(3);
  reg.gauge("a.depth").set(-2);
  reg.rational("m.busy").add(Rational(15, 2));
  reg.timer("t.wall").add_ns(1000);
  const std::string out = reg.to_jsonl();
  EXPECT_EQ(obs::jsonl_lint(out), std::nullopt) << out;
  // Lines sorted by metric name: a.depth, m.busy, t.wall, z.count.
  std::istringstream in(out);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"a.depth\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"max\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"15/2\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"count\":1"), std::string::npos);
  EXPECT_NE(lines[3].find("\"value\":3"), std::string::npos);
}

TEST(Metrics, EmptyRegistrySerializesToEmptyString) {
  EXPECT_EQ(MetricsRegistry().to_jsonl(), "");
}

// ---------------------------------------------------------------------------
// JSON linter
// ---------------------------------------------------------------------------

TEST(JsonLint, AcceptsValidDocuments) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "-1.5e-3", "\"s\"", "[1,2,{\"a\":[]}]",
        "  {\"k\":\"v\\n\\u00e9\"}  ", "{\"a\":{\"b\":[false,null,0.25]}}"}) {
    EXPECT_EQ(obs::json_lint(ok), std::nullopt) << ok;
  }
}

TEST(JsonLint, RejectsInvalidDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "01", "nul", "\"unterminated",
        "{\"a\":1}{\"b\":2}", "[1 2]", "\"bad\\escape\"", "+1"}) {
    EXPECT_NE(obs::json_lint(bad), std::nullopt) << bad;
  }
}

TEST(JsonLint, JsonlChecksEveryLine) {
  EXPECT_EQ(obs::jsonl_lint("{\"a\":1}\n\n{\"b\":2}\n"), std::nullopt);
  const auto err = obs::jsonl_lint("{\"a\":1}\n{broken\n");
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("line 2"), std::string::npos) << *err;
}

// ---------------------------------------------------------------------------
// Machine instrumentation
// ---------------------------------------------------------------------------

TEST(MachineStats, CountsMatchScheduleAndTrace) {
  const PostalParams params(14, Rational(5, 2));
  Machine machine(params, 1);
  BcastProtocol protocol(params);
  const MachineResult result = machine.run(protocol);

  EXPECT_EQ(result.stats.events_processed, result.trace.deliveries().size());
  EXPECT_EQ(result.stats.sends_enqueued, result.schedule.size());
  // Each send occupies the output port for exactly one unit.
  const auto sends = result.schedule.sends_per_proc(params.n());
  ASSERT_EQ(result.stats.port_busy.size(), params.n());
  for (ProcId p = 0; p < params.n(); ++p) {
    EXPECT_EQ(result.stats.port_busy[p],
              Rational(static_cast<std::int64_t>(sends[p])));
  }
  // The BCAST origin enqueues its whole send chain up front, so the FIFO
  // really backs up: p0 performs 6 sends in MPS(14, 5/2).
  EXPECT_EQ(result.stats.max_fifo_depth, 6u);
  EXPECT_GT(result.stats.sends_deferred, 0u);
  EXPECT_LT(result.stats.sends_deferred, result.stats.sends_enqueued);
}

TEST(MachineStats, RecordIntoRegistry) {
  const PostalParams params(8, Rational(2));
  Machine machine(params, 1);
  BcastProtocol protocol(params);
  const MachineResult result = machine.run(protocol);

  MetricsRegistry reg;
  obs::record_machine_stats(reg, result.stats);
  EXPECT_EQ(reg.counter("machine.events_processed").value(),
            result.stats.events_processed);
  EXPECT_EQ(reg.rational("machine.port_busy.total").total(),
            Rational(static_cast<std::int64_t>(result.schedule.size())));
  EXPECT_EQ(reg.gauge("machine.max_fifo_depth").max(),
            static_cast<std::int64_t>(result.stats.max_fifo_depth));
  EXPECT_EQ(obs::jsonl_lint(reg.to_jsonl()), std::nullopt);
}

TEST(MachineStats, RecordParRunIntoRegistry) {
  const PostalParams params(32, Rational(2));
  ParMachine machine(params, 1);
  machine.set_threads(4);
  auto factory = make_protocol_factory<BcastProtocol>(params);
  static_cast<void>(machine.run(factory));
  const ParRunInfo& info = machine.last_run_info();
  ASSERT_TRUE(info.parallel_engine);

  MetricsRegistry reg;
  obs::record_par_run(reg, info);
  EXPECT_EQ(reg.gauge("par.parallel_engine").max(), 1);
  EXPECT_EQ(reg.gauge("par.shards").max(), static_cast<std::int64_t>(info.shards));
  EXPECT_EQ(reg.counter("par.windows").value(), info.windows);
  EXPECT_EQ(reg.counter("par.barrier_events").value(), info.barrier_events);
  EXPECT_EQ(reg.counter("par.replayed_pops").value(), info.replayed_pops);
  std::uint64_t stalled = 0;
  for (std::uint32_t s = 0; s < info.shards; ++s) {
    const std::string base = "par.shard" + std::to_string(s);
    EXPECT_EQ(reg.counter(base + ".pops").value(), info.shard[s].pops);
    stalled += reg.counter(base + ".stalled_windows").value();
  }
  std::uint64_t expected_stalled = 0;
  for (const ParShardInfo& s : info.shard) expected_stalled += s.stalled_windows;
  EXPECT_EQ(stalled, expected_stalled);
  EXPECT_EQ(obs::jsonl_lint(reg.to_jsonl()), std::nullopt);
}

TEST(MachineStats, ResetBetweenRuns) {
  const PostalParams params(8, Rational(2));
  Machine machine(params, 1);
  BcastProtocol protocol(params);
  const MachineResult first = machine.run(protocol);
  const MachineResult second = machine.run(protocol);
  EXPECT_EQ(first.stats.events_processed, second.stats.events_processed);
  EXPECT_EQ(first.stats.port_busy, second.stats.port_busy);
}

// ---------------------------------------------------------------------------
// Network instrumentation
// ---------------------------------------------------------------------------

TEST(NetStats, WireUtilizationOnALine) {
  // 3-node line: 0 -> 2 routes through 1, so two wires serialize once each.
  PacketNetwork net(Topology::mesh2d(1, 3, Rational(1)), NetConfig{});
  net.submit(0, 2, 0, Rational(0));
  const auto deliveries = net.run();
  ASSERT_EQ(deliveries.size(), 1u);

  const NetRunStats& stats = net.last_run_stats();
  EXPECT_EQ(stats.packets_delivered, 1u);
  EXPECT_EQ(stats.hops_total, 2u);
  EXPECT_EQ(stats.jitter_draws, 0u);
  EXPECT_EQ(stats.egress_busy_total, NetConfig{}.send_overhead);
  EXPECT_EQ(stats.ingress_busy_total, NetConfig{}.recv_overhead);
  EXPECT_EQ(stats.makespan, deliveries.front().delivered);
  ASSERT_EQ(stats.wires.size(), 2u);
  EXPECT_EQ(stats.wires[0].from, 0u);
  EXPECT_EQ(stats.wires[0].to, 1u);
  EXPECT_EQ(stats.wires[0].packets, 1u);
  EXPECT_EQ(stats.wires[0].busy, NetConfig{}.wire_time);
  EXPECT_EQ(stats.wires[1].from, 1u);
  EXPECT_EQ(stats.wires[1].to, 2u);
}

TEST(NetStats, JitterDrawsCountedAndRegistryRoundTrip) {
  NetConfig config;
  config.jitter_max = Rational(1, 2);
  PacketNetwork net(Topology::complete(4, Rational(1)), config);
  for (NodeId dst = 1; dst < 4; ++dst) net.submit(0, dst, 0, Rational(0));
  const auto deliveries = net.run();
  ASSERT_EQ(deliveries.size(), 3u);
  const NetRunStats& stats = net.last_run_stats();
  EXPECT_EQ(stats.jitter_draws, stats.hops_total);  // one draw per hop

  MetricsRegistry reg;
  obs::record_net_stats(reg, stats);
  EXPECT_EQ(reg.counter("net.packets_delivered").value(), 3u);
  EXPECT_EQ(reg.counter("net.hops_total").value(), stats.hops_total);
  Rational wire_total(0);
  for (const WireUse& use : stats.wires) wire_total += use.busy;
  EXPECT_EQ(reg.rational("net.wire_busy.total").total(), wire_total);
  EXPECT_EQ(obs::jsonl_lint(reg.to_jsonl()), std::nullopt);
}

TEST(NetStats, EmptyBeforeFirstRunAndResetBetweenRuns) {
  PacketNetwork net(Topology::complete(3, Rational(1)), NetConfig{});
  EXPECT_EQ(net.last_run_stats().packets_delivered, 0u);
  net.submit(0, 1, 0, Rational(0));
  (void)net.run();
  EXPECT_EQ(net.last_run_stats().packets_delivered, 1u);
  // Reused with no traffic: stats reflect the (empty) latest run.
  (void)net.run();
  EXPECT_EQ(net.last_run_stats().packets_delivered, 0u);
  EXPECT_EQ(net.last_run_stats().makespan, Rational(0));
}

// ---------------------------------------------------------------------------
// Bench records
// ---------------------------------------------------------------------------

obs::BenchRecord sample_record() {
  obs::BenchRecord rec;
  rec.bench = "bench_fig1_tree";
  rec.n = 14;
  rec.lambda = Rational(5, 2);
  rec.m = 1;
  rec.makespan = Rational(15, 2);
  rec.wall_ms = 0.5;
  rec.verdict = "MATCHES PAPER";
  rec.extra = {{"figure", "1"}};
  return rec;
}

TEST(BenchRecord, JsonCarriesTheStableKeys) {
  const std::string json = bench_record_to_json(sample_record());
  EXPECT_EQ(obs::json_lint(json), std::nullopt) << json;
  for (const char* key : {"\"bench\":\"bench_fig1_tree\"", "\"n\":14",
                          "\"lambda\":\"5/2\"", "\"m\":1", "\"makespan\":\"15/2\"",
                          "\"wall_ms\":0.5", "\"verdict\":\"MATCHES PAPER\"",
                          "\"figure\":\"1\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
}

TEST(BenchRecord, EmitHonorsEnvironmentVariable) {
  const std::string path =
      ::testing::TempDir() + "/postal_bench_record_test.jsonl";
  std::remove(path.c_str());

  ASSERT_EQ(unsetenv("POSTAL_BENCH_JSON"), 0);
  EXPECT_FALSE(obs::emit_bench_record(sample_record()));

  ASSERT_EQ(setenv("POSTAL_BENCH_JSON", path.c_str(), 1), 0);
  EXPECT_TRUE(obs::emit_bench_record(sample_record()));
  EXPECT_TRUE(obs::emit_bench_record(sample_record()));  // appends
  ASSERT_EQ(unsetenv("POSTAL_BENCH_JSON"), 0);

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(obs::jsonl_lint(content.str()), std::nullopt);
  std::size_t lines = 0;
  std::string line;
  std::istringstream reread(content.str());
  while (std::getline(reread, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(BenchRecord, EmitToUnwritablePathWarnsInsteadOfThrowing) {
  // An opt-in side channel must never crash a finished bench: a bad path
  // drops the record with a stderr warning and reports false.
  ASSERT_EQ(setenv("POSTAL_BENCH_JSON", "/nonexistent-dir/records.jsonl", 1), 0);
  EXPECT_FALSE(obs::emit_bench_record(sample_record()));
  ASSERT_EQ(unsetenv("POSTAL_BENCH_JSON"), 0);
}

}  // namespace
}  // namespace postal
