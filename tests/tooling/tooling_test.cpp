// Tests for the tooling layer: Gantt rendering, JSON export, and the tree
// shape histograms.
#include <gtest/gtest.h>

#include <numeric>

#include "sched/bcast.hpp"
#include "sched/broadcast_tree.hpp"
#include "sched/gantt.hpp"
#include "sim/json.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

// ---------------------------------------------------------------------------
// Gantt
// ---------------------------------------------------------------------------

TEST(Gantt, EmptyScheduleRendersPlaceholder) {
  const PostalParams params(3, Rational(2));
  EXPECT_NE(render_gantt(Schedule(), params).find("(empty schedule)"),
            std::string::npos);
}

TEST(Gantt, SingleSendPaintsBothPorts) {
  const PostalParams params(2, Rational(3));
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  const std::string out = render_gantt(s, params);
  // p0 sends during cell 0; p1 receives during cell 2 (of 3 cells).
  EXPECT_NE(out.find("p0  snd |S..|"), std::string::npos) << out;
  EXPECT_NE(out.find("rcv |..R|"), std::string::npos) << out;
  EXPECT_NE(out.find("horizon t = 3"), std::string::npos);
}

TEST(Gantt, FractionalLambdaUsesFineGrid) {
  const PostalParams params(2, Rational(5, 2));
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  const std::string out = render_gantt(s, params);
  EXPECT_NE(out.find("1 column = 1/2 unit"), std::string::npos) << out;
  // send occupies cells 0-1 (one unit = two half-cells).
  EXPECT_NE(out.find("p0  snd |SS...|"), std::string::npos) << out;
  // receive occupies [3/2, 5/2) = cells 3-4.
  EXPECT_NE(out.find("rcv |...RR|"), std::string::npos) << out;
}

TEST(Gantt, OverlapRendersHash) {
  const PostalParams params(3, Rational(2));
  Schedule s;
  s.add(0, 1, 0, Rational(0));
  s.add(0, 2, 0, Rational(1, 2));  // illegal overlap on p0's send port
  const std::string out = render_gantt(s, params);
  EXPECT_NE(out.find('#'), std::string::npos) << out;
}

TEST(Gantt, MessageIdModeShowsDigits) {
  const PostalParams params(2, Rational(2));
  Schedule s;
  s.add(0, 1, 7, Rational(0));
  GanttOptions options;
  options.show_message_ids = true;
  const std::string out = render_gantt(s, params, options);
  EXPECT_NE(out.find('7'), std::string::npos) << out;
}

TEST(Gantt, TruncatesWideCharts) {
  const PostalParams params(2, Rational(2));
  Schedule s;
  s.add(0, 1, 0, Rational(500));
  GanttOptions options;
  options.max_columns = 40;
  const std::string out = render_gantt(s, params, options);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

TEST(Gantt, FullBcastScheduleRendersEveryProcessor) {
  const PostalParams params(14, Rational(5, 2));
  const std::string out = render_gantt(bcast_schedule(params), params);
  for (ProcId p = 0; p < 14; ++p) {
    EXPECT_NE(out.find("p" + std::to_string(p)), std::string::npos);
  }
  // A legal schedule never renders '#'.
  EXPECT_EQ(out.find('#'), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Json, ScheduleSerializesExactRationals) {
  const PostalParams params(2, Rational(5, 2));
  Schedule s;
  s.add(0, 1, 0, Rational(3, 2));
  const std::string json = schedule_to_json(s, params);
  EXPECT_EQ(json,
            "{\"lambda\":\"5/2\",\"n\":2,\"events\":"
            "[{\"src\":0,\"dst\":1,\"msg\":0,\"t\":\"3/2\"}]}");
}

TEST(Json, EmptySchedule) {
  const PostalParams params(1, Rational(1));
  EXPECT_EQ(schedule_to_json(Schedule(), params),
            "{\"lambda\":\"1\",\"n\":1,\"events\":[]}");
}

TEST(Json, ReportSerializesVerdictAndViolations) {
  const PostalParams params(3, Rational(2));
  Schedule bad;
  bad.add(0, 1, 0, Rational(0));
  bad.add(0, 2, 0, Rational(0));
  const SimReport report = validate_schedule(bad, params);
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[\""), std::string::npos);

  const SimReport good = validate_schedule(bcast_schedule(params), params);
  const std::string good_json = report_to_json(good);
  EXPECT_NE(good_json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(good_json.find("\"makespan\":\""), std::string::npos);
  EXPECT_NE(good_json.find("\"violations\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tree histograms
// ---------------------------------------------------------------------------

TEST(TreeShape, BinomialDepthHistogramIsBinomialCoefficients) {
  // At lambda = 1 and n = 2^k the tree is the binomial tree B_k, whose
  // depth histogram is C(k, d).
  const BroadcastTree t = BroadcastTree::fibonacci(32, Rational(1));
  EXPECT_EQ(t.depth_histogram(), (std::vector<std::uint64_t>{1, 5, 10, 10, 5, 1}));
}

TEST(TreeShape, HistogramSumsToN) {
  for (const Rational lambda : {Rational(1), Rational(5, 2), Rational(4)}) {
    for (std::uint64_t n : {2ULL, 14ULL, 100ULL}) {
      const BroadcastTree t = BroadcastTree::fibonacci(n, lambda);
      const auto depth = t.depth_histogram();
      const auto degree = t.degree_histogram();
      EXPECT_EQ(std::accumulate(depth.begin(), depth.end(), 0ULL), n);
      EXPECT_EQ(std::accumulate(degree.begin(), degree.end(), 0ULL), n);
    }
  }
}

TEST(TreeShape, Figure1Histograms) {
  const BroadcastTree t = BroadcastTree::fibonacci(14, Rational(5, 2));
  // Root at depth 0; 6 direct children; 6 grandchildren; 1 at depth 3
  // (p13) -- from the Figure 1 rendering.
  EXPECT_EQ(t.depth_histogram(), (std::vector<std::uint64_t>{1, 6, 6, 1}));
  EXPECT_EQ(t.max_degree(), 6u);
}

TEST(TreeShape, StarAndLineHistograms) {
  const BroadcastTree star = BroadcastTree::dary(6, 5);
  EXPECT_EQ(star.depth_histogram(), (std::vector<std::uint64_t>{1, 5}));
  const BroadcastTree line = BroadcastTree::dary(4, 1);
  EXPECT_EQ(line.depth_histogram(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(line.degree_histogram(), (std::vector<std::uint64_t>{1, 3}));
}

}  // namespace
}  // namespace postal
