// Coordinator routing in the broadcast service (docs/COORDINATION.md):
// the control-plane election at construction, the mid-workload failover
// window deferring job starts, and the strictly conditional report block
// (coord-off reports must stay byte-identical to the pre-feature schema).
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "coord/election.hpp"
#include "model/params.hpp"
#include "support/error.hpp"
#include "support/rational.hpp"
#include "svc/service.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using svc::BroadcastService;
using svc::Job;
using svc::JobOutcome;
using svc::ServiceOptions;
using svc::ServiceReport;

Job make_job(std::uint64_t id, Rational arrival, std::uint64_t n = 4,
             Rational lambda = Rational(2)) {
  Job job;
  job.id = id;
  job.arrival = std::move(arrival);
  job.n = n;
  job.lambda = std::move(lambda);
  job.m = 1;
  return job;
}

TEST(ServiceCoord, OffByDefaultAndAbsentFromJson) {
  BroadcastService service;
  static_cast<void>(service.submit(make_job(0, Rational(0))));
  const ServiceReport report = service.drain();
  EXPECT_EQ(report.counters.coord_elections, 0u);
  EXPECT_EQ(report.coord_ranks, 0u);
  EXPECT_EQ(report.to_json().find("coord_"), std::string::npos);
}

TEST(ServiceCoord, FaultFreeElectionSeatsRankZeroWithoutDeferrals) {
  ServiceOptions options;
  options.coord_ranks = 5;
  BroadcastService service(options);
  EXPECT_EQ(service.counters().coord_elections, 1u);
  const JobOutcome a = service.submit(make_job(0, Rational(0)));
  const JobOutcome b = service.submit(make_job(1, Rational(1)));
  EXPECT_EQ(a.start, Rational(0));
  EXPECT_EQ(b.start, a.completion);  // FIFO, no coord interference
  const ServiceReport report = service.drain();
  EXPECT_EQ(report.coord_ranks, 5u);
  EXPECT_EQ(report.coord_leader, 0u);
  EXPECT_EQ(report.counters.coord_failovers, 0u);
  EXPECT_EQ(report.counters.coord_deferred, 0u);
  EXPECT_EQ(report.coord_window_start, report.coord_window_end);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"coord_ranks\":5"), std::string::npos);
  EXPECT_NE(json.find("\"coord_leader\":0"), std::string::npos);
}

TEST(ServiceCoord, FailoverDefersStartsInsideTheLeaderlessWindow) {
  ServiceOptions options;
  options.coord_ranks = 5;
  options.coord_lambda = Rational(2);
  options.coord_crash_at = Rational(10);

  // Independent reference run of the failover election: the service's
  // leaderless window must be exactly [crash, elected_at).
  const PostalParams params(options.coord_ranks, options.coord_lambda);
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, options.coord_crash_at});
  coord::ElectionOptions eopts;
  eopts.threads = 1;
  const coord::ElectionReport reference =
      coord::run_election(params, &plan, eopts);
  ASSERT_TRUE(reference.check.ok);
  const Rational window_end = reference.elected_at;
  ASSERT_TRUE(options.coord_crash_at < window_end);

  BroadcastService service(options);
  EXPECT_EQ(service.counters().coord_elections, 2u);
  EXPECT_EQ(service.counters().coord_failovers, 1u);

  // Before the crash: unaffected.
  const JobOutcome early = service.submit(make_job(0, Rational(0)));
  EXPECT_EQ(early.start, Rational(0));
  // Arrival inside the window (the first job's completion is f_2(4) = 5,
  // so the server is free): deferred to the successor's victory.
  const JobOutcome inside = service.submit(make_job(1, Rational(12)));
  EXPECT_EQ(inside.start, window_end);
  // Well after the window: back to plain max(arrival, server-free).
  const Rational late_arrival = window_end + inside.planned_makespan + Rational(100);
  const JobOutcome late = service.submit(make_job(2, late_arrival));
  EXPECT_EQ(late.start, late_arrival);

  const ServiceReport report = service.drain();
  EXPECT_EQ(report.coord_leader, reference.leader);
  EXPECT_EQ(report.coord_leader, 4u);  // classic bully: highest survivor
  EXPECT_EQ(report.counters.coord_deferred, 1u);
  EXPECT_EQ(report.coord_window_start, options.coord_crash_at);
  EXPECT_EQ(report.coord_window_end, window_end);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"coord_failovers\":1"), std::string::npos);
  EXPECT_NE(json.find("\"coord_deferred\":1"), std::string::npos);
}

TEST(ServiceCoord, DeferralAppliesWhenTheQueuePushesAStartIntoTheWindow) {
  ServiceOptions options;
  options.coord_ranks = 3;
  options.coord_crash_at = Rational(4);
  BroadcastService service(options);
  // Arrives at 0, served immediately: completion 4 (f_2(4)) lands exactly
  // on the crash, so the *next* job's natural start 4 opens the window.
  const JobOutcome first = service.submit(make_job(0, Rational(0)));
  EXPECT_EQ(first.completion, Rational(4));
  const JobOutcome second = service.submit(make_job(1, Rational(1)));
  EXPECT_LT(Rational(4), second.start);
  EXPECT_EQ(service.counters().coord_deferred, 1u);
  static_cast<void>(service.drain());
}

TEST(ServiceCoord, CrashRequiresAtLeastTwoRanks) {
  ServiceOptions options;
  options.coord_ranks = 1;
  options.coord_crash_at = Rational(3);
  POSTAL_EXPECT_THROW(BroadcastService{options}, InvalidArgument);
}

}  // namespace
}  // namespace postal
