// The service chaos gate (docs/SERVICE.md, docs/FAULTS.md): a serve run
// under a fault seed executes its sampled jobs through run_reliable_bcast
// with per-job seeded FaultPlans. The service itself enforces delivery
// (every live processor covered) and certification (the crash-aware
// validator accepts the run) via internal checks that throw LogicError --
// so completing at all is the integration assertion; this suite adds the
// accounting invariants, the recovery-billing contract, and determinism
// across reruns and engine configurations.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/genfib.hpp"
#include "support/rational.hpp"
#include "svc/service.hpp"
#include "svc/workload.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using svc::ServiceOptions;
using svc::ServiceReport;
using svc::WorkloadSpec;

/// Integer lambda keeps the reliable protocol's ack timers on the tick
/// grid, so threads > 1 really exercises the sharded ParMachine.
const char* kChaosSpec = "onoff;grid=8;rate=4;on=16;off=32;jobs=40;mix=w1:n48:l2:m1";

ServiceOptions chaos_options(unsigned threads) {
  ServiceOptions options;
  options.queue_capacity = 16;
  options.exec_every = 1;  // every admitted job runs event-driven
  options.fault_seed = 99;
  options.threads = threads;
  return options;
}

TEST(ServiceChaos, FaultedRunsCompleteCertifiedWithConsistentCounters) {
  const WorkloadSpec spec = WorkloadSpec::parse(kChaosSpec);
  const ServiceReport report = svc::run_service(spec, 3, chaos_options(1));
  const auto& c = report.counters;

  // Conservation still holds under faults.
  EXPECT_EQ(c.generated, spec.jobs);
  EXPECT_EQ(c.generated, c.admitted + c.shed);
  EXPECT_EQ(c.admitted, c.completed);

  // Every admitted job was sampled (exec_every = 1, all n >= 2, m == 1),
  // and each run was either fault-free-verified or ran under a plan.
  EXPECT_EQ(c.exec_runs, c.admitted);
  EXPECT_EQ(c.exec_verified + c.exec_faulted, c.exec_runs);

  // The fault seed must actually bite: across 40 jobs the per-job plans
  // produce crashes and retransmission work somewhere.
  EXPECT_GT(c.exec_faulted, 0u);
  EXPECT_GT(c.exec_retransmissions, 0u);
  EXPECT_GT(c.exec_crashed, 0u);

  // Recovery work bills real time: the mean sojourn can only be >= the
  // fault-free baseline would allow, and the horizon covers every job.
  EXPECT_FALSE(report.horizon < report.sojourn_max);
}

TEST(ServiceChaos, ChaosRunsReplayByteIdenticallyAcrossEngines) {
  const WorkloadSpec spec = WorkloadSpec::parse(kChaosSpec);
  const std::string reference = svc::run_service(spec, 3, chaos_options(1)).to_json();
  // Rerun: the per-job fault plans are a pure function of
  // (fault_seed, job id), so the whole chaotic run replays exactly.
  EXPECT_EQ(svc::run_service(spec, 3, chaos_options(1)).to_json(), reference);
  // Sharded engine: same bytes from 2 and 4 lanes.
  EXPECT_EQ(svc::run_service(spec, 3, chaos_options(2)).to_json(), reference);
  EXPECT_EQ(svc::run_service(spec, 3, chaos_options(4)).to_json(), reference);
}

TEST(ServiceChaos, DifferentFaultSeedsProduceDifferentChaos) {
  const WorkloadSpec spec = WorkloadSpec::parse(kChaosSpec);
  ServiceOptions a = chaos_options(1);
  ServiceOptions b = chaos_options(1);
  b.fault_seed = 100;
  // Same workload stream, different fault universe: the reports may agree
  // on admission counts but not on the executed-run forensics.
  const ServiceReport ra = svc::run_service(spec, 3, a);
  const ServiceReport rb = svc::run_service(spec, 3, b);
  EXPECT_EQ(ra.counters.generated, rb.counters.generated);
  EXPECT_NE(ra.to_json(), rb.to_json());
}

TEST(ServiceChaos, FaultSeedZeroIsTheFaultFreeService) {
  const WorkloadSpec spec = WorkloadSpec::parse(kChaosSpec);
  ServiceOptions options = chaos_options(1);
  options.fault_seed = 0;
  const ServiceReport report = svc::run_service(spec, 3, options);
  const auto& c = report.counters;
  EXPECT_EQ(c.exec_runs, c.admitted);
  EXPECT_EQ(c.exec_verified, c.exec_runs);  // every run matched the plan exactly
  EXPECT_EQ(c.exec_faulted, 0u);
  EXPECT_EQ(c.exec_crashed, 0u);
  EXPECT_EQ(c.exec_retransmissions, 0u);
  // Fault-free, every sojourn sits on the folded grid.
  EXPECT_EQ(c.sojourn_offgrid, 0u);
}

TEST(ServiceChaos, RecoveryOverheadInflatesBilledSojourns) {
  // Single deterministic job under a crash-free but lossy fault plan:
  // lost data sends force retransmissions, so the billed completion must
  // exceed the fault-free baseline f_lambda(n) whenever retransmission
  // work happened on the critical path. We assert the weaker, always-true
  // direction: billed time is never below the only lower bound a lossy
  // run has (the baseline holds only when nobody crashed).
  const WorkloadSpec spec =
      WorkloadSpec::parse("poisson;grid=4;rate=4;jobs=8;mix=w1:n32:l2:m1");
  ServiceOptions options = chaos_options(1);
  options.fault_options.crashes = 0;  // loss only: live population is all of n
  options.fault_options.loss_p = Rational(1, 2);
  options.fault_options.lossy_links = 12;
  const ServiceReport report = svc::run_service(spec, 17, options);
  const auto& c = report.counters;
  EXPECT_EQ(c.exec_crashed, 0u);
  const Rational baseline = GenFib(Rational(2)).f(32);
  // With nobody crashed, no run can beat Theorem 6's optimal time, so the
  // maximum sojourn is at least the baseline (and strictly above it when
  // retransmissions landed on the critical path).
  EXPECT_FALSE(report.sojourn_max < baseline);
  if (c.exec_retransmissions > 0) {
    EXPECT_GT(c.exec_faulted, 0u);
  }
}

}  // namespace
}  // namespace postal
