// Tests for the seeded open-loop workload layer (docs/SERVICE.md):
// canonical spec round-trips, validation bounds, generator determinism,
// strictly increasing arrivals on the tick grid, and the ON/OFF square
// wave's silence guarantee.
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rational.hpp"
#include "svc/workload.hpp"
#include "test_util.hpp"

namespace postal {
namespace {

using svc::ArrivalKind;
using svc::Job;
using svc::MixEntry;
using svc::WorkloadGenerator;
using svc::WorkloadSpec;

std::vector<Job> all_jobs(const WorkloadSpec& spec, std::uint64_t seed) {
  WorkloadGenerator gen(spec, seed);
  std::vector<Job> jobs;
  while (auto job = gen.next()) jobs.push_back(*job);
  return jobs;
}

// ---------------------------------------------------------------------------
// Canonical string form
// ---------------------------------------------------------------------------

TEST(WorkloadSpec, PoissonRoundTripsThroughCanonicalString) {
  WorkloadSpec spec;
  spec.arrivals = ArrivalKind::kPoisson;
  spec.grid = 16;
  spec.rate = Rational(1, 4);
  spec.jobs = 1000;
  spec.mix = {MixEntry{1, 64, Rational(2), 1}, MixEntry{1, 256, Rational(5, 2), 1}};

  const std::string text = spec.to_string();
  EXPECT_EQ(text,
            "poisson;grid=16;rate=1/4;jobs=1000;mix=w1:n64:l2:m1|w1:n256:l5/2:m1");
  EXPECT_EQ(WorkloadSpec::parse(text), spec);
}

TEST(WorkloadSpec, OnOffRoundTripsThroughCanonicalString) {
  WorkloadSpec spec;
  spec.arrivals = ArrivalKind::kOnOff;
  spec.grid = 8;
  spec.rate = Rational(1, 2);
  spec.on_ticks = 64;
  spec.off_ticks = 192;
  spec.jobs = 500;
  spec.mix = {MixEntry{3, 64, Rational(2), 1}, MixEntry{1, 32, Rational(1), 4}};

  const std::string text = spec.to_string();
  EXPECT_EQ(text,
            "onoff;grid=8;rate=1/2;on=64;off=192;jobs=500;"
            "mix=w3:n64:l2:m1|w1:n32:l1:m4");
  EXPECT_EQ(WorkloadSpec::parse(text), spec);
}

TEST(WorkloadSpec, ParseRejectsMalformedInput) {
  // Unknown family / key / malformed mix entries and numbers.
  POSTAL_EXPECT_THROW(WorkloadSpec::parse(""), InvalidArgument);
  POSTAL_EXPECT_THROW(WorkloadSpec::parse("uniform;grid=16;rate=1;jobs=1;"
                                          "mix=w1:n2:l1:m1"),
                      InvalidArgument);
  POSTAL_EXPECT_THROW(WorkloadSpec::parse("poisson;grid=16;rate=1;jobs=1;"
                                          "mix=w1:n2:l1:m1;bogus=3"),
                      InvalidArgument);
  POSTAL_EXPECT_THROW(WorkloadSpec::parse("poisson;grid=16;rate=1;jobs=1"),
                      InvalidArgument);  // missing mix
  POSTAL_EXPECT_THROW(WorkloadSpec::parse("poisson;grid=16;rate=1;jobs=1;"
                                          "mix=n2:l1:m1"),
                      InvalidArgument);  // mix entry missing weight
  POSTAL_EXPECT_THROW(WorkloadSpec::parse("poisson;grid=x;rate=1;jobs=1;"
                                          "mix=w1:n2:l1:m1"),
                      InvalidArgument);
  // on/off keys only make sense for onoff.
  POSTAL_EXPECT_THROW(WorkloadSpec::parse("poisson;grid=16;rate=1;on=4;off=4;"
                                          "jobs=1;mix=w1:n2:l1:m1"),
                      InvalidArgument);
}

TEST(WorkloadSpec, ValidateEnforcesEveryBound) {
  const WorkloadSpec good;
  EXPECT_NO_THROW(good.validate());

  WorkloadSpec spec = good;
  spec.grid = 0;
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.rate = Rational(0);
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  // rate > grid would need a per-tick Bernoulli probability above 1.
  spec = good;
  spec.rate = Rational(spec.grid + 1);
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.mix.clear();
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.mix[0].weight = 0;
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.mix[0].n = 0;
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.mix[0].lambda = Rational(1, 2);
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.mix[0].m = 0;
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.arrivals = ArrivalKind::kOnOff;
  spec.on_ticks = 0;
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = good;
  spec.arrivals = ArrivalKind::kOnOff;
  spec.off_ticks = -1;
  POSTAL_EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(WorkloadSpec, SojournGridFoldsGridAndMixLambdaDenominators) {
  WorkloadSpec spec;
  spec.grid = 16;
  spec.mix = {MixEntry{1, 64, Rational(5, 2), 1}, MixEntry{1, 32, Rational(7, 3), 1}};
  // lcm(16, 2, 3) = 48.
  ASSERT_TRUE(spec.sojourn_grid().has_value());
  EXPECT_EQ(*spec.sojourn_grid(), 48);

  // Integer lambdas add nothing beyond the arrival grid.
  spec.mix = {MixEntry{1, 64, Rational(2), 1}};
  ASSERT_TRUE(spec.sojourn_grid().has_value());
  EXPECT_EQ(*spec.sojourn_grid(), 16);
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(WorkloadGenerator, EqualSpecAndSeedReproduceTheIdenticalSequence) {
  const WorkloadSpec spec = WorkloadSpec::parse(
      "poisson;grid=16;rate=1/2;jobs=300;mix=w2:n64:l2:m1|w1:n256:l5/2:m1");
  const std::vector<Job> a = all_jobs(spec, 12345);
  const std::vector<Job> b = all_jobs(spec, 12345);
  EXPECT_EQ(a, b);

  // A different seed must not produce the same stream (arrival pattern or
  // mix draw differs somewhere in 300 jobs with overwhelming probability).
  const std::vector<Job> c = all_jobs(spec, 12346);
  EXPECT_NE(a, c);
}

TEST(WorkloadGenerator, EmitsExactlyJobsWithDenseIdsAndStrictlyIncreasingArrivals) {
  const WorkloadSpec spec = WorkloadSpec::parse(
      "poisson;grid=4;rate=1;jobs=500;mix=w1:n16:l1:m1");
  const std::vector<Job> jobs = all_jobs(spec, 7);
  ASSERT_EQ(jobs.size(), 500u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    // Arrivals sit on the tick grid: arrival * grid is an integer >= 1.
    EXPECT_EQ(4 % jobs[i].arrival.den(), 0) << "job " << i;
    if (i > 0) {
      EXPECT_LT(jobs[i - 1].arrival, jobs[i].arrival) << "job " << i;
    }
  }

  WorkloadGenerator gen(spec, 7);
  while (gen.next()) {
  }
  EXPECT_EQ(gen.emitted(), 500u);
  EXPECT_EQ(gen.next(), std::nullopt);  // exhausted stays exhausted
}

TEST(WorkloadGenerator, DrawsEveryMixEntryAndOnlyMixEntries) {
  const WorkloadSpec spec = WorkloadSpec::parse(
      "poisson;grid=4;rate=2;jobs=400;mix=w1:n16:l1:m1|w1:n64:l2:m1|w2:n8:l1:m3");
  std::set<std::uint64_t> seen_n;
  for (const Job& job : all_jobs(spec, 99)) {
    seen_n.insert(job.n);
    const bool known = (job.n == 16 && job.lambda == Rational(1) && job.m == 1) ||
                       (job.n == 64 && job.lambda == Rational(2) && job.m == 1) ||
                       (job.n == 8 && job.lambda == Rational(1) && job.m == 3);
    EXPECT_TRUE(known) << "job shape outside the mix: n=" << job.n;
  }
  EXPECT_EQ(seen_n, (std::set<std::uint64_t>{8, 16, 64}));
}

TEST(WorkloadGenerator, OnOffIsSilentDuringEveryOffPhase) {
  // rate == grid: every ON tick fires, so arrivals are exactly the ON
  // ticks -- the square wave laid bare.
  const WorkloadSpec spec = WorkloadSpec::parse(
      "onoff;grid=4;rate=4;on=8;off=24;jobs=64;mix=w1:n16:l1:m1");
  const std::vector<Job> jobs = all_jobs(spec, 5);
  ASSERT_EQ(jobs.size(), 64u);
  for (const Job& job : jobs) {
    // arrival = tick/grid with tick in an ON window:
    // (tick - 1) % (on + off) < on.
    const Rational ticks = job.arrival * Rational(4);
    ASSERT_EQ(ticks.den(), 1);
    const std::int64_t tick = ticks.num();
    EXPECT_LT((tick - 1) % 32, 8) << "arrival inside an OFF phase, tick " << tick;
  }
  // Determinism of the bursty family too.
  EXPECT_EQ(jobs, all_jobs(spec, 5));
}

TEST(WorkloadGenerator, OnOffBurstsFillTheOnWindowBackToBack) {
  const WorkloadSpec spec = WorkloadSpec::parse(
      "onoff;grid=4;rate=4;on=8;off=24;jobs=24;mix=w1:n16:l1:m1");
  const std::vector<Job> jobs = all_jobs(spec, 1);
  ASSERT_EQ(jobs.size(), 24u);
  // With p = 1, the first burst is ticks 1..8 exactly.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(jobs[i].arrival, Rational(static_cast<std::int64_t>(i) + 1, 4));
  }
  // The second burst starts one full period later.
  EXPECT_EQ(jobs[8].arrival, Rational(33, 4));
}

TEST(WorkloadGenerator, RejectsInvalidSpecAtConstruction) {
  WorkloadSpec spec;
  spec.grid = 0;
  POSTAL_EXPECT_THROW(WorkloadGenerator(spec, 1), InvalidArgument);
}

}  // namespace
}  // namespace postal
